// saturation demonstrates the paper's central performance claim (Section 3,
// Figures 9 and 10): locally fair round-robin arbitration loses throughput
// and fairness when the network is pushed beyond saturation, while
// inverse-weighted arbiters — programmed with precomputed per-pattern
// loads — restore equality of service.
package main

import (
	"fmt"
	"log"

	"anton2"
)

func main() {
	shape := anton2.NewShape(8, 4, 2)
	fmt.Printf("flooding a %v machine with tornado traffic (every core sends k/2-1 hops away)\n\n", shape)

	// Tornado is adversarial: all packets circle the ring in one
	// direction, so through-traffic merges with injections at every hop.
	for _, mode := range []anton2.WeightMode{anton2.WeightsNone, anton2.WeightsForward, anton2.WeightsBoth} {
		res, err := anton2.RunBlend(anton2.BlendConfig{
			Machine:         anton2.DefaultConfig(shape),
			ForwardFraction: 1.0, // pure tornado
			Weights:         mode,
			Batch:           128,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v arbiter weights: normalized throughput %.3f (%d cycles)\n",
			mode, res.Normalized, res.Cycles)
	}

	fmt.Println("\nblending tornado with reverse tornado (packets labeled by pattern):")
	for _, f := range []float64{0, 0.5, 1} {
		res, err := anton2.RunBlend(anton2.BlendConfig{
			Machine:         anton2.DefaultConfig(shape),
			ForwardFraction: f,
			Weights:         anton2.WeightsBoth,
			Batch:           128,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tornado fraction %.1f: normalized throughput %.3f\n", f, res.Normalized)
	}
	fmt.Println("\nwith both weight sets programmed, the arbiters maintain equality of")
	fmt.Println("service across any blend without knowing the mixing coefficients (Section 3.2)")
}
