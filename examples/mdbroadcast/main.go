// mdbroadcast reproduces the motivating workload of the paper's multicast
// support (Section 2.3, Figure 3): in a molecular dynamics simulation, each
// particle's position is broadcast to the endpoints of neighboring nodes
// every timestep. Table-based multicast shares torus hops along a
// dimension-order tree; alternating between complementary dimension orders
// balances channel load.
package main

import (
	"fmt"

	"anton2"
	"anton2/internal/multicast"
	"anton2/internal/topo"
)

func main() {
	shape := anton2.NewShape(8, 8, 8)
	root := anton2.NodeCoord{X: 4, Y: 4, Z: 4}

	// A particle near a node boundary interacts with a 3x3 plane patch of
	// neighboring nodes (Figure 3's example geometry).
	dests := multicast.PlaneNeighborhood(shape, root, anton2.DimX, anton2.DimY, 1, 0)

	tree := anton2.MulticastTree(shape, root, dests, topo.AllDimOrders[0])
	unicast := multicast.UnicastHops(shape, root, dests)
	fmt.Printf("broadcast from %v to %d neighbor nodes:\n", root, len(dests))
	fmt.Printf("  unicasts:       %d torus hops\n", unicast)
	fmt.Printf("  multicast tree: %d torus hops (saves %d)\n", tree.TorusHops(), unicast-tree.TorusHops())

	// MD destination sets include several endpoints per node to cut
	// retrieval latency; the inter-node savings multiply (Section 2.3).
	multi := append(append([]anton2.NodeEp(nil), dests...),
		multicast.PlaneNeighborhood(shape, root, anton2.DimX, anton2.DimY, 1, 5)...)
	treeMulti := anton2.MulticastTree(shape, root, multi, topo.AllDimOrders[0])
	uniMulti := multicast.UnicastHops(shape, root, multi)
	fmt.Printf("\nwith two endpoint copies per node:\n")
	fmt.Printf("  unicasts:       %d torus hops\n", uniMulti)
	fmt.Printf("  multicast tree: %d torus hops (saves %d)\n", treeMulti.TorusHops(), uniMulti-treeMulti.TorusHops())

	// Figure 3's load-balancing point: alternating between XY-first and
	// YX-first trees for successive packets halves the peak channel load
	// of an asymmetric destination set.
	asym := []anton2.NodeEp{}
	for _, off := range [][2]int{{1, 1}, {1, 2}, {2, 1}} {
		c := shape.Wrap(anton2.NodeCoord{X: root.X + off[0], Y: root.Y + off[1], Z: root.Z})
		asym = append(asym, anton2.NodeEp{Node: shape.NodeID(c), Ep: 0})
	}
	xy := multicast.Build(shape, root, asym, topo.DimOrder{anton2.DimX, anton2.DimY, anton2.DimZ}, 0)
	yx := multicast.Build(shape, root, asym, topo.DimOrder{anton2.DimY, anton2.DimX, anton2.DimZ}, 0)
	same := multicast.MaxLoad(multicast.ChannelLoads(shape, []*multicast.Tree{xy, xy}))
	alt := multicast.MaxLoad(multicast.ChannelLoads(shape, []*multicast.Tree{xy, yx}))
	fmt.Printf("\nload balance over two packets to an L-shaped set:\n")
	fmt.Printf("  same route twice:   max channel load %d\n", same)
	fmt.Printf("  alternating routes: max channel load %d\n", alt)
}
