// Quickstart: build a small Anton 2 machine, run a saturated burst of
// uniform random traffic through it, and verify the configuration is
// deadlock-free.
package main

import (
	"fmt"
	"log"

	"anton2"
)

func main() {
	// A 4x4x2 torus: 32 ASICs, each with a 4x4 on-chip mesh, 23 endpoint
	// adapters, and 12 torus-channel adapters (two slices per direction).
	shape := anton2.NewShape(4, 4, 2)
	cfg := anton2.DefaultConfig(shape)

	// Statically verify the VC promotion scheme has no cyclic channel
	// dependencies (Section 2.5 of the paper).
	if err := anton2.VerifyDeadlockFree(shape); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v with the Anton n+1-VC scheme: deadlock-free\n", shape)

	// Every core sends a batch of 64 packets to uniformly random remote
	// cores; routes randomize over 6 dimension orders and 2 torus slices.
	res, err := anton2.RunThroughput(anton2.ThroughputConfig{
		Machine: cfg,
		Pattern: anton2.Uniform{},
		Batch:   64,
	})
	if err != nil {
		log.Fatal(err)
	}

	packets := shape.NumNodes() * 16 * 64
	fmt.Printf("delivered %d packets in %d cycles (%.2f us at 1.5 GHz)\n",
		packets, res.Cycles, anton2.CyclesToNS(float64(res.Cycles))/1000)
	fmt.Printf("normalized throughput %.2f, peak torus utilization %.0f%%, fairness %.3f\n",
		res.Normalized, 100*res.MaxUtilization, res.Fairness)
}
