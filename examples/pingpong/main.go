// pingpong measures software-to-software one-way message latency with the
// paper's Figure 11 methodology: a 16-byte remote write from core A
// dispatches a handler on core B, which writes back; one-way latency is
// half the round trip and includes software and synchronization overheads.
package main

import (
	"fmt"
	"log"

	"anton2"
)

func main() {
	shape := anton2.NewShape(4, 4, 4)
	cfg := anton2.DefaultLatencyConfig(shape)

	res, err := anton2.RunLatency(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one-way latency on %v (16-byte payloads):\n\n", shape)
	fmt.Printf("  %5s  %10s\n", "hops", "latency")
	for _, p := range res.Points {
		fmt.Printf("  %5d  %7.1f ns\n", p.Hops, p.MeanNS)
	}
	fmt.Printf("\nlinear fit: %.1f ns fixed + %.1f ns per inter-node hop (r2 = %.4f)\n",
		res.InterceptNS, res.SlopeNS, res.R2)
	fmt.Printf("minimum nearest-neighbor latency: %.1f ns\n", res.MinNS)
	fmt.Printf("(the paper measures 80.7 ns + 39.1 ns/hop, minimum 99 ns, on real silicon)\n")

	fmt.Println("\nminimum-latency budget (Figure 12):")
	var total float64
	for _, c := range anton2.DecomposeMinLatency(cfg) {
		fmt.Printf("  %-30s %5.1f ns\n", c.Name, c.NS)
		total += c.NS
	}
	fmt.Printf("  %-30s %5.1f ns\n", "total", total)
}
