package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"anton2/internal/exp"
	"anton2/internal/telemetry"
)

// warmArtifact runs one server over dir long enough to persist quickSpec's
// artifact, then shuts it down, returning the run id and artifact bytes.
func warmArtifact(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	resp, body := postWait(t, ts, quickSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d, body %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Anton2-Run-Id")
	// SaveArtifact runs after the run finishes; wait for it to land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok, _ := st.LoadArtifact(id); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("artifact never persisted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.Close()
	s.Close()
	return id, body
}

// TestArtifactVerifyQuarantine is the store-hardening acceptance test: a
// corrupted on-disk artifact is detected on read, quarantined, and the spec
// transparently re-simulated to byte-identical replacement bytes.
func TestArtifactVerifyQuarantine(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bitflip", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncation", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			id, want := warmArtifact(t, dir)
			tc.corrupt(t, filepath.Join(dir, "artifacts", id+".json"))

			st, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s, ts := newTestServer(t, Config{Store: st})
			resp, got := postWait(t, ts, quickSpec())
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status after corruption = %d, body %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("re-simulated artifact differs from the original bytes")
			}
			if n := st.Quarantined.Load(); n != 1 {
				t.Fatalf("Quarantined = %d, want 1", n)
			}
			if _, err := os.Stat(filepath.Join(dir, "quarantine", id+".json")); err != nil {
				t.Fatalf("corrupted artifact not quarantined: %v", err)
			}
			if got := s.Metrics().RunsStarted.Load(); got != 1 {
				t.Fatalf("RunsStarted = %d, want 1 (corruption must force re-simulation)", got)
			}
		})
	}
}

// TestArtifactLegacyBackfill: an artifact without a checksum sidecar (the
// pre-sidecar store layout) still serves from disk, and the read backfills
// its sidecar so future reads verify fully.
func TestArtifactLegacyBackfill(t *testing.T) {
	dir := t.TempDir()
	id, want := warmArtifact(t, dir)
	sum := filepath.Join(dir, "artifacts", id+".sum")
	if err := os.Remove(sum); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: st})
	resp, got := postWait(t, ts, quickSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("legacy artifact bytes differ")
	}
	if got := s.Metrics().RunsStarted.Load(); got != 0 {
		t.Fatalf("RunsStarted = %d, want 0 (valid legacy artifact serves from disk)", got)
	}
	if _, err := os.Stat(sum); err != nil {
		t.Fatalf("checksum sidecar not backfilled: %v", err)
	}
}

// TestWALRestartCompletes is the crash-recovery acceptance test: a run
// admitted but never executed (the process died first) is re-admitted from
// the write-ahead log by the next server over the same store and driven to a
// persisted artifact, byte-identical to a direct computation; the WAL entry
// is then cleaned up.
func TestWALRestartCompletes(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewServer(Config{Store: st1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1.slots <- struct{}{} // the worker is "busy": the run can only queue
	r, err := s1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal", r.id+".json")
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("admitted run not recorded in wal: %v", err)
	}
	s1.Close() // "crash": the queued run dies without an artifact

	jobs, err := quickSpec().Jobs(func() *telemetry.Options { return nil })
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.MarshalCanonical(exp.Run(jobs, exp.Options{Cache: exp.NewCache()}))
	if err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newTestServer(t, Config{Store: st2, Workers: 1})
	deadline := time.Now().Add(30 * time.Second)
	var got []byte
	for {
		if b, ok, _ := st2.LoadArtifact(r.id); ok {
			got = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted server never finished the wal-recovered run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("wal-recovered artifact differs from direct computation")
	}
	if got := s2.Metrics().RunsStarted.Load(); got != 1 {
		t.Fatalf("RunsStarted = %d, want 1 (recovery re-simulates the lost run)", got)
	}
	for {
		if _, err := os.Stat(walPath); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wal entry not removed after the artifact persisted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthEndpoints pins the liveness/readiness split: /livez is always
// 200, /readyz (and /healthz, its poll-compatible alias) report 503 while
// startup recovery runs and while draining.
func TestHealthEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	getStatus := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Status string `json:"status"`
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		_ = json.Unmarshal(b, &body)
		return resp.StatusCode, body.Status
	}

	if code, _ := getStatus("/livez"); code != http.StatusOK {
		t.Fatalf("/livez = %d, want 200", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := getStatus("/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never became 200")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Simulate in-progress startup recovery.
	s.ready.Store(false)
	if code, status := getStatus("/readyz"); code != http.StatusServiceUnavailable || status != "resuming" {
		t.Fatalf("/readyz while recovering = %d %q, want 503 resuming", code, status)
	}
	if code, _ := getStatus("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatal("/healthz must gate on readiness")
	}
	if code, _ := getStatus("/livez"); code != http.StatusOK {
		t.Fatal("/livez must stay 200 while recovering")
	}
	s.ready.Store(true)

	s.draining.Store(true)
	if code, status := getStatus("/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", code, status)
	}
	if code, _ := getStatus("/livez"); code != http.StatusOK {
		t.Fatal("/livez must stay 200 while draining")
	}
}

// TestServeCheckpointedRunBitIdentical: turning server-side checkpointing on
// must not change a single artifact byte relative to a direct, never-
// checkpointed computation, and completed runs leave no checkpoint files
// behind.
func TestServeCheckpointedRunBitIdentical(t *testing.T) {
	req := &Request{
		Family:      "mdstep",
		Shape:       "2x2x2",
		HaloPackets: 4,
		HaloBurst:   2,
		Multicasts:  1,
		Strategies:  []string{"anton"},
	}
	jobs, err := req.Jobs(func() *telemetry.Options { return nil })
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.MarshalCanonical(exp.Run(jobs, exp.Options{Cache: exp.NewCache()}))
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st, CheckpointEvery: 40})
	resp, got := postWait(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("checkpointed artifact differs from direct un-checkpointed computation")
	}
	files, err := filepath.Glob(filepath.Join(st.Dir(), "ckpt", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("completed run left checkpoint files behind: %v", files)
	}
}
