// Package serve turns the experiment harness into a long-running service:
// an HTTP/JSON server that accepts experiment specs (the same families
// anton2bench runs), validates them with the CLI's exit-2 rigor (HTTP 400),
// collapses identical in-flight submissions onto one simulation through the
// internal/exp singleflight cache keyed by canonical spec, shards sweep
// points across the exp worker pool, and returns content-addressed
// artifacts that are byte-identical to anton2bench's canonical artifacts
// for the same specs.
//
// The result cache has three tiers, checked in order at submission:
//
//  1. flight — an identical run is queued or executing; the submission
//     attaches to it (exactly one simulation runs for N identical POSTs);
//  2. memory — the in-process artifact cache (an exp.Cache keyed by the
//     request's canonical spec) already holds the bytes;
//  3. disk — the persistent Store (content-addressed by spec hash) holds
//     the artifact from an earlier run or an earlier process; restarts
//     serve warm specs without re-simulation.
//
// Overload degrades with typed responses instead of unbounded queueing: a
// full admission queue returns 429, a request that cannot start or finish
// inside its deadline returns 504 (reusing the exp AttemptTimeout/Backoff
// machinery for per-point bounds), and a draining server returns 503.
// Live progress streams per run over SSE, fed per completed sweep point by
// the exp.Options.OnResult hook and per sampling window by the telemetry
// AfterStep progress hook.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anton2/internal/exp"
	"anton2/internal/telemetry"
)

// Config tunes a Server. The zero value plus a Store is serviceable; every
// bound has a production-shaped default.
type Config struct {
	// Store is the persistent artifact + load-table cache (required).
	Store *Store
	// Workers bounds concurrently executing runs (default 2).
	Workers int
	// PointParallelism is the exp worker-pool size inside one run
	// (default 1: cross-request concurrency comes from Workers).
	PointParallelism int
	// MaxQueue bounds runs waiting for a worker slot; submissions beyond
	// it are refused with 429 (default 16).
	MaxQueue int
	// QueueTimeout bounds one run's wait for a worker slot; expiry fails
	// the run with 504 (default 30s).
	QueueTimeout time.Duration
	// RunTimeout bounds one run's execution; expiry cancels the sweep's
	// remaining points and fails the run with 504 (default 5m).
	RunTimeout time.Duration
	// AttemptTimeout / Backoff / Retries are passed to the exp pool
	// (per-point attempt deadline and retry policy). AttemptTimeout
	// defaults to RunTimeout.
	AttemptTimeout time.Duration
	Backoff        time.Duration
	Retries        int
	// LiveProgress attaches a telemetry progress hook to every simulated
	// point so SSE clients see cycle-level liveness between point
	// completions (default on; disable for minimum overhead).
	NoLiveProgress bool
	// CheckpointEvery, when non-zero, makes every checkpoint-aware sweep
	// point persist a resumable snapshot to <store>/ckpt at least every
	// that many simulated cycles. Combined with the write-ahead log of
	// admitted runs, a killed server that restarts over the same store
	// re-admits its unfinished runs and resumes each point mid-simulation,
	// bit-identical to an uninterrupted run (0 = off). Checkpointed points
	// run without the cycle-level telemetry progress hook (the two layers
	// do not compose); per-point SSE progress is unaffected.
	CheckpointEvery uint64
	// Logf, when non-nil, receives operational log lines (persistence
	// failures, drain progress). The default discards them.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.PointParallelism <= 0 {
		out.PointParallelism = 1
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 16
	}
	if out.QueueTimeout <= 0 {
		out.QueueTimeout = 30 * time.Second
	}
	if out.RunTimeout <= 0 {
		out.RunTimeout = 5 * time.Minute
	}
	if out.AttemptTimeout <= 0 {
		out.AttemptTimeout = out.RunTimeout
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Run states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
)

// run is one submission's lifecycle. Identical submissions share one run.
type run struct {
	id        string
	canonical string
	family    string
	total     int
	cache     string // tier that satisfied the submission: "", flight, memory, disk

	done   atomic.Int64  // completed sweep points
	cycles atomic.Uint64 // simulated cycles (live, via telemetry progress)

	mu       sync.Mutex
	state    string
	err      error
	artifact []byte
	subs     map[chan struct{}]struct{}

	doneCh chan struct{} // closed on completion or failure
}

// Event is one progress update, also the status-endpoint body.
type Event struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	State  string `json:"state"`
	Done   int64  `json:"done"`
	Total  int    `json:"total"`
	Cycles uint64 `json:"cycles"`
	Cache  string `json:"cache,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (r *run) snapshot() Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := Event{
		ID:     r.id,
		Family: r.family,
		State:  r.state,
		Done:   r.done.Load(),
		Total:  r.total,
		Cycles: r.cycles.Load(),
		Cache:  r.cache,
	}
	if r.err != nil {
		ev.Error = r.err.Error()
	}
	return ev
}

// subscribe registers a coalescing notification channel.
func (r *run) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	if r.subs == nil {
		r.subs = map[chan struct{}]struct{}{}
	}
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch
}

func (r *run) unsubscribe(ch chan struct{}) {
	r.mu.Lock()
	delete(r.subs, ch)
	r.mu.Unlock()
}

// notify wakes every subscriber without blocking (channels coalesce).
func (r *run) notify() {
	r.mu.Lock()
	for ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	r.mu.Unlock()
}

func (r *run) currentState() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *run) setState(state string) {
	r.mu.Lock()
	r.state = state
	r.mu.Unlock()
	r.notify()
}

// finish moves the run to a terminal state exactly once.
func (r *run) finish(state string, artifact []byte, err error) {
	r.mu.Lock()
	if r.state == StateCompleted || r.state == StateFailed {
		r.mu.Unlock()
		return
	}
	r.state = state
	r.artifact = artifact
	r.err = err
	r.mu.Unlock()
	r.notify()
	close(r.doneCh)
}

// Server is the experiment-serving subsystem. Create with NewServer, mount
// via Handler, stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	store   *Store
	metrics Metrics

	// artifacts is the in-process memory tier and request-level
	// singleflight: canonical request spec -> artifact bytes.
	artifacts *exp.Cache
	// points is the point-level singleflight shared by every run, so two
	// different sweeps overlapping in a point still simulate it once.
	points *exp.Cache

	mu     sync.Mutex
	runs   map[string]*run
	queued int // runs in StateQueued (admission bound)

	slots chan struct{} // worker tokens, cap = Workers

	baseCtx   context.Context
	cancelAll context.CancelFunc
	draining  atomic.Bool
	// ready flips true once startup recovery — write-ahead-log re-admission
	// of runs a previous process left unfinished — has completed. /readyz
	// and /healthz report 503 until then; /livez is always 200.
	ready atomic.Bool
	wg    sync.WaitGroup

	mux *http.ServeMux
}

// NewServer builds a server, restoring the persistent load-table cache so a
// warm disk cache skips analytic route enumeration from the first request,
// and re-admitting (asynchronously) any runs a previous process admitted but
// never finished, recorded in the store's write-ahead log. The server
// answers requests immediately; /readyz reports 503 until re-admission has
// completed.
func NewServer(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if c.CheckpointEvery > 0 {
		if err := os.MkdirAll(filepath.Join(c.Store.Dir(), "ckpt"), 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       c,
		store:     c.Store,
		artifacts: exp.NewCache(),
		points:    exp.NewCache(),
		runs:      map[string]*run{},
		slots:     make(chan struct{}, c.Workers),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	if s.store.Logf == nil {
		s.store.Logf = c.Logf
	}
	if n, err := s.store.RestoreLoads(); err != nil {
		c.Logf("serve: load-table restore failed: %v", err)
	} else if n > 0 {
		c.Logf("serve: restored %d analytic load tables from %s", n, s.store.Dir())
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/artifact", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.wg.Add(1)
	go s.resumeWAL()
	return s, nil
}

// resumeWAL re-admits every run the write-ahead log records as unfinished,
// then marks the server ready. Re-admission goes through the normal Submit
// path: a run whose artifact made it to disk before the crash is a disk hit
// (its stale WAL entry is dropped there), anything else queues and — when
// checkpointing is on — resumes each point from its last snapshot.
func (s *Server) resumeWAL() {
	defer s.wg.Done()
	defer s.ready.Store(true)
	entries, err := s.store.ListWAL()
	if err != nil {
		s.cfg.Logf("serve: wal scan failed: %v", err)
		return
	}
	for _, e := range entries {
		req, err := ParseRequest(bytes.NewReader(e.Body))
		if err != nil {
			// An entry that no longer parses can never be re-admitted.
			s.cfg.Logf("serve: dropping unusable wal entry %s: %v", e.ID, err)
			s.store.RemoveWAL(e.ID)
			continue
		}
		if _, err := s.Submit(req); err != nil {
			// Queue full or draining: keep the entry for the next restart.
			s.cfg.Logf("serve: wal re-admit %s failed: %v", e.ID, err)
			continue
		}
		s.cfg.Logf("serve: re-admitted unfinished run %s from wal", e.ID)
	}
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the live counters (tests and the load generator).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Drain gracefully stops the server: new submissions are refused with 503,
// queued and executing runs finish, and the call returns when the last one
// does. If ctx expires first, the remaining runs are cancelled (their
// waiters get 504-class failures) and Drain returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything immediately and waits for run goroutines.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancelAll()
	s.wg.Wait()
}

// Typed overload / lifecycle errors, mapped onto HTTP status codes.
var (
	// ErrQueueFull refuses a submission when MaxQueue runs are already
	// waiting (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQueueTimeout fails a run that waited QueueTimeout without
	// getting a worker slot (HTTP 504).
	ErrQueueTimeout = errors.New("serve: timed out waiting for a worker")
	// ErrRunTimeout fails a run that exceeded RunTimeout (HTTP 504).
	ErrRunTimeout = errors.New("serve: run exceeded its deadline")
	// ErrDraining refuses submissions during graceful shutdown (503).
	ErrDraining = errors.New("serve: server is draining")
)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error struct {
		Code  int    `json:"code"`
		Msg   string `json:"msg"`
		Field string `json:"field,omitempty"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	var body errorBody
	body.Error.Code = code
	body.Error.Msg = err.Error()
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		body.Error.Field = reqErr.Field
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(v)
	b = append(b, '\n')
	w.Write(b)
}

// Submit validates and admits one request, returning its run. The run may
// already be complete (memory or disk hit). Typed errors: *RequestError
// (400), ErrQueueFull (429), ErrDraining (503).
func (s *Server) Submit(req *Request) (*run, error) {
	if s.draining.Load() {
		s.metrics.RejectedGone.Add(1)
		return nil, ErrDraining
	}
	c, err := req.compile()
	if err != nil {
		return nil, err
	}
	canonical := c.spec.Canonical()
	id := fmt.Sprintf("%016x", c.spec.Hash())
	total := len(c.build(func() *telemetry.Options { return nil }))

	s.mu.Lock()
	if r, ok := s.runs[id]; ok {
		switch r.currentState() {
		case StateQueued, StateRunning:
			s.metrics.HitsFlight.Add(1)
			s.mu.Unlock()
			return r, nil
		case StateCompleted:
			s.metrics.HitsMemory.Add(1)
			s.mu.Unlock()
			return r, nil
		default:
			// A failed run (queue timeout, drain, run deadline) is not a
			// deterministic outcome; replace it with a fresh attempt.
			delete(s.runs, id)
		}
	}

	// Memory tier: the artifact cache may hold bytes even when the run
	// registry does not (an earlier failed run that still produced them is
	// impossible — failures Forget — but keep the tier check cheap and
	// uniform with a plain cache probe via the disk path below).
	b, onDisk, derr := s.store.LoadArtifact(id)
	if derr != nil {
		s.mu.Unlock()
		return nil, derr
	}
	if onDisk {
		s.metrics.HitsDisk.Add(1)
		r := s.completedRun(id, canonical, req.Family, b)
		s.runs[id] = r
		s.mu.Unlock()
		// A surviving WAL entry for an artifact that did reach disk is
		// stale (the crash hit between persistence and WAL cleanup).
		s.store.RemoveWAL(id)
		return r, nil
	}

	if s.queued >= s.cfg.MaxQueue {
		s.metrics.Rejected429.Add(1)
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	r := &run{
		id:        id,
		canonical: canonical,
		family:    req.Family,
		total:     total,
		state:     StateQueued,
		doneCh:    make(chan struct{}),
	}
	s.runs[id] = r
	s.queued++
	s.metrics.QueueDepth.Store(int64(s.queued))
	s.metrics.Misses.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()

	// Record the admission in the write-ahead log before execution starts:
	// if the process dies mid-run, the next one re-admits the request and
	// (with checkpointing on) resumes it. Failure to log only costs that
	// crash-safety, so the run proceeds regardless.
	if body, err := json.Marshal(req); err == nil {
		if werr := s.store.SaveWAL(id, body); werr != nil {
			s.cfg.Logf("serve: wal admit %s: %v", id, werr)
		}
	}

	go s.execute(r, c)
	return r, nil
}

// completedRun registers an already-satisfied run (disk hit).
func (s *Server) completedRun(id, canonical, family string, artifact []byte) *run {
	r := &run{
		id:        id,
		canonical: canonical,
		family:    family,
		state:     StateCompleted,
		cache:     "disk",
		artifact:  artifact,
		doneCh:    make(chan struct{}),
	}
	if n := countArtifactPoints(artifact); n > 0 {
		r.total = n
		r.done.Store(int64(n))
	}
	close(r.doneCh)
	return r
}

// countArtifactPoints decodes just enough of an artifact to report its
// sweep size in status responses.
func countArtifactPoints(b []byte) int {
	var probe struct {
		Results []json.RawMessage `json:"results"`
	}
	if json.Unmarshal(b, &probe) != nil {
		return 0
	}
	return len(probe.Results)
}

// execute drives one run to a terminal state: slot acquisition under the
// queue deadline, the sweep under the run deadline, then persistence.
func (s *Server) execute(r *run, c *compiled) {
	defer s.wg.Done()
	queueTimer := time.NewTimer(s.cfg.QueueTimeout)
	defer queueTimer.Stop()
	select {
	case s.slots <- struct{}{}:
	case <-queueTimer.C:
		s.leaveQueue()
		s.metrics.Rejected504.Add(1)
		s.metrics.RunsFailed.Add(1)
		r.finish(StateFailed, nil, ErrQueueTimeout)
		return
	case <-s.baseCtx.Done():
		s.leaveQueue()
		s.metrics.RunsFailed.Add(1)
		r.finish(StateFailed, nil, ErrDraining)
		return
	}
	s.leaveQueue()
	defer func() { <-s.slots }()

	s.metrics.ActiveRuns.Add(1)
	defer s.metrics.ActiveRuns.Add(-1)
	s.metrics.RunsStarted.Add(1)
	r.setState(StateRunning)

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
	defer cancel()

	val, _, err := s.artifacts.Do(r.canonical, func() (any, error) {
		return s.simulate(ctx, r, c)
	})
	if err != nil {
		// Non-deterministic failure (deadline, drain): do not let it
		// stick to the spec's cache slot.
		s.artifacts.Forget(r.canonical)
		s.metrics.RunsFailed.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Rejected504.Add(1)
			err = fmt.Errorf("%w: %v", ErrRunTimeout, err)
		}
		r.finish(StateFailed, nil, err)
		return
	}
	artifact := val.([]byte)
	s.metrics.RunsCompleted.Add(1)
	r.finish(StateCompleted, artifact, nil)

	if err := s.store.SaveArtifact(r.id, artifact); err != nil {
		s.cfg.Logf("serve: persist artifact %s: %v", r.id, err)
	} else {
		// The artifact is durable; the run no longer needs crash recovery.
		s.store.RemoveWAL(r.id)
	}
	if err := s.store.SaveLoads(); err != nil {
		s.cfg.Logf("serve: persist load tables: %v", err)
	}
}

func (s *Server) leaveQueue() {
	s.mu.Lock()
	s.queued--
	s.metrics.QueueDepth.Store(int64(s.queued))
	s.mu.Unlock()
}

// simulate runs the sweep and renders the canonical artifact. Cancellation
// of any point makes the whole computation fail (cancelled points are not
// deterministic results and must not be persisted).
func (s *Server) simulate(ctx context.Context, r *run, c *compiled) ([]byte, error) {
	tel := s.pointTelemetry(r)
	if s.cfg.CheckpointEvery > 0 {
		// Checkpointing refuses to compose with the telemetry layer (its
		// window state is not snapshotted), so checkpointed points run
		// without the cycle-level progress hook; SSE clients still see
		// per-point completion progress via OnResult below.
		tel = func() *telemetry.Options { return nil }
	}
	jobs := c.build(tel)
	prevs := make([]uint64, len(jobs))
	opts := exp.Options{
		Name:           "run-" + r.id[:8],
		Parallelism:    s.cfg.PointParallelism,
		Cache:          s.points,
		AttemptTimeout: s.cfg.AttemptTimeout,
		Backoff:        s.cfg.Backoff,
		Retries:        s.cfg.Retries,
		OnResult: func(res exp.Result) {
			r.done.Add(1)
			if res.Index < len(prevs) && res.Cycles > prevs[res.Index] {
				r.cycles.Add(res.Cycles - prevs[res.Index])
			}
			switch {
			case res.Cached:
				s.metrics.PointsCached.Add(1)
			default:
				s.metrics.PointsRun.Add(1)
			}
			if res.Err != nil {
				s.metrics.PointsFailed.Add(1)
			}
			s.metrics.SimCycles.Add(res.Cycles)
			r.notify()
		},
	}
	if s.cfg.CheckpointEvery > 0 {
		// Resume is always on: checkpoint tags pin the full spec canonical,
		// so a stale or foreign file is ignored, and a valid resume is
		// bit-identical to a fresh run — at worst it is a head start.
		opts.Checkpoint = exp.CheckpointOptions{
			Dir:    filepath.Join(s.store.Dir(), "ckpt"),
			Every:  s.cfg.CheckpointEvery,
			Resume: true,
		}
	}
	rs := exp.RunCtx(ctx, jobs, opts)
	for _, res := range rs {
		var cancelled *exp.ErrCancelled
		if errors.As(res.Err, &cancelled) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, res.Err
		}
	}
	return exp.MarshalCanonical(rs)
}

// pointTelemetry returns the per-point telemetry factory feeding the run's
// live cycle counter from the AfterStep window hook. Point index equals
// build order equals exp.Result.Index, which lets OnResult reconcile the
// final cycle count against the live tally without double counting.
func (s *Server) pointTelemetry(r *run) func() *telemetry.Options {
	if s.cfg.NoLiveProgress {
		return func() *telemetry.Options { return nil }
	}
	seq := 0
	prevs := &sync.Map{}
	return func() *telemetry.Options {
		i := seq
		seq++
		return &telemetry.Options{
			Progress: func(elapsed uint64) {
				var prev uint64
				if v, ok := prevs.Load(i); ok {
					prev = v.(uint64)
				}
				if elapsed > prev {
					r.cycles.Add(elapsed - prev)
					prevs.Store(i, elapsed)
					r.notify()
				}
			},
		}
	}
}

// lookupRun finds a run by id, falling back to the persistent store so a
// restarted server still answers status and artifact queries for anything
// it ever computed.
func (s *Server) lookupRun(id string) (*run, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if ok {
		return r, true
	}
	if !validID(id) {
		return nil, false
	}
	b, onDisk, err := s.store.LoadArtifact(id)
	if err != nil || !onDisk {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok { // raced with a submission
		return r, true
	}
	r = s.completedRun(id, "", "", b)
	s.runs[id] = r
	return r, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	q, err := ParseRequest(req.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r, err := s.Submit(q)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	if req.URL.Query().Get("wait") != "" {
		s.respondWhenDone(w, req, r)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+r.id)
	code := http.StatusAccepted
	if r.snapshot().State == StateCompleted {
		code = http.StatusOK
	}
	writeJSON(w, code, r.snapshot())
}

// respondWhenDone blocks a wait=1 submission until the run finishes, the
// client gives up, or the optional timeout_ms expires (504; the run keeps
// going — a later poll or identical submission picks it up).
func (s *Server) respondWhenDone(w http.ResponseWriter, req *http.Request, r *run) {
	var timeout <-chan time.Time
	if ms := req.URL.Query().Get("timeout_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, &RequestError{Field: "timeout_ms", Msg: "must be a positive integer"})
			return
		}
		t := time.NewTimer(time.Duration(n) * time.Millisecond)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-r.doneCh:
	case <-req.Context().Done():
		return
	case <-timeout:
		s.metrics.Rejected504.Add(1)
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: run %s still %s after client deadline", r.id, r.snapshot().State))
		return
	}
	s.writeRunArtifact(w, r)
}

func (s *Server) writeRunArtifact(w http.ResponseWriter, r *run) {
	ev := r.snapshot()
	if ev.State == StateFailed {
		code := http.StatusInternalServerError
		r.mu.Lock()
		err := r.err
		r.mu.Unlock()
		switch {
		case errors.Is(err, ErrQueueTimeout), errors.Is(err, ErrRunTimeout):
			code = http.StatusGatewayTimeout
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	r.mu.Lock()
	artifact := r.artifact
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Anton2-Run-Id", r.id)
	if ev.Cache != "" {
		w.Header().Set("X-Anton2-Cache", ev.Cache)
	}
	w.Write(artifact)
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown run %q", req.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, r.snapshot())
}

func (s *Server) handleArtifact(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown run %q", req.PathValue("id")))
		return
	}
	ev := r.snapshot()
	if ev.State == StateQueued || ev.State == StateRunning {
		// Not ready: poll-friendly 202 with the live status body.
		writeJSON(w, http.StatusAccepted, ev)
		return
	}
	s.writeRunArtifact(w, r)
}

// health reports the lifecycle phase and whether the server can usefully
// accept traffic right now.
func (s *Server) health() (phase string, ok bool) {
	switch {
	case s.draining.Load():
		return "draining", false
	case !s.ready.Load():
		return "resuming", false
	default:
		return "ok", true
	}
}

// handleLivez is pure liveness: the process is up and serving HTTP. Always
// 200, even while draining — restarting a draining server loses work.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// handleReadyz is readiness: 503 while startup WAL re-admission is still
// running or the server is draining, 200 once it can take traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	phase, ok := s.health()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": phase})
}

// handleHealthz keeps the original combined endpoint: identical to /readyz,
// so existing poll-until-200 probes also wait out startup recovery.
func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	s.handleReadyz(w, req)
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cfg.Workers))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.renderText(s.cfg.Workers))
}

// handleEvents streams run progress as server-sent events: one "progress"
// event per state change, point completion, or telemetry window, and a
// final "done" event when the run reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown run %q", req.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := r.subscribe()
	defer r.unsubscribe(ch)

	send := func(name string) bool {
		b, _ := json.Marshal(r.snapshot())
		_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b)
		fl.Flush()
		return err == nil
	}
	if !send("progress") {
		return
	}
	for {
		select {
		case <-r.doneCh:
			send("done")
			return
		case <-ch:
			if !send("progress") {
				return
			}
		case <-req.Context().Done():
			return
		case <-s.baseCtx.Done():
			send("done")
			return
		}
	}
}
