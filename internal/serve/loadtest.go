package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"anton2/internal/traffic"
)

// LoadTestConfig drives a self-load-test against a running server. The
// request pool is derived from the repo's own internal/traffic pattern
// generators: every pattern the request grammar accepts contributes
// throughput and faultsweep specs, plus blend and energy sweeps, and draws
// repeat (seeded, with replacement) so the flight/memory/disk cache tiers
// all get exercised — exactly the shape of real experiment traffic, where
// the same sweep is resubmitted far more often than a new one appears.
type LoadTestConfig struct {
	// BaseURL of the server under test, e.g. "http://127.0.0.1:8723".
	BaseURL string
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// Requests is the total number of submissions (default 64).
	Requests int
	// Seed makes the draw sequence reproducible (default 1).
	Seed int64
	// Shape for the pooled specs (default "2x2x2" — small on purpose: the
	// load test measures the serving layer, not the simulator).
	Shape string
	// Batch is the per-point packet batch for pooled specs (default 32).
	Batch int
	// WaitTimeout bounds one synchronous submission (default 2m).
	WaitTimeout time.Duration
}

func (c *LoadTestConfig) withDefaults() LoadTestConfig {
	out := *c
	if out.Clients <= 0 {
		out.Clients = 4
	}
	if out.Requests <= 0 {
		out.Requests = 64
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Shape == "" {
		out.Shape = "2x2x2"
	}
	if out.Batch <= 0 {
		out.Batch = 32
	}
	if out.WaitTimeout <= 0 {
		out.WaitTimeout = 2 * time.Minute
	}
	return out
}

// LoadReport summarizes a load-test run.
type LoadReport struct {
	Requests   int           `json:"requests"`
	Distinct   int           `json:"distinct_specs"`
	Clients    int           `json:"clients"`
	Errors     int           `json:"errors"`
	ByStatus   map[int]int   `json:"by_status"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"requests_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`
	// Metrics is the server's final /metrics?format=json scrape.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// String renders the human-readable report the -loadtest flag prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d requests (%d distinct specs) x %d clients in %v\n",
		r.Requests, r.Distinct, r.Clients, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "loadtest: throughput %.1f req/s, errors %d\n", r.Throughput, r.Errors)
	fmt.Fprintf(&b, "loadtest: latency p50 %v  p90 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "loadtest: status %d x%d\n", c, r.ByStatus[c])
	}
	if r.Metrics != nil {
		for _, k := range []string{
			"anton2serve_cache_hit_rate",
			"anton2serve_cache_hits_total{tier=\"flight\"}",
			"anton2serve_cache_hits_total{tier=\"memory\"}",
			"anton2serve_cache_hits_total{tier=\"disk\"}",
			"anton2serve_cache_misses_total",
			"anton2serve_sim_cycles_total",
		} {
			if v, ok := r.Metrics[k]; ok {
				fmt.Fprintf(&b, "loadtest: %s %g\n", k, v)
			}
		}
	}
	return b.String()
}

// loadPool builds the distinct request set from the traffic generators.
func loadPool(shape string, batch int) []*Request {
	patterns := []traffic.Pattern{
		traffic.Uniform{},
		traffic.NHop{N: 1},
		traffic.NHop{N: 2},
		traffic.Tornado(),
		traffic.ReverseTornado(),
		traffic.BitComplement(),
		traffic.NearestNeighbor{},
	}
	var pool []*Request
	for _, p := range patterns {
		pool = append(pool, &Request{
			Family: "throughput", Shape: shape, Pattern: p.Name(), Batches: []int{batch},
		})
	}
	// A pair of heavier sweeps and the fixed-machine families round out the
	// mix without dominating the wall clock.
	pool = append(pool,
		&Request{Family: "faultsweep", Shape: shape, Pattern: "uniform", Rates: []float64{0, 0.01, 0.05}, Batch: batch},
		&Request{Family: "faultsweep", Shape: shape, Pattern: "tornado", Rates: []float64{0, 0.02}, Batch: batch, Fault: "stall=0.001"},
		&Request{Family: "blend", Shape: shape, Fractions: []float64{0, 0.5, 1}, Weights: "both", Batch: batch},
		&Request{Family: "latency", Shape: shape},
		&Request{Family: "energy", Payload: "random", Flits: 64},
	)
	return pool
}

// LoadTest drives cfg.Requests synchronous submissions (wait=1) at the
// server and reports throughput and latency percentiles. Every response
// body is fully read; non-2xx responses count as errors in the report but
// do not abort the test (overload responses are an expected outcome).
func LoadTest(cfg LoadTestConfig) (*LoadReport, error) {
	c := cfg.withDefaults()
	pool := loadPool(c.Shape, c.Batch)
	for _, q := range pool {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("serve: loadtest pool: %w", err)
		}
	}
	bodies := make([][]byte, len(pool))
	for i, q := range pool {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	// Pre-draw the whole sequence so worker interleaving cannot change
	// which specs a given seed submits.
	rng := rand.New(rand.NewSource(c.Seed))
	draws := make([]int, c.Requests)
	for i := range draws {
		draws[i] = rng.Intn(len(pool))
	}

	url := strings.TrimRight(c.BaseURL, "/") +
		fmt.Sprintf("/v1/runs?wait=1&timeout_ms=%d", c.WaitTimeout.Milliseconds())
	client := &http.Client{Timeout: c.WaitTimeout + 10*time.Second}

	type sample struct {
		latency time.Duration
		status  int
	}
	samples := make([]sample, c.Requests)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				status := 0
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[draws[i]]))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					status = resp.StatusCode
				}
				samples[i] = sample{latency: time.Since(t0), status: status}
			}
		}()
	}
	for i := 0; i < c.Requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	report := &LoadReport{
		Requests: c.Requests,
		Distinct: len(pool),
		Clients:  c.Clients,
		ByStatus: map[int]int{},
		Elapsed:  elapsed,
	}
	lat := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		report.ByStatus[s.status]++
		if s.status < 200 || s.status >= 300 {
			report.Errors++
		}
		lat = append(lat, s.latency)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	report.P50 = percentile(lat, 0.50)
	report.P90 = percentile(lat, 0.90)
	report.P99 = percentile(lat, 0.99)
	report.Max = lat[len(lat)-1]
	if sec := elapsed.Seconds(); sec > 0 {
		report.Throughput = float64(c.Requests) / sec
	}

	if resp, err := client.Get(strings.TrimRight(c.BaseURL, "/") + "/metrics?format=json"); err == nil {
		m := map[string]float64{}
		if json.NewDecoder(resp.Body).Decode(&m) == nil {
			report.Metrics = m
		}
		resp.Body.Close()
	}
	return report, nil
}

// percentile returns the nearest-rank percentile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
