package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"anton2/internal/exp"
	"anton2/internal/telemetry"
)

// quickSpec is the cheap faultsweep sweep most tests submit: small torus,
// two corruption rates, small batch.
func quickSpec() *Request {
	return &Request{
		Family:  "faultsweep",
		Shape:   "2x2x2",
		Pattern: "uniform",
		Rates:   []float64{0, 0.02},
		Batch:   16,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postWait(t *testing.T, ts *httptest.Server, req *Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestArtifactBitIdentical pins the core serving contract: the artifact the
// server returns is byte-identical to running the same request's jobs
// directly through the exp pool and canonical marshaller — i.e. identical to
// what anton2bench produces for the same specs.
func TestArtifactBitIdentical(t *testing.T) {
	req := quickSpec()
	jobs, err := req.Jobs(func() *telemetry.Options { return nil })
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.MarshalCanonical(exp.Run(jobs, exp.Options{Parallelism: 2, Cache: exp.NewCache()}))
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	resp, got := postWait(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server artifact differs from direct canonical artifact\nserver: %d bytes\ndirect: %d bytes", len(got), len(want))
	}
	if id := resp.Header.Get("X-Anton2-Run-Id"); !validID(id) {
		t.Fatalf("X-Anton2-Run-Id = %q, want 16-hex id", id)
	}
}

// TestDedupeParallelSubmissions is the N-identical-POSTs acceptance test:
// exactly one simulation runs and every submitter gets identical bytes.
func TestDedupeParallelSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const n = 8
	req := quickSpec()

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", bytes.NewReader(mustJSON(t, req)))
			if err != nil {
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("submission %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("submission %d returned different artifact bytes", i)
		}
	}
	if got := s.Metrics().RunsStarted.Load(); got != 1 {
		t.Fatalf("RunsStarted = %d, want exactly 1 for %d identical submissions", got, n)
	}
	if hits := s.Metrics().HitsFlight.Load() + s.Metrics().HitsMemory.Load(); hits != n-1 {
		t.Fatalf("flight+memory hits = %d, want %d", hits, n-1)
	}
	// Both sweep points simulated exactly once across all submissions.
	if got := s.Metrics().PointsRun.Load(); got != 2 {
		t.Fatalf("PointsRun = %d, want 2", got)
	}
}

// TestColdRestartServesFromDisk is the persistent-cache acceptance test: a
// fresh server process (same store dir) serves a repeated spec from disk
// without re-simulation, and /metrics records the disk hit.
func TestColdRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Store: st})
	req := quickSpec()
	resp, warm := postWait(t, ts1, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d, body %s", resp.StatusCode, warm)
	}
	ts1.Close()
	s1.Close()

	if _, err := os.Stat(filepath.Join(dir, "loads.json")); err != nil {
		t.Fatalf("load-table snapshot not persisted: %v", err)
	}
	if n := st.ArtifactCount(); n != 1 {
		t.Fatalf("artifact count = %d, want 1", n)
	}

	// "Restart": a brand-new Server over the same directory.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp2, cold := postWait(t, ts2, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d, body %s", resp2.StatusCode, cold)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("disk-served artifact differs from originally computed artifact")
	}
	if got := resp2.Header.Get("X-Anton2-Cache"); got != "disk" {
		t.Fatalf("X-Anton2-Cache = %q, want disk", got)
	}
	if got := s2.Metrics().RunsStarted.Load(); got != 0 {
		t.Fatalf("RunsStarted = %d after restart, want 0 (no re-simulation)", got)
	}

	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `anton2serve_cache_hits_total{tier="disk"} 1`) {
		t.Fatalf("/metrics missing disk hit:\n%s", mb)
	}
}

// TestValidationRejects maps the CLI's exit-2 cases onto HTTP 400 with the
// offending field named.
func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"empty", `{}`, "family"},
		{"unknown family", `{"family":"figure-9000"}`, "family"},
		{"bad shape", `{"family":"throughput","shape":"4x4","batches":[8]}`, "shape"},
		{"missing batches", `{"family":"throughput","shape":"2x2x2"}`, "batches"},
		{"negative batch", `{"family":"faultsweep","shape":"2x2x2","rates":[0],"batch":-1}`, "batch"},
		{"rate out of range", `{"family":"faultsweep","shape":"2x2x2","rates":[1.5],"batch":8}`, "rates"},
		{"bad fault spec", `{"family":"faultsweep","shape":"2x2x2","rates":[0],"batch":8,"fault":"bogus=1"}`, "fault"},
		{"unknown strategy", `{"family":"routecompare","shape":"2x2x2","batch":8,"strategies":["warp"]}`, "strategies"},
		{"negative faillinks", `{"family":"routecompare","shape":"2x2x2","batch":8,"faillinks":[-1]}`, "faillinks"},
		{"mdstep bad workload", `{"family":"mdstep","shape":"2x2x2","halopackets":-4}`, "workload"},
		{"mdstep unknown strategy", `{"family":"mdstep","shape":"2x2x2","strategies":["warp"]}`, "strategies"},
		{"unknown field", `{"family":"latency","shape":"2x2x2","turbo":true}`, ""},
		{"malformed", `{"family":`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Error.Field != tc.field {
				t.Fatalf("error field = %q, want %q (msg: %s)", body.Error.Field, tc.field, body.Error.Msg)
			}
		})
	}
}

// TestOverloadTyped exercises the bounded queue deterministically by
// occupying the single worker slot directly: the first submission queues,
// the second overflows with 429, and queue expiry surfaces as 504.
func TestOverloadTyped(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		MaxQueue:     1,
		QueueTimeout: 50 * time.Millisecond,
	})
	s.slots <- struct{}{} // the worker is "busy"
	defer func() { <-s.slots }()

	r1, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatalf("first submission: %v", err)
	}

	other := quickSpec()
	other.Batch = 24 // distinct spec, must queue separately
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(mustJSON(t, other)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d (body %s), want 429", resp.StatusCode, b)
	}
	if got := s.Metrics().Rejected429.Load(); got != 1 {
		t.Fatalf("Rejected429 = %d, want 1", got)
	}

	// The queued run times out waiting for the slot and fails as 504.
	select {
	case <-r1.doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("queued run never timed out")
	}
	aresp, err := http.Get(ts.URL + "/v1/runs/" + r1.id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run artifact status = %d (body %s), want 504", aresp.StatusCode, ab)
	}
	if got := s.Metrics().Rejected504.Load(); got != 1 {
		t.Fatalf("Rejected504 = %d, want 1", got)
	}

	// A failed run is retryable: the same spec admits a fresh run.
	r2, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatalf("resubmission after 504: %v", err)
	}
	if r2 == r1 {
		t.Fatal("resubmission returned the failed run instead of a fresh one")
	}
}

// TestWaitTimeoutTyped pins the client-side deadline: a wait=1 submission
// whose timeout_ms expires gets 504 while the run itself keeps going.
func TestWaitTimeoutTyped(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.slots <- struct{}{} // hold the worker so the run cannot start
	released := false
	defer func() {
		if !released {
			<-s.slots
		}
	}()

	resp, err := http.Post(ts.URL+"/v1/runs?wait=1&timeout_ms=40", "application/json", bytes.NewReader(mustJSON(t, quickSpec())))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s), want 504", resp.StatusCode, b)
	}

	// Release the worker; the run completes and is then served normally.
	<-s.slots
	released = true
	resp2, body := postWait(t, ts, quickSpec())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, body %s", resp2.StatusCode, body)
	}
}

// TestEventsStream reads the SSE feed end to end: at least one progress
// event, then a final done event with the completed state and full count.
func TestEventsStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	r, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + r.id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []Event
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	kind := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			events = append(events, ev)
			kinds = append(kinds, kind)
		}
		if kind == "done" && len(kinds) > 0 && kinds[len(kinds)-1] == "done" {
			break
		}
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least initial progress + done", len(events))
	}
	last := events[len(events)-1]
	if kinds[len(kinds)-1] != "done" {
		t.Fatalf("last event kind = %q, want done", kinds[len(kinds)-1])
	}
	if last.State != StateCompleted {
		t.Fatalf("final state = %q (err %q), want completed", last.State, last.Error)
	}
	if last.Done != int64(last.Total) || last.Total != 2 {
		t.Fatalf("final done/total = %d/%d, want 2/2", last.Done, last.Total)
	}
	if last.Cycles == 0 {
		t.Fatal("final event reports zero simulated cycles")
	}
}

// TestDrainGraceful verifies shutdown semantics: in-flight work finishes,
// new submissions get 503, and /healthz flips to draining.
func TestDrainGraceful(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	r, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := r.snapshot().State; got != StateCompleted {
		t.Fatalf("in-flight run state after drain = %q, want completed", got)
	}

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(mustJSON(t, quickSpec())))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503", resp.StatusCode)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, h.Body)
	h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status = %d, want 503", h.StatusCode)
	}
}

// TestStatusAndArtifactEndpoints covers the poll path: status for a live
// run, 202 for a pending artifact, 404 for garbage ids.
func TestStatusAndArtifactEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	r, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-r.doneCh

	resp, err := http.Get(ts.URL + "/v1/runs/" + r.id)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ev.ID != r.id || ev.State != StateCompleted {
		t.Fatalf("status = %+v", ev)
	}

	for _, id := range []string{"nope", "0123456789abcdef"} {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status for %q = %d, want 404", id, resp.StatusCode)
		}
	}
}

// TestLoadTestSmoke runs the self-load-test small against a live server and
// sanity-checks the report shape.
func TestLoadTestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in -short mode")
	}
	_, ts := newTestServer(t, Config{Workers: 4})
	report, err := LoadTest(LoadTestConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 24,
		Batch:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load test errors = %d\n%s", report.Errors, report)
	}
	if report.ByStatus[http.StatusOK] != 24 {
		t.Fatalf("OK count = %d, want 24\n%s", report.ByStatus[http.StatusOK], report)
	}
	if report.P50 <= 0 || report.P99 < report.P50 || report.Throughput <= 0 {
		t.Fatalf("implausible percentiles/throughput: %+v", report)
	}
	if report.Metrics["anton2serve_cache_hit_rate"] <= 0 {
		t.Fatalf("expected repeated draws to produce cache hits\n%s", report)
	}
	// Deterministic draw sequence: same seed, same pool order.
	if report.Distinct != len(loadPool("2x2x2", 8)) {
		t.Fatalf("distinct = %d", report.Distinct)
	}
	_ = fmt.Sprintf("%s", report) // String() must not panic on a full report
}

// TestRouteCompareServed: the routecompare family is servable, and the
// returned artifact scores every registered strategy — the same cells
// anton2bench's routecompare experiment computes.
func TestRouteCompareServed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postWait(t, ts, &Request{
		Family:    "routecompare",
		Shape:     "2x2x2",
		Batch:     4,
		FailLinks: []int{0, 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var artifact struct {
		Results []struct {
			Error string `json:"error"`
			Value struct {
				Strategy     string `json:"strategy"`
				FailLinks    int    `json:"fail_links"`
				DeadlockFree bool   `json:"deadlock_free"`
			} `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &artifact); err != nil {
		t.Fatal(err)
	}
	strategies := map[string]bool{}
	for i, r := range artifact.Results {
		if r.Error != "" {
			t.Errorf("point %d failed: %s", i, r.Error)
		}
		strategies[r.Value.Strategy] = true
		if r.Value.FailLinks == 0 && !r.Value.DeadlockFree {
			t.Errorf("point %d: healthy %s cell not verified deadlock-free", i, r.Value.Strategy)
		}
	}
	if len(strategies) < 4 {
		t.Errorf("artifact scores %d strategies, want >= 4: %v", len(strategies), strategies)
	}
}

// TestMDStepServed: the mdstep family is servable, and the returned artifact
// reports per-phase and total timestep time for every registered strategy —
// the same points anton2bench's mdstep experiment computes.
func TestMDStepServed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postWait(t, ts, &Request{
		Family:      "mdstep",
		Shape:       "2x2x2",
		HaloPackets: 4,
		HaloBurst:   2,
		Multicasts:  1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var artifact struct {
		Results []struct {
			Error string `json:"error"`
			Value struct {
				Strategy    string `json:"strategy"`
				Workload    string `json:"workload"`
				TotalCycles uint64 `json:"total_cycles"`
				Phases      []struct {
					Phase  string `json:"phase"`
					Cycles uint64 `json:"cycles"`
				} `json:"phases"`
			} `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &artifact); err != nil {
		t.Fatal(err)
	}
	strategies := map[string]bool{}
	for i, r := range artifact.Results {
		if r.Error != "" {
			t.Errorf("point %d failed: %s", i, r.Error)
			continue
		}
		strategies[r.Value.Strategy] = true
		if r.Value.Workload != "h1.4.2-m1.1-r2-t1" {
			t.Errorf("point %d workload = %q, want defaults applied to the request knobs", i, r.Value.Workload)
		}
		if r.Value.TotalCycles == 0 || len(r.Value.Phases) != 3 {
			t.Errorf("point %d: %d cycles over %d phase rows, want a timed 3-phase timestep",
				i, r.Value.TotalCycles, len(r.Value.Phases))
		}
		for _, ph := range r.Value.Phases {
			if ph.Cycles == 0 {
				t.Errorf("point %d: phase %s reports zero cycles", i, ph.Phase)
			}
		}
	}
	if len(strategies) < 4 {
		t.Errorf("artifact scores %d strategies, want >= 4: %v", len(strategies), strategies)
	}
}
