package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"anton2/internal/core"
)

// Store is the persistent tier of the two-level result cache: canonical
// sweep artifacts content-addressed by request spec hash, plus a snapshot of
// the analytic load-table cache, all under one directory:
//
//	<dir>/artifacts/<hash>.json   canonical artifact bytes (exp.MarshalCanonical)
//	<dir>/loads.json              load-table snapshot (core.SnapshotLoads)
//
// Artifacts are immutable once written (the same spec always produces the
// same bytes, a property the bit-identity tests pin), so a Store never
// invalidates; deleting the directory is the only eviction. Writes go
// through a temp file + rename, so a crash mid-write never leaves a torn
// artifact to be served later.
type Store struct {
	dir string

	// loadsMu serializes load-snapshot writes (artifact writes need no
	// lock: distinct names, atomic rename, identical bytes on collision).
	loadsMu sync.Mutex
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store dir must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) artifactPath(id string) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("serve: bad artifact id %q", id)
	}
	return filepath.Join(s.dir, "artifacts", id+".json"), nil
}

// LoadArtifact returns the cached artifact bytes for id, with ok=false when
// the store has none.
func (s *Store) LoadArtifact(id string) ([]byte, bool, error) {
	path, err := s.artifactPath(id)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: load artifact: %w", err)
	}
	return b, true, nil
}

// SaveArtifact persists the artifact bytes for id atomically.
func (s *Store) SaveArtifact(id string, b []byte) error {
	path, err := s.artifactPath(id)
	if err != nil {
		return err
	}
	return atomicWrite(path, b)
}

// ArtifactCount reports how many artifacts the store holds (metrics).
func (s *Store) ArtifactCount() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, "artifacts"))
	if err != nil {
		return 0
	}
	return len(entries)
}

// SaveLoads snapshots the process-wide analytic load-table cache to disk.
// Called after each completed run; the snapshot only ever grows, and a
// concurrent older write can at worst persist a subset (the next run's
// snapshot catches up).
func (s *Store) SaveLoads() error {
	snap, err := core.SnapshotLoads()
	if err != nil {
		return err
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: marshal loads snapshot: %w", err)
	}
	s.loadsMu.Lock()
	defer s.loadsMu.Unlock()
	return atomicWrite(filepath.Join(s.dir, "loads.json"), b)
}

// RestoreLoads seeds the process-wide load-table cache from disk, returning
// how many tables were restored (0 with no error when no snapshot exists).
func (s *Store) RestoreLoads() (int, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, "loads.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: read loads snapshot: %w", err)
	}
	snap := map[string]json.RawMessage{}
	if err := json.Unmarshal(b, &snap); err != nil {
		return 0, fmt.Errorf("serve: decode loads snapshot: %w", err)
	}
	return core.RestoreLoads(snap)
}

// atomicWrite writes b to path via a same-directory temp file and rename.
func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: write %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write %s: %w", filepath.Base(path), errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write %s: %w", filepath.Base(path), err)
	}
	return nil
}
