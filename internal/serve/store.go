package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"anton2/internal/ckpt"
	"anton2/internal/core"
)

// Store is the persistent tier of the two-level result cache: canonical
// sweep artifacts content-addressed by request spec hash, plus a snapshot of
// the analytic load-table cache and a write-ahead log of admitted-but-
// unfinished runs, all under one directory:
//
//	<dir>/artifacts/<hash>.json   canonical artifact bytes (exp.MarshalCanonical)
//	<dir>/artifacts/<hash>.sum    CRC-32C sidecar verified on every read
//	<dir>/quarantine/             artifacts that failed verification
//	<dir>/wal/<hash>.json         original Request bodies of unfinished runs
//	<dir>/loads.json              load-table snapshot (core.SnapshotLoads)
//
// Artifacts are immutable once written (the same spec always produces the
// same bytes, a property the bit-identity tests pin), so a Store never
// invalidates; deleting the directory is the only eviction. Writes go
// through a same-directory temp file + fsync + rename, so a crash mid-write
// never leaves a torn artifact to be served later. Reads verify the CRC-32C
// sidecar: an artifact whose bytes do not match (bit rot, truncation by an
// external actor, a partially copied cache directory) is moved to
// quarantine/ and reported as a miss, so the server transparently
// re-simulates it — determinism makes the replacement byte-identical.
type Store struct {
	dir string

	// Logf, when non-nil, receives operational log lines (quarantine
	// events, WAL cleanup failures). NewServer points it at Config.Logf.
	Logf func(format string, args ...any)

	// Quarantined counts artifacts moved aside after failing verification.
	Quarantined atomic.Uint64

	// loadsMu serializes load-snapshot writes (artifact writes need no
	// lock: distinct names, atomic rename, identical bytes on collision).
	loadsMu sync.Mutex
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store dir must not be empty")
	}
	for _, sub := range []string{"artifacts", "wal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) artifactPath(id string) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("serve: bad artifact id %q", id)
	}
	return filepath.Join(s.dir, "artifacts", id+".json"), nil
}

// sumPath is the CRC-32C sidecar path next to an artifact.
func (s *Store) sumPath(id string) string {
	return filepath.Join(s.dir, "artifacts", id+".sum")
}

// LoadArtifact returns the cached artifact bytes for id, with ok=false when
// the store has none. The bytes are verified against the CRC-32C sidecar
// written by SaveArtifact; on mismatch the artifact is quarantined and
// reported as a miss so the caller re-simulates. A pre-sidecar artifact
// (older store layout) is structurally checked and its sidecar backfilled.
func (s *Store) LoadArtifact(id string) ([]byte, bool, error) {
	path, err := s.artifactPath(id)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: load artifact: %w", err)
	}
	got := ckpt.ChecksumHex(b)
	want, serr := os.ReadFile(s.sumPath(id))
	switch {
	case serr == nil:
		if strings.TrimSpace(string(want)) != got {
			s.quarantine(id, "checksum mismatch")
			return nil, false, nil
		}
	case errors.Is(serr, fs.ErrNotExist):
		// Legacy artifact with no sidecar: the strongest available check
		// is structural. A torn or truncated artifact fails it; a passing
		// one gets its sidecar backfilled so future reads verify fully.
		if !json.Valid(b) {
			s.quarantine(id, "invalid JSON (no checksum sidecar)")
			return nil, false, nil
		}
		if err := ckpt.AtomicWriteFile(s.sumPath(id), []byte(got+"\n")); err != nil {
			s.logf("serve: backfill checksum for %s: %v", id, err)
		}
	default:
		return nil, false, fmt.Errorf("serve: load artifact checksum: %w", serr)
	}
	return b, true, nil
}

// quarantine moves a failed artifact (and its sidecar, if any) out of the
// serving path so the next submission re-simulates the spec.
func (s *Store) quarantine(id, reason string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.logf("serve: quarantine %s: %v", id, err)
		return
	}
	for _, ext := range []string{".json", ".sum"} {
		src := filepath.Join(s.dir, "artifacts", id+ext)
		if err := os.Rename(src, filepath.Join(qdir, id+ext)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.logf("serve: quarantine %s: %v", id, err)
		}
	}
	s.Quarantined.Add(1)
	s.logf("serve: quarantined artifact %s: %s", id, reason)
}

// SaveArtifact persists the artifact bytes for id atomically, with a
// CRC-32C sidecar that LoadArtifact verifies on every read. The artifact is
// durable before the sidecar is written, so a crash between the two writes
// at worst leaves a legacy-layout artifact that the next read backfills.
func (s *Store) SaveArtifact(id string, b []byte) error {
	path, err := s.artifactPath(id)
	if err != nil {
		return err
	}
	if err := ckpt.AtomicWriteFile(path, b); err != nil {
		return fmt.Errorf("serve: write artifact %s: %w", id, err)
	}
	if err := ckpt.AtomicWriteFile(s.sumPath(id), []byte(ckpt.ChecksumHex(b)+"\n")); err != nil {
		return fmt.Errorf("serve: write artifact checksum %s: %w", id, err)
	}
	return nil
}

// ArtifactCount reports how many artifacts the store holds (metrics).
func (s *Store) ArtifactCount() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "artifacts", "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}

// walPath returns the write-ahead-log entry path for a run id.
func (s *Store) walPath(id string) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("serve: bad wal id %q", id)
	}
	return filepath.Join(s.dir, "wal", id+".json"), nil
}

// SaveWAL durably records an admitted run's original request body so a
// restarted server can re-admit and finish it. Written before the run
// executes; removed by RemoveWAL only once the artifact is persisted.
func (s *Store) SaveWAL(id string, body []byte) error {
	path, err := s.walPath(id)
	if err != nil {
		return err
	}
	if err := ckpt.AtomicWriteFile(path, body); err != nil {
		return fmt.Errorf("serve: write wal %s: %w", id, err)
	}
	return nil
}

// RemoveWAL drops a run's write-ahead-log entry after its artifact is safely
// on disk (or the entry proved unusable). Missing entries are fine: a run
// admitted before the WAL existed, or already cleaned up.
func (s *Store) RemoveWAL(id string) {
	path, err := s.walPath(id)
	if err != nil {
		return
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.logf("serve: remove wal %s: %v", id, err)
	}
}

// WALEntry is one unfinished run recorded in the write-ahead log.
type WALEntry struct {
	ID   string
	Body []byte
}

// ListWAL returns every write-ahead-log entry, sorted by id for a
// deterministic re-admission order.
func (s *Store) ListWAL() ([]WALEntry, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "wal"))
	if err != nil {
		return nil, fmt.Errorf("serve: list wal: %w", err)
	}
	var out []WALEntry
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".json")
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || !validID(id) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "wal", e.Name()))
		if err != nil {
			s.logf("serve: read wal %s: %v", id, err)
			continue
		}
		out = append(out, WALEntry{ID: id, Body: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SaveLoads snapshots the process-wide analytic load-table cache to disk.
// Called after each completed run; the snapshot only ever grows, and a
// concurrent older write can at worst persist a subset (the next run's
// snapshot catches up).
func (s *Store) SaveLoads() error {
	snap, err := core.SnapshotLoads()
	if err != nil {
		return err
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: marshal loads snapshot: %w", err)
	}
	s.loadsMu.Lock()
	defer s.loadsMu.Unlock()
	if err := ckpt.AtomicWriteFile(filepath.Join(s.dir, "loads.json"), b); err != nil {
		return fmt.Errorf("serve: write loads snapshot: %w", err)
	}
	return nil
}

// RestoreLoads seeds the process-wide load-table cache from disk, returning
// how many tables were restored (0 with no error when no snapshot exists).
func (s *Store) RestoreLoads() (int, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, "loads.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: read loads snapshot: %w", err)
	}
	snap := map[string]json.RawMessage{}
	if err := json.Unmarshal(b, &snap); err != nil {
		return 0, fmt.Errorf("serve: decode loads snapshot: %w", err)
	}
	return core.RestoreLoads(snap)
}
