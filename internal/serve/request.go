package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"anton2/internal/arbiter"
	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/workload"
)

// Request is one experiment submission: a family (the same families
// anton2bench runs) plus its sweep axes. Every field that influences results
// is folded into the canonical spec, so two requests with the same canonical
// string are the same experiment — they collapse to one run in flight and
// share one content-addressed artifact forever.
type Request struct {
	// Family selects the experiment: throughput, blend, latency, energy,
	// faultsweep, routecompare, or mdstep.
	Family string `json:"family"`
	// Shape is the torus shape, e.g. "4x4x2" (ignored by energy, which
	// always measures the single-node loop machine like Figure 13).
	Shape string `json:"shape,omitempty"`
	// Pattern is the traffic pattern for throughput and faultsweep
	// (default "uniform"): uniform, 1-hop, 2-hop, tornado,
	// reverse-tornado, bit-complement, nearest-neighbor.
	Pattern string `json:"pattern,omitempty"`
	// Arbiter selects throughput arbitration: "rr" (default) or "iw".
	Arbiter string `json:"arbiter,omitempty"`
	// Batches are the throughput sweep points (packets per core).
	Batches []int `json:"batches,omitempty"`
	// Batch is the per-point batch size for blend and faultsweep.
	Batch int `json:"batch,omitempty"`
	// Fractions are the blend sweep points (tornado fraction, 0..1).
	Fractions []float64 `json:"fractions,omitempty"`
	// Weights is the blend weight mode: none, forward, reverse, both.
	Weights string `json:"weights,omitempty"`
	// Rates are the faultsweep corruption rates (0..1).
	Rates []float64 `json:"rates,omitempty"`
	// Fault is the faultsweep base fault spec held fixed across points,
	// e.g. "stall=0.001,faillinks=1" (same syntax as anton2bench -fault).
	Fault string `json:"fault,omitempty"`
	// Payload is the energy payload kind: zeros, ones, random.
	Payload string `json:"payload,omitempty"`
	// Flits is the energy stream length (default 400).
	Flits int `json:"flits,omitempty"`
	// Strategies are the routecompare routing strategies to score by
	// registered name (default: every registered strategy).
	Strategies []string `json:"strategies,omitempty"`
	// FailLinks are the routecompare permanent-outage sweep points
	// (default [0], the healthy machine).
	FailLinks []int `json:"faillinks,omitempty"`
	// The mdstep workload knobs; zero values take the workload defaults
	// (radius-1 halo of 8 packets in bursts of 4, 2 multicasts at fanout
	// radius 1, 2 reduction packets per node, 1 timestep). Strategies
	// selects the routing strategies to sweep, as in routecompare.
	Halo          int `json:"halo,omitempty"`
	HaloPackets   int `json:"halopackets,omitempty"`
	HaloBurst     int `json:"haloburst,omitempty"`
	Fanout        int `json:"fanout,omitempty"`
	Multicasts    int `json:"multicasts,omitempty"`
	ReducePackets int `json:"reducepackets,omitempty"`
	Timesteps     int `json:"timesteps,omitempty"`
}

// RequestError is a validation failure: the submission never reached the
// queue. It maps to HTTP 400 exactly where the CLI harness exits 2.
type RequestError struct {
	Field string `json:"field,omitempty"`
	Msg   string `json:"msg"`
}

func (e *RequestError) Error() string {
	if e.Field == "" {
		return "serve: invalid request: " + e.Msg
	}
	return fmt.Sprintf("serve: invalid request field %q: %s", e.Field, e.Msg)
}

func badField(field, format string, args ...any) error {
	return &RequestError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// maxSweepPoints bounds a single request's fan-out so one submission cannot
// occupy the worker pool unboundedly.
const maxSweepPoints = 64

// maxRequestBytes bounds the decoded submission body.
const maxRequestBytes = 1 << 16

// ParseRequest decodes and validates one submission body.
func ParseRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	req := &Request{}
	if err := dec.Decode(req); err != nil {
		return nil, &RequestError{Msg: "malformed JSON: " + err.Error()}
	}
	if _, err := req.compile(); err != nil {
		return nil, err
	}
	return req, nil
}

// compiled is a validated request lowered to the pieces the runner needs.
type compiled struct {
	spec *exp.Spec
	// build constructs the jobs. It is re-invoked per execution so each
	// point can carry its own telemetry progress hook.
	build func(tel func() *telemetry.Options) []exp.Job
}

// Validate checks the request without building jobs.
func (q *Request) Validate() error {
	_, err := q.compile()
	return err
}

// Canonical returns the canonical sweep encoding, e.g.
// "serve-throughput{shape=4x2x2 pattern=uniform arb=rr batches=32|64}".
func (q *Request) Canonical() (string, error) {
	c, err := q.compile()
	if err != nil {
		return "", err
	}
	return c.spec.Canonical(), nil
}

// ID returns the content address of the request's artifact: the hex spec
// hash of the canonical sweep encoding.
func (q *Request) ID() (string, error) {
	c, err := q.compile()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", c.spec.Hash()), nil
}

// Jobs builds the sweep's jobs; tel supplies per-point telemetry options
// (nil options disable collection for that point).
func (q *Request) Jobs(tel func() *telemetry.Options) ([]exp.Job, error) {
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	return c.build(tel), nil
}

func (q *Request) compile() (*compiled, error) {
	switch q.Family {
	case "throughput":
		return q.compileThroughput()
	case "blend":
		return q.compileBlend()
	case "latency":
		return q.compileLatency()
	case "energy":
		return q.compileEnergy()
	case "faultsweep":
		return q.compileFaultsweep()
	case "routecompare":
		return q.compileRouteCompare()
	case "mdstep":
		return q.compileMDStep()
	case "":
		return nil, badField("family", "missing (throughput, blend, latency, energy, faultsweep, routecompare, mdstep)")
	default:
		return nil, badField("family", "unknown family %q (throughput, blend, latency, energy, faultsweep, routecompare, mdstep)", q.Family)
	}
}

func (q *Request) shape() (topo.TorusShape, error) {
	s := q.Shape
	if s == "" {
		return topo.TorusShape{}, badField("shape", "missing (e.g. \"4x4x2\")")
	}
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, badField("shape", "bad shape %q (want KxKxK)", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	if err := shape.Validate(); err != nil {
		return topo.TorusShape{}, badField("shape", "%v", err)
	}
	return shape, nil
}

func (q *Request) pattern() (traffic.Pattern, error) {
	switch q.Pattern {
	case "", "uniform":
		return traffic.Uniform{}, nil
	case "1-hop":
		return traffic.NHop{N: 1}, nil
	case "2-hop":
		return traffic.NHop{N: 2}, nil
	case "tornado":
		return traffic.Tornado(), nil
	case "reverse-tornado":
		return traffic.ReverseTornado(), nil
	case "bit-complement":
		return traffic.BitComplement(), nil
	case "nearest-neighbor":
		return traffic.NearestNeighbor{}, nil
	}
	return nil, badField("pattern", "unknown pattern %q", q.Pattern)
}

// PatternNames lists every pattern name a request accepts (shared with the
// load generator, which sweeps the full set).
func PatternNames() []string {
	return []string{"uniform", "1-hop", "2-hop", "tornado", "reverse-tornado", "bit-complement", "nearest-neighbor"}
}

func (q *Request) compileThroughput() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	pat, err := q.pattern()
	if err != nil {
		return nil, err
	}
	arb := q.Arbiter
	if arb == "" {
		arb = "rr"
	}
	if arb != "rr" && arb != "iw" {
		return nil, badField("arbiter", "unknown arbiter %q (rr or iw)", arb)
	}
	if len(q.Batches) == 0 {
		return nil, badField("batches", "missing (e.g. [64, 256])")
	}
	if len(q.Batches) > maxSweepPoints {
		return nil, badField("batches", "%d points exceed the %d-point sweep bound", len(q.Batches), maxSweepPoints)
	}
	for _, b := range q.Batches {
		if b <= 0 {
			return nil, badField("batches", "batch must be positive, got %d", b)
		}
	}
	spec := exp.NewSpec("serve-throughput").
		Add("shape", shape).Add("pattern", pat.Name()).Add("arb", arb).Add("batches", intList(q.Batches))
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(q.Batches))
		for _, b := range q.Batches {
			// Mirrors anton2bench fig9: default machine, weights from
			// uniform loads regardless of the measured pattern.
			mc := machine.DefaultConfig(shape)
			if arb == "iw" {
				mc.Arbiter = arbiter.KindInverseWeighted
			}
			mc.Telemetry = tel()
			jobs = append(jobs, core.ThroughputJob(core.ThroughputConfig{
				Machine:        mc,
				Pattern:        pat,
				WeightPatterns: []traffic.Pattern{traffic.Uniform{}},
				Batch:          b,
			}))
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func (q *Request) compileBlend() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	var mode core.WeightMode
	switch q.Weights {
	case "", "none":
		mode = core.WeightsNone
	case "forward":
		mode = core.WeightsForward
	case "reverse":
		mode = core.WeightsReverse
	case "both":
		mode = core.WeightsBoth
	default:
		return nil, badField("weights", "unknown weight mode %q (none, forward, reverse, both)", q.Weights)
	}
	if len(q.Fractions) == 0 {
		return nil, badField("fractions", "missing (e.g. [0, 0.5, 1])")
	}
	if len(q.Fractions) > maxSweepPoints {
		return nil, badField("fractions", "%d points exceed the %d-point sweep bound", len(q.Fractions), maxSweepPoints)
	}
	for _, f := range q.Fractions {
		if f < 0 || f > 1 || f != f {
			return nil, badField("fractions", "fraction must be in [0, 1], got %g", f)
		}
	}
	if q.Batch <= 0 {
		return nil, badField("batch", "must be positive, got %d", q.Batch)
	}
	spec := exp.NewSpec("serve-blend").
		Add("shape", shape).Add("weights", mode).Add("fractions", floatList(q.Fractions)).Add("batch", q.Batch)
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(q.Fractions))
		for _, f := range q.Fractions {
			mc := machine.DefaultConfig(shape)
			mc.Telemetry = tel()
			jobs = append(jobs, core.BlendJob(core.BlendConfig{
				Machine:         mc,
				Weights:         mode,
				ForwardFraction: f,
				Batch:           q.Batch,
			}))
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func (q *Request) compileLatency() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	spec := exp.NewSpec("serve-latency").Add("shape", shape)
	build := func(tel func() *telemetry.Options) []exp.Job {
		// Mirrors anton2bench fig11: the calibrated default overheads.
		lcfg := core.DefaultLatencyConfig(shape)
		lcfg.Machine.Telemetry = tel()
		return []exp.Job{core.LatencyJob(lcfg)}
	}
	return &compiled{spec: spec, build: build}, nil
}

// energyRates is the Figure 13 injection-rate sweep.
var energyRates = [][2]int{{1, 8}, {1, 4}, {1, 2}, {5, 8}, {3, 4}, {7, 8}, {1, 1}}

func (q *Request) compileEnergy() (*compiled, error) {
	var payload core.PayloadKind
	switch q.Payload {
	case "", "zeros":
		payload = core.PayloadZeros
	case "ones":
		payload = core.PayloadOnes
	case "random":
		payload = core.PayloadRandom
	default:
		return nil, badField("payload", "unknown payload %q (zeros, ones, random)", q.Payload)
	}
	flits := q.Flits
	if flits == 0 {
		flits = 400
	}
	if flits < 0 {
		return nil, badField("flits", "must be positive, got %d", flits)
	}
	spec := exp.NewSpec("serve-energy").Add("payload", payload).Add("flits", flits)
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(energyRates))
		for _, r := range energyRates {
			// Mirrors anton2bench fig13: the single-node loop machine.
			mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
			mc.Telemetry = tel()
			jobs = append(jobs, core.EnergyJob(core.EnergyConfig{
				Machine: mc, Model: power.PaperModel,
				RateNum: r[0], RateDen: r[1],
				Payload: payload, Flits: flits,
			}))
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func (q *Request) compileFaultsweep() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	pat, err := q.pattern()
	if err != nil {
		return nil, err
	}
	if len(q.Rates) == 0 {
		return nil, badField("rates", "missing (e.g. [0, 0.01, 0.05])")
	}
	if len(q.Rates) > maxSweepPoints {
		return nil, badField("rates", "%d points exceed the %d-point sweep bound", len(q.Rates), maxSweepPoints)
	}
	for _, r := range q.Rates {
		if r < 0 || r > 1 || r != r {
			return nil, badField("rates", "corruption rate must be in [0, 1], got %g", r)
		}
	}
	if q.Batch <= 0 {
		return nil, badField("batch", "must be positive, got %d", q.Batch)
	}
	var base fault.Spec
	if q.Fault != "" {
		base, err = fault.ParseSpec(q.Fault)
		if err != nil {
			return nil, badField("fault", "%v", err)
		}
	}
	spec := exp.NewSpec("serve-faultsweep").
		Add("shape", shape).Add("pattern", pat.Name()).Add("rates", floatList(q.Rates)).
		Add("batch", q.Batch).Add("fault", base.Canonical())
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(q.Rates))
		for _, r := range q.Rates {
			// Mirrors anton2bench faultsweep: the base spec held fixed,
			// corruption rate swept, fault layer attached even at rate 0.
			mc := machine.DefaultConfig(shape)
			mc.Telemetry = tel()
			fs := base
			fs.CorruptRate = r
			mc.Fault = &fs
			jobs = append(jobs, core.FaultJob(core.FaultConfig{
				Machine: mc,
				Pattern: pat,
				Batch:   q.Batch,
			}))
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func (q *Request) compileRouteCompare() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	pat, err := q.pattern()
	if err != nil {
		return nil, err
	}
	if q.Batch <= 0 {
		return nil, badField("batch", "must be positive, got %d", q.Batch)
	}
	names := q.Strategies
	if len(names) == 0 {
		names = route.StrategyNames()
	}
	strats := make([]route.Strategy, 0, len(names))
	for _, n := range names {
		s, ok := route.StrategyByName(n)
		if !ok {
			return nil, badField("strategies", "unknown strategy %q (registered: %s)", n, strList(route.StrategyNames()))
		}
		strats = append(strats, s)
	}
	fails := q.FailLinks
	if len(fails) == 0 {
		fails = []int{0}
	}
	for _, n := range fails {
		if n < 0 {
			return nil, badField("faillinks", "must be >= 0, got %d", n)
		}
	}
	if pts := len(strats) * len(fails); pts > maxSweepPoints {
		return nil, badField("faillinks", "%d points exceed the %d-point sweep bound", pts, maxSweepPoints)
	}
	spec := exp.NewSpec("serve-routecompare").
		Add("shape", shape).Add("pattern", pat.Name()).Add("batch", q.Batch).
		Add("strategies", strList(names)).Add("faillinks", intList(fails))
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(strats)*len(fails))
		for _, strat := range strats {
			for _, n := range fails {
				// Mirrors anton2bench routecompare: the healthy cell of each
				// strategy carries the static deadlock verdict.
				mc := machine.DefaultConfig(shape)
				mc.Scheme = strat
				mc.Telemetry = tel()
				if n > 0 {
					mc.Fault = &fault.Spec{FailLinks: n}
				}
				jobs = append(jobs, core.RouteCompareJob(core.RouteCompareConfig{
					Machine:        mc,
					Pattern:        pat,
					Batch:          q.Batch,
					VerifyDeadlock: n == 0,
				}))
			}
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func (q *Request) compileMDStep() (*compiled, error) {
	shape, err := q.shape()
	if err != nil {
		return nil, err
	}
	wl := workload.Spec{
		HaloRadius: q.Halo, HaloPackets: q.HaloPackets, HaloBurst: q.HaloBurst,
		FanoutRadius: q.Fanout, Multicasts: q.Multicasts,
		ReducePackets: q.ReducePackets, Timesteps: q.Timesteps,
	}.WithDefaults()
	if err := wl.Validate(); err != nil {
		return nil, badField("workload", "%v", err)
	}
	names := q.Strategies
	if len(names) == 0 {
		names = route.StrategyNames()
	}
	strats := make([]route.Strategy, 0, len(names))
	for _, n := range names {
		s, ok := route.StrategyByName(n)
		if !ok {
			return nil, badField("strategies", "unknown strategy %q (registered: %s)", n, strList(route.StrategyNames()))
		}
		strats = append(strats, s)
	}
	if len(strats) > maxSweepPoints {
		return nil, badField("strategies", "%d points exceed the %d-point sweep bound", len(strats), maxSweepPoints)
	}
	spec := exp.NewSpec("serve-mdstep").
		Add("shape", shape).Add("workload", wl.Canonical()).Add("strategies", strList(names))
	build := func(tel func() *telemetry.Options) []exp.Job {
		jobs := make([]exp.Job, 0, len(strats))
		for _, strat := range strats {
			// Mirrors anton2bench mdstep: one point per strategy, the same
			// phased workload, multicast tables derived inside core.
			mc := machine.DefaultConfig(shape)
			mc.Telemetry = tel()
			mc.Scheme = strat
			jobs = append(jobs, core.MDStepJob(core.MDStepConfig{Machine: mc, Workload: wl}))
		}
		return jobs
	}
	return &compiled{spec: spec, build: build}, nil
}

func strList(xs []string) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "|"
		}
		s += x
	}
	return s
}

func intList(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "|"
		}
		s += fmt.Sprint(x)
	}
	return s
}

func floatList(xs []float64) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "|"
		}
		s += fmt.Sprintf("%g", x)
	}
	return s
}
