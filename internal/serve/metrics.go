package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"anton2/internal/core"
)

// Metrics is the server's observable state: monotonic counters plus live
// gauges, all lock-free. Rendered in Prometheus text exposition format by
// /metrics (append ?format=json for a JSON object).
type Metrics struct {
	// Admission.
	QueueDepth   atomic.Int64  // runs waiting for a worker slot
	ActiveRuns   atomic.Int64  // runs holding a worker slot
	Rejected429  atomic.Uint64 // submissions refused: queue full
	Rejected504  atomic.Uint64 // submissions refused: deadline in queue
	RejectedGone atomic.Uint64 // submissions refused: server draining

	// Runs.
	RunsStarted   atomic.Uint64 // simulations actually launched
	RunsCompleted atomic.Uint64
	RunsFailed    atomic.Uint64

	// Request-level cache accounting, by tier.
	HitsFlight atomic.Uint64 // collapsed onto an identical in-flight run
	HitsMemory atomic.Uint64 // served from the in-process artifact cache
	HitsDisk   atomic.Uint64 // served from the persistent store
	Misses     atomic.Uint64 // required a fresh simulation

	// Point-level accounting across all runs.
	PointsRun    atomic.Uint64
	PointsCached atomic.Uint64
	PointsFailed atomic.Uint64
	SimCycles    atomic.Uint64 // simulated cycles, summed over completed points
}

// hitRate returns hits/(hits+misses) over every cache tier, NaN-free.
func (m *Metrics) hitRate() float64 {
	hits := m.HitsFlight.Load() + m.HitsMemory.Load() + m.HitsDisk.Load()
	total := hits + m.Misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// snapshot flattens every metric into name -> value, with the derived
// gauges (utilization, hit rate) computed consistently for both formats.
func (m *Metrics) snapshot(workers int) map[string]float64 {
	active := m.ActiveRuns.Load()
	util := 0.0
	if workers > 0 {
		util = float64(active) / float64(workers)
	}
	return map[string]float64{
		"anton2serve_queue_depth":                      float64(m.QueueDepth.Load()),
		"anton2serve_active_runs":                      float64(active),
		"anton2serve_workers":                          float64(workers),
		"anton2serve_worker_utilization":               util,
		"anton2serve_rejected_total{code=\"429\"}":     float64(m.Rejected429.Load()),
		"anton2serve_rejected_total{code=\"504\"}":     float64(m.Rejected504.Load()),
		"anton2serve_rejected_total{code=\"503\"}":     float64(m.RejectedGone.Load()),
		"anton2serve_runs_total{state=\"started\"}":    float64(m.RunsStarted.Load()),
		"anton2serve_runs_total{state=\"completed\"}":  float64(m.RunsCompleted.Load()),
		"anton2serve_runs_total{state=\"failed\"}":     float64(m.RunsFailed.Load()),
		"anton2serve_cache_hits_total{tier=\"flight\"}": float64(m.HitsFlight.Load()),
		"anton2serve_cache_hits_total{tier=\"memory\"}": float64(m.HitsMemory.Load()),
		"anton2serve_cache_hits_total{tier=\"disk\"}":   float64(m.HitsDisk.Load()),
		"anton2serve_cache_misses_total":               float64(m.Misses.Load()),
		"anton2serve_cache_hit_rate":                   m.hitRate(),
		"anton2serve_points_total{state=\"run\"}":      float64(m.PointsRun.Load()),
		"anton2serve_points_total{state=\"cached\"}":   float64(m.PointsCached.Load()),
		"anton2serve_points_total{state=\"failed\"}":   float64(m.PointsFailed.Load()),
		"anton2serve_sim_cycles_total":                 float64(m.SimCycles.Load()),
		"anton2serve_loads_cached":                     float64(core.CachedLoadsLen()),
	}
}

// renderText renders the Prometheus text exposition format, sorted by name
// for stable scrapes and diffs.
func (m *Metrics) renderText(workers int) string {
	snap := m.snapshot(workers)
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %g\n", n, snap[n])
	}
	return b.String()
}
