package deadlock

import (
	"strings"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

func configFor(t testing.TB, shape topo.TorusShape, s route.Scheme) *route.Config {
	t.Helper()
	m, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := route.NewConfig(m)
	cfg.Scheme = s
	return cfg
}

// TestAntonSchemeDeadlockFree is the central Section 2.5 claim: the n+1-VC
// promotion algorithm is deadlock-free under minimal routing, with datelines
// between nodes k-1 and 0 in both directions.
func TestAntonSchemeDeadlockFree(t *testing.T) {
	shapes := []topo.TorusShape{
		topo.Shape3(2, 2, 2),
		topo.Shape3(4, 4, 4),
		topo.Shape3(8, 2, 2),
		topo.Shape3(5, 3, 2),
		topo.Shape3(3, 3, 3),
		topo.Shape3(4, 4, 1),
		topo.Shape3(16, 1, 1),
	}
	for _, shape := range shapes {
		t.Run(shape.String(), func(t *testing.T) {
			if err := Verify(configFor(t, shape, route.AntonScheme{}), Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBaselineSchemeDeadlockFree: the prior 2n-VC approach is also
// deadlock-free (it just costs more VCs).
func TestBaselineSchemeDeadlockFree(t *testing.T) {
	shapes := []topo.TorusShape{
		topo.Shape3(4, 4, 4),
		topo.Shape3(5, 3, 2),
		topo.Shape3(8, 2, 2),
	}
	for _, shape := range shapes {
		t.Run(shape.String(), func(t *testing.T) {
			if err := Verify(configFor(t, shape, route.BaselineScheme{}), Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNoDatelineSchemeHasCycle: removing dateline VC promotion creates a
// cyclic dependency around any ring with radix >= 4 (where minimal routes of
// two or more hops exist), validating that the analyzer detects real
// hazards.
func TestNoDatelineSchemeHasCycle(t *testing.T) {
	cfg := configFor(t, topo.Shape3(4, 1, 1), route.NoDatelineScheme{})
	g := Build(cfg, Options{})
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("broken no-dateline scheme reported deadlock-free")
	}
	desc := g.DescribeCycle(cycle)
	if !strings.Contains(desc, "torus") {
		t.Errorf("cycle should involve torus channels, got %s", desc)
	}
}

// TestNoDatelineSchemeSafeOnTinyRings: with radix <= 3 every minimal ring
// route is a single hop, so even the broken scheme happens to be acyclic;
// the analyzer must not report false positives.
func TestNoDatelineSchemeSafeOnTinyRings(t *testing.T) {
	cfg := configFor(t, topo.Shape3(3, 2, 2), route.NoDatelineScheme{})
	if err := Verify(cfg, Options{}); err != nil {
		t.Fatalf("false positive on tiny rings: %v", err)
	}
}

// TestMGroupSingleVCAcyclic: direction-order routing is deadlock-free with a
// single VC within the M-group (Section 2.4). Restrict the graph to M-group
// channels at VC 0 and check acyclicity for every direction order.
func TestMGroupSingleVCAcyclic(t *testing.T) {
	for _, ord := range topo.AllDirOrders() {
		cfg := configFor(t, topo.Shape3(2, 2, 1), route.AntonScheme{})
		cfg.DirOrder = ord
		g := Build(cfg, Options{})
		// The full graph being acyclic implies the M-restricted graph is
		// too; verify the full graph.
		if cycle := g.FindCycle(); cycle != nil {
			t.Fatalf("direction order %v: %s", ord, g.DescribeCycle(cycle))
		}
	}
}

func TestGraphStatsReasonable(t *testing.T) {
	cfg := configFor(t, topo.Shape3(2, 2, 2), route.AntonScheme{})
	g := Build(cfg, Options{})
	if g.Routes() < 8*8*12 {
		t.Errorf("only %d routes enumerated; expected at least all pairs x orders x slices", g.Routes())
	}
	if g.NumEdges() == 0 {
		t.Error("no dependency edges recorded")
	}
}

func TestDescribeCycleAcyclic(t *testing.T) {
	g := &Graph{maxVCs: 4}
	if got := g.DescribeCycle(nil); got != "acyclic" {
		t.Errorf("DescribeCycle(nil) = %q", got)
	}
}

// TestConfigVariantsDeadlockFree covers the shipped configuration space:
// with and without exit-skip crossings, and with skips disabled entirely.
func TestConfigVariantsDeadlockFree(t *testing.T) {
	shapes := []topo.TorusShape{topo.Shape3(4, 4, 2), topo.Shape3(8, 2, 2)}
	variants := []struct {
		name          string
		useSkip, exit bool
	}{
		{"through+exit", true, true},
		{"through-only", true, false},
		{"no-skips", false, false},
	}
	for _, shape := range shapes {
		for _, v := range variants {
			cfg := configFor(t, shape, route.AntonScheme{})
			cfg.UseSkip = v.useSkip
			cfg.ExitSkip = v.exit
			if err := Verify(cfg, Options{}); err != nil {
				t.Errorf("%v %s: %v", shape, v.name, err)
			}
		}
	}
}

// TestEntryPlusExitSkipIsCyclic pins the design finding of DESIGN.md §6:
// enabling both entry- and exit-side skip crossings creates single-VC
// cycles through the mesh.
func TestEntryPlusExitSkipIsCyclic(t *testing.T) {
	cfg := configFor(t, topo.Shape3(8, 2, 2), route.AntonScheme{})
	cfg.EntrySkip = true
	cfg.ExitSkip = true
	if err := Verify(cfg, Options{}); err == nil {
		t.Fatal("entry+exit skip policy reported deadlock-free; the analyzer should find the mesh cycle")
	}
}
