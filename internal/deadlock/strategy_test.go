package deadlock

import (
	"strings"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// TestRegisteredStrategiesDeadlockFree is the registry-wide property behind
// the routecompare family: every strategy a user can select must verify
// acyclic — on odd and even radices, asymmetric shapes, degenerate
// dimensions, and long rings, so both the mesh (M-group) and torus (T-group)
// arguments are exercised at several radices.
func TestRegisteredStrategiesDeadlockFree(t *testing.T) {
	shapes := []topo.TorusShape{
		topo.Shape3(2, 2, 2),
		topo.Shape3(3, 3, 3),
		topo.Shape3(4, 4, 4),
		topo.Shape3(5, 3, 2),
		topo.Shape3(8, 2, 2),
		topo.Shape3(4, 4, 1),
		topo.Shape3(16, 1, 1),
	}
	for _, strat := range route.Strategies() {
		for _, shape := range shapes {
			t.Run(strat.Name()+"@"+shape.String(), func(t *testing.T) {
				if testing.Short() && shape.NumNodes() > 27 {
					t.Skip("large shape in -short mode")
				}
				if err := Verify(configFor(t, shape, strat), Options{}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestRegisteredStrategiesDeadlockFreeNoSkips re-verifies the registry under
// the skip-channel ablations: a strategy's argument must not depend on a
// particular chip skip policy.
func TestRegisteredStrategiesDeadlockFreeNoSkips(t *testing.T) {
	variants := []struct {
		name          string
		useSkip, exit bool
	}{
		{"through-only", true, false},
		{"no-skips", false, false},
	}
	for _, strat := range route.Strategies() {
		for _, v := range variants {
			t.Run(strat.Name()+"/"+v.name, func(t *testing.T) {
				cfg := configFor(t, topo.Shape3(4, 4, 2), strat)
				cfg.UseSkip = v.useSkip
				cfg.ExitSkip = v.exit
				if err := Verify(cfg, Options{}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestVClessSingleTorusVC pins the headline property of the VC-less
// strategy: the whole verified dependency graph fits in one T-group VC per
// class (Build panics if any walk exceeds the ChannelVCs budget, so merely
// building the graph proves the bound) and its torus routes never touch a
// wrap-around link's dateline VC.
func TestVClessSingleTorusVC(t *testing.T) {
	if got := (route.VClessScheme{}).TorusVCs(); got != 1 {
		t.Fatalf("vcless TorusVCs = %d, want 1", got)
	}
	cfg := configFor(t, topo.Shape3(5, 4, 3), route.VClessScheme{})
	g := Build(cfg, Options{})
	if cycle := g.FindCycle(); cycle != nil {
		t.Fatalf("vcless cycle: %s", g.DescribeCycle(cycle))
	}
}

// TestBrokenSchemeStillCaught is the regression guard that the verifier has
// teeth: the unregistered broken-no-dateline scheme must yield a found,
// describable cycle through torus channels — on every shape with a ring
// long enough for multi-hop minimal routes.
func TestBrokenSchemeStillCaught(t *testing.T) {
	if _, registered := route.StrategyByName((route.NoDatelineScheme{}).Name()); registered {
		t.Fatal("broken-no-dateline must not be a registered strategy")
	}
	for _, shape := range []topo.TorusShape{
		topo.Shape3(4, 1, 1),
		topo.Shape3(5, 3, 2),
		topo.Shape3(4, 4, 4),
	} {
		t.Run(shape.String(), func(t *testing.T) {
			cfg := configFor(t, shape, route.NoDatelineScheme{})
			g := Build(cfg, Options{})
			cycle := g.FindCycle()
			if cycle == nil {
				t.Fatal("broken no-dateline scheme reported deadlock-free")
			}
			desc := g.DescribeCycle(cycle)
			if !strings.Contains(desc, "torus") || !strings.Contains(desc, ".vc") {
				t.Errorf("cycle description should name torus channel VCs, got %s", desc)
			}
			if err := Verify(cfg, Options{}); err == nil {
				t.Error("Verify must reject the broken scheme")
			} else if !strings.Contains(err.Error(), "broken-no-dateline") {
				t.Errorf("Verify error should name the scheme, got %v", err)
			}
		})
	}
}

// TestStrategyGraphsDiffer sanity-checks that strategy enumeration feeds the
// analyzer: the vcless graph must be dramatically smaller than anton's (one
// dimension order and one T-VC instead of six orders and four VCs).
func TestStrategyGraphsDiffer(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	anton := Build(configFor(t, shape, route.AntonScheme{}), Options{})
	vcless := Build(configFor(t, shape, route.VClessScheme{}), Options{})
	if vcless.Routes() >= anton.Routes() {
		t.Errorf("vcless enumerated %d routes, anton %d; restricted policy should enumerate fewer",
			vcless.Routes(), anton.Routes())
	}
	if vcless.NumEdges() >= anton.NumEdges() {
		t.Errorf("vcless graph has %d edges, anton %d; single-VC graph should be smaller",
			vcless.NumEdges(), anton.NumEdges())
	}
}
