// Package deadlock statically verifies the deadlock-freedom argument of
// Section 2.5: it enumerates routes with the same transition functions the
// simulator uses, builds the dependency graph between (channel, VC) pairs,
// and searches it for cycles. The Anton VC-promotion scheme and the baseline
// 2n-VC scheme must be acyclic; deliberately broken schemes must not be.
package deadlock

import (
	"fmt"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// Graph is a dependency graph over (channel, VC) resources. An edge a->b
// means a packet can occupy a's buffer while requesting b's.
type Graph struct {
	cfg    *route.Config
	maxVCs int
	adj    map[int32]map[int32]struct{}
	routes int
}

// Options tunes route enumeration. Zero values select full coverage.
type Options struct {
	// EndpointStride samples endpoint pairs: source endpoint for pair
	// (a, b) rotates through all endpoints with this stride (1 = a single
	// deterministic endpoint pair per node pair rotated for coverage).
	// The on-chip M-group dependencies depend only on router positions,
	// so rotating endpoints across node pairs covers all attachments.
	EndpointStride int
}

// nodeID packs a (channel, vc) resource.
func (g *Graph) nodeID(ch int, vc uint8) int32 { return int32(ch*g.maxVCs + int(vc)) }

// Resource unpacks a graph node into channel and VC for diagnostics.
func (g *Graph) Resource(n int32) (ch int, vc int) {
	return int(n) / g.maxVCs, int(n) % g.maxVCs
}

// Build enumerates all node pairs with every routing choice the strategy
// admits (dimension order, slice, tie-breaks) and records the channel/VC
// dependencies of each route. Endpoint attachments are rotated
// deterministically so that every endpoint participates across the
// enumeration. Restricted-path strategies contribute exactly their
// restricted choice sets, so the graph verified here is the graph the
// simulator routes in.
func Build(cfg *route.Config, opts Options) *Graph {
	stride := opts.EndpointStride
	if stride <= 0 {
		stride = 1
	}
	g := &Graph{
		cfg:    cfg,
		maxVCs: maxSchemeVCs(cfg.Scheme),
		adj:    make(map[int32]map[int32]struct{}),
	}
	strat := route.AsStrategy(cfg.Scheme)
	m := cfg.Machine
	n := m.NumNodes()
	rot := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			srcEp := rot % topo.NumEndpoints
			dstEp := (rot * 7) % topo.NumEndpoints
			rot += stride
			src := topo.NodeEp{Node: a, Ep: srcEp}
			dst := topo.NodeEp{Node: b, Ep: dstEp}
			for _, wc := range strat.Enumerate(m.Shape, m.Shape.Coord(a), m.Shape.Coord(b)) {
				g.addRoute(route.Walk(cfg, src, dst, wc.Order, wc.Slice, wc.Ties, route.ClassRequest))
			}
		}
	}
	// Same-node routes between all endpoint pairs exercise every
	// endpoint-channel dependency.
	for ep1 := 0; ep1 < topo.NumEndpoints; ep1++ {
		for ep2 := 0; ep2 < topo.NumEndpoints; ep2++ {
			src := topo.NodeEp{Node: 0, Ep: ep1}
			dst := topo.NodeEp{Node: 0, Ep: ep2}
			c := strat.Choose(cfg, src, dst,
				route.Choices{Order: topo.AllDimOrders[0], Slice: 0, Ties: [3]int8{1, 1, 1}}, route.ClassRequest)
			g.addRoute(route.Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, route.ClassRequest))
		}
	}
	return g
}

func (g *Graph) addRoute(hops []route.Hop) {
	g.routes++
	m := g.cfg.Machine
	for i := 0; i+1 < len(hops); i++ {
		budget := route.ChannelVCs(g.cfg.Scheme, m.ChanGroup(hops[i].Chan))
		if int(hops[i].VC) >= budget {
			panic(fmt.Sprintf("deadlock: VC %d exceeds budget %d on %s", hops[i].VC, budget, m.ChanName(hops[i].Chan)))
		}
		from := g.nodeID(hops[i].Chan, hops[i].VC)
		to := g.nodeID(hops[i+1].Chan, hops[i+1].VC)
		set, ok := g.adj[from]
		if !ok {
			set = make(map[int32]struct{})
			g.adj[from] = set
		}
		set[to] = struct{}{}
	}
}

// Routes returns how many routes were enumerated into the graph.
func (g *Graph) Routes() int { return g.routes }

// NumEdges returns the dependency edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, s := range g.adj {
		total += len(s)
	}
	return total
}

// FindCycle returns a dependency cycle as a list of (channel, VC) resources,
// or nil if the graph is acyclic. The cycle is reported in traversal order
// with the first node repeated at the end.
func (g *Graph) FindCycle() []int32 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int32]uint8, len(g.adj))
	parent := make(map[int32]int32)

	var cycleStart, cycleEnd int32
	found := false

	// Iterative DFS to avoid recursion depth issues on large graphs.
	type frame struct {
		node  int32
		succs []int32
		idx   int
	}
	succsOf := func(n int32) []int32 {
		out := make([]int32, 0, len(g.adj[n]))
		for s := range g.adj[n] {
			out = append(out, s)
		}
		return out
	}
	for start := range g.adj {
		if color[start] != white || found {
			continue
		}
		stack := []frame{{node: start, succs: succsOf(start)}}
		color[start] = gray
		for len(stack) > 0 && !found {
			f := &stack[len(stack)-1]
			if f.idx < len(f.succs) {
				next := f.succs[f.idx]
				f.idx++
				switch color[next] {
				case white:
					color[next] = gray
					parent[next] = f.node
					stack = append(stack, frame{node: next, succs: succsOf(next)})
				case gray:
					cycleStart, cycleEnd = next, f.node
					found = true
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	if !found {
		return nil
	}
	cycle := []int32{cycleStart}
	for n := cycleEnd; n != cycleStart; n = parent[n] {
		cycle = append(cycle, n)
	}
	// Reverse into traversal order and close the loop.
	for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return append(cycle, cycleStart)
}

// DescribeCycle renders a cycle for diagnostics.
func (g *Graph) DescribeCycle(cycle []int32) string {
	if len(cycle) == 0 {
		return "acyclic"
	}
	s := ""
	for i, n := range cycle {
		ch, vc := g.Resource(n)
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%s.vc%d", g.cfg.Machine.ChanName(ch), vc)
	}
	return s
}

func maxSchemeVCs(s route.Scheme) int {
	m, t := s.MeshVCs(), s.TorusVCs()
	if t > m {
		return t
	}
	return m
}

// Verify builds the graph and returns an error describing a cycle if one
// exists.
func Verify(cfg *route.Config, opts Options) error {
	g := Build(cfg, opts)
	if cycle := g.FindCycle(); cycle != nil {
		return fmt.Errorf("deadlock: scheme %q has cyclic VC dependencies: %s", cfg.Scheme.Name(), g.DescribeCycle(cycle))
	}
	return nil
}
