package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperModelValues(t *testing.T) {
	// Zero payload, back-to-back stream (a/r -> 0): fixed energy only.
	if e := PaperModel.FlitEnergy(0, 0, 0); e != 42.7 {
		t.Errorf("fixed energy = %g", e)
	}
	// Isolated flits (a/r = 1), random payload h=96, n=64:
	// 42.7 + 0.837*96 + (34.4 + 0.25*64) = 42.7 + 80.352 + 50.4.
	want := 42.7 + 0.837*96 + 34.4 + 0.25*64
	if e := PaperModel.FlitEnergy(96, 64, 1); math.Abs(e-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", e, want)
	}
}

func TestEnergyDecreasesWithRate(t *testing.T) {
	// The Figure 13 shape: per-flit energy falls as injection rate rises
	// past 0.5 (activation ratio a/r = min(r,1-r)/r shrinks).
	prev := math.Inf(1)
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		e := PaperModel.FlitEnergy(96, 64, MaxActivationRate(r)/r)
		if e > prev+1e-9 {
			t.Errorf("energy increased with injection rate at r=%g", r)
		}
		prev = e
	}
	// Below 0.5 with maximized activation, a/r == 1: flat.
	e1 := PaperModel.FlitEnergy(96, 64, MaxActivationRate(0.1)/0.1)
	e2 := PaperModel.FlitEnergy(96, 64, MaxActivationRate(0.4)/0.4)
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("energy should be flat below r=0.5: %g vs %g", e1, e2)
	}
}

func TestWindowEnergyMatchesFlitEnergy(t *testing.T) {
	// A window of F isolated flits with constant payload: per-flit energy
	// from counters must equal the analytic flit energy.
	const flits = 1000
	c := Counters{
		Flits:       flits,
		Activations: flits, // all isolated
		HammingSum:  0,     // constant payload
		SetBitsSum:  64 * flits,
	}
	got := PaperModel.PerFlitEnergy(c)
	want := PaperModel.FlitEnergy(0, 64, 1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("window per-flit = %g, want %g", got, want)
	}
	if PaperModel.WindowEnergy(Counters{}) != 0 {
		t.Error("empty window should cost nothing")
	}
}

func TestFitRecoversPaperModel(t *testing.T) {
	var samples []Sample
	for _, h := range []float64{0, 48, 96, 192} {
		for _, n := range []float64{0, 64, 128} {
			for _, ar := range []float64{0.1, 0.5, 1.0} {
				samples = append(samples, Sample{
					H: h, N: n, AOverR: ar,
					Energy: PaperModel.FlitEnergy(h, n, ar),
				})
			}
		}
	}
	m := Fit(samples)
	if math.Abs(m.Fixed-42.7) > 1e-6 || math.Abs(m.PerBitFlip-0.837) > 1e-8 ||
		math.Abs(m.PerActivation-34.4) > 1e-6 || math.Abs(m.PerActSetBit-0.250) > 1e-8 {
		t.Errorf("fit = %+v", m)
	}
}

func TestMaxActivationRate(t *testing.T) {
	cases := [][2]float64{{0.25, 0.25}, {0.5, 0.5}, {0.75, 0.25}, {1, 0}}
	for _, c := range cases {
		if got := MaxActivationRate(c[0]); math.Abs(got-c[1]) > 1e-12 {
			t.Errorf("MaxActivationRate(%g) = %g, want %g", c[0], got, c[1])
		}
	}
}

// TestStreamGapsProperty: the schedule has exactly p flits in q cycles, and
// its activation count matches the maximal activation rate min(p, q-p).
func TestStreamGapsProperty(t *testing.T) {
	f := func(pRaw, qRaw uint8) bool {
		q := int(qRaw%30) + 2
		p := int(pRaw)%q + 1
		offs := StreamGaps(p, q)
		if len(offs) != p {
			return false
		}
		// Offsets strictly increasing within [0, q).
		valid := make([]bool, q)
		prev := -1
		for _, o := range offs {
			if o <= prev || o >= q {
				return false
			}
			prev = o
			valid[o] = true
		}
		// Count activations over the cyclic schedule.
		acts := 0
		for i := 0; i < q; i++ {
			prevIdx := (i - 1 + q) % q
			if valid[i] && !valid[prevIdx] {
				acts++
			}
		}
		want := p
		if q-p < p {
			want = q - p
		}
		if p == q {
			want = 0
		}
		return acts == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
