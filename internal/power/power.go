// Package power implements the router energy model of Section 4.5:
//
//	E = 42.7 + 0.837*h + (34.4 + 0.250*n) * (a/r)  pJ per flit
//
// where h is the average Hamming distance between successive valid flits, n
// the average number of set payload bits per flit, r the injection rate, and
// a the activation rate (idle-to-valid transitions per cycle). The first two
// terms capture per-flit transport energy; the remainder is activation
// energy (valid trees and clock gates toggling), which the paper identifies
// as a significant fraction at low packet rates.
package power

import "anton2/internal/stats"

// Model holds the energy coefficients, in picojoules.
type Model struct {
	// Fixed is the data-independent per-flit energy (arbitration,
	// control).
	Fixed float64
	// PerBitFlip is the datapath energy per toggled bit between
	// successive valid flits.
	PerBitFlip float64
	// PerActivation is the fixed energy of an idle-to-valid transition.
	PerActivation float64
	// PerActSetBit is the activation energy per set payload bit.
	PerActSetBit float64
}

// PaperModel is the fit the paper reports for the Anton 2 router.
var PaperModel = Model{Fixed: 42.7, PerBitFlip: 0.837, PerActivation: 34.4, PerActSetBit: 0.250}

// FlitEnergy evaluates the model for a single flit with Hamming distance h
// to its predecessor, n set payload bits, and activation-to-injection ratio
// aOverR.
func (m Model) FlitEnergy(h, n, aOverR float64) float64 {
	return m.Fixed + m.PerBitFlip*h + (m.PerActivation+m.PerActSetBit*n)*aOverR
}

// Counters mirrors the per-channel event counts maintained by the fabric.
type Counters struct {
	Flits       uint64
	Activations uint64
	HammingSum  uint64
	SetBitsSum  uint64
}

// Add accumulates another window of counters.
func (c *Counters) Add(o Counters) {
	c.Flits += o.Flits
	c.Activations += o.Activations
	c.HammingSum += o.HammingSum
	c.SetBitsSum += o.SetBitsSum
}

// WindowEnergy converts counted events to total energy in pJ: fixed and
// bit-flip energy per flit plus activation energy per activation, using the
// window's mean set-bit count for the data-dependent activation term.
func (m Model) WindowEnergy(c Counters) float64 {
	if c.Flits == 0 {
		return 0
	}
	nBar := float64(c.SetBitsSum) / float64(c.Flits)
	return m.Fixed*float64(c.Flits) +
		m.PerBitFlip*float64(c.HammingSum) +
		(m.PerActivation+m.PerActSetBit*nBar)*float64(c.Activations)
}

// PerFlitEnergy is WindowEnergy divided by the flit count.
func (m Model) PerFlitEnergy(c Counters) float64 {
	if c.Flits == 0 {
		return 0
	}
	return m.WindowEnergy(c) / float64(c.Flits)
}

// Sample is one energy measurement point for model fitting: a stream with
// mean Hamming distance H, mean set bits N, activation ratio AOverR, and the
// measured per-flit energy.
type Sample struct {
	H, N, AOverR float64
	Energy       float64
}

// Fit recovers model coefficients from measurements by least squares over
// the regressors [1, h, a/r, n*(a/r)] — the same functional form the paper
// fits to its silicon measurements (Figure 13's dotted curves).
func Fit(samples []Sample) Model {
	rows := make([][]float64, len(samples))
	b := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{1, s.H, s.AOverR, s.N * s.AOverR}
		b[i] = s.Energy
	}
	w := stats.LeastSquares(rows, b)
	return Model{Fixed: w[0], PerBitFlip: w[1], PerActivation: w[2], PerActSetBit: w[3]}
}

// MaxActivationRate returns the largest possible activation rate for an
// injection rate r: a <= min(r, 1-r). The paper's measurements maximize a to
// emphasize its impact.
func MaxActivationRate(r float64) float64 {
	if r <= 0.5 {
		return r
	}
	return 1 - r
}

// StreamGaps returns a cyclic injection schedule achieving injection rate
// p/q with the maximum activation rate: for r <= 1/2, isolated flits evenly
// spaced; for r > 1/2, runs of flits separated by single idle cycles. The
// return value is the cycle offsets of valid flits within a period of q.
func StreamGaps(p, q int) []int {
	if p <= 0 || q <= 0 || p > q {
		panic("power: invalid stream rate")
	}
	out := make([]int, 0, p)
	if p == q {
		// Fully back-to-back stream: every cycle valid, zero
		// activations after the first.
		for i := 0; i < p; i++ {
			out = append(out, i)
		}
		return out
	}
	if 2*p <= q {
		// Isolated flits: spread p flits over q cycles.
		for i := 0; i < p; i++ {
			out = append(out, i*q/p)
		}
		return out
	}
	// Runs separated by single idle cycles: q-p idle cycles split the
	// period into q-p runs.
	idle := q - p
	pos := 0
	for g := 0; g < idle; g++ {
		runLen := (p + g) / idle // distribute p flits over idle runs
		for i := 0; i < runLen; i++ {
			out = append(out, pos)
			pos++
		}
		pos++ // idle cycle
	}
	return out
}
