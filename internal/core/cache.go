package core

import (
	"fmt"

	"anton2/internal/exp"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// sharedLoads memoizes loadcalc.Compute results per (routing configuration,
// pattern). Load computation is purely analytic — it depends only on the
// shape, scheme, direction order, and skip policy — so one computation per
// distinct key serves every sweep point and every weight-table build, serial
// or parallel. Cached *loadcalc.Loads are shared read-only.
var sharedLoads = exp.NewCache()

// loadsKey canonically identifies the inputs of a pattern-load computation.
// Patterns are keyed by Name(), which uniquely identifies every pattern in
// internal/traffic; custom Permutation patterns must use distinct labels.
func loadsKey(cfg machine.Config, p traffic.Pattern) string {
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = route.AntonScheme{}
	}
	return fmt.Sprintf("loads{shape=%v scheme=%s dir=%v skip=%v exitskip=%v pattern=%s}",
		cfg.Shape, scheme.Name(), cfg.DirOrder, cfg.UseSkip, cfg.ExitSkip, p.Name())
}

// computeLoads is the uncached load computation behind PatternLoads.
func computeLoads(cfg machine.Config, p traffic.Pattern) (*loadcalc.Loads, error) {
	tm, err := topo.NewMachine(cfg.Shape)
	if err != nil {
		return nil, err
	}
	rcfg := &route.Config{
		Machine:  tm,
		Scheme:   cfg.Scheme,
		DirOrder: cfg.DirOrder,
		UseSkip:  cfg.UseSkip,
		ExitSkip: cfg.ExitSkip,
	}
	if rcfg.Scheme == nil {
		rcfg.Scheme = route.AntonScheme{}
	}
	return loadcalc.Compute(rcfg, tm.Chip.CoreEndpoints(), p.Flows(tm), route.ClassRequest), nil
}

// CachedLoadsLen reports how many distinct (configuration, pattern) load
// tables are currently cached (instrumentation for tests and EXPERIMENTS.md
// timing notes).
func CachedLoadsLen() int { return sharedLoads.Len() }
