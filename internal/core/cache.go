package core

import (
	"encoding/json"
	"fmt"

	"anton2/internal/exp"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// sharedLoads memoizes loadcalc.Compute results per (routing configuration,
// pattern). Load computation is purely analytic — it depends only on the
// shape, scheme, direction order, and skip policy — so one computation per
// distinct key serves every sweep point and every weight-table build, serial
// or parallel. Cached *loadcalc.Loads are shared read-only.
var sharedLoads = exp.NewCache()

// loadsKey canonically identifies the inputs of a pattern-load computation.
// Patterns are keyed by Name(), which uniquely identifies every pattern in
// internal/traffic; custom Permutation patterns must use distinct labels.
func loadsKey(cfg machine.Config, p traffic.Pattern) string {
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = route.AntonScheme{}
	}
	return fmt.Sprintf("loads{shape=%v scheme=%s dir=%v skip=%v exitskip=%v pattern=%s}",
		cfg.Shape, scheme.Name(), cfg.DirOrder, cfg.UseSkip, cfg.ExitSkip, p.Name())
}

// computeLoads is the uncached load computation behind PatternLoads.
func computeLoads(cfg machine.Config, p traffic.Pattern) (*loadcalc.Loads, error) {
	tm, err := topo.NewMachine(cfg.Shape)
	if err != nil {
		return nil, err
	}
	rcfg := &route.Config{
		Machine:  tm,
		Scheme:   cfg.Scheme,
		DirOrder: cfg.DirOrder,
		UseSkip:  cfg.UseSkip,
		ExitSkip: cfg.ExitSkip,
	}
	if rcfg.Scheme == nil {
		rcfg.Scheme = route.AntonScheme{}
	}
	return loadcalc.Compute(rcfg, tm.Chip.CoreEndpoints(), p.Flows(tm), route.ClassRequest), nil
}

// CachedLoadsLen reports how many distinct (configuration, pattern) load
// tables are currently cached (instrumentation for tests and EXPERIMENTS.md
// timing notes).
func CachedLoadsLen() int { return sharedLoads.Len() }

// loadsWire shadows Loads.Cfg out of the JSON encoding: the routing
// configuration holds an interface-valued scheme and a topology pointer —
// neither round-trips through JSON — and no post-computation consumer
// (BuildWeights, SaturationRate, the normalizers) reads it, so a restored
// table with a nil Cfg is fully usable. The shadow must carry a JSON name
// (a `json:"-"` field would not participate in field dominance); a nil
// RawMessage with omitempty keeps it out of the encoded bytes.
type loadsWire struct {
	*loadcalc.Loads
	Cfg json.RawMessage `json:"Cfg,omitempty"`
}

// SnapshotLoads serializes every completed cached load table, keyed by its
// canonical loadsKey string. anton2serve persists the snapshot next to its
// artifact cache so a restarted server skips the analytic route enumeration
// for every configuration it has ever served.
func SnapshotLoads() (map[string]json.RawMessage, error) {
	out := map[string]json.RawMessage{}
	var firstErr error
	sharedLoads.Range(func(key string, val any) {
		l, ok := val.(*loadcalc.Loads)
		if !ok {
			return
		}
		b, err := json.Marshal(loadsWire{Loads: l})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: snapshot loads %q: %w", key, err)
			}
			return
		}
		out[key] = b
	})
	return out, firstErr
}

// RestoreLoads pre-seeds the shared load-table cache from a SnapshotLoads
// snapshot, returning how many entries were inserted. Keys already present
// (computed or in flight) win over the snapshot, so restoring is always
// safe, including concurrently with live traffic.
func RestoreLoads(snapshot map[string]json.RawMessage) (int, error) {
	restored := 0
	for key, raw := range snapshot {
		l := &loadcalc.Loads{}
		if err := json.Unmarshal(raw, &loadsWire{Loads: l}); err != nil {
			return restored, fmt.Errorf("core: restore loads %q: %w", key, err)
		}
		if sharedLoads.Seed(key, l) {
			restored++
		}
	}
	return restored, nil
}

// LoadsCacheKey exposes the canonical load-table cache key for a
// (machine configuration, pattern) pair, so persistence layers can name
// snapshot entries consistently with the in-process cache.
func LoadsCacheKey(cfg machine.Config, p traffic.Pattern) string { return loadsKey(cfg, p) }
