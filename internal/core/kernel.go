package core

import (
	"fmt"
	"time"

	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/topo"
)

// This file is the cycle-kernel benchmark: it measures the simulator's own
// speed (simulated cycles per wall-clock second), not any property of the
// modeled network. Two workload shapes bracket the scheduler's operating
// range: a sparse trickle where almost every component is idle almost every
// cycle (the active-set scheduler's best case — paper-scale machines spend
// most of their area waiting), and a saturated uniform burst where nearly
// every component has work every cycle (the scheduler's break-even case).
// Both workloads are deterministic, so every engine configuration simulates
// the exact same cycle count and cycles/sec ratios are apples-to-apples.

// KernelWorkload selects the traffic shape for the cycle-kernel benchmark.
type KernelWorkload int

// Kernel workloads.
const (
	// KernelSparse trickles packets between a few distant endpoint pairs
	// on a fixed schedule.
	KernelSparse KernelWorkload = iota
	// KernelSaturated bursts a batch of uniform-random traffic from every
	// core endpoint at cycle 0.
	KernelSaturated
)

func (w KernelWorkload) String() string {
	return [...]string{"sparse", "saturated"}[w]
}

// KernelConfig describes one cycle-kernel measurement.
type KernelConfig struct {
	Machine  machine.Config
	Workload KernelWorkload
	// Senders is the number of trickling endpoints (sparse; 0 = 8,
	// clamped to the node count).
	Senders int
	// PerSender packets per trickling endpoint (sparse; 0 = 16).
	PerSender int
	// Gap is the injection period per sender in cycles (sparse; 0 = 512).
	Gap uint64
	// Batch packets per core endpoint (saturated; 0 = 4).
	Batch int
	// MaxCycles bounds the run (0 = a generous default).
	MaxCycles uint64
}

// KernelResult is one measured kernel point.
type KernelResult struct {
	Shape    string  `json:"shape"`
	Engine   string  `json:"engine"`
	Shards   int     `json:"shards,omitempty"`
	Workload string  `json:"workload"`
	Cycles   uint64  `json:"cycles"`
	Packets  uint64  `json:"packets"`
	WallSec  float64 `json:"wall_sec"`
	// CyclesPerSec is the headline: simulated cycles per wall second.
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// engineName renders a config's engine selection for artifacts.
func engineName(cfg machine.Config) string {
	name := cfg.Engine
	if name == "" {
		name = machine.EngineActive
	}
	if cfg.Shards > 1 {
		name = fmt.Sprintf("%s-sharded%d", name, cfg.Shards)
	}
	return name
}

// RunKernel builds a machine, loads the workload, and measures wall time
// over the simulation run only (construction and injection excluded).
func RunKernel(cfg KernelConfig) (KernelResult, error) {
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return KernelResult{}, err
	}
	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()

	var total uint64
	switch cfg.Workload {
	case KernelSparse:
		senders, per, gap := cfg.Senders, cfg.PerSender, cfg.Gap
		if senders == 0 {
			senders = 8
		}
		if senders > tm.NumNodes() {
			senders = tm.NumNodes()
		}
		if per == 0 {
			per = 16
		}
		if gap == 0 {
			gap = 512
		}
		// Spread senders across the torus; each targets the antipodal
		// node, maximizing hops (and the set of briefly-busy routers).
		stride := tm.NumNodes() / senders
		for i := 0; i < senders; i++ {
			srcNode := i * stride
			c := tm.Shape.Coord(srcNode)
			anti := tm.Shape.Wrap(topo.NodeCoord{
				X: c.X + tm.Shape.K[topo.DimX]/2,
				Y: c.Y + tm.Shape.K[topo.DimY]/2,
				Z: c.Z + tm.Shape.K[topo.DimZ]/2,
			})
			src := topo.NodeEp{Node: srcNode, Ep: cores[0]}
			dst := topo.NodeEp{Node: tm.Shape.NodeID(anti), Ep: cores[len(cores)-1]}
			rng := sim.NewRNG(cfg.Machine.Seed, fmt.Sprintf("kernel-sparse-%d", i))
			for j := 0; j < per; j++ {
				p := m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
				p.NotBefore = 1 + uint64(j)*gap
				m.Endpoint(src).Inject(p)
				total++
			}
		}
	case KernelSaturated:
		batch := cfg.Batch
		if batch == 0 {
			batch = 4
		}
		for n := 0; n < tm.NumNodes(); n++ {
			for _, ep := range cores {
				src := topo.NodeEp{Node: n, Ep: ep}
				rng := sim.NewRNG(cfg.Machine.Seed, fmt.Sprintf("kernel-sat-%d-%d", n, ep))
				for j := 0; j < batch; j++ {
					var dst topo.NodeEp
					for {
						dst = topo.NodeEp{
							Node: rng.Intn(tm.NumNodes()),
							Ep:   cores[rng.Intn(len(cores))],
						}
						if dst != src {
							break
						}
					}
					m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
					total++
				}
			}
		}
	default:
		return KernelResult{}, fmt.Errorf("core: unknown kernel workload %d", cfg.Workload)
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 8_000_000
	}
	start := time.Now()
	end, err := m.RunUntilDelivered(total, maxCycles)
	wall := time.Since(start).Seconds()
	if err != nil {
		return KernelResult{}, fmt.Errorf("core: kernel run (%s): %w", cfg.Workload, err)
	}
	return KernelResult{
		Shape:        fmt.Sprintf("%dx%dx%d", tm.Shape.K[0], tm.Shape.K[1], tm.Shape.K[2]),
		Engine:       engineName(cfg.Machine),
		Shards:       cfg.Machine.Shards,
		Workload:     cfg.Workload.String(),
		Cycles:       end,
		Packets:      total,
		WallSec:      wall,
		CyclesPerSec: float64(end) / wall,
	}, nil
}
