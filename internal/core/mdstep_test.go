package core

import (
	"reflect"
	"strings"
	"testing"

	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/workload"
)

func mdstepTestSpec() workload.Spec {
	return workload.Spec{HaloPackets: 4, HaloBurst: 2, Multicasts: 1, ReducePackets: 1, Timesteps: 1}
}

// TestMDStepJobsCoverRegistry: the sweep emits exactly one job per
// registered strategy, each keyed by that strategy and the workload token.
func TestMDStepJobsCoverRegistry(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	jobs := MDStepJobs(mc, mdstepTestSpec(), 0)
	strats := route.Strategies()
	if len(jobs) != len(strats) {
		t.Fatalf("got %d jobs for %d registered strategies", len(jobs), len(strats))
	}
	want := mdstepTestSpec().WithDefaults().Canonical()
	for i, j := range jobs {
		key := j.Spec.Canonical()
		if j.Spec.Kind() != "mdstep" {
			t.Errorf("job %d kind = %q, want mdstep", i, j.Spec.Kind())
		}
		if !strings.Contains(key, "scheme="+strats[i].Name()) {
			t.Errorf("job %d spec %q does not pin strategy %s", i, key, strats[i].Name())
		}
		if !strings.Contains(key, "workload="+want) {
			t.Errorf("job %d spec %q does not pin workload %s", i, key, want)
		}
	}
}

// TestMDStepSpecEngineInvariant: engine selection must not enter the cache
// key — the artifact is byte-identical across engines, so cached points are
// shareable.
func TestMDStepSpecEngineInvariant(t *testing.T) {
	a := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	b := a
	b.Engine = machine.EngineScan
	c := a
	c.Shards = 4
	ref := MDStepSpec(MDStepConfig{Machine: a, Workload: mdstepTestSpec()}).Canonical()
	for name, mc := range map[string]machine.Config{"scan": b, "sharded": c} {
		if got := MDStepSpec(MDStepConfig{Machine: mc, Workload: mdstepTestSpec()}).Canonical(); got != ref {
			t.Errorf("%s engine changed the cache key:\n%s\nvs\n%s", name, got, ref)
		}
	}
	other := mdstepTestSpec()
	other.Timesteps = 2
	if got := MDStepSpec(MDStepConfig{Machine: a, Workload: other}).Canonical(); got == ref {
		t.Error("different workloads share a cache key")
	}
}

// TestMDStepCheckedRecordReplay runs one recorded point per strategy under
// the full runtime invariant suite, then replays the capture on a rebuilt
// machine: the replay must reproduce every per-phase window exactly. This is
// the core-level statement of the trace acceptance criterion.
func TestMDStepCheckedRecordReplay(t *testing.T) {
	for _, strat := range route.Strategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
			mc.Check = true
			mc.Scheme = strat
			cfg := MDStepConfig{Machine: mc, Workload: mdstepTestSpec()}
			pt, tr, err := RunMDStepPointRecorded(cfg, true)
			if err != nil {
				t.Fatalf("recorded run: %v", err)
			}
			if tr == nil || len(tr.Events) == 0 {
				t.Fatal("recorded run captured no events")
			}
			if pt.TotalCycles == 0 || len(pt.Phases) != 3 {
				t.Fatalf("point = %d cycles over %d phases, want a 3-phase timestep", pt.TotalCycles, len(pt.Phases))
			}
			rep, err := ReplayMDStepTrace(cfg, tr)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !reflect.DeepEqual(rep.Phases, pt.Phases) {
				t.Errorf("replay phases diverged:\n%+v\nvs\n%+v", rep.Phases, pt.Phases)
			}
			if rep.TotalCycles != pt.TotalCycles {
				t.Errorf("replay total %d cycles, original %d", rep.TotalCycles, pt.TotalCycles)
			}
		})
	}
}
