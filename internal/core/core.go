// Package core is the measurement harness of the reproduction: it wires the
// cycle-level simulator, the traffic patterns, the load calculator, and the
// analytic models into runners that regenerate each of the paper's
// evaluation results — throughput beyond saturation (Figure 9), traffic
// pattern blending (Figure 10), one-way message latency (Figures 11 and
// 12), router energy (Figure 13), component area (Tables 1 and 2), and the
// worst-case routing analysis (Figure 4 and permutation (1)).
package core

import (
	"fmt"

	"anton2/internal/arbiter"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// BuildMachine constructs a simulated machine, computing inverse-weight
// tables from the given weight patterns when the configuration asks for
// inverse-weighted arbitration. It returns the machine and the per-pattern
// loads (also used for throughput normalization). Weight loads come from the
// shared per-(configuration, pattern) cache, so repeated builds across sweep
// points reuse one computation.
func BuildMachine(cfg machine.Config, weightPatterns ...traffic.Pattern) (*machine.Machine, []*loadcalc.Loads, error) {
	if cfg.Scheme == nil {
		cfg.Scheme = route.AntonScheme{}
	}
	var loads []*loadcalc.Loads
	for _, p := range weightPatterns {
		l, err := PatternLoads(cfg, p)
		if err != nil {
			return nil, nil, err
		}
		loads = append(loads, l)
	}
	if cfg.Arbiter == arbiter.KindInverseWeighted {
		if len(loads) == 0 {
			return nil, nil, fmt.Errorf("core: inverse-weighted arbitration needs at least one weight pattern")
		}
		cfg.Weights = loadcalc.BuildWeights(loads...)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, loads, nil
}

// PatternLoads returns the expected loads of a traffic pattern for a machine
// configuration (used for normalization without building weights). Results
// are memoized per (routing configuration, pattern) and shared read-only:
// every point of a sweep — and concurrent jobs in a parallel sweep — reuse
// the first computation.
func PatternLoads(cfg machine.Config, p traffic.Pattern) (*loadcalc.Loads, error) {
	v, _, err := sharedLoads.Do(loadsKey(cfg, p), func() (any, error) {
		return computeLoads(cfg, p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*loadcalc.Loads), nil
}

// BlendedSaturationRate returns the per-core saturation injection rate of a
// linear blend of pattern loads (load is linear in the mixing coefficients,
// Section 3.2).
func BlendedSaturationRate(fracs []float64, loads []*loadcalc.Loads) float64 {
	if len(fracs) != len(loads) || len(loads) == 0 {
		panic("core: blend fraction/load mismatch")
	}
	maxLoad := 0.0
	for c := 0; c < topo.NumChannelAdapters; c++ {
		var l float64
		for i := range loads {
			l += fracs[i] * loads[i].Torus[c]
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return 0
	}
	capacity := 1000.0 / 3214.0
	return capacity / maxLoad
}
