package core

import (
	"bytes"
	"strings"
	"testing"

	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/workload"
)

// This file is the strategy-differential regression net, the companion to
// enginediff_test.go: every registered routing strategy runs every simulated
// experiment family, (a) completing deadlock-free under the full runtime
// invariant suite and (b) producing byte-identical canonical artifacts
// across all engine variants. A strategy that perturbs results under the
// sharded stepper, or that trips flit conservation under faults, fails here
// before it ever reaches an experiment.

// stratShape keeps the per-strategy sweeps tiny: with four strategies, three
// engine variants, and six families, each point must run in milliseconds.
var stratShape = topo.Shape3(2, 2, 2)

// diffStrategyFamily runs the cross-engine byte-stability check once per
// registered strategy, injecting the strategy after the engine mutation.
func diffStrategyFamily(t *testing.T, family string, jobs func(mutate func(*machine.Config)) []exp.Job) {
	t.Helper()
	for _, strat := range route.Strategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			diffFamily(t, family+"-"+strat.Name(), func(mutate func(*machine.Config)) []exp.Job {
				return jobs(func(c *machine.Config) {
					mutate(c)
					c.Scheme = strat
				})
			})
		})
	}
}

func TestStrategyDiffThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	diffStrategyFamily(t, "throughput", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(stratShape)
		mutate(&mc)
		return []exp.Job{ThroughputJob(ThroughputConfig{
			Machine:        mc,
			Pattern:        traffic.Uniform{},
			WeightPatterns: []traffic.Pattern{traffic.Uniform{}},
			Batch:          8,
		})}
	})
}

func TestStrategyDiffBlend(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	// Tornado and reverse tornado coincide on a 2-ring (offset k/2 = 1 either
	// way), degenerating the blend; the X dimension needs radix 4.
	diffStrategyFamily(t, "blend", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(topo.Shape3(4, 2, 2))
		mutate(&mc)
		return []exp.Job{BlendJob(BlendConfig{
			Machine:         mc,
			Weights:         WeightsBoth,
			ForwardFraction: 0.5,
			Batch:           8,
		})}
	})
}

func TestStrategyDiffLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	diffStrategyFamily(t, "latency", func(mutate func(*machine.Config)) []exp.Job {
		cfg := DefaultLatencyConfig(stratShape)
		cfg.PingPongs = 2
		cfg.PairsPerHop = 1
		cfg.MaxHops = 2
		mutate(&cfg.Machine)
		return []exp.Job{LatencyJob(cfg)}
	})
}

func TestStrategyDiffEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	// The energy loop is mesh-only (1x1x1): it exercises each strategy's
	// M-group transitions without any torus traffic.
	diffStrategyFamily(t, "energy", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
		mutate(&mc)
		return []exp.Job{EnergyJob(EnergyConfig{
			Machine: mc, Model: power.PaperModel,
			RateNum: 1, RateDen: 2,
			Payload: PayloadRandom, Flits: 100,
		})}
	})
}

func TestStrategyDiffFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	// One permanent outage plus background corruption: the reroute path (or,
	// for angara, the native fault-routing path) must itself be engine-stable.
	diffStrategyFamily(t, "faultsweep", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(stratShape)
		mc.Fault = &fault.Spec{CorruptRate: 0.02, FailLinks: 1}
		mutate(&mc)
		return []exp.Job{FaultJob(FaultConfig{
			Machine: mc,
			Pattern: traffic.Uniform{},
			Batch:   8,
		})}
	})
}

func TestStrategyDiffRouteCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	// The routecompare grid already spans the registry, so one diffFamily
	// call covers every strategy at both the healthy and faulted cells.
	diffFamily(t, "routecompare", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(stratShape)
		mutate(&mc)
		return RouteCompareJobs(mc, traffic.Uniform{}, 4, []int{0, 1}, 0)
	})
}

func TestStrategyDiffMDStep(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy differential sweep is slow")
	}
	// The mdstep sweep spans the registry itself, so one diffFamily call
	// covers every strategy's phased-timestep timing. The phase barriers are
	// the engine-sensitive part: each phase ends when the fabric quiesces,
	// and all three engine variants must agree on every quiescence cycle.
	diffFamily(t, "mdstep", func(mutate func(*machine.Config)) []exp.Job {
		mc := machine.DefaultConfig(stratShape)
		mutate(&mc)
		spec := workload.Spec{HaloPackets: 4, HaloBurst: 2, Multicasts: 1, ReducePackets: 1, Timesteps: 1}
		return MDStepJobs(mc, spec, 0)
	})
}

// TestStrategyCheckedRuns completes one measured routecompare point per
// (strategy, fail-link count) under the full runtime invariant suite: the
// run must finish deadlock-free with flit conservation, credit accounting,
// and VC monotonicity intact, and the healthy cell must carry a verified
// deadlock-free verdict.
func TestStrategyCheckedRuns(t *testing.T) {
	for _, strat := range route.Strategies() {
		for _, n := range []int{0, 1} {
			strat, n := strat, n
			name := strat.Name() + "/healthy"
			if n > 0 {
				name = strat.Name() + "/faillinks=1"
			}
			t.Run(name, func(t *testing.T) {
				mc := machine.DefaultConfig(stratShape)
				mc.Check = true
				mc.Scheme = strat
				if n > 0 {
					mc.Fault = &fault.Spec{FailLinks: n}
				}
				pt, err := RunRouteComparePoint(RouteCompareConfig{
					Machine:        mc,
					Pattern:        traffic.Uniform{},
					Batch:          8,
					VerifyDeadlock: n == 0,
				})
				if err != nil {
					t.Fatalf("%s: checked run failed: %v", strat.Name(), err)
				}
				if n == 0 && (!pt.DeadlockVerified || !pt.DeadlockFree) {
					t.Errorf("%s: healthy cell verdict = verified %v, free %v",
						strat.Name(), pt.DeadlockVerified, pt.DeadlockFree)
				}
			})
		}
	}
}

// TestFaultAwareStrategyAbsorbsOutages is the resilience differential: with
// the same seeded permanent link outages, the static anton strategy must
// concede a degraded run (emergency reroutes), while the fault-aware angara
// strategy absorbs the same outages un-degraded by routing around them
// natively — and the routecompare artifact must record that difference.
func TestFaultAwareStrategyAbsorbsOutages(t *testing.T) {
	run := func(scheme route.Scheme) (RouteComparePoint, []byte) {
		t.Helper()
		mc := machine.DefaultConfig(topo.Shape3(3, 3, 2))
		mc.Scheme = scheme
		mc.Fault = &fault.Spec{FailLinks: 2}
		job := RouteCompareJob(RouteCompareConfig{
			Machine: mc,
			Pattern: traffic.Uniform{},
			Batch:   16,
		})
		rs := exp.Run([]exp.Job{job}, exp.Options{Name: "resilience-" + scheme.Name()})
		if rs[0].Err != nil {
			t.Fatalf("%s: %v", scheme.Name(), rs[0].Err)
		}
		data, err := exp.MarshalCanonical(rs)
		if err != nil {
			t.Fatal(err)
		}
		return rs[0].Value.(RouteComparePoint), data
	}

	static, staticArt := run(route.AntonScheme{})
	aware, awareArt := run(route.AngaraStrategy{})

	if !static.DegradedRun || static.Rerouted == 0 {
		t.Errorf("anton under 2 dead links: degraded=%v rerouted=%d, want a degraded run with emergency reroutes",
			static.DegradedRun, static.Rerouted)
	}
	if aware.DegradedRun {
		t.Errorf("angara under 2 dead links reported a degraded run; native graph routing should absorb them")
	}
	if aware.RoutedNative == 0 {
		t.Error("angara under 2 dead links routed nothing natively; the outages never exercised the fault router")
	}
	if aware.Rerouted != 0 {
		t.Errorf("angara fell back to emergency rerouting %d packets", aware.Rerouted)
	}

	// The canonical artifacts carry the same story: the static cell is
	// classified degraded and counts reroutes, the fault-aware cell is
	// healthy and counts native fault-routed packets.
	if !bytes.Contains(staticArt, []byte(`"degraded": true`)) || !strings.Contains(string(staticArt), `"rerouted"`) {
		t.Errorf("static artifact does not record the degraded outcome:\n%s", staticArt)
	}
	if bytes.Contains(awareArt, []byte(`"degraded": true`)) || !strings.Contains(string(awareArt), `"routed_native"`) {
		t.Errorf("fault-aware artifact should be un-degraded with routed_native recorded:\n%s", awareArt)
	}
}
