package core

import (
	"bytes"
	"strings"
	"testing"

	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// TestFaultSweepDegradesGracefully runs a small corruption-rate sweep and
// checks the shape of the results: every point completes, delivers the full
// batch, and records a detected-equals-injected corruption ledger.
func TestFaultSweepDegradesGracefully(t *testing.T) {
	cfg := FaultConfig{
		Machine: machine.DefaultConfig(topo.Shape3(2, 2, 2)),
		Pattern: traffic.Uniform{},
		Batch:   24,
	}
	rates := []float64{0, 0.01, 0.05}
	pts, err := FaultSweepOpts(cfg, nil, rates, exp.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(rates) {
		t.Fatalf("got %d points, want %d", len(pts), len(rates))
	}
	for i, p := range pts {
		if p.CorruptRate != rates[i] {
			t.Errorf("point %d corrupt rate = %g, want %g", i, p.CorruptRate, rates[i])
		}
		if p.Throughput <= 0 || p.Cycles == 0 {
			t.Errorf("point %d measured nothing: %+v", i, p)
		}
		if p.MeanLatency <= 0 || p.P99Latency < p.MeanLatency {
			t.Errorf("point %d latency stats inconsistent: mean=%g p99=%g",
				i, p.MeanLatency, p.P99Latency)
		}
		if rates[i] > 0 {
			if p.Counters["corrupt_injected"] == 0 {
				t.Errorf("point %d at rate %g injected no corruption", i, rates[i])
			}
			if p.Counters["corrupt_detected"] != p.Counters["corrupt_injected"] {
				t.Errorf("point %d: detected %d != injected %d", i,
					p.Counters["corrupt_detected"], p.Counters["corrupt_injected"])
			}
		}
	}
	// Retransmission overhead cannot make the fault-afflicted run finish
	// faster than the fault-free one at the same batch.
	if pts[2].Cycles < pts[0].Cycles {
		t.Errorf("5%% corruption finished faster than fault-free: %d < %d cycles",
			pts[2].Cycles, pts[0].Cycles)
	}
}

// TestFaultSweepSerialParallelIdentical is the determinism contract for the
// faultsweep family: fault injection draws from per-link spec-seeded streams,
// so serial and parallel execution must produce byte-identical canonical
// artifacts.
func TestFaultSweepSerialParallelIdentical(t *testing.T) {
	cfg := FaultConfig{
		Machine: machine.DefaultConfig(topo.Shape3(2, 2, 2)),
		Pattern: traffic.Uniform{},
		Batch:   16,
	}
	var jobs []exp.Job
	for _, r := range []float64{0.005, 0.02, 0.05} {
		c := cfg
		c.Machine.Fault = &fault.Spec{CorruptRate: r, StallRate: 0.001, StallCycles: 12}
		jobs = append(jobs, FaultJob(c))
	}
	serial := exp.Run(jobs, exp.Serial())
	par := exp.Run(jobs, exp.Parallel(3))
	if err := exp.FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	a, err := exp.MarshalCanonical(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.MarshalCanonical(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("serial and parallel faultsweep artifacts differ:\n%s\n---\n%s", a, b)
	}
}

// TestFaultFreeSpecsUnchanged is the cache-key half of the bit-identity
// guard: with no fault spec configured, every experiment family's canonical
// spec string must not mention the fault layer at all, so artifacts and
// cache entries produced before the fault layer existed stay valid.
func TestFaultFreeSpecsUnchanged(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	specs := map[string]string{
		"throughput": ThroughputSpec(ThroughputConfig{
			Machine: mc, Pattern: traffic.Uniform{}, Batch: 32,
		}).Canonical(),
		"blend": BlendSpec(BlendConfig{
			Machine: mc, ForwardFraction: 0.5, Batch: 32,
		}).Canonical(),
		"latency": LatencySpec(LatencyConfig{
			Machine: mc, PingPongs: 4,
		}).Canonical(),
		"energy": EnergySpec(EnergyConfig{
			Machine: mc, Model: power.Model{Fixed: 1},
			RateNum: 1, RateDen: 8, Flits: 4,
		}).Canonical(),
		"faultsweep": FaultSpec(FaultConfig{
			Machine: mc, Pattern: traffic.Uniform{}, Batch: 32,
		}).Canonical(),
	}
	for family, spec := range specs {
		if strings.Contains(spec, "fault=") {
			t.Errorf("%s spec leaks a fault key with Fault nil: %s", family, spec)
		}
	}
	// And the converse: a configured fault spec must key the cache.
	fc := FaultConfig{Machine: mc, Pattern: traffic.Uniform{}, Batch: 32}
	fc.Machine.Fault = &fault.Spec{CorruptRate: 0.01}
	with := FaultSpec(fc).Canonical()
	if !strings.Contains(with, "fault=") {
		t.Errorf("configured fault spec missing from cache key: %s", with)
	}
	if with == specs["faultsweep"] {
		t.Error("fault-on and fault-off faultsweep specs collide")
	}
}

// TestFaultOffArtifactBitIdentical is the artifact half of the bit-identity
// guard: a throughput job with the injector absent must produce byte-for-byte
// identical canonical artifacts across independent executions.
func TestFaultOffArtifactBitIdentical(t *testing.T) {
	cfg := ThroughputConfig{
		Machine: machine.DefaultConfig(topo.Shape3(2, 2, 2)),
		Pattern: traffic.Uniform{},
		Batch:   24,
	}
	run := func() []byte {
		rs := exp.Run([]exp.Job{ThroughputJob(cfg)}, exp.Serial())
		if err := exp.FirstErr(rs); err != nil {
			t.Fatal(err)
		}
		b, err := exp.MarshalCanonical(rs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("fault-off artifacts differ across runs:\n%s\n---\n%s", a, b)
	}
}
