package core

import (
	"errors"
	"fmt"

	"anton2/internal/ckpt"
	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/traffic"

	"anton2/internal/power"
)

// This file adapts the figure runners to the internal/exp orchestrator: each
// experiment configuration becomes an exp.Job whose spec canonically encodes
// every result-affecting parameter. The job's machine seed is derived from
// the spec hash (exp.Spec.Seed), so a point's random streams depend only on
// what it measures — never on worker scheduling — and serial and parallel
// sweeps are bit-identical.

// SimCycles lets exp record simulated cycle counts in artifacts.
func (r ThroughputResult) SimCycles() uint64 { return r.Cycles }

// SimCycles lets exp record simulated cycle counts in artifacts.
func (r BlendResult) SimCycles() uint64 { return r.Cycles }

// addMachine encodes every result-affecting machine.Config field into the
// spec. Function-valued and table-valued fields (LinkLatency, Multicast,
// Weights) are encoded by presence: weights are derived from the listed
// weight patterns, and the sweeps in this package never set the other two.
// Check and Telemetry are deliberately excluded — the observability layers
// never affect results, so toggling them must not change cache keys.
func addMachine(s *exp.Spec, cfg machine.Config) *exp.Spec {
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = route.AntonScheme{}
	}
	s.Add("shape", cfg.Shape).
		Add("scheme", scheme.Name()).
		Add("dir", cfg.DirOrder).
		Add("skip", cfg.UseSkip).
		Add("exitskip", cfg.ExitSkip).
		Add("arb", cfg.Arbiter).
		Add("meshbuf", cfg.MeshVCBuf).
		Add("torusbuf", cfg.TorusVCBuf).
		Add("rpipe", cfg.RouterPipeline).
		Add("apipe", cfg.AdapterPipeline).
		Add("epipe", cfg.EndpointPipeline).
		Add("meshlat", cfg.MeshLatency).
		Add("toruslat", cfg.TorusLatency).
		Add("creditlat", cfg.CreditLatency).
		Add("linklat", cfg.LinkLatency != nil).
		Add("rate", cfg.TorusRateMilli).
		Add("energy", cfg.TrackEnergy).
		Add("mcast", cfg.Multicast != nil).
		Add("seed", cfg.Seed)
	// The fault spec changes results, so it must key the cache — but only
	// when present: fault-free configurations keep their pre-fault-layer
	// canonical strings, so existing caches and bit-identity guarantees
	// survive.
	if cfg.Fault != nil {
		s.Add("fault", cfg.Fault.Canonical())
	}
	return s
}

func patternNames(pats []traffic.Pattern) string {
	names := ""
	for i, p := range pats {
		if i > 0 {
			names += "+"
		}
		names += p.Name()
	}
	return names
}

// ThroughputSpec canonically identifies one Figure 9 style point.
func ThroughputSpec(cfg ThroughputConfig) *exp.Spec {
	s := exp.NewSpec("throughput")
	addMachine(s, cfg.Machine)
	return s.Add("pattern", cfg.Pattern.Name()).
		Add("weights", patternNames(cfg.WeightPatterns)).
		Add("pid", cfg.PatternID).
		Add("batch", cfg.Batch).
		Add("maxcycles", cfg.MaxCycles)
}

// ThroughputJob wraps one RunThroughput call for the orchestrator. The job
// is checkpoint-aware: under exp's Checkpoint options a retried or restarted
// attempt resumes from the last persisted snapshot.
func ThroughputJob(cfg ThroughputConfig) exp.Job {
	run := func(seed uint64, rc ckpt.RunConfig) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunThroughputCkpt(c, rc)
	}
	return exp.Job{
		Spec:    ThroughputSpec(cfg),
		Run:     func(seed uint64) (any, error) { return run(seed, ckpt.RunConfig{}) },
		RunCkpt: run,
	}
}

// BlendSpec canonically identifies one Figure 10 blend point.
func BlendSpec(cfg BlendConfig) *exp.Spec {
	s := exp.NewSpec("blend")
	addMachine(s, cfg.Machine)
	return s.Add("f", cfg.ForwardFraction).
		Add("weights", cfg.Weights).
		Add("batch", cfg.Batch).
		Add("maxcycles", cfg.MaxCycles)
}

// BlendJob wraps one RunBlend call for the orchestrator.
func BlendJob(cfg BlendConfig) exp.Job {
	return exp.Job{Spec: BlendSpec(cfg), Run: func(seed uint64) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunBlend(c)
	}}
}

// LatencySpec canonically identifies one Figure 11 latency sweep.
func LatencySpec(cfg LatencyConfig) *exp.Spec {
	s := exp.NewSpec("latency")
	addMachine(s, cfg.Machine)
	return s.Add("sendover", cfg.SendOverhead).
		Add("recvover", cfg.RecvOverhead).
		Add("pingpongs", cfg.PingPongs).
		Add("pairs", cfg.PairsPerHop).
		Add("maxhops", cfg.MaxHops)
}

// LatencyJob wraps one RunLatency sweep for the orchestrator.
func LatencyJob(cfg LatencyConfig) exp.Job {
	return exp.Job{Spec: LatencySpec(cfg), Run: func(seed uint64) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunLatency(c)
	}}
}

// EnergySpec canonically identifies one Figure 13 energy point.
func EnergySpec(cfg EnergyConfig) *exp.Spec {
	s := exp.NewSpec("energy")
	addMachine(s, cfg.Machine)
	return s.Add("model", fmt.Sprintf("%g/%g/%g/%g",
		cfg.Model.Fixed, cfg.Model.PerBitFlip, cfg.Model.PerActivation, cfg.Model.PerActSetBit)).
		Add("ratenum", cfg.RateNum).
		Add("rateden", cfg.RateDen).
		Add("payload", cfg.Payload).
		Add("flits", cfg.Flits)
}

// EnergyJob wraps one RunEnergy two-route subtraction for the orchestrator.
func EnergyJob(cfg EnergyConfig) exp.Job {
	return exp.Job{Spec: EnergySpec(cfg), Run: func(seed uint64) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunEnergy(c)
	}}
}

// collect unwraps successful results into their typed values, in job order,
// and joins the failed points into one error (nil when all succeeded).
func collect[T any](results []exp.Result) ([]T, error) {
	out := make([]T, 0, len(results))
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Spec, r.Err))
			continue
		}
		out = append(out, r.Value.(T))
	}
	return out, errors.Join(errs...)
}

// ThroughputSweepOpts runs a batch-size sweep through the orchestrator.
func ThroughputSweepOpts(cfg ThroughputConfig, batches []int, opts exp.Options) ([]ThroughputResult, error) {
	jobs := make([]exp.Job, len(batches))
	for i, b := range batches {
		c := cfg
		c.Batch = b
		jobs[i] = ThroughputJob(c)
	}
	return collect[ThroughputResult](exp.Run(jobs, opts))
}

// BlendSweepOpts runs a blend-fraction sweep through the orchestrator.
func BlendSweepOpts(cfg BlendConfig, fractions []float64, opts exp.Options) ([]BlendResult, error) {
	jobs := make([]exp.Job, len(fractions))
	for i, f := range fractions {
		c := cfg
		c.ForwardFraction = f
		jobs[i] = BlendJob(c)
	}
	return collect[BlendResult](exp.Run(jobs, opts))
}

// EnergySweepOpts runs an injection-rate sweep through the orchestrator.
func EnergySweepOpts(mcfg machine.Config, model power.Model, payload PayloadKind, rates [][2]int, flits int, opts exp.Options) ([]EnergyPoint, error) {
	jobs := make([]exp.Job, len(rates))
	for i, r := range rates {
		jobs[i] = EnergyJob(EnergyConfig{
			Machine: mcfg, Model: model,
			RateNum: r[0], RateDen: r[1],
			Payload: payload, Flits: flits,
		})
	}
	return collect[EnergyPoint](exp.Run(jobs, opts))
}
