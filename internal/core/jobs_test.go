package core

import (
	"bytes"
	"errors"
	"testing"

	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/sim"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// TestDeadlockedJobIsFailedPoint drives the sim.ErrDeadlock watchdog path
// through the orchestrator: a machine that can make no progress (a delivery
// target with no traffic sources) trips the watchdog, the point is reported
// failed with the deadlock error preserved, and the rest of the sweep
// completes.
func TestDeadlockedJobIsFailedPoint(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	healthy := ThroughputConfig{Machine: mc, Pattern: traffic.Uniform{}, Batch: 8}
	stuck := exp.Job{
		Spec: exp.NewSpec("stuck").Add("shape", mc.Shape),
		Run: func(seed uint64) (any, error) {
			c := mc
			c.Seed = seed
			m, _, err := BuildMachine(c)
			if err != nil {
				return nil, err
			}
			// No endpoint ever injects, so waiting for one delivery
			// starves the watchdog.
			_, err = m.RunUntilDelivered(1, 10_000_000)
			return nil, err
		},
	}
	jobs := []exp.Job{ThroughputJob(healthy), stuck, ThroughputJob(healthy)}
	rs := exp.Run(jobs, exp.Parallel(3))

	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("healthy points failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	if rs[1].Err == nil || !rs[1].Deadlock {
		t.Fatalf("deadlocked point not flagged: %+v", rs[1])
	}
	var de *sim.ErrDeadlock
	if !errors.As(rs[1].Err, &de) {
		t.Fatalf("deadlock error type lost: %v", rs[1].Err)
	}
	if exp.Failed(rs) != 1 {
		t.Errorf("failed-point count = %d, want 1", exp.Failed(rs))
	}
}

// TestBlendSweepSerialParallelIdentical is the determinism contract on a
// Figure 10 style sweep: serial execution and an 8-worker pool must produce
// byte-identical canonical JSON artifacts (wall-time fields excluded),
// because every point's seed comes from its spec hash, not from scheduling.
func TestBlendSweepSerialParallelIdentical(t *testing.T) {
	fractions := []float64{0, 0.5, 1}
	var jobs []exp.Job
	for _, mode := range []WeightMode{WeightsNone, WeightsBoth} {
		for _, f := range fractions {
			jobs = append(jobs, BlendJob(BlendConfig{
				Machine:         machine.DefaultConfig(topo.Shape3(4, 4, 2)),
				Weights:         mode,
				ForwardFraction: f,
				Batch:           32,
			}))
		}
	}
	serial := exp.Run(jobs, exp.Serial())
	par := exp.Run(jobs, exp.Parallel(8))
	if err := exp.FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	a, err := exp.MarshalCanonical(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.MarshalCanonical(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("serial and parallel-8 artifacts differ:\n%s\n---\n%s", a, b)
	}
}

// TestPatternLoadsShared verifies the per-(configuration, pattern) loads
// cache: repeated and seed-varied lookups share one computation, while
// routing-relevant changes get their own entry.
func TestPatternLoadsShared(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	a, err := PatternLoads(mc, traffic.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PatternLoads(mc, traffic.Uniform{})
	if a != b {
		t.Error("identical configurations recomputed loads")
	}
	seeded := mc
	seeded.Seed = 1234 // seeds do not influence analytic loads
	c, _ := PatternLoads(seeded, traffic.Uniform{})
	if c != a {
		t.Error("seed change must not split the loads cache")
	}
	noskip := mc
	noskip.UseSkip = false
	d, _ := PatternLoads(noskip, traffic.Uniform{})
	if d == a {
		t.Error("routing-policy change must not share cached loads")
	}
}

// TestSweepSeedsFromSpecs: two sweeps differing only in base seed must get
// different derived per-job seeds, and the same sweep must reuse the same
// seeds (they are a pure function of the spec).
func TestSweepSeedsFromSpecs(t *testing.T) {
	cfg := ThroughputConfig{Machine: machine.DefaultConfig(topo.Shape3(2, 2, 2)), Pattern: traffic.Uniform{}, Batch: 4}
	s1 := ThroughputSpec(cfg)
	s2 := ThroughputSpec(cfg)
	if s1.Seed() != s2.Seed() {
		t.Error("same config must derive the same seed")
	}
	reseeded := cfg
	reseeded.Machine.Seed = 7
	if ThroughputSpec(reseeded).Seed() == s1.Seed() {
		t.Error("base-seed change must reach the derived seed")
	}
	bigger := cfg
	bigger.Batch = 8
	if ThroughputSpec(bigger).Seed() == s1.Seed() {
		t.Error("parameter change must reach the derived seed")
	}
}
