package core

import (
	"fmt"
	"math/rand"
	"sort"

	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/stats"
	"anton2/internal/topo"
)

// LatencyConfig describes the Figure 11 ping-pong measurement: a remote
// write with 16 bytes of payload from core A dispatches a software handler
// on core B, which writes back; one-way latency is half the round trip and
// includes software and synchronization overheads.
type LatencyConfig struct {
	Machine machine.Config
	// SendOverhead / RecvOverhead model the software cost of composing a
	// send and of synchronization plus handler dispatch, in cycles.
	SendOverhead uint64
	RecvOverhead uint64
	// PingPongs per endpoint pair.
	PingPongs int
	// PairsPerHop averages over several endpoint pairs at each hop count.
	PairsPerHop int
	// MaxHops bounds the sweep (0 = the machine's diameter).
	MaxHops int
}

// DefaultLatencyConfig returns overheads calibrated so a nearest-neighbor
// one-way latency lands near the paper's 99 ns (Figure 12), with the
// network contributing ~40%.
func DefaultLatencyConfig(shape topo.TorusShape) LatencyConfig {
	return LatencyConfig{
		Machine:      machine.DefaultConfig(shape),
		SendOverhead: 38, // ~25 ns: software compose + doorbell
		RecvOverhead: 52, // ~35 ns: counted-write sync + handler dispatch
		PingPongs:    8,
		PairsPerHop:  6,
	}
}

// LatencyPoint is the mean one-way latency at one inter-node hop count.
type LatencyPoint struct {
	Hops   int
	MeanNS float64
	Pairs  int
}

// LatencyResult is a full Figure 11 sweep with its linear fit.
type LatencyResult struct {
	Points []LatencyPoint
	// Fit: one-way latency ~= InterceptNS + SlopeNS * hops.
	SlopeNS     float64
	InterceptNS float64
	R2          float64
	// MinNS is the smallest observed one-hop latency (Figure 12's
	// 99 ns headline).
	MinNS float64
}

// diameter returns the maximum inter-node hop distance.
func diameter(s topo.TorusShape) int {
	d := 0
	for i := 0; i < topo.NumDims; i++ {
		d += s.K[i] / 2
	}
	return d
}

// RunLatency measures one-way latency as a function of hop count.
func RunLatency(cfg LatencyConfig) (LatencyResult, error) {
	m, _, err := BuildMachine(cfg.Machine)
	if err != nil {
		return LatencyResult{}, err
	}
	tm := m.Topo
	maxHops := cfg.MaxHops
	if maxHops == 0 || maxHops > diameter(tm.Shape) {
		maxHops = diameter(tm.Shape)
	}

	// Collect candidate destination nodes by hop distance from node 0;
	// sampling node pairs is equivalent to sampling all pairs by
	// node symmetry.
	byHops := map[int][]int{}
	for n := 1; n < tm.NumNodes(); n++ {
		h := tm.Shape.HopDistance(tm.Shape.Coord(0), tm.Shape.Coord(n))
		byHops[h] = append(byHops[h], n)
	}

	rng := sim.NewRNG(cfg.Machine.Seed, "latency-pairs")
	var result LatencyResult
	result.MinNS = 1e18
	cores := tm.Chip.CoreEndpoints()

	var xs, ys []float64
	for h := 1; h <= maxHops; h++ {
		nodes := byHops[h]
		if len(nodes) == 0 {
			continue
		}
		var lat []float64
		pairs := cfg.PairsPerHop
		if pairs > len(nodes)*len(cores) {
			pairs = len(nodes) * len(cores)
		}
		for p := 0; p < pairs; p++ {
			a := topo.NodeEp{Node: 0, Ep: cores[rng.Intn(len(cores))]}
			b := topo.NodeEp{Node: nodes[rng.Intn(len(nodes))], Ep: cores[rng.Intn(len(cores))]}
			oneWay, err := pingPong(m, cfg, a, b, rng)
			if err != nil {
				return result, err
			}
			lat = append(lat, oneWay)
			if h == 1 && oneWay < result.MinNS {
				result.MinNS = oneWay
			}
		}
		mean := stats.Mean(lat)
		result.Points = append(result.Points, LatencyPoint{Hops: h, MeanNS: mean, Pairs: len(lat)})
		xs = append(xs, float64(h))
		ys = append(ys, mean)
	}
	if len(xs) >= 2 {
		result.SlopeNS, result.InterceptNS, result.R2 = stats.LinearFit(xs, ys)
	}
	sort.Slice(result.Points, func(i, j int) bool { return result.Points[i].Hops < result.Points[j].Hops })
	if err := m.FinishChecks(); err != nil {
		return result, fmt.Errorf("core: latency sweep: %w", err)
	}
	return result, nil
}

// pingPong runs cfg.PingPongs round trips between a and b on an otherwise
// idle machine and returns the mean one-way latency in nanoseconds.
func pingPong(m *machine.Machine, cfg LatencyConfig, a, b topo.NodeEp, rng *rand.Rand) (float64, error) {
	type state struct {
		t0        uint64
		completed int
		totalRT   uint64
	}
	st := &state{}
	send := func(src, dst topo.NodeEp, now uint64) {
		p := m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
		p.NotBefore = now + cfg.SendOverhead + m.Cfg.EndpointPipeline
		m.Endpoint(src).Inject(p)
	}
	epB := m.Endpoint(b)
	epA := m.Endpoint(a)
	epB.OnDeliver = func(p *packet.Packet, now uint64) bool {
		// Handler dispatch on B, then the reply write.
		send(b, a, now+cfg.RecvOverhead)
		return false
	}
	done := false
	epA.OnDeliver = func(p *packet.Packet, now uint64) bool {
		rt := now + cfg.RecvOverhead - st.t0
		st.totalRT += rt
		st.completed++
		if st.completed < cfg.PingPongs {
			st.t0 = now + cfg.RecvOverhead
			send(a, b, st.t0)
		} else {
			done = true
		}
		return false
	}
	st.t0 = m.Engine.Now()
	send(a, b, st.t0)
	if err := m.Engine.RunUntil(func() bool { return done }, 4_000_000, 100_000); err != nil {
		return 0, fmt.Errorf("core: ping-pong %v<->%v: %w", a, b, err)
	}
	epA.OnDeliver, epB.OnDeliver = nil, nil
	meanRT := float64(st.totalRT) / float64(st.completed)
	return machine.CyclesToNS(meanRT / 2), nil
}

// LatencyComponent is one contribution to the minimum-latency decomposition
// (Figure 12).
type LatencyComponent struct {
	Name string
	NS   float64
}

// DecomposeMinLatency derives the nearest-neighbor one-way latency budget
// from the configuration, mirroring Figure 12's breakdown. It reflects the
// shortest path: source core at the Y-adapter router, one Y torus hop,
// destination core at the ingress router.
func DecomposeMinLatency(cfg LatencyConfig) []LatencyComponent {
	mc := cfg.Machine
	ns := machine.CyclesToNS
	routerNS := ns(float64(mc.RouterPipeline + 1)) // pipeline + switch/output
	return []LatencyComponent{
		{Name: "software send", NS: ns(float64(cfg.SendOverhead))},
		{Name: "endpoint adapter (E)", NS: ns(float64(mc.EndpointPipeline + mc.MeshLatency))},
		{Name: "router RC/VA/SA1/SA2 (R)", NS: routerNS},
		{Name: "mesh channel to adapter", NS: ns(float64(mc.MeshLatency))},
		{Name: "channel adapter egress (C)", NS: ns(float64(mc.AdapterPipeline))},
		{Name: "serialization + SerDes + wire", NS: ns(float64(mc.TorusLatency) + 3.214)},
		{Name: "channel adapter ingress (C)", NS: ns(float64(mc.AdapterPipeline + mc.MeshLatency))},
		{Name: "router (R)", NS: routerNS},
		{Name: "mesh channel to endpoint", NS: ns(float64(mc.MeshLatency))},
		{Name: "sync + handler dispatch", NS: ns(float64(cfg.RecvOverhead))},
	}
}

// TotalNS sums a decomposition.
func TotalNS(comps []LatencyComponent) float64 {
	var sum float64
	for _, c := range comps {
		sum += c.NS
	}
	return sum
}

// MeasureDecomposition traces a single nearest-neighbor packet through an
// idle machine and returns the observed stage-by-stage latency — the
// measured counterpart of DecomposeMinLatency's analytic budget.
func MeasureDecomposition(cfg LatencyConfig) ([]LatencyComponent, error) {
	m, _, err := BuildMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	tm := m.Topo
	// Nearest neighbor in +Y: the fastest single-router through path.
	src := topo.NodeEp{Node: 0, Ep: tm.Chip.CoreEndpoint(topo.MeshCoord{U: 0, V: 2})}
	dstNode := tm.Shape.NodeID(tm.Shape.Neighbor(tm.Shape.Coord(0), topo.YPos))
	dst := topo.NodeEp{Node: dstNode, Ep: tm.Chip.CoreEndpoint(topo.MeshCoord{U: 0, V: 2})}

	p := m.MakePacket(src, dst,
		route.Choices{Order: topo.DimOrder{topo.DimY, topo.DimX, topo.DimZ}, Slice: 0, Ties: [3]int8{1, 1, 1}},
		route.ClassRequest, 0, 1)
	p.StartTrace()

	done := false
	var trace []packet.TraceEvent
	var injectedAt uint64
	m.Endpoint(dst).OnDeliver = func(dp *packet.Packet, now uint64) bool {
		trace = append(trace, dp.Trace...)
		injectedAt = dp.InjectedAt
		done = true
		return true // retain: the trace slice belongs to the packet
	}
	m.Endpoint(src).Inject(p)
	if err := m.Engine.RunUntil(func() bool { return done }, 1_000_000, 100_000); err != nil {
		return nil, fmt.Errorf("core: decomposition trace: %w", err)
	}
	if err := m.FinishChecks(); err != nil {
		return nil, fmt.Errorf("core: decomposition trace: %w", err)
	}

	out := []LatencyComponent{{Name: "software send", NS: machine.CyclesToNS(float64(cfg.SendOverhead))}}
	prev := injectedAt
	for _, ev := range trace {
		out = append(out, LatencyComponent{
			Name: ev.Stage,
			NS:   machine.CyclesToNS(float64(ev.Cycle - prev)),
		})
		prev = ev.Cycle
	}
	out = append(out, LatencyComponent{Name: "sync + handler dispatch", NS: machine.CyclesToNS(float64(cfg.RecvOverhead))})
	return out, nil
}
