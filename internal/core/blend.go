package core

import (
	"fmt"

	"anton2/internal/exp"

	"anton2/internal/arbiter"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// WeightMode selects how arbiter weights are programmed for the Figure 10
// blending experiment.
type WeightMode int

// Figure 10 weight configurations.
const (
	// WeightsNone uses round-robin arbitration throughout.
	WeightsNone WeightMode = iota
	// WeightsForward programs a single weight set from the tornado
	// pattern's loads.
	WeightsForward
	// WeightsReverse programs a single weight set from reverse tornado.
	WeightsReverse
	// WeightsBoth programs both patterns' weights; packets carry their
	// pattern label.
	WeightsBoth
)

func (w WeightMode) String() string {
	return [...]string{"None", "Forward", "Reverse", "Both"}[w]
}

// BlendConfig describes one Figure 10 measurement: each core's batch is
// divided between tornado and reverse-tornado traffic.
type BlendConfig struct {
	Machine machine.Config
	// ForwardFraction of packets follow tornado; the rest follow reverse
	// tornado.
	ForwardFraction float64
	Weights         WeightMode
	Batch           int
	MaxCycles       uint64
}

// BlendResult is one measured blending point.
type BlendResult struct {
	ForwardFraction float64
	Cycles          uint64
	Normalized      float64
}

// RunBlend executes one blend measurement.
func RunBlend(cfg BlendConfig) (BlendResult, error) {
	fwd, rev := traffic.Tornado(), traffic.ReverseTornado()

	mcfg := cfg.Machine
	var weightPats []traffic.Pattern
	switch cfg.Weights {
	case WeightsNone:
		mcfg.Arbiter = arbiter.KindRoundRobin
	case WeightsForward:
		weightPats = []traffic.Pattern{fwd}
	case WeightsReverse:
		weightPats = []traffic.Pattern{rev}
	case WeightsBoth:
		weightPats = []traffic.Pattern{fwd, rev}
	}
	if cfg.Weights != WeightsNone {
		mcfg.Arbiter = arbiter.KindInverseWeighted
	}
	m, _, err := BuildMachine(mcfg, weightPats...)
	if err != nil {
		return BlendResult{}, err
	}

	// Normalization: the blend's own saturation rate (load is linear in
	// the mixing coefficients).
	fl, err := PatternLoads(cfg.Machine, fwd)
	if err != nil {
		return BlendResult{}, err
	}
	rl, err := PatternLoads(cfg.Machine, rev)
	if err != nil {
		return BlendResult{}, err
	}
	satRate := BlendedSaturationRate([]float64{cfg.ForwardFraction, 1 - cfg.ForwardFraction}, []*loadcalc.Loads{fl, rl})
	if satRate <= 0 {
		return BlendResult{}, fmt.Errorf("core: degenerate blend saturation")
	}

	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	total := uint64(tm.NumNodes() * len(cores) * cfg.Batch)

	// Pattern labels: under single-weight modes every packet is labeled
	// pattern 0 (there is only one weight set); under Both, tornado
	// packets are pattern 0 and reverse packets pattern 1.
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			rng := sim.NewRNG(mcfg.Seed, fmt.Sprintf("blend-src-%d-%d", n, ep))
			sent := 0
			nFwd := int(float64(cfg.Batch)*cfg.ForwardFraction + 0.5)
			m.Endpoint(src).Source = func() *packet.Packet {
				if sent >= cfg.Batch {
					return nil
				}
				// Interleave forward/reverse sends in proportion.
				var isFwd bool
				if nFwd >= cfg.Batch {
					isFwd = true
				} else if nFwd <= 0 {
					isFwd = false
				} else {
					isFwd = rng.Float64() < cfg.ForwardFraction
				}
				sent++
				var dst topo.NodeEp
				var pid uint8
				if isFwd {
					dst = fwd.Dest(tm, src, rng)
					pid = 0
				} else {
					dst = rev.Dest(tm, src, rng)
					if cfg.Weights == WeightsBoth {
						pid = 1
					}
				}
				return m.MakeRandomPacket(src, dst, route.ClassRequest, pid, rng)
			}
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		ideal := float64(cfg.Batch) / satRate
		maxCycles = uint64(60 * ideal)
		if maxCycles < 300_000 {
			maxCycles = 300_000
		}
	}
	end, err := m.RunUntilDelivered(total, maxCycles)
	if err != nil {
		return BlendResult{}, fmt.Errorf("core: blend run (f=%.2f, %v): %w", cfg.ForwardFraction, cfg.Weights, err)
	}
	if err := m.FinishChecks(); err != nil {
		return BlendResult{}, fmt.Errorf("core: blend run (f=%.2f, %v): %w", cfg.ForwardFraction, cfg.Weights, err)
	}
	rate := float64(cfg.Batch) / float64(end)
	return BlendResult{
		ForwardFraction: cfg.ForwardFraction,
		Cycles:          end,
		Normalized:      rate / satRate,
	}, nil
}

// BlendSweep measures a set of blend fractions under one weight mode through
// the orchestrator, serially; BlendSweepOpts exposes the worker pool. The
// per-point tornado/reverse-tornado loads used for weights and normalization
// come from the shared loads cache, so they are computed once per machine
// configuration rather than once per fraction.
func BlendSweep(cfg BlendConfig, fractions []float64) ([]BlendResult, error) {
	return BlendSweepOpts(cfg, fractions, exp.Serial())
}
