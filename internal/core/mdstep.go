package core

import (
	"fmt"

	"anton2/internal/ckpt"
	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/trace"
	"anton2/internal/workload"
)

// The mdstep experiment family measures the machine's actual figure of
// merit: end-to-end MD timestep time. One point = one routing strategy
// running the phased workload (halo exchange, multicast force distribution,
// global reduction) on one machine config; a sweep covers the whole
// strategy registry. Unlike throughput families the headline number is
// latency-like — cycles from the first halo injection to global-reduction
// quiescence — so lower is better.

// MDStepConfig describes one mdstep point.
type MDStepConfig struct {
	// Machine carries the strategy under test in its Scheme field. Its
	// Multicast tables are derived from Workload — callers leave them nil.
	Machine machine.Config
	// Workload parameterizes the timestep (zero fields = defaults).
	Workload workload.Spec
	// MaxPhaseCycles bounds each phase (0 = a volume-scaled default).
	MaxPhaseCycles uint64
}

// MDStepPoint is one measured mdstep cell.
type MDStepPoint struct {
	Strategy string `json:"strategy"`
	// Workload is the spec canonical (defaults applied).
	Workload  string `json:"workload"`
	Timesteps int    `json:"timesteps"`

	// Phases reports every (timestep, phase) window in execution order.
	Phases []workload.PhaseResult `json:"phases"`
	// TotalCycles is the end-to-end timestep time across all timesteps;
	// TotalNS converts it at the paper's 1.5 GHz clock.
	TotalCycles       uint64  `json:"total_cycles"`
	TotalNS           float64 `json:"total_ns"`
	CyclesPerTimestep float64 `json:"cycles_per_timestep"`
}

// SimCycles lets exp record simulated cycle counts in artifacts.
func (p MDStepPoint) SimCycles() uint64 { return p.TotalCycles }

// mdstepMachine finalizes a point's machine config: default strategy and
// the workload's multicast tables.
func mdstepMachine(cfg MDStepConfig) (machine.Config, workload.Spec, error) {
	mc := cfg.Machine
	if mc.Scheme == nil {
		mc.Scheme = route.AntonScheme{}
	}
	spec := cfg.Workload.WithDefaults()
	if err := spec.Validate(); err != nil {
		return mc, spec, err
	}
	tm, err := topo.NewMachine(mc.Shape)
	if err != nil {
		return mc, spec, err
	}
	mc.Multicast = spec.Tables(tm)
	return mc, spec, nil
}

// RunMDStepPoint executes one mdstep measurement.
func RunMDStepPoint(cfg MDStepConfig) (MDStepPoint, error) {
	pt, _, err := RunMDStepPointRecorded(cfg, false)
	return pt, err
}

// RunMDStepPointCkpt is RunMDStepPoint with crash-safe checkpointing: when rc
// is enabled, the machine snapshot and the workload's Progress are persisted
// every rc.Every cycles, and when rc asks for a resume and a usable
// checkpoint exists, the run restores it, replays the RNG draws of every
// already-injected phase, and finishes bit-identically to an uninterrupted
// run. Recording does not compose with checkpointing.
func RunMDStepPointCkpt(cfg MDStepConfig, rc ckpt.RunConfig) (MDStepPoint, error) {
	if !rc.Enabled() {
		return RunMDStepPoint(cfg)
	}
	mc, spec, err := mdstepMachine(cfg)
	if err != nil {
		return MDStepPoint{}, err
	}
	if err := ckptGuard(rc, mc); err != nil {
		return MDStepPoint{}, err
	}
	pt := MDStepPoint{Strategy: mc.Scheme.Name(), Workload: spec.Canonical(), Timesteps: spec.Timesteps}
	m, _, err := BuildMachine(mc)
	if err != nil {
		return pt, err
	}
	tag := MDStepSpec(cfg).Canonical()

	var from *workload.Progress
	var prog workload.Progress
	if snap := loadRunCkpt(rc, tag, &prog); snap != nil {
		if err := m.Restore(snap); err == nil {
			from = &prog
		} else {
			// A failed restore may leave the machine partially mutated;
			// rebuild and start over — resuming is only an optimization.
			if m, _, err = BuildMachine(mc); err != nil {
				return pt, err
			}
		}
	}

	// The workload's engine hook hands us the driver Progress; pair it with
	// a machine snapshot and persist. m is captured after any restore, so
	// the sink always snapshots the machine actually running.
	w := ckpt.NewWriter(rc)
	sink := func(p workload.Progress) {
		snap, err := m.Snapshot()
		if err != nil {
			return
		}
		c := ckpt.New(tag, snap.Now)
		if err := ckptAddJSON(c, sectionMachine, snap); err != nil {
			return
		}
		if err := ckptAddJSON(c, sectionDriver, p); err != nil {
			return
		}
		_ = w.Save(c)
	}
	res, err := workload.RunResumable(m, spec, cfg.MaxPhaseCycles, from, rc.Every, sink)
	if err != nil {
		return pt, fmt.Errorf("core: mdstep %s: %w", pt.Strategy, err)
	}
	if err := m.FinishChecks(); err != nil {
		return pt, fmt.Errorf("core: mdstep %s: %w", pt.Strategy, err)
	}
	rc.Discard()
	pt.Phases = res.Phases
	pt.TotalCycles = res.TotalCycles
	pt.TotalNS = res.TotalNS
	pt.CyclesPerTimestep = float64(res.TotalCycles) / float64(spec.Timesteps)
	return pt, nil
}

// RunMDStepPointRecorded is RunMDStepPoint with an optional traffic capture:
// when record is set, every injection is recorded into the internal/trace
// format, and ReplayMDStepTrace replays the capture to identical per-phase
// cycle counts.
func RunMDStepPointRecorded(cfg MDStepConfig, record bool) (MDStepPoint, *trace.Trace, error) {
	mc, spec, err := mdstepMachine(cfg)
	if err != nil {
		return MDStepPoint{}, nil, err
	}
	pt := MDStepPoint{Strategy: mc.Scheme.Name(), Workload: spec.Canonical(), Timesteps: spec.Timesteps}
	m, _, err := BuildMachine(mc)
	if err != nil {
		return pt, nil, err
	}
	var rec *trace.Recorder
	if record {
		rec = trace.NewRecorder(spec.Header(mc.Shape, mc.Seed))
	}
	res, err := workload.Run(m, spec, rec, cfg.MaxPhaseCycles)
	if err != nil {
		return pt, nil, fmt.Errorf("core: mdstep %s: %w", pt.Strategy, err)
	}
	if err := m.FinishChecks(); err != nil {
		return pt, nil, fmt.Errorf("core: mdstep %s: %w", pt.Strategy, err)
	}
	pt.Phases = res.Phases
	pt.TotalCycles = res.TotalCycles
	pt.TotalNS = res.TotalNS
	pt.CyclesPerTimestep = float64(res.TotalCycles) / float64(spec.Timesteps)
	var tr *trace.Trace
	if rec != nil {
		tr = rec.Trace()
	}
	return pt, tr, nil
}

// ReplayMDStepTrace rebuilds the point's machine and replays a capture
// through it, returning the replayed per-phase timing for comparison against
// the original run.
func ReplayMDStepTrace(cfg MDStepConfig, tr *trace.Trace) (workload.Result, error) {
	mc, _, err := mdstepMachine(cfg)
	if err != nil {
		return workload.Result{}, err
	}
	m, _, err := BuildMachine(mc)
	if err != nil {
		return workload.Result{}, err
	}
	res, err := workload.ReplayTrace(m, tr, cfg.MaxPhaseCycles)
	if err != nil {
		return res, err
	}
	if err := m.FinishChecks(); err != nil {
		return res, err
	}
	return res, nil
}

// MDStepSpec canonically identifies one mdstep point. The strategy enters
// through addMachine's scheme name and the workload through its canonical
// token, so the cache key pins (machine config, strategy, workload spec).
// The derived multicast tables are intentionally absent: they are a pure
// function of (shape, workload), which the key already holds.
func MDStepSpec(cfg MDStepConfig) *exp.Spec {
	s := exp.NewSpec("mdstep")
	addMachine(s, cfg.Machine)
	return s.Add("workload", cfg.Workload.WithDefaults().Canonical()).
		Add("maxcycles", cfg.MaxPhaseCycles)
}

// MDStepJob wraps one RunMDStepPoint call for the orchestrator. The job is
// checkpoint-aware: under exp's Checkpoint options a retried or restarted
// attempt resumes from the last persisted snapshot.
func MDStepJob(cfg MDStepConfig) exp.Job {
	run := func(seed uint64, rc ckpt.RunConfig) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunMDStepPointCkpt(c, rc)
	}
	return exp.Job{
		Spec:    MDStepSpec(cfg),
		Run:     func(seed uint64) (any, error) { return run(seed, ckpt.RunConfig{}) },
		RunCkpt: run,
	}
}

// MDStepJobs builds one job per registered routing strategy, in registry
// (name) order so the job list — and the artifact — is deterministic.
func MDStepJobs(base machine.Config, spec workload.Spec, maxPhaseCycles uint64) []exp.Job {
	var jobs []exp.Job
	for _, strat := range route.Strategies() {
		c := MDStepConfig{Machine: base, Workload: spec, MaxPhaseCycles: maxPhaseCycles}
		c.Machine.Scheme = strat
		jobs = append(jobs, MDStepJob(c))
	}
	return jobs
}

// MDStepSweepOpts runs the strategy sweep through the orchestrator.
func MDStepSweepOpts(base machine.Config, spec workload.Spec, maxPhaseCycles uint64, opts exp.Options) ([]MDStepPoint, error) {
	return collect[MDStepPoint](exp.Run(MDStepJobs(base, spec, maxPhaseCycles), opts))
}
