package core

import (
	"fmt"

	"anton2/internal/exp"

	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/topo"
)

// PayloadKind selects the Figure 13 payload patterns.
type PayloadKind int

// Figure 13 payload patterns.
const (
	PayloadZeros PayloadKind = iota
	PayloadOnes
	PayloadRandom
)

func (p PayloadKind) String() string {
	return [...]string{"zeros", "ones", "random"}[p]
}

// EnergyConfig describes a Section 4.5 router-energy measurement: a single
// core streams single-flit packets around a circuitous on-chip route at a
// controlled injection rate with maximized activation rate; router power is
// recovered by subtracting a short-route run from a long-route run.
type EnergyConfig struct {
	Machine machine.Config
	// Model assigns energy to counted events (the simulation's ground
	// truth, standing in for the voltage-regulator telemetry).
	Model power.Model
	// RateNum/RateDen is the injection rate r = num/den.
	RateNum, RateDen int
	Payload          PayloadKind
	// Flits is the stream length measured.
	Flits int
}

// EnergyPoint is one measured per-flit energy.
type EnergyPoint struct {
	Rate      float64
	Payload   PayloadKind
	PerFlitPJ float64
	// Stream statistics for model fitting.
	H, N, AOverR float64
}

// loopNodes returns the clockwise perimeter cycle of the mesh starting and
// ending at (0,0). A simple cycle contains no opposite-direction channel
// pair, so the cycle and its reverse are channel-disjoint: a continuous
// stream around both never loads any directed channel twice and therefore
// cannot contend with itself.
func loopNodes() []topo.MeshCoord {
	var seq []topo.MeshCoord
	for u := 0; u < topo.MeshW; u++ {
		seq = append(seq, topo.MeshCoord{U: u, V: 0})
	}
	for v := 1; v < topo.MeshH; v++ {
		seq = append(seq, topo.MeshCoord{U: topo.MeshW - 1, V: v})
	}
	for u := topo.MeshW - 2; u >= 0; u-- {
		seq = append(seq, topo.MeshCoord{U: u, V: topo.MeshH - 1})
	}
	for v := topo.MeshH - 2; v >= 0; v-- {
		seq = append(seq, topo.MeshCoord{U: 0, V: v})
	}
	return seq
}

// loopRoute builds a source route from the home endpoint around a closed
// mesh loop and back. The short variant makes 4 router hops beyond
// injection; the long one 24 (clockwise perimeter plus counterclockwise
// perimeter). The 20-hop difference plays the role of the paper's 3-hop vs
// 35-hop subtraction; both routes use each directed channel at most once,
// so the stream cannot overload a revisited channel or perturb its own
// activation pattern.
func loopRoute(chip *topo.Chip, long bool, homeEp int) []uint8 {
	var seq []topo.MeshCoord
	if long {
		fwd := loopNodes()
		seq = append(seq, fwd...)
		// Append the reverse walk: it uses exactly the opposite
		// directed channels, keeping the union duplicate-free.
		for i := len(fwd) - 2; i >= 0; i-- {
			seq = append(seq, fwd[i])
		}
	} else {
		seq = []topo.MeshCoord{
			{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 0}, {U: 1, V: 0}, {U: 0, V: 0},
		}
	}
	ports := make([]uint8, 0, len(seq))
	for i := 0; i+1 < len(seq); i++ {
		r := chip.RouterAt(seq[i])
		var dir topo.MeshDir
		switch {
		case seq[i+1].U == seq[i].U+1:
			dir = topo.UPos
		case seq[i+1].U == seq[i].U-1:
			dir = topo.UNeg
		case seq[i+1].V == seq[i].V+1:
			dir = topo.VPos
		default:
			dir = topo.VNeg
		}
		ports = append(ports, uint8(r.MeshPort(dir)))
	}
	ports = append(ports, uint8(chip.RouterAt(seq[len(seq)-1]).EndpointPort(homeEp)))
	return ports
}

// routerHops counts the router traversals of a source route (every entry is
// one router's output decision).
func routerHops(ports []uint8) int { return len(ports) }

// measureStream drives one stream and returns the router-energy counters
// plus the observed per-flit statistics.
func measureStream(cfg EnergyConfig, long bool) (power.Counters, EnergyPoint, uint64, error) {
	mcfg := cfg.Machine
	mcfg.TrackEnergy = true
	m, _, err := BuildMachine(mcfg)
	if err != nil {
		return power.Counters{}, EnergyPoint{}, 0, err
	}
	tm := m.Topo
	chip := tm.Chip
	start := topo.MeshCoord{U: 0, V: 0}
	homeEp := chip.CoreEndpoint(start)
	src := topo.NodeEp{Node: 0, Ep: homeEp}
	ports := loopRoute(chip, long, homeEp)

	rng := sim.NewRNG(mcfg.Seed, "energy-payload")
	mkPayload := func() []byte {
		b := make([]byte, packet.CommonPayloadBytes)
		switch cfg.Payload {
		case PayloadOnes:
			for i := range b {
				b[i] = 0xFF
			}
		case PayloadRandom:
			rng.Read(b)
		}
		return b
	}

	offsets := power.StreamGaps(cfg.RateNum, cfg.RateDen)
	period := uint64(cfg.RateDen)
	sent := 0
	ep := m.Endpoint(src)
	ep.Source = func() *packet.Packet {
		if sent >= cfg.Flits {
			return nil
		}
		cycle := uint64(sent/len(offsets))*period + uint64(offsets[sent%len(offsets)])
		p := m.MakePacket(src, src, route.Choices{Order: topo.AllDimOrders[0], Ties: [3]int8{1, 1, 1}}, route.ClassRequest, 0, 1)
		p.SourceRoute = ports
		p.Payload = mkPayload()
		p.NotBefore = cycle + 1 // absolute schedule; +1 keeps NotBefore nonzero
		sent++
		return p
	}
	delivered := uint64(0)
	ep.OnDeliver = func(p *packet.Packet, now uint64) bool {
		delivered++
		return false
	}

	total := uint64(cfg.Flits)
	end, err := m.RunUntilDelivered(total, 50_000_000)
	if err != nil {
		return power.Counters{}, EnergyPoint{}, 0, fmt.Errorf("core: energy stream (long=%v): %w", long, err)
	}
	if err := m.FinishChecks(); err != nil {
		return power.Counters{}, EnergyPoint{}, 0, fmt.Errorf("core: energy stream (long=%v): %w", long, err)
	}

	// Router energy: sum counters over channels driven by routers.
	var c power.Counters
	for id := 0; id < tm.NumChannels(); id++ {
		ch := m.Chan(id)
		if ch.Energy == nil || tm.IsTorusChan(id) {
			continue
		}
		_, ic := tm.IntraChanOf(id)
		if ic.From.Kind != topo.LocRouter {
			continue
		}
		c.Add(power.Counters(*ch.Energy))
	}
	r := float64(cfg.RateNum) / float64(cfg.RateDen)
	a := power.MaxActivationRate(r)
	pt := EnergyPoint{
		Rate:    r,
		Payload: cfg.Payload,
		AOverR:  a / r,
	}
	return c, pt, end, nil
}

// RunEnergy performs the two-route subtraction of Section 4.5: a 3-router
// and a 35-router stream at the same rate and payload; per-flit, per-hop
// energy is the counter difference over the hop difference.
func RunEnergy(cfg EnergyConfig) (EnergyPoint, error) {
	cShort, _, _, err := measureStream(cfg, false)
	if err != nil {
		return EnergyPoint{}, err
	}
	cLong, pt, _, err := measureStream(cfg, true)
	if err != nil {
		return EnergyPoint{}, err
	}
	// Hop counts come from the route lengths themselves (one router
	// output decision per entry).
	chip := topo.DefaultChip()
	home := chip.CoreEndpoint(topo.MeshCoord{U: 0, V: 0})
	hopsShort := routerHops(loopRoute(chip, false, home))
	hopsLong := routerHops(loopRoute(chip, true, home))

	eShort := cfg.Model.WindowEnergy(cShort)
	eLong := cfg.Model.WindowEnergy(cLong)
	flits := float64(cfg.Flits)
	perHopPerFlit := (eLong - eShort) / float64(hopsLong-hopsShort) / flits

	// Per-hop stream statistics from the same subtraction: the counter
	// differences isolate the added hops, exactly as the power
	// subtraction does, so the fit regresses measured energy on measured
	// per-hop Hamming distance, set bits, and activation ratio.
	if dF := float64(cLong.Flits - cShort.Flits); dF > 0 {
		pt.H = float64(cLong.HammingSum-cShort.HammingSum) / dF
		pt.N = float64(cLong.SetBitsSum-cShort.SetBitsSum) / dF
		pt.AOverR = float64(cLong.Activations-cShort.Activations) / dF
	}
	pt.PerFlitPJ = perHopPerFlit
	return pt, nil
}

// EnergySweep measures per-flit energy across injection rates for one
// payload pattern (one Figure 13 curve) through the orchestrator, serially;
// EnergySweepOpts exposes the worker pool.
func EnergySweep(mcfg machine.Config, model power.Model, payload PayloadKind, rates [][2]int, flits int) ([]EnergyPoint, error) {
	return EnergySweepOpts(mcfg, model, payload, rates, flits, exp.Serial())
}

// FitEnergyModel refits the Section 4.5 model to measured points.
func FitEnergyModel(points []EnergyPoint) power.Model {
	samples := make([]power.Sample, len(points))
	for i, p := range points {
		samples[i] = power.Sample{H: p.H, N: p.N, AOverR: p.AOverR, Energy: p.PerFlitPJ}
	}
	return power.Fit(samples)
}
