package core

import (
	"encoding/json"
	"fmt"

	"anton2/internal/ckpt"
	"anton2/internal/machine"
)

// This file threads crash-safe checkpointing through the figure runners. A
// checkpoint pairs two sections: "machine" (the complete machine.Snapshot)
// and "driver" (the runner's own position — injection counters, RNG progress,
// per-phase state). Restoring both and fast-forwarding the driver's RNG
// streams makes a resumed run bit-identical to an uninterrupted one, so
// checkpointing never perturbs results — it only bounds how much work a crash
// can lose.
//
// Resuming is strictly an optimization: any problem with a checkpoint — torn
// file, tag mismatch, shape mismatch against the rebuilt machine — silently
// falls back to a fresh run, which is always correct.

// Section names inside a run checkpoint.
const (
	sectionMachine = "machine"
	sectionDriver  = "driver"
)

// ckptAddJSON marshals v into a named checkpoint section.
func ckptAddJSON(c *ckpt.Checkpoint, name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.Add(name, b)
	return nil
}

// loadRunCkpt loads the machine snapshot and driver state from the run's
// checkpoint, or returns nil when there is nothing usable to resume from.
func loadRunCkpt(rc ckpt.RunConfig, tag string, driver any) *machine.Snapshot {
	c := rc.Load(tag)
	if c == nil {
		return nil
	}
	mb, ok := c.Section(sectionMachine)
	if !ok {
		return nil
	}
	db, ok := c.Section(sectionDriver)
	if !ok {
		return nil
	}
	var snap machine.Snapshot
	if err := json.Unmarshal(mb, &snap); err != nil {
		return nil
	}
	if err := json.Unmarshal(db, driver); err != nil {
		return nil
	}
	return &snap
}

// ckptGuard rejects run configurations that cannot be snapshotted before any
// simulation happens, so the failure is an immediate error rather than a run
// that silently writes no checkpoints.
func ckptGuard(rc ckpt.RunConfig, mc machine.Config) error {
	if !rc.Enabled() {
		return nil
	}
	if mc.Check {
		return fmt.Errorf("core: checkpointing does not compose with the invariant suite (Config.Check)")
	}
	if mc.Telemetry != nil {
		return fmt.Errorf("core: checkpointing does not compose with telemetry capture")
	}
	return nil
}

// installCkptHook arms the engine's checkpoint hook: at every snapshot
// boundary it captures the machine, asks the runner for its driver section,
// and persists the pair through the writer's throttle and atomic-replace
// discipline. Write failures are sticky in the writer and deliberately do not
// interrupt the simulation. The caller must disarm with
// m.Engine.SetCheckpoint(0, nil) when the run finishes.
func installCkptHook(m *machine.Machine, rc ckpt.RunConfig, tag string, driver func() any) *ckpt.Writer {
	w := ckpt.NewWriter(rc)
	m.Engine.SetCheckpoint(rc.Every, func(now uint64) {
		snap, err := m.Snapshot()
		if err != nil {
			return
		}
		c := ckpt.New(tag, snap.Now)
		if err := ckptAddJSON(c, sectionMachine, snap); err != nil {
			return
		}
		if err := ckptAddJSON(c, sectionDriver, driver()); err != nil {
			return
		}
		_ = w.Save(c)
	})
	return w
}
