package core

import (
	"fmt"

	"anton2/internal/area"
	"anton2/internal/deadlock"
	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/stats"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// The routecompare experiment family scores every registered routing
// strategy head-to-head: saturation throughput and delivery latency from
// measurement runs, VC/buffer area cost from the internal/area model, the
// static deadlock verdict from internal/deadlock, and faultsweep-style
// degradation behavior under permanent link outages. One point = one
// (strategy, failed-link count) cell; a sweep covers the whole registry.

// RouteCompareConfig describes one routecompare point.
type RouteCompareConfig struct {
	// Machine carries the strategy under test in its Scheme field.
	Machine machine.Config
	// Pattern generates the measured traffic.
	Pattern traffic.Pattern
	// Batch is the number of packets each core sends.
	Batch int
	// MaxCycles bounds the run (0 = a generous default).
	MaxCycles uint64
	// VerifyDeadlock runs the static analyzer on the run's shape and
	// records the verdict (set on the healthy point of each strategy;
	// the verdict is fail-count-independent).
	VerifyDeadlock bool
}

// RouteComparePoint is one measured routecompare cell.
type RouteComparePoint struct {
	Strategy  string `json:"strategy"`
	FailLinks int    `json:"fail_links"`

	// Analytic strategy profile.
	MeshVCs  int `json:"mesh_vcs"`
	TorusVCs int `json:"torus_vcs"`
	// AreaVsAnton is the network-area ratio of this strategy's VC
	// provisioning against the paper's scheme (internal/area).
	AreaVsAnton float64 `json:"area_vs_anton"`
	// DeadlockVerified/DeadlockFree report the static analyzer verdict
	// when VerifyDeadlock was set.
	DeadlockVerified bool `json:"deadlock_verified,omitempty"`
	DeadlockFree     bool `json:"deadlock_free,omitempty"`
	// SatRate is the strategy's own analytic saturation rate
	// (packets/cycle/core) under the pattern; MeanTorusHops its analytic
	// mean inter-node path length (path stretch shows up here).
	SatRate       float64 `json:"sat_rate"`
	MeanTorusHops float64 `json:"mean_torus_hops"`

	// Measured.
	Batch  int    `json:"batch"`
	Cycles uint64 `json:"cycles"`
	// Throughput is normalized by the strategy's own saturation rate;
	// PacketsPerKCycle is the absolute per-core delivery rate x1000, the
	// cross-strategy comparison axis.
	Throughput       float64 `json:"throughput"`
	PacketsPerKCycle float64 `json:"packets_per_kcycle"`
	MeanLatency      float64 `json:"mean_latency"`
	P99Latency       float64 `json:"p99_latency"`
	// Degradation columns: static strategies concede DegradedRun when
	// links die (Rerouted counts emergency reroutes); a fault-aware
	// strategy absorbs the same outages (RoutedNative) un-degraded.
	DegradedRun  bool   `json:"degraded_run,omitempty"`
	Rerouted     uint64 `json:"rerouted,omitempty"`
	RoutedNative uint64 `json:"routed_native,omitempty"`
}

// SimCycles lets exp record simulated cycle counts in artifacts.
func (p RouteComparePoint) SimCycles() uint64 { return p.Cycles }

// Degraded implements exp.Degrader for result classification.
func (p RouteComparePoint) Degraded() bool { return p.DegradedRun }

// AreaRatioVsAnton prices a strategy's VC provisioning against the paper's
// scheme: the network-area ratio at otherwise-default area parameters.
func AreaRatioVsAnton(s route.Scheme) float64 {
	cfg := area.Default()
	cfg.Scheme = s
	return area.Compute(cfg).NetworkTotal() / area.Compute(area.Default()).NetworkTotal()
}

// RunRouteComparePoint executes one routecompare measurement.
func RunRouteComparePoint(cfg RouteCompareConfig) (RouteComparePoint, error) {
	scheme := cfg.Machine.Scheme
	if scheme == nil {
		scheme = route.AntonScheme{}
	}
	pt := RouteComparePoint{
		Strategy:    scheme.Name(),
		MeshVCs:     scheme.MeshVCs(),
		TorusVCs:    scheme.TorusVCs(),
		AreaVsAnton: AreaRatioVsAnton(scheme),
		Batch:       cfg.Batch,
	}
	if cfg.Machine.Fault != nil {
		pt.FailLinks = cfg.Machine.Fault.FailLinks
	}

	m, _, err := BuildMachine(cfg.Machine)
	if err != nil {
		return pt, err
	}
	if cfg.VerifyDeadlock {
		pt.DeadlockVerified = true
		pt.DeadlockFree = deadlock.Verify(m.RouteConfig(), deadlock.Options{}) == nil
	}
	measured, err := PatternLoads(cfg.Machine, cfg.Pattern)
	if err != nil {
		return pt, err
	}
	satRate := measured.SaturationRate()
	if satRate <= 0 {
		return pt, fmt.Errorf("core: pattern %s places no torus load", cfg.Pattern.Name())
	}
	pt.SatRate = satRate
	pt.MeanTorusHops = measured.MeanTorusHops

	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	total := uint64(tm.NumNodes() * len(cores) * cfg.Batch)
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			rng := sim.NewRNG(cfg.Machine.Seed, fmt.Sprintf("rc-src-%d-%d", n, ep))
			sent := 0
			m.Endpoint(src).Source = func() *packet.Packet {
				if sent >= cfg.Batch {
					return nil
				}
				sent++
				dst := cfg.Pattern.Dest(tm, src, rng)
				return m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
			}
		}
	}
	lats := make([]float64, 0, total)
	onDeliver := func(p *packet.Packet, now uint64) bool {
		lats = append(lats, float64(now-p.InjectedAt))
		return false
	}
	for n := 0; n < tm.NumNodes(); n++ {
		for ep := 0; ep < topo.NumEndpoints; ep++ {
			m.Endpoint(topo.NodeEp{Node: n, Ep: ep}).OnDeliver = onDeliver
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		ideal := float64(cfg.Batch) / satRate
		maxCycles = uint64(100 * ideal)
		if maxCycles < 400_000 {
			maxCycles = 400_000
		}
	}
	end, err := m.RunUntilDelivered(total, maxCycles)
	if err != nil {
		return pt, fmt.Errorf("core: routecompare %s (faillinks=%d): %w", pt.Strategy, pt.FailLinks, err)
	}
	if err := m.FinishChecks(); err != nil {
		return pt, fmt.Errorf("core: routecompare %s (faillinks=%d): %w", pt.Strategy, pt.FailLinks, err)
	}

	pt.Cycles = end
	pt.Throughput = float64(cfg.Batch) / float64(end) / satRate
	pt.PacketsPerKCycle = float64(cfg.Batch) / float64(end) * 1000
	pt.MeanLatency = stats.Mean(lats)
	pt.P99Latency = stats.Percentile(lats, 99)
	if st := m.FaultStatus(); st != nil {
		pt.DegradedRun = st.Degraded
		pt.Rerouted = st.Counters.Rerouted
		pt.RoutedNative = st.Counters.RoutedNative
	}
	return pt, nil
}

// RouteCompareSpec canonically identifies one routecompare point. The
// strategy enters the key through addMachine's scheme name — distinct
// strategies can never share a cached artifact — and the fail-link count
// through the fault spec canonical.
func RouteCompareSpec(cfg RouteCompareConfig) *exp.Spec {
	s := exp.NewSpec("routecompare")
	addMachine(s, cfg.Machine)
	return s.Add("pattern", cfg.Pattern.Name()).
		Add("batch", cfg.Batch).
		Add("maxcycles", cfg.MaxCycles).
		Add("verify", cfg.VerifyDeadlock)
}

// RouteCompareJob wraps one RunRouteComparePoint call for the orchestrator.
func RouteCompareJob(cfg RouteCompareConfig) exp.Job {
	return exp.Job{Spec: RouteCompareSpec(cfg), Run: func(seed uint64) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunRouteComparePoint(c)
	}}
}

// RouteCompareJobs builds the full comparison grid: every registered
// strategy at every fail-link count (0 = the healthy phase, which also
// carries the static deadlock verdict). Strategies iterate in registry
// (name) order so the job list — and the artifact — is deterministic.
func RouteCompareJobs(base machine.Config, pattern traffic.Pattern, batch int, failLinks []int, maxCycles uint64) []exp.Job {
	var jobs []exp.Job
	for _, strat := range route.Strategies() {
		for _, n := range failLinks {
			c := RouteCompareConfig{
				Machine:        base,
				Pattern:        pattern,
				Batch:          batch,
				MaxCycles:      maxCycles,
				VerifyDeadlock: n == 0,
			}
			c.Machine.Scheme = strat
			if n > 0 {
				c.Machine.Fault = &fault.Spec{FailLinks: n}
			}
			jobs = append(jobs, RouteCompareJob(c))
		}
	}
	return jobs
}

// RouteCompareSweepOpts runs the comparison grid through the orchestrator.
func RouteCompareSweepOpts(base machine.Config, pattern traffic.Pattern, batch int, failLinks []int, maxCycles uint64, opts exp.Options) ([]RouteComparePoint, error) {
	return collect[RouteComparePoint](exp.Run(RouteCompareJobs(base, pattern, batch, failLinks, maxCycles), opts))
}
