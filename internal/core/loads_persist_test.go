package core

import (
	"encoding/json"
	"math"
	"testing"

	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// TestSnapshotRestoreLoadsRoundTrip verifies a load table survives the JSON
// round trip bit-for-bit on every field a consumer reads, and that restoring
// seeds the shared cache so the analytic computation is skipped.
func TestSnapshotRestoreLoadsRoundTrip(t *testing.T) {
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	pat := traffic.Uniform{}
	orig, err := PatternLoads(cfg, pat)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SnapshotLoads()
	if err != nil {
		t.Fatal(err)
	}
	key := LoadsCacheKey(cfg, pat)
	if _, ok := snap[key]; !ok {
		t.Fatalf("snapshot missing key %q (have %d entries)", key, len(snap))
	}

	// Restore into a logically cold cache by using a foreign key, then
	// verify the restored table matches the original on the fields the
	// weight builder and normalizers consume.
	coldKey := key + " restored-copy"
	if n, err := RestoreLoads(map[string]json.RawMessage{coldKey: snap[key]}); err != nil || n != 1 {
		t.Fatalf("RestoreLoads = (%d, %v), want (1, nil)", n, err)
	}
	v, hit, err := sharedLoads.Do(coldKey, func() (any, error) {
		t.Fatal("restored key recomputed")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("restored key not served from cache: hit=%v err=%v", hit, err)
	}
	got := v.(*loadcalc.Loads)
	if got.Cfg != nil {
		t.Error("restored table carries a routing config; it must be nil")
	}
	if got.Sources != orig.Sources || got.MeanTorusHops != orig.MeanTorusHops {
		t.Errorf("scalars diverge: %+v vs %+v", got.Sources, orig.Sources)
	}
	if math.Abs(got.SaturationRate()-orig.SaturationRate()) != 0 {
		t.Errorf("saturation rate diverges: %g vs %g", got.SaturationRate(), orig.SaturationRate())
	}
	for i := range orig.Torus {
		if got.Torus[i] != orig.Torus[i] {
			t.Fatalf("torus load %d diverges: %g vs %g", i, got.Torus[i], orig.Torus[i])
		}
	}
	for i := range orig.Chan {
		if got.Chan[i] != orig.Chan[i] {
			t.Fatalf("mesh load %d diverges: %g vs %g", i, got.Chan[i], orig.Chan[i])
		}
	}
	for r := range orig.SA1 {
		for p := range orig.SA1[r] {
			for vc := range orig.SA1[r][p] {
				if got.SA1[r][p][vc] != orig.SA1[r][p][vc] {
					t.Fatalf("SA1[%d][%d][%d] diverges", r, p, vc)
				}
			}
		}
	}
	for a := range orig.AdEg {
		for vc := range orig.AdEg[a] {
			if got.AdEg[a][vc] != orig.AdEg[a][vc] || got.AdIn[a][vc] != orig.AdIn[a][vc] {
				t.Fatalf("adapter arbiter loads diverge at [%d][%d]", a, vc)
			}
		}
	}
}
