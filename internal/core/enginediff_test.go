package core

import (
	"bytes"
	"testing"

	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// This file is the cross-engine regression net: every simulated experiment
// family runs once per engine configuration and the canonical artifacts must
// be byte-identical. The active-set scheduler and the sharded stepper are
// pure scheduling changes — if any family's artifact moves by a single byte,
// the scheduler broke cycle-level determinism. machine.Config.Engine and
// .Shards are deliberately excluded from exp spec cache keys (addMachine)
// for exactly this reason: all engines share one seed per point.

// engineVariants are the configurations every family is differenced across.
// Shards=4 implies the active engine; the scan engine is the reference
// semantics (tick every component every cycle, registration order).
var engineVariants = map[string]func(*machine.Config){
	"scan":     func(c *machine.Config) { c.Engine = machine.EngineScan },
	"active":   func(c *machine.Config) { c.Engine = machine.EngineActive },
	"sharded4": func(c *machine.Config) { c.Shards = 4 },
}

// diffFamily builds each family's jobs once per engine variant and compares
// canonical artifacts against the scan reference. Each exp.Run gets no
// cache: a shared cache would serve the second engine the first engine's
// results and make the test vacuous.
func diffFamily(t *testing.T, family string, jobs func(mutate func(*machine.Config)) []exp.Job) {
	t.Helper()
	canonical := func(name string, mutate func(*machine.Config)) []byte {
		rs := exp.Run(jobs(mutate), exp.Options{Name: family + "-" + name})
		if n := exp.Failed(rs); n > 0 {
			t.Fatalf("%s/%s: %d points failed: %v", family, name, n, exp.FirstErr(rs))
		}
		data, err := exp.MarshalCanonical(rs)
		if err != nil {
			t.Fatalf("%s/%s: marshal: %v", family, name, err)
		}
		return data
	}
	ref := canonical("scan", engineVariants["scan"])
	for name, mutate := range engineVariants {
		if name == "scan" {
			continue
		}
		name, mutate := name, mutate
		t.Run(family+"/"+name, func(t *testing.T) {
			if got := canonical(name, mutate); !bytes.Equal(got, ref) {
				t.Errorf("%s: %s artifact differs from scan reference\nscan:\n%s\n%s:\n%s",
					family, name, ref, name, got)
			}
		})
	}
}

// paperShape is the ISSUE-mandated differential shape: the paper-scale
// saturation machine (64 nodes), big enough that traffic crosses every
// torus dimension and shard boundary.
var paperShape = topo.Shape3(8, 4, 2)

func TestEngineDiffThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine differential sweep is slow")
	}
	diffFamily(t, "throughput", func(mutate func(*machine.Config)) []exp.Job {
		var jobs []exp.Job
		for _, pat := range []traffic.Pattern{traffic.Uniform{}, traffic.NHop{N: 2}} {
			mc := machine.DefaultConfig(paperShape)
			mutate(&mc)
			jobs = append(jobs, ThroughputJob(ThroughputConfig{
				Machine:        mc,
				Pattern:        pat,
				WeightPatterns: []traffic.Pattern{traffic.Uniform{}},
				Batch:          8,
			}))
		}
		return jobs
	})
}

func TestEngineDiffBlend(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine differential sweep is slow")
	}
	diffFamily(t, "blend", func(mutate func(*machine.Config)) []exp.Job {
		var jobs []exp.Job
		for _, f := range []float64{0, 0.5} {
			mc := machine.DefaultConfig(paperShape)
			mutate(&mc)
			jobs = append(jobs, BlendJob(BlendConfig{
				Machine:         mc,
				Weights:         WeightsBoth,
				ForwardFraction: f,
				Batch:           8,
			}))
		}
		return jobs
	})
}

func TestEngineDiffLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine differential sweep is slow")
	}
	diffFamily(t, "latency", func(mutate func(*machine.Config)) []exp.Job {
		cfg := DefaultLatencyConfig(paperShape)
		cfg.PingPongs = 2
		cfg.PairsPerHop = 2
		cfg.MaxHops = 3
		mutate(&cfg.Machine)
		return []exp.Job{LatencyJob(cfg)}
	})
}

func TestEngineDiffEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine differential sweep is slow")
	}
	// The energy family measures a single node's mesh loop; its natural
	// machine is 1x1x1 (sharding clamps to the one node, degenerating to
	// serial — still a valid no-divergence check of the clamp path).
	diffFamily(t, "energy", func(mutate func(*machine.Config)) []exp.Job {
		var jobs []exp.Job
		for _, rate := range [][2]int{{1, 4}, {1, 1}} {
			mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
			mutate(&mc)
			jobs = append(jobs, EnergyJob(EnergyConfig{
				Machine: mc, Model: power.PaperModel,
				RateNum: rate[0], RateDen: rate[1],
				Payload: PayloadRandom, Flits: 200,
			}))
		}
		return jobs
	})
}

func TestEngineDiffFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine differential sweep is slow")
	}
	diffFamily(t, "faultsweep", func(mutate func(*machine.Config)) []exp.Job {
		var jobs []exp.Job
		for _, rate := range []float64{0, 0.02} {
			mc := machine.DefaultConfig(paperShape)
			mc.Fault = &fault.Spec{
				CorruptRate:    rate,
				StallRate:      0.001,
				StallCycles:    16,
				CreditLossRate: 0.01,
			}
			mutate(&mc)
			jobs = append(jobs, FaultJob(FaultConfig{
				Machine: mc,
				Pattern: traffic.Uniform{},
				Batch:   8,
			}))
		}
		return jobs
	})
}
