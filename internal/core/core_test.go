package core

import (
	"math"
	"testing"

	"anton2/internal/arbiter"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

func TestRunThroughputBasics(t *testing.T) {
	for _, kind := range []arbiter.Kind{arbiter.KindRoundRobin, arbiter.KindInverseWeighted} {
		mc := machine.DefaultConfig(topo.Shape3(3, 3, 2))
		mc.Arbiter = kind
		r, err := RunThroughput(ThroughputConfig{
			Machine:        mc,
			Pattern:        traffic.Uniform{},
			WeightPatterns: []traffic.Pattern{traffic.Uniform{}},
			Batch:          64,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r.Normalized <= 0.2 || r.Normalized > 1.05 {
			t.Errorf("%v: normalized throughput %.3f out of range", kind, r.Normalized)
		}
		if r.Fairness < 0.5 || r.Fairness > 1.0001 {
			t.Errorf("%v: fairness %.3f out of range", kind, r.Fairness)
		}
		if r.MaxUtilization > 1.01 {
			t.Errorf("%v: utilization %.3f exceeds channel capacity", kind, r.MaxUtilization)
		}
	}
}

func TestThroughputSweepMonotoneBatches(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	rs, err := ThroughputSweep(ThroughputConfig{
		Machine: mc,
		Pattern: traffic.Uniform{},
	}, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Batch != 8 || rs[1].Batch != 32 {
		t.Fatalf("sweep results malformed: %+v", rs)
	}
	// Larger batches amortize ramp-up: throughput should not collapse.
	if rs[1].Normalized < rs[0].Normalized*0.5 {
		t.Errorf("batch 32 throughput %.3f collapsed versus batch 8's %.3f", rs[1].Normalized, rs[0].Normalized)
	}
}

// TestBlendWeightedBeatsRoundRobin is the Figure 10 headline at reduced
// scale: for pure tornado traffic, weighted arbitration with matching
// weights outperforms round-robin.
func TestBlendWeightedBeatsRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturation run")
	}
	mc := machine.DefaultConfig(topo.Shape3(8, 4, 2))
	run := func(mode WeightMode) float64 {
		r, err := RunBlend(BlendConfig{Machine: mc, ForwardFraction: 1, Weights: mode, Batch: 128})
		if err != nil {
			t.Fatal(err)
		}
		return r.Normalized
	}
	none := run(WeightsNone)
	fwd := run(WeightsForward)
	if fwd <= none {
		t.Errorf("forward weights %.3f did not beat round-robin %.3f on tornado", fwd, none)
	}
	t.Logf("tornado: none=%.3f forward=%.3f", none, fwd)
}

func TestBlendedSaturationRateLinear(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(4, 4, 4))
	fl, err := PatternLoads(mc, traffic.Tornado())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := PatternLoads(mc, traffic.ReverseTornado())
	if err != nil {
		t.Fatal(err)
	}
	pure := BlendedSaturationRate([]float64{1, 0}, []*loadcalc.Loads{fl, rl})
	mid := BlendedSaturationRate([]float64{0.5, 0.5}, []*loadcalc.Loads{fl, rl})
	// Tornado and reverse use opposite channels: a 50/50 blend halves the
	// busiest channel's load, doubling the saturation rate.
	if math.Abs(mid/pure-2) > 1e-9 {
		t.Errorf("mid-blend saturation %.4g, pure %.4g; want exactly 2x", mid, pure)
	}
}

func TestRunLatencyFigure11(t *testing.T) {
	cfg := DefaultLatencyConfig(topo.Shape3(4, 4, 4))
	cfg.PingPongs = 4
	cfg.PairsPerHop = 3
	res, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("only %d hop points measured", len(res.Points))
	}
	// Latency must increase with hops.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MeanNS <= res.Points[i-1].MeanNS {
			t.Errorf("latency not increasing: %v", res.Points)
			break
		}
	}
	// The fit should resemble the paper's: tens of ns per hop plus a
	// fixed overhead near 80 ns.
	if res.SlopeNS < 20 || res.SlopeNS > 70 {
		t.Errorf("per-hop latency %.1f ns outside the plausible band", res.SlopeNS)
	}
	if res.InterceptNS < 40 || res.InterceptNS > 140 {
		t.Errorf("fixed overhead %.1f ns outside the plausible band", res.InterceptNS)
	}
	if res.R2 < 0.95 {
		t.Errorf("latency-vs-hops fit r2 = %.3f; should be nearly linear", res.R2)
	}
	t.Logf("fit: %.1f ns + %.1f ns/hop (r2=%.4f), min %.1f ns", res.InterceptNS, res.SlopeNS, res.R2, res.MinNS)
}

func TestDecomposeMinLatency(t *testing.T) {
	cfg := DefaultLatencyConfig(topo.Shape3(4, 4, 4))
	comps := DecomposeMinLatency(cfg)
	total := TotalNS(comps)
	// The paper's minimum is 99 ns; our calibration should land nearby.
	if total < 70 || total > 140 {
		t.Errorf("decomposition total %.1f ns, want near 99 ns", total)
	}
	// Software + sync should dominate (the paper: network is only ~40%).
	var sw float64
	for _, c := range comps {
		if c.Name == "software send" || c.Name == "sync + handler dispatch" {
			sw += c.NS
		}
	}
	if sw/total < 0.3 {
		t.Errorf("software share %.0f%%; expected a large non-network fraction", 100*sw/total)
	}
}

func TestEnergyFigure13Shape(t *testing.T) {
	mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
	run := func(payload PayloadKind, num, den int) EnergyPoint {
		pt, err := RunEnergy(EnergyConfig{
			Machine: mc, Model: power.PaperModel,
			RateNum: num, RateDen: den, Payload: payload, Flits: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	slowRandom := run(PayloadRandom, 1, 4)
	fastRandom := run(PayloadRandom, 9, 10)
	if slowRandom.PerFlitPJ <= fastRandom.PerFlitPJ {
		t.Errorf("per-flit energy should fall with injection rate: %.1f @0.25 vs %.1f @0.9",
			slowRandom.PerFlitPJ, fastRandom.PerFlitPJ)
	}
	zeros := run(PayloadZeros, 1, 4)
	ones := run(PayloadOnes, 1, 4)
	if zeros.PerFlitPJ >= slowRandom.PerFlitPJ {
		t.Errorf("zero payloads (%.1f pJ) should cost less than random (%.1f pJ)", zeros.PerFlitPJ, slowRandom.PerFlitPJ)
	}
	if ones.PerFlitPJ <= zeros.PerFlitPJ {
		t.Errorf("all-ones payloads (%.1f pJ) should cost more than zeros (%.1f pJ) via the n term", ones.PerFlitPJ, zeros.PerFlitPJ)
	}
}

func TestEnergyFitRecoversModel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run energy sweep")
	}
	mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
	var pts []EnergyPoint
	for _, payload := range []PayloadKind{PayloadZeros, PayloadOnes, PayloadRandom} {
		sw, err := EnergySweep(mc, power.PaperModel, payload, [][2]int{{1, 8}, {1, 2}, {3, 4}, {1, 1}}, 1200)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, sw...)
	}
	m := FitEnergyModel(pts)
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol*want {
			t.Errorf("%s = %.3f, want %.3f +/- %.0f%%", name, got, want, tol*100)
		}
	}
	check("fixed", m.Fixed, power.PaperModel.Fixed, 0.3)
	check("per-bit-flip", m.PerBitFlip, power.PaperModel.PerBitFlip, 0.3)
	check("per-activation", m.PerActivation, power.PaperModel.PerActivation, 0.4)
	t.Logf("refit: %+v", m)
}

// TestMeasuredDecompositionMatchesAnalytic: the traced nearest-neighbor
// stage latencies must sum close to the analytic Figure 12 budget and to
// the measured minimum one-way latency.
func TestMeasuredDecompositionMatchesAnalytic(t *testing.T) {
	cfg := DefaultLatencyConfig(topo.Shape3(4, 4, 2))
	measured, err := MeasureDecomposition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := DecomposeMinLatency(cfg)
	mt, at := TotalNS(measured), TotalNS(analytic)
	if mt < at*0.8 || mt > at*1.3 {
		t.Errorf("measured decomposition %.1f ns vs analytic %.1f ns", mt, at)
	}
	// The trace must show the unified-network path: endpoint, routers,
	// both adapters, torus.
	stages := map[string]bool{}
	for _, c := range measured {
		stages[c.Name] = true
		if c.NS < 0 {
			t.Errorf("negative stage latency: %+v", c)
		}
	}
	for _, want := range []string{"software send", "endpoint inject", "endpoint deliver", "sync + handler dispatch"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q: %v", want, measured)
		}
	}
	t.Logf("measured decomposition (%.1f ns total):", mt)
	for _, c := range measured {
		t.Logf("  %-26s %5.1f ns", c.Name, c.NS)
	}
}
