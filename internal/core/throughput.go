package core

import (
	"fmt"

	"anton2/internal/ckpt"
	"anton2/internal/exp"

	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/stats"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// ThroughputConfig describes one Figure 9 style measurement: every core
// sends a batch of packets according to a traffic pattern, and throughput is
// the batch size divided by the time to receive the last packet, normalized
// so 1.0 means full utilization of the busiest torus channel.
type ThroughputConfig struct {
	Machine machine.Config
	// Pattern generates the measured traffic.
	Pattern traffic.Pattern
	// WeightPatterns program the inverse-weighted arbiters (ignored for
	// round-robin). Figure 9 uses a single set of weights based on
	// uniform traffic for all measured patterns.
	WeightPatterns []traffic.Pattern
	// PatternID labels every packet with this weight-pattern index.
	PatternID uint8
	// Batch is the number of packets each core sends.
	Batch int
	// MaxCycles bounds the run (0 = a generous default).
	MaxCycles uint64
}

// ThroughputResult is one measured point.
type ThroughputResult struct {
	Batch  int
	Cycles uint64
	// Normalized throughput: measured per-core rate over the analytic
	// saturation rate.
	Normalized float64
	// Torus channel utilization over the whole run (1.0 = full
	// effective bandwidth).
	MeanUtilization float64
	MaxUtilization  float64
	// Fairness is Jain's index over per-core completion times.
	Fairness float64
}

// tpProgress is the throughput runner's driver section in a checkpoint: the
// per-core injection counters (in (node, core) order, pinning each RNG
// stream's position), the per-endpoint outstanding-delivery counters, and the
// per-core completion times gathered so far.
type tpProgress struct {
	Sent      []int     `json:"sent"`
	Remaining []int     `json:"remaining"`
	Finished  []float64 `json:"finished"`
}

// RunThroughput executes one batch measurement.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	return RunThroughputCkpt(cfg, ckpt.RunConfig{})
}

// RunThroughputCkpt is RunThroughput with crash-safe checkpointing: when rc
// is enabled, the machine and driver state are persisted every rc.Every
// cycles, and when rc asks for a resume and a usable checkpoint exists, the
// run restores it, fast-forwards every per-core RNG stream past the packets
// already injected, and finishes bit-identically to an uninterrupted run.
func RunThroughputCkpt(cfg ThroughputConfig, rc ckpt.RunConfig) (ThroughputResult, error) {
	if err := ckptGuard(rc, cfg.Machine); err != nil {
		return ThroughputResult{}, err
	}
	m, _, err := BuildMachine(cfg.Machine, cfg.WeightPatterns...)
	if err != nil {
		return ThroughputResult{}, err
	}
	measured, err := PatternLoads(cfg.Machine, cfg.Pattern)
	if err != nil {
		return ThroughputResult{}, err
	}
	satRate := measured.SaturationRate()
	if satRate <= 0 {
		return ThroughputResult{}, fmt.Errorf("core: pattern %s places no torus load", cfg.Pattern.Name())
	}

	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	numCores := tm.NumNodes() * len(cores)
	total := uint64(numCores * cfg.Batch)
	tag := ThroughputSpec(cfg).Canonical()

	sent := make([]int, numCores)
	remaining := make([]int, tm.NumEndpointsTotal())
	finished := make([]float64, 0, numCores)

	resumed := false
	if rc.Enabled() {
		var prog tpProgress
		if snap := loadRunCkpt(rc, tag, &prog); snap != nil &&
			len(prog.Sent) == numCores && len(prog.Remaining) == len(remaining) {
			if err := m.Restore(snap); err == nil {
				copy(sent, prog.Sent)
				copy(remaining, prog.Remaining)
				finished = append(finished, prog.Finished...)
				resumed = true
			} else {
				// A failed restore may leave the machine partially mutated;
				// rebuild and start over — resuming is only an optimization.
				if m, _, err = BuildMachine(cfg.Machine, cfg.WeightPatterns...); err != nil {
					return ThroughputResult{}, err
				}
			}
		}
	}

	ci := 0
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			if !resumed {
				remaining[tm.EndpointIndex(src)] = cfg.Batch
			}
			rng := sim.NewRNG(cfg.Machine.Seed, fmt.Sprintf("tp-src-%d-%d", n, ep))
			// Fast-forward the stream past the draws of every packet this
			// core injected before the checkpoint: the pattern destination,
			// then the route choices MakeRandomPacket draws.
			for k := 0; k < sent[ci]; k++ {
				cfg.Pattern.Dest(tm, src, rng)
				route.RandomChoices(rng)
			}
			i := ci
			m.Endpoint(src).Source = func() *packet.Packet {
				if sent[i] >= cfg.Batch {
					return nil
				}
				sent[i]++
				dst := cfg.Pattern.Dest(tm, src, rng)
				p := m.MakeRandomPacket(src, dst, route.ClassRequest, cfg.PatternID, rng)
				return p
			}
			ci++
		}
	}
	onDeliver := func(p *packet.Packet, now uint64) bool {
		i := tm.EndpointIndex(p.Src)
		remaining[i]--
		if remaining[i] == 0 {
			finished = append(finished, float64(now))
		}
		return false
	}
	for n := 0; n < tm.NumNodes(); n++ {
		for ep := 0; ep < topo.NumEndpoints; ep++ {
			m.Endpoint(topo.NodeEp{Node: n, Ep: ep}).OnDeliver = onDeliver
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		// Generous: 50x the ideal completion time, floor 200k cycles.
		ideal := float64(cfg.Batch) / satRate
		maxCycles = uint64(50 * ideal)
		if maxCycles < 200_000 {
			maxCycles = 200_000
		}
	}
	if rc.Enabled() {
		installCkptHook(m, rc, tag, func() any {
			return tpProgress{Sent: sent, Remaining: remaining, Finished: finished}
		})
		defer m.Engine.SetCheckpoint(0, nil)
	}
	end, err := m.RunUntilDelivered(total, maxCycles)
	if err != nil {
		return ThroughputResult{}, fmt.Errorf("core: throughput run (%s, batch %d): %w", cfg.Pattern.Name(), cfg.Batch, err)
	}
	if err := m.FinishChecks(); err != nil {
		return ThroughputResult{}, fmt.Errorf("core: throughput run (%s, batch %d): %w", cfg.Pattern.Name(), cfg.Batch, err)
	}

	rc.Discard()
	rate := float64(cfg.Batch) / float64(end) // packets/cycle/core
	_, meanU, maxU := m.TorusUtilization(nil, end)
	return ThroughputResult{
		Batch:           cfg.Batch,
		Cycles:          end,
		Normalized:      rate / satRate,
		MeanUtilization: meanU,
		MaxUtilization:  maxU,
		Fairness:        stats.JainIndex(finished),
	}, nil
}

// ThroughputSweep runs a batch-size sweep (one Figure 9 curve) through the
// orchestrator, serially; ThroughputSweepOpts exposes the worker pool.
func ThroughputSweep(cfg ThroughputConfig, batches []int) ([]ThroughputResult, error) {
	return ThroughputSweepOpts(cfg, batches, exp.Serial())
}
