package core

import (
	"fmt"

	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/stats"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// FaultConfig describes one faultsweep point: a fixed-batch uniform-style
// measurement run under a fault specification, reporting throughput and
// delivery-latency quantiles so degradation can be plotted against fault
// rate.
type FaultConfig struct {
	Machine machine.Config
	// Pattern generates the measured traffic.
	Pattern traffic.Pattern
	// Batch is the number of packets each core sends.
	Batch int
	// MaxCycles bounds the run (0 = a generous default, scaled up for
	// retransmission overhead).
	MaxCycles uint64
}

// FaultPoint is one measured faultsweep point.
type FaultPoint struct {
	// Spec echoes the fault spec's canonical form ("" = fault-free).
	Spec string `json:"spec"`
	// CorruptRate is the headline sweep axis.
	CorruptRate float64 `json:"corrupt_rate"`
	Batch       int     `json:"batch"`
	Cycles      uint64  `json:"cycles"`
	// Throughput is the measured per-core rate normalized by the
	// fault-free analytic saturation rate, so points across the sweep
	// share one scale.
	Throughput float64 `json:"throughput"`
	// MeanLatency and P99Latency are injection-to-delivery latencies in
	// cycles over every delivered packet.
	MeanLatency float64 `json:"mean_latency"`
	P99Latency  float64 `json:"p99_latency"`
	// DegradedRun marks a run that survived permanent faults by
	// rerouting (graceful degradation).
	DegradedRun bool `json:"degraded_run,omitempty"`
	// Counters snapshots the fault and reliability protocol events.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// SimCycles lets exp record simulated cycle counts in artifacts.
func (p FaultPoint) SimCycles() uint64 { return p.Cycles }

// Degraded implements exp.Degrader for result classification.
func (p FaultPoint) Degraded() bool { return p.DegradedRun }

// RunFaultPoint executes one faultsweep measurement.
func RunFaultPoint(cfg FaultConfig) (FaultPoint, error) {
	m, _, err := BuildMachine(cfg.Machine)
	if err != nil {
		return FaultPoint{}, err
	}
	measured, err := PatternLoads(cfg.Machine, cfg.Pattern)
	if err != nil {
		return FaultPoint{}, err
	}
	satRate := measured.SaturationRate()
	if satRate <= 0 {
		return FaultPoint{}, fmt.Errorf("core: pattern %s places no torus load", cfg.Pattern.Name())
	}

	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	total := uint64(tm.NumNodes() * len(cores) * cfg.Batch)

	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			rng := sim.NewRNG(cfg.Machine.Seed, fmt.Sprintf("fault-src-%d-%d", n, ep))
			sent := 0
			m.Endpoint(src).Source = func() *packet.Packet {
				if sent >= cfg.Batch {
					return nil
				}
				sent++
				dst := cfg.Pattern.Dest(tm, src, rng)
				return m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
			}
		}
	}
	lats := make([]float64, 0, total)
	onDeliver := func(p *packet.Packet, now uint64) bool {
		lats = append(lats, float64(now-p.InjectedAt))
		return false
	}
	for n := 0; n < tm.NumNodes(); n++ {
		for ep := 0; ep < topo.NumEndpoints; ep++ {
			m.Endpoint(topo.NodeEp{Node: n, Ep: ep}).OnDeliver = onDeliver
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		// The throughput default, doubled: retransmission and stall
		// overhead stretches completion well past the lossless ideal.
		ideal := float64(cfg.Batch) / satRate
		maxCycles = uint64(100 * ideal)
		if maxCycles < 400_000 {
			maxCycles = 400_000
		}
	}
	pt := FaultPoint{Batch: cfg.Batch}
	if cfg.Machine.Fault != nil {
		pt.Spec = cfg.Machine.Fault.Canonical()
		pt.CorruptRate = cfg.Machine.Fault.CorruptRate
	}
	end, err := m.RunUntilDelivered(total, maxCycles)
	if err != nil {
		return pt, fmt.Errorf("core: fault run (%s): %w", pt.Spec, err)
	}
	if err := m.FinishChecks(); err != nil {
		return pt, fmt.Errorf("core: fault run (%s): %w", pt.Spec, err)
	}

	pt.Cycles = end
	pt.Throughput = float64(cfg.Batch) / float64(end) / satRate
	pt.MeanLatency = stats.Mean(lats)
	pt.P99Latency = stats.Percentile(lats, 99)
	if st := m.FaultStatus(); st != nil {
		pt.DegradedRun = st.Degraded
		pt.Counters = st.Counters.Map()
	}
	return pt, nil
}

// FaultSpec canonically identifies one faultsweep point. The fault spec
// itself enters the key through addMachine.
func FaultSpec(cfg FaultConfig) *exp.Spec {
	s := exp.NewSpec("faultsweep")
	addMachine(s, cfg.Machine)
	return s.Add("pattern", cfg.Pattern.Name()).
		Add("batch", cfg.Batch).
		Add("maxcycles", cfg.MaxCycles)
}

// FaultJob wraps one RunFaultPoint call for the orchestrator.
func FaultJob(cfg FaultConfig) exp.Job {
	return exp.Job{Spec: FaultSpec(cfg), Run: func(seed uint64) (any, error) {
		c := cfg
		c.Machine.Seed = seed
		return RunFaultPoint(c)
	}}
}

// FaultSweepOpts sweeps corruption rate over the given points (plus any
// fixed stall/credit-loss/outage settings in base), through the
// orchestrator. A nil base sweeps corruption alone.
func FaultSweepOpts(cfg FaultConfig, base *fault.Spec, rates []float64, opts exp.Options) ([]FaultPoint, error) {
	jobs := make([]exp.Job, len(rates))
	for i, r := range rates {
		c := cfg
		spec := fault.Spec{}
		if base != nil {
			spec = *base
		}
		spec.CorruptRate = r
		c.Machine.Fault = &spec
		jobs[i] = FaultJob(c)
	}
	return collect[FaultPoint](exp.Run(jobs, opts))
}
