package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"anton2/internal/ckpt"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/workload"
)

// The resume tests interrupt runs the way a crash-retry loop would: a cycle
// budget too small for one attempt makes the runner error out mid-flight with
// checkpoints on disk, and each retry resumes from the last one (budgets are
// relative, so a resumed attempt gets fresh slack). The final successful
// attempt must report results identical to an uninterrupted run.

func tpCkptConfig(seed uint64) ThroughputConfig {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	mc.Seed = seed
	return ThroughputConfig{
		Machine:   mc,
		Pattern:   traffic.Uniform{},
		Batch:     64,
		MaxCycles: 250,
	}
}

func TestThroughputCkptResume(t *testing.T) {
	// The uninterrupted reference gets an unbounded budget; the budget only
	// bounds the run, it never shapes the dynamics.
	refCfg := tpCkptConfig(7)
	refCfg.MaxCycles = 0
	ref, err := RunThroughput(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	rc := ckpt.RunConfig{
		Path:  filepath.Join(t.TempDir(), "tp.ckpt"),
		Every: 50,
	}
	var got ThroughputResult
	attempts := 0
	for ; attempts < 100; attempts++ {
		got, err = RunThroughputCkpt(tpCkptConfig(7), rc)
		if err == nil {
			break
		}
		rc.Resume = true
	}
	if err != nil {
		t.Fatalf("never completed in %d attempts: %v", attempts, err)
	}
	if attempts == 0 {
		t.Fatal("budget never interrupted the run; the test is not exercising resume")
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("resumed result %+v differs from uninterrupted %+v after %d interruptions", got, ref, attempts)
	}
	if _, err := os.Stat(rc.Path); !os.IsNotExist(err) {
		t.Errorf("checkpoint file not discarded after success (stat err: %v)", err)
	}
}

func mdCkptConfig(seed uint64) MDStepConfig {
	mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	mc.Seed = seed
	return MDStepConfig{
		Machine:        mc,
		Workload:       workload.Spec{HaloPackets: 6, Multicasts: 1, ReducePackets: 2, Timesteps: 2},
		MaxPhaseCycles: 400,
	}
}

func TestMDStepCkptResume(t *testing.T) {
	ref, err := RunMDStepPoint(mdCkptConfig(7))
	if err != nil {
		t.Fatal(err)
	}

	rc := ckpt.RunConfig{
		Path:  filepath.Join(t.TempDir(), "md.ckpt"),
		Every: 40,
	}
	var got MDStepPoint
	attempts := 0
	for ; attempts < 100; attempts++ {
		got, err = RunMDStepPointCkpt(mdCkptConfig(7), rc)
		if err == nil {
			break
		}
		rc.Resume = true
	}
	if err != nil {
		t.Fatalf("never completed in %d attempts: %v", attempts, err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("resumed point %+v differs from uninterrupted %+v after %d interruptions", got, ref, attempts)
	}
	if _, err := os.Stat(rc.Path); !os.IsNotExist(err) {
		t.Errorf("checkpoint file not discarded after success (stat err: %v)", err)
	}
}

// TestCkptOffBitIdentical: a run with checkpointing disabled must report the
// exact same result through the checkpoint-aware entry points as through the
// plain ones (the off path is the pre-checkpoint code path).
func TestCkptOffBitIdentical(t *testing.T) {
	cfg := tpCkptConfig(3)
	cfg.MaxCycles = 0
	a, err := RunThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunThroughputCkpt(cfg, ckpt.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("disabled checkpointing changed the throughput result: %+v vs %+v", a, b)
	}

	p, err := RunMDStepPoint(mdCkptConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	q, err := RunMDStepPointCkpt(mdCkptConfig(3), ckpt.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("disabled checkpointing changed the mdstep point: %+v vs %+v", p, q)
	}
}

// TestCkptGuards: checkpointing refuses configurations it cannot snapshot.
func TestCkptGuards(t *testing.T) {
	cfg := tpCkptConfig(1)
	cfg.Machine.Check = true
	rc := ckpt.RunConfig{Path: filepath.Join(t.TempDir(), "x.ckpt"), Every: 10}
	if _, err := RunThroughputCkpt(cfg, rc); err == nil {
		t.Error("checkpointing with the invariant suite attached should fail")
	}
}

// ckptEngines are the cycle-kernel variants the resume matrix crosses with
// the routing strategies.
var ckptEngines = []struct {
	name   string
	mutate func(*machine.Config)
}{
	{"scan", func(c *machine.Config) { c.Engine = machine.EngineScan }},
	{"active", func(c *machine.Config) { c.Engine = machine.EngineActive }},
	{"sharded", func(c *machine.Config) { c.Engine = machine.EngineActive; c.Shards = 2 }},
}

// resumeUntilDone drives a run the way the crash-retry loop does — each
// attempt fails on its cycle budget with a checkpoint on disk, each retry
// resumes — and returns the final point plus the number of interruptions.
func resumeUntilDone[T any](t *testing.T, rc *ckpt.RunConfig, run func(ckpt.RunConfig) (T, error)) (T, int) {
	t.Helper()
	var got T
	var err error
	attempts := 0
	for ; attempts < 200; attempts++ {
		got, err = run(*rc)
		if err == nil {
			return got, attempts
		}
		rc.Resume = true
	}
	t.Fatalf("never completed in %d attempts: %v", attempts, err)
	return got, attempts
}

// TestCkptResumeEngineStrategyMatrix: resume determinism across the full
// engine × strategy grid. For every cycle-kernel variant (scan, active,
// sharded) × routing strategy (anton, vcless, angara), the golden 2×2×2
// mdstep and fig9 (throughput) points are run with a checkpoint at every
// cycle and a budget that forces repeated mid-flight interruptions; the
// resumed point must be byte-identical (canonical JSON) to the
// uninterrupted run's.
func TestCkptResumeEngineStrategyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("engine × strategy resume matrix is slow")
	}
	for _, stratName := range []string{"anton", "vcless", "angara"} {
		strat, ok := route.StrategyByName(stratName)
		if !ok {
			t.Fatalf("strategy %q not registered", stratName)
		}
		for _, eng := range ckptEngines {
			mutate := func(c *machine.Config) {
				c.Scheme = strat
				eng.mutate(c)
			}

			t.Run("fig9/"+stratName+"/"+eng.name, func(t *testing.T) {
				refCfg := tpCkptConfig(7)
				refCfg.Batch = 16
				refCfg.MaxCycles = 0
				mutate(&refCfg.Machine)
				ref, err := RunThroughput(refCfg)
				if err != nil {
					t.Fatal(err)
				}
				refBytes := mustCanonJSON(t, ref)

				cfg := tpCkptConfig(7)
				cfg.Batch = 16
				mutate(&cfg.Machine)
				// A budget of a third of the uninterrupted run guarantees at
				// least two mid-flight interruptions.
				cfg.MaxCycles = ref.Cycles / 3
				rc := ckpt.RunConfig{Path: filepath.Join(t.TempDir(), "tp.ckpt"), Every: 1}
				got, attempts := resumeUntilDone(t, &rc, func(rc ckpt.RunConfig) (ThroughputResult, error) {
					return RunThroughputCkpt(cfg, rc)
				})
				if attempts == 0 {
					t.Fatal("budget never interrupted the run; the test is not exercising resume")
				}
				if gotBytes := mustCanonJSON(t, got); string(gotBytes) != string(refBytes) {
					t.Errorf("resumed artifact differs after %d interruptions:\n got %s\nwant %s", attempts, gotBytes, refBytes)
				}
			})

			t.Run("mdstep/"+stratName+"/"+eng.name, func(t *testing.T) {
				refCfg := mdCkptConfig(7)
				// vcless drains phases slower than anton; let the reference
				// use the volume-scaled default budget.
				refCfg.MaxPhaseCycles = 0
				mutate(&refCfg.Machine)
				ref, err := RunMDStepPoint(refCfg)
				if err != nil {
					t.Fatal(err)
				}
				refBytes := mustCanonJSON(t, ref)

				cfg := mdCkptConfig(7)
				mutate(&cfg.Machine)
				// Bound each phase below the longest uninterrupted phase so
				// at least one phase is interrupted mid-flight (budgets are
				// relative to the resume point, so progress is monotone).
				var longest uint64
				for _, ph := range ref.Phases {
					if ph.Cycles > longest {
						longest = ph.Cycles
					}
				}
				cfg.MaxPhaseCycles = longest/2 + 1
				rc := ckpt.RunConfig{Path: filepath.Join(t.TempDir(), "md.ckpt"), Every: 1}
				got, attempts := resumeUntilDone(t, &rc, func(rc ckpt.RunConfig) (MDStepPoint, error) {
					return RunMDStepPointCkpt(cfg, rc)
				})
				if attempts == 0 {
					t.Fatal("budget never interrupted the run; the test is not exercising resume")
				}
				if gotBytes := mustCanonJSON(t, got); string(gotBytes) != string(refBytes) {
					t.Errorf("resumed artifact differs after %d interruptions:\n got %s\nwant %s", attempts, gotBytes, refBytes)
				}
			})
		}
	}
}

// mustCanonJSON renders a point in its canonical artifact form for byte
// comparison.
func mustCanonJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}
