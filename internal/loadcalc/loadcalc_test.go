package loadcalc_test

import (
	"anton2/internal/loadcalc"
	"math"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

func computeFor(t testing.TB, shape topo.TorusShape, p traffic.Pattern) (*route.Config, *loadcalc.Loads) {
	t.Helper()
	m, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := route.NewConfig(m)
	loads := loadcalc.Compute(cfg, m.Chip.CoreEndpoints(), p.Flows(m), route.ClassRequest)
	return cfg, loads
}

func TestUniformLoadsSymmetric(t *testing.T) {
	_, l := computeFor(t, topo.Shape3(4, 4, 4), traffic.Uniform{})
	// On a cube with uniform traffic, all 12 torus adapters carry equal
	// load.
	first := l.Torus[0]
	if first <= 0 {
		t.Fatal("zero torus load under uniform traffic")
	}
	for i, v := range l.Torus {
		if math.Abs(v-first) > 1e-9 {
			t.Errorf("adapter %v load %g != %g; uniform traffic must balance", topo.AdapterByIndex(i), v, first)
		}
	}
}

func TestFlowConservationAtRouters(t *testing.T) {
	cfg, l := computeFor(t, topo.Shape3(3, 3, 2), traffic.Uniform{})
	chip := cfg.Machine.Chip
	// For every router output port, the SA2 input loads must sum to the
	// output channel's load.
	for ri := 0; ri < topo.NumRouters; ri++ {
		r := &chip.Routers[ri]
		for po := range r.Ports {
			var sum float64
			for pi := 0; pi < topo.MaxRouterPorts; pi++ {
				sum += l.SA2[ri][po][pi]
			}
			want := l.Chan[r.Ports[po].OutChan]
			// Output channels fed by non-router sources (none for
			// router out ports) aside, these must match.
			if math.Abs(sum-want) > 1e-9 {
				t.Errorf("router %v port %d: SA2 inputs sum %g, channel load %g",
					r.Coord, po, sum, want)
			}
		}
	}
	// SA1 conservation: per input port, VC loads sum to the input
	// channel's load.
	for ri := 0; ri < topo.NumRouters; ri++ {
		r := &chip.Routers[ri]
		for pi := range r.Ports {
			var sum float64
			for _, v := range l.SA1[ri][pi] {
				sum += v
			}
			want := l.Chan[r.Ports[pi].InChan]
			if math.Abs(sum-want) > 1e-9 {
				t.Errorf("router %v port %d: SA1 VC loads sum %g, channel load %g", r.Coord, pi, sum, want)
			}
		}
	}
}

func TestAdapterConservation(t *testing.T) {
	cfg, l := computeFor(t, topo.Shape3(3, 2, 2), traffic.Uniform{})
	chip := cfg.Machine.Chip
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		ad := &chip.Adapters[ai]
		var eg, in float64
		for _, v := range l.AdEg[ai] {
			eg += v
		}
		for _, v := range l.AdIn[ai] {
			in += v
		}
		if math.Abs(eg-l.Torus[ai]) > 1e-9 {
			t.Errorf("adapter %v: egress VC loads %g != torus load %g", ad.ID, eg, l.Torus[ai])
		}
		if math.Abs(in-l.Chan[ad.ToRouter]) > 1e-9 {
			t.Errorf("adapter %v: ingress VC loads %g != to-router load %g", ad.ID, in, l.Chan[ad.ToRouter])
		}
	}
}

func TestTorusLoadSumMatchesMeanHops(t *testing.T) {
	_, l := computeFor(t, topo.Shape3(4, 3, 2), traffic.Uniform{})
	var sum float64
	for _, v := range l.Torus {
		sum += v
	}
	// Total torus traversals per round = sources x mean hops.
	want := float64(l.Sources) * l.MeanTorusHops
	if math.Abs(sum-want) > 1e-6 {
		t.Errorf("torus load sum %g != sources x mean hops %g", sum, want)
	}
	if l.MeanTorusHops <= 0 {
		t.Error("mean torus hops must be positive for uniform traffic")
	}
}

func TestTornadoLoadsDirectional(t *testing.T) {
	_, l := computeFor(t, topo.Shape3(4, 4, 4), traffic.Tornado())
	// Tornado on k=4 sends every packet +1 in each dimension: only
	// positive-direction channels carry load.
	for i, v := range l.Torus {
		ad := topo.AdapterByIndex(i)
		if ad.Dir.Positive() && v <= 0 {
			t.Errorf("adapter %v should carry tornado load", ad)
		}
		if !ad.Dir.Positive() && v != 0 {
			t.Errorf("adapter %v carries %g load; tornado is one-directional", ad, v)
		}
	}
}

func TestSaturationRate(t *testing.T) {
	_, l := computeFor(t, topo.Shape3(4, 4, 4), traffic.Uniform{})
	r := l.SaturationRate()
	if r <= 0 || r > 1 {
		t.Fatalf("saturation rate %g out of range", r)
	}
	// Manual check: capacity / max load.
	want := (1000.0 / 3214.0) / l.MaxTorusLoad()
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("saturation rate %g, want %g", r, want)
	}
}

func TestBuildWeightsShape(t *testing.T) {
	cfg, l1 := computeFor(t, topo.Shape3(2, 2, 2), traffic.Tornado())
	l2 := loadcalc.Compute(cfg, cfg.Machine.Chip.CoreEndpoints(), traffic.ReverseTornado().Flows(cfg.Machine), route.ClassRequest)
	ws := loadcalc.BuildWeights(l1, l2)
	maxVC := route.MaxTotalVCs(cfg.Scheme)
	for ri := 0; ri < topo.NumRouters; ri++ {
		for p := 0; p < topo.MaxRouterPorts; p++ {
			if len(ws.SA2[ri][p]) != topo.MaxRouterPorts {
				t.Fatalf("SA2 weight row has %d entries", len(ws.SA2[ri][p]))
			}
			if len(ws.SA1[ri][p]) != maxVC {
				t.Fatalf("SA1 weight row has %d entries, want %d", len(ws.SA1[ri][p]), maxVC)
			}
		}
	}
	for a := 0; a < topo.NumChannelAdapters; a++ {
		if len(ws.AdEg[a]) != maxVC || len(ws.AdIn[a]) != maxVC {
			t.Fatalf("adapter weight rows misshapen")
		}
	}
}

func TestMaxMeshLoadReported(t *testing.T) {
	_, l := computeFor(t, topo.Shape3(3, 3, 3), traffic.Uniform{})
	load, id := l.MaxMeshLoad()
	if load <= 0 || id < 0 {
		t.Fatalf("MaxMeshLoad = %g, %d", load, id)
	}
}

// TestSliceRandomizationBalances: pinning every packet to one slice doubles
// the load on that slice's channels — the ablation behind channel slicing
// plus per-packet slice randomization (Section 2.3).
func TestSliceRandomizationBalances(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := route.NewConfig(m)
	flows := traffic.Uniform{}.Flows(m)
	balanced := loadcalc.Compute(cfg, m.Chip.CoreEndpoints(), flows, route.ClassRequest)
	pinned := loadcalc.ComputeFixedSlice(cfg, m.Chip.CoreEndpoints(), flows, route.ClassRequest, 0)

	ratio := pinned.MaxTorusLoad() / balanced.MaxTorusLoad()
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("pinned-slice max load ratio = %g, want exactly 2", ratio)
	}
	// Slice-1 channels must be idle when pinned to slice 0.
	for i, v := range pinned.Torus {
		if topo.AdapterByIndex(i).Slice == 1 && v != 0 {
			t.Errorf("slice-1 adapter %v carries %g load despite pinning", topo.AdapterByIndex(i), v)
		}
	}
}
