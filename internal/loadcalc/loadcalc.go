// Package loadcalc computes expected resource loads for known traffic
// patterns by analytic route enumeration (Section 3.1). The loads feed two
// consumers: the inverse-weighted arbiter tables (service proportional to
// load achieves equality of service) and the throughput normalization of the
// measurement harness (throughput 1.0 = full utilization of the busiest
// torus channel).
//
// All of the paper's measurement patterns are node-symmetric, so loads are
// computed once for routes sourced at node 0 and folded over the node index:
// by translation invariance, the per-node load on a resource equals the sum
// over node-0-sourced routes of that resource's traversals at any node.
package loadcalc

import (
	"fmt"

	"anton2/internal/arbiter"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// Flow is one element of a source's destination distribution: a fraction of
// the source's packets bound for a destination endpoint.
type Flow struct {
	Dst  topo.NodeEp
	Frac float64
}

// FlowFunc enumerates the destination distribution of a node-0 source
// endpoint. Fractions must sum to 1 per source.
type FlowFunc func(srcEp int) []Flow

// Loads holds the expected per-resource loads of one traffic pattern, in
// units of traversals per "round" in which every source endpoint on every
// node injects one packet.
type Loads struct {
	Cfg *route.Config

	// Chan is indexed by chip channel id (per-node intra channels).
	Chan []float64
	// Torus is indexed by adapter index (direction x slice).
	Torus [topo.NumChannelAdapters]float64

	// SA2 is the switch-output arbiter load: [router][outPort][inPort].
	SA2 [topo.NumRouters][topo.MaxRouterPorts][topo.MaxRouterPorts]float64
	// SA1 is the input VC arbiter load: [router][inPort][physVC].
	SA1 [topo.NumRouters][topo.MaxRouterPorts][]float64
	// AdEg / AdIn are the channel-adapter egress (mesh-to-torus) and
	// ingress (torus-to-router) arbiter loads: [adapter][physVC].
	AdEg [topo.NumChannelAdapters][]float64
	AdIn [topo.NumChannelAdapters][]float64

	// MeanTorusHops is the expected inter-node hop count per packet.
	MeanTorusHops float64
	// Sources is the number of source endpoints per node.
	Sources int
}

// Compute enumerates all routes from the given node-0 source endpoints,
// weighting each destination by its flow fraction and each routing choice by
// its randomization probability, and folds the traversal counts by node.
// class selects the traffic class whose VC indices are recorded.
func Compute(cfg *route.Config, sources []int, flows FlowFunc, class route.Class) *Loads {
	return computeWith(cfg, sources, flows, class, nil)
}

// ComputeFixedSlice is Compute with every packet pinned to one torus slice —
// the slice-randomization ablation.
func ComputeFixedSlice(cfg *route.Config, sources []int, flows FlowFunc, class route.Class, slice uint8) *Loads {
	return computeWith(cfg, sources, flows, class, &slice)
}

func computeWith(cfg *route.Config, sources []int, flows FlowFunc, class route.Class, fixedSlice *uint8) *Loads {
	m := cfg.Machine
	l := &Loads{
		Cfg:     cfg,
		Chan:    make([]float64, m.NumIntraChans()),
		Sources: len(sources),
	}
	maxVC := route.MaxTotalVCs(cfg.Scheme)
	for r := 0; r < topo.NumRouters; r++ {
		for p := 0; p < topo.MaxRouterPorts; p++ {
			l.SA1[r][p] = make([]float64, maxVC)
		}
	}
	for a := 0; a < topo.NumChannelAdapters; a++ {
		l.AdEg[a] = make([]float64, maxVC)
		l.AdIn[a] = make([]float64, maxVC)
	}

	strat := route.AsStrategy(cfg.Scheme)
	chip := m.Chip
	for _, srcEp := range sources {
		src := topo.NodeEp{Node: 0, Ep: srcEp}
		fl := flows(srcEp)
		var total float64
		for _, f := range fl {
			total += f.Frac
		}
		if total < 0.999999 || total > 1.000001 {
			panic(fmt.Sprintf("loadcalc: flow fractions for source E%d sum to %g", srcEp, total))
		}
		for _, f := range fl {
			srcC := m.Shape.Coord(0)
			dstC := m.Shape.Coord(f.Dst.Node)
			choices := strat.Enumerate(m.Shape, srcC, dstC)
			if fixedSlice != nil {
				choices = route.FilterSlice(choices, *fixedSlice)
			}
			for _, wc := range choices {
				w := f.Frac * wc.Weight
				hops := route.Walk(cfg, src, f.Dst, wc.Order, wc.Slice, wc.Ties, class)
				l.accumulate(chip, hops, w, class)
			}
		}
	}
	return l
}

func (l *Loads) accumulate(chip *topo.Chip, hops []route.Hop, w float64, class route.Class) {
	m := l.Cfg.Machine
	for i, h := range hops {
		if m.IsTorusChan(h.Chan) {
			_, ad := m.TorusChanOf(h.Chan)
			l.Torus[ad.Index()] += w
			l.MeanTorusHops += w / float64(l.Sources)
		} else {
			_, ch := m.IntraChanOf(h.Chan)
			l.Chan[ch.ID] += w
		}
		if i == 0 {
			continue
		}
		l.transition(chip, hops[i-1], h, w, class)
	}
}

// transition records the arbiter-input load of moving from channel a to
// channel b at the component between them.
func (l *Loads) transition(chip *topo.Chip, a, b route.Hop, w float64, class route.Class) {
	m := l.Cfg.Machine
	aTorus, bTorus := m.IsTorusChan(a.Chan), m.IsTorusChan(b.Chan)
	switch {
	case aTorus && !bTorus:
		// Torus arrival -> channel-adapter ingress arbiter.
		_, ad := m.TorusChanOf(a.Chan)
		vc := route.PhysVC(l.Cfg.Scheme, topo.GroupT, class, a.VC)
		l.AdIn[ad.Index()][vc] += w
	case !aTorus && bTorus:
		// Router-to-adapter channel -> adapter egress arbiter. The
		// egress queue is indexed by the arrival (pre-dateline) VC.
		_, bad := m.TorusChanOf(b.Chan)
		vc := route.PhysVC(l.Cfg.Scheme, topo.GroupT, class, a.VC)
		l.AdEg[bad.Index()][vc] += w
	case !aTorus && !bTorus:
		// Router transition: SA1 (input port, VC) and SA2 (output
		// port, input port).
		_, ach := m.IntraChanOf(a.Chan)
		_, bch := m.IntraChanOf(b.Chan)
		in := chip.InPortOf(ach.ID)
		out := chip.OutPortOf(bch.ID)
		if in.Router < 0 || out.Router < 0 || in.Router != out.Router {
			panic("loadcalc: intra transition does not cross a router")
		}
		vc := route.PhysVC(l.Cfg.Scheme, ach.Group, class, a.VC)
		l.SA1[in.Router][in.Port][vc] += w
		l.SA2[in.Router][out.Port][in.Port] += w
	default:
		panic("loadcalc: torus-to-torus transition is impossible")
	}
}

// MaxTorusLoad returns the load on the busiest torus channel, in traversals
// per round.
func (l *Loads) MaxTorusLoad() float64 {
	max := 0.0
	for _, v := range l.Torus {
		if v > max {
			max = v
		}
	}
	return max
}

// SaturationRate returns the per-source injection rate (packets per cycle
// per source endpoint) at which the busiest torus channel reaches 100%
// utilization, assuming single-flit packets. Throughput measurements are
// normalized against this rate.
func (l *Loads) SaturationRate() float64 {
	maxLoad := l.MaxTorusLoad()
	if maxLoad == 0 {
		return 0 // pattern uses no torus channels
	}
	capacity := 1000.0 / float64(fabricTorusRateMilli)
	return capacity / maxLoad
}

// fabricTorusRateMilli mirrors fabric.TorusRateMilli without importing the
// simulator (loadcalc is a pure offline computation); the value is asserted
// equal in the machine package's tests.
const fabricTorusRateMilli = 3214

// MaxMeshLoad returns the heaviest mesh (M-group or T-group intra) channel
// load, along with its chip channel id.
func (l *Loads) MaxMeshLoad() (float64, int) {
	max, id := 0.0, -1
	for i, v := range l.Chan {
		if v > max {
			max, id = v, i
		}
	}
	return max, id
}

// WeightSet is a full set of inverse-weight tables for every arbiter in one
// node (shared by all nodes under node symmetry), over up to
// arbiter.NumPatterns traffic patterns.
type WeightSet struct {
	// SA2[router][outPort][inPort][pattern]
	SA2 [topo.NumRouters][topo.MaxRouterPorts][][arbiter.NumPatterns]uint32
	// SA1[router][inPort][vc][pattern]
	SA1 [topo.NumRouters][topo.MaxRouterPorts][][arbiter.NumPatterns]uint32
	// AdEg / AdIn [adapter][vc][pattern]
	AdEg [topo.NumChannelAdapters][][arbiter.NumPatterns]uint32
	AdIn [topo.NumChannelAdapters][][arbiter.NumPatterns]uint32
}

// BuildWeights converts one or two patterns' loads into inverse-weight
// tables with a shared scale per arbiter.
func BuildWeights(patterns ...*Loads) *WeightSet {
	if len(patterns) == 0 || len(patterns) > arbiter.NumPatterns {
		panic("loadcalc: BuildWeights takes 1..NumPatterns load sets")
	}
	ws := &WeightSet{}
	gather := func(get func(p *Loads) []float64) [][arbiter.NumPatterns]uint32 {
		loads := make([][]float64, len(patterns))
		for n, p := range patterns {
			loads[n] = get(p)
		}
		return arbiter.JointWeights(loads)
	}
	for r := 0; r < topo.NumRouters; r++ {
		for po := 0; po < topo.MaxRouterPorts; po++ {
			r, po := r, po
			ws.SA2[r][po] = gather(func(p *Loads) []float64 { return p.SA2[r][po][:] })
			ws.SA1[r][po] = gather(func(p *Loads) []float64 { return p.SA1[r][po] })
		}
	}
	for a := 0; a < topo.NumChannelAdapters; a++ {
		a := a
		ws.AdEg[a] = gather(func(p *Loads) []float64 { return p.AdEg[a] })
		ws.AdIn[a] = gather(func(p *Loads) []float64 { return p.AdIn[a] })
	}
	return ws
}
