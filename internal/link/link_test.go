package link

import (
	"math"
	"testing"
	"testing/quick"
)

// TestEffectiveBandwidthDerivation: the paper's numbers — 8 lanes x 14 Gb/s
// = 112 Gb/s raw, 89.6 Gb/s effective — correspond to exactly 80% framing
// efficiency.
func TestEffectiveBandwidthDerivation(t *testing.T) {
	c := DefaultConfig()
	if RawGbps != 112 {
		t.Errorf("raw bandwidth = %v, want 112", RawGbps)
	}
	if math.Abs(c.FrameEfficiency()-0.8) > 1e-12 {
		t.Errorf("frame efficiency = %v, want 0.8", c.FrameEfficiency())
	}
	if math.Abs(c.EffectiveBandwidthGbps()-EffectiveGbps) > 1e-9 {
		t.Errorf("effective bandwidth = %v, want %v", c.EffectiveBandwidthGbps(), EffectiveGbps)
	}
}

func TestErrorFreeDelivery(t *testing.T) {
	l := New(DefaultConfig(), 1000)
	slots, done := l.Run(100000)
	if !done {
		t.Fatalf("did not finish in %d slots", slots)
	}
	if l.Retransmits != 0 || l.Corrupted != 0 {
		t.Errorf("error-free run retransmitted %d, corrupted %d", l.Retransmits, l.Corrupted)
	}
	// With window >= RTT the link is pipeline-limited: ~1 frame per slot
	// plus pipeline fill.
	if slots > 1000+DefaultConfig().RTTCycles+10 {
		t.Errorf("took %d slots for 1000 frames; link should stream at full rate", slots)
	}
}

func TestDeliveryWithErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ErrorRate = 0.05
	l := New(cfg, 2000)
	_, done := l.Run(1_000_000)
	if !done {
		t.Fatal("lossy link failed to deliver all frames")
	}
	if l.Retransmits == 0 {
		t.Error("5% error rate must force retransmissions")
	}
	if l.Delivered != 2000 {
		t.Errorf("delivered %d frames, want exactly 2000 (in order, exactly once)", l.Delivered)
	}
}

func TestGoodputDegradesWithErrorRate(t *testing.T) {
	measure := func(rate float64) float64 {
		cfg := DefaultConfig()
		cfg.ErrorRate = rate
		l := New(cfg, 3000)
		if _, done := l.Run(5_000_000); !done {
			t.Fatalf("error rate %v: no completion", rate)
		}
		return l.Goodput()
	}
	clean := measure(0)
	lossy := measure(0.02)
	worse := measure(0.10)
	if !(clean > lossy && lossy > worse) {
		t.Errorf("goodput should fall with error rate: %0.3f, %0.3f, %0.3f", clean, lossy, worse)
	}
}

// TestWindowLimitsThroughput: with a window smaller than the RTT, the link
// stalls waiting for acks (the reason the simulator's channel adapters carry
// deep per-VC buffers).
func TestWindowLimitsThroughput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowFrames = 4
	cfg.RTTCycles = 40
	l := New(cfg, 400)
	slots, done := l.Run(1_000_000)
	if !done {
		t.Fatal("no completion")
	}
	// Rate bound: window/RTT = 4/40 = 0.1 frames/slot.
	if g := l.Goodput(); g > 0.12 {
		t.Errorf("goodput %0.3f exceeds the window/RTT bound 0.1", g)
	}
	if slots < 3500 {
		t.Errorf("finished in %d slots; window-limited link should need ~4000", slots)
	}
}

// TestInOrderExactlyOnceProperty: under random error rates, windows, and
// RTTs, every frame is delivered in order exactly once.
func TestInOrderExactlyOnceProperty(t *testing.T) {
	f := func(errRaw, winRaw, rttRaw uint8, seed int64) bool {
		cfg := DefaultConfig()
		cfg.ErrorRate = float64(errRaw%40) / 100 // 0..0.39
		cfg.WindowFrames = int(winRaw%32) + 1
		cfg.RTTCycles = int(rttRaw%50) + 2
		cfg.Seed = seed
		total := 300
		l := New(cfg, total)
		_, done := l.Run(10_000_000)
		return done && l.Delivered == total && l.expected == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorRateConsistency(t *testing.T) {
	// The cycle simulator charges 45/14 network cycles per flit on torus
	// channels; verify that equals the frame model's effective rate.
	// One flit = 192 payload bits; at 89.6 Gb/s that is 2.143 ns =
	// 3.214 cycles at 1.5 GHz = 45/14 exactly.
	flitBits := 192.0
	nsPerFlit := flitBits / DefaultConfig().EffectiveBandwidthGbps()
	cyclesPerFlit := nsPerFlit * 1.5
	if math.Abs(cyclesPerFlit-45.0/14.0) > 1e-9 {
		t.Errorf("cycles per flit = %v, want 45/14", cyclesPerFlit)
	}
}
