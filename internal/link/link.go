// Package link models the physical and link layers of an Anton 2 torus
// channel (Section 2.2): eight bidirectional SerDes lanes at 14 Gb/s per
// channel (112 Gb/s raw per direction), with framing, CRC error checking,
// and go-back-N retransmission reducing the effective bandwidth to
// 89.6 Gb/s per direction. The cycle simulator abstracts links as
// rate-limited channels; this package provides the frame-level model that
// justifies that abstraction and quantifies how error rate and window size
// erode goodput.
package link

import (
	"math/rand"
)

// Physical constants (Section 2.2).
const (
	// LanesPerChannel is the SerDes count per physical channel.
	LanesPerChannel = 8
	// LaneGbps is the per-lane signaling rate.
	LaneGbps = 14.0
	// RawGbps is the raw channel bandwidth per direction.
	RawGbps = LanesPerChannel * LaneGbps // 112
	// EffectiveGbps is the post-framing bandwidth the paper reports.
	EffectiveGbps = 89.6
)

// Config parameterizes a frame-level link model.
type Config struct {
	// PayloadBytes per frame (a frame carries one network flit).
	PayloadBytes int
	// OverheadBytes per frame: framing, sequence number, CRC.
	OverheadBytes int
	// WindowFrames is the go-back-N window (unacknowledged frames in
	// flight).
	WindowFrames int
	// RTTCycles is the sender-to-receiver-to-sender delay in link
	// cycles, covering wire flight and ack turnaround.
	RTTCycles int
	// ErrorRate is the independent per-frame corruption probability.
	ErrorRate float64
	// Seed drives the error process.
	Seed int64
}

// DefaultConfig returns a model matching the paper's derivation: a 24-byte
// flit with 6 bytes of framing/CRC/sequence overhead gives exactly
// 24/30 = 80% efficiency: 112 Gb/s raw -> 89.6 Gb/s effective.
func DefaultConfig() Config {
	return Config{
		PayloadBytes:  24,
		OverheadBytes: 6,
		WindowFrames:  64,
		RTTCycles:     32,
		ErrorRate:     0,
		Seed:          1,
	}
}

// FrameEfficiency is the payload fraction of each frame.
func (c Config) FrameEfficiency() float64 {
	return float64(c.PayloadBytes) / float64(c.PayloadBytes+c.OverheadBytes)
}

// EffectiveBandwidthGbps returns the error-free effective bandwidth.
func (c Config) EffectiveBandwidthGbps() float64 {
	return RawGbps * c.FrameEfficiency()
}

// Link simulates one direction of a channel at frame granularity with
// go-back-N retransmission. Time advances in frame slots: the sender may
// emit one frame per slot.
type Link struct {
	cfg Config
	rng *rand.Rand

	// Sender state.
	base    int // oldest unacknowledged sequence number
	nextSeq int // next sequence number to send
	total   int // frames the application wants delivered

	// Receiver state.
	expected int // next in-order sequence number expected

	// In-flight events: frames heading to the receiver and
	// acknowledgements heading back, as (deliverySlot, seq, ok) tuples.
	frames []event
	acks   []event

	// Stats.
	Sent        int // frames transmitted (including retransmissions)
	Delivered   int // frames accepted in order by the receiver
	Corrupted   int // frames dropped by CRC
	Retransmits int // frames sent more than once
	slot        int
}

type event struct {
	at  int
	seq int
	ok  bool
}

// New builds a link that must deliver total frames.
func New(cfg Config, total int) *Link {
	if cfg.WindowFrames < 1 || cfg.RTTCycles < 1 {
		panic("link: window and RTT must be positive")
	}
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), total: total}
}

// Step advances one frame slot.
func (l *Link) Step() {
	l.slot++

	// Receiver: process arriving frames in order of transmission.
	for len(l.frames) > 0 && l.frames[0].at <= l.slot {
		f := l.frames[0]
		l.frames = l.frames[1:]
		if !f.ok {
			l.Corrupted++
			continue // CRC drop; go-back-N relies on the cumulative ack
		}
		if f.seq == l.expected {
			l.expected++
			l.Delivered++
		}
		// Cumulative ack for everything before `expected`.
		l.acks = append(l.acks, event{at: l.slot + l.cfg.RTTCycles/2, seq: l.expected})
	}

	// Sender: absorb acks.
	for len(l.acks) > 0 && l.acks[0].at <= l.slot {
		a := l.acks[0]
		l.acks = l.acks[1:]
		if a.seq > l.base {
			l.base = a.seq
		}
	}

	// Go-back-N timeout: if the window has been stuck a full RTT with
	// nothing in flight to resolve it, rewind to the base.
	if l.nextSeq > l.base && len(l.frames) == 0 && len(l.acks) == 0 {
		l.Retransmits += l.nextSeq - l.base
		l.nextSeq = l.base
	}

	// Sender: emit one frame if the window allows.
	if l.nextSeq < l.total && l.nextSeq-l.base < l.cfg.WindowFrames {
		ok := l.rng.Float64() >= l.cfg.ErrorRate
		l.frames = append(l.frames, event{at: l.slot + l.cfg.RTTCycles/2, seq: l.nextSeq, ok: ok})
		l.nextSeq++
		l.Sent++
	}
}

// Done reports whether every frame has been delivered in order.
func (l *Link) Done() bool { return l.Delivered >= l.total }

// Run steps until done or maxSlots elapse, returning the slot count.
func (l *Link) Run(maxSlots int) (int, bool) {
	for s := 0; s < maxSlots; s++ {
		if l.Done() {
			return l.slot, true
		}
		l.Step()
	}
	return l.slot, l.Done()
}

// Goodput returns delivered frames per slot so far.
func (l *Link) Goodput() float64 {
	if l.slot == 0 {
		return 0
	}
	return float64(l.Delivered) / float64(l.slot)
}
