package link

import (
	"testing"
)

// Adversarial schedules for the frame-level model: degenerate windows,
// zero-work links, and heavy error bursts that force repeated go-back-N
// rewinds.

func TestZeroWorkLinkCompletesImmediately(t *testing.T) {
	l := New(DefaultConfig(), 0)
	if !l.Done() {
		t.Fatal("zero-frame link must start done")
	}
	slots, ok := l.Run(100)
	if !ok || slots != 0 {
		t.Fatalf("zero-frame run = (%d, %v), want (0, true)", slots, ok)
	}
	if l.Sent != 0 || l.Delivered != 0 {
		t.Errorf("zero-frame link moved frames: sent=%d delivered=%d", l.Sent, l.Delivered)
	}
}

func TestZeroWidthWindowRejected(t *testing.T) {
	for _, cfg := range []Config{
		{PayloadBytes: 24, OverheadBytes: 6, WindowFrames: 0, RTTCycles: 32},
		{PayloadBytes: 24, OverheadBytes: 6, WindowFrames: 64, RTTCycles: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New accepted degenerate config %+v", cfg)
				}
			}()
			New(cfg, 10)
		}()
	}
}

// TestStopAndWaitDelivers pins the narrowest legal window: WindowFrames=1
// degenerates go-back-N to stop-and-wait, which must still deliver every
// frame exactly once even under heavy corruption.
func TestStopAndWaitDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowFrames = 1
	cfg.ErrorRate = 0.3
	cfg.Seed = 7
	const total = 50
	l := New(cfg, total)
	if _, ok := l.Run(2_000_000); !ok {
		t.Fatalf("stop-and-wait did not finish: delivered %d/%d", l.Delivered, total)
	}
	if l.Delivered != total {
		t.Errorf("delivered = %d, want exactly %d", l.Delivered, total)
	}
	if l.Corrupted == 0 || l.Retransmits == 0 {
		t.Errorf("error process inactive: corrupted=%d retransmits=%d", l.Corrupted, l.Retransmits)
	}
}

// TestMinimalRTT pins the RTTCycles=1 edge (ack delay rounds to zero slots):
// the schedule still makes progress and terminates.
func TestMinimalRTT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTTCycles = 1
	cfg.WindowFrames = 2
	cfg.ErrorRate = 0.2
	cfg.Seed = 3
	const total = 40
	l := New(cfg, total)
	if _, ok := l.Run(1_000_000); !ok || l.Delivered != total {
		t.Fatalf("minimal-RTT link stalled: delivered %d/%d", l.Delivered, total)
	}
}

// TestHeavyErrorBurstsEventuallyDeliver drives repeated back-to-back rewinds:
// at a 70% frame error rate nearly every window rewinds at least once, yet
// cumulative acks must still ratchet the base forward to completion.
func TestHeavyErrorBurstsEventuallyDeliver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ErrorRate = 0.7
	cfg.WindowFrames = 8
	cfg.Seed = 11
	const total = 30
	l := New(cfg, total)
	if _, ok := l.Run(5_000_000); !ok {
		t.Fatalf("heavy-error link never finished: delivered %d/%d", l.Delivered, total)
	}
	if l.Sent <= total {
		t.Errorf("sent %d frames for %d deliveries; error process inactive", l.Sent, total)
	}
	if l.Delivered != total {
		t.Errorf("delivered = %d, want exactly %d (no loss, no duplication)", l.Delivered, total)
	}
}

// TestGoodputMonotoneInWindow: while the window still fits inside the RTT,
// widening it must not hurt steady-state goodput (it hides more of the RTT;
// beyond the bandwidth-delay product the property genuinely fails, because a
// rewind discards the whole outstanding window).
func TestGoodputMonotoneInWindow(t *testing.T) {
	const total = 400
	var prev float64
	for i, w := range []int{1, 4, 16} {
		cfg := DefaultConfig()
		cfg.WindowFrames = w
		cfg.ErrorRate = 0.05
		l := New(cfg, total)
		if _, ok := l.Run(10_000_000); !ok {
			t.Fatalf("window %d never finished", w)
		}
		g := l.Goodput()
		if i > 0 && g+1e-9 < prev {
			t.Errorf("goodput fell from %.4f to %.4f when window grew to %d", prev, g, w)
		}
		prev = g
	}
}
