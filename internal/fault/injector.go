package fault

import "anton2/internal/sim"

// Stream kinds, used to decorrelate the per-link SplitMix64 streams.
const (
	streamCorrupt = iota
	streamStall
	streamCredit
	streamFail
	numStreams
)

// Injector draws deterministic fault decisions from per-link, per-kind
// SplitMix64 streams. Each decision advances exactly one stream by one step,
// and the call sequence on a given link is fully determined by the simulated
// schedule, so runs are reproducible regardless of host parallelism.
type Injector struct {
	spec    Spec
	seed    uint64
	corrupt []uint64 // per-link stream states
	stall   []uint64
	credit  []uint64
}

// NewInjector builds an injector for links torus links. The spec should
// already be normalized; seed is the spec-hash-derived machine seed.
func NewInjector(spec Spec, seed uint64, links int) *Injector {
	in := &Injector{
		spec:    spec,
		seed:    seed,
		corrupt: make([]uint64, links),
		stall:   make([]uint64, links),
		credit:  make([]uint64, links),
	}
	for i := 0; i < links; i++ {
		in.corrupt[i] = streamSeed(seed, streamCorrupt, i)
		in.stall[i] = streamSeed(seed, streamStall, i)
		in.credit[i] = streamSeed(seed, streamCredit, i)
	}
	return in
}

// streamSeed derives an initial SplitMix64 state for one (kind, link)
// stream. One warm-up step diffuses the structured input.
func streamSeed(seed uint64, kind, link int) uint64 {
	s := seed ^ (uint64(link)*numStreams+uint64(kind))*0x9e3779b97f4a7c15
	sim.SplitMix64(&s)
	return s
}

// rand01 advances a stream and returns a uniform float64 in [0,1).
func rand01(state *uint64) float64 {
	return float64(sim.SplitMix64(state)>>11) / (1 << 53)
}

// CorruptNext decides whether the next frame transmitted on link is
// corrupted. Called exactly once per physical transmission.
func (in *Injector) CorruptNext(link int) bool {
	if in.spec.CorruptRate <= 0 {
		return false
	}
	return rand01(&in.corrupt[link]) < in.spec.CorruptRate
}

// StallNext decides whether link begins a transient stall this cycle.
// Called once per cycle for every healthy, unstalled link.
func (in *Injector) StallNext(link int) bool {
	if in.spec.StallRate <= 0 {
		return false
	}
	return rand01(&in.stall[link]) < in.spec.StallRate
}

// DropCreditNext decides whether the next credit-return message on link is
// lost. Called exactly once per credit return.
func (in *Injector) DropCreditNext(link int) bool {
	if in.spec.CreditLossRate <= 0 {
		return false
	}
	return rand01(&in.credit[link]) < in.spec.CreditLossRate
}

// FailedLinks picks min(spec.FailLinks, links) distinct link indices to take
// permanently out of service, via a seeded partial Fisher-Yates shuffle. The
// result is sorted for stable reporting.
func (in *Injector) FailedLinks(links int) []int {
	n := in.spec.FailLinks
	if n <= 0 || links == 0 {
		return nil
	}
	if n > links {
		n = links
	}
	idx := make([]int, links)
	for i := range idx {
		idx[i] = i
	}
	state := streamSeed(in.seed, streamFail, 0)
	for i := 0; i < n; i++ {
		j := i + int(sim.SplitMix64(&state)%uint64(links-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return sortedInts(idx[:n])
}
