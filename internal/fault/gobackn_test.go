package fault

import (
	"math/rand"
	"testing"
)

// wireFrame is one frame (or control message) in flight in the test driver.
type wireFrame struct {
	at      uint64
	seq     uint64
	corrupt bool
	nack    bool
}

// driveLink simulates one reliable link end to end: a sender and receiver
// joined by two latency-L FIFO wires, with per-transmission corruption drawn
// from corrupt(). It asserts the protocol invariants every cycle and returns
// the number of frames delivered and whether the link died.
func driveLink(t testing.TB, window int, timeout uint64, retry int, latency uint64, frames int, corrupt func() bool, maxCycles uint64) (int, bool) {
	t.Helper()
	snd := NewSender(window, timeout, retry)
	var rcv Receiver
	var wire, ctrl []wireFrame
	accepted := 0
	sent := 0

	for now := uint64(0); now < maxCycles; now++ {
		// Sender: absorb control messages, run the timeout, transmit.
		for len(ctrl) > 0 && ctrl[0].at <= now {
			c := ctrl[0]
			ctrl = ctrl[1:]
			if c.nack {
				snd.OnNack(c.seq, now)
			} else {
				snd.OnAck(c.seq, now)
			}
		}
		snd.Tick(now)
		if snd.Dead() {
			return accepted, true
		}
		if seq, ok := snd.NeedRetx(); ok {
			if got := snd.OnRetx(); got != seq {
				t.Fatalf("OnRetx returned %d, NeedRetx said %d", got, seq)
			}
			wire = append(wire, wireFrame{at: now + latency, seq: seq, corrupt: corrupt()})
		} else if snd.CanSend() && sent < frames {
			seq := snd.OnSend(now)
			if seq != uint64(sent) {
				t.Fatalf("fresh send got seq %d, want %d", seq, sent)
			}
			sent++
			wire = append(wire, wireFrame{at: now + latency, seq: seq, corrupt: corrupt()})
		}
		if snd.Outstanding() > window {
			t.Fatalf("cycle %d: %d frames outstanding, window %d", now, snd.Outstanding(), window)
		}

		// Receiver: process arrivals in FIFO order.
		for len(wire) > 0 && wire[0].at <= now {
			f := wire[0]
			wire = wire[1:]
			v := rcv.OnFrame(f.seq, f.corrupt)
			if v.Accept {
				if f.corrupt {
					t.Fatalf("cycle %d: accepted a corrupted frame", now)
				}
				if f.seq != uint64(accepted) {
					t.Fatalf("cycle %d: accepted seq %d, want %d (in-order exactly-once)", now, f.seq, accepted)
				}
				accepted++
			}
			if v.Ack {
				ctrl = append(ctrl, wireFrame{at: now + latency, seq: v.Seq})
			}
			if v.Nack {
				ctrl = append(ctrl, wireFrame{at: now + latency, seq: v.Seq, nack: true})
			}
		}

		if accepted == frames && snd.Quiet() && len(wire) == 0 && len(ctrl) == 0 {
			return accepted, false
		}
	}
	t.Fatalf("link did not drain: %d/%d accepted after %d cycles (outstanding %d)",
		accepted, frames, maxCycles, snd.Outstanding())
	return accepted, false
}

// TestGoBackNProperty: across windows, latencies, and corruption rates,
// every frame is delivered exactly once and in order, and the link drains.
func TestGoBackNProperty(t *testing.T) {
	for _, window := range []int{1, 2, 8, 64} {
		for _, latency := range []uint64{1, 3, 45} {
			for _, rate := range []float64{0, 0.1, 0.3} {
				rng := rand.New(rand.NewSource(int64(window)*1000 + int64(latency)*10 + int64(rate*10)))
				timeout := 4*latency + 16
				frames := 200
				got, dead := driveLink(t, window, timeout, 1_000_000, latency, frames,
					func() bool { return rng.Float64() < rate }, 1<<20)
				if dead {
					t.Fatalf("window=%d latency=%d rate=%v: link died", window, latency, rate)
				}
				if got != frames {
					t.Fatalf("window=%d latency=%d rate=%v: delivered %d/%d", window, latency, rate, got, frames)
				}
			}
		}
	}
}

// TestGoBackNBudget: a link whose every frame is corrupted exhausts its
// rewind budget and reports dead instead of spinning forever.
func TestGoBackNBudget(t *testing.T) {
	delivered, dead := driveLink(t, 8, 32, 4, 3, 10, func() bool { return true }, 1<<20)
	if !dead {
		t.Fatal("always-corrupt link did not die")
	}
	if delivered != 0 {
		t.Fatalf("always-corrupt link delivered %d frames", delivered)
	}
}

// TestGoBackNFatalRate: even at a 90% corruption rate the protocol makes
// progress given a large enough budget (liveness under extreme loss).
func TestGoBackNFatalRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	got, dead := driveLink(t, 4, 24, 1_000_000, 2, 50, func() bool { return rng.Float64() < 0.9 }, 1<<22)
	if dead || got != 50 {
		t.Fatalf("delivered %d/50, dead=%v", got, dead)
	}
}

// FuzzGoBackN drives the retransmission state machines with fuzz-chosen
// window, latency, frame count, and per-transmission corruption bits. Once
// the corruption budget is exhausted transmissions succeed, so the link must
// always drain with every frame delivered exactly once.
func FuzzGoBackN(f *testing.F) {
	f.Add([]byte{1, 1, 10, 0})
	f.Add([]byte{8, 3, 64, 5, 0xff, 0xff, 0x0f})
	f.Add([]byte{2, 7, 32, 31, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{64, 2, 63, 1, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		window := 1 + int(data[0]%64)
		latency := 1 + uint64(data[1]%8)
		frames := 1 + int(data[2]%64)
		timeout := 4*latency + 8 + uint64(data[3]%32)
		bits := data[4:]
		// The rewind budget exceeds the total corruption budget, so the
		// link can never legitimately die: each fruitless rewind consumes
		// at least one corruption bit.
		retry := 8*len(bits) + 16
		bit := 0
		corrupt := func() bool {
			if bit >= 8*len(bits) {
				return false
			}
			b := bits[bit/8]&(1<<(bit%8)) != 0
			bit++
			return b
		}
		got, dead := driveLink(t, window, timeout, retry, latency, frames, corrupt, 1<<19)
		if dead {
			t.Fatalf("link died with corruption budget %d bits, retry budget %d", 8*len(bits), retry)
		}
		if got != frames {
			t.Fatalf("delivered %d/%d", got, frames)
		}
	})
}

// TestFreshSendLeavesNoPendingReplay is the regression test for a sender bug
// where OnSend advanced next but not the replay cursor, so every fresh frame
// was immediately retransmitted (and dropped as a stale duplicate): a 2x
// bandwidth tax on fault-free links.
func TestFreshSendLeavesNoPendingReplay(t *testing.T) {
	s := NewSender(8, 100, 4)
	for i := 0; i < 5; i++ {
		if !s.CanSend() {
			t.Fatalf("send %d: window blocked with %d outstanding", i, s.Outstanding())
		}
		s.OnSend(uint64(i))
		if seq, pending := s.NeedRetx(); pending {
			t.Fatalf("send %d: fresh frame %d reported as pending replay", i, seq)
		}
	}
	// A real rewind must still replay the full outstanding window.
	s.OnNack(0, 10)
	replayed := 0
	for {
		if _, pending := s.NeedRetx(); !pending {
			break
		}
		s.OnRetx()
		replayed++
	}
	if replayed != 5 {
		t.Fatalf("replayed %d frames after rewind, want 5", replayed)
	}
}
