// Package fault provides a deterministic, seeded fault model for the
// simulated network, plus the pure go-back-N sender/receiver state machines
// the machine's reliable-link layer is built on.
//
// The paper assumes lossless channels; this package relaxes that assumption
// so the reproduction can be exercised under transient flit corruption,
// transient link stalls, permanent unidirectional link outages, and credit
// loss. All fault decisions are drawn from per-link SplitMix64 streams seeded
// from the experiment spec hash, so a sweep is bit-identical across serial
// and parallel runs and across repeated invocations.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Default protocol parameters, applied by Normalized when the spec leaves
// them zero.
const (
	DefaultWindow      = 256
	DefaultRetryLimit  = 16
	DefaultStallCycles = 64
	DefaultResync      = 1024
)

// Spec configures the fault injector and the reliable-link protocol. The
// zero value means "no faults" but, attached to a machine config, still
// enables the go-back-N reliability layer on every torus link.
type Spec struct {
	// CorruptRate is the per-frame probability that a transmitted torus
	// frame is corrupted on the wire (detected by the receiver's CRC and
	// dropped, forcing a retransmission).
	CorruptRate float64
	// StallRate is the per-cycle, per-link probability that a healthy
	// torus link begins a transient stall of StallCycles cycles during
	// which it accepts no new frames.
	StallRate float64
	// StallCycles is the duration of one transient stall.
	StallCycles uint64
	// CreditLossRate is the per-message probability that a credit return
	// on a torus link is dropped. Lost credits are restored by a periodic
	// resync audit every ResyncInterval cycles.
	CreditLossRate float64
	// FailLinks is the number of torus links taken permanently out of
	// service (unidirectional outages), chosen deterministically from the
	// seed. Traffic is rerouted around them at injection time.
	FailLinks int
	// Window is the go-back-N sliding window in frames (default 256).
	Window int
	// RetryLimit bounds how many times the sender may rewind while its
	// window base makes no progress before the link is declared dead and
	// the run fails with a BudgetError (default 16).
	RetryLimit int
	// TimeoutCycles is the ack-progress timeout before the sender rewinds
	// to its window base. Zero derives a default from the link latency.
	TimeoutCycles uint64
	// ResyncInterval is the period of the credit resync audit in cycles
	// (default 1024).
	ResyncInterval uint64
}

// Normalized returns the spec with protocol defaults filled in.
func (s Spec) Normalized() Spec {
	if s.Window <= 0 {
		s.Window = DefaultWindow
	}
	if s.RetryLimit <= 0 {
		s.RetryLimit = DefaultRetryLimit
	}
	if s.StallCycles == 0 {
		s.StallCycles = DefaultStallCycles
	}
	if s.ResyncInterval == 0 {
		s.ResyncInterval = DefaultResync
	}
	return s
}

// Validate rejects rates outside [0,1], non-finite rates, and negative
// counts.
func (s Spec) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"corrupt", s.CorruptRate},
		{"stall", s.StallRate},
		{"creditloss", s.CreditLossRate},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("fault: %s rate must be finite, got %v", r.name, r.v)
		}
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate must be in [0,1], got %v", r.name, r.v)
		}
	}
	if s.FailLinks < 0 {
		return fmt.Errorf("fault: faillinks must be >= 0, got %d", s.FailLinks)
	}
	if s.Window < 0 {
		return fmt.Errorf("fault: window must be >= 0, got %d", s.Window)
	}
	if s.RetryLimit < 0 {
		return fmt.Errorf("fault: retry must be >= 0, got %d", s.RetryLimit)
	}
	return nil
}

// Active reports whether the spec injects any fault at all (as opposed to
// only running the reliability protocol fault-free).
func (s Spec) Active() bool {
	return s.CorruptRate > 0 || s.StallRate > 0 || s.CreditLossRate > 0 || s.FailLinks > 0
}

// Canonical renders the spec as a stable, order-fixed key=value string. It is
// embedded in experiment spec canonical forms (and hence cache keys), so its
// format must never change for a given field set.
func (s Spec) Canonical() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts := []string{
		"corrupt=" + g(s.CorruptRate),
		"stall=" + g(s.StallRate),
		"stallcycles=" + strconv.FormatUint(s.StallCycles, 10),
		"creditloss=" + g(s.CreditLossRate),
		"faillinks=" + strconv.Itoa(s.FailLinks),
		"window=" + strconv.Itoa(s.Window),
		"retry=" + strconv.Itoa(s.RetryLimit),
		"timeout=" + strconv.FormatUint(s.TimeoutCycles, 10),
		"resync=" + strconv.FormatUint(s.ResyncInterval, 10),
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated key=value fault spec, e.g.
// "corrupt=1e-3,faillinks=1,stall=1e-4,stallcycles=32". Recognized keys:
// corrupt, stall, stallcycles, creditloss, faillinks, window, retry,
// timeout, resync. The result is validated but not normalized.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return s, fmt.Errorf("fault: malformed spec element %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "corrupt":
			s.CorruptRate, err = strconv.ParseFloat(val, 64)
		case "stall":
			s.StallRate, err = strconv.ParseFloat(val, 64)
		case "creditloss":
			s.CreditLossRate, err = strconv.ParseFloat(val, 64)
		case "stallcycles":
			s.StallCycles, err = strconv.ParseUint(val, 10, 64)
		case "timeout":
			s.TimeoutCycles, err = strconv.ParseUint(val, 10, 64)
		case "resync":
			s.ResyncInterval, err = strconv.ParseUint(val, 10, 64)
		case "faillinks":
			s.FailLinks, err = strconv.Atoi(val)
		case "window":
			s.Window, err = strconv.Atoi(val)
		case "retry":
			s.RetryLimit, err = strconv.Atoi(val)
		default:
			return s, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("fault: bad value for %s: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// BudgetError reports a link whose retransmission retry budget was
// exhausted: the window base made no progress through RetryLimit rewinds.
// Runs that end this way are degraded, not panics.
type BudgetError struct {
	Link     string
	Attempts int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("fault: link %s exhausted retry budget after %d rewinds", e.Link, e.Attempts)
}

// Degraded marks the error as a graceful-degradation outcome for the
// experiment harness.
func (e *BudgetError) Degraded() bool { return true }

// Counters aggregates fault and reliability-protocol event counts for one
// machine. They feed telemetry reports and the faultsweep artifact.
type Counters struct {
	CorruptInjected uint64 // frames corrupted on the wire by the injector
	CorruptDetected uint64 // corrupted frames caught and dropped by the receiver CRC
	DupsDropped     uint64 // stale duplicate frames dropped by the receiver
	Retransmits     uint64 // frames resent by the go-back-N sender
	Acks            uint64 // cumulative acks sent by receivers
	Nacks           uint64 // nacks sent by receivers
	Timeouts        uint64 // sender timeout rewinds
	StallsInjected  uint64 // transient stall events started
	CreditsDropped  uint64 // credit-return messages dropped
	CreditsRestored uint64 // credits restored by the resync audit
	LinksFailed     uint64 // permanent link outages installed
	Rerouted        uint64 // packets rerouted by emergency avoidance (degradation)
	RoutedNative    uint64 // packets routed around failures by a fault-aware strategy
	Unroutable      uint64 // packets with no failure-avoiding route
}

// Add accumulates another set of counters into c. The machine layer keeps
// per-shard counter slots so parallel shards never contend, and sums them
// with Add when reporting.
func (c *Counters) Add(o Counters) {
	c.CorruptInjected += o.CorruptInjected
	c.CorruptDetected += o.CorruptDetected
	c.DupsDropped += o.DupsDropped
	c.Retransmits += o.Retransmits
	c.Acks += o.Acks
	c.Nacks += o.Nacks
	c.Timeouts += o.Timeouts
	c.StallsInjected += o.StallsInjected
	c.CreditsDropped += o.CreditsDropped
	c.CreditsRestored += o.CreditsRestored
	c.LinksFailed += o.LinksFailed
	c.Rerouted += o.Rerouted
	c.RoutedNative += o.RoutedNative
	c.Unroutable += o.Unroutable
}

// Map returns the counters as a name->value map with stable JSON ordering
// (encoding/json sorts map keys).
func (c *Counters) Map() map[string]uint64 {
	return map[string]uint64{
		"corrupt_injected": c.CorruptInjected,
		"corrupt_detected": c.CorruptDetected,
		"dups_dropped":     c.DupsDropped,
		"retransmits":      c.Retransmits,
		"acks":             c.Acks,
		"nacks":            c.Nacks,
		"timeouts":         c.Timeouts,
		"stalls_injected":  c.StallsInjected,
		"credits_dropped":  c.CreditsDropped,
		"credits_restored": c.CreditsRestored,
		"links_failed":     c.LinksFailed,
		"rerouted":         c.Rerouted,
		"routed_native":    c.RoutedNative,
		"unroutable":       c.Unroutable,
	}
}

// sortedInts returns a sorted copy of xs (small helper for deterministic
// failed-link reporting).
func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
