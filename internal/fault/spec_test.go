package fault

import (
	"math"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("corrupt=1e-3,faillinks=2,stall=0.25,stallcycles=32,creditloss=1e-5,window=8,retry=3,timeout=100,resync=512")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		CorruptRate: 1e-3, StallRate: 0.25, StallCycles: 32,
		CreditLossRate: 1e-5, FailLinks: 2, Window: 8, RetryLimit: 3,
		TimeoutCycles: 100, ResyncInterval: 512,
	}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	if s2, err := ParseSpec(""); err != nil || s2 != (Spec{}) {
		t.Fatalf("empty spec: %+v, %v", s2, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"corrupt=-0.1",       // negative rate
		"corrupt=1.5",        // rate above 1
		"corrupt=NaN",        // NaN rate
		"stall=+Inf",         // infinite rate
		"faillinks=-1",       // negative count
		"bogus=1",            // unknown key
		"corrupt",            // missing value
		"=3",                 // missing key
		"corrupt=zebra",      // unparsable value
		"stallcycles=-5",     // negative duration
		"creditloss=-1e-300", // tiny negative rate
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", text)
		}
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	s := Spec{CorruptRate: math.NaN()}
	if err := s.Validate(); err == nil {
		t.Error("NaN corrupt rate validated")
	}
	s = Spec{StallRate: math.Inf(1)}
	if err := s.Validate(); err == nil {
		t.Error("Inf stall rate validated")
	}
}

func TestCanonicalStable(t *testing.T) {
	s, err := ParseSpec("corrupt=0.001,faillinks=1")
	if err != nil {
		t.Fatal(err)
	}
	const want = "corrupt=0.001,stall=0,stallcycles=0,creditloss=0,faillinks=1,window=0,retry=0,timeout=0,resync=0"
	if got := s.Canonical(); got != want {
		t.Fatalf("canonical form drifted:\n got  %s\n want %s", got, want)
	}
	// Canonical must render the raw spec, not the normalized one, so cache
	// keys do not depend on the default constants.
	if got := s.Normalized().Canonical(); !strings.Contains(got, "window=256") {
		t.Fatalf("normalized canonical missing defaults: %s", got)
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := (Spec{}).Normalized()
	if n.Window != DefaultWindow || n.RetryLimit != DefaultRetryLimit ||
		n.StallCycles != DefaultStallCycles || n.ResyncInterval != DefaultResync {
		t.Fatalf("defaults not applied: %+v", n)
	}
	if (Spec{}).Active() {
		t.Error("zero spec reports active faults")
	}
	if !(Spec{FailLinks: 1}).Active() {
		t.Error("faillinks=1 spec reports inactive")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{CorruptRate: 0.3, StallRate: 0.1, CreditLossRate: 0.2, FailLinks: 3}.Normalized()
	a := NewInjector(spec, 42, 12)
	b := NewInjector(spec, 42, 12)
	for i := 0; i < 1000; i++ {
		link := i % 12
		if a.CorruptNext(link) != b.CorruptNext(link) {
			t.Fatalf("corrupt stream diverged at draw %d", i)
		}
		if a.StallNext(link) != b.StallNext(link) {
			t.Fatalf("stall stream diverged at draw %d", i)
		}
		if a.DropCreditNext(link) != b.DropCreditNext(link) {
			t.Fatalf("credit stream diverged at draw %d", i)
		}
	}
	fa, fb := a.FailedLinks(12), b.FailedLinks(12)
	if len(fa) != 3 || len(fb) != 3 {
		t.Fatalf("failed-link counts: %v vs %v", fa, fb)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("failed links diverged: %v vs %v", fa, fb)
		}
		if i > 0 && fa[i] <= fa[i-1] {
			t.Fatalf("failed links not sorted/distinct: %v", fa)
		}
	}
	// A different seed must pick a different corruption pattern.
	c := NewInjector(spec, 43, 12)
	same := 0
	for i := 0; i < 256; i++ {
		if a.CorruptNext(0) == c.CorruptNext(0) {
			same++
		}
	}
	if same == 256 {
		t.Error("seed 42 and 43 produced identical corrupt streams")
	}
}

func TestFailedLinksClamped(t *testing.T) {
	in := NewInjector(Spec{FailLinks: 100}, 1, 4)
	if got := in.FailedLinks(4); len(got) != 4 {
		t.Fatalf("FailedLinks over-requested: %v", got)
	}
	in = NewInjector(Spec{}, 1, 4)
	if got := in.FailedLinks(4); got != nil {
		t.Fatalf("zero FailLinks returned %v", got)
	}
}

func TestBudgetErrorDegraded(t *testing.T) {
	var err error = &BudgetError{Link: "t0", Attempts: 17}
	d, ok := err.(interface{ Degraded() bool })
	if !ok || !d.Degraded() {
		t.Fatal("BudgetError does not mark itself degraded")
	}
	if !strings.Contains(err.Error(), "t0") {
		t.Fatalf("error message missing link name: %v", err)
	}
}
