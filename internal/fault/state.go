package fault

import "fmt"

// This file externalizes the fault layer's mutable state for checkpointing:
// the go-back-N protocol machines and the injector's SplitMix64 stream
// positions. Everything here is plain integers, so a restored run draws the
// exact same fault schedule the uninterrupted run would have.

// SenderState is the serializable state of a go-back-N Sender. The wiring
// parameters (window, timeout, retry limit) are rebuilt from the machine
// config and are deliberately absent.
type SenderState struct {
	Base     uint64 `json:"base"`
	Next     uint64 `json:"next"`
	Retx     uint64 `json:"retx"`
	LastMove uint64 `json:"last_move"`
	Attempts int    `json:"attempts,omitempty"`
	Dead     bool   `json:"dead,omitempty"`
}

// State captures the sender's protocol position.
func (s *Sender) State() SenderState {
	return SenderState{
		Base: s.base, Next: s.next, Retx: s.retx,
		LastMove: s.lastMove, Attempts: s.attempts, Dead: s.dead,
	}
}

// RestoreState loads a captured protocol position.
func (s *Sender) RestoreState(st SenderState) error {
	if st.Base > st.Next || st.Retx > st.Next {
		return fmt.Errorf("fault: sender state out of order: base %d, retx %d, next %d", st.Base, st.Retx, st.Next)
	}
	s.base, s.next, s.retx = st.Base, st.Next, st.Retx
	s.lastMove, s.attempts, s.dead = st.LastMove, st.Attempts, st.Dead
	return nil
}

// ReceiverState is the serializable state of a go-back-N Receiver.
type ReceiverState struct {
	Expected  uint64 `json:"expected"`
	NackArmed bool   `json:"nack_armed,omitempty"`
}

// State captures the receiver's protocol position.
func (r *Receiver) State() ReceiverState {
	return ReceiverState{Expected: r.expected, NackArmed: r.nackArmed}
}

// RestoreState loads a captured protocol position.
func (r *Receiver) RestoreState(st ReceiverState) {
	r.expected, r.nackArmed = st.Expected, st.NackArmed
}

// InjectorState is the serializable position of every injection stream: one
// SplitMix64 state per (kind, link). The permanent-failure stream is not
// here — FailedLinks is a pure function of the seed and re-derives
// identically on rebuild.
type InjectorState struct {
	Corrupt []uint64 `json:"corrupt"`
	Stall   []uint64 `json:"stall"`
	Credit  []uint64 `json:"credit"`
}

// StreamState captures the injector's stream positions.
func (in *Injector) StreamState() InjectorState {
	return InjectorState{
		Corrupt: append([]uint64(nil), in.corrupt...),
		Stall:   append([]uint64(nil), in.stall...),
		Credit:  append([]uint64(nil), in.credit...),
	}
}

// RestoreStreams loads captured stream positions into an injector built for
// the same link count.
func (in *Injector) RestoreStreams(st InjectorState) error {
	if len(st.Corrupt) != len(in.corrupt) || len(st.Stall) != len(in.stall) || len(st.Credit) != len(in.credit) {
		return fmt.Errorf("fault: injector stream shape mismatch: %d/%d/%d states for %d links",
			len(st.Corrupt), len(st.Stall), len(st.Credit), len(in.corrupt))
	}
	copy(in.corrupt, st.Corrupt)
	copy(in.stall, st.Stall)
	copy(in.credit, st.Credit)
	return nil
}
