package fault

// This file implements the pure go-back-N state machines of the reliable
// link layer. They hold no references to channels or packets — the machine's
// adapter code owns the retransmission buffer and wires frames and control
// messages through the fabric — which keeps the protocol state machines
// directly unit-testable and fuzzable (FuzzGoBackN).
//
// Protocol sketch: every frame transmitted on a link carries a sequence
// number and a CRC. The receiver accepts only the in-order, uncorrupted
// frame it expects, returning a cumulative ACK; anything else is dropped
// (buffer space is released immediately) and answered with at most one NACK
// per gap. The sender keeps up to Window unacknowledged frames, rewinds its
// retransmit cursor on a NACK, and falls back to a timeout rewind when a
// retransmission is itself lost. A bounded number of rewinds without base
// progress declares the link dead.

// Sender is the go-back-N sender state machine for one link.
type Sender struct {
	window     int
	timeout    uint64
	retryLimit int

	base uint64 // oldest unacknowledged sequence number
	next uint64 // next fresh sequence number
	retx uint64 // next sequence to retransmit; >= next when no replay pending

	lastMove uint64 // cycle of the last base advance (or first send)
	attempts int    // rewinds since the base last advanced
	dead     bool
}

// NewSender builds a sender with the given window (frames), ack-progress
// timeout (cycles), and rewind budget.
func NewSender(window int, timeout uint64, retryLimit int) Sender {
	return Sender{window: window, timeout: timeout, retryLimit: retryLimit}
}

// Base returns the oldest unacknowledged sequence number.
func (s *Sender) Base() uint64 { return s.base }

// Next returns the next fresh sequence number.
func (s *Sender) Next() uint64 { return s.next }

// Outstanding returns the number of unacknowledged frames.
func (s *Sender) Outstanding() int { return int(s.next - s.base) }

// Attempts returns the rewinds since the base last advanced.
func (s *Sender) Attempts() int { return s.attempts }

// Dead reports whether the rewind budget has been exhausted.
func (s *Sender) Dead() bool { return s.dead }

// Quiet reports whether the sender has nothing outstanding or pending.
func (s *Sender) Quiet() bool { return s.base == s.next && s.retx >= s.next }

// CanSend reports whether a fresh frame may be transmitted: window space
// available, no replay in progress, link not dead.
func (s *Sender) CanSend() bool {
	return !s.dead && s.retx >= s.next && int(s.next-s.base) < s.window
}

// OnSend records the transmission of a fresh frame and returns its sequence
// number. The caller must have checked CanSend.
func (s *Sender) OnSend(now uint64) uint64 {
	seq := s.next
	if s.base == s.next {
		// First outstanding frame: start the progress clock.
		s.lastMove = now
	}
	s.next++
	// CanSend guaranteed retx == next on entry; keep the replay cursor
	// caught up so the fresh frame is not mistaken for a pending replay.
	s.retx = s.next
	return seq
}

// NeedRetx returns the sequence number to retransmit next, if a replay is
// pending.
func (s *Sender) NeedRetx() (uint64, bool) {
	if s.retx < s.next {
		return s.retx, true
	}
	return 0, false
}

// OnRetx records the retransmission of the pending sequence and advances the
// replay cursor.
func (s *Sender) OnRetx() uint64 {
	seq := s.retx
	s.retx++
	return seq
}

// advance moves the window base to seq (a cumulative ack boundary) and
// returns how many frames were released.
func (s *Sender) advance(seq, now uint64) int {
	if seq <= s.base {
		return 0
	}
	if seq > s.next {
		seq = s.next
	}
	n := int(seq - s.base)
	s.base = seq
	s.attempts = 0
	s.lastMove = now
	if s.retx < s.base {
		s.retx = s.base
	}
	return n
}

// OnAck processes a cumulative acknowledgment: all sequences below seq were
// accepted. Returns the number of window entries released.
func (s *Sender) OnAck(seq, now uint64) int {
	return s.advance(seq, now)
}

// OnNack processes a negative acknowledgment carrying the receiver's next
// expected sequence. It acts as a cumulative ack up to seq, then rewinds the
// replay cursor — unless a replay is already in progress, which will cover
// the gap. Returns the number of window entries released.
func (s *Sender) OnNack(seq, now uint64) int {
	n := s.advance(seq, now)
	if s.base < s.next && s.retx >= s.next {
		s.rewind(now)
	}
	return n
}

// Tick fires the timeout rewind when the base has made no progress for the
// timeout interval and no replay is in progress. Returns true if a rewind
// happened.
func (s *Sender) Tick(now uint64) bool {
	if s.dead || s.base == s.next || s.retx < s.next {
		return false
	}
	if now-s.lastMove < s.timeout {
		return false
	}
	s.rewind(now)
	return true
}

// Deadline returns the cycle at which Tick would next fire a timeout rewind,
// given no further acks or sends: lastMove + timeout. It reports false when
// no timeout is pending (nothing outstanding, a replay in progress, or the
// sender is dead). An active-set scheduler uses it to let an otherwise-idle
// adapter sleep without missing its retransmit timer.
func (s *Sender) Deadline() (uint64, bool) {
	if s.dead || s.base == s.next || s.retx < s.next {
		return 0, false
	}
	return s.lastMove + s.timeout, true
}

func (s *Sender) rewind(now uint64) {
	s.retx = s.base
	s.attempts++
	s.lastMove = now
	if s.attempts > s.retryLimit {
		s.dead = true
	}
}

// Receiver is the go-back-N receiver state machine for one link.
type Receiver struct {
	expected  uint64
	nackArmed bool
}

// Expected returns the next in-order sequence number the receiver will
// accept.
func (r *Receiver) Expected() uint64 { return r.expected }

// Verdict is the receiver's decision for one arriving frame.
type Verdict struct {
	Accept bool   // deliver the frame upward
	Ack    bool   // send a cumulative ack carrying Seq
	Nack   bool   // send a nack carrying Seq (the next expected sequence)
	Seq    uint64 // ack/nack payload: the receiver's next expected sequence
}

// OnFrame processes one arriving frame. A corrupted frame's header is
// untrustworthy, so corruption is checked before the sequence number. At
// most one NACK is sent per gap: the nack stays armed until the next
// in-order accept, and the sender's timeout covers a lost or corrupted
// retransmission.
func (r *Receiver) OnFrame(seq uint64, corrupt bool) Verdict {
	if corrupt {
		return r.gap()
	}
	switch {
	case seq == r.expected:
		r.expected++
		r.nackArmed = false
		return Verdict{Accept: true, Ack: true, Seq: r.expected}
	case seq < r.expected:
		// Stale duplicate from a rewound sender: drop, but re-ack so a
		// sender that missed the original ack can advance.
		return Verdict{Ack: true, Seq: r.expected}
	default:
		return r.gap()
	}
}

func (r *Receiver) gap() Verdict {
	if r.nackArmed {
		return Verdict{}
	}
	r.nackArmed = true
	return Verdict{Nack: true, Seq: r.expected}
}
