// Package arbiter implements the arbitration logic of the Anton 2 network:
// locally fair round-robin arbiters, the optimized prioritized arbiter of
// Figure 8 (thermometer-encoded round-robin with a parallel-prefix
// fixed-priority rule), the accumulator update logic of Figure 6, and the
// inverse-weighted arbiter of Section 3 that provides equality of service
// from precomputed per-traffic-pattern loads.
package arbiter

// MaxInputs bounds arbiter width so request vectors fit in a uint64.
const MaxInputs = 64

// Arbiter selects one requester per invocation and updates its internal
// fairness state. req is a bitmask of requesting inputs. pats[i] holds the
// traffic-pattern id of input i's candidate packet (consulted only by
// weighted arbiters and only for the granted input); it may be nil when the
// caller has no pattern labels.
type Arbiter interface {
	// K returns the arbiter's input count.
	K() int
	// Pick returns the granted input index, or -1 if req is empty.
	Pick(req uint64, pats []uint8) int
}

// RoundRobin is a locally fair arbiter: it grants the next requesting input
// after the most recently granted one. Building the network entirely from
// these is the paper's baseline, which exhibits significant global
// unfairness beyond saturation (Section 3, Figure 9).
type RoundRobin struct {
	k    int
	next int // highest-precedence input
}

// NewRoundRobin returns a round-robin arbiter over k inputs.
func NewRoundRobin(k int) *RoundRobin {
	checkK(k)
	return &RoundRobin{k: k}
}

// K implements Arbiter.
func (a *RoundRobin) K() int { return a.k }

// Pick implements Arbiter.
func (a *RoundRobin) Pick(req uint64, _ []uint8) int {
	if req == 0 {
		return -1
	}
	for off := 0; off < a.k; off++ {
		i := a.next + off
		if i >= a.k {
			i -= a.k
		}
		if req&(1<<i) != 0 {
			a.next = i + 1
			if a.next == a.k {
				a.next = 0
			}
			return i
		}
	}
	return -1
}

// FixedPriority always grants the highest-index requester, mirroring the
// most-significant-bit-first rule of the hardware fixed-priority arbiters.
type FixedPriority struct{ k int }

// NewFixedPriority returns a fixed-priority arbiter over k inputs.
func NewFixedPriority(k int) *FixedPriority {
	checkK(k)
	return &FixedPriority{k: k}
}

// K implements Arbiter.
func (a *FixedPriority) K() int { return a.k }

// Pick implements Arbiter.
func (a *FixedPriority) Pick(req uint64, _ []uint8) int {
	return msb(req)
}

// msb returns the index of the most significant set bit, or -1.
func msb(x uint64) int {
	if x == 0 {
		return -1
	}
	i := 0
	for s := 32; s > 0; s >>= 1 {
		if x>>(uint(i)+uint(s)) != 0 {
			i += s
		}
	}
	return i
}

func checkK(k int) {
	if k < 1 || k > MaxInputs {
		panic("arbiter: input count out of range")
	}
}

// Kind names an arbiter flavor for experiment configuration.
type Kind uint8

// Arbiter flavors used in the experiments.
const (
	KindRoundRobin Kind = iota
	KindInverseWeighted
)

func (k Kind) String() string {
	if k == KindRoundRobin {
		return "round-robin"
	}
	return "inverse-weighted"
}
