package arbiter

import "fmt"

// This file externalizes arbiter fairness state for checkpointing. The
// machine only ever instantiates RoundRobin and InverseWeighted (plus the
// stateless FixedPriority), so a concrete-type switch covers the registry
// without widening the Arbiter interface.

// State is the serializable fairness position of one arbiter. RoundRobin
// uses Next; InverseWeighted uses Accum and RRTherm; FixedPriority and other
// stateless arbiters leave everything zero.
type State struct {
	Next    int      `json:"next,omitempty"`
	Accum   []uint32 `json:"accum,omitempty"`
	RRTherm uint64   `json:"rrtherm,omitempty"`
}

// CaptureState snapshots an arbiter's fairness state. Stateless arbiters
// return the zero State.
func CaptureState(a Arbiter) (State, error) {
	switch ar := a.(type) {
	case *RoundRobin:
		return State{Next: ar.next}, nil
	case *InverseWeighted:
		return State{Accum: ar.Accumulators(), RRTherm: ar.rrTherm}, nil
	case *FixedPriority:
		return State{}, nil
	default:
		return State{}, fmt.Errorf("arbiter: cannot snapshot %T", a)
	}
}

// RestoreState loads a captured fairness position into an arbiter of the
// same concrete type and width.
func RestoreState(a Arbiter, st State) error {
	switch ar := a.(type) {
	case *RoundRobin:
		if st.Next < 0 || st.Next >= ar.k {
			return fmt.Errorf("arbiter: round-robin cursor %d outside [0, %d)", st.Next, ar.k)
		}
		ar.next = st.Next
		return nil
	case *InverseWeighted:
		if len(st.Accum) != ar.k {
			return fmt.Errorf("arbiter: %d accumulators for a %d-input arbiter", len(st.Accum), ar.k)
		}
		copy(ar.state.Accum, st.Accum)
		ar.rrTherm = st.RRTherm
		return nil
	case *FixedPriority:
		return nil
	default:
		return fmt.Errorf("arbiter: cannot restore %T", a)
	}
}
