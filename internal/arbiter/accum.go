package arbiter

// This file is a bit-accurate translation of the accumulator_update
// SystemVerilog module of Figure 6. Each arbiter input i has an (M+1)-bit
// accumulator tracking its weighted service history; the most significant
// bit selects one of two priority levels (clear = high priority, i.e. the
// accumulator sits in the lower half of the sliding window). When a
// low-priority input is granted there can be no high-priority requesters, so
// the window is shifted by subtracting 2^M from every accumulator — realized
// by clearing the MSB, or zeroing entirely in the underflow case.

// AccumState holds the accumulators of one inverse-weighted arbiter.
type AccumState struct {
	K     int      // input count
	M     int      // inverse-weight bit width; accumulators are M+1 bits
	Accum []uint32 // K accumulators, each < 2^(M+1)
}

// NewAccumState returns zeroed accumulators for a k-input arbiter with
// M-bit inverse weights.
func NewAccumState(k, m int) *AccumState {
	checkK(k)
	if m < 1 || m > 30 {
		panic("arbiter: inverse-weight width out of range")
	}
	return &AccumState{K: k, M: m, Accum: make([]uint32, k)}
}

// Pri returns the per-input priority levels: 1 (high) when the accumulator's
// MSB is clear, 0 (low) otherwise.
func (s *AccumState) Pri() []uint8 {
	pri := make([]uint8, s.K)
	s.PriInto(pri)
	return pri
}

// PriInto fills pri (len >= K) with the per-input priority levels.
func (s *AccumState) PriInto(pri []uint8) {
	msbMask := uint32(1) << uint(s.M)
	for i := 0; i < s.K; i++ {
		if s.Accum[i]&msbMask == 0 {
			pri[i] = 1
		} else {
			pri[i] = 0
		}
	}
}

// Update applies the accumulator update rule for a one-hot grant vector and
// the granted input's inverse weight (invWeight < 2^M). It mirrors the
// always_comb block of Figure 6 exactly.
func (s *AccumState) Update(grant uint64, invWeight uint32) {
	msbMask := uint32(1) << uint(s.M)
	if invWeight >= msbMask {
		panic("arbiter: inverse weight exceeds M bits")
	}
	// low_grant = |(grant & ~pri): the granted input was low priority.
	lowGrant := false
	for i := 0; i < s.K; i++ {
		if grant&(1<<i) != 0 && s.Accum[i]&msbMask != 0 {
			lowGrant = true
		}
	}
	for i := 0; i < s.K; i++ {
		accMSB0 := s.Accum[i] &^ msbMask
		priHigh := s.Accum[i]&msbMask == 0
		switch {
		case grant&(1<<i) != 0:
			s.Accum[i] = accMSB0 + invWeight
		case lowGrant:
			if priHigh {
				s.Accum[i] = 0 // underflow: clamp at zero
			} else {
				s.Accum[i] = accMSB0
			}
		}
	}
}
