package arbiter

import "math"

// InverseWeightBits is M, the inverse-weight bit width of the Anton 2
// implementation; accumulators are M+1 bits and the sliding window spans
// 2^(M+1) values.
const InverseWeightBits = 5

// NumPatterns is N, the number of simultaneously supported traffic patterns;
// each packet header carries a field identifying its pattern (Section 3.3).
const NumPatterns = 2

// InverseWeighted is the inverse-weighted arbiter of Section 3. Each input
// stores one precomputed inverse weight per traffic pattern,
// m[i][n] = nint(beta / gamma[i][n]); an accumulator per input tracks
// weighted service, and the input with its accumulator in the lower half of
// the sliding window is served first, achieving equality of service across
// any blend of the N patterns.
type InverseWeighted struct {
	k       int
	weights [][NumPatterns]uint32
	state   *AccumState
	rrTherm uint64
	pri     []uint8
}

// NewInverseWeighted builds an arbiter over k inputs with the given per-input
// per-pattern inverse weights (each < 2^InverseWeightBits).
func NewInverseWeighted(k int, weights [][NumPatterns]uint32) *InverseWeighted {
	checkK(k)
	if len(weights) != k {
		panic("arbiter: weight table size mismatch")
	}
	for _, w := range weights {
		for _, m := range w {
			if m >= 1<<InverseWeightBits {
				panic("arbiter: inverse weight exceeds M bits")
			}
		}
	}
	a := &InverseWeighted{
		k:       k,
		weights: weights,
		state:   NewAccumState(k, InverseWeightBits),
		rrTherm: (uint64(1) << uint(k)) - 1,
		pri:     make([]uint8, k),
	}
	return a
}

// K implements Arbiter.
func (a *InverseWeighted) K() int { return a.k }

// Pick implements Arbiter: priorities come from the accumulator MSBs, the
// grant from the two-level prioritized arbiter of Figure 8, and the
// accumulator update from Figure 6 using the granted packet's pattern.
func (a *InverseWeighted) Pick(req uint64, pats []uint8) int {
	if req == 0 {
		return -1
	}
	a.state.PriInto(a.pri)
	grant := PrioArb(a.k, 2, req, a.pri, a.rrTherm)
	if grant == 0 {
		return -1
	}
	g := msb(grant)
	n := uint8(0)
	if pats != nil {
		n = pats[g]
	}
	if n >= NumPatterns {
		n = NumPatterns - 1
	}
	a.state.Update(grant, a.weights[g][n])
	a.rrTherm = NextRRTherm(a.k, g)
	return g
}

// Accumulators exposes a copy of the accumulator values for tests and
// debugging.
func (a *InverseWeighted) Accumulators() []uint32 {
	out := make([]uint32, a.k)
	copy(out, a.state.Accum)
	return out
}

// WeightsFromLoads converts per-input loads for one traffic pattern into
// inverse weights: m_i = nint(beta * (1/gamma_i)), with beta scaled so the
// largest weight fits in M bits. Inputs with zero load get the maximum
// weight (they receive service only when nothing else requests).
func WeightsFromLoads(loads []float64) []uint32 {
	maxW := uint32(1<<InverseWeightBits - 1)
	// beta = minLoad * maxW makes the least-loaded input's weight ~maxW.
	minLoad := math.Inf(1)
	for _, g := range loads {
		if g > 0 && g < minLoad {
			minLoad = g
		}
	}
	out := make([]uint32, len(loads))
	if math.IsInf(minLoad, 1) {
		for i := range out {
			out[i] = 1 // no information: degenerate to round-robin-like
		}
		return out
	}
	beta := minLoad * float64(maxW)
	for i, g := range loads {
		if g <= 0 {
			out[i] = maxW
			continue
		}
		w := uint32(math.Round(beta / g))
		if w < 1 {
			w = 1
		}
		if w > maxW {
			w = maxW
		}
		out[i] = w
	}
	return out
}

// JointWeights converts per-pattern input loads into an inverse-weight
// table. loads[n][i] is the load on input i under traffic pattern n. The
// scale factor beta is shared across patterns — the accumulator of equation
// (3) sums weighted service over patterns, so all weights at one arbiter
// must use a single beta. Patterns beyond len(loads) reuse pattern 0's
// weights.
func JointWeights(loads [][]float64) [][NumPatterns]uint32 {
	if len(loads) == 0 || len(loads) > NumPatterns {
		panic("arbiter: JointWeights needs 1..NumPatterns load vectors")
	}
	k := len(loads[0])
	maxW := float64(uint32(1)<<InverseWeightBits - 1)
	minLoad := math.Inf(1)
	for _, lv := range loads {
		if len(lv) != k {
			panic("arbiter: pattern load vectors differ in length")
		}
		for _, g := range lv {
			if g > 0 && g < minLoad {
				minLoad = g
			}
		}
	}
	out := make([][NumPatterns]uint32, k)
	if math.IsInf(minLoad, 1) {
		for i := range out {
			for n := range out[i] {
				out[i][n] = 1
			}
		}
		return out
	}
	beta := minLoad * maxW
	for i := range out {
		for n := 0; n < NumPatterns; n++ {
			lv := loads[0]
			if n < len(loads) {
				lv = loads[n]
			}
			g := lv[i]
			if g <= 0 {
				out[i][n] = uint32(maxW)
				continue
			}
			w := math.Round(beta / g)
			if w < 1 {
				w = 1
			}
			if w > maxW {
				w = maxW
			}
			out[i][n] = uint32(w)
		}
	}
	return out
}

// UniformWeights returns weight tables that make the inverse-weighted
// arbiter serve all inputs equally (useful as a neutral default).
func UniformWeights(k int) [][NumPatterns]uint32 {
	w := make([][NumPatterns]uint32, k)
	for i := range w {
		for n := range w[i] {
			w[i][n] = 1
		}
	}
	return w
}
