package arbiter

// This file is a bit-accurate translation of the priority_arb SystemVerilog
// module of Figure 8: a k-input arbiter with P priority levels and
// round-robin tie-breaking. The round-robin state is thermometer-encoded
// (rrTherm[i] implies rrTherm[i-1]), and the fixed-priority rule is applied
// to P+1 unrolled request vectors — the optimization of Figure 7, which
// needs only P+1 fixed-priority arbiters instead of 2P because adjacent
// unrolled vectors are mutually exclusive after the round-robin split.

// PrioArb computes the grant vector for the request vector req (k bits),
// per-input priority levels pri (each in [0, P)), and thermometer-encoded
// round-robin state rrTherm. It mirrors the hardware exactly, including the
// parallel-prefix (Kogge-Stone) cancellation network.
func PrioArb(k, p int, req uint64, pri []uint8, rrTherm uint64) uint64 {
	if k < 1 || k > MaxInputs {
		panic("arbiter: PrioArb width out of range")
	}
	// req_unroll[l][i] = req[i] && ( {pri[i], rr_therm[i]} >= 2l-1 ), with
	// req_unroll[0] = req. The concatenation {pri, rr} for priority level
	// pr and thermometer bit th has value 2*pr + th.
	unroll := make([]uint64, p+1)
	unroll[0] = req
	for l := 1; l <= p; l++ {
		var v uint64
		for i := 0; i < k; i++ {
			if req&(1<<i) == 0 {
				continue
			}
			code := 2 * int(pri[i])
			if rrTherm&(1<<i) != 0 {
				code++
			}
			if code >= 2*l-1 {
				v |= 1 << i
			}
		}
		unroll[l] = v
	}

	// Flatten into a single (p+1)*k-bit vector, most significant request
	// wins. Cancellation: higher_pri_req = prefix-OR of everything above.
	// We model the flattened vector with a big.Int-free approach: walk the
	// unrolled vectors from the top and grant the MSB of the first
	// non-empty one; this is exactly what the prefix network computes.
	for l := p; l >= 0; l-- {
		if unroll[l] != 0 {
			return 1 << uint(msb(unroll[l]))
		}
	}
	return 0
}

// NaivePrioArb is the typical approach of [17] that Figure 7 improves on: a
// separate round-robin arbiter per priority level (each built from two
// fixed-priority arbiters over the pointer-split request vectors), with the
// per-level results combined highest-level-first. It exists as a reference
// implementation for equivalence testing against PrioArb.
func NaivePrioArb(k, p int, req uint64, pri []uint8, rrTherm uint64) uint64 {
	for level := p - 1; level >= 0; level-- {
		var levelReq uint64
		for i := 0; i < k; i++ {
			if req&(1<<i) != 0 && int(pri[i]) == level {
				levelReq |= 1 << i
			}
		}
		if levelReq == 0 {
			continue
		}
		// Round-robin split: the thermometer segment (at or below the
		// pointer) has precedence, MSB first within each segment.
		if hi := levelReq & rrTherm; hi != 0 {
			return 1 << uint(msb(hi))
		}
		return 1 << uint(msb(levelReq))
	}
	return 0
}

// NextRRTherm returns the updated thermometer state after granting input g:
// the granted input becomes the lowest-precedence requester, i.e. the
// pointer moves just below it.
func NextRRTherm(k, g int) uint64 {
	if g <= 0 {
		// Wrap: everything is at or below the (k-1) pointer.
		return (uint64(1) << uint(k)) - 1
	}
	return (uint64(1) << uint(g)) - 1
}
