package arbiter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobinRotation(t *testing.T) {
	a := NewRoundRobin(4)
	all := uint64(0b1111)
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, a.Pick(all, nil))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	if g := a.Pick(0b1010, nil); g != 1 {
		t.Fatalf("first grant %d, want 1", g)
	}
	if g := a.Pick(0b1010, nil); g != 3 {
		t.Fatalf("second grant %d, want 3", g)
	}
	if g := a.Pick(0b1010, nil); g != 1 {
		t.Fatalf("third grant %d, want 1 (wrap)", g)
	}
	if g := a.Pick(0, nil); g != -1 {
		t.Fatalf("empty request granted %d", g)
	}
}

func TestRoundRobinLocallyFair(t *testing.T) {
	a := NewRoundRobin(6)
	counts := make([]int, 6)
	for i := 0; i < 6000; i++ {
		g := a.Pick((1<<6)-1, nil)
		counts[g]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Errorf("input %d granted %d times, want exactly 1000", i, c)
		}
	}
}

func TestFixedPriorityMSB(t *testing.T) {
	a := NewFixedPriority(8)
	if g := a.Pick(0b0010_0110, nil); g != 5 {
		t.Fatalf("grant %d, want 5", g)
	}
	if g := a.Pick(0, nil); g != -1 {
		t.Fatalf("empty grant %d", g)
	}
}

func TestMSB(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, -1}, {1, 0}, {2, 1}, {3, 1}, {1 << 63, 63}, {0xff00, 15},
	}
	for _, c := range cases {
		if got := msb(c.x); got != c.want {
			t.Errorf("msb(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

// validTherm builds a legal thermometer word for k inputs from a boundary.
func validTherm(k int, boundary int) uint64 {
	if boundary <= 0 {
		return 0
	}
	if boundary >= k {
		boundary = k
	}
	return (uint64(1) << uint(boundary)) - 1
}

// TestPrioArbMatchesNaive verifies the Figure 7/8 optimization: the P+1
// fixed-priority-arbiter implementation is grant-for-grant identical to the
// naive 2P-arbiter construction.
func TestPrioArbMatchesNaive(t *testing.T) {
	f := func(reqRaw uint16, priRaw uint16, boundary uint8) bool {
		const k, p = 12, 2
		req := uint64(reqRaw) & ((1 << k) - 1)
		pri := make([]uint8, k)
		for i := 0; i < k; i++ {
			pri[i] = uint8(priRaw>>i) & 1
		}
		therm := validTherm(k, int(boundary)%(k+1))
		a := PrioArb(k, p, req, pri, therm)
		b := NaivePrioArb(k, p, req, pri, therm)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrioArbGrantProperties(t *testing.T) {
	f := func(reqRaw uint16, priRaw uint16, boundary uint8) bool {
		const k, p = 10, 2
		req := uint64(reqRaw) & ((1 << k) - 1)
		pri := make([]uint8, k)
		anyHigh := false
		for i := 0; i < k; i++ {
			pri[i] = uint8(priRaw>>i) & 1
			if req&(1<<i) != 0 && pri[i] == 1 {
				anyHigh = true
			}
		}
		therm := validTherm(k, int(boundary)%(k+1))
		g := PrioArb(k, p, req, pri, therm)
		if req == 0 {
			return g == 0
		}
		// One-hot, a requester, and strict priority.
		if g == 0 || g&(g-1) != 0 || g&req == 0 {
			return false
		}
		gi := msb(g)
		if anyHigh && pri[gi] == 0 {
			return false // low-priority input granted over a high one
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextRRThermIsThermometer(t *testing.T) {
	const k = 9
	for g := 0; g < k; g++ {
		th := NextRRTherm(k, g)
		// Prefix-of-ones property.
		seenZero := false
		for i := 0; i < k; i++ {
			bit := th&(1<<i) != 0
			if bit && seenZero {
				t.Fatalf("NextRRTherm(%d,%d) = %b not a thermometer", k, g, th)
			}
			if !bit {
				seenZero = true
			}
		}
	}
}

// TestPrioArbRoundRobinWithinLevel: with all inputs at equal priority and
// the thermometer updated after each grant, the arbiter cycles through all
// requesters before repeating.
func TestPrioArbRoundRobinWithinLevel(t *testing.T) {
	const k = 5
	pri := make([]uint8, k)
	therm := uint64((1 << k) - 1)
	req := uint64((1 << k) - 1)
	seen := map[int]int{}
	for i := 0; i < 2*k; i++ {
		g := PrioArb(k, 2, req, pri, therm)
		gi := msb(g)
		seen[gi]++
		therm = NextRRTherm(k, gi)
	}
	for i := 0; i < k; i++ {
		if seen[i] != 2 {
			t.Fatalf("input %d granted %d times in 2 full rounds: %v", i, seen[i], seen)
		}
	}
}

func TestAccumUpdateFigure6Semantics(t *testing.T) {
	const m = 5 // accumulators are 6 bits; MSB mask 32
	s := NewAccumState(2, m)

	// Grant to a high-priority input: plain add.
	s.Accum = []uint32{10, 20}
	s.Update(0b01, 7)
	if s.Accum[0] != 17 || s.Accum[1] != 20 {
		t.Fatalf("high-pri grant: accums %v, want [17 20]", s.Accum)
	}

	// Grant to a low-priority input (MSB set): window shifts. Granted
	// input clears MSB then adds; other low-pri inputs clear MSB;
	// high-pri inputs clamp at 0 (underflow).
	s.Accum = []uint32{32 + 5, 12}
	s.Update(0b01, 3)
	if s.Accum[0] != 8 {
		t.Errorf("low-pri grant: accum[0] = %d, want 5+3 = 8", s.Accum[0])
	}
	if s.Accum[1] != 0 {
		t.Errorf("window shift underflow: accum[1] = %d, want clamped 0", s.Accum[1])
	}

	// No grant: unchanged.
	before := append([]uint32(nil), s.Accum...)
	s.Update(0, 9)
	for i := range before {
		if s.Accum[i] != before[i] {
			t.Fatalf("no-grant update changed accumulators")
		}
	}
}

// TestAccumWindowInvariant: accumulators always stay below 2^(M+1).
func TestAccumWindowInvariant(t *testing.T) {
	const k, m = 4, 5
	s := NewAccumState(k, m)
	rng := rand.New(rand.NewSource(1))
	pri := make([]uint8, k)
	therm := uint64((1 << k) - 1)
	for step := 0; step < 20000; step++ {
		req := uint64(rng.Intn(1 << k))
		s.PriInto(pri)
		grant := PrioArb(k, 2, req, pri, therm)
		if grant == 0 {
			continue
		}
		g := msb(grant)
		s.Update(grant, uint32(rng.Intn(1<<m)))
		therm = NextRRTherm(k, g)
		for i, a := range s.Accum {
			if a >= 1<<(m+1) {
				t.Fatalf("step %d: accumulator %d = %d escaped the window", step, i, a)
			}
		}
	}
}

// TestInverseWeightedEoSFigure5 reproduces the Figure 5 example: at arbiter
// A the loads are 1 and 0.5, so input 0 must be granted twice as often;
// at arbiter B the loads are 1.5 and 1 (ratio 3:2).
func TestInverseWeightedEoSFigure5(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		want  float64 // grant ratio input0/input1
	}{
		{"arbiterA", []float64{1, 0.5}, 2.0},
		{"arbiterB", []float64{1.5, 1}, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := WeightsFromLoads(c.loads)
			tab := make([][NumPatterns]uint32, len(w))
			for i, wi := range w {
				tab[i] = [NumPatterns]uint32{wi, wi}
			}
			a := NewInverseWeighted(len(w), tab)
			counts := make([]int, len(w))
			const rounds = 30000
			for i := 0; i < rounds; i++ {
				g := a.Pick((1<<len(w))-1, nil)
				counts[g]++
			}
			ratio := float64(counts[0]) / float64(counts[1])
			// The achievable ratio is quantized by the M-bit inverse
			// weights: service is proportional to 1/m exactly.
			quantized := float64(w[1]) / float64(w[0])
			if ratio < quantized*0.99 || ratio > quantized*1.01 {
				t.Errorf("grant ratio = %.3f (counts %v), want quantized %.3f", ratio, counts, quantized)
			}
			// And the quantized ratio must approximate the ideal EoS ratio.
			if quantized < c.want*0.92 || quantized > c.want*1.08 {
				t.Errorf("quantized ratio %.3f too far from ideal %.2f", quantized, c.want)
			}
		})
	}
}

// TestInverseWeightedBlending checks the Section 3.2 claim: with per-pattern
// weights programmed, EoS holds for any blend of the patterns without the
// arbiter knowing the mixing coefficients.
func TestInverseWeightedBlending(t *testing.T) {
	// Pattern 0 loads: input0=2, input1=1. Pattern 1 loads: input0=1,
	// input1=3.
	w0 := WeightsFromLoads([]float64{2, 1})
	w1 := WeightsFromLoads([]float64{1, 3})
	tab := [][NumPatterns]uint32{
		{w0[0], w1[0]},
		{w0[1], w1[1]},
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a := NewInverseWeighted(2, tab)
		rng := rand.New(rand.NewSource(42))
		// Each input presents an infinite queue of packets whose
		// pattern labels arrive in proportion to the pattern's
		// contribution to that input's blended load (Section 3.2).
		mix := func(l0, l1 float64) func() uint8 {
			p0 := alpha * l0 / (alpha*l0 + (1-alpha)*l1)
			return func() uint8 {
				if rng.Float64() < p0 {
					return 0
				}
				return 1
			}
		}
		next0, next1 := mix(2, 1), mix(1, 3)
		head := [2]uint8{next0(), next1()}
		counts := [2]float64{}
		const rounds = 60000
		for i := 0; i < rounds; i++ {
			g := a.Pick(0b11, head[:])
			counts[g]++
			if g == 0 {
				head[0] = next0()
			} else {
				head[1] = next1()
			}
		}
		// Expected service ratio = blended load ratio.
		want := (alpha*2 + (1-alpha)*1) / (alpha*1 + (1-alpha)*3)
		got := counts[0] / counts[1]
		if got < want*0.93 || got > want*1.07 {
			t.Errorf("alpha=%.2f: service ratio %.3f, want ~%.3f", alpha, got, want)
		}
	}
}

func TestWeightsFromLoads(t *testing.T) {
	w := WeightsFromLoads([]float64{1, 0.5, 0.25, 0})
	// Least positive load gets the max weight; zero load also maxes out.
	maxW := uint32(1<<InverseWeightBits - 1)
	if w[2] != maxW {
		t.Errorf("least-loaded weight = %d, want %d", w[2], maxW)
	}
	if w[3] != maxW {
		t.Errorf("zero-load weight = %d, want %d", w[3], maxW)
	}
	// Weights inversely proportional to loads (within rounding).
	if w[0] >= w[1] || w[1] >= w[2] {
		t.Errorf("weights %v not inversely ordered with loads", w)
	}
	ratio := float64(w[1]) / float64(w[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("w1/w0 = %.2f, want ~2 (half the load)", ratio)
	}

	uniform := WeightsFromLoads([]float64{0, 0})
	if uniform[0] != uniform[1] {
		t.Errorf("all-zero loads should give equal weights, got %v", uniform)
	}
}

// TestInverseWeightedUniformMatchesRoundRobinThroughput: with equal weights
// and saturated inputs, service is equal (like round-robin).
func TestInverseWeightedUniformWeights(t *testing.T) {
	const k = 6
	a := NewInverseWeighted(k, UniformWeights(k))
	counts := make([]int, k)
	for i := 0; i < 6000; i++ {
		counts[a.Pick((1<<k)-1, nil)]++
	}
	for i, c := range counts {
		if c < 900 || c > 1100 {
			t.Errorf("input %d granted %d/6000, want ~1000", i, c)
		}
	}
}

func TestJointWeightsSharedBeta(t *testing.T) {
	// Two patterns with disjoint hot inputs: beta is shared, so weights
	// are comparable across patterns (equation (3) sums weighted service
	// over patterns in one accumulator).
	w := JointWeights([][]float64{
		{2, 1, 0},
		{1, 4, 2},
	})
	if len(w) != 3 {
		t.Fatalf("got %d rows", len(w))
	}
	// Min positive load (1) maps to maxW under both patterns.
	maxW := uint32(1<<InverseWeightBits - 1)
	if w[1][0] != maxW || w[0][1] != maxW {
		t.Errorf("min-load inputs should carry max weight: %v", w)
	}
	// Zero load maps to max weight.
	if w[2][0] != maxW {
		t.Errorf("zero-load input weight = %d", w[2][0])
	}
	// Twice the load -> half the weight (within rounding).
	if ratio := float64(w[1][0]) / float64(w[0][0]); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("pattern-0 weight ratio = %.2f, want ~2", ratio)
	}

	// Degenerate all-zero loads.
	z := JointWeights([][]float64{{0, 0}})
	if z[0][0] != 1 || z[1][0] != 1 {
		t.Errorf("all-zero loads should degenerate to uniform: %v", z)
	}
}

func TestKindStrings(t *testing.T) {
	if KindRoundRobin.String() != "round-robin" || KindInverseWeighted.String() != "inverse-weighted" {
		t.Error("arbiter kind labels wrong")
	}
}

func TestInverseWeightedRejectsBadTables(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized weight must panic")
		}
	}()
	NewInverseWeighted(2, [][NumPatterns]uint32{{64, 1}, {1, 1}})
}
