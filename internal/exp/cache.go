package exp

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes experiment results (or any derived value) by canonical
// string key with single-flight semantics: concurrent callers of the same
// key block on one computation instead of duplicating it. Cached values are
// shared by pointer and must be treated as immutable by callers.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	done atomic.Bool // set after once completes; gates Range visibility
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*cacheEntry)} }

// Do returns the cached value for key, computing it with fn on the first
// call. The second return reports whether the value was already present (or
// being computed by another goroutine) when Do was called. Errors are cached
// too: a failed computation is not retried on later lookups, matching the
// determinism contract (the same spec always yields the same outcome).
func (c *Cache) Do(key string, fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, hit, e.err
}

// Seed inserts a completed successful entry for key if none exists,
// reporting whether it was inserted. Existing entries (completed or
// in-flight) win, so seeding from a stale snapshot never overwrites a live
// computation. Used to pre-warm caches from persistent snapshots.
func (c *Cache) Seed(key string, val any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		return false
	}
	e := &cacheEntry{}
	e.once.Do(func() {
		e.val = val
		e.done.Store(true)
	})
	c.m[key] = e
	return true
}

// Range visits every completed successful entry. In-flight computations and
// cached errors are skipped. The visit callback must not mutate values.
func (c *Cache) Range(visit func(key string, val any)) {
	c.mu.Lock()
	snapshot := make(map[string]*cacheEntry, len(c.m))
	for k, e := range c.m {
		snapshot[k] = e
	}
	c.mu.Unlock()
	for k, e := range snapshot {
		if e.done.Load() && e.err == nil {
			visit(k, e.val)
		}
	}
}

// Forget drops the entry for key, so the next Do recomputes it. Callers use
// it to keep non-deterministic failures — a cancelled context, an operator
// abort — from poisoning the deterministic result cache.
func (c *Cache) Forget(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// Len reports the number of cached entries (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
