package exp

import "sync"

// Cache memoizes experiment results (or any derived value) by canonical
// string key with single-flight semantics: concurrent callers of the same
// key block on one computation instead of duplicating it. Cached values are
// shared by pointer and must be treated as immutable by callers.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*cacheEntry)} }

// Do returns the cached value for key, computing it with fn on the first
// call. The second return reports whether the value was already present (or
// being computed by another goroutine) when Do was called. Errors are cached
// too: a failed computation is not retried on later lookups, matching the
// determinism contract (the same spec always yields the same outcome).
func (c *Cache) Do(key string, fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, hit, e.err
}

// Len reports the number of cached entries (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
