package exp

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// degradedValue stands in for a measurement that completed by rerouting
// around a permanent fault.
type degradedValue struct{ deg bool }

func (v degradedValue) Degraded() bool { return v.deg }

func TestAttemptTimeoutDegrades(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := Job{Spec: NewSpec("slow"), Run: func(uint64) (any, error) {
		<-block
		return "late", nil
	}}
	rs := Run([]Job{slow}, Options{Parallelism: 1, AttemptTimeout: 10 * time.Millisecond})
	r := rs[0]
	if r.Err == nil {
		t.Fatalf("runaway attempt succeeded: %+v", r)
	}
	var te *ErrAttemptTimeout
	if !errors.As(r.Err, &te) {
		t.Fatalf("error type = %T (%v), want *ErrAttemptTimeout", r.Err, r.Err)
	}
	if !r.Degraded {
		t.Errorf("timeout not classified as degraded: %+v", r)
	}
	if r.Value != nil {
		t.Errorf("timed-out attempt left a value: %+v", r)
	}
}

func TestAttemptTimeoutRetriesThenRecovers(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	defer close(block)
	j := Job{Spec: NewSpec("slowthenfast"), Run: func(uint64) (any, error) {
		if calls.Add(1) == 1 {
			<-block // first attempt hangs past the deadline
		}
		return "ok", nil
	}}
	rs := Run([]Job{j}, Options{
		Parallelism:    1,
		Retries:        1,
		AttemptTimeout: 10 * time.Millisecond,
		Backoff:        time.Millisecond,
	})
	r := rs[0]
	if r.Err != nil || r.Value != "ok" {
		t.Fatalf("retry after timeout did not recover: %+v", r)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
	if r.Degraded {
		t.Errorf("clean retry wrongly marked degraded: %+v", r)
	}
}

func TestBackoffKeepsRetryBound(t *testing.T) {
	var calls atomic.Int32
	j := Job{Spec: NewSpec("alwaysfails"), Run: func(uint64) (any, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	}}
	start := time.Now()
	rs := Run([]Job{j}, Options{Parallelism: 1, Retries: 2, Backoff: time.Millisecond})
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
	if rs[0].Err == nil {
		t.Errorf("deterministic failure reported as success: %+v", rs[0])
	}
	// Backoff doubles: 1ms + 2ms between the three attempts.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("backoff not applied: elapsed %v < 3ms", elapsed)
	}
}

func TestDegradedValueClassified(t *testing.T) {
	jobs := []Job{
		{Spec: NewSpec("deg").Add("i", 0), Run: func(uint64) (any, error) {
			return degradedValue{deg: true}, nil
		}},
		{Spec: NewSpec("deg").Add("i", 1), Run: func(uint64) (any, error) {
			return degradedValue{deg: false}, nil
		}},
	}
	rs := Run(jobs, Serial())
	if rs[0].Err != nil || !rs[0].Degraded {
		t.Errorf("degraded value not classified: %+v", rs[0])
	}
	if rs[1].Degraded {
		t.Errorf("clean value wrongly classified degraded: %+v", rs[1])
	}
}

// degradedErr is an error that reports Degraded() true, like
// *fault.BudgetError does.
type degradedErr struct{}

func (degradedErr) Error() string  { return "retry budget exhausted" }
func (degradedErr) Degraded() bool { return true }

func TestDegradedErrorClassified(t *testing.T) {
	j := Job{Spec: NewSpec("budget"), Run: func(uint64) (any, error) {
		return nil, degradedErr{}
	}}
	rs := Run([]Job{j}, Serial())
	if rs[0].Err == nil || !rs[0].Degraded {
		t.Errorf("degraded error not classified: %+v", rs[0])
	}
}
