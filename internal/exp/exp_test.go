package exp

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"anton2/internal/sim"
)

func TestSpecCanonical(t *testing.T) {
	s := NewSpec("blend").Add("shape", "4x4x2").Add("f", 0.25).Add("batch", 96)
	want := "blend{shape=4x4x2 f=0.25 batch=96}"
	if got := s.Canonical(); got != want {
		t.Errorf("canonical = %q, want %q", got, want)
	}
	same := NewSpec("blend").Add("shape", "4x4x2").Add("f", 0.25).Add("batch", 96)
	if s.Hash() != same.Hash() || s.Seed() != same.Seed() {
		t.Error("identical specs must hash to identical seeds")
	}
	diff := NewSpec("blend").Add("shape", "4x4x2").Add("f", 0.5).Add("batch", 96)
	if s.Seed() == diff.Seed() {
		t.Error("specs differing in one parameter must get distinct seeds")
	}
}

// jobFor builds a job whose value is a pure function of its spec-derived
// seed, so scheduling cannot influence results.
func jobFor(i int) Job {
	return Job{
		Spec: NewSpec("synthetic").Add("i", i),
		Run: func(seed uint64) (any, error) {
			return fmt.Sprintf("v%d-%x", i, seed), nil
		},
	}
}

func TestRunSerialParallelIdentical(t *testing.T) {
	var jobs []Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, jobFor(i))
	}
	serial := Run(jobs, Serial())
	par := Run(jobs, Parallel(8))
	a, err := MarshalCanonical(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCanonical(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("serial and parallel canonical artifacts differ:\n%s\n---\n%s", a, b)
	}
	for i, r := range par {
		if r.Index != i || r.Value != serial[i].Value || r.Seed != serial[i].Seed {
			t.Fatalf("result %d out of order or divergent: %+v vs %+v", i, r, serial[i])
		}
	}
}

func TestPanicIsolatedToOnePoint(t *testing.T) {
	jobs := []Job{
		jobFor(0),
		{Spec: NewSpec("boom"), Run: func(uint64) (any, error) { panic("kaboom") }},
		jobFor(2),
	}
	rs := Run(jobs, Parallel(2))
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	if rs[1].Err == nil || rs[1].Value != nil {
		t.Fatalf("panicking job not reported as failed point: %+v", rs[1])
	}
	if Failed(rs) != 1 || FirstErr(rs) == nil {
		t.Errorf("failure accounting wrong: failed=%d err=%v", Failed(rs), FirstErr(rs))
	}
}

func TestRetryBound(t *testing.T) {
	var calls atomic.Int32
	flaky := Job{Spec: NewSpec("flaky"), Run: func(uint64) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}}
	rs := Run([]Job{flaky}, Options{Parallelism: 1, Retries: 2})
	if rs[0].Err != nil || rs[0].Value != "ok" || rs[0].Attempts != 3 {
		t.Errorf("retry did not recover: %+v", rs[0])
	}
	calls.Store(0)
	rs = Run([]Job{flaky}, Options{Parallelism: 1}) // no retries
	if rs[0].Err == nil || rs[0].Attempts != 1 {
		t.Errorf("unretried failure misreported: %+v", rs[0])
	}
}

func TestDeadlockPreservedAndIsolated(t *testing.T) {
	dl := Job{Spec: NewSpec("stuck"), Run: func(uint64) (any, error) {
		return nil, fmt.Errorf("run wedged: %w", &sim.ErrDeadlock{Cycle: 123, Window: 50_000})
	}}
	rs := Run([]Job{jobFor(0), dl, jobFor(2)}, Parallel(3))
	if !rs[1].Deadlock {
		t.Errorf("deadlock not flagged: %+v", rs[1])
	}
	var de *sim.ErrDeadlock
	if !errors.As(rs[1].Err, &de) || de.Cycle != 123 {
		t.Errorf("deadlock error not preserved: %v", rs[1].Err)
	}
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Error("deadlocked point killed the rest of the sweep")
	}
}

func TestCacheMemoizesAcrossSweeps(t *testing.T) {
	var computed atomic.Int32
	mk := func(i int) Job {
		return Job{Spec: NewSpec("cached").Add("i", i), Run: func(seed uint64) (any, error) {
			computed.Add(1)
			return seed, nil
		}}
	}
	jobs := []Job{mk(0), mk(1), mk(0), mk(1)} // duplicates within the sweep
	cache := NewCache()
	rs1 := Run(jobs, Options{Parallelism: 4, Cache: cache})
	rs2 := Run(jobs, Options{Parallelism: 4, Cache: cache})
	if got := computed.Load(); got != 2 {
		t.Errorf("computed %d times, want 2 (unique specs)", got)
	}
	for i := range jobs {
		if rs1[i].Value != rs2[i].Value {
			t.Errorf("cache changed result %d: %v vs %v", i, rs1[i].Value, rs2[i].Value)
		}
		if !rs2[i].Cached {
			t.Errorf("second sweep point %d not served from cache", i)
		}
	}
}
