package exp

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"anton2/internal/ckpt"
)

// ckptCountJob is a synthetic checkpoint-aware job: it counts to limit,
// persisting the counter every 10 steps, and panics once at crashAt on its
// first pass. The returned value records where the successful pass started,
// so the test can tell a real resume from a silent restart.
func ckptCountJob(t *testing.T, limit, crashAt int) Job {
	t.Helper()
	spec := NewSpec("count").Add("limit", limit)
	tag := spec.Canonical()
	crashed := false
	run := func(seed uint64, rc ckpt.RunConfig) (any, error) {
		start := 0
		if c := rc.Load(tag); c != nil {
			if b, ok := c.Section("n"); ok {
				if err := json.Unmarshal(b, &start); err != nil {
					start = 0
				}
			}
		}
		w := ckpt.NewWriter(rc)
		for n := start; n < limit; n++ {
			if rc.Enabled() && n%10 == 0 {
				c := ckpt.New(tag, uint64(n))
				b, _ := json.Marshal(n)
				c.Add("n", b)
				if err := w.Save(c); err != nil {
					t.Errorf("checkpoint save: %v", err)
				}
			}
			if n == crashAt && !crashed {
				crashed = true
				panic("synthetic crash")
			}
		}
		rc.Discard()
		return map[string]int{"start": start, "end": limit}, nil
	}
	return Job{
		Spec:    spec,
		Run:     func(seed uint64) (any, error) { return run(seed, ckpt.RunConfig{}) },
		RunCkpt: run,
	}
}

// TestRunCkptResumesAfterPanic: with Checkpoint options set, the retry of a
// panicked attempt resumes from the last persisted checkpoint instead of
// starting over.
func TestRunCkptResumesAfterPanic(t *testing.T) {
	job := ckptCountJob(t, 100, 55)
	opts := Serial()
	opts.Retries = 1
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Every: 1}
	res := Run([]Job{job}, opts)[0]
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one crash, one resume)", res.Attempts)
	}
	got := res.Value.(map[string]int)
	if got["start"] != 50 {
		t.Errorf("retry started at %d, want 50 (the last checkpoint before the crash)", got["start"])
	}
}

// TestRunCkptFirstAttemptFresh: without CheckpointOptions.Resume, a first
// attempt ignores any stale checkpoint file on disk; with it, the first
// attempt resumes (the process-restart case).
func TestRunCkptFirstAttemptFresh(t *testing.T) {
	dir := t.TempDir()
	job := ckptCountJob(t, 100, -1) // never crashes
	// Plant a checkpoint where the runner will look for this job.
	path := filepath.Join(dir, ckptPathName(job))
	c := ckpt.New(job.Spec.Canonical(), 30)
	b, _ := json.Marshal(30)
	c.Add("n", b)
	if err := ckpt.WriteFile(path, c); err != nil {
		t.Fatal(err)
	}

	opts := Serial()
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1}
	res := Run([]Job{job}, opts)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Value.(map[string]int)["start"]; got != 0 {
		t.Errorf("fresh first attempt started at %d, want 0", got)
	}

	if err := ckpt.WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint.Resume = true
	res = Run([]Job{job}, opts)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Value.(map[string]int)["start"]; got != 30 {
		t.Errorf("resumed first attempt started at %d, want 30", got)
	}
}

// ckptPathName mirrors CheckpointOptions.runConfig's file naming.
func ckptPathName(j Job) string {
	hash := fmt.Sprintf("%016x", j.Spec.Hash())
	rc := CheckpointOptions{Dir: "", Every: 1}.runConfig(hash, j.Spec.Seed(), false)
	return filepath.Base(rc.Path)
}
