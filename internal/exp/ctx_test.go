package exp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelStopsScheduling verifies that cancelling the RunCtx context
// promptly stops new jobs from being scheduled: jobs block until cancelled,
// and after the cancellation only the jobs already handed to workers have
// run — everything else is a typed cancelled point that never executed.
func TestCancelStopsScheduling(t *testing.T) {
	const njobs = 32
	const workers = 2
	var started atomic.Int32
	release := make(chan struct{})
	mk := func(i int) Job {
		return Job{Spec: NewSpec("slow").Add("i", i), Run: func(uint64) (any, error) {
			started.Add(1)
			<-release
			return "done", nil
		}}
	}
	var jobs []Job
	for i := 0; i < njobs; i++ {
		jobs = append(jobs, mk(i))
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the pool start its first wave, then cancel and unblock.
		for started.Load() < workers {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	rs := RunCtx(ctx, jobs, Options{Parallelism: workers})

	// The workers plus at most one handed-off index each may have started;
	// cancellation must keep the rest from ever running.
	if n := started.Load(); int(n) > 2*workers {
		t.Errorf("cancellation did not stop scheduling: %d of %d jobs started", n, njobs)
	}
	cancelledPoints := 0
	for i, r := range rs {
		if r.Spec == "" {
			t.Fatalf("result %d not filled in", i)
		}
		var ec *ErrCancelled
		if errors.As(r.Err, &ec) {
			cancelledPoints++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("cancelled point %d does not unwrap to context.Canceled: %v", i, r.Err)
			}
		}
	}
	if cancelledPoints < njobs-2*workers {
		t.Errorf("only %d of %d points reported cancelled", cancelledPoints, njobs)
	}
}

// TestCancelDoesNotPoisonCache verifies a cancelled computation is dropped
// from the cache so a later run of the same spec recomputes and succeeds.
func TestCancelDoesNotPoisonCache(t *testing.T) {
	cache := NewCache()
	blocker := make(chan struct{})
	job := Job{Spec: NewSpec("poison"), Run: func(uint64) (any, error) {
		select {
		case <-blocker:
		case <-time.After(5 * time.Second):
		}
		return "ok", nil
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rs := RunCtx(ctx, []Job{job}, Options{Parallelism: 1, Cache: cache})
	close(blocker)
	var ec *ErrCancelled
	if !errors.As(rs[0].Err, &ec) {
		t.Fatalf("first run not cancelled: %+v", rs[0])
	}

	// Same spec, fresh context: must recompute instead of replaying the
	// cached cancellation.
	fresh := Job{Spec: NewSpec("poison"), Run: func(uint64) (any, error) { return "ok", nil }}
	rs = Run([]Job{fresh}, Options{Parallelism: 1, Cache: cache})
	if rs[0].Err != nil || rs[0].Value != "ok" {
		t.Fatalf("cancelled computation poisoned the cache: %+v", rs[0])
	}
}

// TestCancelledBackoffInterrupted verifies retry backoff waits are cut short
// by cancellation instead of sleeping out their full schedule.
func TestCancelledBackoffInterrupted(t *testing.T) {
	failing := Job{Spec: NewSpec("retrying"), Run: func(uint64) (any, error) {
		return nil, errors.New("transient")
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rs := RunCtx(ctx, []Job{failing}, Options{Parallelism: 1, Retries: 10, Backoff: time.Hour})
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("backoff not interrupted: run took %v", wall)
	}
	var ec *ErrCancelled
	if !errors.As(rs[0].Err, &ec) {
		t.Fatalf("want cancelled result, got %+v", rs[0])
	}
}

// TestCacheSeedRangeForget covers the persistence-support surface.
func TestCacheSeedRangeForget(t *testing.T) {
	c := NewCache()
	if !c.Seed("a", 1) {
		t.Fatal("seeding empty key failed")
	}
	if c.Seed("a", 2) {
		t.Fatal("seed overwrote an existing entry")
	}
	v, hit, err := c.Do("a", func() (any, error) { t.Fatal("seeded key recomputed"); return nil, nil })
	if v != 1 || !hit || err != nil {
		t.Fatalf("Do on seeded key = (%v, %v, %v), want (1, true, nil)", v, hit, err)
	}
	c.Do("bad", func() (any, error) { return nil, errors.New("boom") })
	got := map[string]any{}
	c.Range(func(k string, v any) { got[k] = v })
	if len(got) != 1 || got["a"] != 1 {
		t.Fatalf("Range visited %v, want only a=1 (errors skipped)", got)
	}
	c.Forget("a")
	if _, hit, _ := c.Do("a", func() (any, error) { return 3, nil }); hit {
		t.Fatal("Forget did not drop the entry")
	}
}
