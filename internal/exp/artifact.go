package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"anton2/internal/ckpt"
)

// ArtifactFile is the on-disk JSON schema of one sweep: <dir>/<name>.json.
type ArtifactFile struct {
	Name string `json:"name"`
	// WrittenAt is wall-clock metadata (RFC 3339); excluded, like all
	// wall-time fields, from the canonical form used for determinism
	// comparisons.
	WrittenAt string   `json:"written_at,omitempty"`
	Results   []Result `json:"results"`
}

// WriteArtifacts writes the sweep's results as pretty-printed JSON under
// dir, creating it if needed, and returns the file path.
func WriteArtifacts(dir, name string, results []Result) (string, error) {
	return WriteJSON(dir, name, ArtifactFile{
		Name:      name,
		WrittenAt: time.Now().UTC().Format(time.RFC3339),
		Results:   results,
	})
}

// WriteJSON marshals v as pretty-printed JSON to <dir>/<name>.json, creating
// dir if needed, and returns the file path. It is the shared artifact writer
// for sweep results and telemetry reports. The replace is atomic (temp file +
// fsync + rename): a crash mid-write leaves either the previous artifact or
// the new one, never a truncated mixture.
func WriteJSON(dir, name string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("exp: artifact dir: %w", err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: marshal artifacts: %w", err)
	}
	path := filepath.Join(dir, name+".json")
	if err := ckpt.AtomicWriteFile(path, append(b, '\n')); err != nil {
		return "", fmt.Errorf("exp: write artifacts: %w", err)
	}
	return path, nil
}

// MarshalCanonical renders results as JSON with every field that may vary
// between otherwise-identical runs zeroed: wall time, attempt counts, and
// cache-hit flags (a point may be computed or served from cache depending on
// worker timing). Serial and parallel executions of the same jobs must
// produce byte-identical canonical JSON.
func MarshalCanonical(results []Result) ([]byte, error) {
	canon := make([]Result, len(results))
	copy(canon, results)
	for i := range canon {
		canon[i].WallMS = 0
		canon[i].Attempts = 0
		canon[i].Cached = false
	}
	return json.MarshalIndent(ArtifactFile{Name: "canonical", Results: canon}, "", "  ")
}
