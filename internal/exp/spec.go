// Package exp orchestrates sweeps of independent experiments: it fans jobs
// out over a bounded worker pool, derives each job's random seed from a
// canonical hash of its spec (never from scheduling order, so parallel and
// serial runs produce bit-identical results), memoizes results keyed by the
// same hash, isolates per-job failures (deadlocks, panics) into reported
// failed points, and writes structured JSON artifacts per sweep.
//
// The package is domain-agnostic: internal/core wraps its figure runners
// (throughput, blend, latency, energy) into exp.Jobs, and cmd/anton2bench
// drives whole figures through one pool.
package exp

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Spec canonically identifies one experiment point: a kind plus an ordered
// list of key=value parameters. Two specs with the same canonical string are
// the same experiment — they hash to the same seed and share a cache slot —
// so every parameter that influences the result must be added.
type Spec struct {
	kind  string
	pairs []string
}

// NewSpec starts a spec of the given kind (e.g. "throughput", "blend").
func NewSpec(kind string) *Spec { return &Spec{kind: kind} }

// Add appends one parameter. Values are rendered canonically: floats via
// strconv 'g' formatting, everything else via fmt.Sprint (types with String
// methods render through them).
func (s *Spec) Add(key string, val any) *Spec {
	var v string
	switch x := val.(type) {
	case float64:
		v = strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		v = strconv.FormatFloat(float64(x), 'g', -1, 32)
	default:
		v = fmt.Sprint(val)
	}
	s.pairs = append(s.pairs, key+"="+v)
	return s
}

// Kind returns the spec's experiment kind.
func (s *Spec) Kind() string { return s.kind }

// Canonical returns the full canonical encoding, e.g.
// "blend{shape=4x4x2 weights=Both f=0.5 batch=96}".
func (s *Spec) Canonical() string {
	return s.kind + "{" + strings.Join(s.pairs, " ") + "}"
}

// Hash returns the FNV-64a hash of the canonical encoding.
func (s *Spec) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Canonical()))
	return h.Sum64()
}

// Seed derives the job's deterministic random seed from the spec hash. The
// hash is diffused through a SplitMix64 step so that specs differing in a
// single parameter still yield well-separated seeds.
func (s *Spec) Seed() uint64 {
	z := s.Hash() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
