package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"anton2/internal/ckpt"
	"anton2/internal/sim"
)

// Job is one independent experiment: a spec identifying it and a runner
// executing it. Run receives the spec-derived seed; it must thread that seed
// into every random stream it creates so results depend only on the spec,
// never on which worker runs the job or when.
//
// RunCkpt, when non-nil, is the checkpoint-aware variant: given a
// ckpt.RunConfig it must persist resumable state at the configured interval
// and, when the config asks for a resume, produce a result bit-identical to
// an uninterrupted Run. Jobs without RunCkpt simply restart from scratch on
// retry.
type Job struct {
	Spec    *Spec
	Run     func(seed uint64) (any, error)
	RunCkpt func(seed uint64, rc ckpt.RunConfig) (any, error)
}

// Cycler is implemented by result values that know their simulated cycle
// count; Run copies it into Result.Cycles for the artifacts.
type Cycler interface{ SimCycles() uint64 }

// Options configures a sweep execution.
type Options struct {
	// Name labels progress lines and artifacts (e.g. "fig9").
	Name string
	// Parallelism bounds the worker pool; <= 0 means runtime.GOMAXPROCS.
	Parallelism int
	// Retries is the number of additional attempts after a failed run
	// (error or panic). Deterministic failures fail every attempt; the
	// bound keeps them from stalling the sweep.
	Retries int
	// AttemptTimeout, when positive, bounds each attempt's wall-clock
	// time; an attempt past the deadline counts as a failed (degraded)
	// attempt and the retry policy applies. The runaway attempt's
	// goroutine is abandoned, so results already recorded stay valid.
	AttemptTimeout time.Duration
	// Backoff is the wait before the first retry, doubling on each
	// further retry (zero = retry immediately).
	Backoff time.Duration
	// Cache, when non-nil, memoizes results by spec canonical string so
	// repeated sweeps (or duplicate points within one) skip the work.
	Cache *Cache
	// Progress, when non-nil, receives one line per completed job
	// (conventionally os.Stderr).
	Progress io.Writer
	// OnResult, when non-nil, receives every completed result (including
	// failed and cancelled points). Calls are serialized by the pool, so
	// the callback needs no locking of its own, but it runs on worker
	// goroutines and must not block.
	OnResult func(Result)
	// Checkpoint enables attempt-level crash recovery for jobs that
	// provide RunCkpt.
	Checkpoint CheckpointOptions
}

// CheckpointOptions configures per-attempt checkpointing: each job writes
// resumable state under Dir every Every cycles, and a retried attempt (after
// a panic, error, or attempt timeout) resumes from the last checkpoint
// instead of starting over. Resume additionally resumes first attempts — the
// whole-process restart case, where a previous invocation's checkpoints are
// still on disk. The zero value disables checkpointing.
type CheckpointOptions struct {
	Dir         string
	Every       uint64
	MinInterval time.Duration
	Resume      bool
}

// runConfig derives one attempt's checkpoint config. The file name pins
// (spec hash, seed), and the checkpoint tag pins the full canonical spec, so
// a stale file from a different run sharing the path is ignored on load.
func (c CheckpointOptions) runConfig(hash string, seed uint64, retried bool) ckpt.RunConfig {
	return ckpt.RunConfig{
		Path:        filepath.Join(c.Dir, fmt.Sprintf("%s-%016x.ckpt", hash, seed)),
		Every:       c.Every,
		MinInterval: c.MinInterval,
		Resume:      c.Resume || retried,
	}
}

// Serial returns options that run jobs one at a time in order.
func Serial() Options { return Options{Parallelism: 1} }

// Parallel returns options with the given worker-pool size (0 = GOMAXPROCS).
func Parallel(workers int) Options { return Options{Parallelism: workers} }

// Result is the structured outcome of one job, in the job's input position
// regardless of completion order.
type Result struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	Spec  string `json:"spec"`
	// Hash is the spec hash (hex); Seed the seed derived from it.
	Hash string `json:"hash"`
	Seed uint64 `json:"seed"`
	// Value is the job's returned measurement (nil on failure).
	Value any `json:"value,omitempty"`
	// Err preserves the job's error; Error is its string form for JSON.
	Err      error  `json:"-"`
	Error    string `json:"error,omitempty"`
	Deadlock bool   `json:"deadlock,omitempty"`
	// Degraded marks a graceful-degradation outcome: the value or the
	// error reported Degraded() true (permanent link faults survived by
	// rerouting, a retry budget exhausted, or an attempt deadline hit).
	Degraded bool `json:"degraded,omitempty"`
	// Cycles is the simulated cycle count when the value reports one.
	Cycles   uint64  `json:"cycles,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	WallMS   float64 `json:"wall_ms"`
}

// Run executes the jobs over a worker pool and returns one Result per job in
// input order. A job that fails (including by panic or simulated deadlock)
// becomes a failed point; the rest of the sweep still completes.
func Run(jobs []Job, opts Options) []Result {
	return RunCtx(context.Background(), jobs, opts)
}

// RunCtx is Run under a context: when ctx is cancelled the pool stops
// scheduling new jobs promptly, fills every unscheduled point with a typed
// *ErrCancelled failure, and returns once the in-flight jobs finish their
// current attempt (retry backoff waits are interrupted). Cancelled points
// are never written to the cache, so a later run of the same specs
// recomputes them.
func RunCtx(ctx context.Context, jobs []Job, opts Options) []Result {
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))

	var mu sync.Mutex // guards progress output, OnResult, completion count
	done := 0
	report := func(r *Result) {
		if opts.Progress == nil && opts.OnResult == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress != nil {
			status := "ok"
			var cancelled *ErrCancelled
			switch {
			case r.Deadlock:
				status = "DEADLOCK"
			case errors.As(r.Err, &cancelled):
				status = "cancelled"
			case r.Err != nil && r.Degraded:
				status = "DEGRADED"
			case r.Err != nil:
				status = "FAILED"
			case r.Cached:
				status = "cached"
			case r.Degraded:
				status = "degraded"
			}
			name := opts.Name
			if name == "" {
				name = "exp"
			}
			fmt.Fprintf(opts.Progress, "%s: [%*d/%d] %-8s %s (%.0f ms)\n",
				name, digits(len(jobs)), done, len(jobs), status, truncate(r.Spec, 96), r.WallMS)
			if r.Err != nil {
				fmt.Fprintf(opts.Progress, "%s:   error: %v\n", name, r.Err)
			}
		}
		if opts.OnResult != nil {
			opts.OnResult(*r)
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					results[i] = cancelledResult(i, jobs[i], err)
				} else {
					results[i] = runOne(ctx, i, jobs[i], opts)
				}
				report(&results[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Every job not yet handed to a worker becomes a cancelled
			// point; the workers drain whatever they already started.
			for j := i; j < len(jobs); j++ {
				results[j] = cancelledResult(j, jobs[j], ctx.Err())
				report(&results[j])
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// cancelledResult fills one never-run point after cancellation.
func cancelledResult(i int, j Job, cause error) Result {
	err := &ErrCancelled{Cause: cause}
	return Result{
		Index: i,
		Kind:  j.Spec.Kind(),
		Spec:  j.Spec.Canonical(),
		Hash:  fmt.Sprintf("%016x", j.Spec.Hash()),
		Seed:  j.Spec.Seed(),
		Err:   err,
		Error: err.Error(),
	}
}

// runOne executes a single job with retry, panic isolation, and caching.
func runOne(ctx context.Context, i int, j Job, opts Options) Result {
	r := Result{
		Index: i,
		Kind:  j.Spec.Kind(),
		Spec:  j.Spec.Canonical(),
		Hash:  fmt.Sprintf("%016x", j.Spec.Hash()),
		Seed:  j.Spec.Seed(),
	}
	start := time.Now()
	useCkpt := opts.Checkpoint.Dir != "" && opts.Checkpoint.Every > 0 && j.RunCkpt != nil
	attempts := 0
	attempt := func() (val any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("exp: job %s panicked: %v", r.Kind, p)
			}
		}()
		if useCkpt {
			// attempts was already incremented for this attempt, so > 1
			// means a retry: resume from whatever the failed attempt
			// persisted rather than repeating its work.
			return j.RunCkpt(r.Seed, opts.Checkpoint.runConfig(r.Hash, r.Seed, attempts > 1))
		}
		return j.Run(r.Seed)
	}
	if opts.AttemptTimeout > 0 || ctx.Done() != nil {
		inner := attempt
		limit := opts.AttemptTimeout
		if limit <= 0 {
			// Cancellation-only wrapping: no deadline, but a cancelled
			// context still abandons the in-flight attempt promptly.
			limit = time.Duration(1<<62 - 1)
		}
		attempt = func() (any, error) {
			type outcome struct {
				val any
				err error
			}
			ch := make(chan outcome, 1)
			go func() {
				v, e := inner()
				ch <- outcome{val: v, err: e}
			}()
			timer := time.NewTimer(limit)
			defer timer.Stop()
			select {
			case o := <-ch:
				return o.val, o.err
			case <-timer.C:
				return nil, &ErrAttemptTimeout{Kind: r.Kind, Limit: opts.AttemptTimeout}
			case <-ctx.Done():
				return nil, &ErrCancelled{Cause: ctx.Err()}
			}
		}
	}
	tryAll := func() (any, error) {
		var val any
		var err error
		for a := 0; a <= opts.Retries; a++ {
			if a > 0 && opts.Backoff > 0 {
				wait := time.NewTimer(opts.Backoff << (a - 1))
				select {
				case <-wait.C:
				case <-ctx.Done():
					wait.Stop()
					return nil, &ErrCancelled{Cause: ctx.Err()}
				}
			}
			attempts++
			if val, err = attempt(); err == nil {
				return val, nil
			}
			var cancelled *ErrCancelled
			if errors.As(err, &cancelled) {
				return nil, err // retrying a cancelled run cannot help
			}
		}
		return nil, err
	}
	var val any
	var err error
	if opts.Cache != nil {
		val, r.Cached, err = opts.Cache.Do(r.Spec, tryAll)
		// A cancelled computation reflects this run's deadline, not the
		// spec's deterministic outcome; drop it so later runs recompute.
		var cancelled *ErrCancelled
		if errors.As(err, &cancelled) {
			opts.Cache.Forget(r.Spec)
		}
	} else {
		val, err = tryAll()
	}
	r.Attempts = attempts
	r.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		r.Err = err
		r.Error = err.Error()
		var dl *sim.ErrDeadlock
		r.Deadlock = errors.As(err, &dl)
		var dg Degrader
		r.Degraded = errors.As(err, &dg) && dg.Degraded()
		return r
	}
	r.Value = val
	if c, ok := val.(Cycler); ok {
		r.Cycles = c.SimCycles()
	}
	if dg, ok := val.(Degrader); ok && dg.Degraded() {
		r.Degraded = true
	}
	return r
}

// Degrader is implemented by values and errors that classify their outcome
// as graceful degradation rather than clean success or hard failure.
type Degrader interface{ Degraded() bool }

// ErrAttemptTimeout reports an attempt that exceeded Options.AttemptTimeout.
type ErrAttemptTimeout struct {
	Kind  string
	Limit time.Duration
}

func (e *ErrAttemptTimeout) Error() string {
	return fmt.Sprintf("exp: %s attempt exceeded %v deadline", e.Kind, e.Limit)
}

// Degraded marks the timeout as a degradation outcome (the run was bounded,
// not broken).
func (e *ErrAttemptTimeout) Degraded() bool { return true }

// ErrCancelled reports a point that never ran (or was abandoned mid-attempt)
// because the RunCtx context was cancelled. It unwraps to the context's
// error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both work.
type ErrCancelled struct{ Cause error }

func (e *ErrCancelled) Error() string {
	return fmt.Sprintf("exp: run cancelled: %v", e.Cause)
}

// Unwrap exposes the context error that triggered the cancellation.
func (e *ErrCancelled) Unwrap() error { return e.Cause }

// FirstErr returns the first failed result's error annotated with its spec,
// or nil when every point succeeded.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Spec, r.Err)
		}
	}
	return nil
}

// Failed counts failed points.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
