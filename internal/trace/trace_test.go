package trace

import (
	"bytes"
	"strings"
	"testing"

	"anton2/internal/topo"
)

func sampleHeader() Header {
	return Header{Format: Format, Version: Version, Shape: "4x4x2", Workload: "h1.8.4-m1.2-r2-t1", Seed: 7}
}

func sampleTrace() *Trace {
	return &Trace{
		Header: sampleHeader(),
		Events: []Event{
			{Timestep: 0, Phase: 0, Cycle: 0, Kind: KindUnicast, SrcNode: 0, SrcEp: 1,
				DstNode: 3, DstEp: 4, Class: 0, Size: 1, Order: "XYZ", Slice: 1, Ties: [topo.NumDims]int8{1, -1, 1}},
			{Timestep: 0, Phase: 1, Cycle: 120, Kind: KindMulticast, SrcNode: 2, SrcEp: 1, Group: 5},
			{Timestep: 0, Phase: 2, Cycle: 300, Kind: KindUnicast, SrcNode: 31, SrcEp: 22,
				DstNode: 0, DstEp: 0, Class: 1, Size: 2, Order: "ZYX", Slice: 0, Ties: [topo.NumDims]int8{-1, -1, -1}},
		},
	}
}

// TestRoundTrip: a valid trace survives encode→decode→encode byte-identically.
func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	enc, err := tr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Header != tr.Header || len(dec.Events) != len(tr.Events) {
		t.Fatalf("decoded trace differs: %+v", dec)
	}
	for i := range tr.Events {
		if dec.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: got %+v want %+v", i, dec.Events[i], tr.Events[i])
		}
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestRecorder: recorded events come back in order via Trace().
func TestRecorder(t *testing.T) {
	rec := NewRecorder(sampleHeader())
	want := sampleTrace().Events
	for _, e := range want {
		rec.Record(e)
	}
	if rec.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", rec.Len(), len(want))
	}
	if _, err := rec.Trace().Encode(); err != nil {
		t.Fatalf("Encode recorded trace: %v", err)
	}
	for i, e := range rec.Trace().Events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
}

// TestDecodeRejects: malformed inputs produce errors, not panics.
func TestDecodeRejects(t *testing.T) {
	valid := sampleTrace()
	enc, err := valid.Encode()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(enc), "\n"), "\n")

	cases := map[string]string{
		"empty":              "",
		"junk header":        "not json\n",
		"wrong format":       `{"format":"other","version":1,"shape":"4x4x2","seed":7}` + "\n",
		"wrong version":      `{"format":"anton2-trace","version":2,"shape":"4x4x2","seed":7}` + "\n",
		"bad shape":          `{"format":"anton2-trace","version":1,"shape":"4x4","seed":7}` + "\n",
		"non-canonical":      `{"format":"anton2-trace","version":1,"shape":"04x4x2","seed":7}` + "\n",
		"unknown field":      `{"format":"anton2-trace","version":1,"shape":"4x4x2","seed":7,"x":1}` + "\n",
		"junk event":         lines[0] + "\nnope\n",
		"blank line":         lines[0] + "\n\n" + lines[1] + "\n",
		"bad kind":           lines[0] + "\n" + strings.Replace(lines[1], `"k":"u"`, `"k":"q"`, 1) + "\n",
		"bad order":          lines[0] + "\n" + strings.Replace(lines[1], `"or":"XYZ"`, `"or":"XXY"`, 1) + "\n",
		"node out of range":  lines[0] + "\n" + strings.Replace(lines[1], `"dn":3`, `"dn":99`, 1) + "\n",
		"phase regression":   lines[0] + "\n" + lines[2] + "\n" + lines[1] + "\n",
		"cycle regression":   lines[0] + "\n" + strings.Replace(lines[2], `"c":120`, `"c":999`, 1) + "\n" + lines[3] + "\n",
		"mcast with unicast": lines[0] + "\n" + strings.Replace(lines[2], `"sz":0`, `"sz":1`, 1) + "\n",
	}
	for name, input := range cases {
		if _, err := Decode([]byte(input)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, input)
		}
	}
}

// TestEncodeRejectsInvalid: Encode applies the same validation as Decode.
func TestEncodeRejectsInvalid(t *testing.T) {
	tr := sampleTrace()
	tr.Events[0].Size = 99
	if _, err := tr.Encode(); err == nil {
		t.Fatal("Encode accepted an event with a 99-flit size")
	}
}

// TestParseDimOrder: every registered order round-trips through its string
// form; unknown strings are rejected.
func TestParseDimOrder(t *testing.T) {
	for _, o := range topo.AllDimOrders {
		got, ok := ParseDimOrder(o.String())
		if !ok || got != o {
			t.Fatalf("ParseDimOrder(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := ParseDimOrder("ABC"); ok {
		t.Fatal("ParseDimOrder accepted ABC")
	}
}
