// Package trace defines the recorded-traffic format: a versioned,
// deterministic JSON-lines encoding of every logical injection in a run.
// The first line is a Header identifying the format version, the machine
// shape, and the workload that produced the capture; every following line is
// one Event in injection order. The telemetry collector can emit events as
// packets enter the fabric (telemetry.Options.InjectionSink), the workload
// layer records them with phase context, and both traffic.Replay and
// workload.ReplayTrace consume them — the simulator captures and replays its
// own traffic.
//
// Format v1 guarantees:
//   - Encoding is deterministic: the same Trace always yields the same bytes.
//   - Events are ordered: (timestep, phase) is lexicographically nondecreasing
//     and the injection cycle is nondecreasing.
//   - Decode validates structure and ranges against the header's shape and
//     never panics on arbitrary input; Encode∘Decode is idempotent.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"anton2/internal/packet"
	"anton2/internal/topo"
)

// Format and Version identify trace files produced by this package. Version
// bumps whenever the line schema changes incompatibly.
const (
	Format  = "anton2-trace"
	Version = 1
)

// Event kinds.
const (
	KindUnicast   = "u"
	KindMulticast = "m"
)

// Header is the first line of a trace file.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Shape is the torus shape the capture ran on ("8x4x2"); replay
	// requires an identical shape.
	Shape string `json:"shape"`
	// Workload optionally names the workload spec that generated the
	// traffic (workload.Spec.Canonical()).
	Workload string `json:"workload,omitempty"`
	// Seed is the machine seed of the recorded run.
	Seed uint64 `json:"seed"`
}

// Event is one logical injection. Unicast events carry the full pre-route
// choice set (dimension order, slice, tie-breaks) so replay reconstructs the
// exact same route.State; multicast events carry only the group id, since the
// compiled table determines the tree deterministically.
type Event struct {
	Timestep int    `json:"t"`
	Phase    int    `json:"p"`
	Cycle    uint64 `json:"c"`
	Kind     string `json:"k"`
	SrcNode  int    `json:"sn"`
	SrcEp    int    `json:"se"`
	// Unicast fields (zero for multicast events).
	DstNode int                `json:"dn"`
	DstEp   int                `json:"de"`
	Class   int                `json:"cl"`
	Size    int                `json:"sz"`
	Order   string             `json:"or,omitempty"`
	Slice   int                `json:"sl"`
	Ties    [topo.NumDims]int8 `json:"ti"`
	// Multicast group id (KindMulticast only).
	Group int `json:"g"`
}

// Trace is a decoded capture: header plus events in injection order.
type Trace struct {
	Header Header
	Events []Event
}

// ParseDimOrder resolves a dimension-order string like "XYZ" to its
// topo.DimOrder.
func ParseDimOrder(s string) (topo.DimOrder, bool) {
	for _, o := range topo.AllDimOrders {
		if o.String() == s {
			return o, true
		}
	}
	return topo.DimOrder{}, false
}

// ParseShape parses a canonical "KxKxK" shape string.
func ParseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if n, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); n != 3 || err != nil {
		return topo.TorusShape{}, fmt.Errorf("trace: malformed shape %q", s)
	}
	sh := topo.Shape3(kx, ky, kz)
	if sh.String() != s {
		return topo.TorusShape{}, fmt.Errorf("trace: non-canonical shape %q", s)
	}
	if err := sh.Validate(); err != nil {
		return topo.TorusShape{}, err
	}
	return sh, nil
}

func (h Header) validate() (topo.TorusShape, error) {
	if h.Format != Format {
		return topo.TorusShape{}, fmt.Errorf("trace: format %q, want %q", h.Format, Format)
	}
	if h.Version != Version {
		return topo.TorusShape{}, fmt.Errorf("trace: version %d, want %d", h.Version, Version)
	}
	return ParseShape(h.Shape)
}

func (e *Event) validate(shape topo.TorusShape) error {
	nodes := shape.NumNodes()
	if e.Timestep < 0 || e.Phase < 0 {
		return fmt.Errorf("negative timestep/phase (%d, %d)", e.Timestep, e.Phase)
	}
	if e.SrcNode < 0 || e.SrcNode >= nodes || e.SrcEp < 0 || e.SrcEp >= topo.NumEndpoints {
		return fmt.Errorf("source n%d.E%d outside %s", e.SrcNode, e.SrcEp, shape)
	}
	switch e.Kind {
	case KindUnicast:
		if e.DstNode < 0 || e.DstNode >= nodes || e.DstEp < 0 || e.DstEp >= topo.NumEndpoints {
			return fmt.Errorf("destination n%d.E%d outside %s", e.DstNode, e.DstEp, shape)
		}
		if e.Class != 0 && e.Class != 1 {
			return fmt.Errorf("class %d, want request (0) or reply (1)", e.Class)
		}
		if e.Size < 1 || e.Size > packet.MaxFlits {
			return fmt.Errorf("size %d flits outside [1, %d]", e.Size, packet.MaxFlits)
		}
		if _, ok := ParseDimOrder(e.Order); !ok {
			return fmt.Errorf("unknown dimension order %q", e.Order)
		}
		if e.Slice < 0 || e.Slice >= topo.NumSlices {
			return fmt.Errorf("slice %d outside [0, %d)", e.Slice, topo.NumSlices)
		}
		for d, tie := range e.Ties {
			if tie < -1 || tie > 1 {
				return fmt.Errorf("tie-break %d along %s outside [-1, 1]", tie, topo.Dim(d))
			}
		}
		if e.Group != 0 {
			return fmt.Errorf("unicast event carries group %d", e.Group)
		}
	case KindMulticast:
		if e.Class != 0 && e.Class != 1 {
			return fmt.Errorf("class %d, want request (0) or reply (1)", e.Class)
		}
		if e.Group < 0 {
			return fmt.Errorf("negative multicast group %d", e.Group)
		}
		if e.DstNode != 0 || e.DstEp != 0 || e.Size != 0 || e.Order != "" || e.Slice != 0 || e.Ties != ([topo.NumDims]int8{}) {
			return errors.New("multicast event carries unicast fields")
		}
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}

func (t *Trace) validate() error {
	shape, err := t.Header.validate()
	if err != nil {
		return err
	}
	prev := Event{}
	for i := range t.Events {
		e := &t.Events[i]
		if err := e.validate(shape); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if i > 0 {
			if e.Timestep < prev.Timestep || (e.Timestep == prev.Timestep && e.Phase < prev.Phase) {
				return fmt.Errorf("trace: event %d: phase order regresses (t%d p%d after t%d p%d)",
					i, e.Timestep, e.Phase, prev.Timestep, prev.Phase)
			}
			if e.Cycle < prev.Cycle {
				return fmt.Errorf("trace: event %d: cycle %d before %d", i, e.Cycle, prev.Cycle)
			}
		}
		prev = *e
	}
	return nil
}

// Encode serializes the trace to its canonical JSON-lines form. Encoding a
// valid trace is deterministic: the same Trace always yields the same bytes.
func (t *Trace) Encode() ([]byte, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(t.Header); err != nil {
		return nil, err
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeLine strictly unmarshals one JSON-lines record: unknown fields and
// trailing data are errors.
func decodeLine(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after record")
	}
	return nil
}

// Decode parses and validates a trace file. It never panics on arbitrary
// input, and decoded traces re-encode to a canonical form: for any input x
// accepted by Decode, Encode(Decode(x)) is a fixed point of the round trip.
func Decode(data []byte) (*Trace, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, errors.New("trace: empty input")
	}
	t := &Trace{}
	if err := decodeLine(sc.Bytes(), &t.Header); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	for sc.Scan() {
		var e Event
		if err := decodeLine(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(t.Events), err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FromPacket captures a unicast injection as a trace event with no phase
// context (timestep and phase zero) — the form the telemetry injection sink
// emits. The packet's route.State holds its choices post strategy Choose;
// replaying them through the same strategy is stable because Choose is a
// projection onto the strategy's allowed choice set (idempotent), as is the
// fault-avoidance rewrite for an already-avoiding choice.
func FromPacket(p *packet.Packet, now uint64) Event {
	return Event{
		Cycle:   now,
		Kind:    KindUnicast,
		SrcNode: p.Src.Node,
		SrcEp:   p.Src.Ep,
		DstNode: p.Dst.Node,
		DstEp:   p.Dst.Ep,
		Class:   int(p.Route.Class),
		Size:    int(p.Size),
		Order:   p.Route.DimOrder.String(),
		Slice:   int(p.Route.Slice),
		Ties:    p.Route.Ties,
	}
}

// Recorder accumulates events during a run. It is not synchronized: record
// from the coordinating goroutine only (injection happens between engine
// steps, so this is the natural discipline).
type Recorder struct {
	tr Trace
}

// NewRecorder starts a capture with the given header.
func NewRecorder(h Header) *Recorder {
	return &Recorder{tr: Trace{Header: h}}
}

// Record appends one event.
func (r *Recorder) Record(ev Event) { r.tr.Events = append(r.tr.Events, ev) }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.tr.Events) }

// Trace returns the capture accumulated so far. The returned value shares
// storage with the recorder.
func (r *Recorder) Trace() *Trace { return &r.tr }
