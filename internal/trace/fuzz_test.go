package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceCodec feeds arbitrary bytes through Decode — which must never
// panic — and checks the codec's canonical-form contract on everything it
// accepts: Encode(Decode(x)) succeeds and is a fixed point of the round trip.
func FuzzTraceCodec(f *testing.F) {
	if seed, err := sampleTrace().Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"format":"anton2-trace","version":1,"shape":"2x2x2","seed":1}` + "\n"))
	f.Add([]byte(`{"format":"anton2-trace","version":1,"shape":"2x2x2","seed":1}` + "\n" +
		`{"t":0,"p":1,"c":9,"k":"m","sn":1,"se":0,"dn":0,"de":0,"cl":1,"sz":0,"sl":0,"ti":[0,0,0],"g":3}` + "\n"))
	f.Add([]byte("not a trace"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("Encode of accepted trace failed: %v", err)
		}
		tr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of canonical encoding failed: %v\n%s", err, enc)
		}
		enc2, err := tr2.Encode()
		if err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
