// Package check is a pluggable runtime-verification layer for the cycle
// simulator. A Suite of Checkers observes the machine through narrow event
// hooks (inject, clone, send, deliver, free) plus periodic whole-machine
// scans, and records violations of the invariants the paper's correctness
// arguments rest on: flit conservation, credit accounting, monotonic VC
// promotion (Section 2.5), dimension-order progress, and exactly-once
// multicast delivery (Section 2.3).
//
// The package deliberately does not import internal/machine (machine imports
// check); the machine side exposes its state through the Env closure and the
// fabric channel accessors. When checking is disabled the machine holds a nil
// Suite and every hook site is a single predicted branch, so verified and
// unverified runs execute identical simulations.
package check

import (
	"fmt"

	"anton2/internal/fabric"
	"anton2/internal/multicast"
	"anton2/internal/packet"
	"anton2/internal/route"
)

// Event identifies a packet lifecycle observation.
type Event uint8

// Packet lifecycle events, in the order they can occur.
const (
	// EvInject: the packet entered an endpoint adapter's injection queue.
	EvInject Event = iota
	// EvClone: the packet is a fresh multicast branch copy.
	EvClone
	// EvSend: the packet was forwarded onto a channel (ch and vc are set).
	EvSend
	// EvDeliver: the destination endpoint accepted the packet.
	EvDeliver
	// EvFree: the packet was released without delivery (a consumed
	// multicast original).
	EvFree
)

func (e Event) String() string {
	return [...]string{"inject", "clone", "send", "deliver", "free"}[e]
}

// Violation is one recorded invariant failure.
type Violation struct {
	Cycle   uint64
	Checker string
	Msg     string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Checker, v.Msg)
}

// Env exposes the checked machine's state to the checkers.
type Env struct {
	// Route is the machine's routing configuration (scheme, shape, skip
	// policy).
	Route *route.Config
	// Channels lists every fabric channel, indexed by global channel id.
	Channels []*fabric.Channel
	// Queued returns the machine-wide count of packets held in component
	// queues (router VC queues, adapter queues and pending multicast
	// branches, endpoint injection queues). Together with the channels'
	// in-flight counts it forms the conservation census.
	Queued func() int
}

// Checker verifies one invariant. Event is called on the hot path for every
// packet lifecycle event; Scan periodically with the machine otherwise idle
// within the cycle; Finish once at the end of the run. quiesced reports
// whether the network fully drained (no queued or in-flight packets, all
// credits returned) before Finish.
type Checker interface {
	Name() string
	Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64)
	Scan(s *Suite, now uint64)
	Finish(s *Suite, now uint64, quiesced bool)
}

// MulticastObserver is implemented by checkers that track multicast group
// injections.
type MulticastObserver interface {
	MulticastInject(s *Suite, group int, g *multicast.Compiled, now uint64)
}

// NopChecker implements Checker with no-ops, for embedding.
type NopChecker struct{}

// Event implements Checker.
func (NopChecker) Event(*Suite, Event, *packet.Packet, *fabric.Channel, uint8, uint64) {}

// Scan implements Checker.
func (NopChecker) Scan(*Suite, uint64) {}

// Finish implements Checker.
func (NopChecker) Finish(*Suite, uint64, bool) {}

// Options tunes a Suite.
type Options struct {
	// ScanInterval is the cycle period of whole-machine scans (credit
	// bounds, conservation census). 0 means the default of 64; scans also
	// always run at Finish.
	ScanInterval uint64
	// MaxViolations bounds the violations retained verbatim; further
	// failures are counted but not stored. 0 means the default of 16.
	MaxViolations int
}

// Suite fans machine events out to its checkers and collects violations.
type Suite struct {
	env  Env
	opts Options

	checkers  []Checker
	mobs      []MulticastObserver
	varr      []Violation
	vcount    int
	circulate int
}

// NewSuite builds a suite over the given environment. With no checkers it
// uses Standard(env).
func NewSuite(env Env, opts Options, checkers ...Checker) *Suite {
	if opts.ScanInterval == 0 {
		opts.ScanInterval = 64
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = 16
	}
	if len(checkers) == 0 {
		checkers = Standard(env)
	}
	s := &Suite{env: env, opts: opts, checkers: checkers}
	for _, c := range checkers {
		if mo, ok := c.(MulticastObserver); ok {
			s.mobs = append(s.mobs, mo)
		}
	}
	return s
}

// Standard returns the five paper-invariant checkers.
func Standard(env Env) []Checker {
	return []Checker{
		newConservation(env),
		newCredits(env),
		newVCMono(env),
		newDimOrder(env),
		newMcastOnce(env),
	}
}

// Env returns the suite's environment.
func (s *Suite) Env() Env { return s.env }

// Violate records an invariant failure.
func (s *Suite) Violate(checker string, now uint64, format string, args ...any) {
	s.vcount++
	if len(s.varr) < s.opts.MaxViolations {
		s.varr = append(s.varr, Violation{Cycle: now, Checker: checker, Msg: fmt.Sprintf(format, args...)})
	}
}

// Violations returns the retained violations (capped at MaxViolations).
func (s *Suite) Violations() []Violation { return s.varr }

// ViolationCount returns the total violations seen, including unretained.
func (s *Suite) ViolationCount() int { return s.vcount }

// Err returns nil when no invariant failed, or an error naming the first
// violation and the total count.
func (s *Suite) Err() error {
	if s.vcount == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s); first: %s", s.vcount, s.varr[0])
}

// OnInject observes a packet entering an injection queue. Packets marked
// Circulate are accounted as permanently in flight.
func (s *Suite) OnInject(p *packet.Packet, now uint64) {
	if p.Circulate {
		s.circulate++
	}
	s.event(EvInject, p, nil, 0, now)
}

// OnClone observes a fresh multicast branch copy.
func (s *Suite) OnClone(p *packet.Packet, now uint64) { s.event(EvClone, p, nil, 0, now) }

// OnSend observes a packet forwarded onto a channel.
func (s *Suite) OnSend(p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	s.event(EvSend, p, ch, vc, now)
}

// OnDeliver observes a packet accepted at its destination endpoint.
func (s *Suite) OnDeliver(p *packet.Packet, now uint64) { s.event(EvDeliver, p, nil, 0, now) }

// OnFree observes a packet released without delivery.
func (s *Suite) OnFree(p *packet.Packet, now uint64) { s.event(EvFree, p, nil, 0, now) }

// OnMulticastInject observes a multicast group injection at its root.
func (s *Suite) OnMulticastInject(group int, g *multicast.Compiled, now uint64) {
	for _, mo := range s.mobs {
		mo.MulticastInject(s, group, g, now)
	}
}

func (s *Suite) event(ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	for _, c := range s.checkers {
		c.Event(s, ev, p, ch, vc, now)
	}
}

// Cycle runs periodic scans; the machine calls it from the engine's
// AfterStep hook every cycle.
func (s *Suite) Cycle(now uint64) {
	if now%s.opts.ScanInterval != 0 {
		return
	}
	s.scan(now)
}

func (s *Suite) scan(now uint64) {
	for _, c := range s.checkers {
		c.Scan(s, now)
	}
}

// Circulating returns the count of injected packets that loop forever and
// therefore can never drain.
func (s *Suite) Circulating() int { return s.circulate }

// Finish runs a final scan and the end-of-run checks. quiesced reports that
// the network fully drained first.
func (s *Suite) Finish(now uint64, quiesced bool) {
	s.scan(now)
	for _, c := range s.checkers {
		c.Finish(s, now, quiesced)
	}
}
