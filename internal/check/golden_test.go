package check_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"anton2/internal/core"
	"anton2/internal/deadlock"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/wctraffic"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden artifacts under testdata/golden instead of comparing against them")

// headlineGolden pins the repository's headline results to a reviewed JSON
// artifact, so a change to any of them is a visible diff rather than a
// silently shifting number.
type headlineGolden struct {
	// Section 2.4: worst-case mesh-channel load of the best direction
	// order under all-pairs permutation traffic (the paper's 2.0).
	WorstCaseMeshLoad   float64 `json:"worst_case_mesh_load"`
	OptimalOrderCount   int     `json:"optimal_order_count"`
	DefaultOrderOptimal bool    `json:"default_order_optimal"`

	// Section 2.5: static deadlock verdicts, keyed "<scheme>@<shape>".
	DeadlockFree map[string]bool `json:"deadlock_free"`

	// Analytic per-source saturation rates (packets/cycle) on the
	// paper-scale 8x8x8 machine, keyed by traffic pattern.
	SaturationRate8x8x8 map[string]float64 `json:"saturation_rate_8x8x8"`

	// End-to-end MD timestep time (cycles) of the default phased workload
	// on a 2x2x2 machine, keyed by routing strategy. Simulation results are
	// deterministic and engine-invariant, so these are exact pins.
	MDStepCycles map[string]uint64 `json:"mdstep_cycles_2x2x2"`
}

func computeHeadline(t *testing.T) headlineGolden {
	t.Helper()
	g := headlineGolden{
		DeadlockFree:        map[string]bool{},
		SaturationRate8x8x8: map[string]float64{},
		MDStepCycles:        map[string]uint64{},
	}

	winners, best := wctraffic.Best(topo.DefaultChip(), wctraffic.DefaultPolicy)
	g.WorstCaseMeshLoad = best
	g.OptimalOrderCount = len(winners)
	for _, w := range winners {
		if w.Order == topo.DefaultDirOrder {
			g.DefaultOrderOptimal = true
		}
	}

	verdicts := []struct {
		scheme route.Scheme
		shape  topo.TorusShape
	}{
		{route.AntonScheme{}, topo.Shape3(4, 4, 4)},
		{route.BaselineScheme{}, topo.Shape3(4, 4, 4)},
		{route.NoDatelineScheme{}, topo.Shape3(4, 1, 1)},
	}
	for _, v := range verdicts {
		m, err := topo.NewMachine(v.shape)
		if err != nil {
			t.Fatal(err)
		}
		cfg := route.NewConfig(m)
		cfg.Scheme = v.scheme
		key := fmt.Sprintf("%s@%s", v.scheme.Name(), v.shape)
		g.DeadlockFree[key] = deadlock.Verify(cfg, deadlock.Options{}) == nil
	}

	mc := machine.DefaultConfig(topo.Shape3(8, 8, 8))
	for _, p := range []traffic.Pattern{
		traffic.Uniform{}, traffic.NHop{N: 2}, traffic.Tornado(), traffic.BitComplement(),
	} {
		l, err := core.PatternLoads(mc, p)
		if err != nil {
			t.Fatalf("PatternLoads(%s): %v", p.Name(), err)
		}
		g.SaturationRate8x8x8[p.Name()] = l.SaturationRate()
	}

	for _, strat := range route.Strategies() {
		smc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
		smc.Scheme = strat
		pt, err := core.RunMDStepPoint(core.MDStepConfig{Machine: smc})
		if err != nil {
			t.Fatalf("mdstep %s: %v", strat.Name(), err)
		}
		g.MDStepCycles[strat.Name()] = pt.TotalCycles
	}
	return g
}

func relClose(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// TestGoldenHeadlineNumbers recomputes every headline artifact and compares
// it against testdata/golden/headline.json. Run with -update-golden to
// regenerate the file after an intentional change.
func TestGoldenHeadlineNumbers(t *testing.T) {
	got := computeHeadline(t)
	path := filepath.Join("testdata", "golden", "headline.json")

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	var want headlineGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}

	if !relClose(got.WorstCaseMeshLoad, want.WorstCaseMeshLoad) {
		t.Errorf("worst-case mesh load %g, golden %g", got.WorstCaseMeshLoad, want.WorstCaseMeshLoad)
	}
	if got.OptimalOrderCount != want.OptimalOrderCount {
		t.Errorf("optimal order count %d, golden %d", got.OptimalOrderCount, want.OptimalOrderCount)
	}
	if got.DefaultOrderOptimal != want.DefaultOrderOptimal {
		t.Errorf("default order optimal = %v, golden %v", got.DefaultOrderOptimal, want.DefaultOrderOptimal)
	}
	if len(got.DeadlockFree) != len(want.DeadlockFree) {
		t.Errorf("deadlock verdict count %d, golden %d", len(got.DeadlockFree), len(want.DeadlockFree))
	}
	for k, w := range want.DeadlockFree {
		if g, ok := got.DeadlockFree[k]; !ok || g != w {
			t.Errorf("deadlock_free[%q] = %v (present %v), golden %v", k, g, ok, w)
		}
	}
	if len(got.SaturationRate8x8x8) != len(want.SaturationRate8x8x8) {
		t.Errorf("saturation entry count %d, golden %d", len(got.SaturationRate8x8x8), len(want.SaturationRate8x8x8))
	}
	for k, w := range want.SaturationRate8x8x8 {
		if g, ok := got.SaturationRate8x8x8[k]; !ok || !relClose(g, w) {
			t.Errorf("saturation_rate_8x8x8[%q] = %g (present %v), golden %g", k, g, ok, w)
		}
	}
	if len(got.MDStepCycles) != len(want.MDStepCycles) {
		t.Errorf("mdstep entry count %d, golden %d", len(got.MDStepCycles), len(want.MDStepCycles))
	}
	for k, w := range want.MDStepCycles {
		if g, ok := got.MDStepCycles[k]; !ok || g != w {
			t.Errorf("mdstep_cycles_2x2x2[%q] = %d (present %v), golden %d", k, g, ok, w)
		}
	}

	// The headline of headlines, asserted directly so a careless
	// -update-golden cannot silently launder a regression: the optimized
	// direction order holds worst-case mesh load to 2.0 (Figure 4), and
	// the n+1 promotion scheme is deadlock-free while the dateline-less
	// variant is not.
	if got.WorstCaseMeshLoad != 2.0 {
		t.Errorf("worst-case mesh load = %g, paper claims 2.0", got.WorstCaseMeshLoad)
	}
	if !got.DeadlockFree["anton@4x4x4"] || !got.DeadlockFree["baseline-2n@4x4x4"] {
		t.Error("production schemes must verify deadlock-free on 4x4x4")
	}
	if got.DeadlockFree["broken-no-dateline@4x1x1"] {
		t.Error("no-dateline scheme must have a cycle on the radix-4 ring")
	}
}
