package check_test

import (
	"math/rand"
	"strings"
	"testing"

	"anton2/internal/check"
	"anton2/internal/core"
	"anton2/internal/machine"
	"anton2/internal/multicast"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// named is a no-op checker for suite-level unit tests.
type named struct{ check.NopChecker }

func (named) Name() string { return "named" }

// scanCounter counts Scan invocations.
type scanCounter struct {
	check.NopChecker
	scans int
}

func (*scanCounter) Name() string            { return "scan-counter" }
func (c *scanCounter) Scan(*check.Suite, uint64) { c.scans++ }

func TestSuiteViolationAccounting(t *testing.T) {
	s := check.NewSuite(check.Env{}, check.Options{MaxViolations: 2}, named{})
	if err := s.Err(); err != nil {
		t.Fatalf("fresh suite Err = %v, want nil", err)
	}
	for i := 0; i < 5; i++ {
		s.Violate("named", uint64(i), "failure %d", i)
	}
	if got := s.Violations(); len(got) != 2 {
		t.Errorf("retained %d violations, want MaxViolations=2", len(got))
	} else if got[0].String() != "cycle 0: named: failure 0" {
		t.Errorf("violation formatting: %q", got[0])
	}
	if s.ViolationCount() != 5 {
		t.Errorf("ViolationCount = %d, want 5 (unretained still counted)", s.ViolationCount())
	}
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "5 invariant violation") {
		t.Errorf("Err = %v, want the total count and first violation", err)
	}
}

func TestSuiteScanInterval(t *testing.T) {
	c := &scanCounter{}
	s := check.NewSuite(check.Env{}, check.Options{ScanInterval: 64}, c)
	for now := uint64(0); now < 130; now++ {
		s.Cycle(now)
	}
	if c.scans != 3 { // cycles 0, 64, 128
		t.Errorf("scanned %d times over 130 cycles at interval 64, want 3", c.scans)
	}
	s.Finish(130, true)
	if c.scans != 4 {
		t.Errorf("Finish did not run the final scan (scans = %d)", c.scans)
	}
}

// runBurst injects count random uniform packets from every core and runs to
// completion, returning the machine for inspection.
func runBurst(t *testing.T, cfg machine.Config, perCore int) *machine.Machine {
	t.Helper()
	m := machine.MustNew(cfg)
	rng := rand.New(rand.NewSource(11))
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range m.Topo.Chip.CoreEndpoints() {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < perCore; i++ {
				dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	if _, err := m.RunUntilDelivered(total, 2_000_000); err != nil {
		t.Fatalf("burst run: %v (delivered %d/%d)", err, m.Delivered(), total)
	}
	return m
}

// TestBurstRunsClean: a standard verified run reports zero violations and a
// clean FinishChecks.
func TestBurstRunsClean(t *testing.T) {
	cfg := machine.DefaultConfig(topo.Shape3(3, 2, 2))
	cfg.Check = true
	cfg.CheckOptions = check.Options{ScanInterval: 16}
	m := runBurst(t, cfg, 8)
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("FinishChecks: %v", err)
	}
	if n := m.Checks().ViolationCount(); n != 0 {
		t.Fatalf("%d violations on a healthy run: %v", n, m.Checks().Violations())
	}
}

// TestOverCreditFaultCaught plants a test-only credit-counter fault that
// pushes a channel's credit above its buffer capacity; the periodic scan
// must flag it and FinishChecks must fail.
func TestOverCreditFaultCaught(t *testing.T) {
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	m := runBurst(t, cfg, 4)
	m.Chan(0).CorruptCreditsForTest(0, +10)
	err := m.FinishChecks()
	if err == nil {
		t.Fatal("FinishChecks passed despite an over-capacity credit counter")
	}
	vs := m.Checks().Violations()
	if len(vs) == 0 || vs[0].Checker != "credits" {
		t.Fatalf("want a credits violation first, got %v", vs)
	}
	if !strings.Contains(err.Error(), "above buffer capacity") {
		t.Errorf("error does not describe the fault: %v", err)
	}
}

// TestCreditLeakFaultCaught plants the opposite fault — credits lost — which
// stays within [0, BufFlits] during the run and is only detectable by the
// quiesced end-of-run accounting.
func TestCreditLeakFaultCaught(t *testing.T) {
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	m := runBurst(t, cfg, 4)
	m.Chan(3).CorruptCreditsForTest(0, -2)
	err := m.FinishChecks()
	if err == nil {
		t.Fatal("FinishChecks passed despite a leaked credit")
	}
	vs := m.Checks().Violations()
	if len(vs) == 0 || vs[0].Checker != "credits" {
		t.Fatalf("want a credits violation, got %v", vs)
	}
	if !strings.Contains(err.Error(), "credit leak") {
		t.Errorf("error does not describe the leak: %v", err)
	}
}

// TestVerifiedMulticast drives repeated multicasts plus background unicast
// traffic through the full suite, exercising the exactly-once checker's
// expected-delivery ledger.
func TestVerifiedMulticast(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	root := topo.NodeCoord{X: 1, Y: 2, Z: 0}
	dests := multicast.PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 0)
	dests = append(dests, topo.NodeEp{Node: dests[0].Node, Ep: 5})
	tree := multicast.Build(shape, root, dests, topo.AllDimOrders[1], 0)

	cfg := machine.DefaultConfig(shape)
	cfg.Check = true
	cfg.Multicast = map[int]*multicast.Compiled{2: tree.Compile(shape)}
	m := machine.MustNew(cfg)

	rng := rand.New(rand.NewSource(17))
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		src := topo.NodeEp{Node: n, Ep: 0}
		for i := 0; i < 8; i++ {
			dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
			m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
			total++
		}
	}
	src := topo.NodeEp{Node: shape.NodeID(root), Ep: 3}
	for i := 0; i < 4; i++ {
		total += uint64(m.InjectMulticast(src, 2, route.ClassRequest, 0))
	}
	if _, err := m.RunUntilDelivered(total, 2_000_000); err != nil {
		t.Fatalf("multicast run: %v (delivered %d/%d)", err, m.Delivered(), total)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("FinishChecks: %v", err)
	}
}

// TestVerifiedSweeps8x8x8 is the acceptance benchmark: one full 8x8x8
// (paper-scale, 512 nodes) measurement per experiment family with the
// invariant suite attached. Each runner calls FinishChecks internally, so a
// nil error certifies zero violations across the whole run plus the drained
// end state.
func TestVerifiedSweeps8x8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale verified sweeps take ~30s; skipped under -short")
	}
	shape := topo.Shape3(8, 8, 8)

	t.Run("throughput", func(t *testing.T) {
		mc := machine.DefaultConfig(shape)
		mc.Check = true
		r, err := core.RunThroughput(core.ThroughputConfig{
			Machine: mc,
			Pattern: traffic.Uniform{},
			Batch:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Normalized <= 0 {
			t.Errorf("verified throughput run measured %.3f", r.Normalized)
		}
	})

	t.Run("blend", func(t *testing.T) {
		mc := machine.DefaultConfig(shape)
		mc.Check = true
		r, err := core.RunBlend(core.BlendConfig{
			Machine:         mc,
			ForwardFraction: 0.5,
			Weights:         core.WeightsBoth,
			Batch:           2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Normalized <= 0 {
			t.Errorf("verified blend run measured %.3f", r.Normalized)
		}
	})

	t.Run("latency", func(t *testing.T) {
		cfg := core.DefaultLatencyConfig(shape)
		cfg.Machine.Check = true
		cfg.PingPongs = 1
		cfg.PairsPerHop = 1
		res, err := core.RunLatency(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) < 8 {
			t.Errorf("only %d hop points on the full 8x8x8 sweep", len(res.Points))
		}
	})

	t.Run("energy", func(t *testing.T) {
		mc := machine.DefaultConfig(shape)
		mc.Check = true
		pt, err := core.RunEnergy(core.EnergyConfig{
			Machine: mc, Model: power.PaperModel,
			RateNum: 1, RateDen: 2, Payload: core.PayloadRandom, Flits: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pt.PerFlitPJ <= 0 {
			t.Errorf("verified energy run measured %.1f pJ/flit", pt.PerFlitPJ)
		}
	})
}
