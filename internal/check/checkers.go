package check

import (
	"sort"

	"anton2/internal/fabric"
	"anton2/internal/multicast"
	"anton2/internal/packet"
	"anton2/internal/topo"
)

// conservation enforces flit conservation: at every scan,
// injected + cloned == delivered + freed + queued + in-flight, and at a
// quiesced finish the live count equals the circulating-stream count.
type conservation struct {
	NopChecker
	env Env

	injected  uint64
	cloned    uint64
	delivered uint64
	freed     uint64
}

func newConservation(env Env) *conservation { return &conservation{env: env} }

func (c *conservation) Name() string { return "conservation" }

func (c *conservation) Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	switch ev {
	case EvInject:
		c.injected++
	case EvClone:
		c.cloned++
	case EvDeliver:
		c.delivered++
	case EvFree:
		c.freed++
	}
}

func (c *conservation) live() int64 {
	return int64(c.injected) + int64(c.cloned) - int64(c.delivered) - int64(c.freed)
}

func (c *conservation) Scan(s *Suite, now uint64) {
	census := int64(c.env.Queued())
	for _, ch := range c.env.Channels {
		// Census-exempt channels (reliable links under fault injection)
		// may hold duplicate transmissions of one logical packet; their
		// retransmission windows are accounted in Queued instead.
		if ch.CensusExempt {
			continue
		}
		census += int64(ch.InFlight())
	}
	if live := c.live(); live != census {
		s.Violate(c.Name(), now,
			"ledger has %d live packets (injected %d + cloned %d - delivered %d - freed %d) but census found %d (queued + channel in-flight)",
			live, c.injected, c.cloned, c.delivered, c.freed, census)
	}
}

func (c *conservation) Finish(s *Suite, now uint64, quiesced bool) {
	if !quiesced {
		return
	}
	if live := c.live(); live != int64(s.Circulating()) {
		s.Violate(c.Name(), now,
			"network quiesced with %d packets unaccounted for (injected %d + cloned %d, delivered %d, freed %d, circulating %d)",
			live-int64(s.Circulating()), c.injected, c.cloned, c.delivered, c.freed, s.Circulating())
	}
}

// credits enforces credit-count sanity: sender-side credit counters stay in
// [0, BufFlits] at every scan, never go negative across a send, and return
// exactly to BufFlits once the network drains (no credit leaks or
// double-returns).
type credits struct {
	NopChecker
	env Env
}

func newCredits(env Env) *credits { return &credits{env: env} }

func (c *credits) Name() string { return "credits" }

func (c *credits) Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	if ev != EvSend {
		return
	}
	if int(vc) < ch.NumVCs() && ch.Credits(vc) < 0 {
		s.Violate(c.Name(), now, "channel %s vc %d credit went negative (%d) on send of packet %d",
			ch.Name, vc, ch.Credits(vc), p.ID)
	}
}

func (c *credits) Scan(s *Suite, now uint64) {
	for _, ch := range c.env.Channels {
		for vc := 0; vc < ch.NumVCs(); vc++ {
			cr := ch.Credits(uint8(vc))
			if cr < 0 {
				s.Violate(c.Name(), now, "channel %s vc %d has negative credit %d", ch.Name, vc, cr)
			} else if cr > ch.BufFlits() {
				s.Violate(c.Name(), now, "channel %s vc %d has credit %d above buffer capacity %d",
					ch.Name, vc, cr, ch.BufFlits())
			}
		}
	}
}

func (c *credits) Finish(s *Suite, now uint64, quiesced bool) {
	if !quiesced {
		return
	}
	for _, ch := range c.env.Channels {
		for vc := 0; vc < ch.NumVCs(); vc++ {
			if cr := ch.Credits(uint8(vc)); cr != ch.BufFlits() {
				s.Violate(c.Name(), now,
					"channel %s vc %d drained with credit %d, want full buffer %d (credit leak)",
					ch.Name, vc, cr, ch.BufFlits())
			}
		}
	}
}

// vcKnown is the last observed promotion state of one in-flight packet.
type vcKnown struct {
	mvc, tvc uint8
}

// vcmono enforces the Section 2.5 proof obligation: a packet's M-group and
// T-group VC counters never decrease along its route, stay below the
// scheme's per-class VC counts, and every physical VC index fits the channel
// it is sent on. Source-routed packets bypass route state and are skipped.
type vcmono struct {
	NopChecker
	env  Env
	pkts map[uint64]vcKnown
}

func newVCMono(env Env) *vcmono { return &vcmono{env: env, pkts: map[uint64]vcKnown{}} }

func (c *vcmono) Name() string { return "vc-monotone" }

func (c *vcmono) Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	switch ev {
	case EvDeliver, EvFree:
		delete(c.pkts, p.ID)
		return
	}
	if p.SourceRoute != nil {
		return
	}
	switch ev {
	case EvInject, EvClone:
		c.pkts[p.ID] = vcKnown{mvc: p.Route.MVC, tvc: p.Route.TVC}
	case EvSend:
		scheme := c.env.Route.Scheme
		if int(p.Route.MVC) >= scheme.MeshVCs() {
			s.Violate(c.Name(), now, "packet %d M-VC %d exceeds scheme bound %d (scheme %s)",
				p.ID, p.Route.MVC, scheme.MeshVCs()-1, scheme.Name())
		}
		if int(p.Route.TVC) >= scheme.TorusVCs() {
			s.Violate(c.Name(), now, "packet %d T-VC %d exceeds scheme bound %d (scheme %s)",
				p.ID, p.Route.TVC, scheme.TorusVCs()-1, scheme.Name())
		}
		if int(vc) >= ch.NumVCs() {
			s.Violate(c.Name(), now, "packet %d sent on %s vc %d, channel has %d VCs",
				p.ID, ch.Name, vc, ch.NumVCs())
		}
		if prev, ok := c.pkts[p.ID]; ok {
			if p.Route.MVC < prev.mvc {
				s.Violate(c.Name(), now, "packet %d M-VC demoted %d -> %d on %s",
					p.ID, prev.mvc, p.Route.MVC, ch.Name)
			}
			if p.Route.TVC < prev.tvc {
				s.Violate(c.Name(), now, "packet %d T-VC demoted %d -> %d on %s",
					p.ID, prev.tvc, p.Route.TVC, ch.Name)
			}
		}
		c.pkts[p.ID] = vcKnown{mvc: p.Route.MVC, tvc: p.Route.TVC}
	}
}

// dimOrder enforces dimension-order progress: a packet's dimension-order
// position never moves backward (no revisiting a completed dimension), and
// every inter-node hop is taken on a channel of the dimension and direction
// the packet's route state claims to be traveling.
type dimOrder struct {
	NopChecker
	env  Env
	pkts map[uint64]uint8 // packet id -> last observed DimIdx
}

func newDimOrder(env Env) *dimOrder { return &dimOrder{env: env, pkts: map[uint64]uint8{}} }

func (c *dimOrder) Name() string { return "dim-order" }

func (c *dimOrder) Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	switch ev {
	case EvDeliver, EvFree:
		delete(c.pkts, p.ID)
		return
	}
	if p.SourceRoute != nil {
		return
	}
	switch ev {
	case EvInject, EvClone:
		c.pkts[p.ID] = p.Route.DimIdx
	case EvSend:
		if prev, ok := c.pkts[p.ID]; ok && p.Route.DimIdx < prev {
			s.Violate(c.Name(), now, "packet %d dimension-order position moved backward %d -> %d (revisits a completed dimension)",
				p.ID, prev, p.Route.DimIdx)
		}
		if p.Route.DimIdx > topo.NumDims {
			s.Violate(c.Name(), now, "packet %d dimension-order position %d out of range", p.ID, p.Route.DimIdx)
		}
		tm := c.env.Route.Machine
		if ch.ID >= 0 && tm.IsTorusChan(ch.ID) {
			if int(p.Route.DimIdx) >= topo.NumDims {
				s.Violate(c.Name(), now, "packet %d took torus hop on %s after completing all dimensions", p.ID, ch.Name)
			} else {
				if want := p.Route.DimOrder[p.Route.DimIdx]; p.Route.Dir.Dim() != want {
					s.Violate(c.Name(), now, "packet %d traveling %v but dimension order says dim %v is next",
						p.ID, p.Route.Dir, want)
				}
				if _, ad := tm.TorusChanOf(ch.ID); ad.Dir != p.Route.Dir {
					s.Violate(c.Name(), now, "packet %d claims direction %v but was sent on torus channel %s",
						p.ID, p.Route.Dir, ch.Name)
				}
			}
		}
		c.pkts[p.ID] = p.Route.DimIdx
	}
}

// mkey identifies one (group, destination endpoint) multicast obligation.
type mkey struct {
	group, node, ep int
}

// mcastOnce enforces exactly-once multicast delivery: every injection of a
// group must produce exactly one delivery per table destination — duplicates
// are flagged immediately, missing deliveries at a quiesced finish.
type mcastOnce struct {
	NopChecker
	expected map[mkey]int
	got      map[mkey]int
}

func newMcastOnce(env Env) *mcastOnce {
	return &mcastOnce{expected: map[mkey]int{}, got: map[mkey]int{}}
}

func (c *mcastOnce) Name() string { return "multicast-once" }

// MulticastInject implements MulticastObserver.
func (c *mcastOnce) MulticastInject(s *Suite, group int, g *multicast.Compiled, now uint64) {
	for node, e := range g.Entries {
		for _, ep := range e.Deliver {
			c.expected[mkey{group: group, node: node, ep: ep}]++
		}
	}
}

func (c *mcastOnce) Event(s *Suite, ev Event, p *packet.Packet, ch *fabric.Channel, vc uint8, now uint64) {
	if ev != EvDeliver || p.MGroup < 0 {
		return
	}
	k := mkey{group: p.MGroup, node: p.Dst.Node, ep: p.Dst.Ep}
	c.got[k]++
	if c.got[k] > c.expected[k] {
		s.Violate(c.Name(), now, "multicast group %d delivered %d copies to node %d ep %d, expected %d",
			k.group, c.got[k], k.node, k.ep, c.expected[k])
	}
}

func (c *mcastOnce) Finish(s *Suite, now uint64, quiesced bool) {
	if !quiesced {
		return
	}
	var missing []mkey
	for k, want := range c.expected {
		if c.got[k] < want {
			missing = append(missing, k)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		a, b := missing[i], missing[j]
		if a.group != b.group {
			return a.group < b.group
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.ep < b.ep
	})
	for _, k := range missing {
		s.Violate(c.Name(), now, "multicast group %d delivered %d copies to node %d ep %d, expected %d (missing deliveries)",
			k.group, c.got[k], k.node, k.ep, c.expected[k])
	}
}
