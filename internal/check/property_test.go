package check_test

// Property and metamorphic tests of the simulator's routing and measurement
// layers: torus translation symmetry of routes, direction-reflection
// symmetry of analytic loads, bit-identical serial vs parallel sweeps (and
// checked vs unchecked runs), and analytic-vs-simulated channel-load
// agreement.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

func addmod(a, b, k int) int { return ((a+b)%k + k) % k }

func translate(s topo.TorusShape, n int, t topo.NodeCoord) int {
	c := s.Coord(n)
	return s.NodeID(topo.NodeCoord{
		X: addmod(c.X, t.X, s.K[0]),
		Y: addmod(c.Y, t.Y, s.K[1]),
		Z: addmod(c.Z, t.Z, s.K[2]),
	})
}

// TestWalkTranslationSymmetry: a torus is vertex-transitive, so translating
// source and destination by the same offset must translate the route with
// it — identical length, identical on-chip channel sequence, identical
// torus adapter sequence, with every hop's node shifted by the offset. (VC
// assignments are exempt: dateline crossings move under translation.)
func TestWalkTranslationSymmetry(t *testing.T) {
	shape := topo.Shape3(4, 3, 2)
	tm := topo.MustMachine(shape)
	cfg := route.NewConfig(tm)
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 60; trial++ {
		src := topo.NodeEp{Node: rng.Intn(tm.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(tm.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		off := topo.NodeCoord{X: rng.Intn(shape.K[0]), Y: rng.Intn(shape.K[1]), Z: rng.Intn(shape.K[2])}
		c := route.RandomChoices(rng)
		cls := route.Class(rng.Intn(int(route.NumClasses)))

		base := route.Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, cls)
		src2 := topo.NodeEp{Node: translate(shape, src.Node, off), Ep: src.Ep}
		dst2 := topo.NodeEp{Node: translate(shape, dst.Node, off), Ep: dst.Ep}
		moved := route.Walk(cfg, src2, dst2, c.Order, c.Slice, c.Ties, cls)

		if len(base) != len(moved) {
			t.Fatalf("trial %d: route length %d -> %d under translation %v", trial, len(base), len(moved), off)
		}
		for i := range base {
			bt, mt := tm.IsTorusChan(base[i].Chan), tm.IsTorusChan(moved[i].Chan)
			if bt != mt {
				t.Fatalf("trial %d hop %d: torus/mesh classification changed under translation", trial, i)
			}
			if bt {
				bn, bad := tm.TorusChanOf(base[i].Chan)
				mn, mad := tm.TorusChanOf(moved[i].Chan)
				if bad != mad || mn != translate(shape, bn, off) {
					t.Fatalf("trial %d hop %d: torus hop (n%d,%v) -> (n%d,%v), want node translated by %v",
						trial, i, bn, bad, mn, mad, off)
				}
			} else {
				bn, bch := tm.IntraChanOf(base[i].Chan)
				mn, mch := tm.IntraChanOf(moved[i].Chan)
				if bch.ID != mch.ID || mn != translate(shape, bn, off) {
					t.Fatalf("trial %d hop %d: mesh hop (n%d,%s) -> (n%d,%s), want same chip channel, node translated",
						trial, i, bn, bch.Name, mn, mch.Name)
				}
			}
		}
	}
}

// TestUniformLoadDirectionSymmetry: uniform traffic on a symmetric torus is
// invariant under reflecting any dimension and under swapping slices, so
// the analytic per-adapter loads must be equal across direction signs and
// slices.
func TestUniformLoadDirectionSymmetry(t *testing.T) {
	tm := topo.MustMachine(topo.Shape3(4, 4, 4))
	cfg := route.NewConfig(tm)
	l := loadcalc.Compute(cfg, tm.Chip.CoreEndpoints(), traffic.Uniform{}.Flows(tm), route.ClassRequest)

	for d := topo.Dim(0); d < topo.NumDims; d++ {
		for s := 0; s < topo.NumSlices; s++ {
			pos := l.Torus[topo.AdapterID{Dir: topo.Direction(2 * d), Slice: s}.Index()]
			neg := l.Torus[topo.AdapterID{Dir: topo.Direction(2*d + 1), Slice: s}.Index()]
			if math.Abs(pos-neg) > 1e-9*math.Max(pos, 1) {
				t.Errorf("dim %v slice %d: +dir load %.9f != -dir load %.9f", d, s, pos, neg)
			}
		}
		s0 := l.Torus[topo.AdapterID{Dir: topo.Direction(2 * d), Slice: 0}.Index()]
		s1 := l.Torus[topo.AdapterID{Dir: topo.Direction(2 * d), Slice: 1}.Index()]
		if math.Abs(s0-s1) > 1e-9*math.Max(s0, 1) {
			t.Errorf("dim %v: slice 0 load %.9f != slice 1 load %.9f", d, s0, s1)
		}
	}
}

// TestTornadoReflectionSymmetry: reverse tornado is tornado with every
// direction flipped, so its analytic load on each adapter must equal
// tornado's load on the opposite-direction adapter.
func TestTornadoReflectionSymmetry(t *testing.T) {
	tm := topo.MustMachine(topo.Shape3(4, 4, 4))
	cfg := route.NewConfig(tm)
	cores := tm.Chip.CoreEndpoints()
	fwd := loadcalc.Compute(cfg, cores, traffic.Tornado().Flows(tm), route.ClassRequest)
	rev := loadcalc.Compute(cfg, cores, traffic.ReverseTornado().Flows(tm), route.ClassRequest)

	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		ad := topo.AdapterByIndex(ai)
		mirror := topo.AdapterID{Dir: ad.Dir.Opposite(), Slice: ad.Slice}.Index()
		if math.Abs(rev.Torus[mirror]-fwd.Torus[ai]) > 1e-9*math.Max(fwd.Torus[ai], 1) {
			t.Errorf("adapter %v: tornado load %.9f, reverse on mirror %.9f",
				ad, fwd.Torus[ai], rev.Torus[mirror])
		}
	}
	if math.Abs(fwd.MaxTorusLoad()-rev.MaxTorusLoad()) > 1e-9 {
		t.Errorf("tornado max load %.9f != reverse %.9f", fwd.MaxTorusLoad(), rev.MaxTorusLoad())
	}
}

// TestSerialParallelBitIdentical: per-point seeds are derived from the
// experiment specs, so a parallel sweep must produce results bit-identical
// to the serial sweep for every experiment family.
func TestSerialParallelBitIdentical(t *testing.T) {
	t.Run("throughput", func(t *testing.T) {
		cfg := core.ThroughputConfig{
			Machine: machine.DefaultConfig(topo.Shape3(2, 2, 2)),
			Pattern: traffic.Uniform{},
		}
		cfg.Machine.Check = true
		batches := []int{4, 8, 16}
		serial, err := core.ThroughputSweepOpts(cfg, batches, exp.Serial())
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.ThroughputSweepOpts(cfg, batches, exp.Parallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("serial %+v\nparallel %+v", serial, par)
		}
	})

	t.Run("blend", func(t *testing.T) {
		// Tornado shifts K/2-1 per dimension, so radix 2 degenerates to
		// self-addressed traffic; use radix 4 in X to keep the blend live.
		cfg := core.BlendConfig{
			Machine: machine.DefaultConfig(topo.Shape3(4, 2, 2)),
			Weights: core.WeightsBoth,
			Batch:   4,
		}
		cfg.Machine.Check = true
		fracs := []float64{0, 0.5, 1}
		serial, err := core.BlendSweepOpts(cfg, fracs, exp.Serial())
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.BlendSweepOpts(cfg, fracs, exp.Parallel(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("serial %+v\nparallel %+v", serial, par)
		}
	})

	t.Run("latency", func(t *testing.T) {
		jobs := func() []exp.Job {
			var out []exp.Job
			for _, shape := range []topo.TorusShape{topo.Shape3(2, 2, 2), topo.Shape3(3, 2, 2)} {
				cfg := core.DefaultLatencyConfig(shape)
				cfg.Machine.Check = true
				cfg.PingPongs, cfg.PairsPerHop = 2, 2
				out = append(out, core.LatencyJob(cfg))
			}
			return out
		}
		serial := exp.Run(jobs(), exp.Serial())
		par := exp.Run(jobs(), exp.Parallel(2))
		for i := range serial {
			if serial[i].Err != nil || par[i].Err != nil {
				t.Fatalf("point %d failed: %v / %v", i, serial[i].Err, par[i].Err)
			}
			if !reflect.DeepEqual(serial[i].Value, par[i].Value) {
				t.Errorf("point %d: serial %+v\nparallel %+v", i, serial[i].Value, par[i].Value)
			}
		}
	})

	t.Run("energy", func(t *testing.T) {
		mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
		mc.Check = true
		rates := [][2]int{{1, 4}, {1, 2}}
		serial, err := core.EnergySweepOpts(mc, power.PaperModel, core.PayloadRandom, rates, 300, exp.Serial())
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.EnergySweepOpts(mc, power.PaperModel, core.PayloadRandom, rates, 300, exp.Parallel(2))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("serial %+v\nparallel %+v", serial, par)
		}
	})
}

// TestCheckingDoesNotPerturbSimulation: attaching the invariant suite is
// observation-only — a checked run and an unchecked run of identical
// traffic finish on the same cycle with identical per-channel flit counts.
func TestCheckingDoesNotPerturbSimulation(t *testing.T) {
	run := func(checked bool) (uint64, uint64) {
		cfg := machine.DefaultConfig(topo.Shape3(3, 2, 2))
		cfg.Check = checked
		m := machine.MustNew(cfg)
		rng := rand.New(rand.NewSource(31))
		total := uint64(0)
		for n := 0; n < m.Topo.NumNodes(); n++ {
			for _, ep := range m.Topo.Chip.CoreEndpoints() {
				src := topo.NodeEp{Node: n, Ep: ep}
				for i := 0; i < 6; i++ {
					dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
					m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
					total++
				}
			}
		}
		end, err := m.RunUntilDelivered(total, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for id := 0; id < m.Topo.NumChannels(); id++ {
			sum += m.Chan(id).Sent * uint64(id+1)
		}
		if checked {
			if err := m.FinishChecks(); err != nil {
				t.Fatal(err)
			}
		}
		return end, sum
	}
	e0, s0 := run(false)
	e1, s1 := run(true)
	if e0 != e1 || s0 != s1 {
		t.Errorf("checking perturbed the run: unchecked (%d,%d) vs checked (%d,%d)", e0, s0, e1, s1)
	}
}

// TestLoadcalcMatchesSimulatedChannelLoad: the analytic route enumeration
// and the cycle simulator must agree on where traffic lands — per-adapter
// torus flit totals from a uniform random burst match the loadcalc
// prediction within sampling tolerance, under full invariant checking.
func TestLoadcalcMatchesSimulatedChannelLoad(t *testing.T) {
	shape := topo.Shape3(3, 3, 2)
	cfg := machine.DefaultConfig(shape)
	cfg.Check = true
	m := machine.MustNew(cfg)
	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	l := loadcalc.Compute(m.RouteConfig(), cores, traffic.Uniform{}.Flows(tm), route.ClassRequest)

	const batch = 48
	rng := rand.New(rand.NewSource(41))
	total := uint64(0)
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < batch; i++ {
				dst := traffic.Uniform{}.Dest(tm, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	if _, err := m.RunUntilDelivered(total, 5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatal(err)
	}

	var simTorus float64
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		ad := topo.AdapterByIndex(ai)
		var sent uint64
		for n := 0; n < tm.NumNodes(); n++ {
			sent += m.Chan(tm.TorusChanID(n, ad.Dir, ad.Slice)).Sent
		}
		want := l.Torus[ai] * float64(tm.NumNodes()) * batch
		simTorus += float64(sent)
		if want == 0 {
			if sent != 0 {
				t.Errorf("adapter %v: %d flits on an analytically unloaded adapter", ad, sent)
			}
			continue
		}
		if rel := math.Abs(float64(sent)-want) / want; rel > 0.08 {
			t.Errorf("adapter %v: simulated %d flits vs analytic %.0f (%.1f%% off)", ad, sent, want, 100*rel)
		}
	}
	// Mean torus hops per packet, aggregate check at tighter tolerance.
	simHops := simTorus / float64(total)
	if rel := math.Abs(simHops-l.MeanTorusHops) / l.MeanTorusHops; rel > 0.03 {
		t.Errorf("mean torus hops: simulated %.3f vs analytic %.3f (%.1f%% off)", simHops, l.MeanTorusHops, 100*rel)
	}
}
