package topo

import "fmt"

// NodeCoord locates a node (one ASIC) within the torus.
type NodeCoord struct {
	X, Y, Z int
}

func (c NodeCoord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Get returns the coordinate along dim.
func (c NodeCoord) Get(d Dim) int {
	switch d {
	case DimX:
		return c.X
	case DimY:
		return c.Y
	default:
		return c.Z
	}
}

// With returns a copy with the coordinate along dim replaced.
func (c NodeCoord) With(d Dim, v int) NodeCoord {
	switch d {
	case DimX:
		c.X = v
	case DimY:
		c.Y = v
	default:
		c.Z = v
	}
	return c
}

// TorusShape describes the radix of each torus dimension. Anton 2 supports
// configurations from 4x4x1 up to 16x16x16.
type TorusShape struct {
	K [NumDims]int
}

// Shape3 is shorthand for a TorusShape with the given radices.
func Shape3(kx, ky, kz int) TorusShape { return TorusShape{K: [NumDims]int{kx, ky, kz}} }

func (s TorusShape) String() string { return fmt.Sprintf("%dx%dx%d", s.K[0], s.K[1], s.K[2]) }

// NumNodes returns the total node count.
func (s TorusShape) NumNodes() int { return s.K[0] * s.K[1] * s.K[2] }

// Validate checks that every radix is at least 1 and the machine is within
// the supported maximum of 16x16x16.
func (s TorusShape) Validate() error {
	for d, k := range s.K {
		if k < 1 || k > 16 {
			return fmt.Errorf("topo: dimension %s radix %d outside supported range [1,16]", Dim(d), k)
		}
	}
	return nil
}

// NodeID maps a coordinate to a dense index in [0, NumNodes).
func (s TorusShape) NodeID(c NodeCoord) int {
	return (c.Z*s.K[1]+c.Y)*s.K[0] + c.X
}

// Coord is the inverse of NodeID.
func (s TorusShape) Coord(id int) NodeCoord {
	x := id % s.K[0]
	id /= s.K[0]
	y := id % s.K[1]
	z := id / s.K[1]
	return NodeCoord{X: x, Y: y, Z: z}
}

// Wrap reduces each coordinate modulo the radix.
func (s TorusShape) Wrap(c NodeCoord) NodeCoord {
	c.X = mod(c.X, s.K[0])
	c.Y = mod(c.Y, s.K[1])
	c.Z = mod(c.Z, s.K[2])
	return c
}

// Neighbor returns the adjacent node in the given direction.
func (s TorusShape) Neighbor(c NodeCoord, dir Direction) NodeCoord {
	d := dir.Dim()
	return c.With(d, mod(c.Get(d)+dir.Sign(), s.K[d]))
}

// MinimalDelta returns the shortest signed hop count from a to b along dim,
// and whether the opposite-sign path has equal length (a tie, possible only
// for even radices at exactly k/2).
func (s TorusShape) MinimalDelta(a, b NodeCoord, d Dim) (delta int, tie bool) {
	k := s.K[d]
	fwd := mod(b.Get(d)-a.Get(d), k)
	if fwd == 0 {
		return 0, false
	}
	if 2*fwd < k {
		return fwd, false
	}
	if 2*fwd > k {
		return fwd - k, false
	}
	return fwd, true // exactly k/2: both directions minimal
}

// HopDistance returns the minimal inter-node hop count between two nodes.
func (s TorusShape) HopDistance(a, b NodeCoord) int {
	total := 0
	for d := Dim(0); d < NumDims; d++ {
		delta, _ := s.MinimalDelta(a, b, d)
		if delta < 0 {
			delta = -delta
		}
		total += delta
	}
	return total
}

// CrossesDateline reports whether a single hop from coordinate x in the given
// direction crosses the dateline of that dimension. Following Section 2.5,
// the dateline sits between nodes k-1 and 0 in both directions.
func (s TorusShape) CrossesDateline(x int, dir Direction) bool {
	k := s.K[dir.Dim()]
	if k == 1 {
		return false
	}
	if dir.Positive() {
		return x == k-1
	}
	return x == 0
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
