package topo

import (
	"testing"
	"testing/quick"
)

func TestDirectionEncoding(t *testing.T) {
	cases := []struct {
		dir  Direction
		dim  Dim
		sign int
	}{
		{XPos, DimX, 1}, {XNeg, DimX, -1},
		{YPos, DimY, 1}, {YNeg, DimY, -1},
		{ZPos, DimZ, 1}, {ZNeg, DimZ, -1},
	}
	for _, c := range cases {
		if c.dir.Dim() != c.dim || c.dir.Sign() != c.sign {
			t.Errorf("%v: dim=%v sign=%d, want %v %d", c.dir, c.dir.Dim(), c.dir.Sign(), c.dim, c.sign)
		}
		if c.dir.Opposite().Opposite() != c.dir {
			t.Errorf("%v: double opposite is not identity", c.dir)
		}
		if DirectionOf(c.dim, c.sign) != c.dir {
			t.Errorf("DirectionOf(%v,%d) = %v, want %v", c.dim, c.sign, DirectionOf(c.dim, c.sign), c.dir)
		}
	}
}

func TestAllDimOrdersValidAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range AllDimOrders {
		if !o.Valid() {
			t.Errorf("order %v invalid", o)
		}
		if seen[o.String()] {
			t.Errorf("order %v duplicated", o)
		}
		seen[o.String()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("got %d dim orders, want 6", len(seen))
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	s := Shape3(5, 3, 7)
	for id := 0; id < s.NumNodes(); id++ {
		if got := s.NodeID(s.Coord(id)); got != id {
			t.Fatalf("NodeID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestNeighborWraps(t *testing.T) {
	s := Shape3(4, 4, 4)
	c := NodeCoord{3, 0, 2}
	if n := s.Neighbor(c, XPos); n != (NodeCoord{0, 0, 2}) {
		t.Errorf("XPos neighbor of %v = %v", c, n)
	}
	if n := s.Neighbor(c, YNeg); n != (NodeCoord{3, 3, 2}) {
		t.Errorf("YNeg neighbor of %v = %v", c, n)
	}
}

func TestMinimalDelta(t *testing.T) {
	s := Shape3(8, 8, 8)
	cases := []struct {
		a, b  int
		delta int
		tie   bool
	}{
		{0, 0, 0, false},
		{0, 1, 1, false},
		{0, 3, 3, false},
		{0, 4, 4, true}, // exactly k/2
		{0, 5, -3, false},
		{0, 7, -1, false},
		{6, 2, 4, true},
	}
	for _, c := range cases {
		d, tie := s.MinimalDelta(NodeCoord{X: c.a}, NodeCoord{X: c.b}, DimX)
		if d != c.delta || tie != c.tie {
			t.Errorf("MinimalDelta(%d,%d) = %d,%v; want %d,%v", c.a, c.b, d, tie, c.delta, c.tie)
		}
	}
}

func TestMinimalDeltaProperty(t *testing.T) {
	s := Shape3(7, 8, 3)
	f := func(ax, bx uint8, dim uint8) bool {
		d := Dim(dim % 3)
		k := s.K[d]
		a := NodeCoord{}.With(d, int(ax)%k)
		b := NodeCoord{}.With(d, int(bx)%k)
		delta, tie := s.MinimalDelta(a, b, d)
		// Walking delta hops from a must land on b.
		if mod(a.Get(d)+delta, k) != b.Get(d) {
			return false
		}
		// |delta| must be minimal.
		abs := delta
		if abs < 0 {
			abs = -abs
		}
		if 2*abs > k {
			return false
		}
		if tie && 2*abs != k {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossesDateline(t *testing.T) {
	s := Shape3(8, 4, 2)
	if !s.CrossesDateline(7, XPos) || s.CrossesDateline(6, XPos) {
		t.Error("XPos dateline must sit between 7 and 0")
	}
	if !s.CrossesDateline(0, XNeg) || s.CrossesDateline(1, XNeg) {
		t.Error("XNeg dateline must sit between 0 and 7")
	}
	if s.CrossesDateline(0, YPos) {
		t.Error("YPos from 0 in k=4 must not cross")
	}
	one := Shape3(8, 4, 1)
	if one.CrossesDateline(0, ZPos) {
		t.Error("k=1 ring has no dateline")
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	s := Shape3(4, 6, 8)
	f := func(ai, bi uint16) bool {
		a := s.Coord(int(ai) % s.NumNodes())
		b := s.Coord(int(bi) % s.NumNodes())
		return s.HopDistance(a, b) == s.HopDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshRouterIDRoundTrip(t *testing.T) {
	for id := 0; id < NumRouters; id++ {
		if RouterID(RouterCoord(id)) != id {
			t.Fatalf("RouterID(RouterCoord(%d)) != %d", id, id)
		}
	}
}

func TestAllDirOrders(t *testing.T) {
	orders := AllDirOrders()
	if len(orders) != 24 {
		t.Fatalf("got %d direction orders, want 24", len(orders))
	}
	seen := map[string]bool{}
	for _, o := range orders {
		if !o.Valid() {
			t.Errorf("order %v invalid", o)
		}
		seen[o.String()] = true
	}
	if len(seen) != 24 {
		t.Fatalf("got %d distinct orders, want 24", len(seen))
	}
	if !DefaultDirOrder.Valid() {
		t.Error("DefaultDirOrder invalid")
	}
}

func TestMeshHopsReachDestination(t *testing.T) {
	for _, o := range AllDirOrders() {
		for ai := 0; ai < NumRouters; ai++ {
			for bi := 0; bi < NumRouters; bi++ {
				a, b := RouterCoord(ai), RouterCoord(bi)
				cur := a
				for _, d := range o.MeshHops(a, b) {
					next, ok := d.Step(cur)
					if !ok {
						t.Fatalf("order %v: route %v->%v walks off mesh at %v going %v", o, a, b, cur, d)
					}
					cur = next
				}
				if cur != b {
					t.Fatalf("order %v: route %v->%v ends at %v", o, a, b, cur)
				}
				want := abs(a.U-b.U) + abs(a.V-b.V)
				if got := len(o.MeshHops(a, b)); got != want {
					t.Fatalf("order %v: route %v->%v has %d hops, want minimal %d", o, a, b, got, want)
				}
			}
		}
	}
}

func TestNextMeshDirConsistentWithHops(t *testing.T) {
	o := DefaultDirOrder
	for ai := 0; ai < NumRouters; ai++ {
		for bi := 0; bi < NumRouters; bi++ {
			a, b := RouterCoord(ai), RouterCoord(bi)
			hops := o.MeshHops(a, b)
			d, ok := o.NextMeshDir(a, b)
			if a == b {
				if ok {
					t.Fatalf("NextMeshDir(%v,%v) ok for equal coords", a, b)
				}
				continue
			}
			if !ok || d != hops[0] {
				t.Fatalf("NextMeshDir(%v,%v) = %v,%v; want %v", a, b, d, ok, hops[0])
			}
		}
	}
}

func TestChipInvariants(t *testing.T) {
	c := DefaultChip()

	// Port limits and pairing.
	for ri := range c.Routers {
		r := &c.Routers[ri]
		if len(r.Ports) == 0 || len(r.Ports) > MaxRouterPorts {
			t.Errorf("router %v has %d ports", r.Coord, len(r.Ports))
		}
		for pi := range r.Ports {
			p := &r.Ports[pi]
			if p.OutChan == p.InChan {
				t.Errorf("router %v port %d: in == out channel", r.Coord, pi)
			}
			out := &c.IntraChans[p.OutChan]
			if out.From != RouterLoc(r.Coord) {
				t.Errorf("router %v port %d: out channel from %v", r.Coord, pi, out.From)
			}
			in := &c.IntraChans[p.InChan]
			if in.To != RouterLoc(r.Coord) {
				t.Errorf("router %v port %d: in channel to %v", r.Coord, pi, in.To)
			}
		}
	}

	// Figure 1 adapter placements from the paper's examples.
	if c.AdapterAt(AdapterID{YPos, 0}).Router != (MeshCoord{0, 2}) {
		t.Errorf("Y+/0 adapter at %v, want R0,2 (paper example route Y0+ -> R0,2)", c.AdapterAt(AdapterID{YPos, 0}).Router)
	}
	if c.AdapterAt(AdapterID{YNeg, 0}).Router != (MeshCoord{0, 2}) {
		t.Error("Y-/0 adapter must share R0,2 so Y through-traffic crosses one router")
	}
	if c.AdapterAt(AdapterID{XNeg, 1}).Router != (MeshCoord{3, 0}) {
		t.Errorf("X-/1 adapter at %v, want R3,0 (paper example X1- -> R3,0)", c.AdapterAt(AdapterID{XNeg, 1}).Router)
	}
	if c.AdapterAt(AdapterID{XPos, 1}).Router != (MeshCoord{0, 0}) {
		t.Errorf("X+/1 adapter at %v, want R0,0", c.AdapterAt(AdapterID{XPos, 1}).Router)
	}

	// Skip channels connect the X-through corners.
	if p, ok := c.SkipPartner(MeshCoord{3, 0}); !ok || p != (MeshCoord{0, 0}) {
		t.Errorf("skip partner of R3,0 = %v,%v; want R0,0", p, ok)
	}
	if p, ok := c.SkipPartner(MeshCoord{0, 3}); !ok || p != (MeshCoord{3, 3}) {
		t.Errorf("skip partner of R0,3 = %v,%v; want R3,3", p, ok)
	}
	if _, ok := c.SkipPartner(MeshCoord{1, 1}); ok {
		t.Error("interior router must not have a skip port")
	}

	// Component counts match Table 1.
	if len(c.Endpoints) != 23 {
		t.Errorf("endpoint count %d, want 23", len(c.Endpoints))
	}
	if len(c.Adapters) != 12 {
		t.Errorf("adapter count %d, want 12", len(c.Adapters))
	}

	// Every router hosts a core endpoint.
	seen := map[int]bool{}
	for ri := 0; ri < NumRouters; ri++ {
		ep := c.CoreEndpoint(RouterCoord(ri))
		if c.Endpoints[ep].Router != RouterCoord(ri) {
			t.Errorf("core endpoint %d of %v attached to %v", ep, RouterCoord(ri), c.Endpoints[ep].Router)
		}
		if seen[ep] {
			t.Errorf("endpoint %d is core for two routers", ep)
		}
		seen[ep] = true
	}

	// Group classification: mesh+endpoint links M; skip+adapter links T.
	for i := range c.IntraChans {
		ch := &c.IntraChans[i]
		isAdapterLink := ch.From.Kind == LocAdapter || ch.To.Kind == LocAdapter
		isEndpointLink := ch.From.Kind == LocEndpoint || ch.To.Kind == LocEndpoint
		switch {
		case isAdapterLink && ch.Group != GroupT:
			t.Errorf("channel %s: adapter link must be T-group", ch.Name)
		case isEndpointLink && ch.Group != GroupM:
			t.Errorf("channel %s: endpoint link must be M-group", ch.Name)
		}
	}
}

func TestMachineChannelIDs(t *testing.T) {
	m := MustMachine(Shape3(2, 3, 2))
	seen := map[int]bool{}
	for n := 0; n < m.NumNodes(); n++ {
		for ci := 0; ci < m.NumIntraChans(); ci++ {
			id := m.IntraChanID(n, ci)
			if seen[id] {
				t.Fatalf("duplicate channel id %d", id)
			}
			seen[id] = true
			if m.IsTorusChan(id) {
				t.Fatalf("intra channel id %d classified as torus", id)
			}
			gotN, gotC := m.IntraChanOf(id)
			if gotN != n || gotC.ID != ci {
				t.Fatalf("IntraChanOf(%d) = %d,%d; want %d,%d", id, gotN, gotC.ID, n, ci)
			}
		}
		for d := Direction(0); d < NumDirections; d++ {
			for s := 0; s < NumSlices; s++ {
				id := m.TorusChanID(n, d, s)
				if seen[id] {
					t.Fatalf("duplicate channel id %d", id)
				}
				seen[id] = true
				if !m.IsTorusChan(id) {
					t.Fatalf("torus channel id %d not classified as torus", id)
				}
				gotN, gotA := m.TorusChanOf(id)
				if gotN != n || gotA != (AdapterID{d, s}) {
					t.Fatalf("TorusChanOf(%d) mismatch", id)
				}
				if m.ChanGroup(id) != GroupT {
					t.Fatalf("torus channel %d not in T-group", id)
				}
			}
		}
	}
	if len(seen) != m.NumChannels() {
		t.Fatalf("enumerated %d channels, NumChannels() = %d", len(seen), m.NumChannels())
	}
}

func TestTorusDest(t *testing.T) {
	m := MustMachine(Shape3(4, 4, 4))
	src := m.Shape.NodeID(NodeCoord{3, 1, 2})
	dst, ad := m.TorusDest(src, XPos, 1)
	if m.Shape.Coord(dst) != (NodeCoord{0, 1, 2}) {
		t.Errorf("TorusDest node = %v", m.Shape.Coord(dst))
	}
	if ad != (AdapterID{XNeg, 1}) {
		t.Errorf("TorusDest adapter = %v, want X-/1", ad)
	}
}

func TestEndpointIndexRoundTrip(t *testing.T) {
	m := MustMachine(Shape3(2, 2, 2))
	for i := 0; i < m.NumEndpointsTotal(); i++ {
		if m.EndpointIndex(m.EndpointByIndex(i)) != i {
			t.Fatalf("endpoint index %d does not round-trip", i)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
