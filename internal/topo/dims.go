// Package topo defines the geometry of the Anton 2 network: the
// three-dimensional, channel-sliced inter-node torus; the 4x4 on-chip mesh of
// Figure 1 with its skip channels, endpoint adapters, and torus-channel
// adapters; and the global channel identifier space shared by the routing,
// load-calculation, and deadlock-analysis packages.
package topo

import "fmt"

// Dim identifies one of the three torus dimensions.
type Dim uint8

// The torus dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
	NumDims = 3
)

func (d Dim) String() string {
	switch d {
	case DimX:
		return "X"
	case DimY:
		return "Y"
	case DimZ:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// Direction identifies a signed torus direction (a node's six neighbors).
type Direction uint8

// The six torus directions. The encoding keeps dim = dir/2 and
// positive = (dir%2 == 0).
const (
	XPos Direction = iota
	XNeg
	YPos
	YNeg
	ZPos
	ZNeg
	NumDirections = 6
)

// Dim returns the dimension the direction moves along.
func (d Direction) Dim() Dim { return Dim(d / 2) }

// Positive reports whether the direction increases the coordinate.
func (d Direction) Positive() bool { return d%2 == 0 }

// Sign returns +1 or -1.
func (d Direction) Sign() int {
	if d.Positive() {
		return 1
	}
	return -1
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction { return d ^ 1 }

// DirectionOf returns the direction along dim with the given sign (+1/-1).
func DirectionOf(dim Dim, sign int) Direction {
	d := Direction(dim * 2)
	if sign < 0 {
		d++
	}
	return d
}

func (d Direction) String() string {
	s := "+"
	if !d.Positive() {
		s = "-"
	}
	return d.Dim().String() + s
}

// NumSlices is the channel-slicing factor of the inter-node network: two
// physical channels per direction per node.
const NumSlices = 2

// DimOrder is a permutation of the three torus dimensions; inter-node routes
// traverse dimensions in this order.
type DimOrder [NumDims]Dim

// AllDimOrders lists the six dimension orders packets may be assigned
// (Section 2.3): XYZ, XZY, YXZ, YZX, ZXY, ZYX.
var AllDimOrders = [6]DimOrder{
	{DimX, DimY, DimZ},
	{DimX, DimZ, DimY},
	{DimY, DimX, DimZ},
	{DimY, DimZ, DimX},
	{DimZ, DimX, DimY},
	{DimZ, DimY, DimX},
}

func (o DimOrder) String() string {
	return o[0].String() + o[1].String() + o[2].String()
}

// Valid reports whether the order is a permutation of {X, Y, Z}.
func (o DimOrder) Valid() bool {
	var seen [NumDims]bool
	for _, d := range o {
		if d >= NumDims || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// Group classifies channels for the deadlock analysis of Section 2.5.
type Group uint8

const (
	// GroupM contains the on-chip mesh channels except skip channels and
	// router-to-torus-channel-adapter channels (dashed in Figure 1).
	GroupM Group = iota
	// GroupT contains skip channels, router-to-channel-adapter channels,
	// and all inter-node torus channels (solid in Figure 1).
	GroupT
)

func (g Group) String() string {
	if g == GroupM {
		return "M"
	}
	return "T"
}
