package topo

import "fmt"

// PortKind distinguishes what a router port connects to.
type PortKind uint8

// Router port kinds.
const (
	PortMesh     PortKind = iota // a neighboring mesh router
	PortSkip                     // the skip-channel partner router
	PortAdapter                  // a torus-channel adapter
	PortEndpoint                 // an endpoint adapter
)

func (k PortKind) String() string {
	switch k {
	case PortMesh:
		return "mesh"
	case PortSkip:
		return "skip"
	case PortAdapter:
		return "chan"
	default:
		return "endpoint"
	}
}

// AdapterID names one of the 12 torus-channel adapters on a chip by the
// direction of packets departing through it, and its torus slice.
type AdapterID struct {
	Dir   Direction
	Slice int
}

func (a AdapterID) String() string { return fmt.Sprintf("%s/%d", a.Dir, a.Slice) }

// Index returns a dense index in [0, NumChannelAdapters).
func (a AdapterID) Index() int { return int(a.Dir)*NumSlices + a.Slice }

// AdapterByIndex is the inverse of Index.
func AdapterByIndex(i int) AdapterID {
	return AdapterID{Dir: Direction(i / NumSlices), Slice: i % NumSlices}
}

// Component counts per ASIC (Table 1).
const (
	NumChannelAdapters = NumDirections * NumSlices // 12
	NumEndpoints       = 23
)

// Port describes one bidirectional router port. MaxRouterPorts caps the port
// count: Anton 2 routers have six ports.
const MaxRouterPorts = 6

// Port is one of a router's bidirectional connections.
type Port struct {
	Kind PortKind
	// Mesh direction for PortMesh ports.
	MeshDir MeshDir
	// Partner router for PortMesh and PortSkip ports.
	Peer MeshCoord
	// Adapter for PortAdapter ports.
	Adapter AdapterID
	// Endpoint index for PortEndpoint ports.
	Endpoint int
	// OutChan / InChan are chip-local channel ids for the directed
	// channels leaving and entering the router through this port.
	OutChan, InChan int
}

// Router is one mesh router and its ports.
type Router struct {
	Coord MeshCoord
	Ports []Port
}

// The port lookups below are written as plain loops rather than through a
// predicate helper: they sit on the per-packet routing path, and a closure
// plus an eagerly built description string would allocate on every call.
// Chip construction guarantees presence for all legal queries, so the
// failure message is only formatted on the panic path.

// MeshPort returns the port index toward the mesh neighbor in direction d.
func (r *Router) MeshPort(d MeshDir) int {
	for i := range r.Ports {
		if r.Ports[i].Kind == PortMesh && r.Ports[i].MeshDir == d {
			return i
		}
	}
	panic(fmt.Sprintf("topo: router %s has no mesh %s port", r.Coord, d))
}

// HasMeshPort reports whether the router has a mesh neighbor in direction d.
func (r *Router) HasMeshPort(d MeshDir) bool {
	for i := range r.Ports {
		if r.Ports[i].Kind == PortMesh && r.Ports[i].MeshDir == d {
			return true
		}
	}
	return false
}

// SkipPort returns the skip-channel port index, or -1 if the router has none.
func (r *Router) SkipPort() int {
	for i := range r.Ports {
		if r.Ports[i].Kind == PortSkip {
			return i
		}
	}
	return -1
}

// AdapterPort returns the port index toward the given channel adapter.
func (r *Router) AdapterPort(a AdapterID) int {
	for i := range r.Ports {
		if r.Ports[i].Kind == PortAdapter && r.Ports[i].Adapter == a {
			return i
		}
	}
	panic(fmt.Sprintf("topo: router %s has no adapter %s port", r.Coord, a))
}

// EndpointPort returns the port index toward endpoint ep.
func (r *Router) EndpointPort(ep int) int {
	for i := range r.Ports {
		if r.Ports[i].Kind == PortEndpoint && r.Ports[i].Endpoint == ep {
			return i
		}
	}
	panic(fmt.Sprintf("topo: router %s has no endpoint %d port", r.Coord, ep))
}

// Endpoint describes one endpoint adapter's attachment.
type Endpoint struct {
	ID     int
	Router MeshCoord
	Port   int // port index at Router
	// ToRouter / FromRouter are chip-local channel ids.
	ToRouter, FromRouter int
}

// ChannelAdapter describes one torus-channel adapter's attachment.
type ChannelAdapter struct {
	ID     AdapterID
	Router MeshCoord
	Port   int // port index at Router
	// ToRouter / FromRouter are chip-local channel ids.
	ToRouter, FromRouter int
}

// IntraChan is a directed channel within one ASIC.
type IntraChan struct {
	ID       int
	Group    Group
	From, To Loc
	Name     string
}

// LocKind identifies the type of component a Loc refers to.
type LocKind uint8

// Component location kinds.
const (
	LocRouter LocKind = iota
	LocEndpoint
	LocAdapter
)

// Loc identifies a component within an ASIC.
type Loc struct {
	Kind     LocKind
	Router   MeshCoord // LocRouter
	Endpoint int       // LocEndpoint
	Adapter  AdapterID // LocAdapter
}

// RouterLoc returns the Loc of a router.
func RouterLoc(c MeshCoord) Loc { return Loc{Kind: LocRouter, Router: c} }

// EndpointLoc returns the Loc of an endpoint adapter.
func EndpointLoc(ep int) Loc { return Loc{Kind: LocEndpoint, Endpoint: ep} }

// AdapterLoc returns the Loc of a torus-channel adapter.
func AdapterLoc(a AdapterID) Loc { return Loc{Kind: LocAdapter, Adapter: a} }

func (l Loc) String() string {
	switch l.Kind {
	case LocRouter:
		return l.Router.String()
	case LocEndpoint:
		return fmt.Sprintf("E%d", l.Endpoint)
	default:
		return "C" + l.Adapter.String()
	}
}

// Chip is the on-chip network layout of Figure 1: a 4x4 mesh of routers with
// skip channels at the X edges, 12 torus-channel adapters along the two
// high-speed-I/O edges, and 23 endpoint adapters.
type Chip struct {
	Routers    [NumRouters]Router
	Endpoints  [NumEndpoints]Endpoint
	Adapters   [NumChannelAdapters]ChannelAdapter
	IntraChans []IntraChan
	// SkipPairs lists the skip-channel partner coordinates.
	SkipPairs [][2]MeshCoord
	// coreEndpoints holds one endpoint per router (the "cores" that drive
	// the paper's measurements).
	coreEndpoints [NumRouters]int
	// inPortOf / outPortOf map a chip channel id to the router port it
	// enters / leaves through (router -1 when the endpoint of the channel
	// is not a router).
	inPortOf, outPortOf []PortRef
}

// PortRef names a port on a router.
type PortRef struct {
	Router int // dense router id, or -1
	Port   int
}

// adapterPlacement gives the Figure 1 attachment router for each channel
// adapter. The X channels sit at the mesh corners (split across the two I/O
// edges to simplify backplane routing); the Y and Z channel pairs of a slice
// share a single edge router so through-packets traverse one router, and a
// slice's Y and Z channels share a chip edge to shorten Y<->Z turns.
var adapterPlacement = map[AdapterID]MeshCoord{
	{XPos, 0}: {0, 3}, {XPos, 1}: {0, 0},
	{XNeg, 0}: {3, 3}, {XNeg, 1}: {3, 0},
	{YPos, 0}: {0, 2}, {YNeg, 0}: {0, 2},
	{YPos, 1}: {3, 2}, {YNeg, 1}: {3, 2},
	{ZPos, 0}: {0, 1}, {ZNeg, 0}: {0, 1},
	{ZPos, 1}: {3, 1}, {ZNeg, 1}: {3, 1},
}

// endpointPlacement lists endpoint counts per router. The paper reports 23
// endpoint adapters but not their placement; this assignment fills interior
// routers first and respects the six-port router limit.
var endpointPlacement = map[MeshCoord]int{
	{1, 1}: 2, {2, 1}: 2, {1, 2}: 2, {2, 2}: 2, // interior: 8
	{1, 0}: 2, {2, 0}: 2, {1, 3}: 2, {2, 3}: 1, // plain edges: 7
	{0, 0}: 1, {3, 0}: 1, {0, 3}: 1, {3, 3}: 1, // corners: 4
	{0, 1}: 1, {0, 2}: 1, {3, 1}: 1, {3, 2}: 1, // adapter edges: 4
}

var defaultChip = buildChip()

// DefaultChip returns the shared, immutable Figure 1 chip layout.
func DefaultChip() *Chip { return defaultChip }

func buildChip() *Chip {
	c := &Chip{
		SkipPairs: [][2]MeshCoord{
			{{3, 0}, {0, 0}}, // slice-1 X path
			{{3, 3}, {0, 3}}, // slice-0 X path
		},
	}
	for i := range c.Routers {
		c.Routers[i].Coord = RouterCoord(i)
	}

	addChan := func(group Group, from, to Loc, name string) int {
		id := len(c.IntraChans)
		c.IntraChans = append(c.IntraChans, IntraChan{ID: id, Group: group, From: from, To: to, Name: name})
		return id
	}
	addPort := func(rc MeshCoord, p Port) int {
		r := &c.Routers[RouterID(rc)]
		r.Ports = append(r.Ports, p)
		if len(r.Ports) > MaxRouterPorts {
			panic(fmt.Sprintf("topo: router %s exceeds %d ports", rc, MaxRouterPorts))
		}
		return len(r.Ports) - 1
	}

	// Mesh links (GroupM), both directions per adjacent pair.
	for v := 0; v < MeshH; v++ {
		for u := 0; u < MeshW; u++ {
			at := MeshCoord{u, v}
			for _, d := range []MeshDir{UPos, VPos} {
				peer, ok := d.Step(at)
				if !ok {
					continue
				}
				fwd := addChan(GroupM, RouterLoc(at), RouterLoc(peer), fmt.Sprintf("%s->%s", at, peer))
				rev := addChan(GroupM, RouterLoc(peer), RouterLoc(at), fmt.Sprintf("%s->%s", peer, at))
				addPort(at, Port{Kind: PortMesh, MeshDir: d, Peer: peer, OutChan: fwd, InChan: rev})
				addPort(peer, Port{Kind: PortMesh, MeshDir: d.Opposite(), Peer: at, OutChan: rev, InChan: fwd})
			}
		}
	}

	// Skip channels (GroupT): direct links between the X-edge corners.
	for _, pair := range c.SkipPairs {
		a, b := pair[0], pair[1]
		fwd := addChan(GroupT, RouterLoc(a), RouterLoc(b), fmt.Sprintf("skip %s->%s", a, b))
		rev := addChan(GroupT, RouterLoc(b), RouterLoc(a), fmt.Sprintf("skip %s->%s", b, a))
		addPort(a, Port{Kind: PortSkip, Peer: b, OutChan: fwd, InChan: rev})
		addPort(b, Port{Kind: PortSkip, Peer: a, OutChan: rev, InChan: fwd})
	}

	// Torus-channel adapters (GroupT links to their routers).
	for i := 0; i < NumChannelAdapters; i++ {
		id := AdapterByIndex(i)
		rc, ok := adapterPlacement[id]
		if !ok {
			panic("topo: missing adapter placement for " + id.String())
		}
		toR := addChan(GroupT, AdapterLoc(id), RouterLoc(rc), fmt.Sprintf("C%s->%s", id, rc))
		fromR := addChan(GroupT, RouterLoc(rc), AdapterLoc(id), fmt.Sprintf("%s->C%s", rc, id))
		port := addPort(rc, Port{Kind: PortAdapter, Adapter: id, OutChan: fromR, InChan: toR})
		c.Adapters[i] = ChannelAdapter{ID: id, Router: rc, Port: port, ToRouter: toR, FromRouter: fromR}
	}

	// Endpoint adapters (GroupM links).
	ep := 0
	total := 0
	for _, n := range endpointPlacement {
		total += n
	}
	if total != NumEndpoints {
		panic(fmt.Sprintf("topo: endpoint placement totals %d, want %d", total, NumEndpoints))
	}
	for ri := 0; ri < NumRouters; ri++ {
		rc := RouterCoord(ri)
		n := endpointPlacement[rc]
		if n == 0 {
			panic(fmt.Sprintf("topo: router %s has no endpoint; every router hosts a core", rc))
		}
		c.coreEndpoints[ri] = ep
		for j := 0; j < n; j++ {
			toR := addChan(GroupM, EndpointLoc(ep), RouterLoc(rc), fmt.Sprintf("E%d->%s", ep, rc))
			fromR := addChan(GroupM, RouterLoc(rc), EndpointLoc(ep), fmt.Sprintf("%s->E%d", rc, ep))
			port := addPort(rc, Port{Kind: PortEndpoint, Endpoint: ep, OutChan: fromR, InChan: toR})
			c.Endpoints[ep] = Endpoint{ID: ep, Router: rc, Port: port, ToRouter: toR, FromRouter: fromR}
			ep++
		}
	}

	// Channel-to-router-port lookup tables.
	c.inPortOf = make([]PortRef, len(c.IntraChans))
	c.outPortOf = make([]PortRef, len(c.IntraChans))
	for i := range c.inPortOf {
		c.inPortOf[i] = PortRef{Router: -1}
		c.outPortOf[i] = PortRef{Router: -1}
	}
	for ri := range c.Routers {
		for pi := range c.Routers[ri].Ports {
			p := &c.Routers[ri].Ports[pi]
			c.inPortOf[p.InChan] = PortRef{Router: ri, Port: pi}
			c.outPortOf[p.OutChan] = PortRef{Router: ri, Port: pi}
		}
	}
	return c
}

// InPortOf returns the router port a chip channel enters through
// (Router == -1 when the channel terminates at an endpoint or adapter).
func (c *Chip) InPortOf(chipChan int) PortRef { return c.inPortOf[chipChan] }

// OutPortOf returns the router port a chip channel leaves through.
func (c *Chip) OutPortOf(chipChan int) PortRef { return c.outPortOf[chipChan] }

// RouterAt returns the router at the given mesh coordinate.
func (c *Chip) RouterAt(mc MeshCoord) *Router { return &c.Routers[RouterID(mc)] }

// AdapterAt returns the channel adapter with the given id.
func (c *Chip) AdapterAt(id AdapterID) *ChannelAdapter { return &c.Adapters[id.Index()] }

// CoreEndpoint returns the endpoint id serving as the "core" attached to the
// given router (one per router, 16 total), matching the paper's test setup.
func (c *Chip) CoreEndpoint(router MeshCoord) int { return c.coreEndpoints[RouterID(router)] }

// CoreEndpoints returns the 16 core endpoint ids, one per router.
func (c *Chip) CoreEndpoints() []int {
	out := make([]int, NumRouters)
	copy(out, c.coreEndpoints[:])
	return out
}

// SkipPartner returns the router reached over the skip channel from rc, or
// ok=false if rc has no skip port.
func (c *Chip) SkipPartner(rc MeshCoord) (MeshCoord, bool) {
	r := c.RouterAt(rc)
	if i := r.SkipPort(); i >= 0 {
		return r.Ports[i].Peer, true
	}
	return MeshCoord{}, false
}
