package topo

import "fmt"

// MeshW and MeshH give the on-chip mesh extent: a 4x4 mesh of routers
// (Figure 1). The two mesh dimensions are called U and V to avoid confusion
// with the torus dimensions.
const (
	MeshW = 4 // extent of U
	MeshH = 4 // extent of V
	// NumRouters is the router count per ASIC.
	NumRouters = MeshW * MeshH
)

// MeshCoord locates a router within the on-chip mesh.
type MeshCoord struct {
	U, V int
}

func (c MeshCoord) String() string { return fmt.Sprintf("R%d,%d", c.U, c.V) }

// RouterID maps a mesh coordinate to a dense index in [0, NumRouters).
func RouterID(c MeshCoord) int { return c.V*MeshW + c.U }

// RouterCoord is the inverse of RouterID.
func RouterCoord(id int) MeshCoord { return MeshCoord{U: id % MeshW, V: id / MeshW} }

// MeshDir identifies a signed on-chip mesh direction.
type MeshDir uint8

// The four mesh directions.
const (
	UPos MeshDir = iota
	UNeg
	VPos
	VNeg
	NumMeshDirs = 4
)

func (d MeshDir) String() string {
	switch d {
	case UPos:
		return "U+"
	case UNeg:
		return "U-"
	case VPos:
		return "V+"
	default:
		return "V-"
	}
}

// Opposite returns the reverse mesh direction.
func (d MeshDir) Opposite() MeshDir { return d ^ 1 }

// Step returns the coordinate one hop away; ok is false at a mesh edge.
func (d MeshDir) Step(c MeshCoord) (MeshCoord, bool) {
	switch d {
	case UPos:
		c.U++
	case UNeg:
		c.U--
	case VPos:
		c.V++
	default:
		c.V--
	}
	ok := c.U >= 0 && c.U < MeshW && c.V >= 0 && c.V < MeshH
	return c, ok
}

// DirOrder is an ordering of the four mesh directions; the on-chip local
// routing algorithm traverses needed directions in this order (Section 2.4).
// Direction-order routing is deterministic and deadlock-free with a single VC.
type DirOrder [NumMeshDirs]MeshDir

// DefaultDirOrder is the direction-order algorithm selected by the
// worst-case search of Section 2.4 (see internal/wctraffic) for this
// repository's reconstruction of the Figure 1 layout: it achieves the
// paper's optimal worst-case mesh-channel load of two torus channels.
//
// The paper reports V- U+ U- V+ as its optimum; the exact winner depends on
// layout details the paper does not fully specify (endpoint placement and
// the corner-crossing rule for X-turning traffic), and under our
// reconstruction the optimal set is {V-U-V+U+, V-V+U+U-, V-V+U-U+,
// V+U+V-U-, V+V-U+U-, V+V-U-U+}, all at load 2. We pick the member that,
// like the paper's, routes V- first.
var DefaultDirOrder = DirOrder{VNeg, UNeg, VPos, UPos}

// PaperDirOrder is the direction order reported by the paper
// (V-, U+, U-, V+), kept for the ablation benchmarks.
var PaperDirOrder = DirOrder{VNeg, UPos, UNeg, VPos}

func (o DirOrder) String() string {
	return o[0].String() + " " + o[1].String() + " " + o[2].String() + " " + o[3].String()
}

// Valid reports whether the order is a permutation of the four directions.
func (o DirOrder) Valid() bool {
	var seen [NumMeshDirs]bool
	for _, d := range o {
		if d >= NumMeshDirs || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// AllDirOrders enumerates all 24 direction-order routing algorithms, the
// search space of Section 2.4.
func AllDirOrders() []DirOrder {
	dirs := [NumMeshDirs]MeshDir{UPos, UNeg, VPos, VNeg}
	var out []DirOrder
	var permute func(k int)
	permute = func(k int) {
		if k == NumMeshDirs {
			out = append(out, DirOrder(dirs))
			return
		}
		for i := k; i < NumMeshDirs; i++ {
			dirs[k], dirs[i] = dirs[i], dirs[k]
			permute(k + 1)
			dirs[k], dirs[i] = dirs[i], dirs[k]
		}
	}
	permute(0)
	return out
}

// MeshHops returns the sequence of mesh directions a direction-order route
// takes from a to b: for each direction in order, as many hops as needed.
func (o DirOrder) MeshHops(a, b MeshCoord) []MeshDir {
	var hops []MeshDir
	du, dv := b.U-a.U, b.V-a.V
	for _, d := range o {
		var n int
		switch d {
		case UPos:
			if du > 0 {
				n = du
			}
		case UNeg:
			if du < 0 {
				n = -du
			}
		case VPos:
			if dv > 0 {
				n = dv
			}
		case VNeg:
			if dv < 0 {
				n = -dv
			}
		}
		for i := 0; i < n; i++ {
			hops = append(hops, d)
		}
	}
	return hops
}

// NextMeshDir returns the first direction a direction-order route from a to b
// moves in, or ok=false if a == b.
func (o DirOrder) NextMeshDir(a, b MeshCoord) (MeshDir, bool) {
	du, dv := b.U-a.U, b.V-a.V
	for _, d := range o {
		switch d {
		case UPos:
			if du > 0 {
				return d, true
			}
		case UNeg:
			if du < 0 {
				return d, true
			}
		case VPos:
			if dv > 0 {
				return d, true
			}
		case VNeg:
			if dv < 0 {
				return d, true
			}
		}
	}
	return 0, false
}
