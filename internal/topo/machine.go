package topo

import "fmt"

// Machine combines a torus shape with the per-node chip layout and defines
// the global directed-channel identifier space used by the routing, load
// calculation, and deadlock analysis packages.
//
// Channel ids are laid out as:
//
//	[0, N*I)         intra-node channels: node*I + chipChan
//	[N*I, N*I+N*12)  torus channels: N*I + node*12 + adapterIndex
//
// where N is the node count and I the intra-channel count per chip. A torus
// channel is identified by its *sending* node and adapter: the directed
// channel leaving node n through adapter (d, s) arrives at the (opposite(d),
// s) adapter of n's d-neighbor.
type Machine struct {
	Shape TorusShape
	Chip  *Chip
}

// NewMachine builds a machine description for the given torus shape using
// the default Figure 1 chip.
func NewMachine(shape TorusShape) (*Machine, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Shape: shape, Chip: DefaultChip()}, nil
}

// MustMachine is NewMachine for known-good shapes; it panics on error.
func MustMachine(shape TorusShape) *Machine {
	m, err := NewMachine(shape)
	if err != nil {
		panic(err)
	}
	return m
}

// NumNodes returns the machine's node count.
func (m *Machine) NumNodes() int { return m.Shape.NumNodes() }

// NumIntraChans returns the per-node intra channel count.
func (m *Machine) NumIntraChans() int { return len(m.Chip.IntraChans) }

// NumChannels returns the total directed channel count.
func (m *Machine) NumChannels() int {
	n := m.NumNodes()
	return n*m.NumIntraChans() + n*NumChannelAdapters
}

// IntraChanID returns the global id of a chip-local channel on a node.
func (m *Machine) IntraChanID(node int, chipChan int) int {
	return node*m.NumIntraChans() + chipChan
}

// TorusChanID returns the global id of the torus channel leaving node
// through adapter (dir, slice).
func (m *Machine) TorusChanID(node int, dir Direction, slice int) int {
	return m.NumNodes()*m.NumIntraChans() + node*NumChannelAdapters + AdapterID{Dir: dir, Slice: slice}.Index()
}

// IsTorusChan reports whether a global channel id names a torus channel.
func (m *Machine) IsTorusChan(id int) bool {
	return id >= m.NumNodes()*m.NumIntraChans()
}

// TorusChanOf decomposes a torus channel id into its sending node and
// adapter.
func (m *Machine) TorusChanOf(id int) (node int, adapter AdapterID) {
	id -= m.NumNodes() * m.NumIntraChans()
	return id / NumChannelAdapters, AdapterByIndex(id % NumChannelAdapters)
}

// IntraChanOf decomposes an intra channel id into its node and chip channel.
func (m *Machine) IntraChanOf(id int) (node int, ch *IntraChan) {
	node = id / m.NumIntraChans()
	return node, &m.Chip.IntraChans[id%m.NumIntraChans()]
}

// ChanGroup returns the deadlock group of any global channel.
func (m *Machine) ChanGroup(id int) Group {
	if m.IsTorusChan(id) {
		return GroupT
	}
	_, ch := m.IntraChanOf(id)
	return ch.Group
}

// ChanName renders a global channel id for diagnostics.
func (m *Machine) ChanName(id int) string {
	if m.IsTorusChan(id) {
		node, ad := m.TorusChanOf(id)
		return fmt.Sprintf("n%d:torus:%s", node, ad)
	}
	node, ch := m.IntraChanOf(id)
	return fmt.Sprintf("n%d:%s", node, ch.Name)
}

// TorusDest returns the node and adapter at which the given torus channel
// arrives.
func (m *Machine) TorusDest(node int, dir Direction, slice int) (int, AdapterID) {
	dst := m.Shape.Neighbor(m.Shape.Coord(node), dir)
	return m.Shape.NodeID(dst), AdapterID{Dir: dir.Opposite(), Slice: slice}
}

// NodeEp identifies a network endpoint: an endpoint adapter on a node.
type NodeEp struct {
	Node int // dense node id
	Ep   int // endpoint adapter id within the chip
}

func (ne NodeEp) String() string { return fmt.Sprintf("n%d.E%d", ne.Node, ne.Ep) }

// NumEndpointsTotal returns the machine-wide endpoint count.
func (m *Machine) NumEndpointsTotal() int { return m.NumNodes() * NumEndpoints }

// EndpointIndex flattens a NodeEp to a dense index.
func (m *Machine) EndpointIndex(ne NodeEp) int { return ne.Node*NumEndpoints + ne.Ep }

// EndpointByIndex is the inverse of EndpointIndex.
func (m *Machine) EndpointByIndex(i int) NodeEp {
	return NodeEp{Node: i / NumEndpoints, Ep: i % NumEndpoints}
}
