package telemetry_test

import (
	"math/rand"
	"testing"

	"anton2/internal/machine"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
)

// loadedMachine builds a 2x2x2 machine with endless uniform-random sources
// on every core endpoint and steps it to a saturated steady state, so that
// per-cycle measurements exercise the full router/adapter/endpoint hot path
// with warm pools and queues.
func loadedMachine(tb testing.TB, opts *telemetry.Options) *machine.Machine {
	tb.Helper()
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Telemetry = opts
	m := machine.MustNew(cfg)
	nodes := m.Topo.NumNodes()
	cores := m.Topo.Chip.CoreEndpoints()
	for n := 0; n < nodes; n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			rng := rand.New(rand.NewSource(int64(1 + n*64 + ep)))
			e := m.Endpoint(src)
			// Uniform-random destinations, drawn without the per-call
			// slice copy traffic.Uniform.Dest would make: the closure
			// must be allocation-free so the zero-alloc test below
			// measures the simulator, not the traffic generator.
			e.Source = func() *packet.Packet {
				dn := rng.Intn(nodes - 1)
				if dn >= src.Node {
					dn++
				}
				dst := topo.NodeEp{Node: dn, Ep: cores[rng.Intn(len(cores))]}
				return m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
			}
		}
	}
	for i := 0; i < 4096; i++ {
		m.Engine.Step()
	}
	return m
}

// TestStepTelemetryOffZeroAllocs pins the zero-cost-when-off contract at its
// sharpest point: with no collector attached, a steady-state simulation
// cycle must not allocate at all.
func TestStepTelemetryOffZeroAllocs(t *testing.T) {
	m := loadedMachine(t, nil)
	if avg := testing.AllocsPerRun(500, func() { m.Engine.Step() }); avg != 0 {
		t.Errorf("telemetry-off Engine.Step allocates %.2f objects/cycle, want 0", avg)
	}
}

func benchmarkStep(b *testing.B, opts *telemetry.Options) {
	m := loadedMachine(b, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Engine.Step()
	}
}

// BenchmarkEngineStepTelemetryOff is the baseline simulation cycle cost;
// compare with BenchmarkEngineStepTelemetryOn to price the collector.
func BenchmarkEngineStepTelemetryOff(b *testing.B) {
	benchmarkStep(b, nil)
}

// BenchmarkEngineStepTelemetryOn measures the enabled-collector overhead:
// per-cycle it is one window-boundary compare, plus channel-counter deltas
// and an occupancy scan amortized once per WindowCycles.
func BenchmarkEngineStepTelemetryOn(b *testing.B) {
	benchmarkStep(b, &telemetry.Options{WindowCycles: 256})
}
