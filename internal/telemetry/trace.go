package telemetry

import "anton2/internal/packet"

// PacketTrace is one packet's captured lifecycle: the raw tracepoint stream
// plus injection/delivery bounds.
type PacketTrace struct {
	ID          uint64              `json:"id"`
	Src         string              `json:"src"`
	Dst         string              `json:"dst"`
	InjectedAt  uint64              `json:"injected_at"`
	DeliveredAt uint64              `json:"delivered_at"`
	Events      []packet.TraceEvent `json:"events"`
}

// ChromeTraceFile is the Chrome trace_event JSON object format — load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
type ChromeTraceFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvent is one trace_event entry. Only the fields this exporter uses
// are modeled: "X" complete events carry ts+dur, "M" metadata events carry a
// name argument. Timestamps are microseconds.
type ChromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	PID  int         `json:"pid"`
	TID  uint64      `json:"tid"`
	Args *ChromeArgs `json:"args,omitempty"`
}

// ChromeArgs is the deterministic argument payload (a struct, not a map, so
// the JSON key order is fixed for golden tests).
type ChromeArgs struct {
	Name  string `json:"name,omitempty"`
	Cycle uint64 `json:"cycle,omitempty"`
}

// ChromeTrace converts captured packet traces into Chrome trace_event JSON.
// Each packet becomes one thread (tid = packet id) of a single "anton2"
// process: an enclosing "lifetime" slice from injection to delivery, with
// one nested slice per hop whose duration runs to the next tracepoint.
// cyclePS is the cycle time in picoseconds.
func ChromeTrace(traces []PacketTrace, cyclePS float64) *ChromeTraceFile {
	us := func(cycle uint64) float64 { return float64(cycle) * cyclePS / 1e6 }
	f := &ChromeTraceFile{DisplayTimeUnit: "ns"}
	f.TraceEvents = append(f.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Args: &ChromeArgs{Name: "anton2"},
	})
	for _, t := range traces {
		f.TraceEvents = append(f.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", TID: t.ID,
			Args: &ChromeArgs{Name: "pkt " + t.Src + " -> " + t.Dst},
		})
		f.TraceEvents = append(f.TraceEvents, ChromeEvent{
			Name: "lifetime", Cat: "packet", Ph: "X",
			TS: us(t.InjectedAt), Dur: us(t.DeliveredAt) - us(t.InjectedAt),
			TID: t.ID, Args: &ChromeArgs{Cycle: t.InjectedAt},
		})
		for i, ev := range t.Events {
			end := t.DeliveredAt
			if i+1 < len(t.Events) {
				end = t.Events[i+1].Cycle
			}
			if end < ev.Cycle {
				end = ev.Cycle
			}
			f.TraceEvents = append(f.TraceEvents, ChromeEvent{
				Name: ev.Stage, Cat: "hop", Ph: "X",
				TS: us(ev.Cycle), Dur: us(end) - us(ev.Cycle),
				TID: t.ID, Args: &ChromeArgs{Cycle: ev.Cycle},
			})
		}
	}
	return f
}
