package telemetry

import (
	"strings"
	"testing"

	"anton2/internal/topo"
)

func TestUtilizationNormalization(t *testing.T) {
	// A mesh channel (1000 milli-cycles/flit) moving one flit per cycle is
	// fully utilized; a torus channel (e.g. 3214 milli-cycles/flit) reaches
	// 1.0 at one flit per 3.214 cycles.
	if u := utilization(1000, 1000, 1000); u != 1 {
		t.Errorf("mesh at line rate: utilization %g, want 1", u)
	}
	if u := utilization(1000, 3214, 3214); u != 1 {
		t.Errorf("torus at line rate: utilization %g, want 1", u)
	}
	if u := utilization(500, 1000, 1000); u != 0.5 {
		t.Errorf("half rate: utilization %g, want 0.5", u)
	}
	if u := utilization(123, 1000, 0); u != 0 {
		t.Errorf("zero-cycle run: utilization %g, want 0", u)
	}
}

func TestJainNonzeroIgnoresIdleInputs(t *testing.T) {
	// Two equally served VCs and two idle ones: fairness over the active
	// inputs is perfect.
	if j := jainNonzero([]uint64{5, 0, 5, 0}); j != 1 {
		t.Errorf("jainNonzero = %g, want 1", j)
	}
	if j := jainNonzero(nil); j != 1 {
		t.Errorf("jainNonzero(nil) = %g, want 1", j)
	}
}

func TestShadeBounds(t *testing.T) {
	cases := []struct {
		u    float64
		want byte
	}{
		{0, ' '}, {0.05, ' '}, {0.15, '.'}, {0.95, '@'},
		{1.0, '@'}, {5, '@'}, {-1, ' '},
	}
	for _, c := range cases {
		if got := shade(c.u); got != c.want {
			t.Errorf("shade(%g) = %q, want %q", c.u, got, c.want)
		}
	}
}

func TestRenderHeatmapLayout(t *testing.T) {
	r := &Report{
		Cycles:   100,
		NumNodes: 2,
		Channels: []ChannelStat{
			{ID: 0, Node: 1, Adapter: 0, Torus: true, Utilization: 0.95},
			{ID: 1, Node: 0, Adapter: -1, Utilization: 0.2},
		},
	}
	out := RenderHeatmap(r)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, one row per adapter, summary.
	if want := topo.NumChannelAdapters + 2; len(lines) != want {
		t.Fatalf("heatmap has %d lines, want %d:\n%s", len(lines), want, out)
	}
	row := lines[1]
	if !strings.Contains(row, topo.AdapterByIndex(0).String()) {
		t.Errorf("first row %q missing adapter label %q", row, topo.AdapterByIndex(0).String())
	}
	if row[len(row)-1] != '@' || row[len(row)-2] != ' ' {
		t.Errorf("first row %q: want idle node 0 and saturated node 1", row)
	}
	if !strings.Contains(lines[len(lines)-1], "torus mean") || !strings.Contains(lines[len(lines)-1], "mesh mean") {
		t.Errorf("summary line %q missing torus/mesh summaries", lines[len(lines)-1])
	}
}
