package telemetry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/")

// captureTrace runs one fully pinned packet — node 0 to its +X neighbor with
// fixed routing choices on a 2x2x2 machine — under a one-packet trace budget
// and converts the capture to Chrome trace_event form. Everything about the
// run is deterministic, so the output can be byte-compared against a golden
// file.
func captureTrace(t *testing.T) *telemetry.ChromeTraceFile {
	t.Helper()
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	var report *telemetry.Report
	cfg.Telemetry = &telemetry.Options{
		TracePackets: 1,
		Sink:         func(r *telemetry.Report) { report = r },
	}
	m := machine.MustNew(cfg)
	tm := m.Topo
	ep := tm.Chip.CoreEndpoints()[0]
	src := topo.NodeEp{Node: 0, Ep: ep}
	dst := topo.NodeEp{
		Node: tm.Shape.NodeID(tm.Shape.Neighbor(tm.Shape.Coord(0), topo.XPos)),
		Ep:   ep,
	}
	choices := route.Choices{Order: topo.AllDimOrders[0], Ties: [topo.NumDims]int8{1, 1, 1}}
	m.Endpoint(src).Inject(m.MakePacket(src, dst, choices, route.ClassRequest, 0, 1))
	if _, err := m.RunUntilDelivered(1, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Traces) != 1 {
		t.Fatalf("expected exactly one packet trace, got report %+v", report)
	}
	if tr := report.Traces[0]; len(tr.Events) == 0 || tr.DeliveredAt <= tr.InjectedAt {
		t.Fatalf("degenerate trace: %+v", tr)
	}
	return telemetry.ChromeTrace(report.Traces, machine.CyclePS)
}

// TestChromeTraceGolden pins the exporter's exact JSON: a single
// nearest-neighbor packet's trace must not drift, because any change to
// tracepoint placement, timestamp scaling, or serialization shows up in
// Perfetto renderings.
func TestChromeTraceGolden(t *testing.T) {
	got, err := json.MarshalIndent(captureTrace(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden", "trace.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden trace drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeTraceWellFormed validates the exporter output against the
// trace_event schema subset Perfetto loads: a top-level traceEvents array
// whose entries are either "M" metadata events carrying a name argument or
// "X" complete events with non-negative microsecond ts/dur, with every hop
// slice nested inside its packet's lifetime slice.
func TestChromeTraceWellFormed(t *testing.T) {
	raw, err := json.Marshal(captureTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("no traceEvents key in trace JSON")
	}
	var events []map[string]any
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatal(err)
	}
	// At minimum: process metadata, thread metadata, lifetime, one hop.
	if len(events) < 4 {
		t.Fatalf("only %d trace events", len(events))
	}
	var lifetime map[string]any
	var hops []map[string]any
	for i, ev := range events {
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		switch ph, _ := ev["ph"].(string); ph {
		case "M":
			args, _ := ev["args"].(map[string]any)
			if s, _ := args["name"].(string); s == "" {
				t.Errorf("metadata event %q has no args.name", name)
			}
		case "X":
			ts, tok := ev["ts"].(float64)
			dur, dok := ev["dur"].(float64)
			if !tok || !dok || ts < 0 || dur < 0 {
				t.Errorf("complete event %q has bad ts/dur: %v", name, ev)
			}
			if name == "lifetime" {
				lifetime = ev
			} else {
				hops = append(hops, ev)
			}
		default:
			t.Errorf("event %d (%q): unsupported phase %q", i, name, ph)
		}
	}
	if lifetime == nil || len(hops) == 0 {
		t.Fatalf("missing lifetime or hop slices (lifetime %v, %d hops)", lifetime, len(hops))
	}
	start := lifetime["ts"].(float64)
	end := start + lifetime["dur"].(float64)
	prev := start
	for _, h := range hops {
		ts := h["ts"].(float64)
		if ts < prev {
			t.Errorf("hop %q at ts %g out of order (previous %g)", h["name"], ts, prev)
		}
		if ts < start || ts+h["dur"].(float64) > end {
			t.Errorf("hop %q [%g,%g] escapes lifetime [%g,%g]",
				h["name"], ts, ts+h["dur"].(float64), start, end)
		}
		prev = ts
	}
}
