package telemetry_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/power"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// familyJobs builds a small sweep covering all four experiment families
// (throughput, blend, latency, energy) on the given shape; energy uses the
// single-node machine its two-route subtraction needs. tel supplies each
// job's telemetry options: nil for an off run, fresh Options for an on run.
func familyJobs(shape topo.TorusShape, tel func() *telemetry.Options) []exp.Job {
	var jobs []exp.Job
	for _, b := range []int{2, 4} {
		mc := machine.DefaultConfig(shape)
		mc.Telemetry = tel()
		jobs = append(jobs, core.ThroughputJob(core.ThroughputConfig{
			Machine: mc, Pattern: traffic.Uniform{}, Batch: b,
		}))
	}
	for _, f := range []float64{0, 1} {
		mc := machine.DefaultConfig(shape)
		mc.Telemetry = tel()
		jobs = append(jobs, core.BlendJob(core.BlendConfig{
			Machine: mc, Weights: core.WeightsBoth, ForwardFraction: f, Batch: 2,
		}))
	}
	lcfg := core.DefaultLatencyConfig(shape)
	lcfg.PingPongs, lcfg.PairsPerHop = 2, 2
	lcfg.Machine.Telemetry = tel()
	jobs = append(jobs, core.LatencyJob(lcfg))
	for _, r := range [][2]int{{1, 2}, {1, 1}} {
		mc := machine.DefaultConfig(topo.Shape3(1, 1, 1))
		mc.Telemetry = tel()
		jobs = append(jobs, core.EnergyJob(core.EnergyConfig{
			Machine: mc, Model: power.PaperModel,
			RateNum: r[0], RateDen: r[1],
			Payload: core.PayloadRandom, Flits: 200,
		}))
	}
	return jobs
}

// TestTelemetryBitIdentity: a full 4x4x4 sweep with telemetry enabled must
// produce byte-identical experiment results to a telemetry-off run, for all
// four experiment families, and the telemetry toggle must not leak into the
// experiment specs (identical canonical forms and cache keys, hence
// identical derived machine seeds).
func TestTelemetryBitIdentity(t *testing.T) {
	shape := topo.Shape3(4, 4, 4)
	if testing.Short() {
		// Tornado shifts K/2-1 per dimension, so radix 2 would degenerate
		// the blend family to self-addressed traffic; radix 4 in X keeps
		// every family live at -short scale.
		shape = topo.Shape3(4, 2, 2)
	}
	dir := t.TempDir()
	seq := 0
	off := familyJobs(shape, func() *telemetry.Options { return nil })
	on := familyJobs(shape, func() *telemetry.Options {
		seq++
		return &telemetry.Options{
			// Small windows with a low merge bound exercise the adaptive
			// window-merging path during the runs.
			WindowCycles: 64, MaxWindows: 4,
			TracePackets: 2, OccBins: 8,
			Dir: dir, Name: fmt.Sprintf("p%02d", seq),
		}
	})
	if len(off) != len(on) {
		t.Fatalf("job lists differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if oc, nc := off[i].Spec.Canonical(), on[i].Spec.Canonical(); oc != nc {
			t.Errorf("job %d: spec changed with telemetry on:\n  off %s\n  on  %s", i, oc, nc)
		}
		if off[i].Spec.Hash() != on[i].Spec.Hash() {
			t.Errorf("job %d: spec hash (cache key) changed with telemetry on", i)
		}
	}

	rsOff := exp.Run(off, exp.Serial())
	rsOn := exp.Run(on, exp.Serial())
	if err := exp.FirstErr(rsOff); err != nil {
		t.Fatal(err)
	}
	if err := exp.FirstErr(rsOn); err != nil {
		t.Fatal(err)
	}
	bOff, err := exp.MarshalCanonical(rsOff)
	if err != nil {
		t.Fatal(err)
	}
	bOn, err := exp.MarshalCanonical(rsOn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bOff, bOn) {
		t.Errorf("telemetry perturbed the sweep: canonical artifacts differ (%d vs %d bytes)", len(bOff), len(bOn))
	}

	// Every telemetry-on job must have emitted its report artifact.
	for i := 1; i <= seq; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("p%02d.json", i))); err != nil {
			t.Errorf("job artifact missing: %v", err)
		}
	}
}

// TestTelemetryEngineParity: telemetry reports — windowed per-channel flit
// series, occupancy histograms, grant shares, cycle counts — must be
// byte-identical between the scan engine and the active-set engine.
// Installing the collector hooks Engine.AfterStep, which disables idle-cycle
// jumping, so every sampling window closes on exactly the same cycle in both
// modes; this test pins that contract end to end through a real workload.
func TestTelemetryEngineParity(t *testing.T) {
	report := func(engine string) []byte {
		dir := t.TempDir()
		mc := machine.DefaultConfig(topo.Shape3(2, 2, 2))
		mc.Engine = engine
		mc.Telemetry = &telemetry.Options{
			WindowCycles: 64, MaxWindows: 4,
			TracePackets: 2, OccBins: 8,
			Dir: dir, Name: "parity",
		}
		rs := exp.Run([]exp.Job{core.ThroughputJob(core.ThroughputConfig{
			Machine: mc, Pattern: traffic.Uniform{}, Batch: 4,
		})}, exp.Serial())
		if err := exp.FirstErr(rs); err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "parity.json"))
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return data
	}
	scan, active := report(machine.EngineScan), report(machine.EngineActive)
	if !bytes.Equal(scan, active) {
		t.Errorf("telemetry reports diverge between engines (%d vs %d bytes)", len(scan), len(active))
	}
}
