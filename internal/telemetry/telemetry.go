// Package telemetry is the opt-in observability layer for the simulated
// machine: time-resolved per-channel flit counts and utilization, per-router
// per-VC occupancy histograms, per-arbiter grant counters (so Section 3's
// equality-of-service claim can be checked as Jain's index over grant shares
// at any port), and packet lifecycle traces exportable as Chrome trace_event
// JSON for Perfetto.
//
// Like internal/check, the layer follows the zero-cost-when-off discipline:
// every hook site in the machine guards on a nil collector, so disabled
// telemetry costs one predicted branch and zero allocations per cycle, and an
// enabled collector only ever reads simulation state — it never perturbs
// results, seeds, or experiment cache keys. The bit-identity tests in this
// package enforce that.
//
// The package deliberately does not import internal/machine (machine imports
// telemetry); the Env struct carries the few machine facts the collector
// needs.
package telemetry

import (
	"anton2/internal/exp"
	"anton2/internal/fabric"
	"anton2/internal/packet"
	"anton2/internal/stats"
	"anton2/internal/topo"
	"anton2/internal/trace"
)

// Defaults for the zero Options value.
const (
	DefaultWindowCycles = 1024
	DefaultMaxWindows   = 64
	DefaultOccBins      = 16
)

// Options tunes a collector. The zero value gives sensible defaults with
// packet tracing disabled.
type Options struct {
	// WindowCycles is the sampling window width in cycles (default 1024).
	// Per-channel flit counts are accumulated per window, giving a
	// time-resolved analogue of loadcalc.Loads.
	WindowCycles uint64
	// MaxWindows bounds the number of windows kept per channel (default
	// 64, rounded up to even). When a run outgrows the bound, the window
	// width doubles and adjacent windows merge, so memory stays constant
	// for arbitrarily long runs.
	MaxWindows int
	// TracePackets is the lifecycle-trace budget: the first N eligible
	// unicast packets injected get a full hop-by-hop trace (default 0 =
	// tracing off). Packets the caller already started tracing via
	// packet.StartTrace are adopted without consuming budget.
	TracePackets int
	// OccBins is the per-(router,VC) occupancy histogram resolution
	// (default 16 bins).
	OccBins int

	// Dir, when non-empty, makes Finish write the report as
	// <Dir>/<Name>.json (plus <Dir>/<Name>.trace.json when packet traces
	// were collected) through the internal/exp artifact writer.
	Dir string
	// Name is the artifact base name (default "telemetry").
	Name string
	// Sink, when non-nil, receives the finished report in addition to —
	// or instead of — the JSON artifacts.
	Sink func(*Report)
	// Progress, when non-nil, is invoked from the engine AfterStep hook at
	// every sampling-window boundary with the number of cycles simulated
	// so far. It gives long-running consumers (anton2serve streams it to
	// clients) a live heartbeat at window granularity without adding any
	// per-cycle cost. Like every telemetry output it is observation-only:
	// the callback must not touch simulation state, and it runs on the
	// simulating goroutine, so it must be fast and non-blocking.
	Progress func(elapsedCycles uint64)
	// InjectionSink, when non-nil, receives one trace.Event per unicast
	// injection (multicast clones and circulating packets are skipped),
	// carrying the packet's route choices so a run's traffic can be
	// captured in the internal/trace recorded-trace format and replayed.
	// Like Progress it runs on the simulating goroutine and must not
	// touch simulation state.
	InjectionSink func(trace.Event)
}

// Env carries the observed machine's geometry and state accessors. It is
// filled by machine.New; the collector never mutates anything it references.
type Env struct {
	Topo     *topo.Machine
	Channels []*fabric.Channel // global channel id -> channel
	// MaxVCs is the per-port VC array stride (route.MaxTotalVCs).
	MaxVCs int
	// MeshVCBuf is the per-VC mesh buffer depth in flits (histogram
	// range scaling).
	MeshVCBuf int
	// CyclePS is the cycle time in picoseconds (trace timestamp scale).
	CyclePS float64
	// ScanVCOccupancy visits the queued flit count of every (chip router,
	// VC) pair, summed over the router's input ports, for one node after
	// another; the collector aggregates identically-placed routers across
	// nodes.
	ScanVCOccupancy func(visit func(router int, vc uint8, flits int))
	// FaultCounters, when non-nil, snapshots the machine's fault-injection
	// and reliable-link protocol counters for the report (nil when the
	// fault layer is not attached, keeping fault-free reports byte-stable).
	FaultCounters func() map[string]uint64
}

// Collector accumulates telemetry for one machine. All hook methods are safe
// to call every cycle; the only per-cycle cost off a window boundary is one
// compare in Cycle.
type Collector struct {
	env  Env
	opts Options

	maxVCs int

	window     uint64 // current window width in cycles
	nextSample uint64 // elapsed-cycle count of the next window boundary
	lastSample uint64 // elapsed-cycle count of the last sample taken
	partial    uint64 // width of the trailing partial window (0 = none)

	prevSent []uint64   // per-channel flit counter at the last sample
	series   [][]uint64 // per-channel flits per window

	// Per-(chip router, VC) occupancy, aggregated across nodes.
	occ      []*stats.Histogram
	occSum   []float64
	occCount []uint64
	occMax   []int

	// Grant counters, dense over every arbitration point.
	sa1  []uint64 // ((node*NumRouters+router)*MaxRouterPorts+port)*maxVCs + vc
	sa2  []uint64 // ((node*NumRouters+router)*MaxRouterPorts+outPort)*MaxRouterPorts + inPort
	adEg []uint64 // (node*NumChannelAdapters+adapter)*maxVCs + vc
	adIn []uint64 // (node*NumChannelAdapters+adapter)*maxVCs + vc

	traceBudget int
	traced      map[uint64]struct{}
	traces      []PacketTrace

	elapsed  uint64
	finished bool
	report   *Report
}

// NewCollector builds a collector for the given environment. machine.New
// calls this when Config.Telemetry is set; tests may build one directly.
func NewCollector(env Env, opts Options) *Collector {
	if opts.WindowCycles == 0 {
		opts.WindowCycles = DefaultWindowCycles
	}
	if opts.MaxWindows <= 0 {
		opts.MaxWindows = DefaultMaxWindows
	}
	if opts.MaxWindows%2 != 0 {
		opts.MaxWindows++
	}
	if opts.OccBins <= 0 {
		opts.OccBins = DefaultOccBins
	}
	if opts.Name == "" {
		opts.Name = "telemetry"
	}
	meshBuf := env.MeshVCBuf
	if meshBuf <= 0 {
		meshBuf = 64
	}
	nodes := env.Topo.NumNodes()
	c := &Collector{
		env:         env,
		opts:        opts,
		maxVCs:      env.MaxVCs,
		window:      opts.WindowCycles,
		nextSample:  opts.WindowCycles,
		prevSent:    make([]uint64, len(env.Channels)),
		series:      make([][]uint64, len(env.Channels)),
		occ:         make([]*stats.Histogram, topo.NumRouters*env.MaxVCs),
		occSum:      make([]float64, topo.NumRouters*env.MaxVCs),
		occCount:    make([]uint64, topo.NumRouters*env.MaxVCs),
		occMax:      make([]int, topo.NumRouters*env.MaxVCs),
		sa1:         make([]uint64, nodes*topo.NumRouters*topo.MaxRouterPorts*env.MaxVCs),
		sa2:         make([]uint64, nodes*topo.NumRouters*topo.MaxRouterPorts*topo.MaxRouterPorts),
		adEg:        make([]uint64, nodes*topo.NumChannelAdapters*env.MaxVCs),
		adIn:        make([]uint64, nodes*topo.NumChannelAdapters*env.MaxVCs),
		traceBudget: opts.TracePackets,
		traced:      make(map[uint64]struct{}),
	}
	// Occupancy can exceed one VC buffer when several input ports of the
	// same router queue into the same VC index; size the range for the
	// worst case and let histogram clamping absorb the rest.
	occRange := float64(meshBuf * topo.MaxRouterPorts)
	for i := range c.occ {
		c.occ[i] = stats.NewHistogram(0, occRange, opts.OccBins)
	}
	return c
}

// Cycle is the engine AfterStep hook: now is the cycle that just completed,
// so now+1 cycles have elapsed. Off a window boundary this is a single
// compare.
func (c *Collector) Cycle(now uint64) {
	if now+1 < c.nextSample {
		return
	}
	c.sample(now + 1)
}

// sample closes the window ending at elapsed cycles.
func (c *Collector) sample(elapsed uint64) {
	for i, ch := range c.env.Channels {
		sent := ch.FlitsSent()
		c.series[i] = append(c.series[i], sent-c.prevSent[i])
		c.prevSent[i] = sent
	}
	c.scanOcc()
	c.lastSample = elapsed
	if len(c.series) > 0 && len(c.series[0]) >= c.opts.MaxWindows {
		c.mergeWindows()
	}
	c.nextSample = elapsed + c.window
	if c.opts.Progress != nil {
		c.opts.Progress(elapsed)
	}
}

// mergeWindows halves the series by summing adjacent windows and doubles the
// window width, keeping memory bounded for arbitrarily long runs. MaxWindows
// is even, so the halving is exact and window boundaries stay aligned.
func (c *Collector) mergeWindows() {
	half := len(c.series[0]) / 2
	for i := range c.series {
		s := c.series[i]
		for j := 0; j < half; j++ {
			s[j] = s[2*j] + s[2*j+1]
		}
		c.series[i] = s[:half]
	}
	c.window *= 2
}

func (c *Collector) scanOcc() {
	if c.env.ScanVCOccupancy == nil {
		return
	}
	c.env.ScanVCOccupancy(c.addOcc)
}

func (c *Collector) addOcc(router int, vc uint8, flits int) {
	i := router*c.maxVCs + int(vc)
	c.occ[i].Add(float64(flits))
	c.occSum[i] += float64(flits)
	c.occCount[i]++
	if flits > c.occMax[i] {
		c.occMax[i] = flits
	}
}

// OnSA1Grant records an input-port switch-arbitration nomination: the given
// VC won port's SA1 stage this cycle.
func (c *Collector) OnSA1Grant(node, router, port, vc int) {
	c.sa1[((node*topo.NumRouters+router)*topo.MaxRouterPorts+port)*c.maxVCs+vc]++
}

// OnSA2Grant records an output-port switch-arbitration grant: the given
// input port won outPort's SA2 stage and transferred a packet.
func (c *Collector) OnSA2Grant(node, router, outPort, inPort int) {
	c.sa2[((node*topo.NumRouters+router)*topo.MaxRouterPorts+outPort)*topo.MaxRouterPorts+inPort]++
}

// OnAdapterGrant records a channel-adapter arbitration win (egress: mesh
// onto the torus serializer; ingress: torus toward the router) for the given
// arrival VC.
func (c *Collector) OnAdapterGrant(egress bool, node, adapter, vc int) {
	if egress {
		c.adEg[(node*topo.NumChannelAdapters+adapter)*c.maxVCs+vc]++
	} else {
		c.adIn[(node*topo.NumChannelAdapters+adapter)*c.maxVCs+vc]++
	}
}

// OnInject considers a freshly injected packet for lifecycle tracing.
// Multicast and circulating packets are skipped: multicast clones alias the
// original's trace buffer, and circulating packets never deliver. A packet
// the caller already traced is adopted without consuming budget.
func (c *Collector) OnInject(p *packet.Packet, now uint64) {
	if p.Circulate || p.MGroup >= 0 {
		return
	}
	if c.opts.InjectionSink != nil {
		c.opts.InjectionSink(trace.FromPacket(p, now))
	}
	if p.Trace == nil {
		if c.traceBudget <= 0 {
			return
		}
		c.traceBudget--
		p.StartTrace()
	}
	c.traced[p.ID] = struct{}{}
}

// OnDeliver captures the completed trace of a tracked packet before the
// machine recycles it.
func (c *Collector) OnDeliver(p *packet.Packet, now uint64) {
	if len(c.traced) == 0 {
		return
	}
	if _, ok := c.traced[p.ID]; !ok {
		return
	}
	delete(c.traced, p.ID)
	c.traces = append(c.traces, PacketTrace{
		ID:          p.ID,
		Src:         epName(p.Src),
		Dst:         epName(p.Dst),
		InjectedAt:  p.InjectedAt,
		DeliveredAt: p.DeliveredAt,
		Events:      append([]packet.TraceEvent(nil), p.Trace...),
	})
}

// Finish closes the trailing partial window, builds the report, and emits it
// through the configured sink and artifact directory. elapsed is the total
// cycles simulated (sim.Engine.Now()). Finish is idempotent.
func (c *Collector) Finish(elapsed uint64) error {
	if c.finished {
		return nil
	}
	c.finished = true
	if elapsed > c.lastSample {
		c.partial = elapsed - c.lastSample
		for i, ch := range c.env.Channels {
			sent := ch.FlitsSent()
			c.series[i] = append(c.series[i], sent-c.prevSent[i])
			c.prevSent[i] = sent
		}
		c.scanOcc()
	}
	c.elapsed = elapsed
	c.report = c.buildReport()
	if c.opts.Sink != nil {
		c.opts.Sink(c.report)
	}
	if c.opts.Dir != "" {
		if _, err := exp.WriteJSON(c.opts.Dir, c.opts.Name, c.report); err != nil {
			return err
		}
		if len(c.report.Traces) > 0 {
			trace := ChromeTrace(c.report.Traces, c.env.CyclePS)
			if _, err := exp.WriteJSON(c.opts.Dir, c.opts.Name+".trace", trace); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report returns the finished report (building it on the fly if Finish has
// not run, for mid-run inspection).
func (c *Collector) Report() *Report {
	if c.report != nil {
		return c.report
	}
	return c.buildReport()
}
