package telemetry_test

import (
	"math"
	"math/rand"
	"testing"

	"anton2/internal/loadcalc"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// TestTelemetryConservation runs a uniform random burst under both the
// invariant suite and the telemetry collector and audits the report against
// independent sources of truth:
//
//   - per-channel flit/packet totals equal the fabric's own counters, and
//     the windowed series sums back to the lifetime total;
//   - the run quiesces, so endpoint egress packets equal the injected count
//     (injected minus in-flight, with in-flight zero);
//   - every packet send is attributable to a recorded arbiter grant;
//   - per-adapter torus flits agree with the analytic loadcalc prediction
//     within sampling tolerance.
func TestTelemetryConservation(t *testing.T) {
	shape := topo.Shape3(3, 3, 2)
	cfg := machine.DefaultConfig(shape)
	cfg.Check = true
	var report *telemetry.Report
	cfg.Telemetry = &telemetry.Options{
		WindowCycles: 128, MaxWindows: 6, TracePackets: 3,
		Sink: func(r *telemetry.Report) { report = r },
	}
	m := machine.MustNew(cfg)
	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	l := loadcalc.Compute(m.RouteConfig(), cores, traffic.Uniform{}.Flows(tm), route.ClassRequest)

	const batch = 48
	rng := rand.New(rand.NewSource(41))
	total := uint64(0)
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < batch; i++ {
				dst := traffic.Uniform{}.Dest(tm, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	if _, err := m.RunUntilDelivered(total, 5_000_000); err != nil {
		t.Fatal(err)
	}
	// FinishChecks runs the invariant suite's own conservation audit (flits
	// in == flits out) and then finalizes telemetry into the sink.
	if err := m.FinishChecks(); err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("telemetry sink never ran")
	}

	// Channels are reported in global id order; everything below indexes by
	// id.
	for i, cs := range report.Channels {
		if cs.ID != i {
			t.Fatalf("channel %d reported out of order (id %d)", i, cs.ID)
		}
	}

	// Per-channel totals are exactly the fabric counters, and the windowed
	// series (torus channels) sums back to the lifetime total.
	for _, cs := range report.Channels {
		ch := m.Chan(cs.ID)
		if cs.Flits != ch.FlitsSent() || cs.Packets != ch.Pkts {
			t.Fatalf("channel %d (%s): report %d flits / %d pkts, fabric %d / %d",
				cs.ID, cs.Name, cs.Flits, cs.Packets, ch.FlitsSent(), ch.Pkts)
		}
		if cs.Torus && cs.WindowFlitTotal() != cs.Flits {
			t.Errorf("channel %d (%s): window series sums to %d, lifetime %d",
				cs.ID, cs.Name, cs.WindowFlitTotal(), cs.Flits)
		}
	}

	// The drained run left nothing in flight, so the endpoint->router
	// channels carried each injected packet exactly once.
	var epOut uint64
	for n := 0; n < tm.NumNodes(); n++ {
		for ep := range tm.Chip.Endpoints {
			epOut += report.Channels[tm.IntraChanID(n, tm.Chip.Endpoints[ep].ToRouter)].Packets
		}
	}
	if epOut != m.Injected() || m.Injected() != m.Delivered() {
		t.Errorf("endpoint egress packets %d, injected %d, delivered %d",
			epOut, m.Injected(), m.Delivered())
	}

	// Grant attribution: every torus packet send is one adapter egress
	// grant, and every mesh packet send is an endpoint injection, an
	// adapter ingress grant, or a router SA2 transfer.
	var meshPkts, torusPkts uint64
	for _, cs := range report.Channels {
		if cs.Torus {
			torusPkts += cs.Packets
		} else {
			meshPkts += cs.Packets
		}
	}
	grants := map[string]uint64{}
	for _, s := range report.ArbSummary {
		grants[s.Kind] = s.TotalGrants
	}
	if grants["adapter-egress"] != torusPkts {
		t.Errorf("adapter egress grants %d, torus packet sends %d", grants["adapter-egress"], torusPkts)
	}
	if got := epOut + grants["adapter-ingress"] + grants["sa2"]; got != meshPkts {
		t.Errorf("mesh packet sends %d, attributed %d (inject %d + ingress %d + sa2 %d)",
			meshPkts, got, epOut, grants["adapter-ingress"], grants["sa2"])
	}
	// SA1 nominates, SA2 transfers: a nomination is only consumed by a
	// transfer, so nominations can exceed transfers but never trail them.
	if grants["sa1"] < grants["sa2"] {
		t.Errorf("sa1 nominations %d < sa2 transfers %d", grants["sa1"], grants["sa2"])
	}

	// Per-adapter torus flit totals match the analytic loadcalc prediction
	// for uniform random traffic within sampling tolerance.
	var simTorus float64
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		ad := topo.AdapterByIndex(ai)
		var flits uint64
		for n := 0; n < tm.NumNodes(); n++ {
			flits += report.Channels[tm.TorusChanID(n, ad.Dir, ad.Slice)].Flits
		}
		want := l.Torus[ai] * float64(tm.NumNodes()) * batch
		simTorus += float64(flits)
		if want == 0 {
			if flits != 0 {
				t.Errorf("adapter %v: %d flits on an analytically unloaded adapter", ad, flits)
			}
			continue
		}
		if rel := math.Abs(float64(flits)-want) / want; rel > 0.08 {
			t.Errorf("adapter %v: telemetry %d flits vs analytic %.0f (%.1f%% off)", ad, flits, want, 100*rel)
		}
	}
	simHops := simTorus / float64(total)
	if rel := math.Abs(simHops-l.MeanTorusHops) / l.MeanTorusHops; rel > 0.03 {
		t.Errorf("mean torus hops: telemetry %.3f vs analytic %.3f (%.1f%% off)", simHops, l.MeanTorusHops, 100*rel)
	}

	// Occupancy and trace sanity.
	if len(report.VCOccupancy) == 0 {
		t.Error("no VC occupancy stats recorded")
	}
	for _, o := range report.VCOccupancy {
		if o.Samples == 0 || o.MeanFlits < 0 || float64(o.MaxFlits) < o.MeanFlits || o.P99Flits < o.P50Flits {
			t.Errorf("inconsistent occupancy stat: %+v", o)
		}
	}
	if len(report.Traces) != 3 {
		t.Errorf("trace budget 3, captured %d", len(report.Traces))
	}
	for _, tr := range report.Traces {
		if len(tr.Events) == 0 || tr.DeliveredAt < tr.InjectedAt {
			t.Errorf("bad trace %d: %d events over [%d,%d]", tr.ID, len(tr.Events), tr.InjectedAt, tr.DeliveredAt)
		}
	}
}
