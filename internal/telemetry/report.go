package telemetry

import (
	"fmt"

	"anton2/internal/stats"
	"anton2/internal/topo"
)

// Report is the JSON-serializable summary a collector produces at Finish.
type Report struct {
	// Cycles is the total simulated cycle count the report covers.
	Cycles uint64 `json:"cycles"`
	// WindowCycles is the final sampling window width (it doubles from
	// Options.WindowCycles each time the window series was merged).
	WindowCycles uint64 `json:"window_cycles"`
	// LastWindowCycles is the width of the trailing partial window, 0 if
	// the run ended exactly on a boundary.
	LastWindowCycles uint64 `json:"last_window_cycles,omitempty"`
	NumNodes         int    `json:"num_nodes"`

	Channels    []ChannelStat `json:"channels"`
	VCOccupancy []OccStat     `json:"vc_occupancy"`
	Arbiters    []ArbStat     `json:"arbiters"`
	ArbSummary  []ArbSummary  `json:"arb_summary"`
	Traces      []PacketTrace `json:"traces,omitempty"`
	// Faults holds the fault-injection and reliable-link protocol event
	// counts by name; present only when the machine ran with a fault spec.
	Faults map[string]uint64 `json:"faults,omitempty"`
}

// ChannelStat summarizes one directed channel. Utilization is normalized to
// the channel's effective bandwidth (1.0 = every available flit slot used),
// so mesh and serialized torus channels are directly comparable.
type ChannelStat struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Node int    `json:"node"`
	// Adapter is the torus adapter index (direction x slice) for torus
	// channels, -1 for mesh channels.
	Adapter     int     `json:"adapter"`
	Torus       bool    `json:"torus"`
	RateMilli   uint64  `json:"rate_milli"`
	Flits       uint64  `json:"flits"`
	Packets     uint64  `json:"packets"`
	Utilization float64 `json:"utilization"`
	// WindowFlits is the per-window flit series (torus channels only, to
	// keep artifacts compact; the lifetime totals above cover every
	// channel).
	WindowFlits []uint64 `json:"window_flits,omitempty"`
}

// OccStat is the occupancy distribution of one (chip router, VC) pair,
// aggregated over nodes and the router's input ports, sampled once per
// window.
type OccStat struct {
	Router    int      `json:"router"`
	VC        uint8    `json:"vc"`
	Samples   uint64   `json:"samples"`
	MeanFlits float64  `json:"mean_flits"`
	MaxFlits  int      `json:"max_flits"`
	P50Flits  float64  `json:"p50_flits"`
	P99Flits  float64  `json:"p99_flits"`
	BinWidth  float64  `json:"bin_width"`
	Counts    []uint64 `json:"counts"`
}

// ArbStat is the grant distribution of one arbitration point, aggregated
// over nodes. Inputs are VCs for sa1 and the adapter paths, input ports for
// sa2. Jain is Jain's fairness index over the inputs that received at least
// one grant (1 = perfectly equal service).
type ArbStat struct {
	Kind    string   `json:"kind"` // sa1 | sa2 | adapter-egress | adapter-ingress
	Router  int      `json:"router,omitempty"`
	Port    int      `json:"port,omitempty"`
	Adapter string   `json:"adapter,omitempty"`
	Grants  []uint64 `json:"grants"`
	Total   uint64   `json:"total"`
	Jain    float64  `json:"jain"`
}

// ArbSummary aggregates fairness per arbiter kind across all active points.
type ArbSummary struct {
	Kind        string  `json:"kind"`
	Points      int     `json:"points"`
	TotalGrants uint64  `json:"total_grants"`
	MinJain     float64 `json:"min_jain"`
	MeanJain    float64 `json:"mean_jain"`
}

func epName(ne topo.NodeEp) string { return fmt.Sprintf("n%d:ep%d", ne.Node, ne.Ep) }

// utilization converts a flit count over a cycle span into a fraction of the
// channel's effective bandwidth.
func utilization(flits uint64, rateMilli, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	capacity := float64(cycles) * 1000 / float64(rateMilli)
	return float64(flits) / capacity
}

func (c *Collector) buildReport() *Report {
	r := &Report{
		Cycles:           c.elapsed,
		WindowCycles:     c.window,
		LastWindowCycles: c.partial,
		NumNodes:         c.env.Topo.NumNodes(),
		Traces:           c.traces,
	}
	c.channelStats(r)
	c.occStats(r)
	c.arbStats(r)
	if c.env.FaultCounters != nil {
		r.Faults = c.env.FaultCounters()
	}
	return r
}

func (c *Collector) channelStats(r *Report) {
	r.Channels = make([]ChannelStat, 0, len(c.env.Channels))
	for id, ch := range c.env.Channels {
		cs := ChannelStat{
			ID:          id,
			Name:        ch.Name,
			Adapter:     -1,
			RateMilli:   ch.RateMilli(),
			Flits:       ch.FlitsSent(),
			Packets:     ch.Pkts,
			Utilization: utilization(ch.FlitsSent(), ch.RateMilli(), c.elapsed),
		}
		if c.env.Topo.IsTorusChan(id) {
			node, ad := c.env.Topo.TorusChanOf(id)
			cs.Node, cs.Adapter, cs.Torus = node, ad.Index(), true
			cs.WindowFlits = c.series[id]
		} else {
			node, _ := c.env.Topo.IntraChanOf(id)
			cs.Node = node
		}
		r.Channels = append(r.Channels, cs)
	}
}

func (c *Collector) occStats(r *Report) {
	for ri := 0; ri < topo.NumRouters; ri++ {
		for vc := 0; vc < c.maxVCs; vc++ {
			i := ri*c.maxVCs + vc
			h := c.occ[i]
			if h.Total == 0 {
				continue
			}
			r.VCOccupancy = append(r.VCOccupancy, OccStat{
				Router:    ri,
				VC:        uint8(vc),
				Samples:   h.Total,
				MeanFlits: c.occSum[i] / float64(c.occCount[i]),
				MaxFlits:  c.occMax[i],
				P50Flits:  h.Quantile(0.5),
				P99Flits:  h.Quantile(0.99),
				BinWidth:  (h.Max - h.Min) / float64(len(h.Counts)),
				Counts:    h.Counts,
			})
		}
	}
}

// jainNonzero is Jain's index over the inputs that received any grants.
func jainNonzero(grants []uint64) float64 {
	xs := make([]float64, 0, len(grants))
	for _, g := range grants {
		if g > 0 {
			xs = append(xs, float64(g))
		}
	}
	return stats.JainIndex(xs)
}

func (c *Collector) arbStats(r *Report) {
	nodes := c.env.Topo.NumNodes()
	add := func(st ArbStat) {
		for _, g := range st.Grants {
			st.Total += g
		}
		if st.Total == 0 {
			return
		}
		st.Jain = jainNonzero(st.Grants)
		r.Arbiters = append(r.Arbiters, st)
	}

	// SA1: per (router, input port), grants over VCs, summed across nodes.
	for ri := 0; ri < topo.NumRouters; ri++ {
		for pi := 0; pi < topo.MaxRouterPorts; pi++ {
			grants := make([]uint64, c.maxVCs)
			for n := 0; n < nodes; n++ {
				base := ((n*topo.NumRouters+ri)*topo.MaxRouterPorts + pi) * c.maxVCs
				for vc := 0; vc < c.maxVCs; vc++ {
					grants[vc] += c.sa1[base+vc]
				}
			}
			add(ArbStat{Kind: "sa1", Router: ri, Port: pi, Grants: grants})
		}
	}
	// SA2: per (router, output port), grants over input ports.
	for ri := 0; ri < topo.NumRouters; ri++ {
		for po := 0; po < topo.MaxRouterPorts; po++ {
			grants := make([]uint64, topo.MaxRouterPorts)
			for n := 0; n < nodes; n++ {
				base := ((n*topo.NumRouters+ri)*topo.MaxRouterPorts + po) * topo.MaxRouterPorts
				for pi := 0; pi < topo.MaxRouterPorts; pi++ {
					grants[pi] += c.sa2[base+pi]
				}
			}
			add(ArbStat{Kind: "sa2", Router: ri, Port: po, Grants: grants})
		}
	}
	// Adapter paths: per adapter (direction x slice), grants over VCs.
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		eg := make([]uint64, c.maxVCs)
		in := make([]uint64, c.maxVCs)
		for n := 0; n < nodes; n++ {
			base := (n*topo.NumChannelAdapters + ai) * c.maxVCs
			for vc := 0; vc < c.maxVCs; vc++ {
				eg[vc] += c.adEg[base+vc]
				in[vc] += c.adIn[base+vc]
			}
		}
		name := topo.AdapterByIndex(ai).String()
		add(ArbStat{Kind: "adapter-egress", Adapter: name, Grants: eg})
		add(ArbStat{Kind: "adapter-ingress", Adapter: name, Grants: in})
	}

	for _, kind := range []string{"sa1", "sa2", "adapter-egress", "adapter-ingress"} {
		s := ArbSummary{Kind: kind, MinJain: 1}
		var jainSum float64
		for _, st := range r.Arbiters {
			if st.Kind != kind {
				continue
			}
			s.Points++
			s.TotalGrants += st.Total
			jainSum += st.Jain
			if st.Jain < s.MinJain {
				s.MinJain = st.Jain
			}
		}
		if s.Points > 0 {
			s.MeanJain = jainSum / float64(s.Points)
		} else {
			s.MeanJain, s.MinJain = 1, 1
		}
		r.ArbSummary = append(r.ArbSummary, s)
	}
}

// TorusFlitTotal sums lifetime flits over torus channels; mesh analogue for
// MeshFlitTotal. Conservation tests cross-check these against the machine's
// own counters.
func (r *Report) TorusFlitTotal() uint64 {
	var total uint64
	for _, cs := range r.Channels {
		if cs.Torus {
			total += cs.Flits
		}
	}
	return total
}

// WindowFlitTotal sums a channel's window series (including the trailing
// partial window); it must equal the channel's lifetime flit count when the
// report was finalized after the run.
func (cs *ChannelStat) WindowFlitTotal() uint64 {
	var total uint64
	for _, f := range cs.WindowFlits {
		total += f
	}
	return total
}
