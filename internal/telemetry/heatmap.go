package telemetry

import (
	"fmt"
	"strings"

	"anton2/internal/topo"
)

// heatShades maps utilization deciles to ASCII density; index 0 covers
// exactly zero, the last index >= 0.9.
const heatShades = " .:-=+*#%@"

func shade(u float64) byte {
	i := int(u * 10)
	if i < 0 {
		i = 0
	}
	if i >= len(heatShades) {
		i = len(heatShades) - 1
	}
	return heatShades[i]
}

// RenderHeatmap renders the report's torus channel utilization as a compact
// text heatmap: one row per torus adapter (direction x slice), one column
// per node, shaded by lifetime utilization where '@' is >= 90% of effective
// bandwidth. A mesh/torus summary line follows.
func RenderHeatmap(r *Report) string {
	util := make([][]float64, topo.NumChannelAdapters)
	for i := range util {
		util[i] = make([]float64, r.NumNodes)
	}
	var meshSum, meshMax float64
	var torusSum, torusMax float64
	meshN, torusN := 0, 0
	for _, cs := range r.Channels {
		if cs.Torus {
			if cs.Adapter >= 0 && cs.Node < r.NumNodes {
				util[cs.Adapter][cs.Node] = cs.Utilization
			}
			torusSum += cs.Utilization
			torusN++
			if cs.Utilization > torusMax {
				torusMax = cs.Utilization
			}
		} else {
			meshSum += cs.Utilization
			meshN++
			if cs.Utilization > meshMax {
				meshMax = cs.Utilization
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "torus channel utilization over %d cycles (rows: adapter, cols: node 0..%d; '%c'=idle .. '%c'>=90%%)\n",
		r.Cycles, r.NumNodes-1, heatShades[0], heatShades[len(heatShades)-1])
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		fmt.Fprintf(&b, "  %-4s ", topo.AdapterByIndex(ai).String())
		for n := 0; n < r.NumNodes; n++ {
			b.WriteByte(shade(util[ai][n]))
		}
		b.WriteByte('\n')
	}
	if torusN > 0 {
		fmt.Fprintf(&b, "  torus mean %.3f max %.3f", torusSum/float64(torusN), torusMax)
	}
	if meshN > 0 {
		fmt.Fprintf(&b, "  |  mesh mean %.3f max %.3f", meshSum/float64(meshN), meshMax)
	}
	b.WriteByte('\n')
	return b.String()
}
