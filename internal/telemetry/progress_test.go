package telemetry

import (
	"testing"

	"anton2/internal/topo"
)

// TestProgressFiresAtWindowBoundaries pins the live-progress contract used
// by anton2serve: the callback fires exactly once per closed sampling
// window, with the elapsed cycle count, and never between boundaries.
func TestProgressFiresAtWindowBoundaries(t *testing.T) {
	var ticks []uint64
	c := NewCollector(Env{
		Topo:   topo.MustMachine(topo.Shape3(2, 2, 2)),
		MaxVCs: 1,
	}, Options{
		WindowCycles: 100,
		Progress:     func(elapsed uint64) { ticks = append(ticks, elapsed) },
	})
	for now := uint64(0); now < 350; now++ {
		c.Cycle(now)
	}
	want := []uint64{100, 200, 300}
	if len(ticks) != len(want) {
		t.Fatalf("progress fired %d times (%v), want %v", len(ticks), ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("progress ticks = %v, want %v", ticks, want)
		}
	}
}
