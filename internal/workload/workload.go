// Package workload models an MD timestep as dependent communication phases —
// the application-shaped traffic the Anton 2 network exists to serve. A
// timestep is three phases run back to back on one machine:
//
//	halo      — every core exchanges position data with nodes within an
//	            n-hop neighborhood, in bursts (traffic.Bursty over NHop)
//	multicast — every node distributes forces to its plane neighborhood
//	            through the compiled multicast tables of Section 2.3
//	reduce    — all cores send partial sums to the root node's cores
//	            (the global reduction closing the timestep)
//
// A phase completes when all of its deliveries have arrived and the fabric
// is quiescent (machine.Quiet) — the phase barrier — and the next phase's
// injections start on that exact cycle. The result is end-to-end timestep
// time, cycles per phase and total, rather than steady-state throughput.
//
// Quiescence is detected by stepping the engine manually, never through
// RunUntil: active-mode idle-cycle jumping would observe the quiet fabric at
// an engine-dependent cycle, and phase times must be bit-identical across
// the scan, active, and sharded kernels.
//
// Runs can record their injections into the internal/trace format
// (route choices captured pre strategy-Choose), and ReplayTrace re-injects a
// capture on a fresh identically-configured machine, reproducing the
// original per-phase cycle counts exactly.
package workload

import (
	"fmt"
	"math/rand"

	"anton2/internal/machine"
	"anton2/internal/multicast"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/topo"
	"anton2/internal/trace"
	"anton2/internal/traffic"
)

// Phase indices, in execution order.
const (
	PhaseHalo = iota
	PhaseMulticast
	PhaseReduce
	numPhases
)

var phaseNames = [numPhases]string{"halo", "multicast", "reduce"}

// PhaseName returns the report name of a phase index.
func PhaseName(i int) string {
	if i >= 0 && i < numPhases {
		return phaseNames[i]
	}
	return fmt.Sprintf("phase%d", i)
}

// Spec parameterizes one MD timestep. The zero value of any field means its
// default; Canonical strings (and therefore experiment cache keys) are always
// written with defaults applied.
type Spec struct {
	// HaloRadius is the neighbor-exchange locality in hops per dimension
	// (default 1: the 26-node neighborhood).
	HaloRadius int
	// HaloPackets is the number of halo packets each core sends per
	// timestep (default 8), in bursts of mean length HaloBurst (default 4).
	HaloPackets int
	HaloBurst   int
	// FanoutRadius is the plane-neighborhood radius of the force
	// multicast (default 1: the 3x3 XY plane around each node).
	FanoutRadius int
	// Multicasts is the number of multicast rounds each node injects per
	// timestep, alternating torus slices (default 2).
	Multicasts int
	// ReducePackets is the number of reduction packets each non-root core
	// sends to the root node (default 2).
	ReducePackets int
	// Timesteps is the number of timesteps run back to back (default 1).
	Timesteps int
}

// DefaultSpec is the baseline timestep used by the mdstep experiment family.
func DefaultSpec() Spec {
	return Spec{HaloRadius: 1, HaloPackets: 8, HaloBurst: 4, FanoutRadius: 1, Multicasts: 2, ReducePackets: 2, Timesteps: 1}
}

// WithDefaults replaces zero fields with their defaults.
func (s Spec) WithDefaults() Spec {
	d := DefaultSpec()
	if s.HaloRadius == 0 {
		s.HaloRadius = d.HaloRadius
	}
	if s.HaloPackets == 0 {
		s.HaloPackets = d.HaloPackets
	}
	if s.HaloBurst == 0 {
		s.HaloBurst = d.HaloBurst
	}
	if s.FanoutRadius == 0 {
		s.FanoutRadius = d.FanoutRadius
	}
	if s.Multicasts == 0 {
		s.Multicasts = d.Multicasts
	}
	if s.ReducePackets == 0 {
		s.ReducePackets = d.ReducePackets
	}
	if s.Timesteps == 0 {
		s.Timesteps = d.Timesteps
	}
	return s
}

// Validate rejects nonsensical or service-abusive specs. Bounds are loose —
// they exist so a bad request cannot ask the experiment server for an
// unbounded amount of simulation.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	check := func(name string, v, lo, hi int) error {
		if v < lo || v > hi {
			return fmt.Errorf("workload: %s = %d outside [%d, %d]", name, v, lo, hi)
		}
		return nil
	}
	for _, err := range []error{
		check("haloradius", s.HaloRadius, 1, 8),
		check("halopackets", s.HaloPackets, 1, 1024),
		check("haloburst", s.HaloBurst, 1, 256),
		check("fanoutradius", s.FanoutRadius, 1, 8),
		check("multicasts", s.Multicasts, 1, 64),
		check("reducepackets", s.ReducePackets, 1, 256),
		check("timesteps", s.Timesteps, 1, 64),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}

// Canonical renders the spec (defaults applied) as a single deterministic
// token for experiment cache keys and trace headers.
func (s Spec) Canonical() string {
	s = s.WithDefaults()
	return fmt.Sprintf("h%d.%d.%d-m%d.%d-r%d-t%d",
		s.HaloRadius, s.HaloPackets, s.HaloBurst, s.FanoutRadius, s.Multicasts, s.ReducePackets, s.Timesteps)
}

// GroupID maps (root node, torus slice) to the multicast group id Tables
// assigns.
func GroupID(node, slice int) int { return node*topo.NumSlices + slice }

// Tables compiles the force-distribution multicast tables the spec's
// multicast phase uses: for every node, one plane-neighborhood group per
// torus slice, rooted at the node's first core endpoint. PlaneNeighborhood
// does not dedupe wrap-aliased destinations on small radices, so Tables
// does; nodes whose neighborhood collapses entirely (degenerate shapes) get
// no groups, and Run then skips the multicast phase.
func (s Spec) Tables(tm *topo.Machine) map[int]*multicast.Compiled {
	s = s.WithDefaults()
	out := make(map[int]*multicast.Compiled)
	for n := 0; n < tm.NumNodes(); n++ {
		dests := s.fanoutDests(tm, n)
		if len(dests) == 0 {
			continue
		}
		root := tm.Shape.Coord(n)
		for sl := 0; sl < topo.NumSlices; sl++ {
			out[GroupID(n, sl)] = multicast.Build(tm.Shape, root, dests, topo.AllDimOrders[0], sl).Compile(tm.Shape)
		}
	}
	return out
}

// fanoutDests is the deduped plane neighborhood of node n, excluding the
// node itself.
func (s Spec) fanoutDests(tm *topo.Machine, n int) []topo.NodeEp {
	ep := tm.Chip.CoreEndpoints()[0]
	seen := map[topo.NodeEp]bool{}
	var dests []topo.NodeEp
	for _, d := range multicast.PlaneNeighborhood(tm.Shape, tm.Shape.Coord(n), topo.DimX, topo.DimY, s.FanoutRadius, ep) {
		if d.Node == n || seen[d] {
			continue
		}
		seen[d] = true
		dests = append(dests, d)
	}
	return dests
}

// PhaseResult reports one phase of one timestep. Injected counts logical
// injection operations (packets for unicast phases, multicast roots for the
// multicast phase); Delivered counts endpoint deliveries.
type PhaseResult struct {
	Timestep   int    `json:"timestep"`
	Phase      string `json:"phase"`
	Injected   uint64 `json:"injected"`
	Delivered  uint64 `json:"delivered"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	Cycles     uint64 `json:"cycles"`
}

// Result is the end-to-end timestep-time report of a run.
type Result struct {
	Phases      []PhaseResult `json:"phases"`
	TotalCycles uint64        `json:"total_cycles"`
	TotalNS     float64       `json:"total_ns"`
}

func (r *Result) finish() {
	if len(r.Phases) == 0 {
		return
	}
	r.TotalCycles = r.Phases[len(r.Phases)-1].EndCycle - r.Phases[0].StartCycle
	r.TotalNS = machine.CyclesToNS(float64(r.TotalCycles))
}

// quiesceBudget bounds the phase-barrier drain, same rationale as the
// machine's FinishChecks drain budget.
const quiesceBudget = 1 << 16

func defaultPhaseBudget(expected uint64) uint64 { return 400_000 + 64*expected }

// Progress is a run's driver-level position, captured alongside a machine
// snapshot when a checkpoint fires. Checkpoints fire only inside the
// delivery wait of a phase (the engine's checkpoint hook is consumed by
// RunUntil, never by the manual quiescence stepping), so at capture time the
// current phase is fully injected and Progress pins exactly where the
// resumed run re-enters: finish this phase's delivery wait, then continue.
type Progress struct {
	// Timestep and Phase locate the in-progress phase.
	Timestep int `json:"timestep"`
	Phase    int `json:"phase"`
	// Completed holds the results of every finished phase, in order.
	Completed []PhaseResult `json:"completed,omitempty"`
	// Before, Injected, Expected, and PhaseStart are the in-progress
	// phase's runPhase-local state.
	Before     uint64 `json:"before"`
	Injected   uint64 `json:"injected"`
	Expected   uint64 `json:"expected"`
	PhaseStart uint64 `json:"phase_start"`
}

// finishPhase runs the fabric until every expected delivery of an
// already-injected phase has arrived, then steps until quiescence — the
// phase barrier. Stepping manually keeps the observed quiescence cycle
// engine-invariant.
func finishPhase(m *machine.Machine, ts, idx int, maxPhaseCycles uint64, before, injected, expected, start uint64) (PhaseResult, error) {
	if expected > 0 {
		budget := maxPhaseCycles
		if budget == 0 {
			budget = defaultPhaseBudget(expected)
		}
		if _, err := m.RunUntilDelivered(before+expected, budget); err != nil {
			return PhaseResult{}, fmt.Errorf("workload: %s phase (timestep %d): %w", PhaseName(idx), ts, err)
		}
	}
	for i := 0; i < quiesceBudget && !m.Quiet(); i++ {
		m.Engine.Step()
	}
	if !m.Quiet() {
		return PhaseResult{}, fmt.Errorf("workload: %s phase (timestep %d) failed to quiesce within %d cycles", PhaseName(idx), ts, quiesceBudget)
	}
	end := m.Engine.Now()
	return PhaseResult{
		Timestep: ts, Phase: PhaseName(idx),
		Injected: injected, Delivered: m.Delivered() - before,
		StartCycle: start, EndCycle: end, Cycles: end - start,
	}, nil
}

// Run executes the spec's timesteps on m and reports per-phase and total
// cycle counts. The machine should be freshly built with the spec's Tables
// loaded (core.RunMDStepPoint does both); rec, when non-nil, captures every
// injection for later replay. Route choices are drawn from per-source rngs
// seeded by the machine seed and recorded pre strategy-Choose, so a run is
// fully determined by (machine config, spec) and a capture replays
// identically under the same strategy.
func Run(m *machine.Machine, spec Spec, rec *trace.Recorder, maxPhaseCycles uint64) (Result, error) {
	return runInner(m, spec, rec, maxPhaseCycles, nil, 0, nil)
}

// RunResumable is Run with checkpoint support: when every > 0 and sink is
// non-nil, the engine's checkpoint hook is installed and sink is invoked
// between engine steps with the driver's current Progress (the caller pairs
// it with machine.Snapshot to form a complete checkpoint). When from is
// non-nil the run resumes an interrupted one: the machine must already hold
// the restored snapshot, completed phases are taken from from.Completed, the
// per-source RNG draws of every already-injected phase are replayed (so
// later phases draw exactly what the uninterrupted run would have), and
// execution re-enters at the interrupted phase's delivery wait. Recording
// does not compose with resumption.
func RunResumable(m *machine.Machine, spec Spec, maxPhaseCycles uint64, from *Progress, every uint64, sink func(prog Progress)) (Result, error) {
	return runInner(m, spec, nil, maxPhaseCycles, from, every, sink)
}

func runInner(m *machine.Machine, spec Spec, rec *trace.Recorder, maxPhaseCycles uint64, from *Progress, every uint64, sink func(prog Progress)) (Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if from != nil && rec != nil {
		return Result{}, fmt.Errorf("workload: cannot record a resumed run")
	}
	tm := m.Topo
	if tm.NumNodes() < 2 {
		return Result{}, fmt.Errorf("workload: shape %s too small for an MD timestep", tm.Shape)
	}
	cores := tm.Chip.CoreEndpoints()
	rngs := make([][]*rand.Rand, tm.NumNodes())
	for n := range rngs {
		rngs[n] = make([]*rand.Rand, len(cores))
		for i, ep := range cores {
			rngs[n][i] = sim.NewRNG(m.Cfg.Seed, fmt.Sprintf("wl-%d-%d", n, ep))
		}
	}
	halo := traffic.NewBursty(traffic.NHop{N: spec.HaloRadius}, spec.HaloBurst)
	hasMcast := m.Cfg.Multicast[GroupID(0, 0)] != nil
	if !hasMcast && len(spec.fanoutDests(tm, 0)) > 0 {
		return Result{}, fmt.Errorf("workload: machine built without the spec's multicast tables (load Spec.Tables into Config.Multicast)")
	}
	record := func(ev trace.Event) {
		if rec != nil {
			rec.Record(ev)
		}
	}

	var res Result
	var cur Progress
	track := every > 0 && sink != nil
	if track {
		m.Engine.SetCheckpoint(every, func(uint64) { sink(cur) })
		defer m.Engine.SetCheckpoint(0, nil)
	}
	resuming := from != nil
	if resuming {
		res.Phases = append(res.Phases, from.Completed...)
	}
	for ts := 0; ts < spec.Timesteps; ts++ {
		haloInject := func() (uint64, uint64, error) {
			var count uint64
			for n := 0; n < tm.NumNodes(); n++ {
				for ci, epid := range cores {
					src := topo.NodeEp{Node: n, Ep: epid}
					e := m.Endpoint(src)
					rng := rngs[n][ci]
					for k := 0; k < spec.HaloPackets; k++ {
						dst := halo.Dest(tm, src, rng)
						c := route.RandomChoices(rng)
						p := m.MakePacket(src, dst, c, route.ClassRequest, 0, packet.MaxFlits)
						e.Inject(p)
						record(trace.Event{
							Timestep: ts, Phase: PhaseHalo, Cycle: p.InjectedAt, Kind: trace.KindUnicast,
							SrcNode: n, SrcEp: epid, DstNode: dst.Node, DstEp: dst.Ep,
							Class: int(route.ClassRequest), Size: packet.MaxFlits,
							Order: c.Order.String(), Slice: int(c.Slice), Ties: c.Ties,
						})
						count++
					}
				}
			}
			return count, count, nil
		}
		mcastInject := func() (uint64, uint64, error) {
			var count, expected uint64
			for n := 0; n < tm.NumNodes(); n++ {
				src := topo.NodeEp{Node: n, Ep: cores[0]}
				for k := 0; k < spec.Multicasts; k++ {
					sl := (n + k) % topo.NumSlices
					gid := GroupID(n, sl)
					expected += uint64(m.InjectMulticast(src, gid, route.ClassRequest, 0))
					record(trace.Event{
						Timestep: ts, Phase: PhaseMulticast, Cycle: m.Engine.Now(), Kind: trace.KindMulticast,
						SrcNode: n, SrcEp: cores[0], Class: int(route.ClassRequest), Group: gid,
					})
					count++
				}
			}
			return count, expected, nil
		}
		reduceInject := func() (uint64, uint64, error) {
			var count uint64
			rr := 0
			for n := 1; n < tm.NumNodes(); n++ {
				for ci, epid := range cores {
					src := topo.NodeEp{Node: n, Ep: epid}
					e := m.Endpoint(src)
					rng := rngs[n][ci]
					for k := 0; k < spec.ReducePackets; k++ {
						dst := topo.NodeEp{Node: 0, Ep: cores[rr%len(cores)]}
						rr++
						c := route.RandomChoices(rng)
						p := m.MakePacket(src, dst, c, route.ClassReply, 0, 1)
						e.Inject(p)
						record(trace.Event{
							Timestep: ts, Phase: PhaseReduce, Cycle: p.InjectedAt, Kind: trace.KindUnicast,
							SrcNode: n, SrcEp: epid, DstNode: dst.Node, DstEp: dst.Ep,
							Class: int(route.ClassReply), Size: 1,
							Order: c.Order.String(), Slice: int(c.Slice), Ties: c.Ties,
						})
						count++
					}
				}
			}
			return count, count, nil
		}

		// replay closures draw exactly what the inject closures draw, in
		// the same order, without touching the machine: resumed runs use
		// them to fast-forward the RNG streams (and the stateful halo
		// burst generator) past already-injected phases. The multicast
		// phase draws nothing.
		haloReplay := func() {
			for n := 0; n < tm.NumNodes(); n++ {
				for ci, epid := range cores {
					src := topo.NodeEp{Node: n, Ep: epid}
					rng := rngs[n][ci]
					for k := 0; k < spec.HaloPackets; k++ {
						halo.Dest(tm, src, rng)
						route.RandomChoices(rng)
					}
				}
			}
		}
		reduceReplay := func() {
			for n := 1; n < tm.NumNodes(); n++ {
				for ci := range cores {
					rng := rngs[n][ci]
					for k := 0; k < spec.ReducePackets; k++ {
						route.RandomChoices(rng)
					}
				}
			}
		}

		phases := []struct {
			idx    int
			inject func() (uint64, uint64, error)
			replay func()
		}{
			{PhaseHalo, haloInject, haloReplay},
			{PhaseMulticast, mcastInject, nil},
			{PhaseReduce, reduceInject, reduceReplay},
		}
		for _, ph := range phases {
			if ph.idx == PhaseMulticast && !hasMcast {
				continue
			}
			if resuming {
				key, fromKey := ts*numPhases+ph.idx, from.Timestep*numPhases+from.Phase
				if key < fromKey {
					// Completed before the checkpoint: the machine state
					// already reflects it; only the draws need replaying.
					if ph.replay != nil {
						ph.replay()
					}
					continue
				}
				if key > fromKey {
					return Result{}, fmt.Errorf("workload: checkpoint position (timestep %d, %s) was skipped", from.Timestep, PhaseName(from.Phase))
				}
				// The interrupted phase: fully injected at checkpoint time,
				// so replay its draws and re-enter the delivery wait.
				if ph.replay != nil {
					ph.replay()
				}
				resuming = false
				if track {
					cur = Progress{
						Timestep: ts, Phase: ph.idx,
						Completed:  append([]PhaseResult(nil), res.Phases...),
						Before:     from.Before,
						Injected:   from.Injected,
						Expected:   from.Expected,
						PhaseStart: from.PhaseStart,
					}
				}
				pr, err := finishPhase(m, ts, ph.idx, maxPhaseCycles, from.Before, from.Injected, from.Expected, from.PhaseStart)
				if err != nil {
					return Result{}, err
				}
				res.Phases = append(res.Phases, pr)
				continue
			}
			start := m.Engine.Now()
			before := m.Delivered()
			injected, expected, err := ph.inject()
			if err != nil {
				return Result{}, err
			}
			if track {
				cur = Progress{
					Timestep: ts, Phase: ph.idx,
					Completed:  append([]PhaseResult(nil), res.Phases...),
					Before:     before,
					Injected:   injected,
					Expected:   expected,
					PhaseStart: start,
				}
			}
			pr, err := finishPhase(m, ts, ph.idx, maxPhaseCycles, before, injected, expected, start)
			if err != nil {
				return Result{}, err
			}
			res.Phases = append(res.Phases, pr)
		}
	}
	if resuming {
		return Result{}, fmt.Errorf("workload: checkpoint position (timestep %d, %s) beyond the spec's phases", from.Timestep, PhaseName(from.Phase))
	}
	res.finish()
	return res, nil
}

// Header builds the trace header for a capture of this spec on the given
// machine config.
func (s Spec) Header(shape topo.TorusShape, seed uint64) trace.Header {
	return trace.Header{Format: trace.Format, Version: trace.Version, Shape: shape.String(), Workload: s.Canonical(), Seed: seed}
}
