package workload_test

import (
	"reflect"
	"testing"

	"anton2/internal/machine"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/trace"
	"anton2/internal/traffic"
	"anton2/internal/workload"
)

func smallSpec() workload.Spec {
	return workload.Spec{HaloPackets: 4, HaloBurst: 2, Multicasts: 2, ReducePackets: 1, Timesteps: 2}
}

func buildMachine(t *testing.T, shape topo.TorusShape, spec workload.Spec, mutate func(*machine.Config)) *machine.Machine {
	t.Helper()
	tm, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(shape)
	cfg.Multicast = spec.Tables(tm)
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runOnce(t *testing.T, shape topo.TorusShape, spec workload.Spec, rec *trace.Recorder, mutate func(*machine.Config)) workload.Result {
	t.Helper()
	m := buildMachine(t, shape, spec, mutate)
	res, err := workload.Run(m, spec, rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Quiet() {
		t.Fatal("fabric not quiescent after the final phase barrier")
	}
	return res
}

// TestRunPhaseStructure: a run yields one result row per (timestep, phase)
// with contiguous non-overlapping windows and full delivery.
func TestRunPhaseStructure(t *testing.T) {
	spec := smallSpec()
	res := runOnce(t, topo.Shape3(2, 2, 2), spec, nil, nil)
	wantPhases := 3 * spec.Timesteps
	if len(res.Phases) != wantPhases {
		t.Fatalf("got %d phase rows, want %d", len(res.Phases), wantPhases)
	}
	names := []string{"halo", "multicast", "reduce"}
	for i, pr := range res.Phases {
		if pr.Timestep != i/3 || pr.Phase != names[i%3] {
			t.Errorf("row %d = (t%d, %s), want (t%d, %s)", i, pr.Timestep, pr.Phase, i/3, names[i%3])
		}
		if pr.Injected == 0 || pr.Delivered == 0 {
			t.Errorf("row %d (%s): injected=%d delivered=%d, want both > 0", i, pr.Phase, pr.Injected, pr.Delivered)
		}
		if pr.Cycles != pr.EndCycle-pr.StartCycle || pr.Cycles == 0 {
			t.Errorf("row %d (%s): cycles=%d for window [%d, %d]", i, pr.Phase, pr.Cycles, pr.StartCycle, pr.EndCycle)
		}
		if i > 0 && pr.StartCycle != res.Phases[i-1].EndCycle {
			t.Errorf("row %d starts at %d, previous phase quiesced at %d — phases must be contiguous",
				i, pr.StartCycle, res.Phases[i-1].EndCycle)
		}
	}
	if res.TotalCycles != res.Phases[wantPhases-1].EndCycle-res.Phases[0].StartCycle {
		t.Errorf("TotalCycles %d does not span the phase windows", res.TotalCycles)
	}
	if res.TotalNS != machine.CyclesToNS(float64(res.TotalCycles)) {
		t.Errorf("TotalNS %g inconsistent with TotalCycles %d", res.TotalNS, res.TotalCycles)
	}
}

// TestRunDeterministic: identical (config, spec) runs produce identical
// results.
func TestRunDeterministic(t *testing.T) {
	spec := smallSpec()
	a := runOnce(t, topo.Shape3(2, 2, 2), spec, nil, nil)
	b := runOnce(t, topo.Shape3(2, 2, 2), spec, nil, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRecordThenReplay is the record/replay determinism guarantee: a trace
// captured from one run, passed through the codec, and replayed on a fresh
// identically-configured machine reproduces the original per-phase cycle
// counts exactly.
func TestRecordThenReplay(t *testing.T) {
	spec := smallSpec()
	shape := topo.Shape3(2, 2, 2)
	rec := trace.NewRecorder(spec.Header(shape, 1))
	orig := runOnce(t, shape, spec, rec, nil)
	if rec.Len() == 0 {
		t.Fatal("recorder captured no events")
	}

	// Round-trip the capture through the codec before replaying.
	enc, err := rec.Trace().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	tr, err := trace.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	m := buildMachine(t, shape, spec, nil)
	rep, err := workload.ReplayTrace(m, tr, 0)
	if err != nil {
		t.Fatalf("ReplayTrace: %v", err)
	}
	if len(rep.Phases) != len(orig.Phases) {
		t.Fatalf("replay produced %d phases, original %d", len(rep.Phases), len(orig.Phases))
	}
	for i := range orig.Phases {
		o, r := orig.Phases[i], rep.Phases[i]
		if o.StartCycle != r.StartCycle || o.EndCycle != r.EndCycle || o.Cycles != r.Cycles || o.Delivered != r.Delivered {
			t.Errorf("phase %d (%s): original [%d,%d] %d delivered, replay [%d,%d] %d delivered",
				i, o.Phase, o.StartCycle, o.EndCycle, o.Delivered, r.StartCycle, r.EndCycle, r.Delivered)
		}
	}
	if rep.TotalCycles != orig.TotalCycles {
		t.Errorf("replay total %d cycles, original %d", rep.TotalCycles, orig.TotalCycles)
	}
}

// TestReplayShapeMismatch: a capture refuses to replay on a different shape.
func TestReplayShapeMismatch(t *testing.T) {
	spec := smallSpec()
	rec := trace.NewRecorder(spec.Header(topo.Shape3(2, 2, 2), 1))
	runOnce(t, topo.Shape3(2, 2, 2), spec, rec, nil)
	m := buildMachine(t, topo.Shape3(4, 2, 2), spec, nil)
	if _, err := workload.ReplayTrace(m, rec.Trace(), 0); err == nil {
		t.Fatal("replay accepted a trace captured on a different shape")
	}
}

// TestRunRequiresTables: running a fanout-bearing spec on a machine without
// its multicast tables is an error, not a silent phase skip.
func TestRunRequiresTables(t *testing.T) {
	cfg := machine.DefaultConfig(topo.Shape3(2, 2, 2))
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Run(m, smallSpec(), nil, 0); err == nil {
		t.Fatal("Run accepted a machine without the spec's multicast tables")
	}
}

// TestTelemetrySinkCapturesReplayableTrace closes the capture loop through
// the observability layer: the telemetry injection sink records the run's
// unicast traffic in the trace format, and a traffic.Replay pattern plays
// the capture's destination sequences back verbatim.
func TestTelemetrySinkCapturesReplayableTrace(t *testing.T) {
	spec := smallSpec()
	shape := topo.Shape3(2, 2, 2)
	rec := trace.NewRecorder(spec.Header(shape, 1))
	runOnce(t, shape, spec, nil, func(cfg *machine.Config) {
		cfg.Telemetry = &telemetry.Options{InjectionSink: rec.Record}
	})
	if rec.Len() == 0 {
		t.Fatal("injection sink captured no events")
	}
	enc, err := rec.Trace().Encode()
	if err != nil {
		t.Fatalf("telemetry capture does not encode: %v", err)
	}
	tr, err := trace.Decode(enc)
	if err != nil {
		t.Fatalf("telemetry capture does not round-trip: %v", err)
	}
	for _, e := range tr.Events {
		if e.Kind != trace.KindUnicast {
			t.Fatalf("injection sink emitted a non-unicast event: %+v", e)
		}
	}

	// The recorded destination sequence replays in order per source.
	tm, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	perSrc := map[topo.NodeEp][]topo.NodeEp{}
	for _, e := range tr.Events {
		src := topo.NodeEp{Node: e.SrcNode, Ep: e.SrcEp}
		perSrc[src] = append(perSrc[src], topo.NodeEp{Node: e.DstNode, Ep: e.DstEp})
	}
	replay := traffic.NewReplay(tr)
	for src, want := range perSrc {
		for i, w := range want[:min(len(want), 8)] {
			if got := replay.Dest(tm, src, nil); got != w {
				t.Fatalf("%v draw %d = %v, want %v", src, i, got, w)
			}
		}
		break // one source suffices; map order is irrelevant to the check
	}
}

// TestTablesDedupeWrapAliases: on a radix-2 torus the ±1 plane offsets
// alias, and the compiled groups must still deliver each destination exactly
// once.
func TestTablesDedupeWrapAliases(t *testing.T) {
	tm, err := topo.NewMachine(topo.Shape3(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	tables := workload.DefaultSpec().Tables(tm)
	if len(tables) != tm.NumNodes()*topo.NumSlices {
		t.Fatalf("got %d groups, want %d", len(tables), tm.NumNodes()*topo.NumSlices)
	}
	// Radius-1 XY plane on 2x2: offsets ±1 alias, leaving 3 distinct
	// destinations around each root.
	for gid, g := range tables {
		if n := g.TotalDeliveries(); n != 3 {
			t.Errorf("group %d delivers %d destinations, want 3 (wrap aliases deduped)", gid, n)
		}
	}
}

// TestSpecCanonical: defaults are applied and the token is stable.
func TestSpecCanonical(t *testing.T) {
	if got, want := (workload.Spec{}).Canonical(), "h1.8.4-m1.2-r2-t1"; got != want {
		t.Errorf("zero spec canonical = %q, want %q", got, want)
	}
	if got, want := smallSpec().Canonical(), "h1.4.2-m1.2-r1-t2"; got != want {
		t.Errorf("small spec canonical = %q, want %q", got, want)
	}
	if err := (workload.Spec{Timesteps: -1}).Validate(); err == nil {
		t.Error("Validate accepted a negative timestep count")
	}
	if err := (workload.Spec{HaloPackets: 1 << 20}).Validate(); err == nil {
		t.Error("Validate accepted an abusive halo volume")
	}
}
