package workload

import (
	"fmt"

	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/trace"
)

// ReplayTrace re-runs a capture on a fresh machine: events are re-injected
// phase by phase in recorded order with their recorded route choices, with
// the same phase-barrier discipline as Run. On a machine built with the same
// config (and the capture's workload Tables loaded), every phase reproduces
// the original's cycle counts exactly — replay asserts this structurally by
// requiring each phase's injections to land on the capture's cycle, and
// errors out on the first divergence instead of reporting skewed times.
//
// Unicast choices recorded by Run are pre strategy-Choose, so replay applies
// the same Choose the original did. Telemetry captures (trace.FromPacket)
// hold post-Choose choices; they replay stably too because Choose is a
// projection onto the strategy's allowed choice set.
func ReplayTrace(m *machine.Machine, tr *trace.Trace, maxPhaseCycles uint64) (Result, error) {
	if got := m.Topo.Shape.String(); tr.Header.Shape != got {
		return Result{}, fmt.Errorf("workload: trace captured on %s, machine is %s", tr.Header.Shape, got)
	}
	var res Result
	events := tr.Events
	for i := 0; i < len(events); {
		ts, ph := events[i].Timestep, events[i].Phase
		j := i
		for j < len(events) && events[j].Timestep == ts && events[j].Phase == ph {
			j++
		}
		group := events[i:j]
		i = j
		inject := func() (uint64, uint64, error) {
			now := m.Engine.Now()
			var injected, expected uint64
			for _, e := range group {
				if e.Cycle != now {
					return 0, 0, fmt.Errorf("workload: replay diverged: %s phase (timestep %d) event recorded at cycle %d, fabric quiesced at %d (machine config mismatch?)",
						PhaseName(ph), ts, e.Cycle, now)
				}
				src := topo.NodeEp{Node: e.SrcNode, Ep: e.SrcEp}
				switch e.Kind {
				case trace.KindUnicast:
					ord, ok := trace.ParseDimOrder(e.Order)
					if !ok {
						return 0, 0, fmt.Errorf("workload: replay: unknown dimension order %q", e.Order)
					}
					c := route.Choices{Order: ord, Slice: uint8(e.Slice), Ties: e.Ties}
					p := m.MakePacket(src, topo.NodeEp{Node: e.DstNode, Ep: e.DstEp}, c, route.Class(e.Class), 0, uint8(e.Size))
					m.Endpoint(src).Inject(p)
					injected++
					expected++
				case trace.KindMulticast:
					if m.Cfg.Multicast[e.Group] == nil {
						return 0, 0, fmt.Errorf("workload: replay: multicast group %d not loaded (rebuild the machine with the trace workload's Tables)", e.Group)
					}
					expected += uint64(m.InjectMulticast(src, e.Group, route.Class(e.Class), 0))
					injected++
				default:
					return 0, 0, fmt.Errorf("workload: replay: unknown event kind %q", e.Kind)
				}
			}
			return injected, expected, nil
		}
		start := m.Engine.Now()
		before := m.Delivered()
		injected, expected, err := inject()
		if err != nil {
			return Result{}, err
		}
		pr, err := finishPhase(m, ts, ph, maxPhaseCycles, before, injected, expected, start)
		if err != nil {
			return Result{}, err
		}
		res.Phases = append(res.Phases, pr)
	}
	res.finish()
	return res, nil
}
