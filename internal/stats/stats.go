// Package stats provides the small statistical toolkit used by the
// measurement harness: linear least squares (latency-vs-hops and energy
// model fits), summary statistics, fairness indices, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LinearFit fits y = intercept + slope*x by ordinary least squares and
// returns the coefficient of determination r2.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs >= 2 equal-length samples")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range x {
		d := y[i] - (intercept + slope*x[i])
		ssRes += d * d
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// LeastSquares solves min ||A w - b||^2 for w via normal equations with
// Gaussian elimination; used to refit the multi-term router energy model.
func LeastSquares(a [][]float64, b []float64) []float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("stats: LeastSquares dimension mismatch")
	}
	k := len(a[0])
	// Normal equations: (A^T A) w = A^T b.
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for r := range a {
		if len(a[r]) != k {
			panic("stats: ragged design matrix")
		}
		for i := 0; i < k; i++ {
			atb[i] += a[r][i] * b[r]
			for j := 0; j < k; j++ {
				ata[i][j] += a[r][i] * a[r][j]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[piv][col]) {
				piv = r
			}
		}
		ata[col], ata[piv] = ata[piv], ata[col]
		atb[col], atb[piv] = atb[piv], atb[col]
		if math.Abs(ata[col][col]) < 1e-12 {
			panic(fmt.Sprintf("stats: singular normal matrix at column %d", col))
		}
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := ata[r][col] / ata[col][col]
			for c := col; c < k; c++ {
				ata[r][c] -= f * ata[col][c]
			}
			atb[r] -= f * atb[col]
		}
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = atb[i] / ata[i][i]
	}
	return w
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// JainIndex computes Jain's fairness index: 1 means perfectly equal shares,
// 1/n means one participant gets everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Histogram bins values into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	Total    uint64
}

// NewHistogram builds an empty histogram.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Add records a value, clamping out-of-range (including ±Inf) values into
// the first or last bin. NaN is dropped: float-to-int conversion of NaN is
// implementation-defined in Go, so clamping in float space before converting
// keeps the histogram deterministic across platforms.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := 0
	if x > h.Min {
		f := float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min)
		if f >= float64(len(h.Counts)) {
			i = len(h.Counts) - 1
		} else {
			i = int(f)
		}
	}
	h.Counts[i]++
	h.Total++
}

// Quantile returns an approximate quantile from the binned data.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Total == 0 {
		return h.Min
	}
	target := uint64(q * float64(h.Total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			w := (h.Max - h.Min) / float64(len(h.Counts))
			return h.Min + w*(float64(i)+0.5)
		}
	}
	return h.Max
}
