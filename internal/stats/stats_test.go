package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 80.7 + 39.1*xi // the paper's Figure 11 fit
	}
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-39.1) > 1e-9 || math.Abs(intercept-80.7) > 1e-9 {
		t.Errorf("fit = %g + %g x", intercept, slope)
	}
	if r2 < 0.999999 {
		t.Errorf("r2 = %g for exact line", r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 5+2*xi+rng.NormFloat64()*0.5)
	}
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-2) > 0.05 || math.Abs(intercept-5) > 1 {
		t.Errorf("fit = %g + %g x", intercept, slope)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %g", r2)
	}
}

func TestLeastSquaresRecoversModel(t *testing.T) {
	// Generate samples from the paper's energy model form:
	// E = c0 + c1*h + c2*(a/r) + c3*n*(a/r).
	truth := []float64{42.7, 0.837, 34.4, 0.250}
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	var b []float64
	for i := 0; i < 100; i++ {
		h := rng.Float64() * 192
		ar := rng.Float64()
		n := rng.Float64() * 128
		rows = append(rows, []float64{1, h, ar, n * ar})
		b = append(b, truth[0]+truth[1]*h+truth[2]*ar+truth[3]*n*ar)
	}
	w := LeastSquares(rows, b)
	for i := range truth {
		if math.Abs(w[i]-truth[i]) > 1e-6 {
			t.Errorf("coefficient %d = %g, want %g", i, w[i], truth[i])
		}
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("stddev = %g, want 2", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(xs, 1); p != 1 {
		t.Errorf("p1 = %g", p)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares: %g", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("single hog: %g, want 0.25", j)
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndexDegenerate(t *testing.T) {
	// Empty and all-zero inputs mean "no traffic", which is trivially fair;
	// both must report 1 rather than 0/0.
	if j := JainIndex(nil); j != 1 {
		t.Errorf("JainIndex(nil) = %g, want 1", j)
	}
	if j := JainIndex([]float64{}); j != 1 {
		t.Errorf("JainIndex(empty) = %g, want 1", j)
	}
	if j := JainIndex([]float64{0, 0, 0}); j != 1 {
		t.Errorf("JainIndex(zeros) = %g, want 1", j)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Total != 100 {
		t.Fatalf("total = %d", h.Total)
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median ~ %g", med)
	}
	h.Add(-5)  // clamps low
	h.Add(500) // clamps high
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
}

// TestHistogramEdges pins the histogram's behavior at every boundary the
// telemetry occupancy sampler can hit: extreme quantiles, clamping at both
// ends (including infinities), and empty data.
func TestHistogramEdges(t *testing.T) {
	cases := []struct {
		name string
		add  []float64
		q    float64
		want float64
	}{
		// Quantiles of an empty histogram collapse to Min.
		{"empty-q0", nil, 0, 0},
		{"empty-q1", nil, 1, 0},
		// q=1 reports the histogram's upper bound.
		{"full-q1", []float64{10, 20, 30}, 1, 100},
		// Out-of-range values clamp into the terminal bins (midpoints 5
		// and 95 for a 0..100 histogram with 10 bins).
		{"below-min", []float64{-1e12}, 0, 5},
		{"above-max", []float64{1e12}, 0, 95},
		{"neg-inf", []float64{math.Inf(-1)}, 0, 5},
		{"pos-inf", []float64{math.Inf(1)}, 0, 95},
		// A value exactly at Max lands in the last bin, not out of range.
		{"at-max", []float64{100}, 0, 95},
		{"at-min", []float64{0}, 0, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(0, 100, 10)
			for _, x := range c.add {
				h.Add(x)
			}
			if got := h.Quantile(c.q); got != c.want {
				t.Errorf("Quantile(%g) = %g, want %g (counts %v)", c.q, got, c.want, h.Counts)
			}
			if h.Total != uint64(len(c.add)) {
				t.Errorf("total = %d, want %d", h.Total, len(c.add))
			}
		})
	}
}

// TestHistogramAddNaN: NaN must be dropped deterministically — Go leaves
// float-to-int conversion of NaN implementation-defined, so recording it
// would make histograms (and the telemetry reports built on them) differ
// across platforms.
func TestHistogramAddNaN(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(math.NaN())
	if h.Total != 0 {
		t.Fatalf("NaN was recorded: total %d, counts %v", h.Total, h.Counts)
	}
	h.Add(3)
	h.Add(math.NaN())
	if h.Total != 1 || h.Counts[1] != 1 {
		t.Errorf("NaN perturbed the histogram: total %d, counts %v", h.Total, h.Counts)
	}
}
