package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 80.7 + 39.1*xi // the paper's Figure 11 fit
	}
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-39.1) > 1e-9 || math.Abs(intercept-80.7) > 1e-9 {
		t.Errorf("fit = %g + %g x", intercept, slope)
	}
	if r2 < 0.999999 {
		t.Errorf("r2 = %g for exact line", r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 5+2*xi+rng.NormFloat64()*0.5)
	}
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-2) > 0.05 || math.Abs(intercept-5) > 1 {
		t.Errorf("fit = %g + %g x", intercept, slope)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %g", r2)
	}
}

func TestLeastSquaresRecoversModel(t *testing.T) {
	// Generate samples from the paper's energy model form:
	// E = c0 + c1*h + c2*(a/r) + c3*n*(a/r).
	truth := []float64{42.7, 0.837, 34.4, 0.250}
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	var b []float64
	for i := 0; i < 100; i++ {
		h := rng.Float64() * 192
		ar := rng.Float64()
		n := rng.Float64() * 128
		rows = append(rows, []float64{1, h, ar, n * ar})
		b = append(b, truth[0]+truth[1]*h+truth[2]*ar+truth[3]*n*ar)
	}
	w := LeastSquares(rows, b)
	for i := range truth {
		if math.Abs(w[i]-truth[i]) > 1e-6 {
			t.Errorf("coefficient %d = %g, want %g", i, w[i], truth[i])
		}
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("stddev = %g, want 2", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(xs, 1); p != 1 {
		t.Errorf("p1 = %g", p)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares: %g", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("single hog: %g, want 0.25", j)
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Total != 100 {
		t.Fatalf("total = %d", h.Total)
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median ~ %g", med)
	}
	h.Add(-5)  // clamps low
	h.Add(500) // clamps high
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
}
