package packaging

import (
	"testing"

	"anton2/internal/topo"
)

func TestFigure2Configuration(t *testing.T) {
	// The paper's 512-node example: 8x8x8 torus = 32 backplanes in 4
	// racks.
	p, err := Build(topo.Shape3(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBackplanes() != 32 {
		t.Errorf("backplanes = %d, want 32", p.NumBackplanes())
	}
	if p.NumRacks() != 4 {
		t.Errorf("racks = %d, want 4", p.NumRacks())
	}
}

func TestConfigurationRange(t *testing.T) {
	// Smallest: one backplane, 16 ASICs.
	small, err := Build(topo.Shape3(4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if small.NumBackplanes() != 1 || small.NumRacks() != 1 {
		t.Errorf("4x4x1: %d backplanes, %d racks", small.NumBackplanes(), small.NumRacks())
	}
	// Largest: 16x16x16 = 4096 ASICs.
	big, err := Build(topo.Shape3(16, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if big.NumBackplanes() != 256 {
		t.Errorf("16^3: %d backplanes, want 256", big.NumBackplanes())
	}
	// Non-tiling shapes are rejected.
	if _, err := Build(topo.Shape3(6, 4, 2)); err == nil {
		t.Error("6x4x2 should not tile 4x4x1 backplanes")
	}
}

func TestIntraBackplaneLinksAreTraces(t *testing.T) {
	p, err := Build(topo.Shape3(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	// A link inside a 4x4 tile is a trace.
	l := p.LinkFor(topo.NodeCoord{X: 1, Y: 1, Z: 0}, topo.XPos)
	if l.Medium != BackplaneTrace {
		t.Errorf("interior link medium = %v", l.Medium)
	}
	// Crossing a tile boundary is a cable.
	l = p.LinkFor(topo.NodeCoord{X: 3, Y: 0, Z: 0}, topo.XPos)
	if l.Medium == BackplaneTrace {
		t.Error("tile-boundary link should be cabled")
	}
	// Z links always leave the backplane (BackplaneZ == 1).
	l = p.LinkFor(topo.NodeCoord{X: 0, Y: 0, Z: 0}, topo.ZPos)
	if l.Medium == BackplaneTrace {
		t.Error("Z link should be cabled")
	}
}

func TestLatencyOrdering(t *testing.T) {
	trace := Link{Medium: BackplaneTrace, LengthCM: BackplaneTraceCM}
	intra := Link{Medium: IntraRackCable, LengthCM: IntraRackCableCM}
	inter := Link{Medium: InterRackCable, LengthCM: InterRackCableCM}
	if !(trace.LatencyNS() < intra.LatencyNS() && intra.LatencyNS() < inter.LatencyNS()) {
		t.Error("latency must increase with link length")
	}
	if trace.LatencyCycles() < 30 || inter.LatencyCycles() > 80 {
		t.Errorf("latencies %d..%d cycles outside plausible SerDes+wire range",
			trace.LatencyCycles(), inter.LatencyCycles())
	}
}

func TestLatencyFuncCoversAllLinks(t *testing.T) {
	p, err := Build(topo.Shape3(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	f := p.LatencyFunc()
	for n := 0; n < p.Shape.NumNodes(); n++ {
		for d := topo.Direction(0); d < topo.NumDirections; d++ {
			for s := 0; s < topo.NumSlices; s++ {
				if lat := f(n, topo.AdapterID{Dir: d, Slice: s}); lat == 0 {
					t.Fatalf("zero latency for node %d %v", n, d)
				}
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p, err := Build(topo.Shape3(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	total := 0
	for _, ms := range stats {
		total += ms.Links
	}
	// 512 nodes x 6 directions x 2 slices directed links.
	if total != 512*12 {
		t.Errorf("total links = %d, want %d", total, 512*12)
	}
	if stats[BackplaneTrace].Links == 0 || stats[InterRackCable].Links == 0 {
		t.Error("expected links in every medium for an 8x8x8 machine")
	}
	// Within a 4x4x1 backplane: the 24 intra-tile X/Y links per
	// backplane... sanity: traces strictly fewer than total.
	if stats[BackplaneTrace].Links >= total {
		t.Error("trace count implausible")
	}
}

func TestBackplaneLabel(t *testing.T) {
	p, _ := Build(topo.Shape3(8, 8, 8))
	if l := p.BackplaneLabel(1, 1, 3); l != (topo.NodeCoord{X: 4, Y: 4, Z: 3}) {
		t.Errorf("label = %v", l)
	}
}
