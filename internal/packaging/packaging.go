// Package packaging models the physical construction of an Anton 2 machine
// (Figure 2): nodecards mated to 4x4x1 backplanes, eight backplanes per
// rack, and cabled connections between backplanes within and across racks.
// The model assigns every torus link a medium and length, from which
// per-link channel latencies are derived for the simulator — the single
// backplane design supports configurations from 16 up to 4,096 ASICs.
package packaging

import (
	"fmt"

	"anton2/internal/topo"
)

// Backplane geometry (Figure 2).
const (
	// BackplaneX x BackplaneY x BackplaneZ nodecards per backplane.
	BackplaneX = 4
	BackplaneY = 4
	BackplaneZ = 1
	// NodesPerBackplane is 16.
	NodesPerBackplane = BackplaneX * BackplaneY * BackplaneZ
	// BackplanesPerRack is 8.
	BackplanesPerRack = 8
	// MaxNodes is the largest supported machine (16x16x16).
	MaxNodes = 4096
)

// Medium classifies a torus link's physical realization.
type Medium uint8

// Link media.
const (
	// BackplaneTrace connects two nodecards on the same backplane.
	BackplaneTrace Medium = iota
	// IntraRackCable connects backplanes within one rack.
	IntraRackCable
	// InterRackCable connects backplanes in different racks.
	InterRackCable
)

func (m Medium) String() string {
	switch m {
	case BackplaneTrace:
		return "backplane trace"
	case IntraRackCable:
		return "intra-rack cable"
	default:
		return "inter-rack cable"
	}
}

// Physical constants for the latency model.
const (
	// NodecardTraceCM is the mean ASIC-to-edge-connector trace length
	// (the paper reports 7.1 to 11.7 cm per nodecard).
	NodecardTraceCM = 9.4
	// Propagation delay on PCB/cable, ~5 ns/m.
	PropagationNSPerM = 5.0
	// SerDesFixedNS is the serializer/deserializer plus framing latency
	// per link, independent of length.
	SerDesFixedNS = 25.0
	// Typical media lengths in centimeters.
	BackplaneTraceCM = 25.0
	IntraRackCableCM = 120.0
	InterRackCableCM = 350.0
)

// Link describes one directed torus link's physical realization.
type Link struct {
	Medium   Medium
	LengthCM float64
}

// LatencyNS returns the link's end-to-end flight time.
func (l Link) LatencyNS() float64 {
	wire := (l.LengthCM + 2*NodecardTraceCM) / 100 * PropagationNSPerM
	return SerDesFixedNS + wire
}

// LatencyCycles converts to 1.5 GHz network cycles, rounding up.
func (l Link) LatencyCycles() uint64 {
	ns := l.LatencyNS()
	return uint64(ns*1.5 + 0.999)
}

// Plan is a packaging assignment for a machine.
type Plan struct {
	Shape topo.TorusShape
	// Backplane tiling: bpx x bpy x bpz backplanes.
	BPX, BPY, BPZ int
}

// Build tiles a torus shape onto 4x4x1 backplanes. Each dimension must be a
// multiple of the backplane extent (or equal to it for small machines).
func Build(shape topo.TorusShape) (*Plan, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if shape.NumNodes() > MaxNodes {
		return nil, fmt.Errorf("packaging: %d nodes exceeds the %d-node maximum", shape.NumNodes(), MaxNodes)
	}
	if shape.K[0]%BackplaneX != 0 || shape.K[1]%BackplaneY != 0 {
		return nil, fmt.Errorf("packaging: shape %v does not tile %dx%dx%d backplanes", shape, BackplaneX, BackplaneY, BackplaneZ)
	}
	return &Plan{
		Shape: shape,
		BPX:   shape.K[0] / BackplaneX,
		BPY:   shape.K[1] / BackplaneY,
		BPZ:   shape.K[2] / BackplaneZ,
	}, nil
}

// NumBackplanes returns the backplane count.
func (p *Plan) NumBackplanes() int { return p.BPX * p.BPY * p.BPZ }

// NumRacks returns the rack count (eight backplanes per rack, rounded up).
func (p *Plan) NumRacks() int {
	return (p.NumBackplanes() + BackplanesPerRack - 1) / BackplanesPerRack
}

// backplaneOf returns the backplane tile coordinates of a node.
func (p *Plan) backplaneOf(c topo.NodeCoord) (bx, by, bz int) {
	return c.X / BackplaneX, c.Y / BackplaneY, c.Z / BackplaneZ
}

// backplaneIndex flattens backplane coordinates; backplanes are assigned to
// racks in index order.
func (p *Plan) backplaneIndex(bx, by, bz int) int {
	return (bz*p.BPY+by)*p.BPX + bx
}

// rackOf returns the rack number of a backplane.
func (p *Plan) rackOf(bx, by, bz int) int {
	return p.backplaneIndex(bx, by, bz) / BackplanesPerRack
}

// BackplaneLabel returns the lexicographically smallest torus coordinate on
// a backplane, the labeling convention of Figure 2.
func (p *Plan) BackplaneLabel(bx, by, bz int) topo.NodeCoord {
	return topo.NodeCoord{X: bx * BackplaneX, Y: by * BackplaneY, Z: bz * BackplaneZ}
}

// LinkFor classifies the torus link leaving node from in the given
// direction.
func (p *Plan) LinkFor(from topo.NodeCoord, dir topo.Direction) Link {
	to := p.Shape.Neighbor(from, dir)
	fbx, fby, fbz := p.backplaneOf(from)
	tbx, tby, tbz := p.backplaneOf(to)
	if fbx == tbx && fby == tby && fbz == tbz {
		return Link{Medium: BackplaneTrace, LengthCM: BackplaneTraceCM}
	}
	if p.rackOf(fbx, fby, fbz) == p.rackOf(tbx, tby, tbz) {
		return Link{Medium: IntraRackCable, LengthCM: IntraRackCableCM}
	}
	return Link{Medium: InterRackCable, LengthCM: InterRackCableCM}
}

// LatencyFunc adapts the plan to the simulator's per-link latency hook.
func (p *Plan) LatencyFunc() func(node int, ad topo.AdapterID) uint64 {
	return func(node int, ad topo.AdapterID) uint64 {
		return p.LinkFor(p.Shape.Coord(node), ad.Dir).LatencyCycles()
	}
}

// MediumStats summarizes link counts and total length per medium over all
// directed torus links.
type MediumStats struct {
	Links   int
	TotalCM float64
}

// Stats tallies the machine's physical links.
func (p *Plan) Stats() map[Medium]MediumStats {
	out := map[Medium]MediumStats{}
	for n := 0; n < p.Shape.NumNodes(); n++ {
		c := p.Shape.Coord(n)
		for d := topo.Direction(0); d < topo.NumDirections; d++ {
			for s := 0; s < topo.NumSlices; s++ {
				l := p.LinkFor(c, d)
				ms := out[l.Medium]
				ms.Links++
				ms.TotalCM += l.LengthCM
				out[l.Medium] = ms
			}
		}
	}
	return out
}
