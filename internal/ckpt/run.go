package ckpt

import (
	"os"
	"time"
)

// RunConfig parameterizes checkpointing for a single run (one experiment
// point). The zero value disables checkpointing entirely; every consumer of
// a disabled config must stay on its pre-checkpoint code path (zero-alloc,
// bit-identical results).
type RunConfig struct {
	// Path is the checkpoint file for this run; empty disables
	// checkpointing.
	Path string
	// Every is the cycle interval between snapshots; zero disables
	// checkpointing even when Path is set.
	Every uint64
	// Resume restores from an existing checkpoint at Path instead of
	// starting at cycle 0. Retried attempts set it unconditionally: a
	// panicked or timed-out attempt restarts from the last snapshot.
	Resume bool
	// MinInterval, when positive, throttles writes by wall clock: a
	// snapshot boundary closer than this to the previous write is skipped.
	// The cycle counter still advances, so the next boundary writes.
	MinInterval time.Duration
}

// Enabled reports whether this run takes checkpoints at all.
func (rc RunConfig) Enabled() bool { return rc.Path != "" && rc.Every > 0 }

// Load returns the checkpoint to resume from, or nil when the config does
// not ask for a resume or no usable checkpoint exists. A checkpoint whose
// tag does not match is ignored (it belongs to a different run that shared
// the path), never an error: resuming is an optimization, starting over is
// always correct.
func (rc RunConfig) Load(tag string) *Checkpoint {
	if !rc.Enabled() || !rc.Resume {
		return nil
	}
	c, err := ReadFile(rc.Path)
	if err != nil || c.Tag != tag {
		return nil
	}
	return c
}

// Discard removes the run's checkpoint file (after a successful finish).
// Missing files are fine.
func (rc RunConfig) Discard() {
	if rc.Path != "" {
		if err := os.Remove(rc.Path); err != nil && !os.IsNotExist(err) {
			_ = err // best-effort cleanup; the tag check protects readers
		}
	}
}

// Writer persists successive checkpoints of one run, applying the
// wall-clock throttle and atomic-replace discipline. It is driven from the
// engine's checkpoint hook, which runs on the coordinating goroutine, so it
// needs no locking.
type Writer struct {
	rc   RunConfig
	last time.Time
	err  error
}

// NewWriter returns a writer for the run config.
func NewWriter(rc RunConfig) *Writer { return &Writer{rc: rc} }

// Save writes the checkpoint unless the wall-clock throttle suppresses it.
// The first error is sticky and returned from every later call: a run whose
// checkpoints stopped persisting should surface that once at the end rather
// than fail mid-flight (the simulation itself is unaffected).
func (w *Writer) Save(c *Checkpoint) error {
	if w.err != nil {
		return w.err
	}
	if w.rc.MinInterval > 0 {
		now := time.Now()
		if !w.last.IsZero() && now.Sub(w.last) < w.rc.MinInterval {
			return nil
		}
		w.last = now
	}
	w.err = WriteFile(w.rc.Path, c)
	return w.err
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }
