// Package ckpt defines the checkpoint container format: a versioned,
// strictly-validated JSON-lines encoding of one simulation snapshot, in the
// spirit of internal/trace's canonical strict codec. A checkpoint is a
// *frame group*: a header line naming the format version, run tag, and cycle;
// one line per named section (opaque payload bytes, CRC-covered); and a
// commit line whose CRC covers every preceding line of the group. The
// payloads themselves are produced by the layers that own the state
// (machine snapshots, driver progress); this package only guarantees that
// what was written is what is read back.
//
// Format v1 guarantees:
//   - Encoding is deterministic: the same Checkpoint always yields the same
//     bytes, and Encode∘Decode is a fixed point.
//   - Decode validates structure, per-section CRCs, and the commit CRC, and
//     never panics on arbitrary input.
//   - Recover scans arbitrary bytes for complete frame groups and returns
//     the last valid one — a torn or truncated tail (the crash case) falls
//     back to the most recent complete checkpoint instead of failing.
//   - WriteFile is torn-write-safe: temp file + fsync + rename, so a crash
//     mid-write leaves either the old checkpoint or the new one, never a
//     mixture.
package ckpt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Format and Version identify checkpoint files produced by this package.
// Version bumps whenever the frame schema changes incompatibly.
const (
	Format  = "anton2-ckpt"
	Version = 1
)

// castagnoli is the CRC-32C table shared by section and commit checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcHex(b []byte) string { return fmt.Sprintf("%08x", crc32.Checksum(b, castagnoli)) }

// ChecksumHex returns the CRC-32C of b as 8 lowercase hex digits — the same
// checksum the checkpoint frames use, exported so sibling persistence layers
// (the serve store's artifact sidecars) share one definition.
func ChecksumHex(b []byte) string { return crcHex(b) }

// Header is the first line of a frame group.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Tag identifies the run that wrote the checkpoint (conventionally the
	// experiment spec canonical string); restore paths reject checkpoints
	// whose tag does not match the run they are resuming.
	Tag string `json:"tag,omitempty"`
	// Cycle is the simulation clock at the snapshot boundary.
	Cycle uint64 `json:"cycle"`
	// Sections is the number of section lines that follow.
	Sections int `json:"sections"`
}

// sectionLine is one named payload with its own CRC, so a flipped bit in a
// multi-megabyte machine snapshot is pinned to the section it corrupts.
type sectionLine struct {
	Name string `json:"name"`
	CRC  string `json:"crc"`
	Data []byte `json:"data"`
}

// commitLine terminates a frame group. Its CRC covers the raw bytes of every
// preceding line of the group (header and sections, newlines included): a
// group without a matching commit line never existed.
type commitLine struct {
	Commit int    `json:"commit"`
	CRC    string `json:"crc"`
}

// Section is one named opaque payload of a checkpoint.
type Section struct {
	Name string
	Data []byte
}

// Checkpoint is a decoded frame group: the snapshot identity plus its
// sections in written order.
type Checkpoint struct {
	Tag      string
	Cycle    uint64
	Sections []Section
}

// New starts a checkpoint for the given run tag and cycle.
func New(tag string, cycle uint64) *Checkpoint {
	return &Checkpoint{Tag: tag, Cycle: cycle}
}

// Add appends a named section.
func (c *Checkpoint) Add(name string, data []byte) *Checkpoint {
	c.Sections = append(c.Sections, Section{Name: name, Data: data})
	return c
}

// Section returns the named section's payload.
func (c *Checkpoint) Section(name string) ([]byte, bool) {
	for _, s := range c.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

func (c *Checkpoint) validate() error {
	seen := make(map[string]bool, len(c.Sections))
	for i, s := range c.Sections {
		if s.Name == "" {
			return fmt.Errorf("ckpt: section %d: empty name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("ckpt: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// Encode serializes the checkpoint to its canonical JSON-lines frame group.
// Encoding a valid checkpoint is deterministic: the same Checkpoint always
// yields the same bytes.
func (c *Checkpoint) Encode() ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Header{
		Format: Format, Version: Version,
		Tag: c.Tag, Cycle: c.Cycle, Sections: len(c.Sections),
	}); err != nil {
		return nil, err
	}
	for _, s := range c.Sections {
		if err := enc.Encode(sectionLine{Name: s.Name, CRC: crcHex(s.Data), Data: s.Data}); err != nil {
			return nil, err
		}
	}
	commit := commitLine{Commit: len(c.Sections), CRC: crcHex(buf.Bytes())}
	if err := enc.Encode(commit); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeLine strictly unmarshals one JSON-lines record: unknown fields and
// trailing data are errors.
func decodeLine(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after record")
	}
	return nil
}

// splitLines splits on '\n' without a scanner so no byte of the input is
// silently rewritten (bufio's line splitter strips '\r', which would defeat
// the commit CRC). A trailing fragment with no newline is kept as a line —
// exactly the shape a torn write produces.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			lines = append(lines, data)
			break
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	return lines
}

// decodeGroup strictly decodes one frame group starting at lines[start].
// It returns the checkpoint and the number of lines consumed.
func decodeGroup(lines [][]byte, start int) (*Checkpoint, int, error) {
	if start >= len(lines) {
		return nil, 0, errors.New("ckpt: empty input")
	}
	var h Header
	if err := decodeLine(lines[start], &h); err != nil {
		return nil, 0, fmt.Errorf("ckpt: header: %w", err)
	}
	if h.Format != Format {
		return nil, 0, fmt.Errorf("ckpt: format %q, want %q", h.Format, Format)
	}
	if h.Version != Version {
		return nil, 0, fmt.Errorf("ckpt: version %d, want %d", h.Version, Version)
	}
	if h.Sections < 0 {
		return nil, 0, fmt.Errorf("ckpt: negative section count %d", h.Sections)
	}
	need := h.Sections + 2 // header + sections + commit
	if len(lines)-start < need {
		return nil, 0, fmt.Errorf("ckpt: truncated group: %d of %d lines", len(lines)-start, need)
	}
	c := &Checkpoint{Tag: h.Tag, Cycle: h.Cycle}
	// The commit CRC covers the raw header and section lines, each with the
	// '\n' the encoder appended.
	sum := crc32.Checksum(append(lines[start], '\n'), castagnoli)
	for i := 0; i < h.Sections; i++ {
		line := lines[start+1+i]
		var s sectionLine
		if err := decodeLine(line, &s); err != nil {
			return nil, 0, fmt.Errorf("ckpt: section %d: %w", i, err)
		}
		if s.Name == "" {
			return nil, 0, fmt.Errorf("ckpt: section %d: empty name", i)
		}
		if got := crcHex(s.Data); got != s.CRC {
			return nil, 0, fmt.Errorf("ckpt: section %q: crc %s, want %s", s.Name, got, s.CRC)
		}
		c.Sections = append(c.Sections, Section{Name: s.Name, Data: s.Data})
		sum = crc32.Update(sum, castagnoli, append(line, '\n'))
	}
	var cm commitLine
	if err := decodeLine(lines[start+h.Sections+1], &cm); err != nil {
		return nil, 0, fmt.Errorf("ckpt: commit: %w", err)
	}
	if cm.Commit != h.Sections {
		return nil, 0, fmt.Errorf("ckpt: commit count %d, want %d", cm.Commit, h.Sections)
	}
	if want := fmt.Sprintf("%08x", sum); cm.CRC != want {
		return nil, 0, fmt.Errorf("ckpt: commit crc %s, want %s", cm.CRC, want)
	}
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	return c, need, nil
}

// Decode parses and validates exactly one checkpoint. It never panics on
// arbitrary input, and for any input x accepted by Decode,
// Encode(Decode(x)) is a fixed point of the round trip.
func Decode(data []byte) (*Checkpoint, error) {
	lines := splitLines(data)
	c, used, err := decodeGroup(lines, 0)
	if err != nil {
		return nil, err
	}
	if used != len(lines) {
		return nil, fmt.Errorf("ckpt: %d trailing lines after commit", len(lines)-used)
	}
	return c, nil
}

// Recover scans the input for complete frame groups and returns the last
// valid one — the newest checkpoint that was fully committed before a crash.
// Garbage, torn groups, and a truncated tail are skipped; Recover never
// panics. It fails only when no complete checkpoint exists.
func Recover(data []byte) (*Checkpoint, error) {
	lines := splitLines(data)
	var last *Checkpoint
	for i := 0; i < len(lines); {
		c, used, err := decodeGroup(lines, i)
		if err != nil {
			i++
			continue
		}
		last = c
		i += used
	}
	if last == nil {
		return nil, errors.New("ckpt: no complete checkpoint in input")
	}
	return last, nil
}

// WriteFile atomically replaces path with the encoded checkpoint: the bytes
// are written to a temp file in the same directory, fsynced, and renamed
// over path, then the directory entry is synced. A crash at any point leaves
// either the previous file or the new one.
func WriteFile(path string, c *Checkpoint) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// AtomicWriteFile exposes the torn-write-safe replace for other writers of
// crash-adjacent files (artifacts, WAL records): temp file in the target
// directory, fsync, rename, directory sync.
func AtomicWriteFile(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: mkdir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	// CreateTemp files are 0600; match the conventional artifact mode.
	_ = tmp.Chmod(0o644)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	// Persist the directory entry too; best-effort on filesystems that
	// reject directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile loads the newest complete checkpoint from path, tolerating a torn
// tail. A missing file returns os.ErrNotExist.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Recover(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return c, nil
}
