package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Checkpoint {
	return New("spec=throughput/shape=2x2x2", 4096).
		Add("machine", []byte(`{"now":4096,"injected":17}`)).
		Add("driver", []byte(`{"sent":[3,2,1]}`)).
		Add("empty", nil)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sample()
	enc, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Tag != c.Tag || dec.Cycle != c.Cycle || len(dec.Sections) != len(c.Sections) {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, c)
	}
	for i := range c.Sections {
		if dec.Sections[i].Name != c.Sections[i].Name ||
			!bytes.Equal(dec.Sections[i].Data, c.Sections[i].Data) {
			t.Fatalf("section %d differs: %+v vs %+v", i, dec.Sections[i], c.Sections[i])
		}
	}
	re, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("Encode∘Decode not a fixed point:\n%s\nvs\n%s", enc, re)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same checkpoint differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any payload byte must fail either the section or commit CRC.
	for i := 0; i < len(enc); i++ {
		if enc[i] == '\n' {
			continue
		}
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := Decode(bad); err == nil {
			// A flip inside base64 padding or whitespace could in theory
			// survive JSON parsing; the CRCs must still catch the ones
			// that change decoded bytes. Verify the decode result differs
			// from nothing — any accepted mutation is a codec hole.
			t.Fatalf("Decode accepted corrupted byte %d (%q)", i, enc[i])
		}
	}
}

func TestDecodeRejectsDuplicateAndTrailing(t *testing.T) {
	dup := New("t", 1).Add("a", []byte("x")).Add("a", []byte("y"))
	if _, err := dup.Encode(); err == nil {
		t.Fatal("Encode accepted duplicate section names")
	}
	enc, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(append([]byte(nil), enc...), "junk\n"...)); err == nil {
		t.Fatal("Decode accepted trailing data")
	}
}

func TestRecoverTruncatedTail(t *testing.T) {
	old := New("tag", 100).Add("machine", []byte("old-state"))
	cur := New("tag", 200).Add("machine", []byte("new-state"))
	oldB, err := old.Encode()
	if err != nil {
		t.Fatal(err)
	}
	curB, err := cur.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A log holding a complete old group followed by a torn new group must
	// recover the old group, for every truncation point of the new one.
	// The sole exception is cutting only the final newline: the commit line
	// is then still complete, so the new group legitimately recovers.
	for cut := 0; cut < len(curB); cut++ {
		log := append(append([]byte(nil), oldB...), curB[:cut]...)
		got, err := Recover(log)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		want := uint64(100)
		if cut == len(curB)-1 {
			want = 200
		}
		if got.Cycle != want {
			t.Fatalf("cut %d: recovered cycle %d, want %d", cut, got.Cycle, want)
		}
	}
	// The complete log recovers the newest group.
	got, err := Recover(append(append([]byte(nil), oldB...), curB...))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != 200 {
		t.Fatalf("recovered cycle %d, want 200 (latest group)", got.Cycle)
	}
	// Garbage before and between groups is skipped.
	log := append([]byte("garbage line\n\x00\x01\x02\n"), oldB...)
	log = append(log, "more garbage\n"...)
	log = append(log, curB...)
	got, err = Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != 200 {
		t.Fatalf("recovered cycle %d from dirty log, want 200", got.Cycle)
	}
	if _, err := Recover([]byte("no checkpoints here\n")); err == nil {
		t.Fatal("Recover invented a checkpoint from garbage")
	}
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteFile(path, sample()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	c, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if c.Cycle != 4096 {
		t.Fatalf("read cycle %d, want 4096", c.Cycle)
	}
	// Replacement leaves no temp debris.
	if err := WriteFile(path, New("spec", 8192).Add("machine", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	c, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycle != 8192 {
		t.Fatalf("read cycle %d after replace, want 8192", c.Cycle)
	}
	// A torn tail appended to the file (simulated partial append) still
	// recovers the committed checkpoint.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"format":"anton2-ckpt","version":1,"cycle":9999,"sec`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c, err = ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile with torn tail: %v", err)
	}
	if c.Cycle != 8192 {
		t.Fatalf("torn tail: recovered cycle %d, want 8192", c.Cycle)
	}
}

func TestRunConfig(t *testing.T) {
	if (RunConfig{}).Enabled() {
		t.Fatal("zero RunConfig reports enabled")
	}
	if !(RunConfig{Path: "x", Every: 1}).Enabled() {
		t.Fatal("configured RunConfig reports disabled")
	}
	dir := t.TempDir()
	rc := RunConfig{Path: filepath.Join(dir, "r.ckpt"), Every: 16, Resume: true}
	if c := rc.Load("tag"); c != nil {
		t.Fatal("Load invented a checkpoint from a missing file")
	}
	if err := WriteFile(rc.Path, New("tag", 32).Add("m", []byte("s"))); err != nil {
		t.Fatal(err)
	}
	if c := rc.Load("other-tag"); c != nil {
		t.Fatal("Load accepted a checkpoint with a foreign tag")
	}
	c := rc.Load("tag")
	if c == nil || c.Cycle != 32 {
		t.Fatalf("Load: got %+v, want cycle 32", c)
	}
	norc := rc
	norc.Resume = false
	if c := norc.Load("tag"); c != nil {
		t.Fatal("Load resumed without Resume set")
	}
	rc.Discard()
	if _, err := os.Stat(rc.Path); !os.IsNotExist(err) {
		t.Fatal("Discard left the checkpoint file")
	}
	rc.Discard() // second discard is a no-op
}

func TestWriterSticky(t *testing.T) {
	dir := t.TempDir()
	rc := RunConfig{Path: filepath.Join(dir, "w.ckpt"), Every: 4}
	w := NewWriter(rc)
	if err := w.Save(New("t", 4).Add("m", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(New("t", 8).Add("m", []byte("b"))); err != nil {
		t.Fatal(err)
	}
	c, err := ReadFile(rc.Path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycle != 8 {
		t.Fatalf("latest save not visible: cycle %d", c.Cycle)
	}
	// An unwritable path makes the error sticky.
	bad := NewWriter(RunConfig{Path: filepath.Join(dir, "missing", "\x00", "w.ckpt"), Every: 4})
	if err := bad.Save(New("t", 4)); err == nil {
		t.Fatal("Save to invalid path succeeded")
	}
	if bad.Err() == nil {
		t.Fatal("writer error not sticky")
	}
}

// FuzzCheckpointCodec exercises the three codec guarantees on arbitrary
// bytes: Decode never panics; anything Decode accepts re-encodes to a fixed
// point; and Recover (the truncated-tail path) never panics, accepting any
// prefix of valid data plus arbitrary garbage.
func FuzzCheckpointCodec(f *testing.F) {
	enc, err := sample().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc, len(enc))
	f.Add([]byte("{}\n"), 1)
	f.Add([]byte(nil), 0)
	f.Add([]byte(`{"format":"anton2-ckpt","version":1,"cycle":0,"sections":0}`+"\n"), 3)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		c, err := Decode(data)
		if err == nil {
			re, err := c.Encode()
			if err != nil {
				t.Fatalf("accepted input failed to re-encode: %v", err)
			}
			c2, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encoded output rejected: %v", err)
			}
			re2, err := c2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, re2) {
				t.Fatal("Encode∘Decode not a fixed point")
			}
		}
		// Recover must never panic, on the raw input or any truncation.
		_, _ = Recover(data)
		if cut >= 0 && cut < len(data) {
			_, _ = Recover(data[:cut])
		}
	})
}
