package traffic

import (
	"math"
	"math/rand"
	"testing"

	"anton2/internal/topo"
)

func machineFor(t testing.TB, shape topo.TorusShape) *topo.Machine {
	t.Helper()
	m, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkFlowsSumToOne(t *testing.T, m *topo.Machine, p Pattern) {
	t.Helper()
	flows := p.Flows(m)
	for _, srcEp := range m.Chip.CoreEndpoints() {
		sum := 0.0
		for _, f := range flows(srcEp) {
			sum += f.Frac
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: flows from E%d sum to %g", p.Name(), srcEp, sum)
		}
	}
}

func TestAllPatternsFlowsSumToOne(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 4))
	for _, p := range []Pattern{
		Uniform{}, NHop{N: 1}, NHop{N: 2}, Tornado(), ReverseTornado(),
		BitComplement(), NearestNeighbor{},
	} {
		checkFlowsSumToOne(t, m, p)
	}
}

func TestUniformNeverSelf(t *testing.T) {
	m := machineFor(t, topo.Shape3(2, 2, 2))
	rng := rand.New(rand.NewSource(1))
	src := topo.NodeEp{Node: 5, Ep: 0}
	for i := 0; i < 1000; i++ {
		d := (Uniform{}).Dest(m, src, rng)
		if d.Node == src.Node {
			t.Fatal("uniform traffic sent to the source node")
		}
	}
}

func TestUniformCoversAllNodes(t *testing.T) {
	m := machineFor(t, topo.Shape3(2, 2, 2))
	rng := rand.New(rand.NewSource(2))
	src := topo.NodeEp{Node: 0, Ep: 0}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[(Uniform{}).Dest(m, src, rng).Node] = true
	}
	if len(seen) != m.NumNodes()-1 {
		t.Errorf("uniform reached %d nodes, want %d", len(seen), m.NumNodes()-1)
	}
}

func TestNHopNeighborhoodSize(t *testing.T) {
	m := machineFor(t, topo.Shape3(8, 8, 8))
	if n := len((NHop{N: 1}).neighborhood(m, topo.NodeCoord{})); n != 26 {
		t.Errorf("1-hop neighborhood = %d nodes, want 3^3-1 = 26", n)
	}
	if n := len((NHop{N: 2}).neighborhood(m, topo.NodeCoord{})); n != 124 {
		t.Errorf("2-hop neighborhood = %d nodes, want 5^3-1 = 124", n)
	}
	// Wrapping dedup: on a k=4 torus, offsets -2 and +2 alias.
	m4 := machineFor(t, topo.Shape3(4, 4, 4))
	if n := len((NHop{N: 2}).neighborhood(m4, topo.NodeCoord{})); n != 63 {
		t.Errorf("2-hop neighborhood on 4^3 = %d nodes, want full torus minus self = 63", n)
	}
}

func TestNHopDestWithinRange(t *testing.T) {
	m := machineFor(t, topo.Shape3(8, 8, 8))
	rng := rand.New(rand.NewSource(3))
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 4, Y: 4, Z: 4}), Ep: 0}
	p := NHop{N: 2}
	for i := 0; i < 500; i++ {
		d := p.Dest(m, src, rng)
		dc := m.Shape.Coord(d.Node)
		sc := m.Shape.Coord(src.Node)
		for dim := topo.Dim(0); dim < topo.NumDims; dim++ {
			delta, _ := m.Shape.MinimalDelta(sc, dc, dim)
			if delta < -2 || delta > 2 {
				t.Fatalf("2-hop destination %v is %d hops away in %v", dc, delta, dim)
			}
		}
		if d.Node == src.Node {
			t.Fatal("n-hop sent to self node")
		}
	}
}

func TestTornadoFormula(t *testing.T) {
	m := machineFor(t, topo.Shape3(8, 8, 8))
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 1, Y: 2, Z: 3}), Ep: 7}
	d := Tornado().Dest(m, src, nil)
	want := topo.NodeCoord{X: 1 + 3, Y: 2 + 3, Z: 3 + 3} // +k/2-1
	if m.Shape.Coord(d.Node) != want {
		t.Errorf("tornado dst = %v, want %v", m.Shape.Coord(d.Node), want)
	}
	if d.Ep != src.Ep {
		t.Errorf("tornado must target the same core index")
	}
	r := ReverseTornado().Dest(m, src, nil)
	wantR := topo.NodeCoord{X: 1 - 3 + 8, Y: 2 - 3 + 8, Z: 3 - 3 + 8}
	if m.Shape.Coord(r.Node) != m.Shape.Wrap(wantR) {
		t.Errorf("reverse tornado dst = %v, want %v", m.Shape.Coord(r.Node), m.Shape.Wrap(wantR))
	}
}

func TestTornadoReverseAreOpposite(t *testing.T) {
	m := machineFor(t, topo.Shape3(8, 4, 6))
	for node := 0; node < m.NumNodes(); node += 5 {
		src := topo.NodeEp{Node: node, Ep: 0}
		f := Tornado().Dest(m, src, nil)
		back := ReverseTornado().Dest(m, topo.NodeEp{Node: f.Node, Ep: 0}, nil)
		if back.Node != src.Node {
			t.Fatalf("reverse(tornado(%d)) = %d", src.Node, back.Node)
		}
	}
}

func TestBitComplementInvolution(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 6, 8))
	p := BitComplement()
	for node := 0; node < m.NumNodes(); node++ {
		src := topo.NodeEp{Node: node, Ep: 3}
		d := p.Dest(m, src, nil)
		dd := p.Dest(m, topo.NodeEp{Node: d.Node, Ep: 3}, nil)
		if dd.Node != node {
			t.Fatalf("bit-complement is not an involution at node %d", node)
		}
	}
}

func TestNearestNeighborDistanceOne(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 4))
	rng := rand.New(rand.NewSource(4))
	src := topo.NodeEp{Node: 21, Ep: 2}
	for i := 0; i < 200; i++ {
		d := (NearestNeighbor{}).Dest(m, src, rng)
		if h := m.Shape.HopDistance(m.Shape.Coord(src.Node), m.Shape.Coord(d.Node)); h != 1 {
			t.Fatalf("nearest-neighbor destination %d hops away", h)
		}
	}
}

func TestPatternNames(t *testing.T) {
	cases := map[string]Pattern{
		"uniform":         Uniform{},
		"2-hop":           NHop{N: 2},
		"tornado":         Tornado(),
		"reverse-tornado": ReverseTornado(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
