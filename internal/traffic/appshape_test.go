package traffic

import (
	"math"
	"math/rand"
	"testing"

	"anton2/internal/topo"
	"anton2/internal/trace"
)

// chiSquareVsFlows draws destinations for a node-0 source and tests
// agreement with the enumerated Flows distribution. deff is the design
// effect for correlated draws (1 for iid patterns, ~2·Len for bursty runs:
// clustered sampling inflates the χ² statistic by roughly the mean cluster
// size). The critical value is the Wilson–Hilferty approximation at p≈0.001;
// seeds are fixed, so the tests are deterministic.
func chiSquareVsFlows(t *testing.T, m *topo.Machine, p Pattern, srcEp, draws int, deff float64, rng *rand.Rand) {
	t.Helper()
	src := topo.NodeEp{Node: 0, Ep: srcEp}
	expected := map[topo.NodeEp]float64{}
	for _, f := range p.Flows(m)(srcEp) {
		expected[f.Dst] += f.Frac * float64(draws)
	}
	for dst, exp := range expected {
		if exp < 5 {
			t.Fatalf("%s: expected count %.2f for %v too small for χ²; raise draws", p.Name(), exp, dst)
		}
	}
	observed := map[topo.NodeEp]int{}
	for i := 0; i < draws; i++ {
		d := p.Dest(m, src, rng)
		if expected[d] == 0 {
			t.Fatalf("%s: drew %v outside the enumerated flow support", p.Name(), d)
		}
		observed[d]++
	}
	chi2 := 0.0
	for dst, exp := range expected {
		diff := float64(observed[dst]) - exp
		chi2 += diff * diff / exp
	}
	df := float64(len(expected) - 1)
	z := 3.09 // p ≈ 0.001
	crit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
	if chi2 > deff*crit {
		t.Errorf("%s: χ² = %.1f exceeds %.1f (df = %.0f, deff = %g)", p.Name(), chi2, deff*crit, df, deff)
	}
}

// TestChiSquareUniformBaseline sanity-checks the harness itself on an iid
// pattern before trusting it on the new generators.
func TestChiSquareUniformBaseline(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	chiSquareVsFlows(t, m, Uniform{}, m.Chip.CoreEndpoints()[0], 40000, 1, rand.New(rand.NewSource(11)))
}

// TestChiSquareBursty: the bursty wrapper's marginal destination
// distribution matches its inner pattern's Flows. Draws within a burst are
// correlated, hence the 2·Len design effect.
func TestChiSquareBursty(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p := NewBursty(NHop{N: 1}, 4)
	chiSquareVsFlows(t, m, p, m.Chip.CoreEndpoints()[3], 40000, 2*float64(p.Len), rand.New(rand.NewSource(12)))
}

// TestChiSquareHotspot: online draws agree with the merged hot + background
// distribution.
func TestChiSquareHotspot(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p := Hotspot{Node: 5, Frac: 0.3}
	chiSquareVsFlows(t, m, p, m.Chip.CoreEndpoints()[7], 40000, 1, rand.New(rand.NewSource(13)))
}

func TestAppShapeFlowsSumToOne(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 4))
	for _, p := range []Pattern{
		NewBursty(Uniform{}, 4),
		NewBursty(NHop{N: 2}, 8),
		Hotspot{Node: 9, Frac: 0.25},
		Hotspot{Node: 0, Frac: 0.5, Inner: NHop{N: 1}},
		Hotspot{Node: 3, Frac: 1},
	} {
		checkFlowsSumToOne(t, m, p)
	}
}

// TestBurstyRunLengths: consecutive same-destination runs have mean length
// close to Len.
func TestBurstyRunLengths(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p := NewBursty(Uniform{}, 6)
	rng := rand.New(rand.NewSource(14))
	src := topo.NodeEp{Node: 0, Ep: m.Chip.CoreEndpoints()[0]}
	const draws = 30000
	runs := 0
	var prev topo.NodeEp
	for i := 0; i < draws; i++ {
		d := p.Dest(m, src, rng)
		if i == 0 || d != prev {
			runs++
		}
		prev = d
	}
	mean := float64(draws) / float64(runs)
	if math.Abs(mean-float64(p.Len)) > 0.15*float64(p.Len) {
		t.Errorf("mean run length %.2f, want ~%d", mean, p.Len)
	}
}

// TestBurstyPerSourceIndependence: two sources sharing one Bursty value but
// holding distinct rngs burst independently (state is keyed per rng).
func TestBurstyPerSourceIndependence(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p := NewBursty(Uniform{}, 1_000_000) // huge bursts: each source should stick to one dest
	srcA := topo.NodeEp{Node: 0, Ep: m.Chip.CoreEndpoints()[0]}
	srcB := topo.NodeEp{Node: 1, Ep: m.Chip.CoreEndpoints()[0]}
	rngA := rand.New(rand.NewSource(15))
	rngB := rand.New(rand.NewSource(16))
	dstA := p.Dest(m, srcA, rngA)
	dstB := p.Dest(m, srcB, rngB)
	for i := 0; i < 50; i++ {
		if d := p.Dest(m, srcA, rngA); d != dstA {
			t.Fatalf("source A burst broke at draw %d (p = 1e-6)", i)
		}
		if d := p.Dest(m, srcB, rngB); d != dstB {
			t.Fatalf("source B burst broke at draw %d (p = 1e-6)", i)
		}
	}
}

// TestHotspotFraction: the observed hot-node fraction tracks Frac, and
// sources on the hot node fall back to pure inner traffic.
func TestHotspotFraction(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p := Hotspot{Node: 5, Frac: 0.3}
	rng := rand.New(rand.NewSource(17))
	src := topo.NodeEp{Node: 0, Ep: m.Chip.CoreEndpoints()[0]}
	const draws = 40000
	hot := 0
	for i := 0; i < draws; i++ {
		if p.Dest(m, src, rng).Node == p.Node {
			hot++
		}
	}
	// Background uniform also lands on the hot node 1/31 of the time.
	want := p.Frac + (1-p.Frac)/float64(m.NumNodes()-1)
	if got := float64(hot) / draws; math.Abs(got-want) > 0.02 {
		t.Errorf("hot fraction %.3f, want ~%.3f", got, want)
	}
	// A source on the hot node sends pure inner (uniform excludes self).
	hotSrc := topo.NodeEp{Node: p.Node, Ep: m.Chip.CoreEndpoints()[0]}
	for i := 0; i < 1000; i++ {
		if p.Dest(m, hotSrc, rng).Node == p.Node {
			t.Fatal("hot-node source sent to itself")
		}
	}
}

func replayFixture(m *topo.Machine) (*Replay, []topo.NodeEp) {
	cores := m.Chip.CoreEndpoints()
	src := topo.NodeEp{Node: 0, Ep: cores[0]}
	dsts := []topo.NodeEp{
		{Node: 3, Ep: cores[1]},
		{Node: 5, Ep: cores[2]},
		{Node: 3, Ep: cores[1]},
		{Node: 1, Ep: cores[0]},
	}
	tr := &trace.Trace{Header: trace.Header{Format: trace.Format, Version: trace.Version, Shape: m.Shape.String(), Seed: 1}}
	for i, d := range dsts {
		tr.Events = append(tr.Events, trace.Event{
			Cycle: uint64(i), Kind: trace.KindUnicast,
			SrcNode: src.Node, SrcEp: src.Ep, DstNode: d.Node, DstEp: d.Ep,
			Size: 1, Order: "XYZ", Ties: [topo.NumDims]int8{1, 1, 1},
		})
	}
	return NewReplay(tr), dsts
}

// TestReplayPlaysBackInOrder: recorded destinations come back in order and
// wrap around; sources absent from the trace fall back to uniform.
func TestReplayPlaysBackInOrder(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p, dsts := replayFixture(m)
	rng := rand.New(rand.NewSource(18))
	src := topo.NodeEp{Node: 0, Ep: m.Chip.CoreEndpoints()[0]}
	for i := 0; i < 3*len(dsts); i++ {
		want := dsts[i%len(dsts)]
		if got := p.Dest(m, src, rng); got != want {
			t.Fatalf("draw %d = %v, want %v", i, got, want)
		}
	}
	other := topo.NodeEp{Node: 7, Ep: m.Chip.CoreEndpoints()[0]}
	for i := 0; i < 100; i++ {
		if p.Dest(m, other, rng).Node == other.Node {
			t.Fatal("uniform fallback sent to the source node")
		}
	}
}

// TestReplayFlowsEmpirical: Flows reports the per-destination frequencies of
// the recorded sequence.
func TestReplayFlowsEmpirical(t *testing.T) {
	m := machineFor(t, topo.Shape3(4, 4, 2))
	p, dsts := replayFixture(m)
	flows := p.Flows(m)(m.Chip.CoreEndpoints()[0])
	want := map[topo.NodeEp]float64{}
	for _, d := range dsts {
		want[d] += 1 / float64(len(dsts))
	}
	if len(flows) != len(want) {
		t.Fatalf("got %d flows, want %d", len(flows), len(want))
	}
	for _, f := range flows {
		if math.Abs(f.Frac-want[f.Dst]) > 1e-12 {
			t.Errorf("flow to %v = %g, want %g", f.Dst, f.Frac, want[f.Dst])
		}
	}
	checkFlowsSumToOne(t, m, p)
}
