// Package traffic defines the synthetic traffic patterns of the paper's
// measurement section: uniform random, n-hop neighbor locality [2], tornado
// and reverse tornado [25], plus generic permutations, and the
// application-shaped generators of appshape.go (bursty, hotspot, trace
// replay). Every pattern both draws destinations online (for the simulator)
// and enumerates its destination distribution (for load computation). The
// synthetic patterns in this file are node-symmetric; the application-shaped
// ones need not be, and Flows always describes node-0 sources.
package traffic

import (
	"fmt"
	"math/rand"

	"anton2/internal/loadcalc"
	"anton2/internal/topo"
)

// Pattern describes a node-symmetric traffic pattern over the machine's
// core endpoints (one per on-chip router, matching the paper's test setup).
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest draws a destination for a packet injected at src.
	Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp
	// Flows returns the destination distribution of node-0 sources.
	Flows(m *topo.Machine) loadcalc.FlowFunc
}

// Uniform sends each packet to a random core endpoint on a random node
// other than the source's (uniform random traffic with no locality).
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	n := m.NumNodes()
	dst := rng.Intn(n - 1)
	if dst >= src.Node {
		dst++
	}
	cores := m.Chip.CoreEndpoints()
	return topo.NodeEp{Node: dst, Ep: cores[rng.Intn(len(cores))]}
}

// Flows implements Pattern.
func (Uniform) Flows(m *topo.Machine) loadcalc.FlowFunc {
	n := m.NumNodes()
	cores := m.Chip.CoreEndpoints()
	return func(srcEp int) []loadcalc.Flow {
		out := make([]loadcalc.Flow, 0, (n-1)*len(cores))
		frac := 1.0 / float64((n-1)*len(cores))
		for node := 1; node < n; node++ {
			for _, ep := range cores {
				out = append(out, loadcalc.Flow{Dst: topo.NodeEp{Node: node, Ep: ep}, Frac: frac})
			}
		}
		return out
	}
}

// NHop is n-hop neighbor traffic [2]: each packet travels to a random
// destination node at most N hops away along each dimension of the torus
// (excluding the source node), to a random core endpoint.
type NHop struct{ N int }

// Name implements Pattern.
func (p NHop) Name() string { return fmt.Sprintf("%d-hop", p.N) }

// neighborhood returns the distinct destination nodes within the offset
// cube, excluding the center.
func (p NHop) neighborhood(m *topo.Machine, center topo.NodeCoord) []int {
	seen := map[int]bool{}
	var out []int
	for dx := -p.N; dx <= p.N; dx++ {
		for dy := -p.N; dy <= p.N; dy++ {
			for dz := -p.N; dz <= p.N; dz++ {
				c := m.Shape.Wrap(topo.NodeCoord{X: center.X + dx, Y: center.Y + dy, Z: center.Z + dz})
				id := m.Shape.NodeID(c)
				if c == center || seen[id] {
					continue
				}
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Dest implements Pattern.
func (p NHop) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	nodes := p.neighborhood(m, m.Shape.Coord(src.Node))
	cores := m.Chip.CoreEndpoints()
	return topo.NodeEp{Node: nodes[rng.Intn(len(nodes))], Ep: cores[rng.Intn(len(cores))]}
}

// Flows implements Pattern.
func (p NHop) Flows(m *topo.Machine) loadcalc.FlowFunc {
	nodes := p.neighborhood(m, m.Shape.Coord(0))
	cores := m.Chip.CoreEndpoints()
	return func(srcEp int) []loadcalc.Flow {
		out := make([]loadcalc.Flow, 0, len(nodes)*len(cores))
		frac := 1.0 / float64(len(nodes)*len(cores))
		for _, node := range nodes {
			for _, ep := range cores {
				out = append(out, loadcalc.Flow{Dst: topo.NodeEp{Node: node, Ep: ep}, Frac: frac})
			}
		}
		return out
	}
}

// Permutation sends all of a core's packets to the same core index on a
// node determined by a coordinate mapping.
type Permutation struct {
	Label string
	Map   func(shape topo.TorusShape, c topo.NodeCoord) topo.NodeCoord
}

// Name implements Pattern.
func (p Permutation) Name() string { return p.Label }

func (p Permutation) dst(m *topo.Machine, src topo.NodeEp) topo.NodeEp {
	c := p.Map(m.Shape, m.Shape.Coord(src.Node))
	return topo.NodeEp{Node: m.Shape.NodeID(m.Shape.Wrap(c)), Ep: src.Ep}
}

// Dest implements Pattern.
func (p Permutation) Dest(m *topo.Machine, src topo.NodeEp, _ *rand.Rand) topo.NodeEp {
	return p.dst(m, src)
}

// Flows implements Pattern.
func (p Permutation) Flows(m *topo.Machine) loadcalc.FlowFunc {
	return func(srcEp int) []loadcalc.Flow {
		return []loadcalc.Flow{{Dst: p.dst(m, topo.NodeEp{Node: 0, Ep: srcEp}), Frac: 1}}
	}
}

// Tornado is the adversarial pattern of Section 4.2: cores on node (x,y,z)
// send to node (x+kx/2-1, y+ky/2-1, z+kz/2-1).
func Tornado() Permutation {
	return Permutation{
		Label: "tornado",
		Map: func(s topo.TorusShape, c topo.NodeCoord) topo.NodeCoord {
			return topo.NodeCoord{
				X: c.X + s.K[0]/2 - 1,
				Y: c.Y + s.K[1]/2 - 1,
				Z: c.Z + s.K[2]/2 - 1,
			}
		},
	}
}

// ReverseTornado is the opposite of Tornado: cores on node (x,y,z) send to
// node (x-kx/2+1, y-ky/2+1, z-kz/2+1).
func ReverseTornado() Permutation {
	return Permutation{
		Label: "reverse-tornado",
		Map: func(s topo.TorusShape, c topo.NodeCoord) topo.NodeCoord {
			return topo.NodeCoord{
				X: c.X - s.K[0]/2 + 1,
				Y: c.Y - s.K[1]/2 + 1,
				Z: c.Z - s.K[2]/2 + 1,
			}
		},
	}
}

// BitComplement sends to the coordinate-wise complement node, a classic
// worst-case-ish benign permutation.
func BitComplement() Permutation {
	return Permutation{
		Label: "bit-complement",
		Map: func(s topo.TorusShape, c topo.NodeCoord) topo.NodeCoord {
			return topo.NodeCoord{X: s.K[0] - 1 - c.X, Y: s.K[1] - 1 - c.Y, Z: s.K[2] - 1 - c.Z}
		},
	}
}

// NearestNeighbor sends to a uniformly random node exactly one hop away
// (the paper's 1-hop neighbor traffic is NHop{1}; this stricter variant
// exercises single-dimension routes only).
type NearestNeighbor struct{}

// Name implements Pattern.
func (NearestNeighbor) Name() string { return "nearest-neighbor" }

func nnNodes(m *topo.Machine, c topo.NodeCoord) []int {
	seen := map[int]bool{}
	var out []int
	for d := topo.Direction(0); d < topo.NumDirections; d++ {
		id := m.Shape.NodeID(m.Shape.Neighbor(c, d))
		if id != m.Shape.NodeID(c) && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Dest implements Pattern.
func (NearestNeighbor) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	nodes := nnNodes(m, m.Shape.Coord(src.Node))
	return topo.NodeEp{Node: nodes[rng.Intn(len(nodes))], Ep: src.Ep}
}

// Flows implements Pattern.
func (NearestNeighbor) Flows(m *topo.Machine) loadcalc.FlowFunc {
	nodes := nnNodes(m, m.Shape.Coord(0))
	return func(srcEp int) []loadcalc.Flow {
		out := make([]loadcalc.Flow, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, loadcalc.Flow{Dst: topo.NodeEp{Node: n, Ep: srcEp}, Frac: 1 / float64(len(nodes))})
		}
		return out
	}
}
