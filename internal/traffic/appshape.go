package traffic

// This file holds the application-shaped generators: temporal burstiness,
// spatial hotspots, and recorded-trace playback. Unlike the synthetic
// patterns in traffic.go these are not all node-symmetric, so they are
// deliberately excluded from the saturation-analysis pattern lists (loadcalc
// derives channel loads from the node-0 flow view under a symmetry
// assumption); the workload layer and the experiment families that use them
// reason about time, not steady-state rate.

import (
	"fmt"
	"math/rand"
	"sync"

	"anton2/internal/loadcalc"
	"anton2/internal/topo"
	"anton2/internal/trace"
)

// Bursty wraps an inner pattern with temporal burstiness: each source sends
// runs of packets to one destination, re-drawing from the inner pattern with
// probability 1/Len per packet, so bursts have geometric length with mean
// Len. The marginal destination distribution is exactly the inner pattern's
// (every draw is an unconditioned inner sample), so Flows delegates to Inner
// and stays valid for load computation.
//
// Burst state is tracked per source rng. The machine gives every (job,
// source) pair its own *rand.Rand, so keying on the rng pointer keeps
// concurrent jobs that share one Bursty value independent; the state map is
// mutex-guarded for that case. Use one Bursty per run where possible.
type Bursty struct {
	Inner Pattern
	Len   int // mean burst length in packets (values < 2 disable bursting)

	mu    sync.Mutex
	state map[*rand.Rand]topo.NodeEp
}

// NewBursty wraps inner (nil = Uniform) with mean burst length meanLen.
func NewBursty(inner Pattern, meanLen int) *Bursty {
	if inner == nil {
		inner = Uniform{}
	}
	return &Bursty{Inner: inner, Len: meanLen}
}

// Name implements Pattern.
func (b *Bursty) Name() string { return fmt.Sprintf("bursty%d-%s", b.Len, b.Inner.Name()) }

// Dest implements Pattern.
func (b *Bursty) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	if b.Len < 2 {
		return b.Inner.Dest(m, src, rng)
	}
	b.mu.Lock()
	dst, inBurst := b.state[rng]
	b.mu.Unlock()
	// Continue the current burst with probability (Len-1)/Len.
	if inBurst && rng.Float64()*float64(b.Len) >= 1 {
		return dst
	}
	dst = b.Inner.Dest(m, src, rng)
	b.mu.Lock()
	if b.state == nil {
		b.state = make(map[*rand.Rand]topo.NodeEp)
	}
	b.state[rng] = dst
	b.mu.Unlock()
	return dst
}

// Flows implements Pattern. Bursting reorders packets in time but leaves the
// destination distribution unchanged.
func (b *Bursty) Flows(m *topo.Machine) loadcalc.FlowFunc { return b.Inner.Flows(m) }

// Hotspot aims a fraction Frac of every source's packets at the core
// endpoints of one hot node and draws the rest from Inner (nil = Uniform).
// Sources on the hot node itself send pure inner traffic. The pattern is not
// node-symmetric: Flows describes node-0 sources, per the FlowFunc contract,
// which is the hot view only when Node == 0.
type Hotspot struct {
	Node  int     // hot node id
	Frac  float64 // fraction of packets aimed at the hot node, in [0, 1]
	Inner Pattern
}

func (h Hotspot) inner() Pattern {
	if h.Inner == nil {
		return Uniform{}
	}
	return h.Inner
}

// Name implements Pattern.
func (h Hotspot) Name() string {
	return fmt.Sprintf("hotspot%d-%g-%s", h.Node, h.Frac, h.inner().Name())
}

// Dest implements Pattern.
func (h Hotspot) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	if src.Node != h.Node && rng.Float64() < h.Frac {
		cores := m.Chip.CoreEndpoints()
		return topo.NodeEp{Node: h.Node, Ep: cores[rng.Intn(len(cores))]}
	}
	return h.inner().Dest(m, src, rng)
}

// Flows implements Pattern.
func (h Hotspot) Flows(m *topo.Machine) loadcalc.FlowFunc {
	innerFlows := h.inner().Flows(m)
	if h.Node == 0 {
		return innerFlows
	}
	cores := m.Chip.CoreEndpoints()
	return func(srcEp int) []loadcalc.Flow {
		var out []loadcalc.Flow
		idx := make(map[topo.NodeEp]int)
		add := func(dst topo.NodeEp, frac float64) {
			if i, ok := idx[dst]; ok {
				out[i].Frac += frac
			} else {
				idx[dst] = len(out)
				out = append(out, loadcalc.Flow{Dst: dst, Frac: frac})
			}
		}
		for _, f := range innerFlows(srcEp) {
			add(f.Dst, f.Frac*(1-h.Frac))
		}
		for _, ep := range cores {
			add(topo.NodeEp{Node: h.Node, Ep: ep}, h.Frac/float64(len(cores)))
		}
		return out
	}
}

// Replay plays back the unicast destinations of a recorded trace: each
// source re-issues its recorded destination sequence in order, wrapping
// around when exhausted, so a capture can drive open-loop rate sweeps with
// the application's spatial structure. Sources with no recorded events fall
// back to uniform traffic. Cursors are mutex-guarded; like Bursty, use one
// Replay per run where possible.
type Replay struct {
	Tr *trace.Trace

	once sync.Once
	mu   sync.Mutex
	seq  map[topo.NodeEp][]topo.NodeEp
	pos  map[topo.NodeEp]int
}

// NewReplay wraps a decoded trace as a traffic pattern.
func NewReplay(tr *trace.Trace) *Replay { return &Replay{Tr: tr} }

// Name implements Pattern.
func (r *Replay) Name() string { return "replay" }

func (r *Replay) build() {
	r.seq = make(map[topo.NodeEp][]topo.NodeEp)
	r.pos = make(map[topo.NodeEp]int)
	for _, e := range r.Tr.Events {
		if e.Kind != trace.KindUnicast {
			continue
		}
		src := topo.NodeEp{Node: e.SrcNode, Ep: e.SrcEp}
		r.seq[src] = append(r.seq[src], topo.NodeEp{Node: e.DstNode, Ep: e.DstEp})
	}
}

// Dest implements Pattern.
func (r *Replay) Dest(m *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	r.once.Do(r.build)
	r.mu.Lock()
	s := r.seq[src]
	if len(s) == 0 {
		r.mu.Unlock()
		return Uniform{}.Dest(m, src, rng)
	}
	i := r.pos[src]
	r.pos[src] = (i + 1) % len(s)
	r.mu.Unlock()
	return s[i]
}

// Flows implements Pattern: the empirical destination distribution of the
// trace's node-0 sources, in first-appearance order.
func (r *Replay) Flows(m *topo.Machine) loadcalc.FlowFunc {
	r.once.Do(r.build)
	return func(srcEp int) []loadcalc.Flow {
		s := r.seq[topo.NodeEp{Node: 0, Ep: srcEp}]
		if len(s) == 0 {
			return Uniform{}.Flows(m)(srcEp)
		}
		var out []loadcalc.Flow
		idx := make(map[topo.NodeEp]int)
		frac := 1 / float64(len(s))
		for _, dst := range s {
			if i, ok := idx[dst]; ok {
				out[i].Frac += frac
			} else {
				idx[dst] = len(out)
				out = append(out, loadcalc.Flow{Dst: dst, Frac: frac})
			}
		}
		return out
	}
}
