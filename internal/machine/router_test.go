package machine

import (
	"fmt"
	"testing"

	"anton2/internal/arbiter"
	"anton2/internal/loadcalc"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// converge sets up two saturated single-node flows from different source
// endpoints to one destination endpoint, so they merge at the destination
// router's endpoint-port output arbiter, and returns the delivered counts
// per source after a fixed window.
func converge(t *testing.T, kind arbiter.Kind, ws *loadcalc.WeightSet, window uint64) (a, b uint64) {
	t.Helper()
	cfg := DefaultConfig(topo.Shape3(1, 1, 1))
	cfg.Arbiter = kind
	cfg.Weights = ws
	m := MustNew(cfg)
	chip := m.Topo.Chip

	// Destination: the core endpoint at an interior router; sources: the
	// cores at two routers equidistant from it.
	dstEp := chip.CoreEndpoint(topo.MeshCoord{U: 1, V: 1})
	srcA := topo.NodeEp{Node: 0, Ep: chip.CoreEndpoint(topo.MeshCoord{U: 0, V: 1})}
	srcB := topo.NodeEp{Node: 0, Ep: chip.CoreEndpoint(topo.MeshCoord{U: 2, V: 1})}
	dst := topo.NodeEp{Node: 0, Ep: dstEp}

	counts := map[int]uint64{}
	m.Endpoint(dst).OnDeliver = func(p *packet.Packet, now uint64) bool {
		counts[p.Src.Ep]++
		return false
	}
	for _, src := range []topo.NodeEp{srcA, srcB} {
		src := src
		m.Endpoint(src).Source = func() *packet.Packet {
			return m.MakePacket(src, dst, route.Choices{Order: topo.AllDimOrders[0], Ties: [3]int8{1, 1, 1}},
				route.ClassRequest, 0, 1)
		}
	}
	m.Engine.Run(window)
	return counts[srcA.Ep], counts[srcB.Ep]
}

// TestRouterOutputRoundRobinFair: with locally fair arbitration, two
// saturated flows merging at one output each get half the bandwidth.
func TestRouterOutputRoundRobinFair(t *testing.T) {
	a, b := converge(t, arbiter.KindRoundRobin, nil, 4000)
	if a == 0 || b == 0 {
		t.Fatalf("flows stalled: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("round-robin merge ratio = %.3f (%d vs %d), want ~1", ratio, a, b)
	}
}

// TestRouterOutputWeightedRatio: programming the destination router's
// endpoint-port arbiter with 2:1 loads makes service proportional to load —
// equality of service as in Figure 5, realized inside the full router.
func TestRouterOutputWeightedRatio(t *testing.T) {
	// Build a weight set that is uniform everywhere except the
	// destination router's endpoint output, where input loads are 2:1.
	chip := topo.DefaultChip()
	dstRouter := topo.MeshCoord{U: 1, V: 1}
	ri := topo.RouterID(dstRouter)
	dstEp := chip.CoreEndpoint(dstRouter)
	outPort := chip.RouterAt(dstRouter).EndpointPort(dstEp)
	// Source A arrives from U- (the port toward R0,1); source B from U+.
	inA := chip.RouterAt(dstRouter).MeshPort(topo.UNeg)
	inB := chip.RouterAt(dstRouter).MeshPort(topo.UPos)

	ws := &loadcalc.WeightSet{}
	maxVC := route.MaxTotalVCs(route.AntonScheme{})
	fill := func(rows *[topo.NumRouters][topo.MaxRouterPorts][][arbiter.NumPatterns]uint32, k int) {
		for r := 0; r < topo.NumRouters; r++ {
			for p := 0; p < topo.MaxRouterPorts; p++ {
				rows[r][p] = arbiter.UniformWeights(k)
			}
		}
	}
	fill(&ws.SA2, topo.MaxRouterPorts)
	fill(&ws.SA1, maxVC)
	for a := 0; a < topo.NumChannelAdapters; a++ {
		ws.AdEg[a] = arbiter.UniformWeights(maxVC)
		ws.AdIn[a] = arbiter.UniformWeights(maxVC)
	}
	// Inverse weights: load 2 -> weight w, load 1 -> weight 2w.
	ws.SA2[ri][outPort] = arbiter.UniformWeights(topo.MaxRouterPorts)
	ws.SA2[ri][outPort][inA] = [arbiter.NumPatterns]uint32{5, 5}   // load 2
	ws.SA2[ri][outPort][inB] = [arbiter.NumPatterns]uint32{10, 10} // load 1

	a, b := converge(t, arbiter.KindInverseWeighted, ws, 6000)
	if a == 0 || b == 0 {
		t.Fatalf("flows stalled: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("weighted merge ratio = %.3f (%d vs %d), want ~2 (service proportional to load)", ratio, a, b)
	}
}

// TestRouterPortLimit: construction respects the six-port budget on every
// router of every machine size.
func TestRouterPortLimit(t *testing.T) {
	m := MustNew(DefaultConfig(topo.Shape3(2, 2, 2)))
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for ri := 0; ri < topo.NumRouters; ri++ {
			r := m.Node(n).Routers[ri]
			if len(r.ports) > topo.MaxRouterPorts {
				t.Fatalf("router %s has %d ports", fmt.Sprint(topo.RouterCoord(ri)), len(r.ports))
			}
		}
	}
}
