package machine

import (
	"math/rand"
	"testing"

	"anton2/internal/arbiter"
	"anton2/internal/loadcalc"
	"anton2/internal/packaging"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

func TestSinglePacketEndToEnd(t *testing.T) {
	m := MustNew(DefaultConfig(topo.Shape3(4, 2, 2)))
	src := topo.NodeEp{Node: 0, Ep: m.Topo.Chip.CoreEndpoint(topo.MeshCoord{U: 1, V: 1})}
	dst := topo.NodeEp{Node: 3, Ep: m.Topo.Chip.CoreEndpoint(topo.MeshCoord{U: 2, V: 2})}
	c := route.Choices{Order: topo.AllDimOrders[0], Slice: 0, Ties: [3]int8{1, 1, 1}}
	p := m.MakePacket(src, dst, c, route.ClassRequest, 0, 1)

	var gotHops uint8
	var latency uint64
	m.Endpoint(dst).OnDeliver = func(dp *packet.Packet, now uint64) bool {
		gotHops = dp.TorusHops
		latency = now - dp.InjectedAt
		return false
	}
	m.Endpoint(src).Inject(p)
	if _, err := m.RunUntilDelivered(1, 100_000); err != nil {
		t.Fatal(err)
	}
	// x: 0 -> 3 is -1 hop minimally on a radix-4 ring... 0->3 forward is
	// 3 hops, backward 1 hop; minimal is 1.
	if gotHops != 1 {
		t.Errorf("torus hops = %d, want 1 (minimal)", gotHops)
	}
	if latency < 20 || latency > 400 {
		t.Errorf("zero-load latency = %d cycles, outside sanity range", latency)
	}
}

// TestSimulatorMatchesWalk: the set of channels a packet traverses in the
// cycle simulator must match the route enumerator exactly (they share the
// same transition functions, but this guards the component wiring).
func TestSimulatorMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		m := MustNew(DefaultConfig(topo.Shape3(4, 3, 2)))
		n := m.Topo.NumNodes()
		src := topo.NodeEp{Node: rng.Intn(n), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(n), Ep: rng.Intn(topo.NumEndpoints)}
		c := route.RandomChoices(rng)
		want := route.Walk(m.RouteConfig(), src, dst, c.Order, c.Slice, c.Ties, route.ClassReply)

		p := m.MakePacket(src, dst, c, route.ClassReply, 0, 1)
		m.Endpoint(src).Inject(p)
		if _, err := m.RunUntilDelivered(1, 100_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every walk channel must have carried exactly one flit; all
		// others none.
		used := map[int]bool{}
		for _, h := range want {
			used[h.Chan] = true
		}
		for id, ch := range m.chans {
			switch {
			case used[id] && ch.Sent != 1:
				t.Errorf("trial %d: channel %s carried %d flits, want 1", trial, ch.Name, ch.Sent)
			case !used[id] && ch.Sent != 0:
				t.Errorf("trial %d: channel %s carried %d flits, want 0 (not on route)", trial, ch.Name, ch.Sent)
			}
		}
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(3, 3, 2))
	m := MustNew(cfg)
	rng := rand.New(rand.NewSource(4))
	pat := traffic.Uniform{}
	cores := m.Topo.Chip.CoreEndpoints()
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < 20; i++ {
				dst := pat.Dest(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	end, err := m.RunUntilDelivered(total, 2_000_000)
	if err != nil {
		t.Fatalf("after %d/%d deliveries: %v", m.Delivered(), total, err)
	}
	if m.Delivered() != total {
		t.Fatalf("delivered %d, want %d", m.Delivered(), total)
	}
	t.Logf("delivered %d packets in %d cycles", total, end)
}

// TestDeterminism: identical configurations and injections produce identical
// completion times and per-channel flit counts.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := MustNew(DefaultConfig(topo.Shape3(2, 2, 2)))
		rng := rand.New(rand.NewSource(77))
		cores := m.Topo.Chip.CoreEndpoints()
		total := uint64(0)
		for n := 0; n < m.Topo.NumNodes(); n++ {
			for _, ep := range cores {
				src := topo.NodeEp{Node: n, Ep: ep}
				for i := 0; i < 10; i++ {
					dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
					m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
					total++
				}
			}
		}
		end, err := m.RunUntilDelivered(total, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, ch := range m.chans {
			sum += ch.Sent * uint64(ch.ID+1)
		}
		return end, sum
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, s1, e2, s2)
	}
}

// TestSaturationNoDeadlock floods the network far beyond saturation with
// round-robin arbiters and checks that every packet is still delivered (the
// runtime counterpart of the static deadlock analysis).
func TestSaturationNoDeadlock(t *testing.T) {
	for _, scheme := range []route.Scheme{route.AntonScheme{}, route.BaselineScheme{}} {
		cfg := DefaultConfig(topo.Shape3(4, 4, 2))
		cfg.Scheme = scheme
		m := MustNew(cfg)
		rng := rand.New(rand.NewSource(13))
		cores := m.Topo.Chip.CoreEndpoints()
		total := uint64(0)
		for n := 0; n < m.Topo.NumNodes(); n++ {
			for _, ep := range cores {
				src := topo.NodeEp{Node: n, Ep: ep}
				for i := 0; i < 64; i++ {
					dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
					cls := route.ClassRequest
					if i%2 == 1 {
						cls = route.ClassReply
					}
					m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, cls, 0, rng))
					total++
				}
			}
		}
		if _, err := m.RunUntilDelivered(total, 5_000_000); err != nil {
			t.Fatalf("scheme %s: %v (delivered %d/%d)", scheme.Name(), err, m.Delivered(), total)
		}
	}
}

// TestInverseWeightedMachineRuns builds uniform-pattern weights and runs a
// saturated burst through inverse-weighted arbiters.
func TestInverseWeightedMachineRuns(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	tm := topo.MustMachine(cfg.Shape)
	rc := &route.Config{Machine: tm, Scheme: cfg.Scheme, DirOrder: cfg.DirOrder, UseSkip: true}
	loads := loadcalc.Compute(rc, tm.Chip.CoreEndpoints(), traffic.Uniform{}.Flows(tm), route.ClassRequest)
	cfg.Arbiter = arbiter.KindInverseWeighted
	cfg.Weights = loadcalc.BuildWeights(loads)
	m := MustNew(cfg)

	rng := rand.New(rand.NewSource(5))
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range m.Topo.Chip.CoreEndpoints() {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < 32; i++ {
				dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	if _, err := m.RunUntilDelivered(total, 5_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestTwoFlitPackets exercises multi-flit occupancy and credit accounting.
func TestTwoFlitPackets(t *testing.T) {
	m := MustNew(DefaultConfig(topo.Shape3(2, 2, 2)))
	rng := rand.New(rand.NewSource(3))
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		src := topo.NodeEp{Node: n, Ep: 0}
		for i := 0; i < 16; i++ {
			dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
			p := m.MakePacket(src, dst, route.RandomChoices(rng), route.ClassRequest, 0, 2)
			m.Endpoint(src).Inject(p)
			total++
		}
	}
	if _, err := m.RunUntilDelivered(total, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestMachineRejectsIWWithoutWeights(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Arbiter = arbiter.KindInverseWeighted
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for IW arbitration without weights")
	}
}

func TestCycleConversions(t *testing.T) {
	if ns := CyclesToNS(1); ns < 0.66 || ns > 0.67 {
		t.Errorf("1 cycle = %f ns, want ~0.667", ns)
	}
	if c := NSToCycles(CyclesToNS(100)); c < 99.9 || c > 100.1 {
		t.Errorf("round trip = %f, want 100", c)
	}
}

// newTestRNG and randomOtherCore are shared helpers for traffic-driving
// tests.
func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(99)) }

func randomOtherCore(tm *topo.Machine, src topo.NodeEp, rng *rand.Rand) topo.NodeEp {
	cores := tm.Chip.CoreEndpoints()
	n := rng.Intn(tm.NumNodes() - 1)
	if n >= src.Node {
		n++
	}
	return topo.NodeEp{Node: n, Ep: cores[rng.Intn(len(cores))]}
}

// TestPackagingDerivedLatencies wires Figure 2 cable lengths into the
// simulator: links crossing racks get longer latencies, and nearest-neighbor
// latency varies accordingly.
func TestPackagingDerivedLatencies(t *testing.T) {
	shape := topo.Shape3(8, 4, 1)
	plan, err := packaging.Build(shape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(shape)
	cfg.LinkLatency = plan.LatencyFunc()
	m := MustNew(cfg)

	measure := func(src, dst topo.NodeEp) uint64 {
		p := m.MakePacket(src, dst, route.Choices{Order: topo.AllDimOrders[0], Ties: [3]int8{1, 1, 1}}, route.ClassRequest, 0, 1)
		var lat uint64
		done := false
		m.Endpoint(dst).OnDeliver = func(dp *packet.Packet, now uint64) bool {
			lat = now - dp.InjectedAt
			done = true
			return false
		}
		m.Endpoint(src).Inject(p)
		if err := m.Engine.RunUntil(func() bool { return done }, 200_000, 50_000); err != nil {
			t.Fatal(err)
		}
		m.Endpoint(dst).OnDeliver = nil
		return lat
	}

	// Same backplane (x: 0->1) vs backplane-crossing (x: 3->4) neighbors.
	ep := m.Topo.Chip.CoreEndpoints()[0]
	intra := measure(topo.NodeEp{Node: shape.NodeID(topo.NodeCoord{X: 0}), Ep: ep},
		topo.NodeEp{Node: shape.NodeID(topo.NodeCoord{X: 1}), Ep: ep})
	cross := measure(topo.NodeEp{Node: shape.NodeID(topo.NodeCoord{X: 3}), Ep: ep},
		topo.NodeEp{Node: shape.NodeID(topo.NodeCoord{X: 4}), Ep: ep})
	if cross <= intra {
		t.Errorf("backplane-crossing latency %d <= intra-backplane %d; cable model not applied", cross, intra)
	}
}

// TestReplyClassIsolation: request and reply packets use disjoint physical
// VC ranges on every channel.
func TestReplyClassIsolation(t *testing.T) {
	m := MustNew(DefaultConfig(topo.Shape3(3, 2, 2)))
	rng := rand.New(rand.NewSource(21))
	scheme := m.Cfg.Scheme
	for i := 0; i < 200; i++ {
		src := topo.NodeEp{Node: rng.Intn(m.Topo.NumNodes()), Ep: 0}
		dst := randomOtherCore(m.Topo, src, rng)
		cls := route.Class(rng.Intn(2))
		c := route.RandomChoices(rng)
		for _, h := range route.Walk(m.RouteConfig(), src, dst, c.Order, c.Slice, c.Ties, cls) {
			g := m.Topo.ChanGroup(h.Chan)
			phys := route.PhysVC(scheme, g, cls, h.VC)
			per := route.ChannelVCs(scheme, g)
			if cls == route.ClassRequest && phys >= per {
				t.Fatalf("request packet on reply VC %d", phys)
			}
			if cls == route.ClassReply && phys < per {
				t.Fatalf("reply packet on request VC %d", phys)
			}
		}
	}
}
