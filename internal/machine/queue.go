package machine

import "anton2/internal/packet"

// vcq is one virtual-channel input queue with head-of-line route state.
// Capacity is enforced by upstream credits, not by the queue itself.
type vcq struct {
	pkts []*packet.Packet
	head int

	// Head-of-line state, valid while routed is true.
	routed  bool
	outPort int8
	outVC   uint8
	readyAt uint64

	// branches holds a multicast head's replicated copies, sent one per
	// cycle from the single buffered original (channel-adapter ingress
	// replication); the head pops and its credit returns only after the
	// last branch leaves.
	branches []*packet.Packet
}

func (q *vcq) empty() bool { return q.head >= len(q.pkts) }

func (q *vcq) headPkt() *packet.Packet { return q.pkts[q.head] }

func (q *vcq) push(p *packet.Packet) { q.pkts = append(q.pkts, p) }

// pop removes the head packet and invalidates the head route state so the
// next packet is routed afresh.
func (q *vcq) pop() *packet.Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.head = 0
		q.pkts = q.pkts[:0]
	} else if q.head >= 16 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.routed = false
	q.branches = nil
	return p
}

// flits returns the queued flit count (for buffer occupancy accounting).
func (q *vcq) flits() int {
	total := 0
	for i := q.head; i < len(q.pkts); i++ {
		total += int(q.pkts[i].Size)
	}
	return total
}
