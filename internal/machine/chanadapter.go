package machine

import (
	"fmt"

	"anton2/internal/arbiter"
	"anton2/internal/fabric"
	"anton2/internal/fault"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// ChannelAdapter bridges a mesh router port to one external torus channel.
// The egress path serializes mesh flits onto the torus link (applying the
// dateline VC-promotion rule); the ingress path decides whether an arriving
// packet continues along its dimension or turns, then forwards it to the
// router. Both paths have per-VC queues and an arbiter across the VCs.
type ChannelAdapter struct {
	m         *Machine
	node      int
	nodeCoord topo.NodeCoord
	id        topo.AdapterID

	cid   int   // engine component id
	shard int32 // owning shard (0 when unsharded)

	fromRouter *fabric.Channel // router -> adapter (mesh side in)
	toRouter   *fabric.Channel // adapter -> router (mesh side out)
	torusOut   *fabric.Channel // adapter -> neighbor (serial out)
	torusIn    *fabric.Channel // neighbor -> adapter (serial in)

	eg  []vcq // mesh -> torus queues, indexed by arrival VC
	ing []vcq // torus -> router queues, indexed by arrival VC

	// Reliable-link state, non-nil only under fault injection: rlOut is
	// the go-back-N sender side of torusOut, rlIn the receiver side of
	// torusIn. Either may be nil for a permanently failed link.
	rlOut *rlink
	rlIn  *rlink

	egArb arbiter.Arbiter
	inArb arbiter.Arbiter
	pats  []uint8 // scratch pattern labels for arbiter picks

	// outLabel is the precomputed "torus out <id>" tracepoint stage: the
	// serializer send sits on the hot path, and rebuilding the label there
	// would allocate for every packet whether or not it is traced.
	outLabel string

	queued int

	// Diagnostic counters: per path, packets sent and cycles where a
	// ready head could not proceed for lack of downstream credit or
	// serializer capacity.
	EgSent, EgStarved uint64
	InSent, InStarved uint64
}

func newChannelAdapter(m *Machine, node int, id topo.AdapterID) *ChannelAdapter {
	ca := m.Topo.Chip.AdapterAt(id)
	tvcs := route.TotalVCs(m.Cfg.Scheme, topo.GroupT)
	u := m.Topo.Shape.NodeID(m.Topo.Shape.Neighbor(m.Topo.Shape.Coord(node), id.Dir))
	a := &ChannelAdapter{
		m:          m,
		node:       node,
		nodeCoord:  m.Topo.Shape.Coord(node),
		id:         id,
		fromRouter: m.chans[m.Topo.IntraChanID(node, ca.FromRouter)],
		toRouter:   m.chans[m.Topo.IntraChanID(node, ca.ToRouter)],
		torusOut:   m.chans[m.Topo.TorusChanID(node, id.Dir, id.Slice)],
		torusIn:    m.chans[m.Topo.TorusChanID(u, id.Dir.Opposite(), id.Slice)],
		eg:         m.arena.takeVCQ(tvcs),
		ing:        m.arena.takeVCQ(tvcs),
		outLabel:   "torus out " + id.String(),
	}
	a.egArb = m.newArbiter(tvcs, m.adapterWeights(true, id, tvcs))
	a.inArb = m.newArbiter(tvcs, m.adapterWeights(false, id, tvcs))
	a.pats = m.arena.takePats(tvcs)
	if m.flt != nil {
		a.rlOut = m.flt.rlinkFor(a.torusOut.ID)
		a.rlIn = m.flt.rlinkFor(a.torusIn.ID)
	}
	return a
}

// bind registers the adapter for active-set wakeups: packet arrivals on both
// receive sides, credit returns on both send sides, and — when the link is
// reliable — ack/nack control arrivals on the outgoing link's reverse pipe.
func (a *ChannelAdapter) bind() {
	a.fromRouter.BindReceiver(a.m.Engine, a.cid)
	a.torusIn.BindReceiver(a.m.Engine, a.cid)
	a.toRouter.BindSender(a.m.Engine, a.cid)
	a.torusOut.BindSender(a.m.Engine, a.cid)
	if a.rlOut != nil {
		a.rlOut.sndE, a.rlOut.sndID = a.m.Engine, int32(a.cid)
	}
}

// Tick implements sim.Component. In active-set mode the adapter re-arms
// itself while it has queued packets or a pending replay, and — crucially —
// schedules a wake at the go-back-N timeout deadline when frames are
// outstanding, so a sleeping adapter still fires its retransmit timer on
// exactly the cycle scan mode would.
func (a *ChannelAdapter) Tick(now uint64) {
	a.tick(now)
	e := a.m.Engine
	if a.queued > 0 {
		e.Wake(a.cid, now+1)
		return
	}
	if rl := a.rlOut; rl != nil {
		if _, ok := rl.snd.NeedRetx(); ok {
			e.Wake(a.cid, now+1)
			return
		}
		if dl, ok := rl.snd.Deadline(); ok {
			e.Wake(a.cid, dl)
		}
	}
}

func (a *ChannelAdapter) tick(now uint64) {
	a.torusOut.AbsorbCredits(now)
	a.toRouter.AbsorbCredits(now)
	if a.rlOut != nil {
		a.reliableOutTick(now)
	}

	for {
		p, ok := a.fromRouter.Recv(now)
		if !ok {
			break
		}
		if p.SourceRoute != nil {
			panic("machine: source-routed packet reached a channel adapter")
		}
		p.ArrivedAt = now
		if p.Trace != nil {
			p.Tracepoint("adapter egress "+a.id.String(), now)
		}
		a.eg[p.CurVC].push(p)
		a.queued++
	}
	for {
		p, ok := a.torusIn.Recv(now)
		if !ok {
			break
		}
		// The link-layer verdict comes first: a dropped frame (corrupt or
		// out of order) must not touch the packet's routing statistics —
		// its pointer may alias a copy already accepted and moved on.
		if a.rlIn != nil && !a.acceptFrame(now, p) {
			continue
		}
		p.ArrivedAt = now
		p.TorusHops++
		if p.Trace != nil {
			p.Tracepoint("adapter ingress "+a.id.String(), now)
		}
		a.ing[p.CurVC].push(p)
		a.queued++
	}
	// A pending replay preempts fresh egress traffic (go-back-N order).
	sentRetx := a.rlOut != nil && a.tryRetransmit(now)
	if a.queued == 0 {
		return
	}

	// Egress: one packet per cycle onto the torus link, chosen among VC
	// heads with credit downstream. Under reliability, fresh sends also
	// need window space and yield to a retransmission this cycle.
	var req uint64
	if !sentRetx && (a.rlOut == nil || a.rlOut.snd.CanSend()) {
		for vci := range a.eg {
			q := &a.eg[vci]
			if q.empty() {
				continue
			}
			if !q.routed {
				p := q.headPkt()
				// The dateline rule applies as the packet leaves the
				// node (Section 2.5).
				vc := route.AdapterEgress(a.m.routeCfg, &p.Route, a.nodeCoord)
				q.outVC = uint8(route.PhysVC(a.m.Cfg.Scheme, topo.GroupT, p.Route.Class, vc))
				q.routed = true
				q.readyAt = p.ArrivedAt + a.m.Cfg.AdapterPipeline
			}
			if q.readyAt <= now {
				if a.torusOut.CanSend(now, q.outVC, q.headPkt().Size) {
					req |= 1 << vci
					a.pats[vci] = q.headPkt().PatternID
				} else {
					a.EgStarved++
				}
			}
		}
		if req != 0 {
			a.EgSent++
			g := a.egArb.Pick(req, a.pats)
			if a.m.tel != nil {
				a.m.tel.OnAdapterGrant(true, a.node, a.id.Index(), g)
			}
			q := &a.eg[g]
			outVC := q.outVC
			p := q.pop()
			a.queued--
			a.torusOut.Send(now, p, outVC)
			if rl := a.rlOut; rl != nil {
				corrupt := a.m.flt.inj.CorruptNext(rl.link)
				if corrupt {
					a.m.flt.cnt[a.shard].CorruptInjected++
				}
				rl.pushMeta(rl.snd.OnSend(now), outVC, corrupt)
				rl.win = append(rl.win, winEntry{p: p, vc: outVC})
			}
			if a.m.checks != nil {
				a.m.checks.OnSend(p, a.torusOut, outVC, now)
			}
			p.Tracepoint(a.outLabel, now)
			a.fromRouter.ReturnCredit(now, uint8(g), p.Size)
			a.m.Engine.ProgressAt(int(a.shard))
		}
	}

	// Ingress: one packet per cycle toward the router.
	req = 0
	for vci := range a.ing {
		q := &a.ing[vci]
		if q.empty() {
			continue
		}
		if !q.routed {
			p := q.headPkt()
			if p.MGroup >= 0 {
				// Multicast: replicate per the loaded table;
				// branches ride the adapter->router link at
				// the arrival T-group VC.
				q.branches = a.expandMulticast(p)
				q.outVC = uint8(route.PhysVC(a.m.Cfg.Scheme, topo.GroupT, p.Route.Class, p.Route.TVC))
			} else {
				// Continue-or-turn decision (once per arrival).
				vc := route.AdapterIngress(a.m.routeCfg, &p.Route, p.Dst, a.node)
				q.outVC = uint8(route.PhysVC(a.m.Cfg.Scheme, topo.GroupT, p.Route.Class, vc))
			}
			q.routed = true
			q.readyAt = p.ArrivedAt + a.m.Cfg.AdapterPipeline
		}
		if q.readyAt <= now {
			if a.toRouter.CanSend(now, q.outVC, a.ingHead(q).Size) {
				req |= 1 << vci
				a.pats[vci] = a.ingHead(q).PatternID
			} else {
				a.InStarved++
			}
		}
	}
	if req != 0 {
		a.InSent++
		g := a.inArb.Pick(req, a.pats)
		if a.m.tel != nil {
			a.m.tel.OnAdapterGrant(false, a.node, a.id.Index(), g)
		}
		q := &a.ing[g]
		outVC := q.outVC
		if len(q.branches) > 0 {
			// Send the next branch; pop the buffered original only
			// after the last branch leaves.
			b := q.branches[0]
			q.branches = q.branches[1:]
			a.toRouter.Send(now, b, outVC)
			if a.m.checks != nil {
				a.m.checks.OnSend(b, a.toRouter, outVC, now)
			}
			if len(q.branches) == 0 {
				orig := q.pop()
				a.queued--
				a.torusIn.ReturnCredit(now, uint8(g), orig.Size)
				a.m.free(orig)
			}
		} else {
			p := q.pop()
			a.queued--
			a.toRouter.Send(now, p, outVC)
			if a.m.checks != nil {
				a.m.checks.OnSend(p, a.toRouter, outVC, now)
			}
			a.torusIn.ReturnCredit(now, uint8(g), p.Size)
		}
		a.m.Engine.ProgressAt(int(a.shard))
	}
}

// acceptFrame runs the go-back-N receiver over one frame arriving on
// torusIn and returns whether the packet is delivered upward. Dropped
// frames (corrupt, out of order, or stale duplicates) release their buffer
// space immediately on the frame's wire VC; only the frame metadata is
// consulted for that, because the packet pointer of a stale duplicate may
// alias a packet that has long since moved on.
func (a *ChannelAdapter) acceptFrame(now uint64, p *packet.Packet) bool {
	rl := a.rlIn
	flt := a.m.flt
	mt := rl.popMeta()
	if mt.corrupt {
		flt.cnt[a.shard].CorruptDetected++
	}
	v := rl.rcv.OnFrame(mt.seq, mt.corrupt)
	switch {
	case v.Ack:
		rl.sendCtrl(now, linkCtrl{seq: v.Seq})
		flt.cnt[a.shard].Acks++
	case v.Nack:
		rl.sendCtrl(now, linkCtrl{seq: v.Seq, nack: true})
		flt.cnt[a.shard].Nacks++
	}
	if v.Accept {
		return true
	}
	if !mt.corrupt && mt.seq < rl.rcv.Expected() {
		flt.cnt[a.shard].DupsDropped++
	}
	a.torusIn.ReturnCredit(now, mt.vc, p.Size)
	a.m.Engine.ProgressAt(int(a.shard))
	return false
}

// reliableOutTick drains torusOut's ack/nack channel into the go-back-N
// sender, releases acknowledged window entries, and fires the timeout
// rewind. A sender that exhausts its rewind budget marks the whole run
// fatally degraded.
func (a *ChannelAdapter) reliableOutTick(now uint64) {
	rl := a.rlOut
	flt := a.m.flt
	for {
		c, ok := rl.ctrl.Poll(now)
		if !ok {
			break
		}
		var released int
		if c.nack {
			released = rl.snd.OnNack(c.seq, now)
		} else {
			released = rl.snd.OnAck(c.seq, now)
		}
		if released > 0 {
			rl.win = rl.win[:copy(rl.win, rl.win[released:])]
			a.m.Engine.ProgressAt(int(a.shard))
		}
	}
	if rl.snd.Tick(now) {
		flt.cnt[a.shard].Timeouts++
	}
	if rl.snd.Dead() {
		flt.setFatalShard(int(a.shard), &fault.BudgetError{Link: rl.ch.Name, Attempts: rl.snd.Attempts()})
	}
}

// tryRetransmit replays the next pending window entry on torusOut, if the
// serializer and credits allow. Retransmissions bypass the invariant
// suite's OnSend hook: the packet's routing state may legitimately have
// advanced since the original transmission, so route-progress checks would
// misfire on the stale copy.
func (a *ChannelAdapter) tryRetransmit(now uint64) bool {
	rl := a.rlOut
	seq, ok := rl.snd.NeedRetx()
	if !ok {
		return false
	}
	ent := rl.win[seq-rl.snd.Base()]
	if !a.torusOut.CanSend(now, ent.vc, ent.p.Size) {
		return false
	}
	flt := a.m.flt
	corrupt := flt.inj.CorruptNext(rl.link)
	if corrupt {
		flt.cnt[a.shard].CorruptInjected++
	}
	a.torusOut.Resend(now, ent.p, ent.vc)
	rl.pushMeta(seq, ent.vc, corrupt)
	rl.snd.OnRetx()
	flt.cnt[a.shard].Retransmits++
	a.m.Engine.ProgressAt(int(a.shard))
	return true
}

// ingHead returns the packet that would move next from an ingress queue: a
// pending multicast branch, or the head itself.
func (a *ChannelAdapter) ingHead(q *vcq) *packet.Packet {
	if len(q.branches) > 0 {
		return q.branches[0]
	}
	return q.headPkt()
}

// expandMulticast builds the branch copies an arriving multicast packet
// fans out into at this node, per the group's table.
func (a *ChannelAdapter) expandMulticast(p *packet.Packet) []*packet.Packet {
	g := a.m.Cfg.Multicast[p.MGroup]
	if g == nil {
		panic(fmt.Sprintf("machine: multicast group %d not loaded", p.MGroup))
	}
	e, ok := g.Entries[a.node]
	if !ok {
		panic(fmt.Sprintf("machine: multicast group %d has no entry at node %d", p.MGroup, a.node))
	}
	ingress := a.m.Topo.Chip.AdapterAt(a.id).Router
	out := make([]*packet.Packet, 0, len(e.Forward)+len(e.Deliver))
	for _, d := range e.Forward {
		c := a.m.clonePacket(p)
		if d == p.Route.Dir {
			route.MulticastContinue(&c.Route)
		} else {
			route.MulticastTurn(a.m.routeCfg, &c.Route, d, g.DimIndex(d.Dim()), ingress)
		}
		out = append(out, c)
	}
	for _, ep := range e.Deliver {
		c := a.m.clonePacket(p)
		c.Dst = topo.NodeEp{Node: a.node, Ep: ep}
		route.MulticastDeliver(a.m.routeCfg, &c.Route, c.Dst, ingress)
		out = append(out, c)
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("machine: multicast group %d entry at node %d forwards nowhere", p.MGroup, a.node))
	}
	return out
}
