package machine

import (
	"sync/atomic"

	"anton2/internal/fabric"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// EndpointAdapter connects a computational endpoint (a "core") to its mesh
// router. It has an unbounded software-side injection queue — MD
// communication is bursty and not self-throttling (Section 2) — and a single
// VC per traffic class toward the network.
type EndpointAdapter struct {
	m    *Machine
	node int
	ep   int

	cid   int   // engine component id
	shard int32 // owning shard (0 when unsharded)

	out *fabric.Channel // endpoint -> router
	in  *fabric.Channel // router -> endpoint

	swq  []*packet.Packet // software injection queue (FIFO)
	head int

	// Source, when non-nil, lazily supplies injection packets once the
	// explicit queue is empty; it returns nil when exhausted. This keeps
	// large batch experiments at O(1) memory.
	Source func() *packet.Packet

	// OnDeliver, when set, observes each delivered packet before it is
	// recycled. Returning true retains the packet (the pool will not
	// reuse it).
	OnDeliver func(p *packet.Packet, now uint64) bool

	// sched tracks the last scheduled injection cycle so the software
	// send pipeline overlaps: sustained injection is one packet per
	// cycle after the initial EndpointPipeline latency.
	sched uint64
}

func newEndpoint(m *Machine, node, ep int) *EndpointAdapter {
	ce := &m.Topo.Chip.Endpoints[ep]
	return &EndpointAdapter{
		m:    m,
		node: node,
		ep:   ep,
		out:  m.chans[m.Topo.IntraChanID(node, ce.ToRouter)],
		in:   m.chans[m.Topo.IntraChanID(node, ce.FromRouter)],
	}
}

// bind registers the endpoint for active-set wakeups: packet arrivals on the
// ejection side, credit returns on the injection side.
func (e *EndpointAdapter) bind() {
	e.in.BindReceiver(e.m.Engine, e.cid)
	e.out.BindSender(e.m.Engine, e.cid)
}

// Inject queues a packet for transmission. The packet's route state must be
// initialized (Machine.MakePacket does this).
func (e *EndpointAdapter) Inject(p *packet.Packet) {
	p.InjectedAt = e.m.Engine.Now()
	if p.NotBefore == 0 {
		nb := p.InjectedAt + e.m.Cfg.EndpointPipeline
		if nb <= e.sched {
			nb = e.sched + 1 // pipelined sends: one per cycle
		}
		p.NotBefore = nb
		e.sched = nb
	}
	e.swq = append(e.swq, p)
	if e.m.sharded {
		// Traffic sources run inside shard workers; the machine-wide
		// injection count is the one piece of shared state they touch.
		atomic.AddUint64(&e.m.injected, 1)
	} else {
		e.m.injected++
	}
	// Wake for the packet's earliest send cycle (clamped by the engine if it
	// is in the past or mid-step). Covers injections from outside the run
	// loop — between Run calls the endpoint may hold no other wake.
	e.m.Engine.Wake(e.cid, p.NotBefore)
	if e.m.checks != nil {
		e.m.checks.OnInject(p, p.InjectedAt)
	}
	if e.m.tel != nil {
		e.m.tel.OnInject(p, p.InjectedAt)
	}
}

// Pending returns the number of packets queued for injection.
func (e *EndpointAdapter) Pending() int { return len(e.swq) - e.head }

// Tick implements sim.Component. In active-set mode the endpoint re-arms
// itself every cycle while a lazy Source is attached (the source must be
// polled on exactly the cycles scan mode would poll it, so injection
// timestamps match), and otherwise for the head packet's earliest send cycle.
func (e *EndpointAdapter) Tick(now uint64) {
	e.tick(now)
	if e.Source != nil {
		e.m.Engine.Wake(e.cid, now+1)
		return
	}
	if e.head < len(e.swq) {
		at := e.swq[e.head].NotBefore
		if at <= now {
			at = now + 1
		}
		e.m.Engine.Wake(e.cid, at)
	}
}

func (e *EndpointAdapter) tick(now uint64) {
	e.out.AbsorbCredits(now)

	// Ejection: drain arrivals and return credits. Under sharding the
	// delivery hooks run at the phase barrier (in component-id order, as a
	// serial step would), because they touch machine-wide state.
	for {
		p, ok := e.in.Recv(now)
		if !ok {
			break
		}
		e.in.ReturnCredit(now, p.CurVC, p.Size)
		p.DeliveredAt = now
		p.Tracepoint("endpoint deliver", now)
		if e.m.sharded {
			e.m.pendDeliv[e.shard] = append(e.m.pendDeliv[e.shard], delivEnt{e: e, p: p})
		} else {
			e.m.deliver(e, p, now)
		}
	}

	// Top up the software queue from the lazy source so the injection
	// pipeline stays full (one send per cycle once primed).
	if e.Source != nil {
		for e.Pending() <= int(e.m.Cfg.EndpointPipeline)+1 {
			p := e.Source()
			if p == nil {
				e.Source = nil
				break
			}
			e.Inject(p)
		}
	}

	// Injection: at most one packet per cycle onto the endpoint channel.
	if e.head >= len(e.swq) {
		return
	}
	p := e.swq[e.head]
	if p.NotBefore > now {
		return
	}
	var vc uint8
	if p.SourceRoute != nil {
		vc = 0
	} else {
		vc = uint8(route.PhysVC(e.m.Cfg.Scheme, topo.GroupM, p.Route.Class, p.Route.MVC))
	}
	if !e.out.CanSend(now, vc, p.Size) {
		return
	}
	e.out.Send(now, p, vc)
	if e.m.checks != nil {
		e.m.checks.OnSend(p, e.out, vc, now)
	}
	p.Tracepoint("endpoint inject", now)
	e.m.Engine.ProgressAt(int(e.shard))
	e.swq[e.head] = nil
	e.head++
	if e.head == len(e.swq) {
		e.head = 0
		e.swq = e.swq[:0]
	}
}
