package machine

import (
	"anton2/internal/fabric"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// EndpointAdapter connects a computational endpoint (a "core") to its mesh
// router. It has an unbounded software-side injection queue — MD
// communication is bursty and not self-throttling (Section 2) — and a single
// VC per traffic class toward the network.
type EndpointAdapter struct {
	m    *Machine
	node int
	ep   int

	out *fabric.Channel // endpoint -> router
	in  *fabric.Channel // router -> endpoint

	swq  []*packet.Packet // software injection queue (FIFO)
	head int

	// Source, when non-nil, lazily supplies injection packets once the
	// explicit queue is empty; it returns nil when exhausted. This keeps
	// large batch experiments at O(1) memory.
	Source func() *packet.Packet

	// OnDeliver, when set, observes each delivered packet before it is
	// recycled. Returning true retains the packet (the pool will not
	// reuse it).
	OnDeliver func(p *packet.Packet, now uint64) bool

	// sched tracks the last scheduled injection cycle so the software
	// send pipeline overlaps: sustained injection is one packet per
	// cycle after the initial EndpointPipeline latency.
	sched uint64
}

func newEndpoint(m *Machine, node, ep int) *EndpointAdapter {
	ce := &m.Topo.Chip.Endpoints[ep]
	return &EndpointAdapter{
		m:    m,
		node: node,
		ep:   ep,
		out:  m.chans[m.Topo.IntraChanID(node, ce.ToRouter)],
		in:   m.chans[m.Topo.IntraChanID(node, ce.FromRouter)],
	}
}

// Inject queues a packet for transmission. The packet's route state must be
// initialized (Machine.MakePacket does this).
func (e *EndpointAdapter) Inject(p *packet.Packet) {
	p.InjectedAt = e.m.Engine.Now()
	if p.NotBefore == 0 {
		nb := p.InjectedAt + e.m.Cfg.EndpointPipeline
		if nb <= e.sched {
			nb = e.sched + 1 // pipelined sends: one per cycle
		}
		p.NotBefore = nb
		e.sched = nb
	}
	e.swq = append(e.swq, p)
	e.m.injected++
	if e.m.checks != nil {
		e.m.checks.OnInject(p, p.InjectedAt)
	}
	if e.m.tel != nil {
		e.m.tel.OnInject(p, p.InjectedAt)
	}
}

// Pending returns the number of packets queued for injection.
func (e *EndpointAdapter) Pending() int { return len(e.swq) - e.head }

// Tick implements sim.Component.
func (e *EndpointAdapter) Tick(now uint64) {
	e.out.AbsorbCredits(now)

	// Ejection: drain arrivals and return credits.
	for {
		p, ok := e.in.Recv(now)
		if !ok {
			break
		}
		e.in.ReturnCredit(now, p.CurVC, p.Size)
		p.DeliveredAt = now
		p.Tracepoint("endpoint deliver", now)
		e.m.deliver(e, p, now)
	}

	// Top up the software queue from the lazy source so the injection
	// pipeline stays full (one send per cycle once primed).
	if e.Source != nil {
		for e.Pending() <= int(e.m.Cfg.EndpointPipeline)+1 {
			p := e.Source()
			if p == nil {
				e.Source = nil
				break
			}
			e.Inject(p)
		}
	}

	// Injection: at most one packet per cycle onto the endpoint channel.
	if e.head >= len(e.swq) {
		return
	}
	p := e.swq[e.head]
	if p.NotBefore > now {
		return
	}
	var vc uint8
	if p.SourceRoute != nil {
		vc = 0
	} else {
		vc = uint8(route.PhysVC(e.m.Cfg.Scheme, topo.GroupM, p.Route.Class, p.Route.MVC))
	}
	if !e.out.CanSend(now, vc, p.Size) {
		return
	}
	e.out.Send(now, p, vc)
	if e.m.checks != nil {
		e.m.checks.OnSend(p, e.out, vc, now)
	}
	p.Tracepoint("endpoint inject", now)
	e.m.Engine.Progress()
	e.swq[e.head] = nil
	e.head++
	if e.head == len(e.swq) {
		e.head = 0
		e.swq = e.swq[:0]
	}
}
