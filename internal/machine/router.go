package machine

import (
	"fmt"

	"anton2/internal/arbiter"
	"anton2/internal/fabric"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// Router is one six-port on-chip mesh router. Its pipeline has four stages
// (Figure 12): route computation (RC), VC allocation (VA), input switch
// arbitration (SA1), and output switch arbitration (SA2). RC/VA/SA1 are
// modeled as a fixed delay before a head packet may bid; SA1 then selects
// one candidate VC per input port and SA2 one input per output port each
// cycle, using the configured arbiter flavor.
type Router struct {
	m         *Machine
	node      int
	nodeCoord topo.NodeCoord
	rc        topo.MeshCoord
	routerID  int

	cid   int   // engine component id
	shard int32 // owning shard (0 when unsharded)

	// Hot state lives in the machine's flat arena (struct-of-arrays carved
	// into per-router subslices in component-id order).
	ports  []routerPort
	sa1    []arbiter.Arbiter // per input port, over VCs
	sa2    []arbiter.Arbiter // per output port, over input ports
	inBusy []uint64          // crossbar input occupancy (multi-flit packets)
	cand   []int8            // SA1 winner VC per input port, -1 if none
	pats   []uint8           // scratch pattern labels for arbiter picks

	queued int
}

type routerPort struct {
	in, out *fabric.Channel
	vcs     []vcq
}

func newRouter(m *Machine, node int, rc topo.MeshCoord) *Router {
	chip := m.Topo.Chip
	cr := chip.RouterAt(rc)
	r := &Router{
		m:         m,
		node:      node,
		nodeCoord: m.Topo.Shape.Coord(node),
		rc:        rc,
		routerID:  topo.RouterID(rc),
		ports:     m.arena.takePorts(len(cr.Ports)),
		sa1:       make([]arbiter.Arbiter, len(cr.Ports)),
		sa2:       make([]arbiter.Arbiter, len(cr.Ports)),
		inBusy:    m.arena.takeBusy(len(cr.Ports)),
		cand:      m.arena.takeCand(len(cr.Ports)),
	}
	maxVCScratch := route.MaxTotalVCs(m.Cfg.Scheme)
	if maxVCScratch < len(cr.Ports) {
		maxVCScratch = len(cr.Ports)
	}
	r.pats = m.arena.takePats(maxVCScratch)
	maxVC := route.MaxTotalVCs(m.Cfg.Scheme)
	for pi := range cr.Ports {
		p := &cr.Ports[pi]
		r.ports[pi] = routerPort{
			in:  m.chans[m.Topo.IntraChanID(node, p.InChan)],
			out: m.chans[m.Topo.IntraChanID(node, p.OutChan)],
			vcs: m.arena.takeVCQ(maxVC),
		}
		r.sa1[pi] = m.newArbiter(maxVC, m.sa1Weights(r.routerID, pi, maxVC))
		r.sa2[pi] = m.newArbiter(len(cr.Ports), m.sa2Weights(r.routerID, pi, len(cr.Ports)))
	}
	return r
}

// bind registers the router for active-set wakeups on all its channels:
// packet arrivals on the input side, credit returns on the output side.
func (r *Router) bind() {
	for pi := range r.ports {
		r.ports[pi].in.BindReceiver(r.m.Engine, r.cid)
		r.ports[pi].out.BindSender(r.m.Engine, r.cid)
	}
}

// Tick implements sim.Component. In active-set mode the router re-arms
// itself for the next cycle whenever packets remain queued; all other wake
// sources (arrivals, credit returns) come from the channel bindings.
func (r *Router) Tick(now uint64) {
	r.tick(now)
	if r.queued > 0 {
		r.m.Engine.Wake(r.cid, now+1)
	}
}

func (r *Router) tick(now uint64) {
	// Absorb credits and arrivals.
	for pi := range r.ports {
		ps := &r.ports[pi]
		ps.out.AbsorbCredits(now)
		for {
			p, ok := ps.in.Recv(now)
			if !ok {
				break
			}
			p.ArrivedAt = now
			if p.Trace != nil {
				p.Tracepoint("router "+r.rc.String(), now)
			}
			ps.vcs[p.CurVC].push(p)
			r.queued++
		}
	}
	if r.queued == 0 {
		return
	}

	// SA1: each input port nominates one (routed, credited) VC head.
	for pi := range r.ports {
		r.cand[pi] = -1
		if r.inBusy[pi] > now {
			continue
		}
		ps := &r.ports[pi]
		var req uint64
		for vci := range ps.vcs {
			q := &ps.vcs[vci]
			if q.empty() {
				continue
			}
			if !q.routed {
				r.routeHead(now, q)
			}
			if q.readyAt > now {
				continue
			}
			h := q.headPkt()
			if r.ports[q.outPort].out.CanSend(now, q.outVC, h.Size) {
				req |= 1 << vci
				r.pats[vci] = h.PatternID
			}
		}
		if req == 0 {
			continue
		}
		g := r.sa1[pi].Pick(req, r.pats)
		if r.m.tel != nil {
			r.m.tel.OnSA1Grant(r.node, r.routerID, pi, g)
		}
		r.cand[pi] = int8(g)
	}

	// SA2: each output port grants one nominated input; transfer.
	for po := range r.ports {
		var req uint64
		for pi := range r.ports {
			if r.cand[pi] >= 0 && int(r.ports[pi].vcs[r.cand[pi]].outPort) == po {
				req |= 1 << pi
				r.pats[pi] = r.ports[pi].vcs[r.cand[pi]].headPkt().PatternID
			}
		}
		if req == 0 {
			continue
		}
		g := r.sa2[po].Pick(req, r.pats)
		if r.m.tel != nil {
			r.m.tel.OnSA2Grant(r.node, r.routerID, po, g)
		}
		pi := g
		vci := uint8(r.cand[pi])
		q := &r.ports[pi].vcs[vci]
		outVC := q.outVC
		p := q.pop()
		r.queued--
		r.ports[po].out.Send(now, p, outVC)
		if r.m.checks != nil {
			r.m.checks.OnSend(p, r.ports[po].out, outVC, now)
		}
		r.ports[pi].in.ReturnCredit(now, vci, p.Size)
		r.inBusy[pi] = now + uint64(p.Size)
		r.m.Engine.ProgressAt(int(r.shard))
	}
}

// routeHead runs route computation for a queue's new head packet.
func (r *Router) routeHead(now uint64, q *vcq) {
	p := q.headPkt()
	if p.SourceRoute != nil {
		op := p.SourceRoute[p.SRIdx]
		p.SRIdx++
		if p.SRIdx == len(p.SourceRoute) && p.Circulate {
			p.SRIdx = 0
		}
		if int(op) >= len(r.ports) {
			panic(fmt.Sprintf("machine: source route names port %d at %s with %d ports", op, r.rc, len(r.ports)))
		}
		q.outPort = int8(op)
		q.outVC = p.CurVC
	} else {
		port, vc := route.RouterNext(r.m.routeCfg, &p.Route, p.Dst, r.rc)
		out := r.ports[port].out
		q.outPort = int8(port)
		q.outVC = uint8(route.PhysVC(r.m.Cfg.Scheme, out.Group, p.Route.Class, vc))
	}
	q.routed = true
	q.readyAt = p.ArrivedAt + r.m.Cfg.RouterPipeline
	if q.readyAt < now {
		q.readyAt = now
	}
}
