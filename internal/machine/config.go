// Package machine assembles and simulates a complete Anton 2 network: per
// node a 4x4 mesh of six-port routers with skip channels, 23 endpoint
// adapters, and 12 torus-channel adapters; nodes wired into a channel-sliced
// 3-D torus. Flow control is credit-based virtual cut-through with separate
// request/reply traffic classes, and arbitration is pluggable between
// locally fair round-robin and the inverse-weighted arbiters of Section 3.
package machine

import (
	"anton2/internal/arbiter"
	"anton2/internal/check"
	"anton2/internal/fault"
	"anton2/internal/loadcalc"
	"anton2/internal/multicast"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
)

// Clock parameters (Section 2.2): the on-chip network runs at 1.5 GHz.
const (
	// CyclePS is the cycle time in picoseconds.
	CyclePS = 1000000 / 1500 // 666 ps
)

// CyclesToNS converts cycles to nanoseconds.
func CyclesToNS(cycles float64) float64 { return cycles * float64(CyclePS) / 1000.0 }

// NSToCycles converts nanoseconds to (fractional) cycles.
func NSToCycles(ns float64) float64 { return ns * 1000.0 / float64(CyclePS) }

// Config parameterizes a simulated machine.
type Config struct {
	// Shape is the torus radix per dimension.
	Shape topo.TorusShape
	// Scheme is the VC promotion discipline (default: the Anton n+1
	// scheme of Section 2.5).
	Scheme route.Scheme
	// DirOrder is the on-chip direction-order algorithm (default:
	// V- U+ U- V+, the Section 2.4 optimum).
	DirOrder topo.DirOrder
	// UseSkip routes X through-traffic over the skip channels; ExitSkip
	// additionally lets packets finishing the X dimension cross sides
	// over the skip (see route.Config).
	UseSkip  bool
	ExitSkip bool
	// Arbiter selects round-robin or inverse-weighted arbitration
	// throughout the network.
	Arbiter arbiter.Kind
	// Weights supplies the inverse-weight tables (required when Arbiter
	// is KindInverseWeighted).
	Weights *loadcalc.WeightSet

	// Buffer depths per VC, in flits.
	MeshVCBuf  int
	TorusVCBuf int

	// Pipeline depths, in cycles: the router's RC/VA/SA1 stages before a
	// packet may bid for the switch, and the adapters' processing
	// latencies.
	RouterPipeline   uint64
	AdapterPipeline  uint64
	EndpointPipeline uint64

	// Channel latencies in cycles. TorusLatency covers SerDes,
	// framing, and wire flight for a typical link; LinkLatency, when
	// non-nil, overrides it per link (packaging-derived lengths).
	MeshLatency   uint64
	TorusLatency  uint64
	CreditLatency uint64
	LinkLatency   func(node int, ad topo.AdapterID) uint64

	// TorusRateMilli is the torus serialization rate in millicycles per
	// flit (default 3214 = 89.6 Gb/s effective of the 288 Gb/s mesh).
	TorusRateMilli uint64

	// TrackEnergy enables the per-channel event counters feeding the
	// Section 4.5 energy model.
	TrackEnergy bool

	// Multicast holds the loaded multicast routing tables by group id
	// (Section 2.3); nil disables multicast.
	Multicast map[int]*multicast.Compiled

	// Check attaches the internal/check invariant suite: flit
	// conservation, credit accounting, VC-promotion monotonicity,
	// dimension-order progress, and exactly-once multicast delivery are
	// verified as the simulation runs. Checking does not perturb the
	// simulation (results are bit-identical with it on or off); it is
	// excluded from experiment cache keys for the same reason.
	Check bool
	// CheckOptions tunes the attached suite (zero value = defaults).
	CheckOptions check.Options

	// Telemetry, when non-nil, attaches an internal/telemetry collector:
	// windowed per-channel utilization, per-router per-VC occupancy
	// histograms, per-arbiter grant counters, and optional packet traces.
	// Like Check it never perturbs the simulation and is excluded from
	// experiment cache keys.
	Telemetry *telemetry.Options

	// Fault, when non-nil, attaches the internal/fault layer: deterministic
	// injection of transient flit corruption, link stalls, credit loss, and
	// permanent link outages, countered by go-back-N reliable-link
	// retransmission and injection-time rerouting around failed links. The
	// injector is seeded from Seed, so the same config reproduces the same
	// fault schedule. Nil preserves the paper's lossless-channel model with
	// zero overhead and bit-identical results.
	Fault *fault.Spec

	// Seed makes runs reproducible.
	Seed uint64

	// Engine selects the cycle-kernel scheduling mode: EngineActive (the
	// default when empty) ticks only components with scheduled work and
	// skips fully idle cycles; EngineScan is the legacy
	// every-component-every-cycle loop, kept as an escape hatch and as the
	// differential-testing reference. The two produce bit-identical
	// results, so Engine is excluded from experiment cache keys.
	Engine string

	// Shards, when > 1, splits the simulation across that many goroutines
	// (contiguous node ranges) with a deterministic phase-barrier merge;
	// results stay bit-identical to a serial run. Requires EngineActive and
	// is incompatible with Check and Telemetry (their hooks assume
	// single-threaded stepping). Clamped to the node count. Like Engine, it
	// never changes results and is excluded from cache keys.
	Shards int
}

// Engine mode names for Config.Engine.
const (
	EngineActive = "active"
	EngineScan   = "scan"
)

// DefaultConfig returns the paper-faithful configuration for a torus shape.
func DefaultConfig(shape topo.TorusShape) Config {
	return Config{
		Shape:            shape,
		Scheme:           route.AntonScheme{},
		DirOrder:         topo.DefaultDirOrder,
		UseSkip:          true,
		ExitSkip:         true,
		Arbiter:          arbiter.KindRoundRobin,
		MeshVCBuf:        64,
		TorusVCBuf:       256,
		RouterPipeline:   3, // RC, VA, SA1; SA2 grants on the next scan
		AdapterPipeline:  3,
		EndpointPipeline: 4,
		MeshLatency:      1,
		TorusLatency:     45, // SerDes + framing + wire, ~30 ns
		CreditLatency:    1,
		TorusRateMilli:   3214,
		Seed:             1,
	}
}
