package machine

import (
	"errors"
	"fmt"
	"testing"

	"anton2/internal/fault"
	"anton2/internal/topo"
)

// fingerprint is a comparable digest of everything a run can observe: the
// completion cycle, machine-wide packet counts, order-weighted per-channel
// flit and packet totals, and the summed fault counters. Two runs with equal
// fingerprints took the same per-channel, per-cycle trajectory.
type fingerprint struct {
	end                 uint64
	injected, delivered uint64
	flitSum, pktSum     uint64
	egSent, inSent      uint64
	faultCnt            fault.Counters
	runErr              string
}

func (m *Machine) fingerprint(end uint64, runErr error) fingerprint {
	fp := fingerprint{end: end, injected: m.Injected(), delivered: m.Delivered()}
	for _, ch := range m.chans {
		fp.flitSum += ch.Sent * uint64(ch.ID+1)
		fp.pktSum += ch.Pkts * uint64(ch.ID*7+3)
	}
	for _, node := range m.nodes {
		for _, a := range node.Adapters {
			fp.egSent += a.EgSent
			fp.inSent += a.InSent
		}
	}
	if st := m.FaultStatus(); st != nil {
		fp.faultCnt = st.Counters
	}
	if runErr != nil {
		fp.runErr = runErr.Error()
	}
	return fp
}

// runWorkload drives a uniform-random burst through a machine built from cfg
// and returns its fingerprint. Runs that end in an error (fault budget
// exhaustion, watchdog) fingerprint the error too — divergent failure cycles
// count as divergence.
func runWorkload(t *testing.T, cfg Config, perEp int) fingerprint {
	t.Helper()
	m := MustNew(cfg)
	total := injectUniform(m, perEp, 1234)
	end, err := m.RunUntilDelivered(total, 4_000_000)
	return m.fingerprint(end, err)
}

// diffConfigs pins bit-identity between a reference config and variants that
// must not change results.
func diffConfigs(t *testing.T, name string, base Config, perEp int, variants map[string]func(*Config)) {
	t.Helper()
	ref := runWorkload(t, base, perEp)
	for vn, mutate := range variants {
		t.Run(name+"/"+vn, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if got := runWorkload(t, cfg, perEp); got != ref {
				t.Fatalf("trajectory divergence:\n  ref (%s): %+v\n  got (%s): %+v", name, ref, vn, got)
			}
		})
	}
}

// TestEngineScanVsActiveBitIdentical: the active-set scheduler must reproduce
// the scan loop's results exactly — same completion cycle, same per-channel
// flit history — on plain and fault-injected workloads.
func TestEngineScanVsActiveBitIdentical(t *testing.T) {
	variants := map[string]func(*Config){
		"scan":   func(c *Config) { c.Engine = EngineScan },
		"active": func(c *Config) { c.Engine = EngineActive },
	}

	plain := DefaultConfig(topo.Shape3(2, 2, 2))
	diffConfigs(t, "plain", plain, 6, variants)

	faulty := DefaultConfig(topo.Shape3(2, 2, 2))
	faulty.Fault = &fault.Spec{
		CorruptRate:    0.02,
		StallRate:      0.001,
		StallCycles:    16,
		CreditLossRate: 0.01,
		FailLinks:      1,
	}
	diffConfigs(t, "faultmix", faulty, 6, variants)
}

// TestShardedBitIdentical: sharded stepping must be bit-identical to serial
// for every shard count, including under the full transient-fault mix (whose
// RNG streams are drawn from per-link state on whichever shard owns the
// draw site).
func TestShardedBitIdentical(t *testing.T) {
	variants := map[string]func(*Config){}
	for _, s := range []int{2, 3, 5, 8} {
		s := s
		variants[fmt.Sprintf("shards=%d", s)] = func(c *Config) { c.Shards = s }
	}
	// Clamping: more shards than nodes must degrade to one shard per node.
	variants["shards=overclamped"] = func(c *Config) { c.Shards = 999 }

	plain := DefaultConfig(topo.Shape3(2, 2, 2))
	diffConfigs(t, "plain", plain, 6, variants)

	faulty := DefaultConfig(topo.Shape3(2, 2, 2))
	faulty.Fault = &fault.Spec{
		CorruptRate:    0.02,
		StallRate:      0.001,
		StallCycles:    16,
		CreditLossRate: 0.01,
		FailLinks:      1,
	}
	diffConfigs(t, "faultmix", faulty, 6, variants)
}

// TestSleepingAdapterTimeoutParity: with every frame corrupted, the receiver
// nacks once, the retransmission is corrupted too (nack already armed), and
// the sender adapter goes fully idle — no queued packets, no pending replay —
// until its go-back-N timeout. The active engine must fire that timeout on
// exactly the cycle the scan loop does (via the Deadline wake), all the way
// to the identical budget-exhaustion failure cycle; sharded stepping must
// agree too.
func TestSleepingAdapterTimeoutParity(t *testing.T) {
	run := func(mutate func(*Config)) fingerprint {
		cfg := DefaultConfig(topo.Shape3(2, 2, 2))
		cfg.Fault = &fault.Spec{CorruptRate: 1, RetryLimit: 4}
		mutate(&cfg)
		m := MustNew(cfg)
		total := injectUniform(m, 2, 3)
		end, err := m.RunUntilDelivered(total, 4_000_000)
		var be *fault.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want *fault.BudgetError", err)
		}
		fp := m.fingerprint(end, err)
		if fp.faultCnt.Timeouts == 0 {
			t.Fatal("no go-back-N timeouts fired; the scenario must exercise the sleeping-adapter deadline wake")
		}
		return fp
	}
	ref := run(func(c *Config) { c.Engine = EngineScan })
	for name, mutate := range map[string]func(*Config){
		"active":   func(c *Config) { c.Engine = EngineActive },
		"sharded4": func(c *Config) { c.Shards = 4 },
	} {
		if got := run(mutate); got != ref {
			t.Fatalf("%s diverged from scan on the timeout path:\n  scan: %+v\n  %s:  %+v", name, ref, name, got)
		}
	}
}

// TestShardedSourceDriven: lazy traffic sources execute inside shard workers;
// steady-state source-driven runs must still match serial exactly.
func TestShardedSourceDriven(t *testing.T) {
	run := func(shards int) fingerprint {
		cfg := DefaultConfig(topo.Shape3(2, 2, 2))
		cfg.Shards = shards
		m := steadyStateMachine(t, cfg)
		m.Engine.Run(2048)
		return m.fingerprint(m.Engine.Now(), nil)
	}
	ref := run(0)
	for _, s := range []int{2, 4} {
		if got := run(s); got != ref {
			t.Fatalf("shards=%d diverged from serial on source-driven traffic:\n  serial:  %+v\n  sharded: %+v", s, ref, got)
		}
	}
}

// TestShardedConfigValidation: sharding is incompatible with the scan engine,
// the invariant suite, and telemetry — all of which assume single-threaded
// stepping — and the constructor must say so rather than race.
func TestShardedConfigValidation(t *testing.T) {
	base := DefaultConfig(topo.Shape3(2, 2, 2))

	cfg := base
	cfg.Shards = 2
	cfg.Engine = EngineScan
	if _, err := New(cfg); err == nil {
		t.Error("expected error for sharded + scan engine")
	}

	cfg = base
	cfg.Shards = 2
	cfg.Check = true
	if _, err := New(cfg); err == nil {
		t.Error("expected error for sharded + invariant suite")
	}

	cfg = base
	if _, err := New(cfg); err != nil {
		t.Errorf("base config must build: %v", err)
	}

	cfg = base
	cfg.Engine = "warp"
	if _, err := New(cfg); err == nil {
		t.Error("expected error for unknown engine mode")
	}
}

// TestActiveStepMachineZeroAllocs pins the allocation-free contract of the
// SoA cycle kernel: a warmed steady-state machine stepping under the active
// engine must not allocate — the arena-carved VC queues, the wake wheel, and
// the channel pipes all reuse capacity.
func TestActiveStepMachineZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	m := steadyStateMachine(t, cfg)
	if m.Engine.Mode() != 1 {
		t.Fatal("default engine is not the active-set scheduler")
	}
	if avg := testing.AllocsPerRun(500, func() { m.Engine.Step() }); avg != 0 {
		t.Errorf("active-engine Step allocates %.2f objects/cycle, want 0", avg)
	}
}
