package machine

import (
	"fmt"
	"math/rand"
	"sync"

	"anton2/internal/arbiter"
	"anton2/internal/check"
	"anton2/internal/fabric"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
)

// Machine is a fully wired simulated Anton 2 network.
type Machine struct {
	Cfg    Config
	Topo   *topo.Machine
	Engine *sim.Engine

	routeCfg *route.Config
	// strategy is Cfg.Scheme upgraded to a full routing strategy, and
	// faultAware whether it natively routes around failed links
	// (route.FaultRouter) — in which case absorbed link deaths do not
	// degrade the run.
	strategy   route.Strategy
	faultAware bool
	chans      []*fabric.Channel // global channel id -> channel
	nodes      []*Node

	injected  uint64
	delivered uint64

	pool   []*packet.Packet
	nextID uint64

	// arena backs the flat SoA hot state of every router and adapter.
	arena hotArena

	// Sharding state (Cfg.Shards > 1): components are partitioned into
	// contiguous node ranges ticked by worker goroutines; cross-shard
	// channel traffic is staged and flushed at the phase barrier, and
	// deliveries are deferred per shard and applied at the barrier in
	// component-id order, keeping sharded runs bit-identical to serial.
	sharded    bool
	shardCount int
	nodeShard  []int32
	allocMu    sync.Mutex // guards pool and nextID across shard workers
	pendDeliv  [][]delivEnt

	// checks is the attached invariant suite, or nil when Cfg.Check is
	// false; every hook site guards on nil so disabled checking costs one
	// predicted branch. tel follows the same discipline for the
	// observability layer, and flt for the fault-injection and
	// reliable-link layer.
	checks *check.Suite
	tel    *telemetry.Collector
	flt    *faultLayer
}

// Node groups one ASIC's components.
type Node struct {
	ID        int
	Routers   [topo.NumRouters]*Router
	Endpoints [topo.NumEndpoints]*EndpointAdapter
	Adapters  [topo.NumChannelAdapters]*ChannelAdapter
}

// delivEnt is one delivery deferred to the phase barrier of a sharded step.
type delivEnt struct {
	e *EndpointAdapter
	p *packet.Packet
}

// New builds and wires a machine.
func New(cfg Config) (*Machine, error) {
	tm, err := topo.NewMachine(cfg.Shape)
	if err != nil {
		return nil, err
	}
	if cfg.Scheme == nil {
		cfg.Scheme = route.AntonScheme{}
	}
	if cfg.Arbiter == arbiter.KindInverseWeighted && cfg.Weights == nil {
		return nil, fmt.Errorf("machine: inverse-weighted arbitration requires a WeightSet")
	}
	mode := sim.ModeActive
	switch cfg.Engine {
	case "", EngineActive:
	case EngineScan:
		mode = sim.ModeScan
	default:
		return nil, fmt.Errorf("machine: unknown engine mode %q (want %q or %q)", cfg.Engine, EngineActive, EngineScan)
	}
	shards := cfg.Shards
	if shards > tm.NumNodes() {
		shards = tm.NumNodes()
	}
	if shards > 1 {
		if mode != sim.ModeActive {
			return nil, fmt.Errorf("machine: sharded stepping requires the active engine")
		}
		if cfg.Check {
			return nil, fmt.Errorf("machine: sharded stepping is incompatible with the invariant suite (Check)")
		}
		if cfg.Telemetry != nil {
			return nil, fmt.Errorf("machine: sharded stepping is incompatible with telemetry")
		}
	}
	m := &Machine{
		Cfg:    cfg,
		Topo:   tm,
		Engine: sim.NewEngineMode(mode),
		routeCfg: &route.Config{
			Machine:  tm,
			Scheme:   cfg.Scheme,
			DirOrder: cfg.DirOrder,
			UseSkip:  cfg.UseSkip,
			ExitSkip: cfg.ExitSkip,
		},
	}
	m.strategy = route.AsStrategy(cfg.Scheme)
	_, m.faultAware = m.strategy.(route.FaultRouter)
	if shards > 1 {
		m.sharded = true
		m.shardCount = shards
	} else {
		m.shardCount = 1
	}
	// Balanced contiguous node partition: shard s owns nodes
	// [s*base + min(s, extra), ...); contiguous node ranges mean contiguous
	// component-id ranges, which is what the engine shards over.
	m.nodeShard = make([]int32, tm.NumNodes())
	if m.sharded {
		base, extra := tm.NumNodes()/shards, tm.NumNodes()%shards
		n := 0
		for s := 0; s < shards; s++ {
			cnt := base
			if s < extra {
				cnt++
			}
			for i := 0; i < cnt; i++ {
				m.nodeShard[n] = int32(s)
				n++
			}
		}
	}
	m.arena = newArena(m)

	// Channels.
	m.chans = make([]*fabric.Channel, tm.NumChannels())
	for n := 0; n < tm.NumNodes(); n++ {
		for ci := range tm.Chip.IntraChans {
			ch := &tm.Chip.IntraChans[ci]
			id := tm.IntraChanID(n, ci)
			m.chans[id] = fabric.New(fabric.Config{
				ID:            id,
				Name:          fmt.Sprintf("n%d:%s", n, ch.Name),
				Group:         ch.Group,
				Latency:       cfg.MeshLatency,
				RateMilli:     fabric.MeshRateMilli,
				NumVCs:        route.TotalVCs(cfg.Scheme, ch.Group),
				BufFlits:      cfg.MeshVCBuf,
				CreditLatency: cfg.CreditLatency,
				TrackEnergy:   cfg.TrackEnergy,
			})
		}
		for ai := 0; ai < topo.NumChannelAdapters; ai++ {
			ad := topo.AdapterByIndex(ai)
			id := tm.TorusChanID(n, ad.Dir, ad.Slice)
			lat := cfg.TorusLatency
			if cfg.LinkLatency != nil {
				lat = cfg.LinkLatency(n, ad)
			}
			m.chans[id] = fabric.New(fabric.Config{
				ID:            id,
				Name:          fmt.Sprintf("n%d:torus:%s", n, ad),
				Group:         topo.GroupT,
				Latency:       lat,
				RateMilli:     cfg.TorusRateMilli,
				NumVCs:        route.TotalVCs(cfg.Scheme, topo.GroupT),
				BufFlits:      cfg.TorusVCBuf,
				CreditLatency: cfg.CreditLatency,
				TrackEnergy:   cfg.TrackEnergy,
			})
		}
	}

	// Fault layer, before the components: it must exist when the channel
	// adapters bind their reliable-link state, and it ticks first each
	// cycle so stall transitions and credit resyncs precede all adapters.
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		m.flt = newFaultLayer(m, *cfg.Fault)
		m.flt.cid = m.Engine.Register(m.flt)
	}

	// Components, registered in a fixed order for determinism; each records
	// its engine id and shard and binds its channels for active-set wakeups.
	m.nodes = make([]*Node, tm.NumNodes())
	for n := 0; n < tm.NumNodes(); n++ {
		node := &Node{ID: n}
		m.nodes[n] = node
		sh := m.nodeShard[n]
		for ri := 0; ri < topo.NumRouters; ri++ {
			r := newRouter(m, n, topo.RouterCoord(ri))
			node.Routers[ri] = r
			r.cid, r.shard = m.Engine.Register(r), sh
			r.bind()
		}
		for ai := 0; ai < topo.NumChannelAdapters; ai++ {
			a := newChannelAdapter(m, n, topo.AdapterByIndex(ai))
			node.Adapters[ai] = a
			a.cid, a.shard = m.Engine.Register(a), sh
			a.bind()
		}
		for ep := 0; ep < topo.NumEndpoints; ep++ {
			e := newEndpoint(m, n, ep)
			node.Endpoints[ep] = e
			e.cid, e.shard = m.Engine.Register(e), sh
			e.bind()
		}
	}

	// The fault layer is the serial prefix: it ticks before the rest of the
	// active set (matching its first-registered position in scan mode), and
	// its same-cycle effects — stall onsets, credit-resync restores — stay
	// visible to adapters ticking in the same cycle.
	prefix := 0
	if m.flt != nil {
		prefix = 1
	}
	m.Engine.SetSerialPrefix(prefix)

	if m.sharded {
		perNode := topo.NumRouters + topo.NumChannelAdapters + topo.NumEndpoints
		ranges := make([]sim.ShardRange, 0, shards)
		lo := 0
		for n := 1; n <= tm.NumNodes(); n++ {
			if n == tm.NumNodes() || m.nodeShard[n] != m.nodeShard[lo] {
				ranges = append(ranges, sim.ShardRange{Lo: prefix + lo*perNode, Hi: prefix + n*perNode})
				lo = n
			}
		}
		m.Engine.ConfigureShards(ranges, prefix, m.merge)
		m.pendDeliv = make([][]delivEnt, shards)
		// Torus channels whose endpoints land in different shards switch to
		// staged (barrier-flushed) delivery; everything else stays direct.
		for n := 0; n < tm.NumNodes(); n++ {
			for ai := 0; ai < topo.NumChannelAdapters; ai++ {
				ad := topo.AdapterByIndex(ai)
				id := tm.TorusChanID(n, ad.Dir, ad.Slice)
				u := tm.Shape.NodeID(tm.Shape.Neighbor(tm.Shape.Coord(n), ad.Dir))
				if m.flt != nil {
					m.flt.recvShard[id-m.flt.torusBase] = m.nodeShard[u]
				}
				if m.nodeShard[n] != m.nodeShard[u] {
					m.chans[id].SetDeferred(true)
					if m.flt != nil {
						if rl := m.flt.rlinkFor(id); rl != nil {
							rl.deferred = true
						}
					}
				}
			}
		}
	}

	if cfg.Check {
		m.checks = check.NewSuite(check.Env{
			Route:    m.routeCfg,
			Channels: m.chans,
			Queued:   m.queuedPackets,
		}, cfg.CheckOptions)
	}
	if cfg.Telemetry != nil {
		env := telemetry.Env{
			Topo:            tm,
			Channels:        m.chans,
			MaxVCs:          route.MaxTotalVCs(cfg.Scheme),
			MeshVCBuf:       cfg.MeshVCBuf,
			CyclePS:         CyclePS,
			ScanVCOccupancy: m.scanVCOccupancy,
		}
		if m.flt != nil {
			env.FaultCounters = func() map[string]uint64 {
				c := m.flt.counters()
				return c.Map()
			}
		}
		m.tel = telemetry.NewCollector(env, *cfg.Telemetry)
	}
	switch {
	case m.checks != nil && m.tel != nil:
		checks, tel := m.checks, m.tel
		m.Engine.AfterStep = func(now uint64) {
			checks.Cycle(now)
			tel.Cycle(now)
		}
	case m.checks != nil:
		m.Engine.AfterStep = m.checks.Cycle
	case m.tel != nil:
		m.Engine.AfterStep = m.tel.Cycle
	}
	// The detail provider runs only on the watchdog failure path, so
	// attaching it unconditionally costs nothing on healthy runs.
	m.Engine.DeadlockDetail = m.deadlockDetail
	return m, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// RouteConfig exposes the routing configuration (shared with loadcalc and
// the deadlock analyzer).
func (m *Machine) RouteConfig() *route.Config { return m.routeCfg }

// Node returns a node by dense id.
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// Endpoint returns an endpoint adapter.
func (m *Machine) Endpoint(ne topo.NodeEp) *EndpointAdapter {
	return m.nodes[ne.Node].Endpoints[ne.Ep]
}

// Chan returns a channel by global id.
func (m *Machine) Chan(id int) *fabric.Channel { return m.chans[id] }

// newArbiter builds one arbitration point of the configured flavor.
func (m *Machine) newArbiter(k int, weights [][arbiter.NumPatterns]uint32) arbiter.Arbiter {
	if m.Cfg.Arbiter == arbiter.KindInverseWeighted {
		if weights == nil {
			weights = arbiter.UniformWeights(k)
		}
		return arbiter.NewInverseWeighted(k, weights)
	}
	return arbiter.NewRoundRobin(k)
}

func (m *Machine) sa1Weights(router, port, k int) [][arbiter.NumPatterns]uint32 {
	if m.Cfg.Weights == nil {
		return nil
	}
	return clipWeights(m.Cfg.Weights.SA1[router][port], k)
}

func (m *Machine) sa2Weights(router, port, k int) [][arbiter.NumPatterns]uint32 {
	if m.Cfg.Weights == nil {
		return nil
	}
	return clipWeights(m.Cfg.Weights.SA2[router][port], k)
}

func (m *Machine) adapterWeights(egress bool, id topo.AdapterID, k int) [][arbiter.NumPatterns]uint32 {
	if m.Cfg.Weights == nil {
		return nil
	}
	if egress {
		return clipWeights(m.Cfg.Weights.AdEg[id.Index()], k)
	}
	return clipWeights(m.Cfg.Weights.AdIn[id.Index()], k)
}

func clipWeights(w [][arbiter.NumPatterns]uint32, k int) [][arbiter.NumPatterns]uint32 {
	if w == nil {
		return nil
	}
	if len(w) < k {
		panic("machine: weight table narrower than arbiter")
	}
	return w[:k]
}

// MakePacket allocates a packet from the pool with an initialized route.
// The routing strategy first maps the (typically randomized) choices onto
// its admissible set. When permanent link faults are active, a fault-aware
// strategy (route.FaultRouter) then routes around them natively; any other
// strategy falls back to emergency rerouting (graceful degradation). An
// unreachable destination marks the run fatally unroutable either way.
func (m *Machine) MakePacket(src, dst topo.NodeEp, c route.Choices, class route.Class, pattern uint8, size uint8) *packet.Packet {
	c = m.strategy.Choose(m.routeCfg, src, dst, c, class)
	if m.flt != nil && len(m.flt.failed) > 0 {
		avoided, rerouted, ok := m.avoidFailed(src, dst, c, class)
		if !ok {
			// Injection can run on any shard worker (endpoint Sources), so
			// the injection counter slot and the fatal marker are mutexed.
			m.flt.mu.Lock()
			m.flt.cnt[m.flt.injSlot()].Unroutable++
			if m.flt.fatal == nil {
				m.flt.fatal = fmt.Errorf("machine: no admissible route from %v to %v avoids the failed links", src, dst)
			}
			m.flt.mu.Unlock()
		} else {
			if rerouted {
				m.flt.mu.Lock()
				if m.faultAware {
					m.flt.cnt[m.flt.injSlot()].RoutedNative++
				} else {
					m.flt.cnt[m.flt.injSlot()].Rerouted++
				}
				m.flt.mu.Unlock()
			}
			c = avoided
		}
	}
	p := m.alloc()
	p.Src, p.Dst = src, dst
	p.Size = size
	p.PatternID = pattern
	p.Route = route.Init(m.routeCfg, src, dst, c.Order, c.Slice, c.Ties, class)
	return p
}

// avoidFailed steers admissible routing choices away from the failed-link
// set: a fault-aware strategy searches its own per-pair path set
// (route.FaultRouter); every other strategy falls back to the generic
// emergency rerouting of graceful degradation.
func (m *Machine) avoidFailed(src, dst topo.NodeEp, c route.Choices, class route.Class) (out route.Choices, rerouted, ok bool) {
	if fr, isFR := m.strategy.(route.FaultRouter); isFR {
		out, ok = fr.ChooseAvoiding(m.routeCfg, src, dst, c, class, m.flt.failed)
		return out, ok && out != c, ok
	}
	return route.ChoicesAvoiding(m.routeCfg, src, dst, c, class, m.flt.failed)
}

// MakeRandomPacket is MakePacket with uniformly randomized routing choices.
func (m *Machine) MakeRandomPacket(src, dst topo.NodeEp, class route.Class, pattern uint8, rng *rand.Rand) *packet.Packet {
	return m.MakePacket(src, dst, route.RandomChoices(rng), class, pattern, 1)
}

func (m *Machine) alloc() *packet.Packet {
	// Shard workers allocate concurrently; pool order and packet IDs become
	// schedule-dependent then, but both are unobservable (checks and
	// telemetry — the only ID consumers — are disabled under sharding, and
	// pooled packets are fully Reset on reuse).
	if m.sharded {
		m.allocMu.Lock()
		defer m.allocMu.Unlock()
	}
	m.nextID++
	if n := len(m.pool); n > 0 {
		p := m.pool[n-1]
		m.pool = m.pool[:n-1]
		p.Reset()
		p.ID = m.nextID
		return p
	}
	return &packet.Packet{ID: m.nextID, MGroup: -1}
}

// clonePacket copies a multicast packet for one branch of its tree.
func (m *Machine) clonePacket(p *packet.Packet) *packet.Packet {
	c := m.alloc()
	id := c.ID
	*c = *p
	c.ID = id
	c.Payload = nil // branches share no payload modeling
	if m.checks != nil {
		m.checks.OnClone(c, m.Engine.Now())
	}
	return c
}

// InjectMulticast queues the source-node copies of a multicast group
// rooted at src: one branch per forwarded torus direction plus local
// deliveries, exactly as the endpoint adapter's table would produce. It
// returns the group's machine-wide delivery count (for run-until bounds).
func (m *Machine) InjectMulticast(src topo.NodeEp, group int, class route.Class, pattern uint8) int {
	g := m.Cfg.Multicast[group]
	if g == nil {
		panic(fmt.Sprintf("machine: multicast group %d not loaded", group))
	}
	e, ok := g.Entries[src.Node]
	if !ok {
		panic(fmt.Sprintf("machine: multicast group %d has no entry at source node %d", group, src.Node))
	}
	chip := m.Topo.Chip
	srcRouter := chip.Endpoints[src.Ep].Router
	ep := m.Endpoint(src)
	if m.checks != nil {
		m.checks.OnMulticastInject(group, g, m.Engine.Now())
	}
	for _, d := range e.Forward {
		p := m.alloc()
		p.Src, p.Size, p.PatternID, p.MGroup = src, 1, pattern, group
		p.Route = route.InitMulticastBranch(m.routeCfg, d, g.DimIndex(d.Dim()), g.Order, g.Slice, class, srcRouter)
		ep.Inject(p)
	}
	for _, dstEp := range e.Deliver {
		p := m.MakePacket(src, topo.NodeEp{Node: src.Node, Ep: dstEp},
			route.Choices{Order: g.Order, Slice: g.Slice, Ties: [3]int8{1, 1, 1}}, class, pattern, 1)
		p.MGroup = group
		ep.Inject(p)
	}
	return g.TotalDeliveries()
}

// deliver finalizes a packet at its destination endpoint.
func (m *Machine) deliver(e *EndpointAdapter, p *packet.Packet, now uint64) {
	m.delivered++
	m.Engine.Progress()
	if m.checks != nil {
		m.checks.OnDeliver(p, now)
	}
	if m.tel != nil {
		m.tel.OnDeliver(p, now)
	}
	retain := false
	if e.OnDeliver != nil {
		retain = e.OnDeliver(p, now)
	}
	// With the reliable-link layer active a delivered packet may still sit
	// in an upstream retransmission window (awaiting its cumulative ack);
	// recycling it would let a timeout rewind retransmit a packet whose
	// fields the pool has since rewritten. Fault runs skip pooling.
	if !retain && m.flt == nil {
		m.pool = append(m.pool, p)
	}
}

// free returns a packet to the pool.
func (m *Machine) free(p *packet.Packet) {
	if m.checks != nil {
		m.checks.OnFree(p, m.Engine.Now())
	}
	if m.flt == nil {
		if m.sharded {
			m.allocMu.Lock()
			defer m.allocMu.Unlock()
		}
		m.pool = append(m.pool, p)
	}
}

// merge is the sharded-step barrier hook: flush staged cross-shard channel
// traffic (packets, credits, link-layer metadata and control messages) with
// the arrival cycles recorded at send time, then apply deferred deliveries
// in shard order — which is component-id order, the same order a serial step
// would have delivered them.
func (m *Machine) merge(now uint64) {
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	for _, ch := range m.chans[base:] {
		ch.FlushStaged()
	}
	if m.flt != nil {
		for _, rl := range m.flt.rlinks {
			if rl != nil && rl.deferred {
				rl.flush()
			}
		}
		m.flt.resolveFatal()
	}
	for si := range m.pendDeliv {
		pd := m.pendDeliv[si]
		for i := range pd {
			m.deliver(pd[i].e, pd[i].p, now)
			pd[i] = delivEnt{}
		}
		m.pendDeliv[si] = pd[:0]
	}
}

// Injected and Delivered report machine-wide packet counts.
func (m *Machine) Injected() uint64  { return m.injected }
func (m *Machine) Delivered() uint64 { return m.delivered }

// Checks returns the attached invariant suite, or nil when Cfg.Check is
// false.
func (m *Machine) Checks() *check.Suite { return m.checks }

// Telemetry returns the attached collector, or nil when Cfg.Telemetry is
// unset.
func (m *Machine) Telemetry() *telemetry.Collector { return m.tel }

// scanVCOccupancy feeds the telemetry occupancy sampler: for every node it
// visits each (chip router, VC) pair with the queued flit count summed over
// the router's input ports.
func (m *Machine) scanVCOccupancy(visit func(router int, vc uint8, flits int)) {
	for _, node := range m.nodes {
		for ri, r := range node.Routers {
			maxVC := 0
			for pi := range r.ports {
				if n := len(r.ports[pi].vcs); n > maxVC {
					maxVC = n
				}
			}
			for vci := 0; vci < maxVC; vci++ {
				flits := 0
				for pi := range r.ports {
					if vci < len(r.ports[pi].vcs) {
						flits += r.ports[pi].vcs[vci].flits()
					}
				}
				visit(ri, uint8(vci), flits)
			}
		}
	}
}

// queuedPackets is the conservation census over component queues: router VC
// queues, channel-adapter queues plus pending multicast branches, and
// endpoint injection queues. In-flight channel contents are counted by the
// checker itself.
func (m *Machine) queuedPackets() int {
	total := 0
	for _, node := range m.nodes {
		for _, r := range node.Routers {
			total += r.queued
		}
		for _, a := range node.Adapters {
			total += a.queued
			for i := range a.ing {
				total += len(a.ing[i].branches)
			}
		}
		for _, e := range node.Endpoints {
			total += e.Pending()
		}
	}
	if m.flt != nil {
		// Reliable links are census-exempt (their pipes may hold duplicate
		// transmissions of one logical packet); the retransmission windows
		// account for their live packets instead.
		total += m.flt.windowLive()
	}
	return total
}

// quiet reports whether the machine holds no packets in queues and no
// packets or credits in flight on any channel.
func (m *Machine) quiet() bool {
	if m.queuedPackets() != 0 {
		return false
	}
	for _, ch := range m.chans {
		if !ch.Quiet() {
			return false
		}
	}
	if m.flt != nil && !m.flt.quiet() {
		return false
	}
	return true
}

// Quiet reports whether the fabric is fully quiescent: no packets in queues
// and no packets or credits in flight on any channel. It is the phase-barrier
// predicate of the workload layer, which steps the engine manually until
// Quiet holds (RunUntil's idle-cycle jumping would observe quiescence at an
// engine-dependent cycle). Call it only between engine steps, never from a
// hook running inside one.
func (m *Machine) Quiet() bool { return m.quiet() }

// drainBudget bounds the post-measurement drain in FinishChecks. Worst case
// is a torus channel's full VC buffers serializing out at ~3.2 cycles/flit;
// 1<<16 cycles covers that with wide margin on every supported shape.
const drainBudget = 1 << 16

// FinishChecks finalizes the attached invariant suite after a measurement:
// it lets the network drain (bounded by drainBudget; skipped when
// circulating streams can never drain), runs the end-of-run checks —
// conservation of every injected packet, exact credit restoration,
// exactly-once multicast delivery — and returns an error if any invariant
// was violated during or after the run. It also finalizes the attached
// telemetry collector (closing its trailing window and emitting artifacts).
// It is a no-op without Cfg.Check and Cfg.Telemetry.
func (m *Machine) FinishChecks() error {
	var err error
	if m.checks != nil {
		quiesced := false
		if m.checks.Circulating() == 0 {
			for i := 0; i < drainBudget && !m.quiet(); i++ {
				m.Engine.Step()
			}
			quiesced = m.quiet()
		}
		m.checks.Finish(m.Engine.Now(), quiesced)
		err = m.checks.Err()
	}
	if m.tel != nil {
		if telErr := m.tel.Finish(m.Engine.Now()); err == nil {
			err = telErr
		}
	}
	return err
}

// RunUntilDelivered advances the simulation until the machine-wide delivered
// count reaches want. It returns the cycle at completion, or an error on
// watchdog deadlock / budget exhaustion. Under fault injection a fatal
// protocol failure (retry budget exhausted, unroutable destination) stops
// the run immediately and is returned instead of spinning into the watchdog.
func (m *Machine) RunUntilDelivered(want uint64, maxCycles uint64) (uint64, error) {
	done := func() bool { return m.delivered >= want }
	if m.flt != nil {
		done = func() bool { return m.delivered >= want || m.flt.fatal != nil }
	}
	err := m.Engine.RunUntil(done, maxCycles, 50_000)
	if m.flt != nil && m.flt.fatal != nil {
		return m.Engine.Now(), m.flt.fatal
	}
	return m.Engine.Now(), err
}

// TorusUtilization returns the min, mean, and max utilization of all torus
// channels over a window of cycles, where 1.0 is full effective bandwidth.
func (m *Machine) TorusUtilization(startFlits []uint64, cycles uint64) (min, mean, max float64) {
	capacity := float64(cycles) * 1000 / float64(m.Cfg.TorusRateMilli)
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	min = 1e18
	count := 0
	for i := base; i < len(m.chans); i++ {
		sent := m.chans[i].Sent
		if startFlits != nil {
			sent -= startFlits[i-base]
		}
		u := float64(sent) / capacity
		mean += u
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
		count++
	}
	mean /= float64(count)
	return min, mean, max
}

// SnapshotTorusFlits captures per-torus-channel flit counters for windowed
// utilization measurements.
func (m *Machine) SnapshotTorusFlits() []uint64 {
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	out := make([]uint64, len(m.chans)-base)
	for i := range out {
		out[i] = m.chans[base+i].Sent
	}
	return out
}
