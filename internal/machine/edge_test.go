package machine

import (
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// torusFlitsSent sums Sent over every torus channel, optionally restricted
// to one slice (slice < 0 means both).
func torusFlitsSent(m *Machine, slice int) uint64 {
	var sum uint64
	tm := m.Topo
	for ai := 0; ai < topo.NumChannelAdapters; ai++ {
		ad := topo.AdapterByIndex(ai)
		if slice >= 0 && ad.Slice != slice {
			continue
		}
		for n := 0; n < tm.NumNodes(); n++ {
			sum += m.Chan(tm.TorusChanID(n, ad.Dir, ad.Slice)).Sent
		}
	}
	return sum
}

// allPairsBurst sends one fixed-choice packet from every core endpoint to
// every core endpoint (including itself) across all nodes, with the
// invariant suite attached, and requires a clean finish.
func allPairsBurst(t *testing.T, shape topo.TorusShape) *Machine {
	t.Helper()
	cfg := DefaultConfig(shape)
	cfg.Check = true
	m := MustNew(cfg)
	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	c := route.Choices{Order: topo.AllDimOrders[0], Slice: 0, Ties: [topo.NumDims]int8{1, 1, 1}}
	total := uint64(0)
	for sn := 0; sn < tm.NumNodes(); sn++ {
		for _, se := range cores {
			for dn := 0; dn < tm.NumNodes(); dn++ {
				for _, de := range cores {
					src := topo.NodeEp{Node: sn, Ep: se}
					dst := topo.NodeEp{Node: dn, Ep: de}
					m.Endpoint(src).Inject(m.MakePacket(src, dst, c, route.ClassRequest, 0, 1))
					total++
				}
			}
		}
	}
	if _, err := m.RunUntilDelivered(total, 2_000_000); err != nil {
		t.Fatalf("all-pairs burst on %v: %v (delivered %d/%d)", shape, err, m.Delivered(), total)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("FinishChecks on %v: %v", shape, err)
	}
	return m
}

// TestSingleNodeMachine: the 1x1x1 degenerate torus still builds, delivers
// all-pairs on-chip traffic (including a core endpoint sending to itself),
// and never touches a torus channel.
func TestSingleNodeMachine(t *testing.T) {
	m := allPairsBurst(t, topo.Shape3(1, 1, 1))
	if sent := torusFlitsSent(m, -1); sent != 0 {
		t.Errorf("single-node machine sent %d torus flits", sent)
	}
}

// TestTwoAryDims: radix-2 rings are the smallest shapes with real torus
// hops; every orientation must deliver all-pairs traffic cleanly.
func TestTwoAryDims(t *testing.T) {
	for _, shape := range []topo.TorusShape{
		topo.Shape3(2, 1, 1),
		topo.Shape3(1, 2, 1),
		topo.Shape3(1, 1, 2),
		topo.Shape3(2, 2, 1),
	} {
		t.Run(shape.String(), func(t *testing.T) {
			m := allPairsBurst(t, shape)
			if sent := torusFlitsSent(m, -1); sent == 0 {
				t.Errorf("%v all-pairs traffic never crossed a torus channel", shape)
			}
		})
	}
}

// TestSelfAddressedPackets: packets whose destination equals their source
// endpoint must loop through the local mesh and deliver without any torus
// traversal, on a machine that has torus channels to get wrong.
func TestSelfAddressedPackets(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	m := MustNew(cfg)
	tm := m.Topo
	c := route.Choices{Order: topo.AllDimOrders[0], Slice: 1, Ties: [topo.NumDims]int8{-1, -1, -1}}
	total := uint64(0)
	for n := 0; n < tm.NumNodes(); n++ {
		for _, ep := range tm.Chip.CoreEndpoints() {
			src := topo.NodeEp{Node: n, Ep: ep}
			m.Endpoint(src).Inject(m.MakePacket(src, src, c, route.ClassRequest, 0, 1))
			total++
		}
	}
	if _, err := m.RunUntilDelivered(total, 1_000_000); err != nil {
		t.Fatalf("self-addressed run: %v (delivered %d/%d)", err, m.Delivered(), total)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("FinishChecks: %v", err)
	}
	if sent := torusFlitsSent(m, -1); sent != 0 {
		t.Errorf("self-addressed packets sent %d torus flits", sent)
	}
}

// TestSingleSliceConfinement: packets pinned to slice 0 must never cross a
// slice-1 torus channel (the two slices are disjoint physical networks).
func TestSingleSliceConfinement(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(3, 2, 2))
	cfg.Check = true
	m := MustNew(cfg)
	tm := m.Topo
	cores := tm.Chip.CoreEndpoints()
	c := route.Choices{Order: topo.AllDimOrders[2], Slice: 0, Ties: [topo.NumDims]int8{1, -1, 1}}
	total := uint64(0)
	for sn := 0; sn < tm.NumNodes(); sn++ {
		for i, se := range cores {
			src := topo.NodeEp{Node: sn, Ep: se}
			dst := topo.NodeEp{Node: (sn + 1 + i) % tm.NumNodes(), Ep: cores[(i+3)%len(cores)]}
			m.Endpoint(src).Inject(m.MakePacket(src, dst, c, route.ClassRequest, 0, 1))
			total++
		}
	}
	if _, err := m.RunUntilDelivered(total, 1_000_000); err != nil {
		t.Fatalf("slice-0 run: %v (delivered %d/%d)", err, m.Delivered(), total)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("FinishChecks: %v", err)
	}
	if sent := torusFlitsSent(m, 1); sent != 0 {
		t.Errorf("slice-0 packets sent %d flits on slice-1 torus channels", sent)
	}
	if sent := torusFlitsSent(m, 0); sent == 0 {
		t.Error("slice-0 packets never used the torus; test is vacuous")
	}
}
