package machine

import (
	"encoding/json"
	"math/rand"
	"testing"

	"anton2/internal/fault"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// snapInject loads a deterministic batch of uniform traffic (pure function
// of the machine's topology, not its engine mode) and returns the total.
func snapInject(m *Machine, perCore int) uint64 {
	rng := rand.New(rand.NewSource(42))
	cores := m.Topo.Chip.CoreEndpoints()
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < perCore; i++ {
				dst := traffic.Uniform{}.Dest(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	return total
}

func snapVariants(withFault bool) map[string]Config {
	mk := func(engine string, shards int) Config {
		cfg := DefaultConfig(topo.Shape3(2, 2, 2))
		cfg.Engine = engine
		cfg.Shards = shards
		if withFault {
			cfg.Fault = &fault.Spec{CorruptRate: 0.02, StallRate: 0.001, StallCycles: 40, Window: 16}
		}
		return cfg
	}
	return map[string]Config{
		"scan":    mk(EngineScan, 0),
		"active":  mk(EngineActive, 0),
		"sharded": mk(EngineActive, 2),
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotEngineInvariant: the snapshot taken at the same mid-flight
// cycle must be byte-identical regardless of engine mode or shard count.
func TestSnapshotEngineInvariant(t *testing.T) {
	for _, withFault := range []bool{false, true} {
		var ref []byte
		var refName string
		for name, cfg := range snapVariants(withFault) {
			m := MustNew(cfg)
			snapInject(m, 8)
			m.Engine.Run(300)
			s, err := m.Snapshot()
			if err != nil {
				t.Fatalf("fault=%v %s: %v", withFault, name, err)
			}
			b := mustJSON(t, s)
			if ref == nil {
				ref, refName = b, name
			} else if string(b) != string(ref) {
				t.Errorf("fault=%v: %s snapshot differs from %s", withFault, name, refName)
			}
		}
	}
}

// TestSnapshotRestoreBitIdentical: interrupting a run at a mid-flight cycle
// and restoring into a fresh machine (of any engine mode) must finish with a
// final state byte-identical to the uninterrupted run's.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, withFault := range []bool{false, true} {
		variants := snapVariants(withFault)

		// Uninterrupted reference on the scan engine.
		refCfg := variants["scan"]
		ref := MustNew(refCfg)
		total := snapInject(ref, 8)
		ref.Engine.Run(300)
		mid, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		endRef, err := ref.RunUntilDelivered(total, 2_000_000)
		if err != nil {
			t.Fatalf("fault=%v reference: %v", withFault, err)
		}
		finRef, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		refBytes := mustJSON(t, finRef)

		// Serialize the mid-flight snapshot through JSON, as the checkpoint
		// codec would, so the test also covers codec-level fidelity.
		wire := mustJSON(t, mid)

		for name, cfg := range variants {
			var midCopy Snapshot
			if err := json.Unmarshal(wire, &midCopy); err != nil {
				t.Fatal(err)
			}
			m := MustNew(cfg)
			if err := m.Restore(&midCopy); err != nil {
				t.Fatalf("fault=%v %s: restore: %v", withFault, name, err)
			}
			if got := m.Engine.Now(); got != mid.Now {
				t.Fatalf("fault=%v %s: restored clock %d, want %d", withFault, name, got, mid.Now)
			}
			end, err := m.RunUntilDelivered(total, 2_000_000)
			if err != nil {
				t.Fatalf("fault=%v %s: resumed run: %v", withFault, name, err)
			}
			if end != endRef {
				t.Errorf("fault=%v %s: resumed run finished at cycle %d, reference at %d", withFault, name, end, endRef)
			}
			fin, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, fin); string(got) != string(refBytes) {
				t.Errorf("fault=%v %s: resumed final state differs from uninterrupted run", withFault, name)
			}
		}
	}
}

// TestSnapshotEveryCycle: restoring from every per-cycle snapshot of a short
// window must converge to the identical final state — no cycle is a bad
// checkpoint boundary.
func TestSnapshotEveryCycle(t *testing.T) {
	cfg := snapVariants(false)["active"]
	ref := MustNew(cfg)
	total := snapInject(ref, 4)
	endRef, err := ref.RunUntilDelivered(total, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	finRef, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refBytes := mustJSON(t, finRef)

	for cut := uint64(0); cut <= 120; cut += 7 {
		m := MustNew(cfg)
		snapInject(m, 4)
		m.Engine.Run(cut)
		s, err := m.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		r := MustNew(cfg)
		if err := r.Restore(s); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		end, err := r.RunUntilDelivered(total, 2_000_000)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if end != endRef {
			t.Errorf("cut %d: finished at cycle %d, want %d", cut, end, endRef)
		}
		fin, err := r.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := mustJSON(t, fin); string(got) != string(refBytes) {
			t.Errorf("cut %d: final state differs from uninterrupted run", cut)
		}
	}
}

// TestSnapshotGuards: the refusal conditions.
func TestSnapshotGuards(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	m := MustNew(cfg)
	if _, err := m.Snapshot(); err == nil {
		t.Error("snapshot with the invariant suite attached should fail")
	}

	cfg2 := DefaultConfig(topo.Shape3(2, 2, 2))
	m2 := MustNew(cfg2)
	m2.Engine.Run(10)
	s, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m3 := MustNew(cfg2)
	m3.Engine.Run(1)
	if err := m3.Restore(s); err == nil {
		t.Error("restore into a non-fresh machine should fail")
	}
	bad := *s
	bad.Chans = bad.Chans[:1]
	m4 := MustNew(cfg2)
	if err := m4.Restore(&bad); err == nil {
		t.Error("restore with a channel count mismatch should fail")
	}
}
