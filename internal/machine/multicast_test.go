package machine

import (
	"testing"

	"anton2/internal/multicast"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// buildGroup compiles a Figure 3 style plane-neighborhood multicast group.
func buildGroup(t *testing.T, shape topo.TorusShape, root topo.NodeCoord, order topo.DimOrder) (*multicast.Compiled, []topo.NodeEp) {
	t.Helper()
	dests := multicast.PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 0)
	// Add a second endpoint copy on two of the nodes (MD destination sets
	// carry several copies per node, Section 2.3).
	dests = append(dests, topo.NodeEp{Node: dests[0].Node, Ep: 5}, topo.NodeEp{Node: dests[3].Node, Ep: 7})
	tree := multicast.Build(shape, root, dests, order, 0)
	return tree.Compile(shape), dests
}

// TestMulticastDeliversAllCopies drives a multicast packet through the
// cycle simulator and verifies each destination endpoint receives exactly
// one copy while the torus carries only the tree's hop count — the
// bandwidth savings of Section 2.3 realized in simulation.
func TestMulticastDeliversAllCopies(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	root := topo.NodeCoord{X: 1, Y: 1, Z: 0}
	group, dests := buildGroup(t, shape, root, topo.AllDimOrders[0])

	cfg := DefaultConfig(shape)
	cfg.Multicast = map[int]*multicast.Compiled{7: group}
	m := MustNew(cfg)

	got := map[topo.NodeEp]int{}
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for ep := 0; ep < topo.NumEndpoints; ep++ {
			ne := topo.NodeEp{Node: n, Ep: ep}
			m.Endpoint(ne).OnDeliver = func(p *packet.Packet, now uint64) bool {
				if p.MGroup != 7 {
					t.Errorf("delivered packet has group %d, want 7", p.MGroup)
				}
				got[topo.NodeEp{Node: n, Ep: p.Dst.Ep}]++
				return false
			}
		}
	}

	src := topo.NodeEp{Node: shape.NodeID(root), Ep: m.Topo.Chip.CoreEndpoint(topo.MeshCoord{U: 1, V: 1})}
	want := m.InjectMulticast(src, 7, route.ClassRequest, 0)
	if want != len(dests) {
		t.Fatalf("group reports %d deliveries, destination set has %d", want, len(dests))
	}
	if _, err := m.RunUntilDelivered(uint64(want), 500_000); err != nil {
		t.Fatalf("multicast run: %v (delivered %d/%d)", err, m.Delivered(), want)
	}

	for _, d := range dests {
		if got[d] != 1 {
			t.Errorf("destination %v received %d copies, want 1", d, got[d])
		}
	}

	// Inter-node bandwidth: total torus flits must equal the tree's hop
	// count, not the (larger) unicast total.
	var torusFlits uint64
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	for i := base; i < m.Topo.NumChannels(); i++ {
		torusFlits += m.Chan(i).Sent
	}
	tree := multicast.Build(shape, root, dests, topo.AllDimOrders[0], 0)
	if torusFlits != uint64(tree.TorusHops()) {
		t.Errorf("torus carried %d flits, want tree's %d hops", torusFlits, tree.TorusHops())
	}
	uni := multicast.UnicastHops(shape, root, dests)
	if torusFlits >= uint64(uni) {
		t.Errorf("multicast used %d torus flits, unicast would use %d; no savings realized", torusFlits, uni)
	}
}

// TestMulticastAllOrdersAndRoots exercises every dimension order from
// several roots, including wraparound trees.
func TestMulticastAllOrdersAndRoots(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	for _, order := range topo.AllDimOrders {
		for _, root := range []topo.NodeCoord{{X: 0, Y: 0, Z: 0}, {X: 3, Y: 3, Z: 1}} {
			group, _ := buildGroup(t, shape, root, order)
			cfg := DefaultConfig(shape)
			cfg.Multicast = map[int]*multicast.Compiled{0: group}
			m := MustNew(cfg)
			src := topo.NodeEp{Node: shape.NodeID(root), Ep: 0}
			want := m.InjectMulticast(src, 0, route.ClassReply, 1)
			if _, err := m.RunUntilDelivered(uint64(want), 500_000); err != nil {
				t.Fatalf("order %v root %v: %v (delivered %d/%d)", order, root, err, m.Delivered(), want)
			}
		}
	}
}

// TestMulticastUnderLoad floods the machine with background unicast traffic
// while repeatedly multicasting, checking deadlock freedom of the combined
// traffic (each tree path is a valid unicast route, so the Section 2.5
// analysis covers it).
func TestMulticastUnderLoad(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	root := topo.NodeCoord{X: 2, Y: 2, Z: 1}
	group, _ := buildGroup(t, shape, root, topo.AllDimOrders[2])
	cfg := DefaultConfig(shape)
	cfg.Multicast = map[int]*multicast.Compiled{3: group}
	m := MustNew(cfg)

	rng := newTestRNG()
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range m.Topo.Chip.CoreEndpoints() {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < 16; i++ {
				dst := randomOtherCore(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	src := topo.NodeEp{Node: shape.NodeID(root), Ep: 1}
	for i := 0; i < 8; i++ {
		total += uint64(m.InjectMulticast(src, 3, route.ClassRequest, 0))
	}
	if _, err := m.RunUntilDelivered(total, 3_000_000); err != nil {
		t.Fatalf("multicast under load: %v (delivered %d/%d)", err, m.Delivered(), total)
	}
}
