package machine

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"anton2/internal/fabric"
	"anton2/internal/fault"
	"anton2/internal/packet"
	"anton2/internal/sim"
)

// This file wires the internal/fault model into the machine: a faultLayer
// component that drives the injector (stall transitions, credit resyncs,
// permanent outages), and per-torus-link rlink state implementing the
// go-back-N reliable-link protocol at the channel adapters.
//
// The layer follows the same nil-guarded, zero-cost-off discipline as
// checking and telemetry: with Cfg.Fault == nil no rlink exists, every hook
// site is a single predicted branch, and simulation results are bit-identical
// to a build without the layer.

// linkCtrl is one ack/nack control message on a reliable link's reverse
// channel. Control messages ride a lossless pipe: real hardware protects
// them with their own CRC and repeats cumulative state, so modeling their
// loss adds latency but no new protocol states.
type linkCtrl struct {
	seq  uint64 // the receiver's next expected sequence (cumulative)
	nack bool
}

// frameMeta is the link-layer framing (sequence number, CRC verdict, wire
// VC) of one in-flight frame. It travels in a FIFO kept in lockstep with the
// channel's packet pipe rather than in the packet itself: a retransmission
// may duplicate a packet pointer whose routing state has already advanced
// downstream, so per-transmission state must live outside the packet.
type frameMeta struct {
	seq     uint64
	vc      uint8
	corrupt bool
}

// winEntry is one unacknowledged frame held in the sender's retransmission
// buffer.
type winEntry struct {
	p  *packet.Packet
	vc uint8
}

// stagedCtrl is one ack/nack buffered on a shard-crossing link until the
// phase barrier, with the arrival cycle it would have had if sent directly.
type stagedCtrl struct {
	at uint64
	c  linkCtrl
}

// rlink is the reliable-link state for one torus channel: the go-back-N
// sender (owned by the upstream adapter) and receiver (owned by the
// downstream adapter), the retransmission window, the in-flight frame
// metadata FIFO, and the reverse control pipe.
type rlink struct {
	link int // dense torus link index (injector stream index)
	ch   *fabric.Channel

	snd fault.Sender
	rcv fault.Receiver

	win      []winEntry // frames base..next-1, in sequence order
	meta     []frameMeta
	metaHead int

	ctrl *sim.Pipe[linkCtrl] // receiver -> sender ack/nack channel

	// Active-set binding of the sender adapter, so acks wake it.
	sndE  *sim.Engine
	sndID int32

	// deferred: the link crosses a shard boundary; frame metadata and
	// control messages are staged by the owning shard and flushed at the
	// phase barrier (in lockstep with the channel's staged packets).
	deferred  bool
	metaStage []frameMeta
	ctrlStage []stagedCtrl
}

func (rl *rlink) pushMeta(seq uint64, vc uint8, corrupt bool) {
	if rl.deferred {
		rl.metaStage = append(rl.metaStage, frameMeta{seq: seq, vc: vc, corrupt: corrupt})
		return
	}
	rl.meta = append(rl.meta, frameMeta{seq: seq, vc: vc, corrupt: corrupt})
}

// sendCtrl issues one ack/nack toward the sender adapter, waking it at the
// message's arrival cycle; on shard-crossing links the message is staged for
// the barrier flush instead.
func (rl *rlink) sendCtrl(now uint64, c linkCtrl) {
	at := now + rl.ctrl.Latency()
	if rl.deferred {
		rl.ctrlStage = append(rl.ctrlStage, stagedCtrl{at: at, c: c})
		return
	}
	rl.ctrl.Send(now, c)
	if rl.sndE != nil {
		rl.sndE.Wake(int(rl.sndID), at)
	}
}

// flush moves staged frame metadata and control messages into the live
// structures. Coordinator-only, at the phase barrier; the channel's staged
// packets flush in the same barrier, keeping the meta FIFO in lockstep.
func (rl *rlink) flush() {
	if len(rl.metaStage) > 0 {
		rl.meta = append(rl.meta, rl.metaStage...)
		rl.metaStage = rl.metaStage[:0]
	}
	for i := range rl.ctrlStage {
		s := &rl.ctrlStage[i]
		rl.ctrl.SendAt(s.at, s.c)
		if rl.sndE != nil {
			rl.sndE.Wake(int(rl.sndID), s.at)
		}
	}
	rl.ctrlStage = rl.ctrlStage[:0]
}

// popMeta pairs the next arriving frame with its metadata. The packet pipe
// and the metadata FIFO are both FIFO and written together, so they stay in
// lockstep by construction.
func (rl *rlink) popMeta() frameMeta {
	mt := rl.meta[rl.metaHead]
	rl.metaHead++
	if rl.metaHead == len(rl.meta) {
		rl.meta = rl.meta[:0]
		rl.metaHead = 0
	} else if rl.metaHead > 64 && rl.metaHead*2 >= len(rl.meta) {
		n := copy(rl.meta, rl.meta[rl.metaHead:])
		rl.meta = rl.meta[:n]
		rl.metaHead = 0
	}
	return mt
}

// live returns the number of window frames the receiver has not yet
// accepted. The conservation census counts these instead of the channel
// pipe, whose contents may include duplicates of one logical packet.
func (rl *rlink) live() int {
	lo := rl.snd.Base()
	if e := rl.rcv.Expected(); e > lo {
		lo = e
	}
	return int(rl.snd.Next() - lo)
}

// quiet reports whether the link's protocol state is fully drained.
func (rl *rlink) quiet() bool {
	return rl.snd.Quiet() && rl.ctrl.Empty()
}

// faultLayer owns the injector and the per-link reliability state. It is
// registered as the first engine component — and is the engine's serial
// prefix under sharding — so stall transitions and credit resyncs precede
// all adapter ticks within a cycle.
type faultLayer struct {
	m    *Machine
	spec fault.Spec
	inj  *fault.Injector
	cid  int // engine component id

	// cnt holds per-shard counter slots so shard workers increment fault
	// counters without contention: slot s accumulates events observed by
	// shard s's adapters, and the extra last slot (injSlot) takes
	// injection-path and coordinator events. counters() sums them.
	cnt []fault.Counters
	// recvShard maps a dense torus link index to the shard of its receiving
	// adapter — the component that evaluates DropCredit for that link.
	recvShard []int32

	torusBase  int
	links      []*fabric.Channel // dense torus index -> channel
	rlinks     []*rlink          // dense torus index -> reliable link; nil for failed links
	failed     map[int]bool      // global channel ids of permanent outages
	failedList []int             // same, sorted

	// mu guards fatal and the injection counter slot: MakePacket may run on
	// any shard worker (endpoint traffic sources execute inside Tick).
	mu sync.Mutex
	// fatal is set when a link exhausts its retry budget or a destination
	// becomes unreachable; RunUntilDelivered surfaces it instead of
	// spinning into the watchdog.
	fatal error
	// fatalSh holds each shard's first fatal until the phase barrier. If
	// several links die in the same cycle, serial stepping keeps the one
	// from the lowest component id; resolveFatal reproduces that by scanning
	// the slots in shard order, so the surfaced error does not depend on
	// worker scheduling.
	fatalSh []error
}

// injSlot is the counter slot for injection-path and coordinator events.
func (f *faultLayer) injSlot() int { return len(f.cnt) - 1 }

// counters sums the per-shard slots into one machine-wide snapshot.
func (f *faultLayer) counters() fault.Counters {
	var total fault.Counters
	for i := range f.cnt {
		total.Add(f.cnt[i])
	}
	return total
}

// setFatal records the first fatal protocol failure.
func (f *faultLayer) setFatal(err error) {
	f.mu.Lock()
	if f.fatal == nil {
		f.fatal = err
	}
	f.mu.Unlock()
}

// setFatalShard records a fatal failure observed by one shard's adapters.
// Unsharded runs set the machine-wide fatal directly (tick order already
// picks the serial winner); sharded runs stage per shard and resolve at the
// barrier.
func (f *faultLayer) setFatalShard(shard int, err error) {
	if !f.m.sharded {
		f.setFatal(err)
		return
	}
	if f.fatalSh[shard] == nil {
		f.fatalSh[shard] = err
	}
}

// resolveFatal promotes the lowest-shard staged fatal. Coordinator-only, at
// the phase barrier.
func (f *faultLayer) resolveFatal() {
	if f.fatal != nil {
		return
	}
	for _, e := range f.fatalSh {
		if e != nil {
			f.fatal = e
			return
		}
	}
}

func newFaultLayer(m *Machine, spec fault.Spec) *faultLayer {
	spec = spec.Normalized()
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	n := len(m.chans) - base
	f := &faultLayer{
		m:         m,
		spec:      spec,
		inj:       fault.NewInjector(spec, m.Cfg.Seed, n),
		cnt:       make([]fault.Counters, m.shardCount+1),
		recvShard: make([]int32, n),
		fatalSh:   make([]error, m.shardCount),
		torusBase: base,
		links:     make([]*fabric.Channel, n),
		rlinks:    make([]*rlink, n),
		failed:    map[int]bool{},
	}
	for i := 0; i < n; i++ {
		f.links[i] = m.chans[base+i]
	}
	for _, li := range f.inj.FailedLinks(n) {
		ch := f.links[li]
		f.failed[ch.ID] = true
		f.failedList = append(f.failedList, ch.ID)
		ch.SetStall(math.MaxUint64)
		f.cnt[f.injSlot()].LinksFailed++
	}
	for i, ch := range f.links {
		if f.failed[ch.ID] {
			continue
		}
		ch.CensusExempt = true
		timeout := spec.TimeoutCycles
		if timeout == 0 {
			// Cover the worst-case ack round trip (serialization + two
			// wire flights + receiver turnaround) plus a stall episode.
			timeout = 8*ch.Latency() + 4*spec.StallCycles + 64
		}
		f.rlinks[i] = &rlink{
			link: i,
			ch:   ch,
			snd:  fault.NewSender(spec.Window, timeout, spec.RetryLimit),
			ctrl: sim.NewPipe[linkCtrl](ch.Latency()),
		}
		if spec.CreditLossRate > 0 {
			li := i
			ch.EnableCreditLoss(func(vc, flits uint8) bool {
				if f.inj.DropCreditNext(li) {
					// Credit returns run on the receiving adapter's
					// shard; its counter slot is contention-free.
					f.cnt[f.recvShard[li]].CreditsDropped += uint64(flits)
					return true
				}
				return false
			})
		}
	}
	return f
}

// rlinkFor returns the reliable link for a global torus channel id, or nil
// for failed links.
func (f *faultLayer) rlinkFor(chanID int) *rlink {
	return f.rlinks[chanID-f.torusBase]
}

// Tick implements sim.Component: per-cycle stall transitions and the
// periodic credit resync audit. The layer ticks inside the engine's serial
// prefix, so its effects are visible to adapters in the same cycle — exactly
// as in scan mode, where it is the first-registered component.
func (f *faultLayer) Tick(now uint64) {
	if f.spec.StallRate > 0 {
		for i, ch := range f.links {
			if f.rlinks[i] == nil || ch.Stalled(now) {
				continue
			}
			if f.inj.StallNext(i) {
				ch.SetStall(now + f.spec.StallCycles)
				f.cnt[f.injSlot()].StallsInjected++
			}
		}
	}
	if f.spec.CreditLossRate > 0 && now%f.spec.ResyncInterval == 0 {
		for i, ch := range f.links {
			if f.rlinks[i] == nil {
				continue
			}
			if n := ch.RestoreLostCredits(); n > 0 {
				f.cnt[f.injSlot()].CreditsRestored += uint64(n)
				// The restored credits belong to the channel's sender;
				// wake it this cycle so it can use them, as it would
				// when scanned.
				ch.WakeSender(now)
			}
		}
	}
	// Self-arm. Stall injection draws once per healthy link per cycle, so
	// per-cycle draws must continue (this also pins the engine to stepping
	// every cycle, which is what keeps the draw sequence identical to scan
	// mode). Credit resync audits only act on ResyncInterval multiples;
	// corrupt-only and outage-only specs need no coordinator ticks at all —
	// their draws happen at the adapters' send and credit-return sites.
	switch {
	case f.spec.StallRate > 0:
		f.m.Engine.Wake(f.cid, now+1)
	case f.spec.CreditLossRate > 0:
		f.m.Engine.Wake(f.cid, now-now%f.spec.ResyncInterval+f.spec.ResyncInterval)
	}
}

// windowLive sums unaccepted window frames across all reliable links.
func (f *faultLayer) windowLive() int {
	total := 0
	for _, rl := range f.rlinks {
		if rl != nil {
			total += rl.live()
		}
	}
	return total
}

// quiet reports whether every reliable link has drained its protocol state
// and no dropped credits await resync.
func (f *faultLayer) quiet() bool {
	for i, rl := range f.rlinks {
		if rl == nil {
			continue
		}
		if !rl.quiet() || f.links[i].LostCredits() > 0 {
			return false
		}
	}
	return true
}

// Status is a snapshot of the machine's fault state for reporting.
type FaultStatus struct {
	FailedLinks []int          // global channel ids of permanent outages
	Counters    fault.Counters // protocol and injector event counts
	Degraded    bool           // the run survived permanent faults or reroutes
	Fatal       error          // retry budget exhaustion or unreachability, if any
}

// degraded classifies the run: link outages and emergency reroutes concede
// degradation for static strategies, but a fault-aware strategy
// (route.FaultRouter) absorbs outages as part of its algorithm — only an
// emergency reroute (which it never takes) would degrade it.
func (m *Machine) degraded(c fault.Counters) bool {
	if m.faultAware {
		return c.Rerouted > 0
	}
	return c.LinksFailed > 0 || c.Rerouted > 0
}

// FaultStatus returns the current fault-layer snapshot, or nil when no fault
// spec is attached.
func (m *Machine) FaultStatus() *FaultStatus {
	if m.flt == nil {
		return nil
	}
	c := m.flt.counters()
	return &FaultStatus{
		FailedLinks: append([]int(nil), m.flt.failedList...),
		Counters:    c,
		Degraded:    m.degraded(c),
		Fatal:       m.flt.fatal,
	}
}

// deadlockDetail renders the per-router blocked-VC summary attached to
// sim.ErrDeadlock snapshots. It runs only on the watchdog failure path.
func (m *Machine) deadlockDetail() string {
	var b strings.Builder
	const maxLines = 24
	lines := 0
	add := func(format string, args ...any) {
		if lines < maxLines {
			fmt.Fprintf(&b, format, args...)
		}
		lines++
	}
	for _, node := range m.nodes {
		for ri, r := range node.Routers {
			for pi := range r.ports {
				for vci := range r.ports[pi].vcs {
					if n := r.ports[pi].vcs[vci].flits(); n > 0 {
						add("node %d router %d port %d vc %d: %d flits blocked\n", node.ID, ri, pi, vci, n)
					}
				}
			}
		}
		for ai, a := range node.Adapters {
			for vci := range a.eg {
				if n := a.eg[vci].flits(); n > 0 {
					add("node %d adapter %d egress vc %d: %d flits blocked\n", node.ID, ai, vci, n)
				}
			}
			for vci := range a.ing {
				if n := a.ing[vci].flits(); n > 0 {
					add("node %d adapter %d ingress vc %d: %d flits blocked\n", node.ID, ai, vci, n)
				}
			}
		}
		for ei, e := range node.Endpoints {
			if n := e.Pending(); n > 0 {
				add("node %d endpoint %d: %d pkts pending injection\n", node.ID, ei, n)
			}
		}
	}
	if m.flt != nil {
		for _, rl := range m.flt.rlinks {
			if rl != nil && rl.snd.Outstanding() > 0 {
				add("link %s: %d frames unacked (attempts %d)\n", rl.ch.Name, rl.snd.Outstanding(), rl.snd.Attempts())
			}
		}
		for _, id := range m.flt.failedList {
			add("link %s: permanently failed\n", m.chans[id].Name)
		}
	}
	if lines > maxLines {
		fmt.Fprintf(&b, "... and %d more blocked units\n", lines-maxLines)
	}
	return strings.TrimRight(b.String(), "\n")
}
