package machine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"anton2/internal/fault"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/sim"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

// injectUniform loads every core endpoint with perEp uniform-random packets
// and returns the total injected.
func injectUniform(m *Machine, perEp int, seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	pat := traffic.Uniform{}
	cores := m.Topo.Chip.CoreEndpoints()
	total := uint64(0)
	for n := 0; n < m.Topo.NumNodes(); n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			for i := 0; i < perEp; i++ {
				dst := pat.Dest(m.Topo, src, rng)
				m.Endpoint(src).Inject(m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng))
				total++
			}
		}
	}
	return total
}

// TestFaultCorruptionAllDelivered is the tentpole property test: under
// transient flit corruption every corrupted frame is detected and
// retransmitted, every packet is delivered exactly once, and the full
// invariant suite (flit conservation, credit accounting) holds throughout.
func TestFaultCorruptionAllDelivered(t *testing.T) {
	for _, rate := range []float64{0.005, 0.05} {
		t.Run(fmt.Sprintf("rate=%g", rate), func(t *testing.T) {
			cfg := DefaultConfig(topo.Shape3(2, 2, 2))
			cfg.Check = true
			cfg.Fault = &fault.Spec{CorruptRate: rate}
			m := MustNew(cfg)
			total := injectUniform(m, 8, 42)
			if _, err := m.RunUntilDelivered(total, 4_000_000); err != nil {
				t.Fatalf("after %d/%d deliveries: %v", m.Delivered(), total, err)
			}
			if m.Delivered() != total {
				t.Fatalf("delivered %d, want %d", m.Delivered(), total)
			}
			if err := m.FinishChecks(); err != nil {
				t.Fatalf("invariants violated under corruption: %v", err)
			}
			st := m.FaultStatus()
			if st == nil {
				t.Fatal("FaultStatus() = nil with fault spec attached")
			}
			c := st.Counters
			if c.CorruptInjected == 0 {
				t.Fatal("no corruption injected; rate too low for this schedule")
			}
			if c.CorruptDetected != c.CorruptInjected {
				t.Errorf("detected %d of %d injected corruptions, want all", c.CorruptDetected, c.CorruptInjected)
			}
			if c.Retransmits < c.CorruptDetected {
				t.Errorf("retransmits %d < detected corruptions %d; go-back-N must replay every loss", c.Retransmits, c.CorruptDetected)
			}
		})
	}
}

// TestFaultStallsAndCreditLoss exercises the remaining transient fault kinds
// together: link stalls and dropped credit messages, plus background
// corruption. Everything must still deliver, every dropped credit must be
// restored by the resync audit, and the invariant suite must stay clean.
func TestFaultStallsAndCreditLoss(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	cfg.Fault = &fault.Spec{
		CorruptRate:    0.01,
		StallRate:      0.002,
		StallCycles:    24,
		CreditLossRate: 0.02,
		ResyncInterval: 512,
	}
	m := MustNew(cfg)
	total := injectUniform(m, 8, 7)
	if _, err := m.RunUntilDelivered(total, 4_000_000); err != nil {
		t.Fatalf("after %d/%d deliveries: %v", m.Delivered(), total, err)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("invariants violated under stalls + credit loss: %v", err)
	}
	c := m.FaultStatus().Counters
	if c.StallsInjected == 0 {
		t.Error("no stalls injected; rate too low for this schedule")
	}
	if c.CreditsDropped == 0 {
		t.Error("no credits dropped; rate too low for this schedule")
	}
	if c.CreditsRestored != c.CreditsDropped {
		t.Errorf("restored %d of %d dropped credits, want all (resync audit leak)", c.CreditsRestored, c.CreditsDropped)
	}
}

// TestFaultPermanentLinkDegraded: with permanent link outages the machine
// reroutes injected traffic around the failed links and completes in a
// degraded state instead of deadlocking.
func TestFaultPermanentLinkDegraded(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Check = true
	cfg.Fault = &fault.Spec{FailLinks: 2}
	m := MustNew(cfg)
	total := injectUniform(m, 8, 13)
	if _, err := m.RunUntilDelivered(total, 4_000_000); err != nil {
		t.Fatalf("degraded run failed after %d/%d deliveries: %v", m.Delivered(), total, err)
	}
	if err := m.FinishChecks(); err != nil {
		t.Fatalf("invariants violated in degraded run: %v", err)
	}
	st := m.FaultStatus()
	if !st.Degraded {
		t.Error("run with failed links not reported degraded")
	}
	if got := len(st.FailedLinks); got != 2 {
		t.Fatalf("FailedLinks = %d entries, want 2", got)
	}
	for _, id := range st.FailedLinks {
		if sent := m.Chan(id).FlitsSent(); sent != 0 {
			t.Errorf("failed link %s carried %d flits, want 0", m.Chan(id).Name, sent)
		}
	}
	if st.Counters.Rerouted == 0 {
		t.Error("no packets rerouted; with 2 failed links on a 2x2x2 torus some preferred routes must have been steered away")
	}
	if st.Counters.Unroutable != 0 {
		t.Errorf("%d unroutable packets on a single-outage-per-slice schedule", st.Counters.Unroutable)
	}
}

// TestFaultBudgetExhaustion: a hopeless link (every frame corrupted) must
// end the run with a degraded BudgetError, not a panic or a watchdog
// deadlock.
func TestFaultBudgetExhaustion(t *testing.T) {
	cfg := DefaultConfig(topo.Shape3(2, 2, 2))
	cfg.Fault = &fault.Spec{CorruptRate: 1, RetryLimit: 4}
	m := MustNew(cfg)
	total := injectUniform(m, 2, 3)
	_, err := m.RunUntilDelivered(total, 4_000_000)
	var be *fault.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetError", err)
	}
	if !be.Degraded() {
		t.Error("budget error must classify as degraded")
	}
	var deg interface{ Degraded() bool }
	if !errors.As(err, &deg) {
		t.Error("budget error must satisfy the Degraded interface for the experiment harness")
	}
}

// TestFaultDeterminism: identical configs (including the full fault mix)
// produce identical completion cycles, flit counts, and fault counters.
func TestFaultDeterminism(t *testing.T) {
	run := func() (uint64, uint64, fault.Counters) {
		cfg := DefaultConfig(topo.Shape3(2, 2, 2))
		cfg.Seed = 9
		cfg.Fault = &fault.Spec{
			CorruptRate:    0.02,
			StallRate:      0.001,
			StallCycles:    16,
			CreditLossRate: 0.01,
			FailLinks:      1,
		}
		m := MustNew(cfg)
		total := injectUniform(m, 6, 21)
		end, err := m.RunUntilDelivered(total, 4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, ch := range m.chans {
			sum += ch.Sent * uint64(ch.ID+1)
		}
		return end, sum, m.FaultStatus().Counters
	}
	e1, s1, c1 := run()
	e2, s2, c2 := run()
	if e1 != e2 || s1 != s2 || c1 != c2 {
		t.Fatalf("nondeterministic fault run: (%d,%d,%+v) vs (%d,%d,%+v)", e1, s1, c1, e2, s2, c2)
	}
}

// TestMachineDeadlockDetail: a machine wedged by stalling every torus link
// must surface the per-component blocked summary in its deadlock error.
func TestMachineDeadlockDetail(t *testing.T) {
	m := MustNew(DefaultConfig(topo.Shape3(2, 2, 2)))
	base := m.Topo.NumNodes() * m.Topo.NumIntraChans()
	for i := base; i < len(m.chans); i++ {
		m.chans[i].SetStall(math.MaxUint64)
	}
	total := injectUniform(m, 2, 5)
	_, err := m.RunUntilDelivered(total, 4_000_000)
	var de *sim.ErrDeadlock
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *sim.ErrDeadlock", err)
	}
	if de.Detail == "" {
		t.Fatal("deadlock error carries no diagnostic snapshot")
	}
	if de.LastProgress >= de.Cycle {
		t.Errorf("LastProgress %d not before deadlock cycle %d", de.LastProgress, de.Cycle)
	}
}

// steadyStateMachine drives a machine with endless allocation-free random
// sources into saturation, for the hot-path alloc pin below.
func steadyStateMachine(tb testing.TB, cfg Config) *Machine {
	tb.Helper()
	m := MustNew(cfg)
	nodes := m.Topo.NumNodes()
	cores := m.Topo.Chip.CoreEndpoints()
	for n := 0; n < nodes; n++ {
		for _, ep := range cores {
			src := topo.NodeEp{Node: n, Ep: ep}
			rng := rand.New(rand.NewSource(int64(1 + n*64 + ep)))
			e := m.Endpoint(src)
			e.Source = func() *packet.Packet {
				dn := rng.Intn(nodes - 1)
				if dn >= src.Node {
					dn++
				}
				dst := topo.NodeEp{Node: dn, Ep: cores[rng.Intn(len(cores))]}
				return m.MakeRandomPacket(src, dst, route.ClassRequest, 0, rng)
			}
		}
	}
	for i := 0; i < 4096; i++ {
		m.Engine.Step()
	}
	return m
}

// TestStepFaultOffZeroAllocs pins the zero-cost-when-off contract for the
// fault layer: with Cfg.Fault nil, a steady-state simulation cycle must not
// allocate — the reliability hooks must stay behind nil guards.
func TestStepFaultOffZeroAllocs(t *testing.T) {
	m := steadyStateMachine(t, DefaultConfig(topo.Shape3(2, 2, 2)))
	if m.flt != nil {
		t.Fatal("fault layer attached without a spec")
	}
	if avg := testing.AllocsPerRun(500, func() { m.Engine.Step() }); avg != 0 {
		t.Errorf("fault-off Engine.Step allocates %.2f objects/cycle, want 0", avg)
	}
}
