package machine

import (
	"fmt"

	"anton2/internal/arbiter"
	"anton2/internal/fabric"
	"anton2/internal/fault"
	"anton2/internal/packet"
	"anton2/internal/route"
	"anton2/internal/topo"
)

// This file externalizes the machine's complete mutable state for
// checkpointing. A Snapshot taken between engine steps, restored into a
// freshly built machine with the same Config, continues the simulation
// bit-identically to the uninterrupted run — across engine modes and shard
// counts, because between steps all staged cross-shard traffic has been
// flushed and snapshots are therefore engine- and shard-invariant.
//
// Packets are interned into a registry by pointer identity: the same
// *packet.Packet may legally sit in a retransmission window and in a channel
// pipe at once (go-back-N Resend), and collapsing such aliases on restore is
// required for the link layer to release the right buffers. The registry is
// built by traversing holders in a fixed order (per node: routers, adapters,
// endpoints; then channels; then retransmission windows), so snapshot
// encoding is deterministic.
//
// Out of scope by design: the free-packet pool (unobservable — pooled
// packets are fully Reset on reuse and IDs come from NextID), the invariant
// suite and telemetry (Snapshot refuses to run with either attached), and
// per-packet traces (refused likewise; tracing is a diagnostic mode).

// PacketState is one registered packet's full field set.
type PacketState struct {
	ID          uint64      `json:"id"`
	Src         topo.NodeEp `json:"src"`
	Dst         topo.NodeEp `json:"dst"`
	Size        uint8       `json:"size"`
	Route       route.State `json:"route"`
	PatternID   uint8       `json:"pattern,omitempty"`
	MGroup      int         `json:"mgroup"`
	CurVC       uint8       `json:"cur_vc"`
	InjectedAt  uint64      `json:"injected_at"`
	DeliveredAt uint64      `json:"delivered_at,omitempty"`
	ArrivedAt   uint64      `json:"arrived_at,omitempty"`
	NotBefore   uint64      `json:"not_before,omitempty"`
	TorusHops   uint8       `json:"torus_hops,omitempty"`
	Payload     []byte      `json:"payload,omitempty"`
	SourceRoute []uint8     `json:"source_route,omitempty"`
	SRIdx       int         `json:"sr_idx,omitempty"`
	Circulate   bool        `json:"circulate,omitempty"`
}

// VCQState is one virtual-channel queue: packet registry indices plus the
// head-of-line route decision.
type VCQState struct {
	Pkts     []int  `json:"pkts,omitempty"`
	Routed   bool   `json:"routed,omitempty"`
	OutPort  int8   `json:"out_port,omitempty"`
	OutVC    uint8  `json:"out_vc,omitempty"`
	ReadyAt  uint64 `json:"ready_at,omitempty"`
	Branches []int  `json:"branches,omitempty"`
}

// RouterState is one mesh router's queues, arbitration positions, and
// crossbar occupancy.
type RouterState struct {
	Ports  [][]VCQState    `json:"ports"`
	SA1    []arbiter.State `json:"sa1"`
	SA2    []arbiter.State `json:"sa2"`
	InBusy []uint64        `json:"in_busy"`
	Queued int             `json:"queued,omitempty"`
}

// AdapterState is one channel adapter's queues, arbitration positions, and
// diagnostic counters.
type AdapterState struct {
	Eg        []VCQState    `json:"eg"`
	Ing       []VCQState    `json:"ing"`
	EgArb     arbiter.State `json:"eg_arb"`
	InArb     arbiter.State `json:"in_arb"`
	Queued    int           `json:"queued,omitempty"`
	EgSent    uint64        `json:"eg_sent,omitempty"`
	EgStarved uint64        `json:"eg_starved,omitempty"`
	InSent    uint64        `json:"in_sent,omitempty"`
	InStarved uint64        `json:"in_starved,omitempty"`
}

// EndpointState is one endpoint adapter's software injection queue and send
// pipeline position. Source and OnDeliver closures cannot be serialized; the
// driver that owns them records its own progress and reinstalls them after
// Restore.
type EndpointState struct {
	SWQ   []int  `json:"swq,omitempty"`
	Sched uint64 `json:"sched,omitempty"`
}

// NodeState groups one node's component states in registration order.
type NodeState struct {
	Routers   []RouterState   `json:"routers"`
	Adapters  []AdapterState  `json:"adapters"`
	Endpoints []EndpointState `json:"endpoints"`
}

// WinEntryState is one unacknowledged frame in a go-back-N window.
type WinEntryState struct {
	Pkt int   `json:"pkt"`
	VC  uint8 `json:"vc"`
}

// FrameMetaState is the link-layer framing of one in-flight frame.
type FrameMetaState struct {
	Seq     uint64 `json:"seq"`
	VC      uint8  `json:"vc"`
	Corrupt bool   `json:"corrupt,omitempty"`
}

// CtrlEntryState is one in-flight ack/nack on a reverse control pipe.
type CtrlEntryState struct {
	At   uint64 `json:"at"`
	Seq  uint64 `json:"seq"`
	Nack bool   `json:"nack,omitempty"`
}

// RlinkState is one reliable link's protocol position.
type RlinkState struct {
	Snd  fault.SenderState   `json:"snd"`
	Rcv  fault.ReceiverState `json:"rcv"`
	Win  []WinEntryState     `json:"win,omitempty"`
	Meta []FrameMetaState    `json:"meta,omitempty"`
	Ctrl []CtrlEntryState    `json:"ctrl,omitempty"`
}

// FaultState is the fault layer's mutable state: injector stream positions,
// machine-wide counters (per-shard slots are summed — the split is a
// performance artifact, not simulation state), and per-link protocol state
// (nil entries are permanently failed links, re-derived from the seed).
type FaultState struct {
	Streams  fault.InjectorState `json:"streams"`
	Counters fault.Counters      `json:"counters"`
	Rlinks   []*RlinkState       `json:"rlinks"`
}

// Snapshot is the machine's complete mutable state at cycle Now, where Now is
// the next cycle the engine would process.
type Snapshot struct {
	Now       uint64                `json:"now"`
	Injected  uint64                `json:"injected"`
	Delivered uint64                `json:"delivered"`
	NextID    uint64                `json:"next_id"`
	Packets   []PacketState         `json:"packets"`
	Nodes     []NodeState           `json:"nodes"`
	Chans     []fabric.ChannelState `json:"chans"`
	Fault     *FaultState           `json:"fault,omitempty"`
}

// pktRegistry interns packets by pointer identity in first-seen order.
type pktRegistry struct {
	idx  map[*packet.Packet]int
	list []PacketState
	err  error
}

func (r *pktRegistry) intern(p *packet.Packet) int {
	if i, ok := r.idx[p]; ok {
		return i
	}
	i := len(r.list)
	r.idx[p] = i
	if p.Trace != nil && r.err == nil {
		r.err = fmt.Errorf("machine: packet %d has tracing enabled; traced runs cannot be checkpointed", p.ID)
	}
	r.list = append(r.list, PacketState{
		ID: p.ID, Src: p.Src, Dst: p.Dst, Size: p.Size,
		Route: p.Route, PatternID: p.PatternID, MGroup: p.MGroup, CurVC: p.CurVC,
		InjectedAt: p.InjectedAt, DeliveredAt: p.DeliveredAt, ArrivedAt: p.ArrivedAt,
		NotBefore: p.NotBefore, TorusHops: p.TorusHops,
		Payload:     append([]byte(nil), p.Payload...),
		SourceRoute: append([]uint8(nil), p.SourceRoute...),
		SRIdx:       p.SRIdx, Circulate: p.Circulate,
	})
	return i
}

func snapVCQ(q *vcq, reg *pktRegistry) VCQState {
	st := VCQState{Routed: q.routed, OutPort: q.outPort, OutVC: q.outVC, ReadyAt: q.readyAt}
	for i := q.head; i < len(q.pkts); i++ {
		st.Pkts = append(st.Pkts, reg.intern(q.pkts[i]))
	}
	for _, b := range q.branches {
		st.Branches = append(st.Branches, reg.intern(b))
	}
	return st
}

// Snapshot captures the machine's complete mutable state. It must be called
// between engine steps (never from a hook running inside one) and refuses to
// run with the invariant suite or telemetry attached, with per-packet tracing
// active, after a fatal fault, or with unflushed cross-shard traffic — the
// last cannot happen between steps, so it is a consistency check.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.checks != nil || m.tel != nil {
		return nil, fmt.Errorf("machine: checkpointing requires the invariant suite and telemetry to be off")
	}
	if m.flt != nil && m.flt.fatal != nil {
		return nil, fmt.Errorf("machine: cannot checkpoint after a fatal fault: %w", m.flt.fatal)
	}
	for _, pd := range m.pendDeliv {
		if len(pd) != 0 {
			return nil, fmt.Errorf("machine: snapshot with pending deferred deliveries")
		}
	}
	s := &Snapshot{
		Now:       m.Engine.Now(),
		Injected:  m.injected,
		Delivered: m.delivered,
		NextID:    m.nextID,
		Nodes:     make([]NodeState, len(m.nodes)),
	}
	reg := &pktRegistry{idx: make(map[*packet.Packet]int)}
	for ni, node := range m.nodes {
		ns := &s.Nodes[ni]
		ns.Routers = make([]RouterState, len(node.Routers))
		for ri, r := range node.Routers {
			rs := &ns.Routers[ri]
			rs.Ports = make([][]VCQState, len(r.ports))
			rs.SA1 = make([]arbiter.State, len(r.sa1))
			rs.SA2 = make([]arbiter.State, len(r.sa2))
			rs.InBusy = append([]uint64(nil), r.inBusy...)
			rs.Queued = r.queued
			for pi := range r.ports {
				vcs := r.ports[pi].vcs
				qs := make([]VCQState, len(vcs))
				for vci := range vcs {
					qs[vci] = snapVCQ(&vcs[vci], reg)
				}
				rs.Ports[pi] = qs
				var err error
				if rs.SA1[pi], err = arbiter.CaptureState(r.sa1[pi]); err != nil {
					return nil, err
				}
				if rs.SA2[pi], err = arbiter.CaptureState(r.sa2[pi]); err != nil {
					return nil, err
				}
			}
		}
		ns.Adapters = make([]AdapterState, len(node.Adapters))
		for ai, a := range node.Adapters {
			as := &ns.Adapters[ai]
			as.Eg = make([]VCQState, len(a.eg))
			for vci := range a.eg {
				as.Eg[vci] = snapVCQ(&a.eg[vci], reg)
			}
			as.Ing = make([]VCQState, len(a.ing))
			for vci := range a.ing {
				as.Ing[vci] = snapVCQ(&a.ing[vci], reg)
			}
			var err error
			if as.EgArb, err = arbiter.CaptureState(a.egArb); err != nil {
				return nil, err
			}
			if as.InArb, err = arbiter.CaptureState(a.inArb); err != nil {
				return nil, err
			}
			as.Queued = a.queued
			as.EgSent, as.EgStarved = a.EgSent, a.EgStarved
			as.InSent, as.InStarved = a.InSent, a.InStarved
		}
		ns.Endpoints = make([]EndpointState, len(node.Endpoints))
		for ei, e := range node.Endpoints {
			es := &ns.Endpoints[ei]
			for i := e.head; i < len(e.swq); i++ {
				es.SWQ = append(es.SWQ, reg.intern(e.swq[i]))
			}
			es.Sched = e.sched
		}
	}
	s.Chans = make([]fabric.ChannelState, len(m.chans))
	for ci, ch := range m.chans {
		st, err := ch.ExportState(reg.intern)
		if err != nil {
			return nil, err
		}
		s.Chans[ci] = st
	}
	if m.flt != nil {
		f := m.flt
		fs := &FaultState{
			Streams:  f.inj.StreamState(),
			Counters: f.counters(),
			Rlinks:   make([]*RlinkState, len(f.rlinks)),
		}
		for li, rl := range f.rlinks {
			if rl == nil {
				continue
			}
			if len(rl.metaStage) != 0 || len(rl.ctrlStage) != 0 {
				return nil, fmt.Errorf("machine: snapshot with staged link-layer traffic on %s", rl.ch.Name)
			}
			ls := &RlinkState{Snd: rl.snd.State(), Rcv: rl.rcv.State()}
			for _, w := range rl.win {
				ls.Win = append(ls.Win, WinEntryState{Pkt: reg.intern(w.p), VC: w.vc})
			}
			for _, mt := range rl.meta[rl.metaHead:] {
				ls.Meta = append(ls.Meta, FrameMetaState{Seq: mt.seq, VC: mt.vc, Corrupt: mt.corrupt})
			}
			rl.ctrl.Entries(func(at uint64, c linkCtrl) {
				ls.Ctrl = append(ls.Ctrl, CtrlEntryState{At: at, Seq: c.seq, Nack: c.nack})
			})
			fs.Rlinks[li] = ls
		}
		s.Fault = fs
	}
	if reg.err != nil {
		return nil, reg.err
	}
	s.Packets = reg.list
	return s, nil
}

func restoreVCQ(q *vcq, st VCQState, pkt func(int) (*packet.Packet, error)) error {
	q.pkts = q.pkts[:0]
	q.head = 0
	for _, i := range st.Pkts {
		p, err := pkt(i)
		if err != nil {
			return err
		}
		q.pkts = append(q.pkts, p)
	}
	q.routed, q.outPort, q.outVC, q.readyAt = st.Routed, st.OutPort, st.OutVC, st.ReadyAt
	q.branches = nil
	for _, i := range st.Branches {
		b, err := pkt(i)
		if err != nil {
			return err
		}
		q.branches = append(q.branches, b)
	}
	return nil
}

// Restore loads a snapshot into a freshly built machine with the same Config
// (same shape, scheme, seed, fault spec — engine mode and shard count are
// free to differ: snapshots are engine-invariant). It resets the engine clock
// to the snapshot cycle, fills every component, re-issues the wakes implied
// by in-flight traffic, and finally wakes every component once at the restore
// cycle — spurious ticks are no-ops by the active-set contract, so the
// blanket wake restores schedule completeness without affecting results.
func (m *Machine) Restore(s *Snapshot) error {
	if m.Engine.Now() != 0 || m.injected != 0 || m.delivered != 0 {
		return fmt.Errorf("machine: restore requires a freshly built machine")
	}
	if m.checks != nil || m.tel != nil {
		return fmt.Errorf("machine: restore requires the invariant suite and telemetry to be off")
	}
	if len(s.Nodes) != len(m.nodes) {
		return fmt.Errorf("machine: snapshot has %d nodes, machine has %d", len(s.Nodes), len(m.nodes))
	}
	if len(s.Chans) != len(m.chans) {
		return fmt.Errorf("machine: snapshot has %d channels, machine has %d", len(s.Chans), len(m.chans))
	}
	if (s.Fault != nil) != (m.flt != nil) {
		return fmt.Errorf("machine: snapshot and machine disagree on fault injection")
	}

	pkts := make([]*packet.Packet, len(s.Packets))
	for i := range s.Packets {
		ps := &s.Packets[i]
		p := &packet.Packet{
			ID: ps.ID, Src: ps.Src, Dst: ps.Dst, Size: ps.Size,
			Route: ps.Route, PatternID: ps.PatternID, MGroup: ps.MGroup, CurVC: ps.CurVC,
			InjectedAt: ps.InjectedAt, DeliveredAt: ps.DeliveredAt, ArrivedAt: ps.ArrivedAt,
			NotBefore: ps.NotBefore, TorusHops: ps.TorusHops,
			Payload:     append([]byte(nil), ps.Payload...),
			SourceRoute: append([]uint8(nil), ps.SourceRoute...),
			SRIdx:       ps.SRIdx, Circulate: ps.Circulate,
		}
		pkts[i] = p
	}
	pkt := func(i int) (*packet.Packet, error) {
		if i < 0 || i >= len(pkts) {
			return nil, fmt.Errorf("packet index %d outside registry of %d", i, len(pkts))
		}
		return pkts[i], nil
	}

	m.Engine.ResetTo(s.Now)
	m.injected, m.delivered, m.nextID = s.Injected, s.Delivered, s.NextID
	m.pool = m.pool[:0]

	for ni, node := range m.nodes {
		ns := &s.Nodes[ni]
		if len(ns.Routers) != len(node.Routers) || len(ns.Adapters) != len(node.Adapters) || len(ns.Endpoints) != len(node.Endpoints) {
			return fmt.Errorf("machine: node %d component counts differ from snapshot", ni)
		}
		for ri, r := range node.Routers {
			rs := &ns.Routers[ri]
			if len(rs.Ports) != len(r.ports) || len(rs.InBusy) != len(r.inBusy) {
				return fmt.Errorf("machine: node %d router %d shape differs from snapshot", ni, ri)
			}
			for pi := range r.ports {
				vcs := r.ports[pi].vcs
				if len(rs.Ports[pi]) != len(vcs) {
					return fmt.Errorf("machine: node %d router %d port %d VC count differs", ni, ri, pi)
				}
				for vci := range vcs {
					if err := restoreVCQ(&vcs[vci], rs.Ports[pi][vci], pkt); err != nil {
						return fmt.Errorf("machine: node %d router %d: %w", ni, ri, err)
					}
				}
				if err := arbiter.RestoreState(r.sa1[pi], rs.SA1[pi]); err != nil {
					return err
				}
				if err := arbiter.RestoreState(r.sa2[pi], rs.SA2[pi]); err != nil {
					return err
				}
			}
			copy(r.inBusy, rs.InBusy)
			r.queued = rs.Queued
		}
		for ai, a := range node.Adapters {
			as := &ns.Adapters[ai]
			if len(as.Eg) != len(a.eg) || len(as.Ing) != len(a.ing) {
				return fmt.Errorf("machine: node %d adapter %d VC count differs", ni, ai)
			}
			for vci := range a.eg {
				if err := restoreVCQ(&a.eg[vci], as.Eg[vci], pkt); err != nil {
					return fmt.Errorf("machine: node %d adapter %d: %w", ni, ai, err)
				}
			}
			for vci := range a.ing {
				if err := restoreVCQ(&a.ing[vci], as.Ing[vci], pkt); err != nil {
					return fmt.Errorf("machine: node %d adapter %d: %w", ni, ai, err)
				}
			}
			if err := arbiter.RestoreState(a.egArb, as.EgArb); err != nil {
				return err
			}
			if err := arbiter.RestoreState(a.inArb, as.InArb); err != nil {
				return err
			}
			a.queued = as.Queued
			a.EgSent, a.EgStarved = as.EgSent, as.EgStarved
			a.InSent, a.InStarved = as.InSent, as.InStarved
		}
		for ei, e := range node.Endpoints {
			es := &ns.Endpoints[ei]
			e.swq = e.swq[:0]
			e.head = 0
			for _, i := range es.SWQ {
				p, err := pkt(i)
				if err != nil {
					return fmt.Errorf("machine: node %d endpoint %d: %w", ni, ei, err)
				}
				e.swq = append(e.swq, p)
			}
			e.sched = es.Sched
		}
	}
	for ci, ch := range m.chans {
		if err := ch.RestoreState(s.Chans[ci], pkt); err != nil {
			return err
		}
	}
	if s.Fault != nil {
		f := m.flt
		if err := f.inj.RestoreStreams(s.Fault.Streams); err != nil {
			return err
		}
		if len(s.Fault.Rlinks) != len(f.rlinks) {
			return fmt.Errorf("machine: snapshot has %d reliable links, machine has %d", len(s.Fault.Rlinks), len(f.rlinks))
		}
		// The per-shard counter split is unobservable; the whole restored
		// total goes into the injection slot (counters() sums the slots).
		for i := range f.cnt {
			f.cnt[i] = fault.Counters{}
		}
		f.cnt[f.injSlot()] = s.Fault.Counters
		for li, ls := range s.Fault.Rlinks {
			rl := f.rlinks[li]
			if (ls == nil) != (rl == nil) {
				return fmt.Errorf("machine: snapshot and machine disagree on failed link %d", li)
			}
			if rl == nil {
				continue
			}
			if err := rl.snd.RestoreState(ls.Snd); err != nil {
				return fmt.Errorf("machine: link %s: %w", rl.ch.Name, err)
			}
			rl.rcv.RestoreState(ls.Rcv)
			if uint64(len(ls.Win)) != ls.Snd.Next-ls.Snd.Base {
				return fmt.Errorf("machine: link %s: %d window entries for sequences [%d, %d)", rl.ch.Name, len(ls.Win), ls.Snd.Base, ls.Snd.Next)
			}
			rl.win = rl.win[:0]
			for _, w := range ls.Win {
				p, err := pkt(w.Pkt)
				if err != nil {
					return fmt.Errorf("machine: link %s: %w", rl.ch.Name, err)
				}
				rl.win = append(rl.win, winEntry{p: p, vc: w.VC})
			}
			rl.meta = rl.meta[:0]
			rl.metaHead = 0
			for _, mt := range ls.Meta {
				rl.meta = append(rl.meta, frameMeta{seq: mt.Seq, vc: mt.VC, corrupt: mt.Corrupt})
			}
			for _, c := range ls.Ctrl {
				rl.ctrl.SendAt(c.At, linkCtrl{seq: c.Seq, nack: c.Nack})
				if rl.sndE != nil {
					rl.sndE.Wake(int(rl.sndID), c.At)
				}
			}
		}
	}
	m.Engine.WakeAll()
	return nil
}
