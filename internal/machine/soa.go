package machine

import (
	"anton2/internal/route"
	"anton2/internal/topo"
)

// hotArena owns the flat struct-of-arrays backing storage for every
// component's per-cycle hot state: the VC queues of all routers and channel
// adapters, and the routers' port tables and scratch arrays. Components are
// carved contiguous subslices in registration (component-id) order, so the
// cycle kernel walks dense memory instead of chasing per-component
// allocations. The carve uses full slice expressions (len == cap), so an
// accidental append in one component can never bleed into its neighbor's
// storage.
type hotArena struct {
	vcqs  []vcq
	ports []routerPort
	busy  []uint64
	cand  []int8
	pats  []uint8

	nq, np, nb, nc, ns int // take cursors
}

// newArena pre-sizes the arena for a machine: the chip layout is identical
// on every node, so one pass over the chip description scaled by the node
// count sizes every array exactly.
func newArena(m *Machine) hotArena {
	maxVC := route.MaxTotalVCs(m.Cfg.Scheme)
	tvcs := route.TotalVCs(m.Cfg.Scheme, topo.GroupT)
	nPorts, nPats := 0, 0
	for ri := 0; ri < topo.NumRouters; ri++ {
		cr := m.Topo.Chip.RouterAt(topo.RouterCoord(ri))
		p := len(cr.Ports)
		nPorts += p
		scratch := maxVC
		if scratch < p {
			scratch = p
		}
		nPats += scratch
	}
	nodes := m.Topo.NumNodes()
	return hotArena{
		vcqs:  make([]vcq, (nPorts*maxVC+topo.NumChannelAdapters*2*tvcs)*nodes),
		ports: make([]routerPort, nPorts*nodes),
		busy:  make([]uint64, nPorts*nodes),
		cand:  make([]int8, nPorts*nodes),
		pats:  make([]uint8, (nPats+topo.NumChannelAdapters*tvcs)*nodes),
	}
}

func (h *hotArena) takeVCQ(n int) []vcq {
	s := h.vcqs[h.nq : h.nq+n : h.nq+n]
	h.nq += n
	return s
}

func (h *hotArena) takePorts(n int) []routerPort {
	s := h.ports[h.np : h.np+n : h.np+n]
	h.np += n
	return s
}

func (h *hotArena) takeBusy(n int) []uint64 {
	s := h.busy[h.nb : h.nb+n : h.nb+n]
	h.nb += n
	return s
}

func (h *hotArena) takeCand(n int) []int8 {
	s := h.cand[h.nc : h.nc+n : h.nc+n]
	h.nc += n
	return s
}

func (h *hotArena) takePats(n int) []uint8 {
	s := h.pats[h.ns : h.ns+n : h.ns+n]
	h.ns += n
	return s
}
