// Package area provides a parametric silicon-area model of the Anton 2
// network components, calibrated to the die-area breakdown the paper reports
// (Tables 1 and 2). Scaling laws tie each category to its dominant
// structure — queue area to VC count and buffer depth, arbiter area to
// accumulator and weight storage, multicast area to table entries — so the
// model supports the design ablations the paper argues from (notably the
// one-third T-group VC reduction of Section 2.5).
package area

import (
	"anton2/internal/route"
	"anton2/internal/topo"
)

// Component indexes the three network component types of Table 1.
type Component int

// Network component types.
const (
	Router Component = iota
	EndpointAdapter
	ChannelAdapter
	NumComponents
)

func (c Component) String() string {
	switch c {
	case Router:
		return "Router"
	case EndpointAdapter:
		return "Endpoint adapter"
	default:
		return "Channel adapter"
	}
}

// Count returns the per-ASIC instance count of a component type (Table 1).
func (c Component) Count() int {
	switch c {
	case Router:
		return topo.NumRouters
	case EndpointAdapter:
		return topo.NumEndpoints
	default:
		return topo.NumChannelAdapters
	}
}

// Category indexes the area categories of Table 2.
type Category int

// Area categories.
const (
	Queues Category = iota
	Reduction
	Link
	ConfigRegs
	Debug
	Misc
	Multicast
	Arbiters
	NumCategories
)

func (c Category) String() string {
	return [...]string{"Queues", "Reduction", "Link", "Configuration", "Debug", "Miscellaneous", "Multicast", "Arbiters"}[c]
}

// Config holds the design parameters the model scales with.
type Config struct {
	// Scheme determines per-group VC counts.
	Scheme route.Scheme
	// MeshVCBuf / TorusVCBuf are per-VC buffer depths in flits.
	MeshVCBuf, TorusVCBuf int
	// MulticastEntries is the per-adapter multicast table size.
	MulticastEntries int
	// Patterns is the number of weight sets per inverse-weighted arbiter.
	Patterns int
	// WeightBits is M, the inverse-weight width.
	WeightBits int
}

// Default returns the shipped Anton 2 configuration.
func Default() Config {
	return Config{
		Scheme:           route.AntonScheme{},
		MeshVCBuf:        64,
		TorusVCBuf:       256,
		MulticastEntries: 256,
		Patterns:         2,
		WeightBits:       5,
	}
}

// Reference die-area calibration: Table 1 reports the network at 9.2% of
// the ASIC (3.4 + 1.1 + 4.7), and Table 2 gives the per-component,
// per-category split of the network area (in % of network area).
var table2Reference = [NumComponents][NumCategories]float64{
	Router:          {21.2, 0, 0, 3.3, 3.0, 4.3, 0, 5.2},
	EndpointAdapter: {2.7, 0, 0, 2.5, 2.5, 1.0, 3.2, 0.05},
	ChannelAdapter:  {22.7, 9.6, 8.9, 2.8, 2.3, 2.0, 2.5, 0.2},
}

// networkDieFraction is the network's share of total die area at the
// reference configuration.
const networkDieFraction = 0.092

// Breakdown is an evaluated area model, in arbitrary area units chosen so
// the reference configuration's network totals 100.
type Breakdown struct {
	// ByComponent[c][k] is the area of category k inside one *type* of
	// component, summed over all instances of that type.
	ByComponent [NumComponents][NumCategories]float64
}

// scale factors relating a configuration's structures to the reference.
func scales(c Config) (queueRouter, queueEndpoint, queueChannel, arb, mcast float64) {
	ref := Default()
	// Queue bits per component type: sum over ports of VCs x depth.
	qr := func(c Config) float64 {
		mesh := float64(route.TotalVCs(c.Scheme, topo.GroupM) * c.MeshVCBuf)
		torus := float64(route.TotalVCs(c.Scheme, topo.GroupT) * c.MeshVCBuf)
		// Average router port mix: count M-group vs T-group input
		// ports over the chip.
		var mPorts, tPorts int
		chip := topo.DefaultChip()
		for ri := range chip.Routers {
			for pi := range chip.Routers[ri].Ports {
				p := &chip.Routers[ri].Ports[pi]
				g := chip.IntraChans[p.InChan].Group
				if g == topo.GroupT {
					tPorts++
				} else {
					mPorts++
				}
			}
		}
		return float64(mPorts)*mesh + float64(tPorts)*torus
	}
	qe := func(c Config) float64 {
		// Endpoint adapters: one VC per traffic class.
		return float64(route.NumClasses * c.MeshVCBuf)
	}
	qc := func(c Config) float64 {
		// Channel adapters: T-group VCs on both the mesh side and the
		// serial side (deep buffers cover the torus round trip).
		t := route.TotalVCs(c.Scheme, topo.GroupT)
		return float64(t*c.MeshVCBuf + t*c.TorusVCBuf)
	}
	ar := func(c Config) float64 {
		// Accumulators (M+1 bits), weight storage (Patterns x M bits)
		// per input, plus the prioritized arbiter (~quarter of total,
		// Section 4.4).
		storage := float64(c.WeightBits+1) + float64(c.Patterns*c.WeightBits)
		return storage + storage/3
	}
	mc := func(c Config) float64 { return float64(c.MulticastEntries) }
	return qr(c) / qr(ref), qe(c) / qe(ref), qc(c) / qc(ref), ar(c) / ar(ref), mc(c) / mc(ref)
}

// Compute evaluates the model.
func Compute(c Config) *Breakdown {
	if c.Scheme == nil {
		c.Scheme = route.AntonScheme{}
	}
	qr, qe, qc, arb, mc := scales(c)
	b := &Breakdown{ByComponent: table2Reference}
	b.ByComponent[Router][Queues] *= qr
	b.ByComponent[EndpointAdapter][Queues] *= qe
	b.ByComponent[ChannelAdapter][Queues] *= qc
	for comp := Component(0); comp < NumComponents; comp++ {
		b.ByComponent[comp][Arbiters] *= arb
		b.ByComponent[comp][Multicast] *= mc
	}
	return b
}

// ComponentTotal returns a component type's total area units.
func (b *Breakdown) ComponentTotal(c Component) float64 {
	var sum float64
	for k := Category(0); k < NumCategories; k++ {
		sum += b.ByComponent[c][k]
	}
	return sum
}

// NetworkTotal returns total network area units.
func (b *Breakdown) NetworkTotal() float64 {
	var sum float64
	for c := Component(0); c < NumComponents; c++ {
		sum += b.ComponentTotal(c)
	}
	return sum
}

// referenceDieArea is the whole-die area in model units: the reference
// network is 100 units and occupies 9.2% of the die.
const referenceDieArea = 100 / networkDieFraction

// Table1 returns each component type's share of total die area, in percent
// (the paper's Table 1 reports 3.4 / 1.1 / 4.7).
func (b *Breakdown) Table1() [NumComponents]float64 {
	var out [NumComponents]float64
	for c := Component(0); c < NumComponents; c++ {
		out[c] = 100 * b.ComponentTotal(c) / referenceDieArea
	}
	return out
}

// Table2 returns the per-component and total category shares of network
// area, in percent of the *current* network area (the paper's Table 2).
func (b *Breakdown) Table2() (byComp [NumComponents][NumCategories]float64, total [NumCategories]float64) {
	net := b.NetworkTotal()
	for c := Component(0); c < NumComponents; c++ {
		for k := Category(0); k < NumCategories; k++ {
			pct := 100 * b.ByComponent[c][k] / net
			byComp[c][k] = pct
			total[k] += pct
		}
	}
	return byComp, total
}
