package area

import (
	"math"
	"testing"

	"anton2/internal/route"
)

func TestTable1Reference(t *testing.T) {
	b := Compute(Default())
	t1 := b.Table1()
	want := [NumComponents]float64{Router: 3.4, EndpointAdapter: 1.1, ChannelAdapter: 4.7}
	for c := Component(0); c < NumComponents; c++ {
		if math.Abs(t1[c]-want[c]) > 0.15 {
			t.Errorf("%v die share = %.2f%%, want ~%.1f%%", c, t1[c], want[c])
		}
	}
	total := t1[Router] + t1[EndpointAdapter] + t1[ChannelAdapter]
	if total >= 10 {
		t.Errorf("network occupies %.2f%% of die; the paper reports under 10%%", total)
	}
}

func TestTable2Reference(t *testing.T) {
	b := Compute(Default())
	_, total := b.Table2()
	want := map[Category]float64{
		Queues: 46.6, Reduction: 9.6, Link: 8.9, ConfigRegs: 8.6,
		Debug: 7.8, Misc: 7.3, Multicast: 5.7, Arbiters: 5.4,
	}
	for k, w := range want {
		if math.Abs(total[k]-w) > 0.5 {
			t.Errorf("%v = %.2f%% of network area, want ~%.1f%%", k, total[k], w)
		}
	}
	if total[Queues] < total[Arbiters] {
		t.Error("queues must dominate arbiters")
	}
	var sum float64
	for k := Category(0); k < NumCategories; k++ {
		sum += total[k]
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("Table 2 totals %.2f%%, want 100%%", sum)
	}
}

// TestBaselineSchemeCostsMoreQueueArea quantifies the Section 2.5 claim:
// the prior 2n-VC approach needs substantially more queue area, since queue
// area is roughly proportional to VC count.
func TestBaselineSchemeCostsMoreQueueArea(t *testing.T) {
	anton := Compute(Default())
	cfg := Default()
	cfg.Scheme = route.BaselineScheme{}
	baseline := Compute(cfg)

	aQ := anton.ByComponent[Router][Queues] + anton.ByComponent[ChannelAdapter][Queues]
	bQ := baseline.ByComponent[Router][Queues] + baseline.ByComponent[ChannelAdapter][Queues]
	if bQ <= aQ {
		t.Fatalf("baseline queue area %.1f not larger than Anton %.1f", bQ, aQ)
	}
	growth := bQ/aQ - 1
	// T-group VCs grow 12/8 = 1.5x; blended across M-group ports the
	// growth must land between 20%% and 50%%.
	if growth < 0.2 || growth > 0.5 {
		t.Errorf("baseline queue growth = %.1f%%, expected 20-50%%", growth*100)
	}
	if baseline.NetworkTotal() <= anton.NetworkTotal() {
		t.Error("baseline scheme must increase total network area")
	}
}

func TestArbiterAreaScalesWithPatterns(t *testing.T) {
	one := Default()
	one.Patterns = 1
	four := Default()
	four.Patterns = 4
	a1 := Compute(one).ByComponent[Router][Arbiters]
	a4 := Compute(four).ByComponent[Router][Arbiters]
	if a4 <= a1 {
		t.Error("more weight sets must cost more arbiter area")
	}
	// Storage dominates (~3/4 of arbiter area per Section 4.4).
	if a4/a1 > 2.5 {
		t.Errorf("4-pattern arbiter %.2fx larger; storage scaling looks wrong", a4/a1)
	}
}

func TestMulticastAreaScalesWithEntries(t *testing.T) {
	small := Default()
	small.MulticastEntries = 128
	big := Default()
	big.MulticastEntries = 512
	s := Compute(small).ByComponent[EndpointAdapter][Multicast]
	l := Compute(big).ByComponent[EndpointAdapter][Multicast]
	if math.Abs(l/s-4) > 1e-9 {
		t.Errorf("multicast area ratio = %g, want 4 (table-dominated)", l/s)
	}
}

func TestComponentCounts(t *testing.T) {
	if Router.Count() != 16 || EndpointAdapter.Count() != 23 || ChannelAdapter.Count() != 12 {
		t.Error("component counts must match Table 1")
	}
}
