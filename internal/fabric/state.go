package fabric

import (
	"fmt"

	"anton2/internal/packet"
)

// This file externalizes a channel's mutable state for checkpointing.
// Everything a Channel accumulates after construction — credit counters,
// serializer occupancy, stall windows, lost-credit ledgers, lifetime
// counters, energy events, and the in-flight contents of both pipes — round
// trips through ChannelState. Wiring (latency, rate, VC count, bindings) is
// rebuilt by constructing the machine fresh and is deliberately absent.
//
// Packets are shared pointers: the same *packet.Packet can sit in a
// retransmission window and in the pipe at once (Resend), so the machine
// snapshot layer owns packet identity. Export maps each pointer to an index
// via the provided callback; Restore resolves indices back through its
// inverse.

// PktEntry is one in-flight packet: its absolute arrival cycle and its index
// in the snapshot's packet registry.
type PktEntry struct {
	At  uint64 `json:"at"`
	Pkt int    `json:"pkt"`
}

// CreditEntry is one in-flight credit return.
type CreditEntry struct {
	At    uint64 `json:"at"`
	VC    uint8  `json:"vc"`
	Flits uint8  `json:"flits"`
}

// ChannelState is the serializable mutable state of one channel.
type ChannelState struct {
	Credit         []int           `json:"credit"`
	BusyUntilMilli uint64          `json:"busy,omitempty"`
	StallUntil     uint64          `json:"stall,omitempty"`
	Lost           []int           `json:"lost,omitempty"`
	SentAny        bool            `json:"sent_any,omitempty"`
	Sent           uint64          `json:"sent,omitempty"`
	Pkts           uint64          `json:"pkts,omitempty"`
	Energy         *EnergyCounters `json:"energy,omitempty"`
	PrevPayload    []byte          `json:"prev_payload,omitempty"`
	InFlight       []PktEntry      `json:"in_flight,omitempty"`
	Credits        []CreditEntry   `json:"credits,omitempty"`
}

// ExportState captures the channel's mutable state. pktIndex interns a
// packet pointer into the snapshot registry and returns its index. Channels
// are snapshotted between engine steps only; staged (deferred) traffic must
// already be flushed, which the phase-barrier merge guarantees.
func (ch *Channel) ExportState(pktIndex func(*packet.Packet) int) (ChannelState, error) {
	if len(ch.stagedPkts) != 0 || len(ch.stagedCreds) != 0 {
		return ChannelState{}, fmt.Errorf("fabric: %s: snapshot with staged traffic", ch.Name)
	}
	st := ChannelState{
		Credit:         append([]int(nil), ch.credit...),
		BusyUntilMilli: ch.busyUntilMilli,
		StallUntil:     ch.stallUntil,
		SentAny:        ch.sentAny,
		Sent:           ch.Sent,
		Pkts:           ch.Pkts,
	}
	if ch.lost != nil {
		st.Lost = append([]int(nil), ch.lost...)
	}
	if ch.Energy != nil {
		e := *ch.Energy
		st.Energy = &e
	}
	if len(ch.prevPayload) > 0 {
		st.PrevPayload = append([]byte(nil), ch.prevPayload...)
	}
	ch.pkts.Entries(func(at uint64, p *packet.Packet) {
		st.InFlight = append(st.InFlight, PktEntry{At: at, Pkt: pktIndex(p)})
	})
	ch.credits.Entries(func(at uint64, c creditMsg) {
		st.Credits = append(st.Credits, CreditEntry{At: at, VC: c.vc, Flits: c.flits})
	})
	return st, nil
}

// RestoreState loads exported state into a freshly built channel (empty
// pipes) and re-issues the wakes the in-flight traffic implies: each packet
// wakes the bound receiver at its arrival cycle, each credit the bound
// sender — the same wakes the original Send/ReturnCredit issued.
func (ch *Channel) RestoreState(st ChannelState, pkt func(int) (*packet.Packet, error)) error {
	if len(st.Credit) != len(ch.credit) {
		return fmt.Errorf("fabric: %s: restore with %d VCs, channel has %d", ch.Name, len(st.Credit), len(ch.credit))
	}
	if !ch.pkts.Empty() || !ch.credits.Empty() {
		return fmt.Errorf("fabric: %s: restore into a non-empty channel", ch.Name)
	}
	copy(ch.credit, st.Credit)
	ch.busyUntilMilli = st.BusyUntilMilli
	ch.stallUntil = st.StallUntil
	if st.Lost != nil {
		if ch.lost == nil || len(st.Lost) != len(ch.lost) {
			return fmt.Errorf("fabric: %s: lost-credit ledger shape mismatch", ch.Name)
		}
		copy(ch.lost, st.Lost)
	}
	ch.sentAny = st.SentAny
	ch.Sent = st.Sent
	ch.Pkts = st.Pkts
	if st.Energy != nil {
		if ch.Energy == nil {
			return fmt.Errorf("fabric: %s: energy state for a channel without tracking", ch.Name)
		}
		*ch.Energy = *st.Energy
	}
	ch.prevPayload = append(ch.prevPayload[:0], st.PrevPayload...)
	for _, e := range st.InFlight {
		p, err := pkt(e.Pkt)
		if err != nil {
			return fmt.Errorf("fabric: %s: %w", ch.Name, err)
		}
		ch.pkts.SendAt(e.At, p)
		if ch.recvE != nil {
			ch.recvE.Wake(int(ch.recvID), e.At)
		}
	}
	for _, e := range st.Credits {
		if int(e.VC) >= len(ch.credit) {
			return fmt.Errorf("fabric: %s: credit entry for VC %d of %d", ch.Name, e.VC, len(ch.credit))
		}
		ch.credits.SendAt(e.At, creditMsg{vc: e.VC, flits: e.Flits})
		if ch.sndE != nil {
			ch.sndE.Wake(int(ch.sndID), e.At)
		}
	}
	return nil
}
