// Package fabric models the physical channels of the network: on-chip mesh
// channels that move one 24-byte flit per cycle, and serialized torus
// channels whose effective rate (89.6 Gb/s of the 288 Gb/s mesh rate) is
// captured by a fractional cycles-per-flit occupancy. Flow control is
// credit-based virtual cut-through: a sender forwards a packet only when the
// downstream VC buffer has space for all of its flits.
package fabric

import (
	"fmt"

	"anton2/internal/packet"
	"anton2/internal/sim"
	"anton2/internal/topo"
)

// RateMilli expresses channel bandwidth in millicycles per flit.
const (
	// MeshRateMilli: mesh channels carry one flit per cycle.
	MeshRateMilli = 1000
	// TorusRateMilli: effective torus channel bandwidth is 89.6 Gb/s
	// against the 288 Gb/s mesh channel, i.e. 288/89.6 = 45/14 = 3.214
	// cycles per 24-byte flit.
	TorusRateMilli = 3214
)

type creditMsg struct {
	vc    uint8
	flits uint8
}

// EnergyCounters accumulates the per-channel event counts that feed the
// router energy model of Section 4.5.
type EnergyCounters struct {
	Flits       uint64 // valid flits transferred
	Activations uint64 // idle->valid transitions
	HammingSum  uint64 // bit flips between successive valid flits
	SetBitsSum  uint64 // one bits per flit payload
}

// Channel is a directed link between two network components with per-VC
// credit flow control. The sending component owns the credit counters and
// the occupancy tracking; the receiving component polls arrivals and returns
// credits as buffer space frees.
type Channel struct {
	ID      int // global channel id (topo.Machine space), -1 if synthetic
	Name    string
	Group   topo.Group
	latency uint64
	rate    uint64 // millicycles per flit

	pkts    *sim.Pipe[*packet.Packet]
	credits *sim.Pipe[creditMsg]

	credit   []int // sender-side available credits per VC, in flits
	bufFlits int   // per-VC buffer capacity, in flits (credit upper bound)

	busyUntilMilli uint64 // serializer occupancy, in millicycles
	lastIdleFrom   uint64 // cycle from which the channel has been idle

	// stallUntil: the channel accepts no new frames while now < stallUntil.
	// Zero (never stalled) is the common case; the fault layer sets it for
	// transient stalls and permanent outages.
	stallUntil uint64

	// DropCredit, when non-nil, is consulted on every credit return; a true
	// result drops the message, accumulating into lost. Installed only by
	// the fault layer (EnableCreditLoss).
	DropCredit func(vc, flits uint8) bool
	lost       []int // credits dropped and not yet restored, per VC

	// CensusExempt marks a channel whose in-flight packets are accounted
	// for by a reliable-link retransmission window instead of the pipe
	// census (the pipe may hold duplicates of one logical packet).
	CensusExempt bool

	// Energy is non-nil when energy tracking is enabled.
	Energy      *EnergyCounters
	prevPayload []byte
	sentAny     bool

	// Sent counts total flits forwarded (always maintained; used for
	// utilization reporting). Pkts is the packet analogue.
	Sent uint64
	Pkts uint64

	// Active-set bindings: the engine component ids of the two endpoints.
	// When bound, a send wakes the receiver at the arrival cycle and a
	// credit return wakes the sender at the credit's arrival cycle, so
	// sleeping components never miss traffic and — because credits are
	// absorbed on the same cycle as in scan mode — per-cycle credit
	// counters stay bit-identical across scheduling modes.
	recvE, sndE   *sim.Engine
	recvID, sndID int32

	// deferred: the channel crosses a shard boundary; sends and credit
	// returns are staged locally and flushed (with their original arrival
	// cycles) at the phase barrier by the coordinator.
	deferred    bool
	stagedPkts  []stagedPkt
	stagedCreds []stagedCred
}

type stagedPkt struct {
	at uint64
	p  *packet.Packet
}

type stagedCred struct {
	at  uint64
	msg creditMsg
}

// Config sizes a channel.
type Config struct {
	ID            int
	Name          string
	Group         topo.Group
	Latency       uint64 // delivery latency in cycles (>= 1)
	RateMilli     uint64 // millicycles per flit
	NumVCs        int
	BufFlits      int // downstream buffer capacity per VC, in flits
	CreditLatency uint64
	TrackEnergy   bool
}

// New builds a channel with full initial credit for every VC.
func New(c Config) *Channel {
	if c.NumVCs < 1 {
		panic("fabric: channel needs at least one VC")
	}
	if c.BufFlits < packet.MaxFlits {
		panic(fmt.Sprintf("fabric: per-VC buffer %d cannot hold a max-size packet", c.BufFlits))
	}
	if c.RateMilli == 0 {
		c.RateMilli = MeshRateMilli
	}
	if c.Latency == 0 {
		c.Latency = 1
	}
	if c.CreditLatency == 0 {
		c.CreditLatency = 1
	}
	ch := &Channel{
		ID:       c.ID,
		Name:     c.Name,
		Group:    c.Group,
		latency:  c.Latency,
		rate:     c.RateMilli,
		pkts:     sim.NewPipe[*packet.Packet](c.Latency),
		credits:  sim.NewPipe[creditMsg](c.CreditLatency),
		credit:   make([]int, c.NumVCs),
		bufFlits: c.BufFlits,
	}
	for i := range ch.credit {
		ch.credit[i] = c.BufFlits
	}
	if c.TrackEnergy {
		ch.Energy = &EnergyCounters{}
	}
	return ch
}

// BindReceiver registers the receiving component for active-set wakeups:
// every send wakes it at the packet's arrival cycle.
func (ch *Channel) BindReceiver(e *sim.Engine, id int) {
	ch.recvE, ch.recvID = e, int32(id)
}

// BindSender registers the sending component for active-set wakeups: every
// credit return wakes it at the credit's arrival cycle.
func (ch *Channel) BindSender(e *sim.Engine, id int) {
	ch.sndE, ch.sndID = e, int32(id)
}

// WakeSender wakes the bound sending component at the given cycle. The fault
// layer uses it when a credit-resync audit restores sender-side credits
// outside the normal credit pipe.
func (ch *Channel) WakeSender(at uint64) {
	if ch.sndE != nil {
		ch.sndE.Wake(int(ch.sndID), at)
	}
}

// SetDeferred switches the channel to staged delivery for sharded stepping:
// sends and credit returns buffer locally and FlushStaged applies them at
// the phase barrier with their original arrival cycles.
func (ch *Channel) SetDeferred(on bool) { ch.deferred = on }

// FlushStaged moves staged sends and credit returns into the pipes and
// issues the corresponding wakes. Coordinator-only, at the phase barrier.
func (ch *Channel) FlushStaged() {
	for i := range ch.stagedPkts {
		s := &ch.stagedPkts[i]
		ch.pkts.SendAt(s.at, s.p)
		if ch.recvE != nil {
			ch.recvE.Wake(int(ch.recvID), s.at)
		}
		s.p = nil
	}
	ch.stagedPkts = ch.stagedPkts[:0]
	for i := range ch.stagedCreds {
		s := &ch.stagedCreds[i]
		ch.credits.SendAt(s.at, s.msg)
		if ch.sndE != nil {
			ch.sndE.Wake(int(ch.sndID), s.at)
		}
	}
	ch.stagedCreds = ch.stagedCreds[:0]
}

// NumVCs returns the channel's physical VC count.
func (ch *Channel) NumVCs() int { return len(ch.credit) }

// Latency returns the delivery latency in cycles.
func (ch *Channel) Latency() uint64 { return ch.latency }

// AbsorbCredits drains returned credits into the sender-side counters. The
// sending component calls this at the top of its Tick.
func (ch *Channel) AbsorbCredits(now uint64) {
	for {
		c, ok := ch.credits.Poll(now)
		if !ok {
			return
		}
		ch.credit[c.vc] += int(c.flits)
	}
}

// Credits returns the sender-side available credit for a VC, in flits.
func (ch *Channel) Credits(vc uint8) int { return ch.credit[vc] }

// CanSend reports whether a packet of the given size can be forwarded on vc
// right now: the serializer must free up within this cycle (a small
// serialization FIFO lets the handoff overlap the previous flit's tail, so
// fractional rates like the torus 45/14 cycles per flit are sustained
// exactly) and the downstream VC must have credit for every flit (virtual
// cut-through).
func (ch *Channel) CanSend(now uint64, vc uint8, flits uint8) bool {
	return ch.credit[vc] >= int(flits) && ch.busyUntilMilli < (now+1)*1000 && ch.stallUntil <= now
}

// Send forwards a packet on vc and returns the arrival cycle. The packet
// arrives downstream when its last flit clears the serializer plus the
// channel latency. The caller must have checked CanSend.
func (ch *Channel) Send(now uint64, p *packet.Packet, vc uint8) uint64 {
	p.CurVC = vc
	return ch.transmit(now, p, vc)
}

// Resend retransmits a packet on vc without touching the packet's mutable
// routing state: the original copy may already have been accepted downstream
// and moved on, so a retransmission must treat the packet as read-only. Only
// the reliable-link layer calls this.
func (ch *Channel) Resend(now uint64, p *packet.Packet, vc uint8) uint64 {
	return ch.transmit(now, p, vc)
}

func (ch *Channel) transmit(now uint64, p *packet.Packet, vc uint8) uint64 {
	if !ch.CanSend(now, vc, p.Size) {
		panic("fabric: Send without CanSend on " + ch.Name)
	}
	ch.credit[vc] -= int(p.Size)
	ch.Sent += uint64(p.Size)
	ch.Pkts++

	if ch.Energy != nil {
		ch.countEnergy(now, p)
	}
	ch.sentAny = true

	start := now * 1000
	if ch.busyUntilMilli > start {
		start = ch.busyUntilMilli
	}
	ch.busyUntilMilli = start + uint64(p.Size)*ch.rate
	// Arrival cycle: when the last flit has been serialized, plus wire
	// latency. Integer-rounded up; always at least now+1.
	arrive := (ch.busyUntilMilli+999)/1000 + ch.latency - 1
	if arrive <= now {
		arrive = now + 1
	}
	if ch.deferred {
		ch.stagedPkts = append(ch.stagedPkts, stagedPkt{at: arrive, p: p})
		return arrive
	}
	ch.pkts.SendAt(arrive, p)
	if ch.recvE != nil {
		ch.recvE.Wake(int(ch.recvID), arrive)
	}
	return arrive
}

func (ch *Channel) countEnergy(now uint64, p *packet.Packet) {
	e := ch.Energy
	e.Flits += uint64(p.Size)
	// An activation is an idle-to-valid transition: the previous flit
	// finished strictly before this cycle began (back-to-back flits do
	// not activate), or this is the first flit ever.
	if !ch.sentAny || ch.busyUntilMilli < now*1000 {
		e.Activations++
	}
	if p.Payload != nil {
		e.HammingSum += uint64(packet.HammingDistance(ch.prevPayload, p.Payload))
		e.SetBitsSum += uint64(packet.SetBits(p.Payload)) * uint64(p.Size)
		ch.prevPayload = append(ch.prevPayload[:0], p.Payload...)
	}
}

// Recv polls for an arrived packet. The receiving component calls this in
// its Tick; credits guarantee it has buffer space for anything that arrives.
func (ch *Channel) Recv(now uint64) (*packet.Packet, bool) {
	return ch.pkts.Poll(now)
}

// ReturnCredit informs the sender that flits of buffer space freed on vc.
func (ch *Channel) ReturnCredit(now uint64, vc uint8, flits uint8) {
	if ch.DropCredit != nil && ch.DropCredit(vc, flits) {
		ch.lost[vc] += int(flits)
		return
	}
	at := now + ch.credits.Latency()
	if ch.deferred {
		ch.stagedCreds = append(ch.stagedCreds, stagedCred{at: at, msg: creditMsg{vc: vc, flits: flits}})
		return
	}
	ch.credits.Send(now, creditMsg{vc: vc, flits: flits})
	if ch.sndE != nil {
		ch.sndE.Wake(int(ch.sndID), at)
	}
}

// EnableCreditLoss installs a credit-drop predicate and allocates the
// lost-credit ledger the resync audit restores from.
func (ch *Channel) EnableCreditLoss(drop func(vc, flits uint8) bool) {
	ch.lost = make([]int, len(ch.credit))
	ch.DropCredit = drop
}

// LostCredits returns the total credits currently dropped and unrestored.
func (ch *Channel) LostCredits() int {
	total := 0
	for _, n := range ch.lost {
		total += n
	}
	return total
}

// RestoreLostCredits models a credit resync audit: every lost credit is
// re-added to the sender-side counters. Returns the number restored.
func (ch *Channel) RestoreLostCredits() int {
	total := 0
	for vc, n := range ch.lost {
		if n > 0 {
			ch.credit[vc] += n
			total += n
			ch.lost[vc] = 0
		}
	}
	return total
}

// SetStall blocks new sends on the channel until the given cycle. The fault
// layer uses it for transient stalls (finite until) and permanent outages
// (math.MaxUint64).
func (ch *Channel) SetStall(until uint64) { ch.stallUntil = until }

// Stalled reports whether the channel is refusing new frames at cycle now.
func (ch *Channel) Stalled(now uint64) bool { return ch.stallUntil > now }

// Quiet reports whether the channel holds no in-flight packets or credits.
func (ch *Channel) Quiet() bool { return ch.pkts.Empty() && ch.credits.Empty() }

// BufFlits returns the downstream per-VC buffer capacity in flits. It is the
// upper bound a sender-side credit counter may ever reach.
func (ch *Channel) BufFlits() int { return ch.bufFlits }

// InFlight returns the number of packets currently traversing the channel
// (sent but not yet received). Invariant checkers use it for the flit
// conservation census.
func (ch *Channel) InFlight() int { return ch.pkts.Len() }

// CorruptCreditsForTest deliberately skews the sender-side credit counter for
// vc by delta flits. It exists solely so negative tests can prove the
// invariant-checking layer catches credit-accounting bugs; production code
// must never call it.
func (ch *Channel) CorruptCreditsForTest(vc uint8, delta int) {
	ch.credit[vc] += delta
}

// FlitsSent returns the total flits forwarded over the channel's lifetime.
func (ch *Channel) FlitsSent() uint64 { return ch.Sent }

// RateMilli returns the serialization rate in millicycles per flit.
func (ch *Channel) RateMilli() uint64 { return ch.rate }
