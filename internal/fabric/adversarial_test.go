package fabric

import (
	"math"
	"testing"

	"anton2/internal/topo"
)

// Adversarial schedules for the channel's fault-facing surface: stall
// boundary conditions, back-to-back stall/resume, and credit returns that
// arrive reordered, split, or dropped-and-restored.

func TestChannelStallBoundary(t *testing.T) {
	ch := meshChan(false)
	ch.SetStall(10)
	if ch.CanSend(9, 0, 1) || !ch.Stalled(9) {
		t.Error("channel must refuse frames strictly before stallUntil")
	}
	if !ch.CanSend(10, 0, 1) || ch.Stalled(10) {
		t.Error("channel must resume exactly at stallUntil")
	}
	ch.SetStall(math.MaxUint64)
	if ch.CanSend(1<<40, 0, 1) {
		t.Error("permanent outage must never resume")
	}
	ch.SetStall(0)
	if !ch.CanSend(0, 0, 1) {
		t.Error("clearing the stall must restore service")
	}
}

func TestChannelBackToBackStallResume(t *testing.T) {
	ch := meshChan(false)
	now := uint64(0)
	sent := 0
	// Alternate single-cycle stalls with immediate resumes; the channel
	// must accept a frame on every unstalled cycle once credit allows.
	for i := 0; i < 32; i++ {
		if i%2 == 0 {
			ch.SetStall(now + 1) // stalled for exactly this cycle
			if ch.CanSend(now, 0, 1) {
				t.Fatalf("cycle %d: send allowed during stall", now)
			}
		} else if ch.CanSend(now, 0, 1) {
			ch.Send(now, pkt(1), 0)
			sent++
		}
		// Drain the downstream buffer promptly so credit never gates.
		if p, ok := ch.Recv(now); ok {
			ch.ReturnCredit(now, p.CurVC, p.Size)
		}
		ch.AbsorbCredits(now + 1)
		now++
	}
	if sent == 0 {
		t.Fatal("no frames made it through the stall/resume schedule")
	}
	// Drain whatever is still in flight and check conservation: every sent
	// flit is either received or nothing.
	for end := now + ch.Latency() + 2; now < end; now++ {
		if p, ok := ch.Recv(now); ok {
			ch.ReturnCredit(now, p.CurVC, p.Size)
		}
		ch.AbsorbCredits(now)
	}
	if !ch.Quiet() {
		t.Errorf("channel not quiet after drain: %d in flight", ch.InFlight())
	}
	if ch.Credits(0) != ch.BufFlits() {
		t.Errorf("credit = %d after full drain, want %d", ch.Credits(0), ch.BufFlits())
	}
}

// TestChannelCreditReturnReordering returns credits split into fragments, in
// reversed VC order, bunched onto one cycle; the sender-side counters must
// come back to exactly full with no VC ever exceeding its buffer.
func TestChannelCreditReturnReordering(t *testing.T) {
	ch := meshChan(false)
	// Exhaust every VC (buffer = 4 flits, packets of 2), spacing sends so
	// the shared serializer (one flit per cycle) never gates.
	for seq := uint64(0); seq < 8; seq++ {
		ch.Send(seq*2, pkt(2), uint8(seq%4))
	}
	for now := uint64(0); now < 20; now++ {
		ch.Recv(now)
	}
	// Return in reverse VC order, one flit at a time, all on cycle 20 —
	// the opposite of the orderly per-packet returns the adapters produce.
	for vc := 3; vc >= 0; vc-- {
		for f := 0; f < 4; f++ {
			ch.ReturnCredit(20, uint8(vc), 1)
		}
	}
	ch.AbsorbCredits(21)
	for vc := uint8(0); vc < 4; vc++ {
		if got := ch.Credits(vc); got != ch.BufFlits() {
			t.Errorf("VC %d credit = %d after reordered returns, want %d", vc, got, ch.BufFlits())
		}
	}
}

// TestChannelCreditLossRestoreInterleaved drops every other credit return and
// interleaves restores with live traffic; the lost-credit ledger must stay
// exact and a final restore must rebuild full credit.
func TestChannelCreditLossRestoreInterleaved(t *testing.T) {
	ch := meshChan(false)
	n := 0
	ch.EnableCreditLoss(func(vc, flits uint8) bool {
		n++
		return n%2 == 1
	})
	dropped := 0
	for now := uint64(0); now < 40; now++ {
		ch.AbsorbCredits(now)
		if ch.CanSend(now, 1, 1) {
			ch.Send(now, pkt(1), 1)
		}
		if p, ok := ch.Recv(now); ok {
			before := ch.LostCredits()
			ch.ReturnCredit(now, p.CurVC, p.Size)
			dropped += ch.LostCredits() - before
		}
		// Mid-run restore: the audit may fire at any moment, including
		// with packets in flight.
		if now == 20 {
			if got := ch.RestoreLostCredits(); got != dropped {
				t.Fatalf("restore returned %d, ledger said %d", got, dropped)
			}
			dropped = 0
			if ch.LostCredits() != 0 {
				t.Fatal("ledger not cleared by restore")
			}
		}
	}
	// Final drain and restore: credit must come back to exactly BufFlits.
	for now := uint64(40); now < 50; now++ {
		ch.AbsorbCredits(now)
		if p, ok := ch.Recv(now); ok {
			ch.ReturnCredit(now, p.CurVC, p.Size)
		}
	}
	ch.RestoreLostCredits()
	ch.AbsorbCredits(51)
	if got := ch.Credits(1); got != ch.BufFlits() {
		t.Errorf("VC 1 credit = %d after drain+restore, want %d", got, ch.BufFlits())
	}
}

// TestChannelStallHoldsInFlightDelivery: stalling only gates new sends — a
// packet already serialized must still arrive, and its credit return must
// still complete, while the channel refuses fresh frames.
func TestChannelStallHoldsInFlightDelivery(t *testing.T) {
	ch := New(Config{
		Name: "torus", Group: topo.GroupT, Latency: 5,
		RateMilli: TorusRateMilli, NumVCs: 2, BufFlits: 8,
		CreditLatency: 1,
	})
	arrive := ch.Send(0, pkt(2), 0)
	ch.SetStall(math.MaxUint64)
	p, ok := ch.Recv(arrive)
	if !ok {
		t.Fatal("in-flight packet lost to a stall")
	}
	ch.ReturnCredit(arrive, p.CurVC, p.Size)
	ch.AbsorbCredits(arrive + 1)
	if got := ch.Credits(0); got != ch.BufFlits() {
		t.Errorf("credit = %d after stalled-channel drain, want %d", got, ch.BufFlits())
	}
	if ch.CanSend(arrive+1, 0, 1) {
		t.Error("stalled channel accepted a new frame")
	}
}
