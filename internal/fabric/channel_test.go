package fabric

import (
	"testing"
	"testing/quick"

	"anton2/internal/packet"
	"anton2/internal/topo"
)

func meshChan(track bool) *Channel {
	return New(Config{
		Name: "test", Group: topo.GroupM, Latency: 1,
		RateMilli: MeshRateMilli, NumVCs: 4, BufFlits: 4,
		CreditLatency: 1, TrackEnergy: track,
	})
}

func pkt(size uint8) *packet.Packet { return &packet.Packet{Size: size} }

func TestChannelCreditAccounting(t *testing.T) {
	ch := meshChan(false)
	if !ch.CanSend(0, 2, 1) {
		t.Fatal("fresh channel must have full credit")
	}
	// Exhaust VC 2's credit (4 flits) with two 2-flit packets.
	ch.Send(0, pkt(2), 2)
	ch.Send(2, pkt(2), 2)
	if ch.CanSend(4, 2, 1) {
		t.Fatal("VC 2 should be out of credit")
	}
	if !ch.CanSend(4, 1, 2) {
		t.Fatal("other VCs must be unaffected")
	}
	// Return one flit: enough for a 1-flit packet, not a 2-flit one.
	ch.ReturnCredit(4, 2, 1)
	ch.AbsorbCredits(5)
	if !ch.CanSend(5, 2, 1) || ch.CanSend(5, 2, 2) {
		t.Fatalf("credit = %d, want exactly 1", ch.Credits(2))
	}
}

func TestChannelCreditLatency(t *testing.T) {
	ch := meshChan(false)
	ch.Send(0, pkt(1), 0)
	ch.ReturnCredit(10, 0, 1)
	ch.AbsorbCredits(10)
	if ch.Credits(0) != 3 {
		t.Fatalf("credit visible same cycle; got %d", ch.Credits(0))
	}
	ch.AbsorbCredits(11)
	if ch.Credits(0) != 4 {
		t.Fatalf("credit after latency = %d, want 4", ch.Credits(0))
	}
}

func TestChannelMeshTiming(t *testing.T) {
	ch := meshChan(false)
	p := pkt(1)
	ch.Send(5, p, 0)
	if _, ok := ch.Recv(5); ok {
		t.Fatal("same-cycle delivery")
	}
	got, ok := ch.Recv(6)
	if !ok || got != p {
		t.Fatalf("Recv(6) = %v, %v", got, ok)
	}
	if got.CurVC != 0 {
		t.Errorf("CurVC = %d, want 0", got.CurVC)
	}
	// Two-flit packet: last flit clears at start+2, arrival at +2 (latency
	// 1 overlaps serialization tail).
	p2 := pkt(2)
	ch.Send(10, p2, 1)
	if _, ok := ch.Recv(11); ok {
		t.Fatal("2-flit packet cannot arrive after one cycle")
	}
	if _, ok := ch.Recv(12); !ok {
		t.Fatal("2-flit packet should arrive at cycle 12")
	}
}

func TestChannelBackToBackMeshRate(t *testing.T) {
	ch := meshChan(false)
	ch.Send(0, pkt(1), 0)
	if !ch.CanSend(1, 1, 1) {
		t.Fatal("mesh channel must accept one flit per cycle")
	}
	ch.Send(1, pkt(1), 1)
	if ch.CanSend(1, 2, 1) {
		t.Fatal("channel accepted two flits in one cycle")
	}
}

func TestChannelTorusSerialization(t *testing.T) {
	ch := New(Config{
		Name: "torus", Group: topo.GroupT, Latency: 10,
		RateMilli: TorusRateMilli, NumVCs: 8, BufFlits: 32,
	})
	// Send at cycle 0: serializer busy until 3.214 cycles.
	ch.Send(0, pkt(1), 0)
	if ch.CanSend(1, 0, 1) || ch.CanSend(2, 0, 1) {
		t.Fatal("torus serializer should still be busy at cycles 1-2")
	}
	if !ch.CanSend(3, 0, 1) {
		t.Fatal("torus serializer frees within cycle 3 (3.214 cycles/flit)")
	}
	// Arrival: ceil(3.214) + latency - 1 = 4 + 9 = 13.
	if _, ok := ch.Recv(12); ok {
		t.Fatal("arrived too early")
	}
	if _, ok := ch.Recv(13); !ok {
		t.Fatal("should arrive at cycle 13")
	}
	// Sustained rate: 14 flits per 45 cycles (89.6 Gb/s of 288). Over
	// 900 cycles that is exactly 280 flits (+1 tolerance for the idle
	// bucket at the window start).
	sent := 0
	for now := uint64(100); now < 100+900; now++ {
		ch.AbsorbCredits(now)
		if ch.CanSend(now, 1, 1) {
			ch.Send(now, pkt(1), 1)
			ch.ReturnCredit(now, 1, 1) // downstream drains immediately
			sent++
		}
	}
	if sent < 280 || sent > 281 {
		t.Fatalf("sustained %d flits in 900 cycles, want 280 (45/14 cycles per flit)", sent)
	}
}

func TestChannelEnergyActivations(t *testing.T) {
	ch := meshChan(true)
	// Pattern: flits at cycles 0,1 (one activation), gap, 4 (second), 5,6.
	for _, c := range []uint64{0, 1, 4, 5, 6} {
		ch.Send(c, pkt(1), 0)
		ch.ReturnCredit(c, 0, 1)
		ch.AbsorbCredits(c + 1)
	}
	if ch.Energy.Flits != 5 {
		t.Errorf("flits = %d, want 5", ch.Energy.Flits)
	}
	if ch.Energy.Activations != 2 {
		t.Errorf("activations = %d, want 2 (cycles 0 and 4)", ch.Energy.Activations)
	}
}

func TestChannelEnergyHammingAndSetBits(t *testing.T) {
	ch := meshChan(true)
	mk := func(b byte) *packet.Packet {
		p := pkt(1)
		p.Payload = []byte{b, b}
		return p
	}
	ch.Send(0, mk(0x00), 0)
	ch.ReturnCredit(0, 0, 1)
	ch.AbsorbCredits(1)
	ch.Send(1, mk(0xFF), 0) // 16 bit flips vs previous, 16 set bits
	ch.ReturnCredit(1, 0, 1)
	ch.AbsorbCredits(2)
	ch.Send(2, mk(0xFF), 0) // 0 flips, 16 set bits
	if ch.Energy.HammingSum != 16 {
		t.Errorf("hamming = %d, want 16", ch.Energy.HammingSum)
	}
	if ch.Energy.SetBitsSum != 32 {
		t.Errorf("set bits = %d, want 32", ch.Energy.SetBitsSum)
	}
}

func TestChannelSendWithoutCreditPanics(t *testing.T) {
	ch := meshChan(false)
	for i := 0; i < 4; i++ {
		ch.Send(uint64(i), pkt(1), 3)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send without credit must panic")
		}
	}()
	ch.Send(10, pkt(1), 3)
}

func TestHammingAndSetBitsHelpers(t *testing.T) {
	if d := packet.HammingDistance([]byte{0x0F}, []byte{0xF0}); d != 8 {
		t.Errorf("HammingDistance = %d, want 8", d)
	}
	if d := packet.HammingDistance(nil, []byte{0xFF}); d != 8 {
		t.Errorf("HammingDistance vs nil = %d, want 8", d)
	}
	if n := packet.SetBits([]byte{0x01, 0x03, 0x07}); n != 6 {
		t.Errorf("SetBits = %d, want 6", n)
	}
}

func TestSizeForPayload(t *testing.T) {
	if packet.SizeForPayload(16) != 1 || packet.SizeForPayload(17) != 2 || packet.SizeForPayload(32) != 2 {
		t.Error("flit sizing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload must panic")
		}
	}()
	packet.SizeForPayload(33)
}

// TestChannelCreditInvariantProperty: under random interleavings of sends,
// credit returns, and time advances, the sender-side credit never exceeds
// the buffer capacity and never goes negative, and flits are conserved.
func TestChannelCreditInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const bufFlits = 4
		ch := New(Config{
			Name: "prop", Group: topo.GroupM, Latency: 1,
			RateMilli: MeshRateMilli, NumVCs: 2, BufFlits: bufFlits,
		})
		now := uint64(0)
		sent, received, returned := 0, 0, 0
		var held [2]int // per-VC packets awaiting credit return
		for _, op := range ops {
			vc := uint8(op>>4) & 1
			switch op % 4 {
			case 0: // try to send
				if ch.CanSend(now, vc, 1) {
					ch.Send(now, &packet.Packet{Size: 1}, vc)
					sent++
				}
			case 1: // receiver polls
				if p, ok := ch.Recv(now); ok {
					received++
					held[p.CurVC]++
				}
			case 2: // receiver returns one credit on a VC it holds
				if held[vc] > 0 {
					ch.ReturnCredit(now, vc, 1)
					held[vc]--
					returned++
				}
			case 3:
				now++
				ch.AbsorbCredits(now)
			}
			if received > sent || returned > received {
				return false // conservation violated
			}
			for v := uint8(0); v < 2; v++ {
				if ch.Credits(v) < 0 || ch.Credits(v) > bufFlits {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
