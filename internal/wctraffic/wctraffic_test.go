package wctraffic

import (
	"math/rand"
	"sort"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// TestBestWorstCaseLoadIsTwo reproduces the central Section 2.4 result: the
// optimized direction-order algorithm limits the worst-case mesh-channel
// load to two torus channels' worth of traffic (Figure 4), and each mesh
// channel's 288 Gb/s comfortably carries 2 x 89.6 Gb/s with headroom for
// endpoint traffic.
func TestBestWorstCaseLoadIsTwo(t *testing.T) {
	chip := topo.DefaultChip()
	winners, best := Best(chip, DefaultPolicy)
	if best != 2.0 {
		t.Fatalf("optimal worst-case mesh load = %g, want 2.0", best)
	}
	found := false
	for _, w := range winners {
		if w.Order == topo.DefaultDirOrder {
			found = true
		}
	}
	if !found {
		t.Errorf("DefaultDirOrder %v not among the %d optimal orders", topo.DefaultDirOrder, len(winners))
	}
	if len(winners) == 24 {
		t.Error("every order is optimal; the direction-order search would be vacuous")
	}
}

// TestSkipChannelsEssential: restricting skips to through-traffic only
// raises the worst case to 3 torus channels, demonstrating why X-turning
// traffic must also cross the skip.
func TestSkipChannelsEssential(t *testing.T) {
	chip := topo.DefaultChip()
	_, throughOnly := Best(chip, Policy{Through: true})
	if throughOnly != 3.0 {
		t.Fatalf("through-only worst case = %g, want 3.0", throughOnly)
	}
	_, none := Best(chip, Policy{})
	if none < 3.0 {
		t.Fatalf("no-skip worst case = %g, want >= 3.0", none)
	}
}

// TestPaperPermutationLoad: the paper's permutation (1) places at most two
// torus channels of load on any mesh channel under the default order.
func TestPaperPermutationLoad(t *testing.T) {
	chip := topo.DefaultChip()
	loads := Loads(chip, topo.DefaultDirOrder, DefaultPolicy, PaperWorstCasePermutation)
	l, _ := MaxMeshLoad(chip, loads)
	if l > 2.0 {
		t.Fatalf("paper permutation load = %g under default order, want <= 2.0", l)
	}
	// Adapter links carry exactly their own channel's demand.
	for i, v := range loads {
		ch := &chip.IntraChans[i]
		if ch.From.Kind == topo.LocAdapter || ch.To.Kind == topo.LocAdapter {
			if v > topo.NumSlices {
				t.Errorf("adapter link %s load %g exceeds slice count", ch.Name, v)
			}
		}
	}
}

func TestPermutationEnumeration(t *testing.T) {
	perms := permutations()
	// Derangements of 6 elements: 265.
	if len(perms) != 265 {
		t.Fatalf("got %d fixed-point-free permutations, want 265", len(perms))
	}
	for _, p := range perms {
		var seen [topo.NumDirections]bool
		for i, d := range p {
			if int(d) == i {
				t.Fatalf("permutation %v has a U-turn", p)
			}
			if seen[d] {
				t.Fatalf("permutation %v repeats %v", p, d)
			}
			seen[d] = true
		}
	}
}

// TestPathChannelsMatchesWalker: the analytic demand paths must equal the
// intra-node channels the real route walker produces at an intermediate
// node implementing that demand.
func TestPathChannelsMatchesWalker(t *testing.T) {
	m := topo.MustMachine(topo.Shape3(6, 6, 6))
	cfg := route.NewConfig(m)
	chip := m.Chip

	// For a demand (In, Out), build a route that travels through node
	// mid = (3,3,3) arriving via In and departing via Out.
	mid := topo.NodeCoord{X: 3, Y: 3, Z: 3}
	for in := topo.Direction(0); in < topo.NumDirections; in++ {
		for out := topo.Direction(0); out < topo.NumDirections; out++ {
			if out == in {
				continue // U-turns impossible
			}
			travelIn := in.Opposite() // arriving on channel `in` means traveling opposite(in)
			travelOut := out
			if travelIn.Dim() == travelOut.Dim() && travelIn != travelOut {
				continue // direction flip within a dimension: not minimal
			}
			for s := 0; s < topo.NumSlices; s++ {
				// Source one hop before mid along travelIn;
				// destination one hop past mid along travelOut,
				// keeping every leg well under the minimal-route
				// bound so the route passes through mid.
				srcC := m.Shape.Neighbor(mid, travelIn.Opposite())
				dstC := m.Shape.Neighbor(mid, travelOut)
				var ord topo.DimOrder
				if travelIn.Dim() == travelOut.Dim() {
					ord = orderStartingWith(travelIn.Dim(), travelIn.Dim())
				} else {
					ord = orderStartingWith(travelIn.Dim(), travelOut.Dim())
				}
				src := topo.NodeEp{Node: m.Shape.NodeID(srcC), Ep: 0}
				dst := topo.NodeEp{Node: m.Shape.NodeID(dstC), Ep: 0}
				hops := route.Walk(cfg, src, dst, ord, uint8(s), [3]int8{1, 1, 1}, route.ClassRequest)

				var got []int
				midID := m.Shape.NodeID(mid)
				for _, h := range hops {
					if !m.IsTorusChan(h.Chan) {
						if n, ch := m.IntraChanOf(h.Chan); n == midID {
							got = append(got, ch.ID)
						}
					}
				}
				want := PathChannels(chip, cfg.DirOrder, DefaultPolicy, Demand{In: in, Out: out}, s)
				sort.Ints(got)
				wantSorted := append([]int(nil), want...)
				sort.Ints(wantSorted)
				if !equalInts(got, wantSorted) {
					t.Errorf("demand %v->%v slice %d: walker uses %v, analysis predicts %v",
						in, out, s, names(chip, got), names(chip, wantSorted))
				}
			}
		}
	}
}

// orderStartingWith returns a dimension order beginning with first and, if
// different, continuing with second.
func orderStartingWith(first, second topo.Dim) topo.DimOrder {
	var ord topo.DimOrder
	ord[0] = first
	i := 1
	if second != first {
		ord[i] = second
		i++
	}
	for d := topo.Dim(0); d < topo.NumDims; d++ {
		if d != first && d != second {
			ord[i] = d
			i++
		}
	}
	for i < topo.NumDims {
		// first == second case: fill remaining dims.
		for d := topo.Dim(0); d < topo.NumDims; d++ {
			if d != first && ord[1] != d {
				ord[i] = d
				i++
				if i >= topo.NumDims {
					break
				}
			}
		}
	}
	return ord
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func names(chip *topo.Chip, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = chip.IntraChans[id].Name
	}
	return out
}

// TestHungarianMatchesBruteForce validates the assignment solver against
// exhaustive enumeration on random matrices.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(100))
			}
		}
		_, got := Hungarian(w)
		want := bruteForceMax(w)
		if got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("trial %d: Hungarian = %g, brute force = %g", trial, got, want)
		}
	}
}

func bruteForceMax(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	used := make([]bool, n)
	best := -1e18
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if i == n {
			if sum > best {
				best = sum
			}
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, sum+w[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

// TestHungarianAgreesWithEnumeratedWorstCase: per-channel worst loads from
// the assignment solver equal the enumerated maxima.
func TestHungarianAgreesWithEnumeratedWorstCase(t *testing.T) {
	chip := topo.DefaultChip()
	order := topo.DefaultDirOrder
	// Build per-channel contribution matrices and compare the Hungarian
	// worst case to the enumerated one for a few mesh channels.
	nCh := len(chip.IntraChans)
	contrib := make([][][]float64, nCh)
	for c := range contrib {
		contrib[c] = make([][]float64, topo.NumDirections)
		for i := range contrib[c] {
			contrib[c][i] = make([]float64, topo.NumDirections)
		}
	}
	for in := topo.Direction(0); in < topo.NumDirections; in++ {
		for out := topo.Direction(0); out < topo.NumDirections; out++ {
			if out == in {
				continue
			}
			for s := 0; s < topo.NumSlices; s++ {
				for _, ch := range PathChannels(chip, order, DefaultPolicy, Demand{In: in, Out: out}, s) {
					contrib[ch][in][out]++
				}
			}
		}
	}
	// Enumerated per-channel maxima.
	enumMax := make([]float64, nCh)
	for _, perm := range permutations() {
		loads := Loads(chip, order, DefaultPolicy, perm)
		for c, l := range loads {
			if l > enumMax[c] {
				enumMax[c] = l
			}
		}
	}
	for c := 0; c < nCh; c++ {
		got := WorstChannelLoad(contrib[c])
		if got < 0 {
			got = 0 // all-forbidden rows can go negative; clamp like "no demand"
		}
		if got != enumMax[c] {
			t.Errorf("channel %s: Hungarian worst %g, enumerated %g", chip.IntraChans[c].Name, got, enumMax[c])
		}
	}
}
