package wctraffic

import "math"

// Hungarian solves the maximum-weight assignment problem on an n x n weight
// matrix in O(n^3): it returns the assignment (row i -> column assign[i])
// and the total weight. This is the general method for finding the
// worst-case permutation demand for a single channel from per-demand load
// contributions [27]; the exhaustive search in Evaluate uses it as a
// cross-check and falls back to it for larger radix switches.
func Hungarian(w [][]float64) ([]int, float64) {
	n := len(w)
	for _, row := range w {
		if len(row) != n {
			panic("wctraffic: Hungarian needs a square matrix")
		}
	}
	if n == 0 {
		return nil, 0
	}
	// Classic potentials formulation on the cost matrix c = -w
	// (minimization), with 1-based auxiliary arrays.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j
	way := make([]int, n+1)
	cost := func(i, j int) float64 { return -w[i-1][j-1] }

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += w[p[j]-1][j-1]
		}
	}
	return assign, total
}

// WorstChannelLoad computes, for a single chip channel, the heaviest load
// any permutation demand can place on it, using the Hungarian method over
// the per-demand contribution matrix. U-turn demands are excluded by
// assigning them -infinity-like weight (large negative).
func WorstChannelLoad(contrib [][]float64) float64 {
	n := len(contrib)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		copy(w[i], contrib[i])
		w[i][i] = -1e9 // forbid U-turns
	}
	_, total := Hungarian(w)
	return total
}
