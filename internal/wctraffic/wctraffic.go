// Package wctraffic reproduces the Section 2.4 design analysis: evaluating
// candidate direction-order on-chip routing algorithms against the
// worst-case inter-node switching demands. Following Towles & Dally [27],
// the worst case over all admissible demands is attained at an extreme point
// of the demand polytope, and extreme points are permutation traffic
// patterns — so an exact search enumerates permutations of the six torus
// directions (the two slices are assumed load-balanced, and a general
// maximum-weight assignment solver is provided as the scalable alternative).
package wctraffic

import (
	"math"

	"anton2/internal/topo"
)

// Demand labels a unit switching demand between two external channels of
// one ASIC: traffic arriving on the channel labeled In departs on the
// channel labeled Out. By the paper's channel-naming convention, traffic
// arriving on channel d travels in direction opposite(d), so a packet
// continuing through the node in one dimension has Out == opposite(In), and
// Out == In would be a non-minimal U-turn (excluded from the demand space).
type Demand struct {
	In, Out topo.Direction
}

// Policy selects which skip-channel roles the routing algorithm uses:
// Through covers X through-traffic, Exit lets packets that finished the X
// dimension cross to the other side before their M-group leg, and Entry
// lets packets turning into X reach a far-side adapter via the near corner.
// The production configuration is Through+Exit (Entry is deadlock-prone in
// combination with Exit; see internal/route).
type Policy struct {
	Through, Entry, Exit bool
}

// DefaultPolicy matches route.NewConfig: through and exit skips.
var DefaultPolicy = Policy{Through: true, Exit: true}

// PathChannels returns the chip channel ids a demand's traffic traverses on
// the given slice under a direction-order algorithm: ingress adapter link,
// any mesh or skip channels, and the egress adapter link. It mirrors the
// routing policy of internal/route: X-dimension legs enter and exit through
// the nearest corner, crossing the skip channel when the adapter sits on
// the far side of the chip (the cross-check against route.Walk lives in the
// tests).
func PathChannels(chip *topo.Chip, order topo.DirOrder, pol Policy, d Demand, slice int) []int {
	in := chip.AdapterAt(topo.AdapterID{Dir: d.In, Slice: slice})
	out := chip.AdapterAt(topo.AdapterID{Dir: d.Out, Slice: slice})
	chans := []int{in.ToRouter}
	rIn, rOut := in.Router, out.Router

	if d.Out == d.In.Opposite() {
		// Through-traffic: single router for Y/Z; skip channel for X.
		if rIn != rOut && pol.Through {
			chans = append(chans, skipChan(chip, rIn, rOut))
			return append(chans, out.FromRouter)
		}
		// Fall through to mesh routing (Y/Z same-router case appends
		// no mesh hops; X without skips crosses the mesh).
		return append(appendMesh(chans, chip, order, rIn, rOut), out.FromRouter)
	}

	// Turning traffic: choose the exit landing (stay at the ingress
	// corner or cross its skip) and the entry target (the egress corner
	// or its skip partner), minimizing total hops with strict preference
	// for fewer skip crossings — identical to route.AdapterIngress and
	// route.legPlan.
	entryFrom := func(at topo.MeshCoord) (cost int, via bool, tgt topo.MeshCoord) {
		tgt = rOut
		cost = meshDist(at, rOut)
		if pol.Entry {
			if alt, ok := chip.SkipPartner(rOut); ok {
				if c := meshDist(at, alt) + 1; c < cost {
					return c, true, alt
				}
			}
		}
		return cost, false, tgt
	}
	costDirect, viaDirect, tgtDirect := entryFrom(rIn)
	landing, via, tgt := rIn, viaDirect, tgtDirect
	exitSkip := false
	if pol.Exit {
		if sp, ok := chip.SkipPartner(rIn); ok {
			if c, v, tg := entryFrom(sp); c+1 < costDirect {
				landing, via, tgt, exitSkip = sp, v, tg, true
			}
		}
	}
	if exitSkip {
		chans = append(chans, skipChan(chip, rIn, landing))
	}
	chans = appendMesh(chans, chip, order, landing, tgt)
	if via {
		chans = append(chans, skipChan(chip, tgt, rOut))
	}
	return append(chans, out.FromRouter)
}

func skipChan(chip *topo.Chip, from, to topo.MeshCoord) int {
	r := chip.RouterAt(from)
	sp := r.SkipPort()
	if sp < 0 || r.Ports[sp].Peer != to {
		panic("wctraffic: skip connectivity missing")
	}
	return r.Ports[sp].OutChan
}

func appendMesh(chans []int, chip *topo.Chip, order topo.DirOrder, from, to topo.MeshCoord) []int {
	cur := from
	for _, md := range order.MeshHops(from, to) {
		r := chip.RouterAt(cur)
		pi := r.MeshPort(md)
		chans = append(chans, r.Ports[pi].OutChan)
		cur = r.Ports[pi].Peer
	}
	return chans
}

func meshDist(a, b topo.MeshCoord) int {
	du, dv := a.U-b.U, a.V-b.V
	if du < 0 {
		du = -du
	}
	if dv < 0 {
		dv = -dv
	}
	return du + dv
}

// Loads accumulates per-chip-channel load for a full permutation demand on
// both slices (each slice carries the same permutation, per the paper's
// load-balanced-slices assumption). perm[i] is the Out direction for In
// direction i. Loads are in units of one torus channel's bandwidth.
func Loads(chip *topo.Chip, order topo.DirOrder, pol Policy, perm [topo.NumDirections]topo.Direction) []float64 {
	loads := make([]float64, len(chip.IntraChans))
	for s := 0; s < topo.NumSlices; s++ {
		for in := topo.Direction(0); in < topo.NumDirections; in++ {
			d := Demand{In: in, Out: perm[in]}
			for _, ch := range PathChannels(chip, order, pol, d, s) {
				loads[ch]++
			}
		}
	}
	return loads
}

// MaxMeshLoad returns the heaviest load over the router-to-router mesh
// channels (the contended resources of Figure 4) and the channel id.
func MaxMeshLoad(chip *topo.Chip, loads []float64) (float64, int) {
	best, id := 0.0, -1
	for i, l := range loads {
		ch := &chip.IntraChans[i]
		if ch.From.Kind != topo.LocRouter || ch.To.Kind != topo.LocRouter {
			continue // adapter/endpoint links carry at most one channel's demand
		}
		if l > best {
			best, id = l, i
		}
	}
	return best, id
}

// Result summarizes the worst-case analysis of one direction order.
type Result struct {
	Order topo.DirOrder
	// WorstLoad is the maximum mesh-channel load over all admissible
	// permutations, in torus-channel bandwidth units.
	WorstLoad float64
	// WorstPerm attains WorstLoad.
	WorstPerm [topo.NumDirections]topo.Direction
	// WorstChan is the chip channel id carrying WorstLoad.
	WorstChan int
}

// permutations enumerates all fixed-point-free permutations of the six
// directions (a U-turn demand In -> In is impossible under minimal routing).
func permutations() [][topo.NumDirections]topo.Direction {
	var out [][topo.NumDirections]topo.Direction
	var perm [topo.NumDirections]topo.Direction
	var used [topo.NumDirections]bool
	var rec func(i int)
	rec = func(i int) {
		if i == topo.NumDirections {
			out = append(out, perm)
			return
		}
		for d := topo.Direction(0); d < topo.NumDirections; d++ {
			if used[d] || int(d) == i {
				continue
			}
			used[d] = true
			perm[i] = d
			rec(i + 1)
			used[d] = false
		}
	}
	rec(0)
	return out
}

// Evaluate computes the worst-case mesh load of one direction order by
// exact enumeration of permutation demands.
func Evaluate(chip *topo.Chip, order topo.DirOrder, pol Policy) Result {
	res := Result{Order: order, WorstChan: -1}
	for _, perm := range permutations() {
		loads := Loads(chip, order, pol, perm)
		l, ch := MaxMeshLoad(chip, loads)
		if l > res.WorstLoad {
			res.WorstLoad, res.WorstPerm, res.WorstChan = l, perm, ch
		}
	}
	return res
}

// SearchAll evaluates every direction-order algorithm and returns results
// sorted as enumerated by topo.AllDirOrders.
func SearchAll(chip *topo.Chip, pol Policy) []Result {
	orders := topo.AllDirOrders()
	out := make([]Result, len(orders))
	for i, o := range orders {
		out[i] = Evaluate(chip, o, pol)
	}
	return out
}

// Best returns the direction orders minimizing worst-case load, and that
// minimum.
func Best(chip *topo.Chip, pol Policy) ([]Result, float64) {
	all := SearchAll(chip, pol)
	best := math.Inf(1)
	for _, r := range all {
		if r.WorstLoad < best {
			best = r.WorstLoad
		}
	}
	var winners []Result
	for _, r := range all {
		if r.WorstLoad == best {
			winners = append(winners, r)
		}
	}
	return winners, best
}

// PaperWorstCasePermutation is permutation (1) of the paper:
//
//	(X+ X- Y+ Y- Z+ Z-)
//	(Z- X+ Y- Z+ X- Y+)
var PaperWorstCasePermutation = [topo.NumDirections]topo.Direction{
	topo.XPos: topo.ZNeg,
	topo.XNeg: topo.XPos,
	topo.YPos: topo.YNeg,
	topo.YNeg: topo.ZPos,
	topo.ZPos: topo.XNeg,
	topo.ZNeg: topo.YPos,
}
