package multicast

import (
	"testing"

	"anton2/internal/topo"
)

func TestTreeReachesAllDestinations(t *testing.T) {
	shape := topo.Shape3(8, 8, 8)
	root := topo.NodeCoord{X: 4, Y: 4, Z: 4}
	dests := PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 0)
	tree := Build(shape, root, dests, topo.AllDimOrders[0], 0)
	for _, d := range dests {
		if len(tree.Deliver[shape.Coord(d.Node)]) == 0 {
			t.Errorf("destination %v not delivered", shape.Coord(d.Node))
		}
	}
	// Walk the tree from the root and confirm every delivery node is
	// reachable over forward edges.
	reach := map[topo.NodeCoord]bool{root: true}
	frontier := []topo.NodeCoord{root}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, dir := range tree.Forward[cur] {
			next := shape.Neighbor(cur, dir)
			if !reach[next] {
				reach[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	for node := range tree.Deliver {
		if !reach[node] {
			t.Errorf("delivery node %v unreachable from root", node)
		}
	}
}

// TestFigure3Savings reproduces the paper's example magnitude: multicasting
// a particle position to a plane neighborhood saves 12 torus hops versus
// unicasts.
func TestFigure3Savings(t *testing.T) {
	shape := topo.Shape3(8, 8, 8)
	root := topo.NodeCoord{X: 4, Y: 4, Z: 4}
	// A 3x3 plane patch (8 neighbors) like Figure 3's example.
	dests := PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 0)
	uni := UnicastHops(shape, root, dests)
	tree := Build(shape, root, dests, topo.AllDimOrders[0], 0)
	if uni != 12 {
		t.Errorf("unicast cost = %d hops, want 12 (8 neighbors: 4 at distance 1, 4 at distance 2)", uni)
	}
	saved := uni - tree.TorusHops()
	if saved < 4 {
		t.Errorf("multicast saves %d hops; expected substantial savings", saved)
	}
	t.Logf("unicast %d hops, multicast %d hops, saved %d", uni, tree.TorusHops(), saved)
}

// TestAlternatingOrdersBalanceLoad demonstrates the Figure 3 point:
// alternating between two complementary dimension orders for successive
// packets lowers the maximum per-channel load relative to always using one
// order.
func TestAlternatingOrdersBalanceLoad(t *testing.T) {
	shape := topo.Shape3(8, 8, 8)
	root := topo.NodeCoord{X: 4, Y: 4, Z: 4}
	// An asymmetric (L-shaped) patch, like Figure 3's one-sided set: the
	// trunk edge of a single-order tree concentrates load.
	mk := func(dx, dy int) topo.NodeEp {
		c := shape.Wrap(topo.NodeCoord{X: root.X + dx, Y: root.Y + dy, Z: root.Z})
		return topo.NodeEp{Node: shape.NodeID(c), Ep: 0}
	}
	dests := []topo.NodeEp{mk(1, 1), mk(1, 2), mk(2, 1)}
	xy := Build(shape, root, dests, topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}, 0)
	yx := Build(shape, root, dests, topo.DimOrder{topo.DimY, topo.DimX, topo.DimZ}, 0)

	same := MaxLoad(ChannelLoads(shape, []*Tree{xy, xy}))
	alternating := MaxLoad(ChannelLoads(shape, []*Tree{xy, yx}))
	if alternating >= same {
		t.Errorf("alternating orders max load %d, single order %d; alternating must balance better", alternating, same)
	}
}

func TestSavingsGrowWithPerNodeCopies(t *testing.T) {
	shape := topo.Shape3(8, 8, 8)
	root := topo.NodeCoord{X: 0, Y: 0, Z: 0}
	single := PlaneNeighborhood(shape, root, topo.DimY, topo.DimZ, 1, 0)
	double := append(append([]topo.NodeEp(nil), single...),
		PlaneNeighborhood(shape, root, topo.DimY, topo.DimZ, 1, 5)...)
	s1 := Savings(shape, root, single, topo.AllDimOrders[0])
	s2 := Savings(shape, root, double, topo.AllDimOrders[0])
	if s2 <= s1 {
		t.Errorf("savings with per-node copies %d, single copies %d; should multiply", s2, s1)
	}
}

func TestTreePathsAreMinimal(t *testing.T) {
	shape := topo.Shape3(6, 6, 6)
	root := topo.NodeCoord{X: 1, Y: 2, Z: 3}
	dests := PlaneNeighborhood(shape, root, topo.DimX, topo.DimZ, 2, 1)
	tree := Build(shape, root, dests, topo.AllDimOrders[3], 0)
	// Tree cost is bounded below by the largest single distance and
	// above by the unicast total.
	uni := UnicastHops(shape, root, dests)
	if tree.TorusHops() > uni {
		t.Errorf("tree hops %d exceed unicast total %d", tree.TorusHops(), uni)
	}
	maxDist := 0
	for _, d := range dests {
		if h := shape.HopDistance(root, shape.Coord(d.Node)); h > maxDist {
			maxDist = h
		}
	}
	if tree.TorusHops() < maxDist {
		t.Errorf("tree hops %d below the farthest destination distance %d", tree.TorusHops(), maxDist)
	}
}

func TestCompileRoundTrip(t *testing.T) {
	shape := topo.Shape3(6, 6, 6)
	root := topo.NodeCoord{X: 2, Y: 2, Z: 2}
	dests := PlaneNeighborhood(shape, root, topo.DimY, topo.DimZ, 1, 3)
	tree := Build(shape, root, dests, topo.AllDimOrders[4], 1)
	c := tree.Compile(shape)
	if c.TotalDeliveries() != len(dests) {
		t.Errorf("compiled deliveries %d, want %d", c.TotalDeliveries(), len(dests))
	}
	if c.Slice != 1 || c.Order != topo.AllDimOrders[4] {
		t.Error("compiled metadata lost")
	}
	// Forward edge count matches the tree's torus hops.
	edges := 0
	for _, e := range c.Entries {
		edges += len(e.Forward)
	}
	if edges != tree.TorusHops() {
		t.Errorf("compiled forwards %d != tree hops %d", edges, tree.TorusHops())
	}
	// DimIndex covers all order positions.
	for i, d := range c.Order {
		if c.DimIndex(d) != uint8(i) {
			t.Errorf("DimIndex(%v) = %d, want %d", d, c.DimIndex(d), i)
		}
	}
}
