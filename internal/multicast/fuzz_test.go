package multicast

import (
	"testing"

	"anton2/internal/topo"
)

// FuzzMulticastTable builds a multicast tree from fuzzed shapes and
// destination sets, compiles it to the in-hardware table form, and replays
// the table's forwarding semantics: starting one copy at the root, every
// node that receives a copy forwards along its Forward directions and
// delivers to its Deliver endpoints. The properties under test are the ones
// the exactly-once delivery guarantee rests on: the replicated flood
// terminates, no node receives more than one copy (the tree has in-degree 1,
// so per-arrival fan-out cannot duplicate), and every destination endpoint
// receives exactly one copy.
func FuzzMulticastTable(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint16(0), uint64(0x123456789abcdef0), uint8(0), uint8(3))
	f.Add(uint8(4), uint8(4), uint8(2), uint16(17), uint64(0xffffffffffffffff), uint8(5), uint8(8))
	f.Add(uint8(2), uint8(1), uint8(1), uint16(1), uint64(1), uint8(2), uint8(1))

	f.Fuzz(func(t *testing.T, kx, ky, kz uint8, rootSel uint16, destBits uint64, orderIdx, nDests uint8) {
		shape := topo.Shape3(int(kx%8)+1, int(ky%8)+1, int(kz%8)+1)
		n := shape.NumNodes()
		root := shape.Coord(int(rootSel) % n)
		order := topo.AllDimOrders[int(orderIdx)%len(topo.AllDimOrders)]

		// Derive up to 16 destinations from the fuzzed bits; duplicates of
		// the same (node, ep) are legal table entries and must each count.
		var dests []topo.NodeEp
		for i, want := 0, int(nDests%16)+1; i < want; i++ {
			bits := destBits >> (i * 4) // reuse bits cyclically past 16
			node := int((bits ^ uint64(i)*2654435761) % uint64(n))
			ep := int((bits >> 2) % topo.NumEndpoints)
			dests = append(dests, topo.NodeEp{Node: node, Ep: ep})
		}

		tree := Build(shape, root, dests, order, 0)
		c := tree.Compile(shape)

		expected := map[topo.NodeEp]int{}
		for _, d := range dests {
			expected[d]++
		}
		if got := c.TotalDeliveries(); got != len(dests) {
			t.Fatalf("TotalDeliveries = %d, want %d", got, len(dests))
		}

		// Replay the table flood.
		copies := map[int]int{}
		delivered := map[topo.NodeEp]int{}
		queue := []int{shape.NodeID(root)}
		copies[queue[0]]++
		steps := 0
		for len(queue) > 0 {
			if steps++; steps > n+tree.TorusHops()+1 {
				t.Fatalf("table flood did not terminate within %d steps", steps)
			}
			cur := queue[0]
			queue = queue[1:]
			e := c.Entries[cur]
			for _, ep := range e.Deliver {
				delivered[topo.NodeEp{Node: cur, Ep: ep}]++
			}
			for _, dir := range e.Forward {
				next := shape.NodeID(shape.Neighbor(shape.Coord(cur), dir))
				copies[next]++
				if copies[next] > 1 {
					t.Fatalf("node %d received %d copies (tree in-degree > 1): shape %v root %v order %v dests %v",
						next, copies[next], shape, root, order, dests)
				}
				queue = append(queue, next)
			}
		}

		for d, want := range expected {
			if delivered[d] != want {
				t.Fatalf("destination %v delivered %d copies, want %d (shape %v root %v order %v)",
					d, delivered[d], want, shape, root, order)
			}
		}
		for d, got := range delivered {
			if expected[d] == 0 {
				t.Fatalf("unexpected delivery of %d copies to non-destination %v", got, d)
			}
		}
	})
}
