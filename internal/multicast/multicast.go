// Package multicast implements the table-based inter-node multicast of
// Section 2.3: a destination set is compiled into a dimension-order tree
// whose root-to-leaf paths are each valid unicast routes (preserving the
// deadlock guarantees), sharing torus hops along common prefixes. In MD
// simulations this pattern broadcasts a particle position to the endpoints
// of neighboring nodes; alternating between complementary dimension orders
// balances load across the torus channels (Figure 3).
package multicast

import (
	"fmt"
	"sort"

	"anton2/internal/topo"
)

// Edge is one directed torus hop of a multicast tree.
type Edge struct {
	From topo.NodeCoord
	Dir  topo.Direction
}

// Tree is a compiled multicast route for one destination set.
type Tree struct {
	Root  topo.NodeCoord
	Order topo.DimOrder
	Slice int
	// Forward maps each node in the tree to the directions it forwards
	// copies along.
	Forward map[topo.NodeCoord][]topo.Direction
	// Deliver maps nodes to the destination endpoints written locally.
	Deliver map[topo.NodeCoord][]int
	edges   int
}

// Build compiles a destination set into a dimension-order multicast tree.
// Every root-to-leaf path follows the given dimension order along minimal
// routes (positive tie-break), so each path is a valid unicast route.
func Build(shape topo.TorusShape, root topo.NodeCoord, dests []topo.NodeEp, order topo.DimOrder, slice int) *Tree {
	if !order.Valid() {
		panic("multicast: invalid dimension order")
	}
	t := &Tree{
		Root:    root,
		Order:   order,
		Slice:   slice,
		Forward: map[topo.NodeCoord][]topo.Direction{},
		Deliver: map[topo.NodeCoord][]int{},
	}
	seen := map[Edge]bool{}
	for _, d := range dests {
		dc := shape.Coord(d.Node)
		cur := root
		for _, dim := range order {
			delta, _ := shape.MinimalDelta(cur, dc, dim)
			if delta == 0 {
				continue
			}
			dir := topo.DirectionOf(dim, sgn(delta))
			n := delta
			if n < 0 {
				n = -n
			}
			for i := 0; i < n; i++ {
				e := Edge{From: cur, Dir: dir}
				if !seen[e] {
					seen[e] = true
					t.Forward[cur] = append(t.Forward[cur], dir)
					t.edges++
				}
				cur = shape.Neighbor(cur, dir)
			}
		}
		if cur != dc {
			panic(fmt.Sprintf("multicast: route to %v ended at %v", dc, cur))
		}
		t.Deliver[dc] = append(t.Deliver[dc], d.Ep)
	}
	for _, dirs := range t.Forward {
		sort.Slice(dirs, func(i, j int) bool { return dirs[i] < dirs[j] })
	}
	return t
}

// TorusHops returns the tree's inter-node bandwidth cost: the number of
// distinct torus hops carrying a copy of the packet.
func (t *Tree) TorusHops() int { return t.edges }

// TorusLinks returns the sorted global channel ids of every torus link the
// tree forwards copies along (all hops ride the tree's slice).
func (t *Tree) TorusLinks(m *topo.Machine) []int {
	var out []int
	for from, dirs := range t.Forward {
		node := m.Shape.NodeID(from)
		for _, d := range dirs {
			out = append(out, m.TorusChanID(node, d, t.Slice))
		}
	}
	sort.Ints(out)
	return out
}

// UsesAny reports whether the tree forwards along any link in failed.
func (t *Tree) UsesAny(m *topo.Machine, failed map[int]bool) bool {
	if len(failed) == 0 {
		return false
	}
	for from, dirs := range t.Forward {
		node := m.Shape.NodeID(from)
		for _, d := range dirs {
			if failed[m.TorusChanID(node, d, t.Slice)] {
				return true
			}
		}
	}
	return false
}

// BuildAvoiding compiles a multicast tree that forwards along no link in
// failed, preferring the given order and slice. Candidates are tried in
// deterministic order: the preferred (order, slice), the preferred order on
// the other slices, then every (order, slice) combination. A single failed
// link is always avoidable (the parallel slice carries the same hop). ok is
// false when every candidate tree touches a failed link.
func BuildAvoiding(m *topo.Machine, root topo.NodeCoord, dests []topo.NodeEp, order topo.DimOrder, slice int, failed map[int]bool) (t *Tree, ok bool) {
	try := func(ord topo.DimOrder, s int) *Tree {
		tr := Build(m.Shape, root, dests, ord, s)
		if tr.UsesAny(m, failed) {
			return nil
		}
		return tr
	}
	for ds := 0; ds < topo.NumSlices; ds++ {
		if tr := try(order, (slice+ds)%topo.NumSlices); tr != nil {
			return tr, true
		}
	}
	for _, ord := range topo.AllDimOrders {
		for s := 0; s < topo.NumSlices; s++ {
			if tr := try(ord, s); tr != nil {
				return tr, true
			}
		}
	}
	return Build(m.Shape, root, dests, order, slice), false
}

// UnicastHops returns the bandwidth cost of reaching the same destinations
// with individual unicasts: the sum of minimal hop distances (endpoint
// copies on the same node share one unicast in the best case, so distinct
// destination nodes are counted once — matching the paper's comparison of
// torus-hop bandwidth).
func UnicastHops(shape topo.TorusShape, root topo.NodeCoord, dests []topo.NodeEp) int {
	seen := map[int]bool{}
	total := 0
	for _, d := range dests {
		if seen[d.Node] {
			// A second endpoint on an already-counted node would in
			// fact need its own unicast; count it too, as the paper
			// notes the savings multiply with per-node copies.
			total += shape.HopDistance(root, shape.Coord(d.Node))
			continue
		}
		seen[d.Node] = true
		total += shape.HopDistance(root, shape.Coord(d.Node))
	}
	return total
}

// Savings returns unicast-minus-multicast torus hops for a destination set
// under the given order.
func Savings(shape topo.TorusShape, root topo.NodeCoord, dests []topo.NodeEp, order topo.DimOrder) int {
	t := Build(shape, root, dests, order, 0)
	return UnicastHops(shape, root, dests) - t.TorusHops()
}

// ChannelLoads accumulates per-(node, direction) load over a set of trees,
// for studying the Figure 3 load-balancing effect of alternating orders.
func ChannelLoads(shape topo.TorusShape, trees []*Tree) map[Edge]int {
	out := map[Edge]int{}
	for _, t := range trees {
		for from, dirs := range t.Forward {
			for _, d := range dirs {
				out[Edge{From: from, Dir: d}]++
			}
		}
	}
	return out
}

// MaxLoad returns the heaviest per-channel load in a load map.
func MaxLoad(loads map[Edge]int) int {
	max := 0
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	return max
}

// Entry lists one node's multicast actions for a group: torus directions to
// forward copies along and local endpoints to deliver to. This is the
// in-hardware table format held by the endpoint and channel adapters
// (Table 2's "Multicast" area).
type Entry struct {
	Forward []topo.Direction
	Deliver []int
}

// Compiled is a multicast group's routing table, loaded into a machine at
// initialization (destination sets stay constant for a whole simulation).
type Compiled struct {
	Order   topo.DimOrder
	Slice   uint8
	Entries map[int]Entry // dense node id -> actions
}

// Compile flattens a tree into the per-node table form.
func (t *Tree) Compile(shape topo.TorusShape) *Compiled {
	c := &Compiled{
		Order:   t.Order,
		Slice:   uint8(t.Slice),
		Entries: map[int]Entry{},
	}
	touch := func(n topo.NodeCoord) Entry { return c.Entries[shape.NodeID(n)] }
	for n, dirs := range t.Forward {
		e := touch(n)
		e.Forward = append(e.Forward, dirs...)
		c.Entries[shape.NodeID(n)] = e
	}
	for n, eps := range t.Deliver {
		e := touch(n)
		e.Deliver = append(e.Deliver, eps...)
		c.Entries[shape.NodeID(n)] = e
	}
	return c
}

// DimIndex returns a dimension's position in the tree's order.
func (c *Compiled) DimIndex(d topo.Dim) uint8 {
	for i, dim := range c.Order {
		if dim == d {
			return uint8(i)
		}
	}
	panic("multicast: dimension not in order")
}

// TotalDeliveries counts the endpoint copies the group produces.
func (c *Compiled) TotalDeliveries() int {
	total := 0
	for _, e := range c.Entries {
		total += len(e.Deliver)
	}
	return total
}

// PlaneNeighborhood builds the Figure 3 style destination set: the nodes of
// a (2r+1)x(2r+1) plane patch around the root in the given two dimensions,
// excluding the root itself, each receiving one endpoint copy.
func PlaneNeighborhood(shape topo.TorusShape, root topo.NodeCoord, dimA, dimB topo.Dim, r int, ep int) []topo.NodeEp {
	var out []topo.NodeEp
	for da := -r; da <= r; da++ {
		for db := -r; db <= r; db++ {
			if da == 0 && db == 0 {
				continue
			}
			c := root
			c = c.With(dimA, c.Get(dimA)+da)
			c = c.With(dimB, c.Get(dimB)+db)
			c = shape.Wrap(c)
			out = append(out, topo.NodeEp{Node: shape.NodeID(c), Ep: ep})
		}
	}
	return out
}

func sgn(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}
