package multicast

import (
	"testing"

	"anton2/internal/topo"
)

func avoidMachine(t *testing.T) *topo.Machine {
	t.Helper()
	m, err := topo.NewMachine(topo.Shape3(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBuildAvoidingSingleLink: failing any single link of a tree must yield
// an alternative tree that still reaches every destination and avoids it.
func TestBuildAvoidingSingleLink(t *testing.T) {
	m := avoidMachine(t)
	root := topo.NodeCoord{X: 1, Y: 1, Z: 1}
	dests := PlaneNeighborhood(m.Shape, root, topo.DimX, topo.DimY, 1, 0)
	base := Build(m.Shape, root, dests, topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}, 0)
	for _, link := range base.TorusLinks(m) {
		failed := map[int]bool{link: true}
		tr, ok := BuildAvoiding(m, root, dests, base.Order, base.Slice, failed)
		if !ok {
			t.Fatalf("no avoiding tree for single failed link %d", link)
		}
		if tr.UsesAny(m, failed) {
			t.Fatalf("avoiding tree still uses failed link %d", link)
		}
		if got, want := tr.Compile(m.Shape).TotalDeliveries(), len(dests); got != want {
			t.Fatalf("avoiding tree delivers %d copies, want %d", got, want)
		}
	}
}

// TestBuildAvoidingPrefersGiven: with no failures the preferred (order,
// slice) is returned untouched.
func TestBuildAvoidingPrefersGiven(t *testing.T) {
	m := avoidMachine(t)
	root := topo.NodeCoord{}
	dests := PlaneNeighborhood(m.Shape, root, topo.DimY, topo.DimZ, 1, 2)
	ord := topo.DimOrder{topo.DimZ, topo.DimY, topo.DimX}
	tr, ok := BuildAvoiding(m, root, dests, ord, 1, nil)
	if !ok || tr.Order != ord || tr.Slice != 1 {
		t.Fatalf("preferred choice not kept: order %v slice %d ok %v", tr.Order, tr.Slice, ok)
	}
}

// TestBuildAvoidingImpossible: failing both slices of the only hop to an
// adjacent destination leaves no valid tree; ok must be false.
func TestBuildAvoidingImpossible(t *testing.T) {
	m := avoidMachine(t)
	root := topo.NodeCoord{}
	dest := m.Shape.Neighbor(root, topo.XPos)
	dests := []topo.NodeEp{{Node: m.Shape.NodeID(dest), Ep: 0}}
	failed := map[int]bool{}
	for s := 0; s < topo.NumSlices; s++ {
		failed[m.TorusChanID(m.Shape.NodeID(root), topo.XPos, s)] = true
	}
	if _, ok := BuildAvoiding(m, root, dests, topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}, 0, failed); ok {
		t.Fatal("BuildAvoiding claimed to avoid an unavoidable link")
	}
}
