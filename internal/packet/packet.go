// Package packet defines the network packet representation. Anton 2 packets
// are fine-grained: the common case is 16 bytes of payload plus 8 bytes of
// header (one 24-byte flit, transferred over a mesh channel in a single
// cycle), and the largest packet is twice that (two flits).
package packet

import (
	"anton2/internal/route"
	"anton2/internal/topo"
)

// Flit geometry (Section 2.1/2.2).
const (
	// FlitBytes is the mesh channel width: 192 bits per direction.
	FlitBytes = 24
	// HeaderBytes is the per-packet header size.
	HeaderBytes = 8
	// CommonPayloadBytes is the typical payload (one-flit packet).
	CommonPayloadBytes = 16
	// MaxPayloadBytes is the largest payload (two-flit packet).
	MaxPayloadBytes = 32
	// MaxFlits is the largest packet size in flits.
	MaxFlits = 2
)

// SizeForPayload returns the packet size in flits for a payload byte count.
func SizeForPayload(bytes int) uint8 {
	if bytes <= CommonPayloadBytes {
		return 1
	}
	if bytes <= MaxPayloadBytes {
		return 2
	}
	panic("packet: payload exceeds the 32-byte maximum")
}

// Packet is one network packet. Packets move whole (virtual cut-through):
// Size only affects channel occupancy and credit accounting.
type Packet struct {
	ID    uint64
	Src   topo.NodeEp
	Dst   topo.NodeEp
	Size  uint8 // flits
	Route route.State
	// PatternID labels the packet with one of the precomputed traffic
	// patterns for inverse-weighted arbitration (Section 3.2); it is a
	// field in the Anton 2 packet header.
	PatternID uint8
	// MGroup is the multicast group id, or -1 for unicast packets.
	// Multicast packets are replicated at endpoint and channel adapters
	// according to the loaded tables (Section 2.3).
	MGroup int

	// CurVC is the physical VC on the channel currently carrying the
	// packet; the sender sets it at each hop.
	CurVC uint8

	// Timestamps (cycles). InjectedAt is when software handed the packet
	// to the endpoint adapter; DeliveredAt when the destination endpoint
	// adapter accepted it. ArrivedAt is the arrival cycle at the current
	// hop (overwritten hop by hop, used for pipeline modeling).
	InjectedAt  uint64
	DeliveredAt uint64
	ArrivedAt   uint64
	// NotBefore delays injection until the given cycle (rate-controlled
	// streams in the energy experiments).
	NotBefore uint64

	// TorusHops counts inter-node hops taken (for latency-vs-hops plots).
	TorusHops uint8

	// Payload carries modeled data bits for the router-energy
	// experiments; nil disables data-dependent accounting.
	Payload []byte

	// Trace, when non-nil, accumulates per-stage timestamps as the packet
	// moves (used to measure the Figure 12 latency decomposition).
	Trace []TraceEvent

	// SourceRoute, when non-nil, overrides route computation: each entry
	// is the output-port index to take at the next router visited. Used
	// by the Section 4.5 energy measurements to build circuitous routes.
	SourceRoute []uint8
	// SRIdx is the position within SourceRoute.
	SRIdx int
	// Circulate marks a source-routed packet that is re-injected forever
	// (the continuous streams of the energy experiment).
	Circulate bool
}

// TraceEvent is one timestamped stage of a traced packet's journey.
type TraceEvent struct {
	Stage string
	Cycle uint64
}

// Tracepoint records a stage if tracing is enabled on the packet.
func (p *Packet) Tracepoint(stage string, cycle uint64) {
	if p.Trace != nil {
		p.Trace = append(p.Trace, TraceEvent{Stage: stage, Cycle: cycle})
	}
}

// StartTrace enables stage tracing.
func (p *Packet) StartTrace() {
	if p.Trace == nil {
		p.Trace = make([]TraceEvent, 0, 16)
	}
}

// Reset clears a packet for reuse from a free list.
func (p *Packet) Reset() {
	*p = Packet{Payload: p.Payload[:0], MGroup: -1}
}

// HammingDistance returns the number of differing bits between two payloads,
// counting a missing byte in either as all-zero bits.
func HammingDistance(a, b []byte) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	total := 0
	for i := 0; i < n; i++ {
		var x, y byte
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		total += popcount(x ^ y)
	}
	return total
}

// SetBits returns the number of one bits in the payload.
func SetBits(p []byte) int {
	total := 0
	for _, b := range p {
		total += popcount(b)
	}
	return total
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
