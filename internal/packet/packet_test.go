package packet

import (
	"bytes"
	"errors"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

func TestSizeForPayload(t *testing.T) {
	cases := []struct {
		bytes int
		want  uint8
	}{
		{0, 1}, {1, 1}, {CommonPayloadBytes, 1},
		{CommonPayloadBytes + 1, 2}, {MaxPayloadBytes, 2},
	}
	for _, c := range cases {
		if got := SizeForPayload(c.bytes); got != c.want {
			t.Errorf("SizeForPayload(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("SizeForPayload(%d) did not panic", MaxPayloadBytes+1)
		}
	}()
	SizeForPayload(MaxPayloadBytes + 1)
}

func TestResetPreservesPayloadCapacity(t *testing.T) {
	p := &Packet{ID: 7, Payload: make([]byte, 16, 32), TorusHops: 3}
	p.Reset()
	if p.ID != 0 || p.TorusHops != 0 {
		t.Errorf("Reset left fields: %+v", p)
	}
	if p.MGroup != -1 {
		t.Errorf("Reset MGroup = %d, want -1 (unicast)", p.MGroup)
	}
	if len(p.Payload) != 0 || cap(p.Payload) != 32 {
		t.Errorf("Reset payload len %d cap %d, want 0/32", len(p.Payload), cap(p.Payload))
	}
}

func TestHammingAndSetBits(t *testing.T) {
	if d := HammingDistance([]byte{0xFF}, []byte{0x0F}); d != 4 {
		t.Errorf("HammingDistance = %d, want 4", d)
	}
	if d := HammingDistance(nil, []byte{0xFF, 0x01}); d != 9 {
		t.Errorf("HammingDistance vs nil = %d, want 9", d)
	}
	if n := SetBits([]byte{0x03, 0x80}); n != 3 {
		t.Errorf("SetBits = %d, want 3", n)
	}
}

func validHeader() Header {
	return Header{
		Src:       topo.NodeEp{Node: 5, Ep: 3},
		Dst:       topo.NodeEp{Node: 4090, Ep: topo.NumEndpoints - 1},
		Class:     route.ClassReply,
		Order:     topo.AllDimOrders[4],
		Slice:     1,
		Ties:      [topo.NumDims]int8{1, -1, 1},
		PatternID: 1,
		MGroup:    -1,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("position update!"), bytes.Repeat([]byte{0xA5}, MaxPayloadBytes)}
	headers := []Header{validHeader()}
	h2 := validHeader()
	h2.MGroup = 0
	h3 := validHeader()
	h3.MGroup = MaxWireMGroup
	h3.Ties = [topo.NumDims]int8{-1, -1, -1}
	headers = append(headers, h2, h3)

	for _, h := range headers {
		for _, pay := range payloads {
			buf, err := Encode(h, pay)
			if err != nil {
				t.Fatalf("Encode(%+v, %d bytes): %v", h, len(pay), err)
			}
			if len(buf) != HeaderBytes+len(pay) {
				t.Fatalf("Encode produced %d bytes, want %d", len(buf), HeaderBytes+len(pay))
			}
			got, gotPay, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != h {
				t.Errorf("round trip header:\n got %+v\nwant %+v", got, h)
			}
			if !bytes.Equal(gotPay, pay) {
				t.Errorf("round trip payload: got %x, want %x", gotPay, pay)
			}
		}
	}
}

func TestEncodeFieldBounds(t *testing.T) {
	mut := []struct {
		name string
		mod  func(*Header)
	}{
		{"src node too big", func(h *Header) { h.Src.Node = 4096 }},
		{"src node negative", func(h *Header) { h.Src.Node = -1 }},
		{"src ep too big", func(h *Header) { h.Src.Ep = topo.NumEndpoints }},
		{"dst ep too big", func(h *Header) { h.Dst.Ep = topo.NumEndpoints }},
		{"class too big", func(h *Header) { h.Class = route.NumClasses }},
		{"invalid order", func(h *Header) { h.Order = topo.DimOrder{0, 0, 0} }},
		{"slice too big", func(h *Header) { h.Slice = topo.NumSlices }},
		{"zero tie sign", func(h *Header) { h.Ties[1] = 0 }},
		{"pattern too big", func(h *Header) { h.PatternID = 4 }},
		{"mgroup too big", func(h *Header) { h.MGroup = MaxWireMGroup + 1 }},
		{"mgroup below -1", func(h *Header) { h.MGroup = -2 }},
	}
	for _, m := range mut {
		h := validHeader()
		m.mod(&h)
		if _, err := Encode(h, nil); !errors.Is(err, ErrFieldRange) {
			t.Errorf("%s: Encode err = %v, want ErrFieldRange", m.name, err)
		}
	}
	if _, err := Encode(validHeader(), make([]byte, MaxPayloadBytes+1)); !errors.Is(err, ErrFieldRange) {
		t.Errorf("oversize payload: Encode err = %v, want ErrFieldRange", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	good, err := Encode(validHeader(), []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < HeaderBytes; n++ {
		if _, _, err := Decode(good[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(%d bytes) err = %v, want ErrTruncated", n, err)
		}
	}
	// Header intact but payload cut short or padded.
	if _, _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: err = %v, want ErrTruncated", err)
	}
	if _, _, err := Decode(append(append([]byte{}, good...), 0)); !errors.Is(err, ErrTruncated) {
		t.Errorf("trailing byte: err = %v, want ErrTruncated", err)
	}

	corrupt := func(mod func([]byte)) []byte {
		b := append([]byte{}, good...)
		mod(b)
		return b
	}
	// Payload length field beyond the 32-byte maximum (bits [44,50)):
	// setting bit 49 turns the encoded 16 into 48.
	b := corrupt(func(b []byte) { b[6] |= 0x02 })
	if _, _, err := Decode(b); !errors.Is(err, ErrFieldRange) {
		t.Errorf("paylen 48: err = %v, want ErrFieldRange", err)
	}
	// Dimension-order index 6 or 7 (bits [35,38)).
	b = corrupt(func(b []byte) { b[4] |= 0x7 << 3 })
	if _, _, err := Decode(b); !errors.Is(err, ErrFieldRange) {
		t.Errorf("order index 7: err = %v, want ErrFieldRange", err)
	}
	// Source endpoint 31 (bits [12,17)).
	b = corrupt(func(b []byte) { b[1] |= 0xF0; b[2] |= 0x01 })
	if _, _, err := Decode(b); !errors.Is(err, ErrFieldRange) {
		t.Errorf("src ep 31: err = %v, want ErrFieldRange", err)
	}
}

func TestHeaderOf(t *testing.T) {
	p := &Packet{
		Src:       topo.NodeEp{Node: 9, Ep: 2},
		Dst:       topo.NodeEp{Node: 11, Ep: 20},
		PatternID: 1,
		MGroup:    17,
	}
	p.Route.Class = route.ClassReply
	p.Route.DimOrder = topo.AllDimOrders[2]
	p.Route.Slice = 1
	p.Route.Ties = [topo.NumDims]int8{-1, 1, -1}

	h := HeaderOf(p)
	buf, err := Encode(h, nil)
	if err != nil {
		t.Fatalf("Encode(HeaderOf(p)): %v", err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("HeaderOf round trip: got %+v, want %+v", got, h)
	}
}
