package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// Wire format: the 8-byte Anton 2 packet header packs the routing choices
// made at injection — source and destination, traffic class, the randomized
// dimension order, slice, and tie-break signs (Section 2.3), the arbitration
// pattern label (Section 3.2), and the multicast group id (Section 2.3) —
// into a single 64-bit little-endian word, followed by the payload.
//
// Bit layout (LSB first):
//
//	[ 0,12) source node      (radix <= 16 per dimension -> 4096 nodes)
//	[12,17) source endpoint  (23 endpoints per node)
//	[17,29) destination node
//	[29,34) destination endpoint
//	[34,35) traffic class
//	[35,38) dimension order  (index into topo.AllDimOrders)
//	[38,39) slice
//	[39,42) tie-break signs  (1 = positive, one bit per dimension)
//	[42,44) pattern label
//	[44,50) payload length in bytes (<= 32)
//	[50,64) multicast group  (all-ones = unicast)
const (
	maxWireNode = 1 << 12
	maxPattern  = 1 << 2
	// MaxWireMGroup is the largest encodable multicast group id; the
	// all-ones value is reserved to mean unicast.
	MaxWireMGroup = 1<<14 - 2

	mgroupUnicast = 1<<14 - 1
)

// Codec errors. ErrTruncated covers buffers shorter than the header or the
// encoded payload length; ErrFieldRange covers field values outside the wire
// format's bounds.
var (
	ErrTruncated  = errors.New("packet: truncated buffer")
	ErrFieldRange = errors.New("packet: field out of range")
)

// Header is the decoded form of the 8-byte wire header.
type Header struct {
	Src, Dst  topo.NodeEp
	Class     route.Class
	Order     topo.DimOrder
	Slice     uint8
	Ties      [topo.NumDims]int8 // +1 or -1 per dimension
	PatternID uint8
	MGroup    int // multicast group id, -1 for unicast
}

// orderIndex returns a dimension order's position in topo.AllDimOrders.
func orderIndex(o topo.DimOrder) (int, bool) {
	for i, cand := range topo.AllDimOrders {
		if cand == o {
			return i, true
		}
	}
	return 0, false
}

func checkNodeEp(role string, ne topo.NodeEp) error {
	if ne.Node < 0 || ne.Node >= maxWireNode {
		return fmt.Errorf("%w: %s node %d (max %d)", ErrFieldRange, role, ne.Node, maxWireNode-1)
	}
	if ne.Ep < 0 || ne.Ep >= topo.NumEndpoints {
		return fmt.Errorf("%w: %s endpoint %d (max %d)", ErrFieldRange, role, ne.Ep, topo.NumEndpoints-1)
	}
	return nil
}

// Encode packs a header and payload into wire form.
func Encode(h Header, payload []byte) ([]byte, error) {
	if err := checkNodeEp("source", h.Src); err != nil {
		return nil, err
	}
	if err := checkNodeEp("destination", h.Dst); err != nil {
		return nil, err
	}
	if h.Class >= route.NumClasses {
		return nil, fmt.Errorf("%w: class %d", ErrFieldRange, h.Class)
	}
	oi, ok := orderIndex(h.Order)
	if !ok {
		return nil, fmt.Errorf("%w: dimension order %v", ErrFieldRange, h.Order)
	}
	if h.Slice >= topo.NumSlices {
		return nil, fmt.Errorf("%w: slice %d", ErrFieldRange, h.Slice)
	}
	var ties uint64
	for d, t := range h.Ties {
		switch t {
		case 1:
			ties |= 1 << d
		case -1:
		default:
			return nil, fmt.Errorf("%w: tie-break sign %d for dim %v (want +1 or -1)", ErrFieldRange, t, topo.Dim(d))
		}
	}
	if h.PatternID >= maxPattern {
		return nil, fmt.Errorf("%w: pattern %d", ErrFieldRange, h.PatternID)
	}
	if len(payload) > MaxPayloadBytes {
		return nil, fmt.Errorf("%w: payload %d bytes (max %d)", ErrFieldRange, len(payload), MaxPayloadBytes)
	}
	mg := uint64(mgroupUnicast)
	if h.MGroup >= 0 {
		if h.MGroup > MaxWireMGroup {
			return nil, fmt.Errorf("%w: multicast group %d (max %d)", ErrFieldRange, h.MGroup, MaxWireMGroup)
		}
		mg = uint64(h.MGroup)
	} else if h.MGroup != -1 {
		return nil, fmt.Errorf("%w: multicast group %d", ErrFieldRange, h.MGroup)
	}

	w := uint64(h.Src.Node) |
		uint64(h.Src.Ep)<<12 |
		uint64(h.Dst.Node)<<17 |
		uint64(h.Dst.Ep)<<29 |
		uint64(h.Class)<<34 |
		uint64(oi)<<35 |
		uint64(h.Slice)<<38 |
		ties<<39 |
		uint64(h.PatternID)<<42 |
		uint64(len(payload))<<44 |
		mg<<50

	out := make([]byte, HeaderBytes+len(payload))
	binary.LittleEndian.PutUint64(out, w)
	copy(out[HeaderBytes:], payload)
	return out, nil
}

// Decode unpacks a wire buffer into a header and its payload (aliasing
// data). The buffer must be exactly header plus encoded payload length.
func Decode(data []byte) (Header, []byte, error) {
	if len(data) < HeaderBytes {
		return Header{}, nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), HeaderBytes)
	}
	w := binary.LittleEndian.Uint64(data)
	h := Header{
		Src:       topo.NodeEp{Node: int(w & 0xFFF), Ep: int(w >> 12 & 0x1F)},
		Dst:       topo.NodeEp{Node: int(w >> 17 & 0xFFF), Ep: int(w >> 29 & 0x1F)},
		Class:     route.Class(w >> 34 & 1),
		Slice:     uint8(w >> 38 & 1),
		PatternID: uint8(w >> 42 & 0x3),
	}
	if h.Src.Ep >= topo.NumEndpoints || h.Dst.Ep >= topo.NumEndpoints {
		return Header{}, nil, fmt.Errorf("%w: endpoint out of range (src %d, dst %d)", ErrFieldRange, h.Src.Ep, h.Dst.Ep)
	}
	oi := int(w >> 35 & 0x7)
	if oi >= len(topo.AllDimOrders) {
		return Header{}, nil, fmt.Errorf("%w: dimension-order index %d", ErrFieldRange, oi)
	}
	h.Order = topo.AllDimOrders[oi]
	for d := 0; d < topo.NumDims; d++ {
		if w>>(39+d)&1 != 0 {
			h.Ties[d] = 1
		} else {
			h.Ties[d] = -1
		}
	}
	paylen := int(w >> 44 & 0x3F)
	if paylen > MaxPayloadBytes {
		return Header{}, nil, fmt.Errorf("%w: payload length %d (max %d)", ErrFieldRange, paylen, MaxPayloadBytes)
	}
	if len(data) != HeaderBytes+paylen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes, header declares %d of payload", ErrTruncated, len(data), paylen)
	}
	if mg := int(w >> 50 & 0x3FFF); mg == mgroupUnicast {
		h.MGroup = -1
	} else {
		h.MGroup = mg
	}
	return h, data[HeaderBytes:], nil
}

// HeaderOf extracts the wire header fields of an in-memory packet.
func HeaderOf(p *Packet) Header {
	return Header{
		Src:       p.Src,
		Dst:       p.Dst,
		Class:     p.Route.Class,
		Order:     p.Route.DimOrder,
		Slice:     p.Route.Slice,
		Ties:      p.Route.Ties,
		PatternID: p.PatternID,
		MGroup:    p.MGroup,
	}
}
