package packet

import (
	"bytes"
	"testing"

	"anton2/internal/route"
	"anton2/internal/topo"
)

// FuzzDecode feeds arbitrary bytes through Decode. Decoding must never
// panic, and any buffer that decodes successfully must re-encode to the
// identical bytes (the wire format has no non-canonical encodings).
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(Header{
		Src:   topo.NodeEp{Node: 1, Ep: 2},
		Dst:   topo.NodeEp{Node: 3, Ep: 4},
		Order: topo.AllDimOrders[0],
		Ties:  [topo.NumDims]int8{1, 1, 1},
	}, []byte("0123456789abcdef"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, pay, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(h, pay)
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %+v: %v", h, err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzRoundTrip builds structured headers from fuzzed fields; every header
// Encode accepts must survive a Decode round trip unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add(0, 0, 100, 22, uint8(1), uint8(3), uint8(1), uint8(0b101), uint8(1), 5, []byte("payload"))
	f.Fuzz(func(t *testing.T, srcNode, srcEp, dstNode, dstEp int,
		class, orderIdx, slice, tieBits, pattern uint8, mgroup int, payload []byte) {
		h := Header{
			Src:       topo.NodeEp{Node: srcNode, Ep: srcEp},
			Dst:       topo.NodeEp{Node: dstNode, Ep: dstEp},
			Class:     route.Class(class),
			Slice:     slice,
			PatternID: pattern,
			MGroup:    mgroup,
		}
		if int(orderIdx) < len(topo.AllDimOrders) {
			h.Order = topo.AllDimOrders[orderIdx]
		}
		for d := 0; d < topo.NumDims; d++ {
			if tieBits>>d&1 != 0 {
				h.Ties[d] = 1
			} else {
				h.Ties[d] = -1
			}
		}
		buf, err := Encode(h, payload)
		if err != nil {
			return // out-of-range fields are supposed to be rejected
		}
		got, gotPay, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode of fresh encoding failed: %v", err)
		}
		if got != h {
			t.Fatalf("round trip header:\n got %+v\nwant %+v", got, h)
		}
		if len(payload) != len(gotPay) || (len(payload) > 0 && !bytes.Equal(gotPay, payload)) {
			t.Fatalf("round trip payload: got %x, want %x", gotPay, payload)
		}
	})
}
