package sim

// Pipe is a latency FIFO connecting two components. Items sent at cycle t
// become receivable at cycle t+latency. Pipes are the only sanctioned way for
// components to exchange state; because latency is at least one cycle, the
// order in which components tick within a cycle cannot affect results.
//
// Active-set contract: a Pipe does no work on idle cycles — polling it when
// nothing has arrived is a no-op — so under Engine ModeActive the sender side
// is responsible for waking the receiving component at the arrival cycle of
// whatever it enqueues (fabric.Channel does this for packets and credits).
// Skipped idle cycles therefore cannot lose or delay items: arrival times are
// absolute cycles, not tick counts.
type Pipe[T any] struct {
	latency uint64
	head    int
	q       []pipeEntry[T]
}

type pipeEntry[T any] struct {
	at   uint64
	item T
}

// NewPipe returns a pipe with the given latency in cycles (minimum 1).
func NewPipe[T any](latency uint64) *Pipe[T] {
	if latency == 0 {
		latency = 1
	}
	return &Pipe[T]{latency: latency}
}

// Latency returns the pipe's delivery latency in cycles.
func (p *Pipe[T]) Latency() uint64 { return p.latency }

// Send enqueues an item at cycle now; it arrives at now+latency.
func (p *Pipe[T]) Send(now uint64, v T) {
	p.q = append(p.q, pipeEntry[T]{at: now + p.latency, item: v})
}

// SendAt enqueues an item that arrives at the explicit cycle at, which must
// be at least now+1 for determinism. It is used to model serialized channels
// whose delivery time depends on occupancy.
func (p *Pipe[T]) SendAt(at uint64, v T) {
	p.q = append(p.q, pipeEntry[T]{at: at, item: v})
}

// Peek returns the oldest item if it has arrived by cycle now.
func (p *Pipe[T]) Peek(now uint64) (T, bool) {
	var zero T
	if p.head >= len(p.q) {
		return zero, false
	}
	e := p.q[p.head]
	if e.at > now {
		return zero, false
	}
	return e.item, true
}

// Poll removes and returns the oldest item if it has arrived by cycle now.
func (p *Pipe[T]) Poll(now uint64) (T, bool) {
	v, ok := p.Peek(now)
	if !ok {
		return v, false
	}
	var zero T
	p.q[p.head].item = zero // release for GC
	p.head++
	if p.head == len(p.q) {
		p.head = 0
		p.q = p.q[:0]
	} else if p.head > 64 && p.head*2 >= len(p.q) {
		n := copy(p.q, p.q[p.head:])
		for i := n; i < len(p.q); i++ {
			p.q[i].item = zero
		}
		p.q = p.q[:n]
		p.head = 0
	}
	return v, true
}

// NextArrival returns the arrival cycle of the oldest undelivered item, if
// any. Arrival cycles are monotone per pipe (senders serialize), so this is
// the earliest cycle at which the receiver could make progress — the wake
// cycle an active-set scheduler needs.
func (p *Pipe[T]) NextArrival() (uint64, bool) {
	if p.head >= len(p.q) {
		return 0, false
	}
	return p.q[p.head].at, true
}

// Empty reports whether the pipe holds no items (arrived or in flight).
func (p *Pipe[T]) Empty() bool { return p.head >= len(p.q) }

// Entries calls f for every undelivered item in FIFO order with its absolute
// arrival cycle. Snapshot paths use it to externalize in-flight traffic;
// restore paths replay the entries through SendAt in the same order, which
// reproduces the queue exactly (arrival cycles are monotone per pipe).
func (p *Pipe[T]) Entries(f func(at uint64, item T)) {
	for _, e := range p.q[p.head:] {
		f(e.at, e.item)
	}
}

// Len returns the number of items in the pipe (arrived or in flight).
func (p *Pipe[T]) Len() int { return len(p.q) - p.head }
