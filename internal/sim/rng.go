package sim

import (
	"hash/fnv"
	"math/rand"
)

// NewRNG returns a deterministic random source derived from a master seed and
// a component name, so every component gets an independent but reproducible
// stream regardless of construction order.
func NewRNG(seed uint64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(seed ^ h.Sum64())))
}

// SplitMix64 advances a simple splittable PRNG state; useful for cheap,
// allocation-free per-packet randomization.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
