package sim

import (
	"errors"
	"testing"
)

// selfWaker ticks itself every period cycles and records each tick.
type selfWaker struct {
	e      *Engine
	id     int
	period uint64
	ticks  []uint64
}

func (s *selfWaker) Tick(now uint64) {
	s.ticks = append(s.ticks, now)
	s.e.Progress()
	s.e.Wake(s.id, now+s.period)
}

// TestActiveIdleSkip: a component waking every 10 cycles is ticked exactly on
// its wake cycles, idle cycles are jumped, and the clock still lands on the
// requested end cycle.
func TestActiveIdleSkip(t *testing.T) {
	e := NewEngineMode(ModeActive)
	s := &selfWaker{e: e, period: 10}
	s.id = e.Register(s)
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
	if len(s.ticks) != 10 {
		t.Fatalf("ticked %d times, want 10 (cycles 0,10,...,90)", len(s.ticks))
	}
	for i, at := range s.ticks {
		if at != uint64(i*10) {
			t.Errorf("tick %d at cycle %d, want %d", i, at, i*10)
		}
	}
}

// TestActiveOverflowWake: wakes beyond the wheel horizon go through the
// overflow heap and still fire on exactly the requested cycle.
func TestActiveOverflowWake(t *testing.T) {
	e := NewEngineMode(ModeActive)
	s := &selfWaker{e: e, period: 10 * wheelBuckets}
	s.id = e.Register(s)
	e.Run(3*10*wheelBuckets + 1)
	want := []uint64{0, 10 * wheelBuckets, 2 * 10 * wheelBuckets, 3 * 10 * wheelBuckets}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticked at %v, want %v", s.ticks, want)
	}
	for i := range want {
		if s.ticks[i] != want[i] {
			t.Fatalf("ticked at %v, want %v", s.ticks, want)
		}
	}
}

// afterStepRecorder pins the AfterStep contract in ModeActive: the hook must
// observe every cycle, including idle ones (installing it disables jumping),
// so telemetry windows and invariant scans land on identical cycle counts in
// every mode.
func TestActiveAfterStepSeesEveryCycle(t *testing.T) {
	e := NewEngineMode(ModeActive)
	s := &selfWaker{e: e, period: 17}
	s.id = e.Register(s)
	var seen []uint64
	e.AfterStep = func(now uint64) { seen = append(seen, now) }
	e.Run(50)
	if len(seen) != 50 {
		t.Fatalf("AfterStep saw %d cycles, want all 50", len(seen))
	}
	for i, at := range seen {
		if at != uint64(i) {
			t.Fatalf("AfterStep cycle %d = %d, want %d (no cycle may be skipped)", i, at, i)
		}
	}
}

// stallThenSleep makes progress (and re-arms itself) for the first n cycles,
// then goes idle forever. In ModeScan, Wake is a no-op and the component is
// scanned every cycle regardless, so both modes express the same behavior.
type stallThenSleep struct {
	e  *Engine
	id int
	n  uint64
}

func (s *stallThenSleep) Tick(now uint64) {
	if now < s.n {
		s.e.Progress()
		s.e.Wake(s.id, now+1)
	}
}

// TestActiveWatchdogCycleParity: the deadlock watchdog must fire on exactly
// the same cycle in ModeActive (where the engine jumps over the idle stretch
// and must clamp the jump to the watchdog deadline) as in ModeScan.
func TestActiveWatchdogCycleParity(t *testing.T) {
	fire := func(mode Mode) *ErrDeadlock {
		e := NewEngineMode(mode)
		s := &stallThenSleep{e: e, n: 7}
		s.id = e.Register(s)
		err := e.RunUntil(func() bool { return false }, 1000, 10)
		var de *ErrDeadlock
		if !errors.As(err, &de) {
			t.Fatalf("mode %d: err = %v, want ErrDeadlock", mode, err)
		}
		return de
	}
	scan, active := fire(ModeScan), fire(ModeActive)
	if scan.Cycle != active.Cycle || scan.LastProgress != active.LastProgress {
		t.Fatalf("watchdog divergence: scan fired (cycle %d, last progress %d), active (cycle %d, last progress %d)",
			scan.Cycle, scan.LastProgress, active.Cycle, active.LastProgress)
	}
}

// TestActiveTimeoutCycleParity: the budget timeout must report the same cycle
// in both modes, including when the active engine jumps over the budget end.
func TestActiveTimeoutCycleParity(t *testing.T) {
	fire := func(mode Mode) uint64 {
		e := NewEngineMode(mode)
		s := &selfWaker{e: e, period: 64}
		s.id = e.Register(s)
		err := e.RunUntil(func() bool { return false }, 100, 0)
		var te *ErrTimeout
		if !errors.As(err, &te) {
			t.Fatalf("mode %d: err = %v, want ErrTimeout", mode, err)
		}
		return te.Cycle
	}
	if scan, active := fire(ModeScan), fire(ModeActive); scan != active {
		t.Fatalf("timeout divergence: scan at cycle %d, active at cycle %d", scan, active)
	}
}

// wakeTarget records its tick cycles; partners wake it.
type wakeTarget struct{ ticks []uint64 }

func (w *wakeTarget) Tick(now uint64) { w.ticks = append(w.ticks, now) }

// prefixWaker is a serial-prefix component that wakes its target for the
// current cycle, modeling the fault layer unblocking an adapter same-cycle.
type prefixWaker struct {
	e        *Engine
	id, tgt  int
	wakeAt   []uint64 // cycles on which to issue a same-cycle wake
	nextWake int
}

func (p *prefixWaker) Tick(now uint64) {
	if p.nextWake < len(p.wakeAt) && p.wakeAt[p.nextWake] == now {
		p.e.Wake(p.tgt, now) // same-cycle: the target must tick this cycle
		p.nextWake++
	}
	p.e.Wake(p.id, now+1)
}

// TestSerialPrefixSameCycleWake: wakes issued by a serial-prefix component
// for the current cycle take effect in the current cycle (the target has a
// higher id, in bucket words not yet scanned). This is the mechanism that
// keeps fault-layer effects (stall onsets, credit-resync restores) visible to
// adapters within the same cycle, as scan mode's registration order provides.
func TestSerialPrefixSameCycleWake(t *testing.T) {
	e := NewEngineMode(ModeActive)
	p := &prefixWaker{e: e, wakeAt: []uint64{3, 9}}
	p.id = e.Register(p)
	w := &wakeTarget{}
	p.tgt = e.Register(w)
	e.SetSerialPrefix(1)
	e.Run(12)
	// Initial registration wake at cycle 0, then the two same-cycle wakes.
	want := []uint64{0, 3, 9}
	if len(w.ticks) != len(want) {
		t.Fatalf("target ticked at %v, want %v", w.ticks, want)
	}
	for i := range want {
		if w.ticks[i] != want[i] {
			t.Fatalf("target ticked at %v, want %v", w.ticks, want)
		}
	}
}

// midStepWaker is a NON-prefix component waking a target for the current
// cycle; the engine must defer that to the next cycle (the scan of the
// current bucket cannot be mutated behind itself).
type midStepWaker struct {
	e       *Engine
	id, tgt int
	done    bool
}

func (m *midStepWaker) Tick(now uint64) {
	if !m.done {
		m.e.Wake(m.tgt, now)
		m.done = true
	}
}

func TestMidStepWakeDefersToNextCycle(t *testing.T) {
	e := NewEngineMode(ModeActive)
	m := &midStepWaker{e: e}
	m.id = e.Register(m)
	w := &wakeTarget{}
	m.tgt = e.Register(w)
	e.Run(5)
	// Registration wake at 0; the mid-step Wake(tgt, 0) defers to cycle 1.
	want := []uint64{0, 1}
	if len(w.ticks) != len(want) || w.ticks[0] != 0 || w.ticks[1] != 1 {
		t.Fatalf("target ticked at %v, want %v", w.ticks, want)
	}
}

// TestActiveStepZeroAllocs: the wake-wheel push/pop path must not allocate in
// steady state (in-horizon wakes are bitset writes; the overflow heap only
// grows capacity once).
func TestActiveStepZeroAllocs(t *testing.T) {
	e := NewEngineMode(ModeActive)
	for i := 0; i < 200; i++ {
		s := &selfWaker{e: e, period: uint64(1 + i%7)}
		s.id = e.Register(s)
	}
	e.Run(1024) // warm up wheel and heap capacity
	if avg := testing.AllocsPerRun(500, func() { e.Step() }); avg != 0 {
		t.Errorf("active Step allocates %.2f objects/cycle in steady state, want 0", avg)
	}
}

// shardCounter counts its own ticks; per-component state only, so sharded
// and serial runs must agree exactly.
type shardCounter struct {
	e      *Engine
	id     int
	period uint64
	n      uint64
}

func (s *shardCounter) Tick(now uint64) {
	s.n++
	s.e.Wake(s.id, now+s.period)
}

// TestShardedTickParity: a sharded engine ticks exactly the components a
// serial engine would, on the same cycles.
func TestShardedTickParity(t *testing.T) {
	build := func(shards int) (*Engine, []*shardCounter) {
		e := NewEngineMode(ModeActive)
		comps := make([]*shardCounter, 64)
		for i := range comps {
			s := &shardCounter{e: e, period: uint64(1 + i%9)}
			s.id = e.Register(s)
			comps[i] = s
		}
		if shards > 1 {
			per := len(comps) / shards
			var ranges []ShardRange
			for s := 0; s < shards; s++ {
				hi := (s + 1) * per
				if s == shards-1 {
					hi = len(comps)
				}
				ranges = append(ranges, ShardRange{Lo: s * per, Hi: hi})
			}
			merged := 0
			e.ConfigureShards(ranges, 0, func(uint64) { merged++ })
		}
		return e, comps
	}
	eSerial, serial := build(1)
	eSharded, sharded := build(4)
	eSerial.Run(500)
	eSharded.Run(500)
	for i := range serial {
		if serial[i].n != sharded[i].n {
			t.Fatalf("component %d: serial ticked %d, sharded %d", i, serial[i].n, sharded[i].n)
		}
	}
}
