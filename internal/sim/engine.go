// Package sim provides a deterministic, cycle-driven discrete-event
// simulation kernel. Components register with an Engine and are ticked once
// per cycle; all inter-component communication flows through latency Pipes so
// that results are independent of tick order (every pipe has latency >= 1).
//
// One simulated cycle corresponds to one on-chip network clock period
// (1/1.5 GHz in the Anton 2 configuration).
//
// The engine runs in one of two scheduling modes. ModeScan is the classic
// loop: every registered component is ticked every cycle. ModeActive is an
// active-set scheduler: components are ticked only on cycles for which they
// (or the channels they are bound to) requested a wakeup via Wake, so
// quiescent components cost zero work. Because every inter-component path
// has latency >= 1 and an idle tick is a no-op, a spurious wake can never
// change simulation dynamics — ModeScan is simply the maximal-wake schedule —
// so correctness of ModeActive reduces to wake *completeness*, which the
// differential scan-vs-active test suite pins.
package sim

import (
	"fmt"
	"sync"
)

// Component is anything ticked once per simulated cycle.
type Component interface {
	// Tick advances the component by one cycle. The component may read
	// from its input pipes and send on its output pipes; sends become
	// visible to receivers no earlier than the next cycle.
	Tick(now uint64)
}

// Mode selects the engine's scheduling strategy.
type Mode uint8

const (
	// ModeScan ticks every component every cycle (the legacy loop, kept as
	// an escape hatch and as the differential-testing reference).
	ModeScan Mode = iota
	// ModeActive ticks only components scheduled via Wake, and lets
	// Run/RunUntil jump over cycles in which nothing is scheduled.
	ModeActive
)

// ShardRange is a half-open range [Lo, Hi) of component ids ticked by one
// shard worker during the parallel phase of a sharded step.
type ShardRange struct{ Lo, Hi int }

// progSlot is one padded per-shard progress counter; padding keeps shard
// workers from false-sharing the counters they bump on every flit transfer.
type progSlot struct {
	v uint64
	_ [7]uint64
}

// Engine drives a set of components through simulated time.
type Engine struct {
	now   uint64
	comps []Component
	mode  Mode

	// progress is bumped by components via Progress/ProgressAt; the RunUntil
	// watchdog sums the slots. Slot 0 exists always; sharding adds one slot
	// per shard so workers never contend on a shared counter.
	progress []progSlot

	wheel    wheel
	stepping bool // inside Step: wakes for the current cycle defer to now+1
	par      bool // inside the parallel phase: Wake must use atomic bit-sets

	shards       []ShardRange
	serialPrefix int
	wg           sync.WaitGroup
	// OnMerge, when non-nil, runs after the parallel phase of every sharded
	// step that ticked at least one component, with the barrier still held
	// (no workers running). The machine layer uses it to flush staged
	// cross-shard channel sends and apply deferred deliveries in component-id
	// order, which is what makes sharded runs bit-identical to serial ones.
	OnMerge func(now uint64)

	// AfterStep, when non-nil, is invoked at the end of every Step with the
	// cycle that just completed (after all components ticked, before the
	// clock advances). The invariant-checking layer hangs its per-cycle
	// scans off this hook; when nil the engine pays a single predicted
	// branch per cycle. Installing AfterStep also disables cycle jumping in
	// Run/RunUntil: the hook observes every cycle, including idle ones, so
	// telemetry window boundaries land on exactly the same cycle counts in
	// every mode.
	AfterStep func(now uint64)

	// DeadlockDetail, when non-nil, is called once when the RunUntil
	// watchdog fires, to capture a diagnostic snapshot (e.g. a per-router
	// blocked-VC summary) into the returned ErrDeadlock. It runs only on
	// the failure path, so it may be arbitrarily expensive.
	DeadlockDetail func() string

	// Checkpoint hook, installed via SetCheckpoint. Run/RunUntil invoke
	// onCkpt between steps whenever the clock reaches the next multiple of
	// ckptEvery; idle-cycle jumps are clamped to that boundary exactly as
	// they are to the watchdog deadline, so the hook observes the same
	// settled states in every engine mode. When off (ckptEvery == 0) the
	// run loops pay a single predicted compare per iteration and allocate
	// nothing — the same zero-cost-off discipline as AfterStep.
	ckptEvery uint64
	nextCkpt  uint64
	onCkpt    func(now uint64)
}

// NewEngine returns an empty engine at cycle 0 in ModeScan.
func NewEngine() *Engine { return NewEngineMode(ModeScan) }

// NewEngineMode returns an empty engine at cycle 0 in the given mode.
func NewEngineMode(m Mode) *Engine {
	e := &Engine{mode: m, progress: make([]progSlot, 1)}
	if m == ModeActive {
		e.wheel.init()
	}
	return e
}

// Mode reports the engine's scheduling mode.
func (e *Engine) Mode() Mode { return e.mode }

// Register adds a component to the tick list and returns its component id.
// Components are ticked in component-id order within a cycle, which—combined
// with latency-1 pipes—keeps runs deterministic. In ModeActive the component
// receives an initial wake at the current cycle; afterwards it is ticked only
// on cycles it (or a channel bound to it) scheduled via Wake.
func (e *Engine) Register(c Component) int {
	id := len(e.comps)
	e.comps = append(e.comps, c)
	if e.mode == ModeActive {
		e.wheel.grow(len(e.comps))
		e.Wake(id, e.now)
	}
	return id
}

// SetSerialPrefix marks components with id < n as the serial prefix: they
// are ticked by the coordinator before the rest of the cycle's active set,
// and — uniquely — wakes they issue for the current cycle take effect in the
// current cycle (targets must have ids >= n). The machine layer puts its
// fault layer here so that e.g. a credit-resync audit at cycle t unblocks a
// sender at cycle t, exactly as in scan mode where the fault layer is
// registered (and therefore ticked) first.
func (e *Engine) SetSerialPrefix(n int) { e.serialPrefix = n }

// ConfigureShards splits the component-id space for sharded stepping.
// Components with id < serialPrefix are ticked by the coordinator before the
// parallel phase (in id order); each range is then ticked by its own worker
// goroutine; merge (may be nil) runs at the barrier. Ranges must be sorted,
// disjoint, and cover [serialPrefix, len(comps)). Only valid in ModeActive.
func (e *Engine) ConfigureShards(ranges []ShardRange, serialPrefix int, merge func(now uint64)) {
	if e.mode != ModeActive {
		panic("sim: ConfigureShards requires ModeActive")
	}
	e.shards = ranges
	e.serialPrefix = serialPrefix
	e.OnMerge = merge
	if n := len(ranges); n > len(e.progress) {
		e.progress = make([]progSlot, n)
	}
}

// Shards reports the configured shard count (0 when stepping serially).
func (e *Engine) Shards() int { return len(e.shards) }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Progress notes that forward progress (e.g. a packet delivery or a flit
// transfer) occurred. The deadlock watchdog in RunUntil uses it. Only the
// coordinator (or code running outside the parallel phase) may call it;
// shard workers use ProgressAt with their own slot.
func (e *Engine) Progress() { e.progress[0].v++ }

// ProgressAt notes forward progress from the given shard. Each shard owns a
// padded counter, so workers never contend; the watchdog sums all slots.
func (e *Engine) ProgressAt(shard int) { e.progress[shard].v++ }

func (e *Engine) progressTotal() uint64 {
	t := uint64(0)
	for i := range e.progress {
		t += e.progress[i].v
	}
	return t
}

// SetCheckpoint installs the periodic checkpoint hook: fn runs between
// steps (simulation fully settled, no component mid-tick) whenever the clock
// reaches a multiple of every, with the cycle about to execute. Unlike
// AfterStep it does not disable idle-cycle jumping — jumps are clamped to
// the next boundary instead, so checkpoint cycles are engine-mode-invariant
// without observing every cycle. every == 0 or fn == nil uninstalls the
// hook. Only Run and RunUntil consume it; manual Step loops do not.
func (e *Engine) SetCheckpoint(every uint64, fn func(now uint64)) {
	if every == 0 || fn == nil {
		e.ckptEvery, e.nextCkpt, e.onCkpt = 0, 0, nil
		return
	}
	e.ckptEvery, e.onCkpt = every, fn
	e.nextCkpt = e.now + every - e.now%every
}

// fireCkpt runs the checkpoint hook when the clock has reached the next
// boundary, then advances the boundary.
func (e *Engine) fireCkpt() {
	if e.now >= e.nextCkpt {
		e.onCkpt(e.now)
		e.nextCkpt = e.now + e.ckptEvery - e.now%e.ckptEvery
	}
}

// ResetTo rewinds (or fast-forwards) the engine to cycle now with nothing
// scheduled: every pending wake, overflow-heap entry, and progress count is
// discarded. Restore paths use it on a freshly built engine before
// re-issuing the wakes implied by the restored state (pipe arrivals plus a
// blanket WakeAll — extra wakes are harmless, missing ones are not).
func (e *Engine) ResetTo(now uint64) {
	e.now = now
	if e.mode == ModeActive {
		e.wheel.reset()
	}
	for i := range e.progress {
		e.progress[i].v = 0
	}
	if e.ckptEvery != 0 {
		e.nextCkpt = now + e.ckptEvery - now%e.ckptEvery
	}
}

// WakeAll schedules every registered component at the current cycle. Under
// ModeScan it is a no-op (everything ticks anyway). A spurious tick is a
// no-op by construction, so WakeAll never changes dynamics — it only
// guarantees that after a state restore no component sleeps through work
// its restored state implies.
func (e *Engine) WakeAll() {
	for id := range e.comps {
		e.Wake(id, e.now)
	}
}

// Wake schedules component id to be ticked at cycle at (ModeScan ignores it:
// every component is ticked every cycle anyway). Wakes in the past clamp to
// the current cycle — or to the next cycle while a step is in progress, so
// the bucket being drained is never mutated mid-scan. Extra wakes are
// harmless: an idle tick is a no-op by construction.
func (e *Engine) Wake(id int, at uint64) {
	if e.mode != ModeActive {
		return
	}
	if at <= e.now {
		at = e.now
		if e.stepping {
			at++
		}
	}
	e.wheel.set(id, at, e.now, e.par)
}

// Step advances the simulation by a single cycle.
func (e *Engine) Step() {
	if e.mode == ModeScan {
		for _, c := range e.comps {
			c.Tick(e.now)
		}
	} else {
		e.stepActive()
	}
	if e.AfterStep != nil {
		e.AfterStep(e.now)
	}
	e.now++
}

// stepActive ticks only the components scheduled for the current cycle. The
// serial prefix ticks first with same-cycle wakes still honored (its targets
// have higher ids, in bucket words not yet scanned); for everything after,
// the stepping flag defers same-cycle wakes to the next cycle so the bucket
// is never mutated behind the scan.
func (e *Engine) stepActive() {
	w := &e.wheel
	w.drainOverflow(e.now)
	slot := int(e.now) & wheelMask
	if w.cnt[slot] == 0 {
		return
	}
	if e.serialPrefix > 0 {
		e.tickRange(slot, 0, e.serialPrefix)
	}
	e.stepping = true
	if len(e.shards) == 0 {
		e.tickRange(slot, e.serialPrefix, len(e.comps))
	} else {
		e.stepSharded(slot)
	}
	e.stepping = false
	w.clear(slot)
}

// stepSharded runs the parallel phase of one cycle: one goroutine per shard
// over its id range (the serial prefix already ticked), then the merge hook
// at the barrier. Determinism argument: within a cycle, components only push
// into latency>=1 pipes, so intra-shard tick order (id order, same as
// serial) is the only order that matters for shard-local state; all
// cross-shard effects are staged by the machine layer and applied by OnMerge
// in id order with their original arrival cycles, so the post-barrier state
// is bit-identical to a serial step.
func (e *Engine) stepSharded(slot int) {
	e.par = true
	for _, s := range e.shards {
		lo, hi := s.Lo, s.Hi
		if lo < e.serialPrefix {
			lo = e.serialPrefix
		}
		if lo >= hi {
			continue
		}
		e.wg.Add(1)
		go func(lo, hi int) {
			defer e.wg.Done()
			e.tickRange(slot, lo, hi)
		}(lo, hi)
	}
	e.wg.Wait()
	e.par = false
	if e.OnMerge != nil {
		e.OnMerge(e.now)
	}
}

// tickRange ticks every scheduled component with id in [lo, hi).
func (e *Engine) tickRange(slot, lo, hi int) {
	words := e.wheel.words[slot]
	wlo, whi := lo>>6, (hi+63)>>6
	for wi := wlo; wi < whi; wi++ {
		bits := words[wi]
		if bits == 0 {
			continue
		}
		// Mask edge words so a range never ticks a neighbor shard's ids.
		if wi == wlo && lo&63 != 0 {
			bits &= ^uint64(0) << (lo & 63)
		}
		if wi == whi-1 && hi&63 != 0 {
			bits &= ^uint64(0) >> (64 - hi&63)
		}
		for bits != 0 {
			id := wi<<6 + trailingZeros64(bits)
			bits &= bits - 1
			e.comps[id].Tick(e.now)
		}
	}
}

// canJump reports whether Run/RunUntil may skip idle cycles: only in
// ModeActive and only when no AfterStep hook is observing every cycle.
func (e *Engine) canJump() bool { return e.mode == ModeActive && e.AfterStep == nil }

// nextWake returns the earliest cycle >= now with a scheduled component, or
// ^uint64(0) when nothing is scheduled at all.
func (e *Engine) nextWake() uint64 {
	w := &e.wheel
	w.drainOverflow(e.now)
	for d := uint64(0); d < wheelBuckets; d++ {
		if w.cnt[int(e.now+d)&wheelMask] != 0 {
			return e.now + d
		}
	}
	return w.heapMin
}

// Run advances the simulation by n cycles. In ModeActive with no AfterStep
// hook, stretches of cycles with no scheduled component are skipped in one
// clock jump; the observable end state (component state, Now, progress) is
// identical to stepping through them, because idle ticks are no-ops.
func (e *Engine) Run(n uint64) {
	end := e.now + n
	for e.now < end {
		if e.ckptEvery != 0 {
			e.fireCkpt()
		}
		if e.canJump() {
			if t := e.nextWake(); t > e.now {
				if t > end {
					t = end
				}
				if e.ckptEvery != 0 && t > e.nextCkpt {
					t = e.nextCkpt
				}
				e.now = t
				continue
			}
		}
		e.Step()
	}
}

// ErrDeadlock is returned by RunUntil when no component reports progress for
// the configured watchdog window while the completion predicate is false. It
// carries a diagnostic snapshot: the cycle the watchdog fired, the cycle of
// the last observed progress, and (when the engine has a DeadlockDetail
// provider) a per-router summary of blocked state.
type ErrDeadlock struct {
	Cycle        uint64
	Window       uint64
	LastProgress uint64 // cycle at which progress was last observed
	Detail       string // optional component snapshot, one line per blocked unit
}

func (e *ErrDeadlock) Error() string {
	msg := fmt.Sprintf("sim: no progress for %d cycles at cycle %d (deadlock or starvation; last progress at cycle %d)",
		e.Window, e.Cycle, e.LastProgress)
	if e.Detail != "" {
		msg += "\n" + e.Detail
	}
	return msg
}

// ErrTimeout is returned by RunUntil when maxCycles elapse before done()
// becomes true.
type ErrTimeout struct{ Cycle uint64 }

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("sim: run exceeded budget at cycle %d", e.Cycle)
}

// RunUntil steps the simulation until done() returns true. It fails with
// ErrDeadlock if no progress is observed for watchdog cycles, or ErrTimeout
// after maxCycles. A watchdog of 0 disables deadlock detection.
//
// In ModeActive with no AfterStep hook, idle stretches are skipped; jump
// targets are clamped to the budget end and to the watchdog deadline so the
// error cycle numbers (ErrTimeout.Cycle, ErrDeadlock.Cycle/LastProgress) are
// exactly the ones the scan-mode loop would have produced.
func (e *Engine) RunUntil(done func() bool, maxCycles, watchdog uint64) error {
	end := e.now + maxCycles
	lastProgress := e.progressTotal()
	lastProgressAt := e.now
	deadlock := func() error {
		err := &ErrDeadlock{Cycle: e.now, Window: watchdog, LastProgress: lastProgressAt}
		if e.DeadlockDetail != nil {
			err.Detail = e.DeadlockDetail()
		}
		return err
	}
	for !done() {
		if e.ckptEvery != 0 {
			e.fireCkpt()
		}
		if e.now >= end {
			return &ErrTimeout{Cycle: e.now}
		}
		if e.canJump() {
			if t := e.nextWake(); t > e.now {
				if t > end {
					t = end
				}
				if watchdog != 0 {
					if dl := lastProgressAt + watchdog; dl < t {
						t = dl
					}
				}
				if e.ckptEvery != 0 && t > e.nextCkpt {
					t = e.nextCkpt
				}
				e.now = t
				// The skipped cycles were idle: no component ticked, so no
				// progress. Fire the watchdog at the same cycle scan mode
				// would have (lastProgressAt + watchdog).
				if watchdog != 0 && e.now-lastProgressAt >= watchdog {
					return deadlock()
				}
				continue
			}
		}
		e.Step()
		if p := e.progressTotal(); p != lastProgress {
			lastProgress = p
			lastProgressAt = e.now
		} else if watchdog != 0 && e.now-lastProgressAt >= watchdog {
			return deadlock()
		}
	}
	return nil
}
