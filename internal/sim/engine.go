// Package sim provides a deterministic, cycle-driven discrete-event
// simulation kernel. Components register with an Engine and are ticked once
// per cycle; all inter-component communication flows through latency Pipes so
// that results are independent of tick order (every pipe has latency >= 1).
//
// One simulated cycle corresponds to one on-chip network clock period
// (1/1.5 GHz in the Anton 2 configuration).
package sim

import "fmt"

// Component is anything ticked once per simulated cycle.
type Component interface {
	// Tick advances the component by one cycle. The component may read
	// from its input pipes and send on its output pipes; sends become
	// visible to receivers no earlier than the next cycle.
	Tick(now uint64)
}

// Engine drives a set of components through simulated time.
type Engine struct {
	now      uint64
	comps    []Component
	progress uint64 // bumped by components via Progress(); used by watchdog

	// AfterStep, when non-nil, is invoked at the end of every Step with the
	// cycle that just completed (after all components ticked, before the
	// clock advances). The invariant-checking layer hangs its per-cycle
	// scans off this hook; when nil the engine pays a single predicted
	// branch per cycle.
	AfterStep func(now uint64)

	// DeadlockDetail, when non-nil, is called once when the RunUntil
	// watchdog fires, to capture a diagnostic snapshot (e.g. a per-router
	// blocked-VC summary) into the returned ErrDeadlock. It runs only on
	// the failure path, so it may be arbitrarily expensive.
	DeadlockDetail func() string
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register adds a component to the tick list. Components are ticked in
// registration order, which—combined with latency-1 pipes—keeps runs
// deterministic.
func (e *Engine) Register(c Component) { e.comps = append(e.comps, c) }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Progress notes that forward progress (e.g. a packet delivery or a flit
// transfer) occurred. The deadlock watchdog in RunUntil uses it.
func (e *Engine) Progress() { e.progress++ }

// Step advances the simulation by a single cycle.
func (e *Engine) Step() {
	for _, c := range e.comps {
		c.Tick(e.now)
	}
	if e.AfterStep != nil {
		e.AfterStep(e.now)
	}
	e.now++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n uint64) {
	end := e.now + n
	for e.now < end {
		e.Step()
	}
}

// ErrDeadlock is returned by RunUntil when no component reports progress for
// the configured watchdog window while the completion predicate is false. It
// carries a diagnostic snapshot: the cycle the watchdog fired, the cycle of
// the last observed progress, and (when the engine has a DeadlockDetail
// provider) a per-router summary of blocked state.
type ErrDeadlock struct {
	Cycle        uint64
	Window       uint64
	LastProgress uint64 // cycle at which progress was last observed
	Detail       string // optional component snapshot, one line per blocked unit
}

func (e *ErrDeadlock) Error() string {
	msg := fmt.Sprintf("sim: no progress for %d cycles at cycle %d (deadlock or starvation; last progress at cycle %d)",
		e.Window, e.Cycle, e.LastProgress)
	if e.Detail != "" {
		msg += "\n" + e.Detail
	}
	return msg
}

// ErrTimeout is returned by RunUntil when maxCycles elapse before done()
// becomes true.
type ErrTimeout struct{ Cycle uint64 }

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("sim: run exceeded budget at cycle %d", e.Cycle)
}

// RunUntil steps the simulation until done() returns true. It fails with
// ErrDeadlock if no progress is observed for watchdog cycles, or ErrTimeout
// after maxCycles. A watchdog of 0 disables deadlock detection.
func (e *Engine) RunUntil(done func() bool, maxCycles, watchdog uint64) error {
	end := e.now + maxCycles
	lastProgress := e.progress
	lastProgressAt := e.now
	for !done() {
		if e.now >= end {
			return &ErrTimeout{Cycle: e.now}
		}
		e.Step()
		if e.progress != lastProgress {
			lastProgress = e.progress
			lastProgressAt = e.now
		} else if watchdog != 0 && e.now-lastProgressAt >= watchdog {
			err := &ErrDeadlock{Cycle: e.now, Window: watchdog, LastProgress: lastProgressAt}
			if e.DeadlockDetail != nil {
				err.Detail = e.DeadlockDetail()
			}
			return err
		}
	}
	return nil
}
