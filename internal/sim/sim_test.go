package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

type counter struct {
	e     *Engine
	ticks []uint64
}

func (c *counter) Tick(now uint64) {
	c.ticks = append(c.ticks, now)
	c.e.Progress()
}

func TestEngineStepAdvancesClock(t *testing.T) {
	e := NewEngine()
	c := &counter{e: e}
	e.Register(c)
	e.Run(5)
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
	want := []uint64{0, 1, 2, 3, 4}
	if len(c.ticks) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(c.ticks), len(want))
	}
	for i, w := range want {
		if c.ticks[i] != w {
			t.Errorf("tick %d at cycle %d, want %d", i, c.ticks[i], w)
		}
	}
}

func TestRunUntilDone(t *testing.T) {
	e := NewEngine()
	c := &counter{e: e}
	e.Register(c)
	err := e.RunUntil(func() bool { return e.Now() >= 10 }, 100, 50)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestRunUntilTimeout(t *testing.T) {
	e := NewEngine()
	c := &counter{e: e}
	e.Register(c)
	err := e.RunUntil(func() bool { return false }, 20, 0)
	var te *ErrTimeout
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

type idle struct{}

func (idle) Tick(uint64) {}

func TestRunUntilDeadlock(t *testing.T) {
	e := NewEngine()
	e.Register(idle{})
	err := e.RunUntil(func() bool { return false }, 1000, 10)
	var de *ErrDeadlock
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if de.Cycle > 11 {
		t.Errorf("deadlock flagged at cycle %d, want within watchdog window", de.Cycle)
	}
}

// stallAfter makes progress for the first n cycles, then wedges.
type stallAfter struct {
	e *Engine
	n uint64
}

func (s *stallAfter) Tick(now uint64) {
	if now < s.n {
		s.e.Progress()
	}
}

// TestDeadlockSnapshot: the watchdog error must carry the cycle it fired,
// the last-progress cycle, and the DeadlockDetail provider's snapshot, and
// render all three in its message.
func TestDeadlockSnapshot(t *testing.T) {
	e := NewEngine()
	e.Register(&stallAfter{e: e, n: 7})
	detailCalls := 0
	e.DeadlockDetail = func() string {
		detailCalls++
		return "router 3 vc 1: 2 pkts blocked"
	}
	err := e.RunUntil(func() bool { return false }, 1000, 10)
	var de *ErrDeadlock
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if de.LastProgress != 7 {
		t.Errorf("LastProgress = %d, want 7 (progress stopped after cycle 7)", de.LastProgress)
	}
	if de.Cycle != de.LastProgress+10 {
		t.Errorf("Cycle = %d, want last progress + watchdog window (%d)", de.Cycle, de.LastProgress+10)
	}
	if de.Window != 10 {
		t.Errorf("Window = %d, want 10", de.Window)
	}
	if de.Detail != "router 3 vc 1: 2 pkts blocked" {
		t.Errorf("Detail = %q, want provider snapshot", de.Detail)
	}
	if detailCalls != 1 {
		t.Errorf("DeadlockDetail called %d times, want once (failure path only)", detailCalls)
	}
	msg := de.Error()
	for _, want := range []string{"last progress at cycle 7", "router 3 vc 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestPipeLatency(t *testing.T) {
	p := NewPipe[int](3)
	p.Send(10, 42)
	for now := uint64(10); now < 13; now++ {
		if _, ok := p.Poll(now); ok {
			t.Fatalf("item visible at cycle %d, latency 3 sent at 10", now)
		}
	}
	v, ok := p.Poll(13)
	if !ok || v != 42 {
		t.Fatalf("Poll(13) = %v, %v; want 42, true", v, ok)
	}
	if !p.Empty() {
		t.Error("pipe should be empty after poll")
	}
}

func TestPipeZeroLatencyClamped(t *testing.T) {
	p := NewPipe[int](0)
	if p.Latency() != 1 {
		t.Fatalf("latency = %d, want clamped to 1", p.Latency())
	}
	p.Send(0, 1)
	if _, ok := p.Poll(0); ok {
		t.Fatal("zero-latency delivery would break tick-order independence")
	}
	if _, ok := p.Poll(1); !ok {
		t.Fatal("item should arrive at cycle 1")
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	p := NewPipe[int](1)
	for i := 0; i < 100; i++ {
		p.Send(uint64(i), i)
	}
	for i := 0; i < 100; i++ {
		v, ok := p.Poll(1000)
		if !ok || v != i {
			t.Fatalf("Poll #%d = %v, %v; want %d", i, v, ok, i)
		}
	}
}

func TestPipeCompaction(t *testing.T) {
	p := NewPipe[int](1)
	// Interleave sends and polls to force the head-compaction path.
	sent, got := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			p.Send(uint64(round), sent)
			sent++
		}
		for i := 0; i < 9; i++ {
			v, ok := p.Poll(uint64(round) + 1)
			if !ok || v != got {
				t.Fatalf("round %d: Poll = %v, %v; want %d", round, v, ok, got)
			}
			got++
		}
	}
	for {
		v, ok := p.Poll(10_000)
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("drain: got %d, want %d", v, got)
		}
		got++
	}
	if got != sent {
		t.Fatalf("drained %d items, sent %d", got, sent)
	}
}

func TestPipeSendAt(t *testing.T) {
	p := NewPipe[string](1)
	p.SendAt(7, "late")
	if _, ok := p.Poll(6); ok {
		t.Fatal("SendAt item visible early")
	}
	if v, ok := p.Poll(7); !ok || v != "late" {
		t.Fatalf("Poll(7) = %q, %v", v, ok)
	}
}

func TestNewRNGDeterministicAndIndependent(t *testing.T) {
	a1 := NewRNG(1, "router-0")
	a2 := NewRNG(1, "router-0")
	b := NewRNG(1, "router-1")
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		x, y, z := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x == y {
			same++
		}
		if x != z {
			diff++
		}
	}
	if same != 64 {
		t.Errorf("same-name streams diverged: %d/64 equal", same)
	}
	if diff < 60 {
		t.Errorf("different-name streams too correlated: %d/64 differ", diff)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	f := func(seed uint64) bool {
		s1, s2 := seed, seed
		for i := 0; i < 8; i++ {
			if SplitMix64(&s1) != SplitMix64(&s2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pipe never delivers before latency elapses and always preserves
// send order, under random interleavings.
func TestPipeProperty(t *testing.T) {
	f := func(lat uint8, ops []uint8) bool {
		latency := uint64(lat%8) + 1
		p := NewPipe[uint64](latency)
		now := uint64(0)
		var sentAt []uint64
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // send
				p.Send(now, uint64(len(sentAt)))
				sentAt = append(sentAt, now)
			case 1: // poll
				if v, ok := p.Poll(now); ok {
					if v != uint64(next) {
						return false // order violated
					}
					if now < sentAt[v]+latency {
						return false // delivered early
					}
					next++
				}
			case 2: // advance time
				now++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
