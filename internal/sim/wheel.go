package sim

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// wheelBuckets is the wake-wheel horizon in cycles (power of two). Wakes
	// within [now, now+wheelBuckets) go straight into a per-cycle bitset
	// bucket; farther wakes (e.g. go-back-N retransmit deadlines, paced
	// injection schedules) overflow into a min-heap drained as the clock
	// approaches them. 512 comfortably covers every in-horizon latency in
	// the machine (torus latency 45, credit loop ~2*45, adapter timeouts are
	// the main overflow users).
	wheelBuckets = 512
	wheelMask    = wheelBuckets - 1
)

func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

type wakeEnt struct {
	at uint64
	id int32
}

// wheel is the active-set schedule: one bitset bucket per cycle in a ring of
// wheelBuckets cycles (bit i of bucket b = component i is scheduled at some
// cycle congruent to b within the horizon), plus an overflow min-heap for
// wakes beyond the horizon. The invariant maintained by Engine is that bits
// only ever describe cycles in [now, now+wheelBuckets), so bucket aliasing
// is never ambiguous.
type wheel struct {
	words  [wheelBuckets][]uint64
	cnt    [wheelBuckets]uint32 // scheduled bits per bucket (0 = skip/clear fast path)
	nwords int

	mu      sync.Mutex // guards heap pushes during the parallel phase
	heap    []wakeEnt
	heapMin uint64 // heap[0].at, or ^uint64(0) when empty
}

func (w *wheel) init() { w.heapMin = ^uint64(0) }

// reset discards every scheduled wake: all buckets cleared, heap emptied.
// Engine.ResetTo uses it when restoring a snapshot; the restore path then
// re-issues every wake the restored state implies.
func (w *wheel) reset() {
	for b := range w.words {
		ws := w.words[b]
		for i := range ws {
			ws[i] = 0
		}
		w.cnt[b] = 0
	}
	w.heap = w.heap[:0]
	w.heapMin = ^uint64(0)
}

// grow widens every bucket to cover n components. Registration-time only.
func (w *wheel) grow(n int) {
	nw := (n + 63) >> 6
	if nw <= w.nwords {
		return
	}
	for b := range w.words {
		for len(w.words[b]) < nw {
			w.words[b] = append(w.words[b], 0)
		}
	}
	w.nwords = nw
}

// set schedules component id at cycle at (caller guarantees at >= now). With
// par set (shard workers running) the bit and counter updates are atomic;
// the serial path stays branch-cheap and allocation-free.
func (w *wheel) set(id int, at, now uint64, par bool) {
	if at >= now+wheelBuckets {
		w.pushHeap(at, id, par)
		return
	}
	b := int(at) & wheelMask
	wi, bit := id>>6, uint64(1)<<(id&63)
	if par {
		p := &w.words[b][wi]
		for {
			old := atomic.LoadUint64(p)
			if old&bit != 0 {
				return
			}
			if atomic.CompareAndSwapUint64(p, old, old|bit) {
				atomic.AddUint32(&w.cnt[b], 1)
				return
			}
		}
	}
	if w.words[b][wi]&bit == 0 {
		w.words[b][wi] |= bit
		w.cnt[b]++
	}
}

// clear empties the bucket for the cycle that just ran.
func (w *wheel) clear(slot int) {
	ws := w.words[slot]
	for i := range ws {
		ws[i] = 0
	}
	w.cnt[slot] = 0
}

// pushHeap records an out-of-horizon wake. Duplicate (id, at) entries are
// harmless: they resolve to spurious wakes, which are no-ops.
func (w *wheel) pushHeap(at uint64, id int, par bool) {
	if par {
		w.mu.Lock()
		defer w.mu.Unlock()
	}
	w.heap = append(w.heap, wakeEnt{at: at, id: int32(id)})
	for i := len(w.heap) - 1; i > 0; {
		p := (i - 1) / 2
		if w.heap[p].at <= w.heap[i].at {
			break
		}
		w.heap[p], w.heap[i] = w.heap[i], w.heap[p]
		i = p
	}
	if at < w.heapMin {
		w.heapMin = at
	}
}

// drainOverflow moves every heap entry that is now within the horizon into
// its bucket. Coordinator-only (no workers running).
func (w *wheel) drainOverflow(now uint64) {
	for w.heapMin < now+wheelBuckets {
		ent := w.heap[0]
		last := len(w.heap) - 1
		w.heap[0] = w.heap[last]
		w.heap = w.heap[:last]
		// Sift the moved element down.
		for i := 0; ; {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && w.heap[c+1].at < w.heap[c].at {
				c++
			}
			if w.heap[i].at <= w.heap[c].at {
				break
			}
			w.heap[i], w.heap[c] = w.heap[c], w.heap[i]
			i = c
		}
		if last == 0 {
			w.heapMin = ^uint64(0)
		} else {
			w.heapMin = w.heap[0].at
		}
		at := ent.at
		if at < now {
			at = now
		}
		w.set(int(ent.id), at, now, false)
	}
}
