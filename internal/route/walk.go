package route

import (
	"fmt"
	"math/rand"

	"anton2/internal/topo"
)

// Hop is one channel traversal of a complete route.
type Hop struct {
	Chan int   // global channel id (see topo.Machine)
	VC   uint8 // scheme VC used on the channel (within the packet's class)
}

// maxWalkHops bounds route length defensively: the longest legal route is
// bounded by mesh diameter per turn plus torus hops
// (4 on-chip legs * ~8 + 3 * 8 torus hops * 3 channels each << 256).
const maxWalkHops = 512

// Walk enumerates the complete channel/VC sequence of one unicast route,
// exercising exactly the transition functions the simulator uses. The
// returned hops include the source endpoint-to-router channel, every on-chip
// channel, every torus channel, and the final router-to-endpoint channel.
func Walk(cfg *Config, src, dst topo.NodeEp, ord topo.DimOrder, slice uint8, ties [topo.NumDims]int8, class Class) []Hop {
	m := cfg.Machine
	chip := m.Chip
	st := Init(cfg, src, dst, ord, slice, ties, class)

	hops := make([]Hop, 0, 24)
	node := src.Node
	ep := &chip.Endpoints[src.Ep]
	hops = append(hops, Hop{Chan: m.IntraChanID(node, ep.ToRouter), VC: st.MVC})
	rc := ep.Router

	for len(hops) < maxWalkHops {
		port, vc := RouterNext(cfg, &st, dst, rc)
		p := &chip.RouterAt(rc).Ports[port]
		hops = append(hops, Hop{Chan: m.IntraChanID(node, p.OutChan), VC: vc})
		switch p.Kind {
		case topo.PortEndpoint:
			if p.Endpoint != dst.Ep || node != dst.Node {
				panic(fmt.Sprintf("route: delivered to n%d.E%d, want %v", node, p.Endpoint, dst))
			}
			return hops
		case topo.PortMesh, topo.PortSkip:
			rc = p.Peer
		case topo.PortAdapter:
			tvc := AdapterEgress(cfg, &st, m.Shape.Coord(node))
			hops = append(hops, Hop{Chan: m.TorusChanID(node, st.Dir, int(st.Slice)), VC: tvc})
			nextNode, inAd := m.TorusDest(node, st.Dir, int(st.Slice))
			node = nextNode
			ivc := AdapterIngress(cfg, &st, dst, node)
			in := chip.AdapterAt(inAd)
			hops = append(hops, Hop{Chan: m.IntraChanID(node, in.ToRouter), VC: ivc})
			rc = in.Router
		}
	}
	panic(fmt.Sprintf("route: walk %v->%v exceeded %d hops", src, dst, maxWalkHops))
}

// Choices bundles the per-packet randomized routing decisions of
// Section 2.3: the dimension order, the torus slice, and the tie-break signs
// for dimensions where both directions are minimal.
type Choices struct {
	Order topo.DimOrder
	Slice uint8
	Ties  [topo.NumDims]int8
}

// RandomChoices draws uniformly randomized routing choices, as Anton 2 does
// for typical unicast packets.
func RandomChoices(rng *rand.Rand) Choices {
	var c Choices
	c.Order = topo.AllDimOrders[rng.Intn(len(topo.AllDimOrders))]
	c.Slice = uint8(rng.Intn(topo.NumSlices))
	for d := range c.Ties {
		if rng.Intn(2) == 0 {
			c.Ties[d] = 1
		} else {
			c.Ties[d] = -1
		}
	}
	return c
}

// TieDims returns the dimensions in which the minimal route from a to b has
// two minimal directions (distance exactly k/2 on an even ring).
func TieDims(shape topo.TorusShape, a, b topo.NodeCoord) []topo.Dim {
	var out []topo.Dim
	for d := topo.Dim(0); d < topo.NumDims; d++ {
		if _, tie := shape.MinimalDelta(a, b, d); tie {
			out = append(out, d)
		}
	}
	return out
}

// WeightedChoice is one element of an exhaustive route-choice enumeration.
type WeightedChoice struct {
	Choices
	Weight float64 // probability of this choice under uniform randomization
}

// EnumerateChoices lists every distinct routing choice for a source and
// destination node pair with its probability, enumerating tie-break signs
// only for dimensions where a tie actually occurs. The weights sum to 1.
func EnumerateChoices(shape topo.TorusShape, a, b topo.NodeCoord) []WeightedChoice {
	tieDims := TieDims(shape, a, b)
	nTie := len(tieDims)
	total := len(topo.AllDimOrders) * topo.NumSlices * (1 << nTie)
	out := make([]WeightedChoice, 0, total)
	w := 1.0 / float64(total)
	for _, ord := range topo.AllDimOrders {
		for s := 0; s < topo.NumSlices; s++ {
			for mask := 0; mask < 1<<nTie; mask++ {
				c := Choices{Order: ord, Slice: uint8(s), Ties: [topo.NumDims]int8{1, 1, 1}}
				for i, d := range tieDims {
					if mask&(1<<i) != 0 {
						c.Ties[d] = -1
					}
				}
				out = append(out, WeightedChoice{Choices: c, Weight: w})
			}
		}
	}
	return out
}

// FilterSlice restricts a choice enumeration to a single torus slice and
// renormalizes the weights to sum to 1 (the slice-randomization ablation:
// without randomization, one slice's channels carry all the load).
func FilterSlice(all []WeightedChoice, slice uint8) []WeightedChoice {
	out := make([]WeightedChoice, 0, len(all)/topo.NumSlices+1)
	var total float64
	for _, wc := range all {
		if wc.Slice == slice {
			out = append(out, wc)
			total += wc.Weight
		}
	}
	for i := range out {
		out[i].Weight /= total
	}
	return out
}

// EnumerateChoicesFixedSlice is EnumerateChoices restricted to a single
// torus slice.
func EnumerateChoicesFixedSlice(shape topo.TorusShape, a, b topo.NodeCoord, slice uint8) []WeightedChoice {
	return FilterSlice(EnumerateChoices(shape, a, b), slice)
}

// InterNodeHops returns the minimal inter-node hop count of a route, which
// is independent of the routing choices (minimal routing).
func InterNodeHops(shape topo.TorusShape, src, dst topo.NodeEp) int {
	return shape.HopDistance(shape.Coord(src.Node), shape.Coord(dst.Node))
}
