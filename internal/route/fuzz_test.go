package route

import (
	"testing"

	"anton2/internal/topo"
)

// fuzzShape maps three fuzz bytes onto a valid torus shape with radices in
// [1,8], covering the degenerate 1-ary and 2-ary rings alongside production
// sizes.
func fuzzShape(kx, ky, kz uint8) topo.TorusShape {
	return topo.Shape3(int(kx%8)+1, int(ky%8)+1, int(kz%8)+1)
}

// FuzzWalk drives the full route enumeration — the exact transition
// functions the simulator executes — across fuzzed shapes, endpoints, and
// routing choices, and asserts the properties the deadlock and load analyses
// rely on: the walk terminates at the destination (Walk panics otherwise),
// takes exactly the minimal inter-node hop count, and never demotes or
// overflows a VC counter.
func FuzzWalk(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint16(0), uint16(511), uint8(0), uint8(22), uint8(0), uint8(1), uint8(5), uint8(0), false)
	f.Add(uint8(4), uint8(4), uint8(2), uint16(3), uint16(3), uint8(7), uint8(7), uint8(3), uint8(0), uint8(2), uint8(1), true)
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), uint16(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(2), true)

	f.Fuzz(func(t *testing.T, kx, ky, kz uint8, srcNode, dstNode uint16,
		srcEp, dstEp, orderIdx, sliceTies, class, schemeSel uint8, exitSkip bool) {
		shape := fuzzShape(kx, ky, kz)
		m, err := topo.NewMachine(shape)
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", shape, err)
		}
		var scheme Scheme
		switch schemeSel % 3 {
		case 0:
			scheme = AntonScheme{}
		case 1:
			scheme = BaselineScheme{}
		default:
			scheme = NoDatelineScheme{}
		}
		cfg := &Config{
			Machine:  m,
			Scheme:   scheme,
			DirOrder: topo.DefaultDirOrder,
			UseSkip:  true,
			ExitSkip: exitSkip,
		}
		src := topo.NodeEp{Node: int(srcNode) % shape.NumNodes(), Ep: int(srcEp) % topo.NumEndpoints}
		dst := topo.NodeEp{Node: int(dstNode) % shape.NumNodes(), Ep: int(dstEp) % topo.NumEndpoints}
		ord := topo.AllDimOrders[int(orderIdx)%len(topo.AllDimOrders)]
		slice := sliceTies % topo.NumSlices
		var ties [topo.NumDims]int8
		for d := 0; d < topo.NumDims; d++ {
			if sliceTies>>(1+d)&1 != 0 {
				ties[d] = 1
			} else {
				ties[d] = -1
			}
		}

		hops := Walk(cfg, src, dst, ord, slice, ties, Class(class%NumClasses))

		torusHops := 0
		var lastTVC int = -1
		for _, h := range hops {
			if !m.IsTorusChan(h.Chan) {
				continue
			}
			torusHops++
			if int(h.VC) >= scheme.TorusVCs() {
				t.Fatalf("torus hop uses VC %d, scheme %s allows %d", h.VC, scheme.Name(), scheme.TorusVCs())
			}
			if int(h.VC) < lastTVC {
				t.Fatalf("T-VC demoted %d -> %d along %v->%v (scheme %s, order %v, ties %v)",
					lastTVC, h.VC, src, dst, scheme.Name(), ord, ties)
			}
			lastTVC = int(h.VC)
		}
		if want := InterNodeHops(shape, src, dst); torusHops != want {
			t.Fatalf("route %v->%v on %v took %d torus hops, minimal is %d", src, dst, shape, torusHops, want)
		}

		// Every torus hop must leave on the slice the packet chose.
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				if _, ad := m.TorusChanOf(h.Chan); ad.Slice != int(slice) {
					t.Fatalf("route with slice %d crossed torus channel of slice %d", slice, ad.Slice)
				}
			}
		}
	})
}

// FuzzStrategyWalk drives every registered strategy across fuzzed shapes,
// endpoints, and raw (pre-Choose) routing choices, asserting the resource
// discipline the deadlock argument needs from any strategy: the walk
// terminates (Walk panics otherwise), takes exactly the strategy's expected
// inter-node hop count, every hop stays inside the ChannelVCs budget of its
// channel group, and no (channel, VC) resource is ever revisited — a route
// that reacquires a resource it already released is a dependency cycle of
// length one waiting to happen.
func FuzzStrategyWalk(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint16(0), uint16(511), uint8(0), uint8(22), uint8(0), uint8(1), uint8(5), uint8(0), false)
	f.Add(uint8(4), uint8(4), uint8(2), uint16(3), uint16(3), uint8(7), uint8(7), uint8(3), uint8(0), uint8(2), uint8(1), true)
	f.Add(uint8(3), uint8(3), uint8(3), uint16(1), uint16(25), uint8(2), uint8(9), uint8(5), uint8(3), uint8(1), uint8(2), true)
	f.Add(uint8(1), uint8(2), uint8(5), uint16(4), uint16(9), uint8(1), uint8(0), uint8(1), uint8(2), uint8(0), uint8(3), false)

	f.Fuzz(func(t *testing.T, kx, ky, kz uint8, srcNode, dstNode uint16,
		srcEp, dstEp, orderIdx, sliceTies, class, stratSel uint8, exitSkip bool) {
		shape := fuzzShape(kx, ky, kz)
		m, err := topo.NewMachine(shape)
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", shape, err)
		}
		names := StrategyNames()
		strat, _ := StrategyByName(names[int(stratSel)%len(names)])
		cfg := &Config{
			Machine:  m,
			Scheme:   strat,
			DirOrder: topo.DefaultDirOrder,
			UseSkip:  true,
			ExitSkip: exitSkip,
		}
		src := topo.NodeEp{Node: int(srcNode) % shape.NumNodes(), Ep: int(srcEp) % topo.NumEndpoints}
		dst := topo.NodeEp{Node: int(dstNode) % shape.NumNodes(), Ep: int(dstEp) % topo.NumEndpoints}
		raw := Choices{
			Order: topo.AllDimOrders[int(orderIdx)%len(topo.AllDimOrders)],
			Slice: sliceTies % topo.NumSlices,
		}
		for d := 0; d < topo.NumDims; d++ {
			if sliceTies>>(1+d)&1 != 0 {
				raw.Ties[d] = 1
			} else {
				raw.Ties[d] = -1
			}
		}
		cls := Class(class % NumClasses)
		c := strat.Choose(cfg, src, dst, raw, cls)
		if again := strat.Choose(cfg, src, dst, c, cls); again != c {
			t.Fatalf("%s: Choose not idempotent: %+v -> %+v", strat.Name(), c, again)
		}

		hops := Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, cls)

		torusHops := 0
		seen := make(map[Hop]bool, len(hops))
		for _, h := range hops {
			if budget := ChannelVCs(strat, m.ChanGroup(h.Chan)); int(h.VC) >= budget {
				t.Fatalf("%s: hop on %s uses VC %d, budget is %d",
					strat.Name(), m.ChanName(h.Chan), h.VC, budget)
			}
			if seen[h] {
				t.Fatalf("%s: route %v->%v revisits resource (%s, vc%d)",
					strat.Name(), src, dst, m.ChanName(h.Chan), h.VC)
			}
			seen[h] = true
			if m.IsTorusChan(h.Chan) {
				torusHops++
			}
		}
		if want := InterNodeHopsFor(strat, shape, src, dst); torusHops != want {
			t.Fatalf("%s: route %v->%v on %v took %d torus hops, want %d",
				strat.Name(), src, dst, shape, torusHops, want)
		}
	})
}
