package route

import (
	"testing"

	"anton2/internal/topo"
)

// fuzzShape maps three fuzz bytes onto a valid torus shape with radices in
// [1,8], covering the degenerate 1-ary and 2-ary rings alongside production
// sizes.
func fuzzShape(kx, ky, kz uint8) topo.TorusShape {
	return topo.Shape3(int(kx%8)+1, int(ky%8)+1, int(kz%8)+1)
}

// FuzzWalk drives the full route enumeration — the exact transition
// functions the simulator executes — across fuzzed shapes, endpoints, and
// routing choices, and asserts the properties the deadlock and load analyses
// rely on: the walk terminates at the destination (Walk panics otherwise),
// takes exactly the minimal inter-node hop count, and never demotes or
// overflows a VC counter.
func FuzzWalk(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint16(0), uint16(511), uint8(0), uint8(22), uint8(0), uint8(1), uint8(5), uint8(0), false)
	f.Add(uint8(4), uint8(4), uint8(2), uint16(3), uint16(3), uint8(7), uint8(7), uint8(3), uint8(0), uint8(2), uint8(1), true)
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), uint16(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(2), true)

	f.Fuzz(func(t *testing.T, kx, ky, kz uint8, srcNode, dstNode uint16,
		srcEp, dstEp, orderIdx, sliceTies, class, schemeSel uint8, exitSkip bool) {
		shape := fuzzShape(kx, ky, kz)
		m, err := topo.NewMachine(shape)
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", shape, err)
		}
		var scheme Scheme
		switch schemeSel % 3 {
		case 0:
			scheme = AntonScheme{}
		case 1:
			scheme = BaselineScheme{}
		default:
			scheme = NoDatelineScheme{}
		}
		cfg := &Config{
			Machine:  m,
			Scheme:   scheme,
			DirOrder: topo.DefaultDirOrder,
			UseSkip:  true,
			ExitSkip: exitSkip,
		}
		src := topo.NodeEp{Node: int(srcNode) % shape.NumNodes(), Ep: int(srcEp) % topo.NumEndpoints}
		dst := topo.NodeEp{Node: int(dstNode) % shape.NumNodes(), Ep: int(dstEp) % topo.NumEndpoints}
		ord := topo.AllDimOrders[int(orderIdx)%len(topo.AllDimOrders)]
		slice := sliceTies % topo.NumSlices
		var ties [topo.NumDims]int8
		for d := 0; d < topo.NumDims; d++ {
			if sliceTies>>(1+d)&1 != 0 {
				ties[d] = 1
			} else {
				ties[d] = -1
			}
		}

		hops := Walk(cfg, src, dst, ord, slice, ties, Class(class%NumClasses))

		torusHops := 0
		var lastTVC int = -1
		for _, h := range hops {
			if !m.IsTorusChan(h.Chan) {
				continue
			}
			torusHops++
			if int(h.VC) >= scheme.TorusVCs() {
				t.Fatalf("torus hop uses VC %d, scheme %s allows %d", h.VC, scheme.Name(), scheme.TorusVCs())
			}
			if int(h.VC) < lastTVC {
				t.Fatalf("T-VC demoted %d -> %d along %v->%v (scheme %s, order %v, ties %v)",
					lastTVC, h.VC, src, dst, scheme.Name(), ord, ties)
			}
			lastTVC = int(h.VC)
		}
		if want := InterNodeHops(shape, src, dst); torusHops != want {
			t.Fatalf("route %v->%v on %v took %d torus hops, minimal is %d", src, dst, shape, torusHops, want)
		}

		// Every torus hop must leave on the slice the packet chose.
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				if _, ad := m.TorusChanOf(h.Chan); ad.Slice != int(slice) {
					t.Fatalf("route with slice %d crossed torus channel of slice %d", slice, ad.Slice)
				}
			}
		}
	})
}
