package route

import (
	"fmt"
	"sort"

	"anton2/internal/topo"
)

// Strategy is a first-class routing strategy: a VC promotion discipline
// (Scheme) plus the path-selection policy that goes with it. The policy
// decides which of the randomized routing choices of Section 2.3 are
// admissible — a strategy whose deadlock argument rests on restricted paths
// (rather than dateline VC promotion) narrows the choice set instead of
// widening the VC budget.
//
// The simulator, the load calculator, and the deadlock analyzer all consult
// the same Strategy, so a strategy's measured behavior, analytic saturation
// rate, and verified dependency graph cannot diverge.
type Strategy interface {
	Scheme
	// Wraps reports whether the strategy's routes may use torus
	// wrap-around links (minimal routing). Non-wrapping strategies route
	// monotonically from source to destination coordinate and never cross
	// a dateline.
	Wraps() bool
	// Choose maps uniformly randomized routing choices onto the
	// strategy's admissible set. For unrestricted (minimal, randomized)
	// strategies this is the identity.
	Choose(cfg *Config, src, dst topo.NodeEp, c Choices, class Class) Choices
	// Enumerate lists the strategy's admissible routing choices for a
	// node pair with their probabilities under Choose of uniform random
	// draws. The weights sum to 1.
	Enumerate(shape topo.TorusShape, a, b topo.NodeCoord) []WeightedChoice
}

// FaultRouter is implemented by strategies that natively route around
// permanently failed links (Angara-style graph routing). A machine whose
// strategy is a FaultRouter is not considered degraded by link outages the
// strategy absorbs: rerouting is part of the algorithm, not an emergency.
type FaultRouter interface {
	// ChooseAvoiding returns admissible routing choices for src->dst that
	// avoid every channel in failed, preferring c when it already does.
	// ok is false when no admissible route avoids the failed set.
	ChooseAvoiding(cfg *Config, src, dst topo.NodeEp, c Choices, class Class, failed map[int]bool) (out Choices, ok bool)
}

// minimalPolicy is the unrestricted path policy shared by the VC promotion
// schemes: fully randomized minimal routing (any dimension order, slice, and
// tie-break), with deadlock freedom supplied entirely by the VC discipline.
type minimalPolicy struct{}

func (minimalPolicy) Wraps() bool { return true }

func (minimalPolicy) Choose(cfg *Config, src, dst topo.NodeEp, c Choices, class Class) Choices {
	return c
}

func (minimalPolicy) Enumerate(shape topo.TorusShape, a, b topo.NodeCoord) []WeightedChoice {
	return EnumerateChoices(shape, a, b)
}

// monotonePolicy is the restricted path policy of the VC-less strategy:
// a single fixed dimension order and monotone (no wrap-around) travel, so
// the admissible choices reduce to the slice pick.
type monotonePolicy struct{}

// monotoneOrder is the fixed dimension order of non-wrapping strategies.
var monotoneOrder = topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}

// canonicalTies is the tie-break vector of strategies that never face a
// tie (monotone travel has a unique direction per dimension).
var canonicalTies = [topo.NumDims]int8{1, 1, 1}

func (monotonePolicy) Wraps() bool { return false }

func (monotonePolicy) Choose(cfg *Config, src, dst topo.NodeEp, c Choices, class Class) Choices {
	return Choices{Order: monotoneOrder, Slice: c.Slice, Ties: canonicalTies}
}

func (monotonePolicy) Enumerate(shape topo.TorusShape, a, b topo.NodeCoord) []WeightedChoice {
	out := make([]WeightedChoice, topo.NumSlices)
	w := 1.0 / float64(topo.NumSlices)
	for s := 0; s < topo.NumSlices; s++ {
		out[s] = WeightedChoice{
			Choices: Choices{Order: monotoneOrder, Slice: uint8(s), Ties: canonicalTies},
			Weight:  w,
		}
	}
	return out
}

// VClessScheme is a deadlock-avoidance strategy in the spirit of VC-less
// deadlock-free routing (Cano et al., HOTI 2025): instead of buying freedom
// with dateline VC promotion, it restricts paths so the torus channels can
// never form a cycle, and runs the whole T-group on a single VC per class.
//
// The restriction: packets route monotonically from source coordinate to
// destination coordinate (no wrap-around links) in the fixed order X, Y, Z.
// Monotone travel never crosses a dateline, each dimension's channels form a
// DAG along the ring, and the fixed order layers the dimensions; the M-group
// legs between dimensions are layered by the position-tied M-VC (as in
// BaselineScheme). The price is path length — mean hops grow from k/4 to
// ~k/3 per dimension and the wrap links sit idle — and the loss of the
// randomized-order load balancing. The payoff is a T-group of 1 VC per
// class instead of the paper's n+1 = 4, which internal/area prices directly.
type VClessScheme struct{ monotonePolicy }

// Name implements Scheme.
func (VClessScheme) Name() string { return "vcless" }

// MeshVCs implements Scheme: the M-group still needs a VC per dimension
// boundary to layer the on-chip legs between torus dimensions.
func (VClessScheme) MeshVCs() int { return topo.NumDims + 1 }

// TorusVCs implements Scheme: the headline saving — one T-group VC per
// class, since path restriction (not promotion) breaks torus cycles.
func (VClessScheme) TorusVCs() int { return 1 }

// EnterDim implements Scheme.
func (VClessScheme) EnterDim(mvc uint8, dimIdx int) uint8 { return 0 }

// CrossDateline implements Scheme. Monotone routes never cross a dateline;
// the identity keeps the analyzer honest if one ever did (a cycle would
// appear and Verify would reject the strategy).
func (VClessScheme) CrossDateline(tvc uint8) uint8 { return tvc }

// ExitDim implements Scheme: position-tied like BaselineScheme, keeping the
// M_0 -> T_X -> M_1 -> T_Y -> M_2 -> T_Z -> M_3 chain strictly layered even
// when dimensions are skipped with zero hops.
func (VClessScheme) ExitDim(tvc, mvc uint8, dimIdx int, traveled, crossed bool) uint8 {
	if !traveled {
		return mvc
	}
	return uint8(dimIdx + 1)
}

// AngaraStrategy is an Angara-style graph-based routing strategy (Mukosey,
// Semenov & Simonov): the healthy network routes exactly like the paper's
// scheme (randomized minimal with n+1-VC promotion), but when links are
// killed by the fault layer it searches each source/destination pair's
// admissible path set in the failure-masked channel graph and deterministically
// balances the pair's traffic across the surviving paths. Rerouting is part
// of the algorithm, so runs with absorbed link deaths are NOT degraded —
// unlike the static schemes, whose emergency rerouting concedes degradation.
type AngaraStrategy struct{ AntonScheme }

// Name implements Scheme.
func (AngaraStrategy) Name() string { return "angara" }

// ChooseAvoiding implements FaultRouter. Candidates come from the full
// minimal-choice enumeration (the same per-pair path set the deadlock
// analyzer verifies, so rerouted traffic stays inside the proven-acyclic
// graph); each candidate's walk is a search through the channel graph with
// the failed links removed. Selection among the surviving candidates is a
// deterministic hash of (pair, candidate), which spreads different pairs
// across different survivors instead of piling every flow onto the first.
func (AngaraStrategy) ChooseAvoiding(cfg *Config, src, dst topo.NodeEp, c Choices, class Class, failed map[int]bool) (Choices, bool) {
	if !UsesAny(cfg, src, dst, c, class, failed) {
		return c, true
	}
	shape := cfg.Machine.Shape
	cands := EnumerateChoices(shape, shape.Coord(src.Node), shape.Coord(dst.Node))
	best, bestKey := -1, uint64(0)
	for i, wc := range cands {
		if UsesAny(cfg, src, dst, wc.Choices, class, failed) {
			continue
		}
		key := pairHash(src, dst, i)
		if best < 0 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best < 0 {
		return c, false
	}
	return cands[best].Choices, true
}

// pairHash is a SplitMix64-style mix of a source/destination pair and a
// candidate index, used for deterministic balanced path selection.
func pairHash(src, dst topo.NodeEp, i int) uint64 {
	z := uint64(src.Node)<<40 ^ uint64(src.Ep)<<32 ^ uint64(dst.Node)<<8 ^ uint64(dst.Ep)
	z = z*2 + uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AsStrategy upgrades a Scheme to a Strategy. Schemes that already carry a
// path policy pass through; a bare VC discipline gets the unrestricted
// minimal policy (the correct reading of every pre-Strategy scheme).
func AsStrategy(s Scheme) Strategy {
	if st, ok := s.(Strategy); ok {
		return st
	}
	return legacyStrategy{s}
}

// legacyStrategy wraps a bare Scheme with the unrestricted minimal policy.
type legacyStrategy struct{ Scheme }

func (legacyStrategy) Wraps() bool { return true }

func (legacyStrategy) Choose(cfg *Config, src, dst topo.NodeEp, c Choices, class Class) Choices {
	return c
}

func (legacyStrategy) Enumerate(shape topo.TorusShape, a, b topo.NodeCoord) []WeightedChoice {
	return EnumerateChoices(shape, a, b)
}

// InterNodeHopsFor returns the inter-node hop count of the strategy's route
// for a node pair: the minimal wrap-around distance for wrapping strategies,
// the monotone coordinate distance otherwise. Like InterNodeHops, the count
// is independent of which admissible choice the packet draws.
func InterNodeHopsFor(s Strategy, shape topo.TorusShape, src, dst topo.NodeEp) int {
	if s.Wraps() {
		return InterNodeHops(shape, src, dst)
	}
	a, b := shape.Coord(src.Node), shape.Coord(dst.Node)
	total := 0
	for d := topo.Dim(0); d < topo.NumDims; d++ {
		delta := b.Get(d) - a.Get(d)
		if delta < 0 {
			delta = -delta
		}
		total += delta
	}
	return total
}

// The strategy registry. Strategies register by Name; the shipped set is
// registered at init. The deliberately broken NoDatelineScheme is NOT
// registered — it exists to prove the deadlock analyzer has teeth, and the
// registry is the set a user may select and a routecompare run scores.
var strategies = map[string]Strategy{}

// RegisterStrategy adds a strategy to the registry. It panics on a duplicate
// or empty name: registration happens at init time and a collision is a
// programming error, not a runtime condition.
func RegisterStrategy(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("route: RegisterStrategy with empty name")
	}
	if _, dup := strategies[name]; dup {
		panic(fmt.Sprintf("route: duplicate strategy %q", name))
	}
	strategies[name] = s
}

// StrategyByName looks up a registered strategy.
func StrategyByName(name string) (Strategy, bool) {
	s, ok := strategies[name]
	return s, ok
}

// StrategyNames returns the registered strategy names, sorted.
func StrategyNames() []string {
	out := make([]string, 0, len(strategies))
	for name := range strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Strategies returns the registered strategies in name order.
func Strategies() []Strategy {
	out := make([]Strategy, 0, len(strategies))
	for _, name := range StrategyNames() {
		out = append(out, strategies[name])
	}
	return out
}

func init() {
	RegisterStrategy(AntonScheme{})
	RegisterStrategy(BaselineScheme{})
	RegisterStrategy(VClessScheme{})
	RegisterStrategy(AngaraStrategy{})
}
