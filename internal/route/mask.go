package route

import "anton2/internal/topo"

// Failure masking: when torus links are taken permanently out of service,
// routing degrades gracefully by steering each packet's randomized choices
// (dimension order, slice, tie-breaks) away from the failed links at
// injection time. Minimal dimension-order routing is preserved — only the
// choice within the minimal set changes — so the Section 2.5 deadlock-freedom
// argument is untouched.

// UsesAny reports whether the route for src->dst under choices c traverses
// any channel in failed (a set of global channel ids).
func UsesAny(cfg *Config, src, dst topo.NodeEp, c Choices, class Class, failed map[int]bool) bool {
	if len(failed) == 0 {
		return false
	}
	for _, h := range Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, class) {
		if failed[h.Chan] {
			return true
		}
	}
	return false
}

// ChoicesAvoiding returns routing choices for src->dst that avoid every
// failed channel, preferring the given (typically randomized) choices. The
// candidate order is deterministic: the original choices, then the opposite
// slice, then every (dimension order, slice) combination in canonical order,
// all keeping the original tie-breaks, and finally the same sequence with
// every tie-break flipped. Candidates the strategy's path policy does not
// admit are skipped, so emergency rerouting never leaves the choice set the
// deadlock analyzer verified. rerouted reports whether the result differs
// from c; ok is false when no admissible candidate avoids the failed set
// (the destination is unreachable under the strategy).
func ChoicesAvoiding(cfg *Config, src, dst topo.NodeEp, c Choices, class Class, failed map[int]bool) (out Choices, rerouted, ok bool) {
	if !UsesAny(cfg, src, dst, c, class, failed) {
		return c, false, true
	}
	strat := AsStrategy(cfg.Scheme)
	admits := func(cand Choices) bool {
		return strat.Choose(cfg, src, dst, cand, class) == cand
	}
	flip := c.Ties
	for d := range flip {
		flip[d] = -flip[d]
	}
	for _, ties := range [][topo.NumDims]int8{c.Ties, flip} {
		cand := Choices{Order: c.Order, Slice: (c.Slice + 1) % topo.NumSlices, Ties: ties}
		if admits(cand) && !UsesAny(cfg, src, dst, cand, class, failed) {
			return cand, true, true
		}
		for _, ord := range topo.AllDimOrders {
			for s := 0; s < topo.NumSlices; s++ {
				cand := Choices{Order: ord, Slice: uint8(s), Ties: ties}
				if admits(cand) && !UsesAny(cfg, src, dst, cand, class, failed) {
					return cand, true, true
				}
			}
		}
	}
	return c, false, false
}
