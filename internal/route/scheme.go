// Package route implements the Anton 2 routing algorithms: randomized
// minimal dimension-order inter-node routing over two torus slices
// (Section 2.3), direction-order on-chip routing (Section 2.4), and the
// virtual-channel promotion schemes that keep the unified network
// deadlock-free (Section 2.5).
//
// All routing decisions are pure functions over a packet's State, so the
// cycle-level simulator, the offline load calculator, and the deadlock
// analyzer share one implementation and cannot diverge.
package route

import "anton2/internal/topo"

// Scheme is a virtual-channel promotion discipline for torus routing. A
// packet carries an M-group VC counter (used on mesh and endpoint channels)
// and, while traveling a torus dimension, a T-group VC (used on skip
// channels, router-to-channel-adapter channels, and torus channels).
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// MeshVCs and TorusVCs return the per-traffic-class VC counts needed
	// on M-group and T-group channels.
	MeshVCs() int
	TorusVCs() int
	// EnterDim returns the T-group VC for a packet beginning torus travel
	// with M-VC mvc as the dimIdx-th dimension of its order (0-based).
	EnterDim(mvc uint8, dimIdx int) uint8
	// CrossDateline returns the T-group VC after crossing a dateline.
	CrossDateline(tvc uint8) uint8
	// ExitDim returns the M-group VC after completing dimension dimIdx.
	// traveled reports whether the packet took at least one hop in the
	// dimension; crossed whether it crossed the dateline.
	ExitDim(tvc, mvc uint8, dimIdx int, traveled, crossed bool) uint8
}

// AntonScheme is the paper's VC promotion algorithm (Section 2.5): a single
// counter incremented when a packet 1) crosses a dateline or 2) finishes
// routing along a torus dimension in which it did not cross a dateline. It
// needs only n+1 = 4 VCs in each of the M- and T-groups for a 3-D torus,
// one-third fewer T-group VCs than the previous approach. Its path policy
// is unrestricted randomized minimal routing (minimalPolicy).
type AntonScheme struct{ minimalPolicy }

// Name implements Scheme.
func (AntonScheme) Name() string { return "anton" }

// MeshVCs implements Scheme.
func (AntonScheme) MeshVCs() int { return topo.NumDims + 1 }

// TorusVCs implements Scheme.
func (AntonScheme) TorusVCs() int { return topo.NumDims + 1 }

// EnterDim implements Scheme: the counter carries over unchanged.
func (AntonScheme) EnterDim(mvc uint8, dimIdx int) uint8 { return mvc }

// CrossDateline implements Scheme.
func (AntonScheme) CrossDateline(tvc uint8) uint8 { return tvc + 1 }

// ExitDim implements Scheme.
func (AntonScheme) ExitDim(tvc, mvc uint8, dimIdx int, traveled, crossed bool) uint8 {
	if !traveled {
		return mvc
	}
	if crossed {
		return tvc // already incremented at the dateline
	}
	return tvc + 1
}

// BaselineScheme is the previous approach the paper improves on
// (Nesson & Johnsson [20], as described in Section 2.5): a distinct dateline
// VC pair per torus dimension (2n = 6 T-group VCs) plus an M-group VC
// incremented at each dimension turn (n+1 = 4 M-group VCs).
type BaselineScheme struct{ minimalPolicy }

// Name implements Scheme.
func (BaselineScheme) Name() string { return "baseline-2n" }

// MeshVCs implements Scheme.
func (BaselineScheme) MeshVCs() int { return topo.NumDims + 1 }

// TorusVCs implements Scheme.
func (BaselineScheme) TorusVCs() int { return 2 * topo.NumDims }

// EnterDim implements Scheme: each dimension-order position has its own VC
// pair.
func (BaselineScheme) EnterDim(mvc uint8, dimIdx int) uint8 { return uint8(2 * dimIdx) }

// CrossDateline implements Scheme.
func (BaselineScheme) CrossDateline(tvc uint8) uint8 { return tvc + 1 }

// ExitDim implements Scheme. The M-group VC after dimension-order position
// dimIdx must be dimIdx+1 (not merely mvc+1): tying it to the position keeps
// the inter-group dependency chain M_0 -> T_0/T_1 -> M_1 -> T_2/T_3 -> ...
// strictly layered even when earlier dimensions were skipped with zero hops.
func (BaselineScheme) ExitDim(tvc, mvc uint8, dimIdx int, traveled, crossed bool) uint8 {
	if !traveled {
		return mvc
	}
	return uint8(dimIdx + 1)
}

// NoDatelineScheme is a deliberately broken discipline used to validate the
// deadlock analyzer: it never promotes VCs at datelines, so torus rings with
// more than two nodes form cyclic dependencies. It is a full Strategy so
// the analyzer can walk its routes, but it is never registered: the registry
// is the user-selectable set, and this scheme exists to be rejected.
type NoDatelineScheme struct{ minimalPolicy }

// Name implements Scheme.
func (NoDatelineScheme) Name() string { return "broken-no-dateline" }

// MeshVCs implements Scheme.
func (NoDatelineScheme) MeshVCs() int { return topo.NumDims + 1 }

// TorusVCs implements Scheme.
func (NoDatelineScheme) TorusVCs() int { return topo.NumDims + 1 }

// EnterDim implements Scheme.
func (NoDatelineScheme) EnterDim(mvc uint8, dimIdx int) uint8 { return mvc }

// CrossDateline implements Scheme: broken on purpose.
func (NoDatelineScheme) CrossDateline(tvc uint8) uint8 { return tvc }

// ExitDim implements Scheme.
func (NoDatelineScheme) ExitDim(tvc, mvc uint8, dimIdx int, traveled, crossed bool) uint8 {
	if !traveled {
		return mvc
	}
	return tvc + 1
}

// ChannelVCs returns the per-traffic-class VC count a channel of the given
// group must implement under the scheme.
func ChannelVCs(s Scheme, g topo.Group) int {
	if g == topo.GroupT {
		return s.TorusVCs()
	}
	return s.MeshVCs()
}

// NumClasses is the traffic-class count: separate request and reply classes
// avoid protocol deadlocks (Section 2.1).
const NumClasses = 2

// Class identifies a traffic class.
type Class uint8

// The two traffic classes.
const (
	ClassRequest Class = iota
	ClassReply
)

func (c Class) String() string {
	if c == ClassRequest {
		return "request"
	}
	return "reply"
}

// PhysVC maps a (class, scheme VC) pair to a physical VC index on a channel
// of the given group. Physical VCs on a channel number
// [0, NumClasses*ChannelVCs).
func PhysVC(s Scheme, g topo.Group, c Class, vc uint8) int {
	return int(c)*ChannelVCs(s, g) + int(vc)
}

// TotalVCs returns the physical VC count for a channel of the given group.
func TotalVCs(s Scheme, g topo.Group) int { return NumClasses * ChannelVCs(s, g) }

// MaxTotalVCs returns the largest physical VC count over both groups; router
// input buffers are sized for this.
func MaxTotalVCs(s Scheme) int {
	m, t := TotalVCs(s, topo.GroupM), TotalVCs(s, topo.GroupT)
	if t > m {
		return t
	}
	return m
}
