package route

import (
	"fmt"

	"anton2/internal/topo"
)

// Mode is the phase of a packet's route.
type Mode uint8

// Route phases.
const (
	// ModeMeshToAdapter: routing across the on-chip mesh (M-group) toward
	// the egress torus-channel adapter of the packet's current dimension.
	ModeMeshToAdapter Mode = iota
	// ModeTransit: traveling along a torus dimension (T-group); inside a
	// node the packet passes from ingress adapter to egress adapter,
	// using the skip channel for X through-traffic.
	ModeTransit
	// ModeMeshToEndpoint: routing across the mesh to the destination
	// endpoint on the final node.
	ModeMeshToEndpoint
)

func (m Mode) String() string {
	switch m {
	case ModeMeshToAdapter:
		return "mesh->adapter"
	case ModeTransit:
		return "transit"
	default:
		return "mesh->endpoint"
	}
}

// State is a packet's routing state. It is initialized at injection and
// mutated at each decision point; the same transition functions drive the
// cycle-level simulator, the load calculator, and the deadlock analyzer.
type State struct {
	// Immutable per-packet routing choices (randomized at injection).
	DimOrder topo.DimOrder
	Slice    uint8
	Ties     [topo.NumDims]int8 // tie-break sign when distance is exactly k/2
	Class    Class

	// Mutable position in the route.
	Mode     Mode
	DimIdx   uint8 // 0..NumDims; index into DimOrder
	Dir      topo.Direction
	Crossed  bool // crossed the dateline in the current dimension
	Traveled bool // took >= 1 hop in the current dimension
	MVC      uint8
	TVC      uint8

	// ViaSkip routes the current egress leg to the skip partner of the
	// adapter's corner router, crossing the skip channel as the first
	// T-group hop of the dimension (packets bound for an X adapter on
	// the far side of the chip enter through the near corner).
	ViaSkip bool
	// SkipExit makes the next router hop a skip traversal at the
	// arrival T-group VC: a packet that finished an X dimension crosses
	// to the other side of the chip before starting its M-group leg.
	SkipExit bool
}

// Config bundles the ingredients of a routing decision.
type Config struct {
	Machine  *topo.Machine
	Scheme   Scheme
	DirOrder topo.DirOrder // on-chip direction order
	// UseSkip selects whether X through-traffic uses the skip channels
	// (true in Anton 2; false only for the ablation study).
	UseSkip bool
	// EntrySkip lets packets turning INTO the X dimension reach a
	// far-side egress adapter via the near corner plus the skip channel.
	// DISABLED in the default configuration: combined with ExitSkip it
	// creates single-VC cycles through the mesh (the deadlock analyzer
	// demonstrates this), and ExitSkip alone already achieves the
	// paper's worst-case mesh load of 2.
	EntrySkip bool
	// ExitSkip lets packets that finished the X dimension cross to the
	// other side of the chip over the skip channel (at the arrival
	// T-group VC) before starting their M-group leg.
	ExitSkip bool
}

// NewConfig returns a Config with the paper's defaults: the Anton VC scheme
// and the V- U+ U- V+ direction order with skip channels enabled.
func NewConfig(m *topo.Machine) *Config {
	return &Config{Machine: m, Scheme: AntonScheme{}, DirOrder: topo.DefaultDirOrder, UseSkip: true, ExitSkip: true}
}

// delta returns the signed hop count from node cur to dst along dim. For
// wrapping strategies it is the minimal delta with the packet's tie-break
// applied when both directions are minimal; for non-wrapping strategies it
// is the monotone coordinate difference, which never crosses a dateline.
func (st *State) delta(cfg *Config, cur, dst topo.NodeCoord, d topo.Dim) int {
	if s, ok := cfg.Scheme.(Strategy); ok && !s.Wraps() {
		return dst.Get(d) - cur.Get(d)
	}
	delta, tie := cfg.Machine.Shape.MinimalDelta(cur, dst, d)
	if tie && st.Ties[d] < 0 {
		return -delta
	}
	return delta
}

// Init creates the routing state for a packet injected at src bound for dst,
// with the given randomized dimension order, slice, and tie-break signs.
func Init(cfg *Config, src, dst topo.NodeEp, ord topo.DimOrder, slice uint8, ties [topo.NumDims]int8, class Class) State {
	st := State{DimOrder: ord, Slice: slice, Ties: ties, Class: class}
	st.advance(cfg, cfg.Machine.Shape.Coord(src.Node), dst)
	_, st.ViaSkip = st.legPlan(cfg, dst, cfg.Machine.Chip.Endpoints[src.Ep].Router)
	return st
}

// meshDist is the minimal on-chip hop count between two routers.
func meshDist(a, b topo.MeshCoord) int {
	du, dv := a.U-b.U, a.V-b.V
	if du < 0 {
		du = -du
	}
	if dv < 0 {
		dv = -dv
	}
	return du + dv
}

// legPlan evaluates the current M-group leg from position at: its mesh hop
// cost and whether the leg should enter the next dimension's T-group over a
// skip channel (an egress adapter on the far side of the chip is reached
// through the near corner plus the skip, which is both shorter and keeps
// X-turning traffic off the opposite column — essential to the worst-case
// load of 2 in Section 2.4).
func (st *State) legPlan(cfg *Config, dst topo.NodeEp, at topo.MeshCoord) (cost int, viaSkip bool) {
	chip := cfg.Machine.Chip
	var tgt topo.MeshCoord
	if st.Mode == ModeMeshToAdapter {
		tgt = chip.AdapterAt(st.EgressAdapter()).Router
	} else {
		tgt = chip.Endpoints[dst.Ep].Router
	}
	cost = meshDist(at, tgt)
	if st.Mode == ModeMeshToAdapter && cfg.UseSkip && cfg.EntrySkip {
		if alt, ok := chip.SkipPartner(tgt); ok {
			if c := meshDist(at, alt) + 1; c < cost {
				return c, true
			}
		}
	}
	return cost, false
}

// advance moves the state past any zero-hop dimensions starting at DimIdx,
// leaving it either ready to travel (ModeMeshToAdapter with Dir set) or
// bound for the destination endpoint (ModeMeshToEndpoint).
func (st *State) advance(cfg *Config, cur topo.NodeCoord, dst topo.NodeEp) {
	dstCoord := cfg.Machine.Shape.Coord(dst.Node)
	for int(st.DimIdx) < topo.NumDims {
		d := st.DimOrder[st.DimIdx]
		if delta := st.delta(cfg, cur, dstCoord, d); delta != 0 {
			sign := 1
			if delta < 0 {
				sign = -1
			}
			st.Dir = topo.DirectionOf(d, sign)
			st.Crossed = false
			st.Traveled = false
			st.Mode = ModeMeshToAdapter
			return
		}
		st.DimIdx++ // zero hops: skip with no VC change
	}
	st.Mode = ModeMeshToEndpoint
}

// exitDim completes the current dimension (applying the VC promotion rule)
// and advances to the next traveling dimension or to endpoint delivery.
func (st *State) exitDim(cfg *Config, cur topo.NodeCoord, dst topo.NodeEp) {
	st.MVC = cfg.Scheme.ExitDim(st.TVC, st.MVC, int(st.DimIdx), st.Traveled, st.Crossed)
	st.DimIdx++
	st.advance(cfg, cur, dst)
}

// EgressAdapter returns the torus-channel adapter the packet must reach to
// continue its current dimension. Valid in ModeMeshToAdapter and ModeTransit.
func (st *State) EgressAdapter() topo.AdapterID {
	return topo.AdapterID{Dir: st.Dir, Slice: int(st.Slice)}
}

// TargetRouter returns the mesh coordinate the packet's on-chip route aims
// for in its current mode.
func (st *State) TargetRouter(cfg *Config, dst topo.NodeEp) topo.MeshCoord {
	chip := cfg.Machine.Chip
	switch st.Mode {
	case ModeMeshToAdapter, ModeTransit:
		tgt := chip.AdapterAt(st.EgressAdapter()).Router
		if st.Mode == ModeMeshToAdapter && st.ViaSkip {
			if alt, ok := chip.SkipPartner(tgt); ok {
				return alt
			}
		}
		return tgt
	default:
		return chip.Endpoints[dst.Ep].Router
	}
}

// RouterNext computes the output port and output-channel VC for a packet at
// router rc, updating the state. It implements RC (route computation): mesh
// hops use the direction-order algorithm; transit packets are steered to the
// egress adapter directly or over the skip channel.
func RouterNext(cfg *Config, st *State, dst topo.NodeEp, rc topo.MeshCoord) (port int, vc uint8) {
	chip := cfg.Machine.Chip
	r := chip.RouterAt(rc)

	if st.SkipExit {
		// Final hop of the previous dimension's T-group leg: cross to
		// the other side of the chip at the arrival VC.
		sp := r.SkipPort()
		if sp < 0 {
			panic(fmt.Sprintf("route: SkipExit at %v, which has no skip port", rc))
		}
		st.SkipExit = false
		return sp, st.TVC
	}
	target := st.TargetRouter(cfg, dst)

	if st.Mode == ModeTransit {
		// In-dimension through-traffic stays in the T-group.
		if rc == target {
			return r.AdapterPort(st.EgressAdapter()), st.TVC
		}
		if sp := r.SkipPort(); sp >= 0 && r.Ports[sp].Peer == target {
			return sp, st.TVC
		}
		// Skip channels disabled (ablation): fall through to mesh
		// routing at the transit VC. This widens the T-group VC usage
		// to mesh channels and is only legal because the ablation also
		// sizes mesh channels for T-group VCs.
		d, ok := cfg.DirOrder.NextMeshDir(rc, target)
		if !ok {
			panic(fmt.Sprintf("route: transit at %v with unreachable egress %v", rc, target))
		}
		return r.MeshPort(d), st.TVC
	}

	if rc == target {
		switch st.Mode {
		case ModeMeshToAdapter:
			// The M->T transition: either directly onto the
			// router->adapter channel, or over the skip channel
			// when the egress adapter sits on the far corner.
			st.TVC = cfg.Scheme.EnterDim(st.MVC, int(st.DimIdx))
			st.Mode = ModeTransit
			if st.ViaSkip {
				st.ViaSkip = false
				sp := r.SkipPort()
				if sp < 0 {
					panic(fmt.Sprintf("route: ViaSkip at %v, which has no skip port", rc))
				}
				return sp, st.TVC
			}
			return r.AdapterPort(st.EgressAdapter()), st.TVC
		default:
			return r.EndpointPort(dst.Ep), st.MVC
		}
	}
	d, ok := cfg.DirOrder.NextMeshDir(rc, target)
	if !ok {
		panic(fmt.Sprintf("route: at target router %v but mode %v disagrees", rc, st.Mode))
	}
	return r.MeshPort(d), st.MVC
}

// AdapterEgress applies the dateline rule as the packet leaves a node on a
// torus channel and returns the VC to use on that channel. node is the
// sending node's coordinate.
func AdapterEgress(cfg *Config, st *State, node topo.NodeCoord) (vc uint8) {
	if cfg.Machine.Shape.CrossesDateline(node.Get(st.Dir.Dim()), st.Dir) {
		st.TVC = cfg.Scheme.CrossDateline(st.TVC)
		st.Crossed = true
	}
	st.Traveled = true
	return st.TVC
}

// AdapterIngress processes a packet arriving at a node over a torus channel:
// it either continues in the current dimension (ModeTransit) or completes it
// and turns toward the next dimension or the destination endpoint. It
// returns the VC for the adapter->router channel, which is always the
// T-group VC the packet arrived with.
func AdapterIngress(cfg *Config, st *State, dst topo.NodeEp, node int) (vc uint8) {
	vc = st.TVC
	shape := cfg.Machine.Shape
	chip := cfg.Machine.Chip
	cur := shape.Coord(node)
	d := st.Dir.Dim()
	if delta := st.delta(cfg, cur, shape.Coord(dst.Node), d); delta != 0 {
		// More hops needed in this dimension; minimal (or monotone)
		// routing guarantees the sign cannot flip mid-dimension.
		if topo.DirectionOf(d, sgn(delta)) != st.Dir {
			panic(fmt.Sprintf("route: direction flip in dim %v at node %v", d, cur))
		}
		st.Mode = ModeTransit
		return vc
	}
	// Dimension complete: promote the VC and plan the next on-chip leg,
	// considering a skip crossing from the ingress corner (the tail of
	// this dimension's T-group leg) when it shortens the route.
	ingress := chip.AdapterAt(topo.AdapterID{Dir: st.Dir.Opposite(), Slice: int(st.Slice)}).Router
	st.exitDim(cfg, cur, dst)
	st.planAfterDim(cfg, dst, ingress)
	return vc
}

// planAfterDim chooses the exit landing (stay at the ingress corner or
// cross its skip) and the entry plan for the next on-chip leg.
func (st *State) planAfterDim(cfg *Config, dst topo.NodeEp, ingress topo.MeshCoord) {
	st.SkipExit = false
	costDirect, viaDirect := st.legPlan(cfg, dst, ingress)
	st.ViaSkip = viaDirect
	if cfg.UseSkip && cfg.ExitSkip {
		if sp, ok := cfg.Machine.Chip.SkipPartner(ingress); ok {
			if costVia, viaS := st.legPlan(cfg, dst, sp); costVia+1 < costDirect {
				st.SkipExit = true
				st.ViaSkip = viaS
			}
		}
	}
}

// Multicast support (Section 2.3): table-based multicast replicates packets
// at endpoint and channel adapters; every root-to-leaf path of the tree is
// a valid unicast route, so branch copies follow the same state transitions
// as unicast packets. The table (not the packet's destination) makes the
// forwarding decisions, so branch states are initialized explicitly.

// InitMulticastBranch builds the state of a copy injected at the source
// node that will travel in dir as the dimIdx-th dimension of the tree's
// order, starting from the endpoint attached at srcRouter.
func InitMulticastBranch(cfg *Config, dir topo.Direction, dimIdx uint8, order topo.DimOrder, slice uint8, class Class, srcRouter topo.MeshCoord) State {
	st := State{
		DimOrder: order,
		Slice:    slice,
		Ties:     [topo.NumDims]int8{1, 1, 1},
		Class:    class,
		DimIdx:   dimIdx,
		Dir:      dir,
		Mode:     ModeMeshToAdapter,
	}
	_, st.ViaSkip = st.legPlan(cfg, topo.NodeEp{}, srcRouter)
	return st
}

// MulticastContinue keeps a branch traveling through the node in its
// current dimension.
func MulticastContinue(st *State) { st.Mode = ModeTransit }

// MulticastTurn redirects a branch into a new dimension at a tree fork,
// applying the same VC promotion a unicast dimension exit would.
func MulticastTurn(cfg *Config, st *State, dir topo.Direction, dimIdx uint8, ingress topo.MeshCoord) {
	st.MVC = cfg.Scheme.ExitDim(st.TVC, st.MVC, int(st.DimIdx), st.Traveled, st.Crossed)
	st.DimIdx = dimIdx
	st.Dir = dir
	st.Crossed, st.Traveled = false, false
	st.Mode = ModeMeshToAdapter
	st.planAfterDim(cfg, topo.NodeEp{}, ingress)
}

// MulticastDeliver turns a branch into a local delivery to dst.
func MulticastDeliver(cfg *Config, st *State, dst topo.NodeEp, ingress topo.MeshCoord) {
	st.MVC = cfg.Scheme.ExitDim(st.TVC, st.MVC, int(st.DimIdx), st.Traveled, st.Crossed)
	st.Mode = ModeMeshToEndpoint
	st.planAfterDim(cfg, dst, ingress)
}

func sgn(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}
