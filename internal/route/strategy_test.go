package route

import (
	"math/rand"
	"testing"

	"anton2/internal/topo"
)

func TestRegistryShipsFourStrategies(t *testing.T) {
	want := []string{"angara", "anton", "baseline-2n", "vcless"}
	got := StrategyNames()
	if len(got) != len(want) {
		t.Fatalf("StrategyNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StrategyNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		s, ok := StrategyByName(name)
		if !ok || s.Name() != name {
			t.Errorf("StrategyByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := StrategyByName("broken-no-dateline"); ok {
		t.Error("the broken scheme must not be registered")
	}
}

// TestStrategyEnumerateWeightsSumToOne: every strategy's admissible-choice
// enumeration is a probability distribution, and each enumerated choice is a
// fixed point of Choose (the distribution really is Choose of uniform).
func TestStrategyEnumerateWeightsSumToOne(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(4, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(m)
	for _, strat := range Strategies() {
		cfg.Scheme = strat
		for _, pair := range [][2]int{{0, 0}, {0, 5}, {2, 21}, {7, 16}} {
			a, b := m.Shape.Coord(pair[0]), m.Shape.Coord(pair[1])
			var sum float64
			for _, wc := range strat.Enumerate(m.Shape, a, b) {
				sum += wc.Weight
				src := topo.NodeEp{Node: pair[0]}
				dst := topo.NodeEp{Node: pair[1]}
				if got := strat.Choose(cfg, src, dst, wc.Choices, ClassRequest); got != wc.Choices {
					t.Errorf("%s: enumerated choice %+v is not Choose-stable (got %+v)",
						strat.Name(), wc.Choices, got)
				}
			}
			if sum < 0.999999 || sum > 1.000001 {
				t.Errorf("%s: weights for pair %v sum to %g", strat.Name(), pair, sum)
			}
		}
	}
}

// TestVClessNeverWraps: vcless routes travel monotonically — the walk never
// uses a wrap-around torus link, so no dateline is ever crossed and one
// T-group VC suffices. The wrap links are identified by coordinate: a hop
// from k-1 to 0 (positive) or 0 to k-1 (negative).
func TestVClessNeverWraps(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(5, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(m)
	cfg.Scheme = VClessScheme{}
	strat := VClessScheme{}
	shape := m.Shape
	for a := 0; a < shape.NumNodes(); a++ {
		for b := 0; b < shape.NumNodes(); b++ {
			src, dst := topo.NodeEp{Node: a, Ep: 1}, topo.NodeEp{Node: b, Ep: 2}
			for _, wc := range strat.Enumerate(shape, shape.Coord(a), shape.Coord(b)) {
				for _, h := range Walk(cfg, src, dst, wc.Order, wc.Slice, wc.Ties, ClassRequest) {
					if h.VC != 0 || !m.IsTorusChan(h.Chan) {
						if m.IsTorusChan(h.Chan) {
							t.Fatalf("vcless torus hop at VC %d", h.VC)
						}
						continue
					}
					node, ad := m.TorusChanOf(h.Chan)
					d := ad.Dir.Dim()
					x, k := m.Shape.Coord(node).Get(d), m.Shape.K[d]
					if (ad.Dir.Sign() > 0 && x == k-1) || (ad.Dir.Sign() < 0 && x == 0) {
						t.Fatalf("vcless route %v->%v crossed wrap link at %s", src, dst, m.ChanName(h.Chan))
					}
				}
			}
		}
	}
}

// TestVClessChooseCanonicalizes: whatever the RNG drew, vcless packets route
// in the fixed X,Y,Z order with canonical tie-breaks; only the slice draw
// survives (both slices stay in play for load balancing).
func TestVClessChooseCanonicalizes(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(m)
	cfg.Scheme = VClessScheme{}
	rng := rand.New(rand.NewSource(7))
	src, dst := topo.NodeEp{Node: 1}, topo.NodeEp{Node: 30}
	slices := map[uint8]bool{}
	for i := 0; i < 64; i++ {
		c := VClessScheme{}.Choose(cfg, src, dst, RandomChoices(rng), ClassRequest)
		if c.Order != monotoneOrder || c.Ties != canonicalTies {
			t.Fatalf("Choose returned non-canonical %+v", c)
		}
		slices[c.Slice] = true
	}
	if len(slices) != topo.NumSlices {
		t.Errorf("slice randomization lost: saw %v", slices)
	}
}

// TestAngaraAvoidsFailedLinks: with a torus link dead, ChooseAvoiding finds
// an admissible route that misses it, deterministically, and reports
// unreachability honestly when every candidate is severed.
func TestAngaraAvoidsFailedLinks(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(m)
	strat := AngaraStrategy{}
	cfg.Scheme = strat
	src, dst := topo.NodeEp{Node: 0, Ep: 3}, topo.NodeEp{Node: 9, Ep: 5}
	rng := rand.New(rand.NewSource(11))

	// Kill one torus channel a healthy random route uses.
	var failed map[int]bool
	var c Choices
	for {
		c = RandomChoices(rng)
		hops := Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, ClassRequest)
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				failed = map[int]bool{h.Chan: true}
				break
			}
		}
		if failed != nil {
			break
		}
	}

	out, ok := strat.ChooseAvoiding(cfg, src, dst, c, ClassRequest, failed)
	if !ok {
		t.Fatal("one dead link should not sever a 4x2x2 torus pair")
	}
	if UsesAny(cfg, src, dst, out, ClassRequest, failed) {
		t.Fatal("ChooseAvoiding returned a route through the failed link")
	}
	// Deterministic: same inputs, same answer.
	again, _ := strat.ChooseAvoiding(cfg, src, dst, c, ClassRequest, failed)
	if again != out {
		t.Fatalf("ChooseAvoiding not deterministic: %+v then %+v", out, again)
	}
	// A healthy route is left alone.
	healthy := Choices{Order: out.Order, Slice: out.Slice, Ties: out.Ties}
	if kept, ok := strat.ChooseAvoiding(cfg, src, dst, healthy, ClassRequest, failed); !ok || kept != healthy {
		t.Fatalf("ChooseAvoiding perturbed a route that already avoids failures: %+v -> %+v", healthy, kept)
	}

	// Sever everything: every torus channel out of the source node dies in
	// both slices and all directions; the pair becomes unroutable.
	all := map[int]bool{}
	for dir := topo.Direction(0); dir < topo.NumDirections; dir++ {
		for s := 0; s < topo.NumSlices; s++ {
			all[m.TorusChanID(0, dir, s)] = true
		}
	}
	if _, ok := strat.ChooseAvoiding(cfg, src, dst, c, ClassRequest, all); ok {
		t.Fatal("fully severed source reported routable")
	}
}

// TestAngaraBalancesAcrossSurvivors: different pairs should not all pile
// onto one surviving candidate — the deterministic hash must spread them.
func TestAngaraBalancesAcrossSurvivors(t *testing.T) {
	m, err := topo.NewMachine(topo.Shape3(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(m)
	strat := AngaraStrategy{}
	cfg.Scheme = strat
	// Fail one X link; pairs whose default route used it re-spread.
	failed := map[int]bool{m.TorusChanID(0, topo.XPos, 0): true}
	picks := map[Choices]int{}
	base := Choices{Order: topo.AllDimOrders[0], Slice: 0, Ties: [3]int8{1, 1, 1}}
	for ep := 0; ep < topo.NumEndpoints; ep++ {
		for b := 1; b < m.Shape.NumNodes(); b++ {
			src, dst := topo.NodeEp{Node: 0, Ep: ep}, topo.NodeEp{Node: b, Ep: ep}
			if !UsesAny(cfg, src, dst, base, ClassRequest, failed) {
				continue
			}
			out, ok := strat.ChooseAvoiding(cfg, src, dst, base, ClassRequest, failed)
			if !ok {
				t.Fatalf("pair %v->%v unroutable around one link", src, dst)
			}
			picks[out]++
		}
	}
	if len(picks) < 2 {
		t.Errorf("all rerouted pairs picked the same survivor: %v", picks)
	}
}

// TestLegacySchemeUpgrade: AsStrategy wraps a bare Scheme with the
// unrestricted minimal policy.
func TestLegacySchemeUpgrade(t *testing.T) {
	s := AsStrategy(bareScheme{})
	if !s.Wraps() {
		t.Error("legacy upgrade should use minimal (wrapping) routing")
	}
	if s.Name() != "bare" {
		t.Errorf("Name() = %q", s.Name())
	}
	shape := topo.Shape3(4, 4, 2)
	if got, want := len(s.Enumerate(shape, shape.Coord(0), shape.Coord(1))), len(EnumerateChoices(shape, shape.Coord(0), shape.Coord(1))); got != want {
		t.Errorf("legacy Enumerate returned %d choices, want %d", got, want)
	}
}

// bareScheme is a pre-Strategy VC discipline with no path policy.
type bareScheme struct{}

func (bareScheme) Name() string                     { return "bare" }
func (bareScheme) MeshVCs() int                     { return topo.NumDims + 1 }
func (bareScheme) TorusVCs() int                    { return topo.NumDims + 1 }
func (bareScheme) EnterDim(mvc uint8, d int) uint8  { return mvc }
func (bareScheme) CrossDateline(tvc uint8) uint8    { return tvc + 1 }
func (bareScheme) ExitDim(tvc, mvc uint8, d int, tr, cr bool) uint8 {
	if !tr {
		return mvc
	}
	if cr {
		return tvc
	}
	return tvc + 1
}
