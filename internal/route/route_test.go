package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anton2/internal/topo"
)

func cfgFor(t testing.TB, shape topo.TorusShape, scheme Scheme) *Config {
	t.Helper()
	m, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConfig(m)
	c.Scheme = scheme
	return c
}

func TestSchemeVCCounts(t *testing.T) {
	if got := (AntonScheme{}).TorusVCs(); got != 4 {
		t.Errorf("Anton scheme T-group VCs = %d, want n+1 = 4", got)
	}
	if got := (BaselineScheme{}).TorusVCs(); got != 6 {
		t.Errorf("baseline scheme T-group VCs = %d, want 2n = 6", got)
	}
	// The paper's headline: one-third fewer T-group VCs.
	if 3*(AntonScheme{}).TorusVCs() != 2*(BaselineScheme{}).TorusVCs() {
		t.Error("Anton scheme must reduce T-group VCs by one-third")
	}
}

func TestAntonSchemeIncrementsOncePerDim(t *testing.T) {
	s := AntonScheme{}
	// Travel with a dateline crossing: increment happens at the dateline,
	// not again at exit.
	tvc := s.EnterDim(0, 0)
	tvc = s.CrossDateline(tvc)
	if mvc := s.ExitDim(tvc, 0, 0, true, true); mvc != 1 {
		t.Errorf("crossed-dim exit MVC = %d, want 1", mvc)
	}
	// Travel without crossing: increment at exit.
	tvc = s.EnterDim(1, 1)
	if mvc := s.ExitDim(tvc, 1, 1, true, false); mvc != 2 {
		t.Errorf("uncrossed-dim exit MVC = %d, want 2", mvc)
	}
	// No travel: no increment.
	if mvc := s.ExitDim(0, 2, 2, false, false); mvc != 2 {
		t.Errorf("untraveled-dim exit MVC = %d, want unchanged 2", mvc)
	}
}

// walkEndToEnd checks a route's invariants and returns it.
func walkEndToEnd(t *testing.T, cfg *Config, src, dst topo.NodeEp, c Choices) []Hop {
	t.Helper()
	hops := Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, ClassRequest)
	m := cfg.Machine
	torusHops := 0
	for _, h := range hops {
		g := m.ChanGroup(h.Chan)
		if int(h.VC) >= ChannelVCs(cfg.Scheme, g) {
			t.Fatalf("%v->%v %+v: VC %d exceeds %s-group budget %d on %s",
				src, dst, c, h.VC, g, ChannelVCs(cfg.Scheme, g), m.ChanName(h.Chan))
		}
		if m.IsTorusChan(h.Chan) {
			torusHops++
		}
	}
	if want := InterNodeHops(m.Shape, src, dst); torusHops != want {
		t.Fatalf("%v->%v %+v: %d torus hops, want minimal %d", src, dst, c, torusHops, want)
	}
	return hops
}

func TestWalkAllPairsSmallTorus(t *testing.T) {
	for _, scheme := range []Scheme{AntonScheme{}, BaselineScheme{}} {
		cfg := cfgFor(t, topo.Shape3(3, 2, 2), scheme)
		n := cfg.Machine.NumNodes()
		rng := rand.New(rand.NewSource(7))
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				src := topo.NodeEp{Node: a, Ep: rng.Intn(topo.NumEndpoints)}
				dst := topo.NodeEp{Node: b, Ep: rng.Intn(topo.NumEndpoints)}
				for _, wc := range EnumerateChoices(cfg.Machine.Shape, cfg.Machine.Shape.Coord(a), cfg.Machine.Shape.Coord(b)) {
					walkEndToEnd(t, cfg, src, dst, wc.Choices)
				}
			}
		}
	}
}

func TestWalkRandomPairsLargerTorus(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(8, 8, 8), AntonScheme{})
	rng := rand.New(rand.NewSource(11))
	n := cfg.Machine.NumNodes()
	for i := 0; i < 2000; i++ {
		src := topo.NodeEp{Node: rng.Intn(n), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(n), Ep: rng.Intn(topo.NumEndpoints)}
		walkEndToEnd(t, cfg, src, dst, RandomChoices(rng))
	}
}

func TestWalkIntraNodeRoute(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(2, 2, 2), AntonScheme{})
	src := topo.NodeEp{Node: 3, Ep: 0}
	dst := topo.NodeEp{Node: 3, Ep: 22}
	hops := walkEndToEnd(t, cfg, src, dst, Choices{Order: topo.AllDimOrders[0], Ties: [3]int8{1, 1, 1}})
	for _, h := range hops {
		if cfg.Machine.IsTorusChan(h.Chan) {
			t.Fatalf("intra-node route uses torus channel %s", cfg.Machine.ChanName(h.Chan))
		}
		if cfg.Machine.ChanGroup(h.Chan) != topo.GroupM {
			t.Fatalf("intra-node route leaves the M-group on %s", cfg.Machine.ChanName(h.Chan))
		}
		if h.VC != 0 {
			t.Fatalf("intra-node route should stay on VC 0, used %d", h.VC)
		}
	}
}

// TestYThroughTraversesOneRouter reproduces the paper's example: a packet
// traveling along Y- on slice 0 passes through a single router (R0,2) at
// each intermediate node.
func TestYThroughTraversesOneRouter(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(2, 8, 2), AntonScheme{})
	m := cfg.Machine
	// Route with 3 hops in Y- so there are intermediate nodes.
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{Y: 3}), Ep: 0}
	dst := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{Y: 0}), Ep: 0}
	c := Choices{Order: topo.DimOrder{topo.DimY, topo.DimX, topo.DimZ}, Slice: 0, Ties: [3]int8{1, 1, 1}}
	hops := walkEndToEnd(t, cfg, src, dst, c)

	// Intermediate nodes are Y=2 and Y=1; each contributes exactly two
	// intra channels (adapter->router, router->adapter), both T-group,
	// both touching only R0,2.
	for _, yi := range []int{2, 1} {
		node := m.Shape.NodeID(topo.NodeCoord{Y: yi})
		var intra []topo.IntraChan
		for _, h := range hops {
			if !m.IsTorusChan(h.Chan) {
				if n, ch := m.IntraChanOf(h.Chan); n == node {
					intra = append(intra, *ch)
				}
			}
		}
		if len(intra) != 2 {
			t.Fatalf("intermediate node y=%d has %d intra hops, want 2 (single-router through path): %v", yi, len(intra), intra)
		}
		for _, ch := range intra {
			if ch.Group != topo.GroupT {
				t.Errorf("through-route channel %s must be T-group", ch.Name)
			}
			want := topo.MeshCoord{U: 0, V: 2} // Y slice 0 router
			if ch.From.Kind == topo.LocRouter && ch.From.Router != want {
				t.Errorf("through route touched router %v, want %v", ch.From.Router, want)
			}
		}
	}
}

// TestXThroughUsesSkipChannel reproduces the paper's example: X1- -> R3,0 ->
// skip channel -> R0,0 -> X1+.
func TestXThroughUsesSkipChannel(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(8, 2, 2), AntonScheme{})
	m := cfg.Machine
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 0}), Ep: 0}
	dst := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 3}), Ep: 0}
	c := Choices{Order: topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}, Slice: 1, Ties: [3]int8{1, 1, 1}}
	hops := walkEndToEnd(t, cfg, src, dst, c)

	// Intermediate nodes x=1 and x=2 must each use a skip channel.
	for _, xi := range []int{1, 2} {
		node := m.Shape.NodeID(topo.NodeCoord{X: xi})
		foundSkip := false
		count := 0
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				continue
			}
			if n, ch := m.IntraChanOf(h.Chan); n == node {
				count++
				if ch.From.Kind == topo.LocRouter && ch.To.Kind == topo.LocRouter {
					foundSkip = true
					if ch.Group != topo.GroupT {
						t.Errorf("skip channel %s must be T-group", ch.Name)
					}
					if ch.From.Router != (topo.MeshCoord{U: 3, V: 0}) || ch.To.Router != (topo.MeshCoord{U: 0, V: 0}) {
						t.Errorf("X+ slice-1 through route used %s, want skip R3,0->R0,0", ch.Name)
					}
				}
			}
		}
		if !foundSkip {
			t.Errorf("X through-traffic at node x=%d did not use the skip channel", xi)
		}
		if count != 3 {
			t.Errorf("X through node x=%d has %d intra hops, want 3 (in-adapter->router, skip, router->out-adapter)", xi, count)
		}
	}
}

func TestDatelineIncrementsVC(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(8, 2, 2), AntonScheme{})
	m := cfg.Machine
	// x=6 -> x=1 in +X wraps through the 7->0 dateline.
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 6}), Ep: 0}
	dst := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 1}), Ep: 0}
	c := Choices{Order: topo.DimOrder{topo.DimX, topo.DimY, topo.DimZ}, Slice: 0, Ties: [3]int8{1, 1, 1}}
	hops := walkEndToEnd(t, cfg, src, dst, c)

	var torusVCs []uint8
	for _, h := range hops {
		if m.IsTorusChan(h.Chan) {
			torusVCs = append(torusVCs, h.VC)
		}
	}
	want := []uint8{0, 1, 1} // 6->7 on VC0, 7->0 crosses (VC1), 0->1 on VC1
	if len(torusVCs) != len(want) {
		t.Fatalf("torus VC trail %v, want %v", torusVCs, want)
	}
	for i := range want {
		if torusVCs[i] != want[i] {
			t.Fatalf("torus VC trail %v, want %v", torusVCs, want)
		}
	}
	// Final mesh leg must be on M-VC 1 (crossed once).
	last := hops[len(hops)-1]
	if m.ChanGroup(last.Chan) != topo.GroupM || last.VC != 1 {
		t.Errorf("final hop VC = %d on %s, want M-group VC 1", last.VC, m.ChanName(last.Chan))
	}
}

func TestRouteBeginsAndEndsInMGroup(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(4, 4, 4), AntonScheme{})
	m := cfg.Machine
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		src := topo.NodeEp{Node: rng.Intn(m.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(m.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		hops := walkEndToEnd(t, cfg, src, dst, RandomChoices(rng))
		if m.ChanGroup(hops[0].Chan) != topo.GroupM {
			t.Fatalf("route must begin in the M-group (endpoint->router)")
		}
		if m.ChanGroup(hops[len(hops)-1].Chan) != topo.GroupM {
			t.Fatalf("route must end in the M-group (router->endpoint)")
		}
		// Group alternation bound (Section 2.5): at most 4 M-legs and 3
		// T-legs.
		mLegs, tLegs := 0, 0
		prev := topo.Group(255)
		for _, h := range hops {
			g := m.ChanGroup(h.Chan)
			if g != prev {
				if g == topo.GroupM {
					mLegs++
				} else {
					tLegs++
				}
				prev = g
			}
		}
		if mLegs > 4 || tLegs > 3 {
			t.Fatalf("route %v->%v has %d M-legs and %d T-legs, want <=4 and <=3", src, dst, mLegs, tLegs)
		}
	}
}

// Property: VCs never decrease along a route (promotion is monotone), for
// the Anton scheme.
func TestVCMonotoneProperty(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(6, 5, 4), AntonScheme{})
	m := cfg.Machine
	f := func(a, b uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := topo.NodeEp{Node: int(a) % m.NumNodes(), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: int(b) % m.NumNodes(), Ep: rng.Intn(topo.NumEndpoints)}
		hops := Walk(cfg, src, dst, topo.AllDimOrders[rng.Intn(6)], uint8(rng.Intn(2)), [3]int8{1, -1, 1}, ClassReply)
		prev := uint8(0)
		for _, h := range hops {
			if h.VC < prev {
				return false
			}
			prev = h.VC
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceConfinement(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(4, 4, 4), AntonScheme{})
	m := cfg.Machine
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		src := topo.NodeEp{Node: rng.Intn(m.NumNodes()), Ep: 0}
		dst := topo.NodeEp{Node: rng.Intn(m.NumNodes()), Ep: 5}
		c := RandomChoices(rng)
		hops := Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, ClassRequest)
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				_, ad := m.TorusChanOf(h.Chan)
				if ad.Slice != int(c.Slice) {
					t.Fatalf("packet assigned slice %d used torus channel %v", c.Slice, ad)
				}
			}
		}
	}
}

func TestEnumerateChoicesWeightsSumToOne(t *testing.T) {
	shape := topo.Shape3(4, 4, 4)
	for ai := 0; ai < shape.NumNodes(); ai += 7 {
		for bi := 0; bi < shape.NumNodes(); bi += 5 {
			wcs := EnumerateChoices(shape, shape.Coord(ai), shape.Coord(bi))
			sum := 0.0
			for _, wc := range wcs {
				sum += wc.Weight
			}
			if sum < 0.999999 || sum > 1.000001 {
				t.Fatalf("weights for %d->%d sum to %g", ai, bi, sum)
			}
		}
	}
}

func TestDimOrderRespected(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(4, 4, 4), AntonScheme{})
	m := cfg.Machine
	src := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 0, Y: 0, Z: 0}), Ep: 0}
	dst := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 1, Y: 1, Z: 1}), Ep: 0}
	for _, ord := range topo.AllDimOrders {
		hops := Walk(cfg, src, dst, ord, 0, [3]int8{1, 1, 1}, ClassRequest)
		var dims []topo.Dim
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				_, ad := m.TorusChanOf(h.Chan)
				dims = append(dims, ad.Dir.Dim())
			}
		}
		if len(dims) != 3 {
			t.Fatalf("order %v: %d torus hops, want 3", ord, len(dims))
		}
		for i, d := range dims {
			if d != ord[i] {
				t.Fatalf("order %v: torus dims %v do not follow the order", ord, dims)
			}
		}
	}
}

// TestEntrySkipVariantRoutes: the (non-default) entry-skip policy produces
// valid, delivered routes; it is rejected only by the deadlock analysis
// when combined with exit skips.
func TestEntrySkipVariantRoutes(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(8, 4, 2), AntonScheme{})
	cfg.EntrySkip = true
	cfg.ExitSkip = false
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		src := topo.NodeEp{Node: rng.Intn(cfg.Machine.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(cfg.Machine.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		walkEndToEnd(t, cfg, src, dst, RandomChoices(rng))
	}
}

// TestNoSkipVariantRoutes: with skips fully disabled, X through-traffic
// crosses the mesh at T-group VCs and still delivers everywhere.
func TestNoSkipVariantRoutes(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(8, 2, 2), AntonScheme{})
	cfg.UseSkip = false
	cfg.ExitSkip = false
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 300; i++ {
		src := topo.NodeEp{Node: rng.Intn(cfg.Machine.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		dst := topo.NodeEp{Node: rng.Intn(cfg.Machine.NumNodes()), Ep: rng.Intn(topo.NumEndpoints)}
		walkEndToEnd(t, cfg, src, dst, RandomChoices(rng))
	}
}

func TestMulticastStateHelpers(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(4, 4, 4), AntonScheme{})
	chip := cfg.Machine.Chip
	order := topo.AllDimOrders[0]
	srcRouter := chip.Endpoints[0].Router

	st := InitMulticastBranch(cfg, topo.XPos, 0, order, 1, ClassRequest, srcRouter)
	if st.Mode != ModeMeshToAdapter || st.Dir != topo.XPos || st.Slice != 1 {
		t.Fatalf("branch init state: %+v", st)
	}

	// Continue keeps the transit mode.
	st2 := st
	st2.Mode = ModeTransit
	MulticastContinue(&st2)
	if st2.Mode != ModeTransit {
		t.Error("continue must stay in transit")
	}

	// Turn promotes the VC like a unicast dimension exit.
	st3 := st
	st3.TVC, st3.Traveled = 0, true
	ingress := chip.AdapterAt(topo.AdapterID{Dir: topo.XNeg, Slice: 1}).Router
	MulticastTurn(cfg, &st3, topo.YPos, 1, ingress)
	if st3.MVC != 1 || st3.Dir != topo.YPos || st3.Mode != ModeMeshToAdapter {
		t.Errorf("turn state: %+v", st3)
	}

	// Deliver promotes and heads to the endpoint.
	st4 := st
	st4.TVC, st4.Traveled = 0, true
	MulticastDeliver(cfg, &st4, topo.NodeEp{Node: 0, Ep: 4}, ingress)
	if st4.Mode != ModeMeshToEndpoint || st4.MVC != 1 {
		t.Errorf("deliver state: %+v", st4)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeMeshToAdapter.String() == "" || ModeTransit.String() == "" || ModeMeshToEndpoint.String() == "" {
		t.Error("mode strings empty")
	}
}
