package route

import (
	"math"
	"testing"

	"anton2/internal/topo"
)

func edgeConfig(t testing.TB, shape topo.TorusShape) *Config {
	t.Helper()
	m, err := topo.NewMachine(shape)
	if err != nil {
		t.Fatal(err)
	}
	return NewConfig(m)
}

// allTies enumerates every tie-break sign assignment.
func allTies() [][topo.NumDims]int8 {
	var out [][topo.NumDims]int8
	for mask := 0; mask < 1<<topo.NumDims; mask++ {
		var ties [topo.NumDims]int8
		for d := 0; d < topo.NumDims; d++ {
			if mask&(1<<d) != 0 {
				ties[d] = 1
			} else {
				ties[d] = -1
			}
		}
		out = append(out, ties)
	}
	return out
}

// TestWalkSelfAddressed: a route whose source and destination share a node
// — including the fully self-addressed src == dst case — stays entirely on
// the chip mesh.
func TestWalkSelfAddressed(t *testing.T) {
	for _, shape := range []topo.TorusShape{topo.Shape3(1, 1, 1), topo.Shape3(2, 2, 2)} {
		cfg := edgeConfig(t, shape)
		m := cfg.Machine
		for _, ord := range topo.AllDimOrders {
			for _, eps := range [][2]int{{0, 0}, {0, 5}, {topo.NumEndpoints - 1, 3}} {
				src := topo.NodeEp{Node: 0, Ep: eps[0]}
				dst := topo.NodeEp{Node: 0, Ep: eps[1]}
				hops := Walk(cfg, src, dst, ord, 0, [topo.NumDims]int8{1, 1, 1}, ClassRequest)
				for _, h := range hops {
					if m.IsTorusChan(h.Chan) {
						t.Fatalf("%v: same-node route %v->%v crossed torus channel %d", shape, src, dst, h.Chan)
					}
				}
			}
		}
	}
}

// TestWalk1x1x1AllPairs: on the single-node machine every endpoint pair and
// dimension order yields a torus-free route.
func TestWalk1x1x1AllPairs(t *testing.T) {
	cfg := edgeConfig(t, topo.Shape3(1, 1, 1))
	m := cfg.Machine
	for se := 0; se < topo.NumEndpoints; se++ {
		for de := 0; de < topo.NumEndpoints; de++ {
			for _, ord := range topo.AllDimOrders {
				src := topo.NodeEp{Node: 0, Ep: se}
				dst := topo.NodeEp{Node: 0, Ep: de}
				hops := Walk(cfg, src, dst, ord, 1, [topo.NumDims]int8{-1, -1, -1}, ClassReply)
				for _, h := range hops {
					if m.IsTorusChan(h.Chan) {
						t.Fatalf("1x1x1 route %v->%v used torus channel %d", src, dst, h.Chan)
					}
				}
			}
		}
	}
}

// TestWalk2x2x2Exhaustive sweeps every node pair, dimension order, slice,
// and tie-break assignment on the all-2-ary torus — where every dimension
// crossing is a tie — and checks minimality and T-VC monotonicity on each.
func TestWalk2x2x2Exhaustive(t *testing.T) {
	shape := topo.Shape3(2, 2, 2)
	cfg := edgeConfig(t, shape)
	m := cfg.Machine
	src := topo.NodeEp{Node: 0, Ep: 7}
	for dn := 0; dn < shape.NumNodes(); dn++ {
		dst := topo.NodeEp{Node: dn, Ep: 12}
		want := InterNodeHops(shape, src, dst)
		for _, ord := range topo.AllDimOrders {
			for slice := uint8(0); slice < topo.NumSlices; slice++ {
				for _, ties := range allTies() {
					hops := Walk(cfg, src, dst, ord, slice, ties, ClassRequest)
					torus, lastVC := 0, -1
					for _, h := range hops {
						if !m.IsTorusChan(h.Chan) {
							continue
						}
						torus++
						if int(h.VC) >= cfg.Scheme.TorusVCs() {
							t.Fatalf("VC %d out of range on %v->%v", h.VC, src, dst)
						}
						if int(h.VC) < lastVC {
							t.Fatalf("T-VC demoted %d->%d on %v->%v ord %v ties %v", lastVC, h.VC, src, dst, ord, ties)
						}
						lastVC = int(h.VC)
					}
					if torus != want {
						t.Fatalf("route %v->%v ord %v slice %d ties %v took %d torus hops, minimal %d",
							src, dst, ord, slice, ties, torus, want)
					}
				}
			}
		}
	}
}

// TestEnumerateChoicesFixedSliceWeights: the fixed-slice enumeration pins
// every choice to the requested slice and renormalizes weights to 1.
func TestEnumerateChoicesFixedSliceWeights(t *testing.T) {
	shape := topo.Shape3(4, 4, 2)
	a, b := shape.Coord(0), shape.Coord(shape.NumNodes()-1)
	for slice := uint8(0); slice < topo.NumSlices; slice++ {
		wcs := EnumerateChoicesFixedSlice(shape, a, b, slice)
		if len(wcs) == 0 {
			t.Fatalf("no choices for slice %d", slice)
		}
		sum := 0.0
		for _, wc := range wcs {
			if wc.Slice != slice {
				t.Fatalf("choice %+v not pinned to slice %d", wc, slice)
			}
			sum += wc.Weight
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("slice %d weights sum to %g, want 1", slice, sum)
		}
	}
}
